//! DBSCAN density clustering driven by the pipeline's range queries.
//!
//! Following RT-DBSCAN, the expensive part of DBSCAN — the ε-neighborhood
//! of every point — is exactly a fixed-radius neighbor search, so the
//! driver issues batched [`QueryPlan::range_unbounded`] calls at the point
//! positions (each batch shares one `Schedule` pass and every cached
//! structure) and reduces the gathered hit lists on the host:
//!
//! 1. a point is **core** iff its neighborhood (self included, strict
//!    `d² < eps²`) holds at least `min_pts` points;
//! 2. core points within ε of each other are merged with a
//!    [`UnionFind`];
//! 3. a non-core point with a core neighbor (**border**) joins the cluster
//!    of its *lowest-id* core neighbor; everything else is **noise**;
//! 4. labels are canonicalized to the smallest member id of each cluster.
//!
//! Every reduction step is order-invariant (set sizes, union-find with
//! min-member labels, minima over neighbor sets), so the labels do not
//! depend on hit-list order, batch size, thread count, or whether the hit
//! lists were merged from shards — which is what makes the single-index /
//! sharded / streaming answers bit-equal.
//!
//! [`QueryPlan::range_unbounded`]: rtnn::QueryPlan::range_unbounded

use rtnn::{QueryPlan, SearchError};
use rtnn_math::Vec3;
use rtnn_parallel::UnionFind;
use rtnn_serve::TickExecutor;
use rtnn_telemetry::Telemetry;

/// Default number of queries per execute call: large enough to amortise
/// the per-call schedule pass, small enough to bound the simulated result
/// buffer (`batch × n × 4` bytes for an unbounded range).
const DEFAULT_BATCH: usize = 2048;

/// DBSCAN parameters plus the query batching knob.
#[derive(Debug, Clone, Copy)]
pub struct Dbscan {
    /// Neighborhood radius (strict: `d² < eps²`).
    pub eps: f32,
    /// Minimum neighborhood size (self included) for a core point.
    /// Values below 1 are treated as 1.
    pub min_pts: usize,
    batch: usize,
}

impl Dbscan {
    /// DBSCAN with the default query batch size.
    pub fn new(eps: f32, min_pts: usize) -> Self {
        Dbscan {
            eps,
            min_pts,
            batch: DEFAULT_BATCH,
        }
    }

    /// Override the number of neighborhood queries issued per pipeline
    /// call (clamped to at least 1). Batching trades per-call scheduling
    /// overhead against the simulated result-buffer footprint; it never
    /// changes the labels.
    pub fn with_batch(mut self, batch: usize) -> Self {
        self.batch = batch.max(1);
        self
    }

    /// The configured batch size.
    pub fn batch(&self) -> usize {
        self.batch
    }

    /// Cluster `points` using `exec` to answer the neighborhood queries.
    ///
    /// `points` must be the exact cloud `exec` indexes (hit ids index into
    /// it); any [`TickExecutor`] works — a static
    /// [`Index`](rtnn::Index), a
    /// [`FrameIndex::index`](rtnn_dynamic::FrameIndex) view of a dynamic
    /// scene, or a [`ShardedIndex`](rtnn_serve::ShardedIndex) (whose
    /// per-shard partial hit lists are merged into canonical single-index
    /// lists *before* they reach the union-find).
    pub fn run<E: TickExecutor>(
        &self,
        points: &[Vec3],
        exec: &mut E,
    ) -> Result<Clustering, SearchError> {
        let tel = Telemetry::current();
        let mut span = tel.as_ref().map(|t| t.span("analytics.dbscan.run"));
        let adjacency = self.neighborhoods(points, exec)?;
        let clustering = cluster_adjacency(&adjacency, None, self.min_pts);
        if let Some(t) = &tel {
            t.counter_add("analytics.dbscan.runs", 1);
            t.counter_add("analytics.dbscan.points", points.len() as u64);
            t.counter_add(
                "analytics.dbscan.edges",
                adjacency.iter().map(|a| a.len() as u64).sum(),
            );
        }
        if let Some(span) = span.as_mut() {
            span.attr("points", points.len() as f64)
                .attr("clusters", clustering.num_clusters as f64)
                .attr("noise", clustering.num_noise as f64);
        }
        Ok(clustering)
    }

    /// The ε-neighborhood (hit list) of every position in `positions`,
    /// gathered through `exec` in batches of [`batch`](Self::batch)
    /// queries — one shared `Schedule` pass per batch. Also the streaming
    /// relabel's partial re-query primitive.
    pub(crate) fn neighborhoods<E: TickExecutor>(
        &self,
        positions: &[Vec3],
        exec: &mut E,
    ) -> Result<Vec<Vec<u32>>, SearchError> {
        let plan = QueryPlan::range_unbounded(self.eps);
        let tel = Telemetry::current();
        let mut adjacency: Vec<Vec<u32>> = Vec::with_capacity(positions.len());
        for chunk in positions.chunks(self.batch.max(1)) {
            let results = exec.execute(chunk, &plan)?;
            adjacency.extend(results.neighbors);
            if let Some(t) = &tel {
                t.counter_add("analytics.dbscan.batches", 1);
            }
        }
        Ok(adjacency)
    }
}

/// The outcome of a DBSCAN run: per-point labels plus summary counts.
///
/// Point "ids" are indices into whatever id space the adjacency was
/// gathered in — compact positions for [`Dbscan::run`], stable handles for
/// [`StreamingDbscan`](crate::StreamingDbscan).
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct Clustering {
    /// Per point: `Some(label)` with the cluster's smallest member id, or
    /// `None` for noise (and, in handle space, for dead handles).
    pub labels: Vec<Option<u32>>,
    /// Per point: whether it is a core point.
    pub core: Vec<bool>,
    /// Number of distinct clusters.
    pub num_clusters: usize,
    /// Number of (live) noise points.
    pub num_noise: usize,
}

impl Clustering {
    /// Translate labels into another id space: point `i` of this
    /// clustering corresponds to id `ids[i]`, and every cluster is
    /// relabeled to the smallest *translated* member id. Used to compare
    /// compact-space labels against handle-space ones when the two orders
    /// agree on membership.
    pub fn labels_as(&self, ids: &[u32]) -> Vec<Option<u32>> {
        assert_eq!(ids.len(), self.labels.len());
        let mut min_of: std::collections::HashMap<u32, u32> = std::collections::HashMap::new();
        for (i, label) in self.labels.iter().enumerate() {
            if let Some(l) = label {
                let entry = min_of.entry(*l).or_insert(u32::MAX);
                *entry = (*entry).min(ids[i]);
            }
        }
        self.labels
            .iter()
            .map(|label| label.map(|l| min_of[&l]))
            .collect()
    }
}

/// Reduce gathered ε-adjacency to a [`Clustering`]. `alive` masks out ids
/// that are not part of the scene (dead handles in streaming runs); masked
/// ids get no label, are never core, and are not counted as noise.
///
/// Order-invariant by construction: only neighbor-set *sizes*, union-find
/// membership, and minima over neighbor sets are consulted, so any
/// permutation of the hit lists produces identical output.
pub(crate) fn cluster_adjacency(
    adjacency: &[Vec<u32>],
    alive: Option<&[bool]>,
    min_pts: usize,
) -> Clustering {
    let n = adjacency.len();
    let is_alive = |i: usize| alive.is_none_or(|a| a[i]);
    let min_pts = min_pts.max(1);
    let core: Vec<bool> = (0..n)
        .map(|i| is_alive(i) && adjacency[i].len() >= min_pts)
        .collect();

    let mut uf = UnionFind::new(n);
    for p in 0..n {
        if !core[p] {
            continue;
        }
        for &q in &adjacency[p] {
            if core[q as usize] {
                uf.union(p as u32, q);
            }
        }
    }
    // Borders attach to their lowest-id core neighbor. Each border is
    // unioned exactly once, so it can never bridge two core components.
    let attach: Vec<Option<u32>> = (0..n)
        .map(|p| {
            if !is_alive(p) || core[p] {
                return None;
            }
            adjacency[p]
                .iter()
                .copied()
                .filter(|&q| core[q as usize])
                .min()
        })
        .collect();
    for (p, a) in attach.iter().enumerate() {
        if let Some(c) = a {
            uf.union(p as u32, *c);
        }
    }

    let raw = uf.min_labels();
    let mut labels: Vec<Option<u32>> = Vec::with_capacity(n);
    let mut distinct = std::collections::HashSet::new();
    let mut num_noise = 0;
    for p in 0..n {
        if core[p] || attach[p].is_some() {
            labels.push(Some(raw[p]));
            distinct.insert(raw[p]);
        } else {
            labels.push(None);
            if is_alive(p) {
                num_noise += 1;
            }
        }
    }
    Clustering {
        labels,
        core,
        num_clusters: distinct.len(),
        num_noise,
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use rtnn::{EngineConfig, Index};
    use rtnn_baselines::dbscan_oracle;
    use rtnn_data::uniform::{self, UniformParams};
    use rtnn_gpusim::Device;

    fn cloud(n: usize, seed: u64) -> Vec<Vec3> {
        uniform::generate(&UniformParams {
            num_points: n,
            seed,
            ..Default::default()
        })
        .points
    }

    #[test]
    fn labels_match_the_oracle_on_a_seeded_cloud() {
        let device = Device::rtx_2080();
        let backend = rtnn::GpusimBackend::new(&device);
        let points = cloud(600, 11);
        let mut index = Index::build(&backend, points.as_slice(), EngineConfig::default());
        for (eps, min_pts) in [(0.6, 4), (1.1, 8), (2.0, 2)] {
            let got = Dbscan::new(eps, min_pts).run(&points, &mut index).unwrap();
            assert_eq!(
                got.labels,
                dbscan_oracle(&points, eps, min_pts),
                "eps={eps} min_pts={min_pts}"
            );
            assert_eq!(got.labels.len(), points.len());
        }
    }

    #[test]
    fn batch_size_never_changes_the_labels() {
        let device = Device::rtx_2080();
        let backend = rtnn::GpusimBackend::new(&device);
        let points = cloud(400, 3);
        let reference = {
            let mut index = Index::build(&backend, points.as_slice(), EngineConfig::default());
            Dbscan::new(0.9, 4).run(&points, &mut index).unwrap()
        };
        for batch in [1, 7, 64, 10_000] {
            let mut index = Index::build(&backend, points.as_slice(), EngineConfig::default());
            let got = Dbscan::new(0.9, 4)
                .with_batch(batch)
                .run(&points, &mut index)
                .unwrap();
            assert_eq!(got, reference, "batch={batch}");
        }
        assert_eq!(Dbscan::new(0.9, 4).with_batch(0).batch(), 1);
    }

    #[test]
    fn summary_counts_are_consistent() {
        let device = Device::rtx_2080();
        let backend = rtnn::GpusimBackend::new(&device);
        let points = cloud(300, 8);
        let mut index = Index::build(&backend, points.as_slice(), EngineConfig::default());
        let got = Dbscan::new(0.8, 5).run(&points, &mut index).unwrap();
        let distinct: std::collections::HashSet<u32> =
            got.labels.iter().flatten().copied().collect();
        assert_eq!(distinct.len(), got.num_clusters);
        assert_eq!(
            got.labels.iter().filter(|l| l.is_none()).count(),
            got.num_noise
        );
        // Every label is the smallest id in its cluster.
        for (p, label) in got.labels.iter().enumerate() {
            if let Some(l) = label {
                assert!(*l <= p as u32);
                assert_eq!(got.labels[*l as usize], Some(*l));
            }
        }
    }

    #[test]
    fn empty_and_degenerate_inputs() {
        let device = Device::rtx_2080();
        let backend = rtnn::GpusimBackend::new(&device);
        let points: Vec<Vec3> = Vec::new();
        let mut index = Index::build(&backend, points.as_slice(), EngineConfig::default());
        let got = Dbscan::new(1.0, 2).run(&points, &mut index).unwrap();
        assert!(got.labels.is_empty());
        assert_eq!((got.num_clusters, got.num_noise), (0, 0));
        // An invalid radius surfaces as the plan's typed error.
        let one = vec![Vec3::new(0.0, 0.0, 0.0)];
        let mut index = Index::build(&backend, one.as_slice(), EngineConfig::default());
        let err = Dbscan::new(-1.0, 2).run(&one, &mut index).unwrap_err();
        assert!(matches!(
            err,
            SearchError::InvalidPlan(rtnn::PlanError::InvalidRadius { .. })
        ));
        // min_pts = 0 behaves as 1: a lone point is its own core cluster.
        let got = Dbscan::new(1.0, 0).run(&one, &mut index).unwrap();
        assert_eq!(got.labels, vec![Some(0)]);
        assert_eq!(got.num_clusters, 1);
    }

    #[test]
    fn labels_as_translates_to_minimum_translated_ids() {
        let clustering = Clustering {
            labels: vec![Some(0), Some(0), None, Some(3), Some(3)],
            core: vec![true, true, false, true, true],
            num_clusters: 2,
            num_noise: 1,
        };
        // Translated ids reverse the order within each cluster.
        let translated = clustering.labels_as(&[9, 4, 7, 2, 8]);
        assert_eq!(translated, vec![Some(4), Some(4), None, Some(2), Some(2)]);
    }
}
