//! # rtnn-analytics
//!
//! Spatial analytics as first-class workloads on the RTNN pipeline:
//! density clustering (DBSCAN, after RT-DBSCAN) and reverse k-NN (after
//! RT-RkNN), both reduced to the [`QueryPlan`]s the staged execution
//! pipeline already answers and a deterministic host-side reduce.
//!
//! * [`Dbscan`] — `Dbscan { eps, min_pts }` drives batched
//!   [`QueryPlan::range_unbounded`] epsilon-neighborhood queries (each
//!   batch shares one `Schedule` pass) and merges the gathered hit lists
//!   with a [`UnionFind`], producing per-point cluster labels
//!   canonicalized to the smallest member id.
//! * [`ReverseKnn`] — `ReverseKnn { k, r_max }` finds, for each query
//!   position, every indexed point that has the query among its `k`
//!   nearest: a range pass collects candidates (RT-RkNN's half-space
//!   pruning bound: members lie within `r_max`), then one batched KNN
//!   pass over the *deduplicated* candidates — hitting the same
//!   width-keyed `Accel` the range pass built — decides membership.
//! * [`StreamingDbscan`] — cluster maintenance across
//!   [`DynamicIndex`](rtnn_dynamic::DynamicIndex) frames: cached
//!   eps-adjacency is spliced from the frame's moved/inserted/removed
//!   handles, so only affected points are re-queried while the labels stay
//!   bit-equal to clustering the frame from scratch.
//!
//! Every algorithm runs against any [`TickExecutor`] — a static
//! [`Index`](rtnn::Index), the per-frame `Index` view of a `DynamicIndex`
//! ([`FrameIndex::index`](rtnn_dynamic::FrameIndex)), or a
//! [`ShardedIndex`](rtnn_serve::ShardedIndex), whose per-shard partial hit
//! lists are merged deterministically *before* the union-find / membership
//! filter — and the answers are bit-equal across all of them (the
//! reductions only ever see canonical single-index hit lists).
//!
//! Telemetry: the drivers emit `analytics.dbscan.*` / `analytics.rknn.*`
//! spans and counters through the ambient [`rtnn_telemetry`] sink; as
//! everywhere else in the workspace, recording never changes results.
//!
//! [`QueryPlan`]: rtnn::QueryPlan
//! [`QueryPlan::range_unbounded`]: rtnn::QueryPlan::range_unbounded
//! [`UnionFind`]: rtnn_parallel::UnionFind
//! [`TickExecutor`]: rtnn_serve::TickExecutor

pub mod dbscan;
pub mod rknn;
pub mod stream;

pub use dbscan::{Clustering, Dbscan};
pub use rknn::{ReverseKnn, RknnResult};
pub use stream::{FrameChange, FrameClustering, StreamingDbscan};

// The executor seam every analytics driver runs behind: re-exported so
// downstream code can name it without depending on `rtnn-serve` directly.
pub use rtnn_serve::TickExecutor;
