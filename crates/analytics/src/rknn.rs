//! Reverse k-NN on the pipeline, after RT-RkNN.
//!
//! `p` is a reverse-k-NN member of query `q` iff `d²(p, q) < r_max²` and
//! fewer than `k` indexed points other than `p` lie strictly closer to `p`
//! than `q` does — "does `p` have `q` among its `k` nearest?". The driver
//! maps this onto two pipeline passes:
//!
//! 1. **Candidates**: one batched [`QueryPlan::range_unbounded`]`(r_max)`
//!    call at the query positions. Membership requires `d < r_max`, so the
//!    range pass is RT-RkNN's pruning bound: everything outside never
//!    needs a k-NN test.
//! 2. **Membership**: candidate ids are deduplicated across queries and a
//!    single batched `Knn { k: k + 1, r: r_max }` call runs at their
//!    positions — the *same* AABB width as pass 1, so it hits the
//!    structure the width-keyed `Accel` cache already built. `k + 1`
//!    because the candidate itself (distance 0) occupies one slot; the
//!    returned list then provably contains every point that could beat
//!    the query: if fewer than `k` points are strictly closer than `q`,
//!    all of them (plus `p`) fit in `k + 1` slots; if `k` or more are,
//!    at least `k` of them rank ahead of `q` and appear.
//!
//! The host-side filter recomputes exact `f32` distances against the point
//! array (the same arithmetic the oracle uses), so the answer is
//! independent of hit-list order — and therefore identical whether the
//! executor is a single index or a sharded one.
//!
//! [`QueryPlan::range_unbounded`]: rtnn::QueryPlan::range_unbounded

use rtnn::{QueryPlan, SearchError};
use rtnn_math::Vec3;
use rtnn_serve::TickExecutor;
use rtnn_telemetry::Telemetry;

/// Default queries per execute call (see [`Dbscan`](crate::Dbscan) for the
/// trade-off).
const DEFAULT_BATCH: usize = 2048;

/// Reverse-k-NN parameters plus the query batching knob.
#[derive(Debug, Clone, Copy)]
pub struct ReverseKnn {
    /// Neighbor rank bound: members have the query among their `k`
    /// nearest (must be at least 1).
    pub k: usize,
    /// Membership radius (strict: members satisfy `d² < r_max²`). Also
    /// the candidate-pruning radius of the range pass.
    pub r_max: f32,
    batch: usize,
}

/// The outcome of a reverse-k-NN run.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct RknnResult {
    /// Per query: ascending ids of the member points.
    pub members: Vec<Vec<u32>>,
    /// Per query: how many candidates the range pass produced (the
    /// pre-filter set the k-NN pass had to test).
    pub candidates: Vec<usize>,
    /// Number of distinct candidate points across all queries — the size
    /// of the deduplicated k-NN launch. The pruning-effectiveness signal:
    /// without the range bound this would be the full point count.
    pub unique_candidates: usize,
}

impl ReverseKnn {
    /// Reverse k-NN with the default query batch size.
    pub fn new(k: usize, r_max: f32) -> Self {
        ReverseKnn {
            k,
            r_max,
            batch: DEFAULT_BATCH,
        }
    }

    /// Override the number of queries issued per pipeline call (clamped to
    /// at least 1); never changes the members.
    pub fn with_batch(mut self, batch: usize) -> Self {
        self.batch = batch.max(1);
        self
    }

    /// Answer the reverse-k-NN of every query position against `points`,
    /// using `exec` (any [`TickExecutor`] over exactly `points`) for both
    /// pipeline passes.
    pub fn run<E: TickExecutor>(
        &self,
        points: &[Vec3],
        queries: &[Vec3],
        exec: &mut E,
    ) -> Result<RknnResult, SearchError> {
        let tel = Telemetry::current();
        let mut span = tel.as_ref().map(|t| t.span("analytics.rknn.run"));

        // Pass 1: candidate sets within r_max.
        let range_plan = QueryPlan::range_unbounded(self.r_max);
        let mut candidate_lists: Vec<Vec<u32>> = Vec::with_capacity(queries.len());
        for chunk in queries.chunks(self.batch) {
            let results = exec.execute(chunk, &range_plan)?;
            candidate_lists.extend(results.neighbors);
        }

        // Dedup across queries; the sorted order doubles as the id → slot
        // lookup for the k-NN lists below.
        let mut unique: Vec<u32> = candidate_lists.iter().flatten().copied().collect();
        unique.sort_unstable();
        unique.dedup();

        // Pass 2: k+1 nearest within r_max at every distinct candidate.
        // Same radius as pass 1 → same AABB width → the width-keyed Accel
        // cache serves this pass without building anything new.
        let knn_plan = QueryPlan::knn(self.r_max, self.k.max(1) + 1);
        let candidate_pos: Vec<Vec3> = unique.iter().map(|&id| points[id as usize]).collect();
        let mut knn_lists: Vec<Vec<u32>> = Vec::with_capacity(unique.len());
        for chunk in candidate_pos.chunks(self.batch) {
            let results = exec.execute(chunk, &knn_plan)?;
            knn_lists.extend(results.neighbors);
        }

        // Host-side membership filter, in exact f32 arithmetic.
        let k = self.k.max(1);
        let members: Vec<Vec<u32>> = candidate_lists
            .iter()
            .zip(queries)
            .map(|(candidates, &q)| {
                let mut m: Vec<u32> = candidates
                    .iter()
                    .copied()
                    .filter(|&pid| {
                        let p = points[pid as usize];
                        let dq2 = p.distance_squared(q);
                        let slot = unique.binary_search(&pid).expect("candidate was deduped");
                        let closer = knn_lists[slot]
                            .iter()
                            .filter(|&&j| j != pid && p.distance_squared(points[j as usize]) < dq2)
                            .count();
                        closer < k
                    })
                    .collect();
                m.sort_unstable();
                m
            })
            .collect();

        let candidates: Vec<usize> = candidate_lists.iter().map(|c| c.len()).collect();
        if let Some(t) = &tel {
            t.counter_add("analytics.rknn.runs", 1);
            t.counter_add("analytics.rknn.queries", queries.len() as u64);
            t.counter_add(
                "analytics.rknn.candidates",
                candidates.iter().map(|&c| c as u64).sum(),
            );
            t.counter_add("analytics.rknn.knn_points", unique.len() as u64);
            t.counter_add(
                "analytics.rknn.members",
                members.iter().map(|m| m.len() as u64).sum(),
            );
        }
        if let Some(span) = span.as_mut() {
            span.attr("queries", queries.len() as f64)
                .attr("unique_candidates", unique.len() as f64)
                .attr("points", points.len() as f64);
        }
        Ok(RknnResult {
            members,
            candidates,
            unique_candidates: unique.len(),
        })
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use rtnn::{EngineConfig, GpusimBackend, Index};
    use rtnn_baselines::rknn_oracle;
    use rtnn_data::uniform::{self, UniformParams};
    use rtnn_gpusim::Device;

    fn cloud(n: usize, seed: u64) -> Vec<Vec3> {
        uniform::generate(&UniformParams {
            num_points: n,
            seed,
            ..Default::default()
        })
        .points
    }

    #[test]
    fn members_match_the_oracle_across_parameters() {
        let device = Device::rtx_2080();
        let backend = GpusimBackend::new(&device);
        let points = cloud(500, 21);
        let queries: Vec<Vec3> = points.iter().step_by(13).copied().collect();
        let mut index = Index::build(&backend, points.as_slice(), EngineConfig::default());
        for (k, r_max) in [(1, 0.8), (4, 1.2), (8, 2.5)] {
            let got = ReverseKnn::new(k, r_max)
                .run(&points, &queries, &mut index)
                .unwrap();
            assert_eq!(
                got.members,
                rknn_oracle(&points, &queries, k, r_max),
                "k={k} r_max={r_max}"
            );
            assert!(got.unique_candidates <= points.len());
            assert_eq!(got.candidates.len(), queries.len());
        }
    }

    #[test]
    fn off_cloud_queries_and_batch_sizes() {
        let device = Device::rtx_2080();
        let backend = GpusimBackend::new(&device);
        let points = cloud(300, 5);
        let mut queries = vec![
            Vec3::new(-50.0, 0.0, 0.0), // far outside: empty member set
            points[17],
        ];
        queries.extend(points.iter().step_by(29).copied());
        let oracle = rknn_oracle(&points, &queries, 3, 1.5);
        assert!(oracle[0].is_empty());
        for batch in [1, 5, 4096] {
            let mut index = Index::build(&backend, points.as_slice(), EngineConfig::default());
            let got = ReverseKnn::new(3, 1.5)
                .with_batch(batch)
                .run(&points, &queries, &mut index)
                .unwrap();
            assert_eq!(got.members, oracle, "batch={batch}");
        }
    }

    #[test]
    fn pruning_reports_and_errors() {
        let device = Device::rtx_2080();
        let backend = GpusimBackend::new(&device);
        let points = cloud(200, 2);
        let queries = vec![points[0]];
        let mut index = Index::build(&backend, points.as_slice(), EngineConfig::default());
        let got = ReverseKnn::new(2, 0.7)
            .run(&points, &queries, &mut index)
            .unwrap();
        // A single tight query must prune the k-NN launch far below n.
        assert!(got.unique_candidates < points.len());
        assert_eq!(got.candidates[0], got.unique_candidates);
        let err = ReverseKnn::new(2, f32::NAN)
            .run(&points, &queries, &mut index)
            .unwrap_err();
        assert!(matches!(err, SearchError::InvalidPlan(_)));
        // No queries → no members, nothing launched.
        let empty = ReverseKnn::new(2, 1.0)
            .run(&points, &[], &mut index)
            .unwrap();
        assert!(empty.members.is_empty());
        assert_eq!(empty.unique_candidates, 0);
    }
}
