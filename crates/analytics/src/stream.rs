//! Streaming DBSCAN: cluster maintenance across
//! [`DynamicIndex`] frames.
//!
//! A drifting scene (SPH settling, N-body orbits, LiDAR churn) changes
//! only a fraction of its points per frame, and an ε-neighborhood can only
//! change if one of its members moved, appeared, or vanished. The
//! maintainer exploits exactly that symmetry:
//!
//! * the ε-adjacency of every live point is cached in *stable handle*
//!   space across frames;
//! * per frame, every changed handle (moved / inserted / removed) is
//!   dropped from all cached lists, and fresh neighborhoods are queried
//!   **only** at the new positions of moved / inserted points — each hit
//!   `p` of such a point `m` regains `m` in its list (`p ∈ N(m) ⇔
//!   m ∈ N(p)`: the strict radius predicate is symmetric);
//! * the cheap host-side reduce (union-find + smallest-member labels) then
//!   reruns over the full cached adjacency.
//!
//! The spliced adjacency is *set-equal* to what querying every live point
//! from scratch would return, and the reduce is order-invariant, so the
//! per-frame labels are **bit-equal to from-scratch clustering** — the
//! saving is the fraction of points re-queried, which
//! [`FrameClustering::requeried`] reports and `fig_analytics` measures.
//!
//! [`DynamicIndex`]: rtnn_dynamic::DynamicIndex

use crate::dbscan::{cluster_adjacency, Clustering, Dbscan};
use rtnn::SearchError;
use rtnn_dynamic::DynamicIndex;
use rtnn_math::Vec3;
use rtnn_telemetry::Telemetry;

/// The stable handles a frame changed, after the mutations were applied to
/// the [`DynamicIndex`]. Handles listed in `removed` must already be
/// removed from the index; `moved` / `inserted` handles must be live.
#[derive(Debug, Clone, Default)]
pub struct FrameChange {
    /// Handles whose position changed this frame.
    pub moved: Vec<u32>,
    /// Handles inserted this frame.
    pub inserted: Vec<u32>,
    /// Handles removed this frame.
    pub removed: Vec<u32>,
}

/// One frame's clustering plus the incremental-work accounting.
#[derive(Debug, Clone, PartialEq)]
pub struct FrameClustering {
    /// The frame's clustering in stable-handle space: `labels[h]` is the
    /// cluster of handle `h` (`None` for noise and dead handles), labels
    /// canonicalized to the smallest member handle.
    pub clustering: Clustering,
    /// How many points were re-queried this frame (`== alive` for a full
    /// reclustering, typically far fewer for a relabel).
    pub requeried: usize,
    /// Number of live points this frame.
    pub alive: usize,
}

/// Incremental DBSCAN over a dynamic scene (see the module docs).
#[derive(Debug, Clone)]
pub struct StreamingDbscan {
    params: Dbscan,
    /// Cached ε-adjacency per handle (empty for dead handles).
    adjacency: Vec<Vec<u32>>,
    /// Live mask per handle, rebuilt from the frame view every update.
    alive: Vec<bool>,
    /// Handles that have been seeded at least once; a live handle that was
    /// never announced via `inserted` (e.g. the scene was populated before
    /// the first update) is auto-seeded so its cache entry exists.
    known: Vec<bool>,
}

impl StreamingDbscan {
    /// A maintainer with no cached state; the first
    /// [`relabel`](Self::relabel) seeds every live point.
    pub fn new(params: Dbscan) -> Self {
        StreamingDbscan {
            params,
            adjacency: Vec::new(),
            alive: Vec::new(),
            known: Vec::new(),
        }
    }

    /// The clustering parameters.
    pub fn params(&self) -> &Dbscan {
        &self.params
    }

    /// Incrementally relabel after `change` was applied to `index`:
    /// splice the cached adjacency and re-query only the affected points,
    /// then rerun the reduce. Bit-equal to [`recluster`](Self::recluster)
    /// on the same frame.
    pub fn relabel(
        &mut self,
        index: &mut DynamicIndex,
        change: &FrameChange,
    ) -> Result<FrameClustering, SearchError> {
        self.update(index, Some(change))
    }

    /// Recluster the frame from scratch (every live point re-queried); the
    /// cached adjacency is replaced wholesale. The streaming oracle — and
    /// the recovery path when a frame's change list is unavailable.
    pub fn recluster(&mut self, index: &mut DynamicIndex) -> Result<FrameClustering, SearchError> {
        self.update(index, None)
    }

    fn update(
        &mut self,
        index: &mut DynamicIndex,
        change: Option<&FrameChange>,
    ) -> Result<FrameClustering, SearchError> {
        let tel = Telemetry::current();
        let mut span = tel.as_ref().map(|t| {
            t.span(if change.is_some() {
                "analytics.dbscan.relabel"
            } else {
                "analytics.dbscan.recluster"
            })
        });

        let mut frame = index.as_index()?;
        let positions: Vec<Vec3> = frame.index.points().to_vec();
        let handles: Vec<u32> = frame.handles.to_vec();

        // Grow the handle space to cover this frame's ids.
        let max_handle = handles
            .iter()
            .chain(change.iter().flat_map(|c| {
                c.moved
                    .iter()
                    .chain(c.inserted.iter())
                    .chain(c.removed.iter())
            }))
            .copied()
            .max();
        let cap = self
            .adjacency
            .len()
            .max(max_handle.map_or(0, |m| m as usize + 1));
        self.adjacency.resize_with(cap, Vec::new);
        self.alive.resize(cap, false);
        self.known.resize(cap, false);

        // Live mask and handle → compact translation for this frame.
        self.alive.fill(false);
        let mut compact_of: Vec<u32> = vec![u32::MAX; cap];
        for (ci, &h) in handles.iter().enumerate() {
            self.alive[h as usize] = true;
            compact_of[h as usize] = ci as u32;
        }

        // Which handles to re-query, and which to drop from cached lists.
        let mut seed_mask = vec![false; cap];
        let mut changed = vec![false; cap];
        match change {
            Some(change) => {
                for &h in change.moved.iter().chain(&change.inserted) {
                    if self.alive[h as usize] {
                        seed_mask[h as usize] = true;
                    }
                    changed[h as usize] = true;
                }
                for &h in &change.removed {
                    changed[h as usize] = true;
                    self.adjacency[h as usize].clear();
                }
                // Auto-seed live points this maintainer has never queried.
                for &h in &handles {
                    if !self.known[h as usize] && !seed_mask[h as usize] {
                        seed_mask[h as usize] = true;
                        changed[h as usize] = true;
                    }
                }
            }
            None => {
                for &h in &handles {
                    seed_mask[h as usize] = true;
                    changed[h as usize] = true;
                }
                for (h, adj) in self.adjacency.iter_mut().enumerate() {
                    if !self.alive[h] {
                        adj.clear();
                    }
                }
            }
        }
        let seeds: Vec<u32> = (0..cap as u32).filter(|&h| seed_mask[h as usize]).collect();

        // Drop every changed handle from every cached list; the seed pass
        // below re-adds the ones still in range.
        for &h in &handles {
            self.adjacency[h as usize].retain(|&x| !changed[x as usize]);
        }

        // Fresh neighborhoods at the seed positions only (batched range
        // queries through the frame's Index view, compact ids translated
        // back to handles).
        let seed_positions: Vec<Vec3> = seeds
            .iter()
            .map(|&h| positions[compact_of[h as usize] as usize])
            .collect();
        let hit_lists = self
            .params
            .neighborhoods(&seed_positions, &mut frame.index)?;
        for (&m, hits) in seeds.iter().zip(&hit_lists) {
            self.adjacency[m as usize] = hits.iter().map(|&c| handles[c as usize]).collect();
        }
        // Symmetric splice: every non-seed hit of seed `m` regains `m`.
        for &m in &seeds {
            let neighbors = std::mem::take(&mut self.adjacency[m as usize]);
            for &p in &neighbors {
                if !seed_mask[p as usize] {
                    self.adjacency[p as usize].push(m);
                }
            }
            self.adjacency[m as usize] = neighbors;
        }
        for &h in &handles {
            self.known[h as usize] = true;
        }

        let clustering = cluster_adjacency(
            &self.adjacency,
            Some(self.alive.as_slice()),
            self.params.min_pts,
        );
        if let Some(t) = &tel {
            t.counter_add("analytics.dbscan.stream.frames", 1);
            t.counter_add("analytics.dbscan.stream.requeried", seeds.len() as u64);
        }
        if let Some(span) = span.as_mut() {
            span.attr("alive", handles.len() as f64)
                .attr("requeried", seeds.len() as f64)
                .attr("clusters", clustering.num_clusters as f64);
        }
        Ok(FrameClustering {
            clustering,
            requeried: seeds.len(),
            alive: handles.len(),
        })
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use rtnn::{RtnnConfig, SearchParams};
    use rtnn_gpusim::Device;

    fn config() -> RtnnConfig {
        RtnnConfig::new(SearchParams::range(0.9, 64))
    }

    /// Deterministic pseudo-random walk for a handful of points.
    fn jitter(step: u64, h: u32) -> Vec3 {
        let mix = |a: u64| {
            let x = a
                .wrapping_mul(0x9E3779B97F4A7C15)
                .wrapping_add(0xD1B54A32D192ED03);
            ((x >> 33) as f32 / (1u64 << 31) as f32) - 0.5
        };
        let s = step.wrapping_mul(31).wrapping_add(h as u64);
        Vec3::new(mix(s), mix(s ^ 0xABCD), mix(s ^ 0x1234)) * 0.4
    }

    #[test]
    fn relabel_matches_recluster_across_moves_inserts_and_removes() {
        let device = Device::rtx_2080();
        let mut inc_index = DynamicIndex::new(&device, config());
        let mut full_index = DynamicIndex::new(&device, config());
        let params = Dbscan::new(0.9, 3);
        let mut inc = StreamingDbscan::new(params);
        let mut full = StreamingDbscan::new(params);

        // Seed frame: a grid of points.
        let mut handles = Vec::new();
        let mut inserted = Vec::new();
        for i in 0..30u32 {
            let p = Vec3::new((i % 6) as f32 * 0.7, (i / 6) as f32 * 0.7, 0.0);
            let h = inc_index.insert(p);
            assert_eq!(h, full_index.insert(p));
            handles.push(h);
            inserted.push(h);
        }
        let change = FrameChange {
            inserted,
            ..Default::default()
        };
        let a = inc.relabel(&mut inc_index, &change).unwrap();
        let b = full.recluster(&mut full_index).unwrap();
        assert_eq!(a.clustering, b.clustering);
        assert_eq!(a.requeried, a.alive, "first frame seeds everything");

        // Drift frames: move a rotating third, drop one, add one.
        for step in 1..6u64 {
            let mut change = FrameChange::default();
            for (i, &h) in handles.iter().enumerate() {
                if inc_index.position(h).is_none() {
                    continue;
                }
                if (i as u64 + step).is_multiple_of(3) {
                    let p = inc_index.position(h).unwrap() + jitter(step, h);
                    inc_index.move_point(h, p);
                    full_index.move_point(h, p);
                    change.moved.push(h);
                }
            }
            if let Some(&victim) = handles.get((step as usize * 7) % handles.len()) {
                if inc_index.position(victim).is_some() {
                    inc_index.remove(victim);
                    full_index.remove(victim);
                    change.removed.push(victim);
                }
            }
            let p = Vec3::new(step as f32 * 0.3, -0.5, 0.2);
            let h = inc_index.insert(p);
            assert_eq!(h, full_index.insert(p));
            handles.push(h);
            change.inserted.push(h);

            let a = inc.relabel(&mut inc_index, &change).unwrap();
            let b = full.recluster(&mut full_index).unwrap();
            assert_eq!(a.clustering, b.clustering, "step {step}");
            assert_eq!(a.alive, b.alive);
            assert!(
                a.requeried < a.alive,
                "step {step}: relabel must re-query a strict subset ({} of {})",
                a.requeried,
                a.alive
            );
        }
    }

    #[test]
    fn unannounced_points_are_auto_seeded() {
        let device = Device::rtx_2080();
        let mut index = DynamicIndex::new(&device, config());
        for i in 0..8 {
            index.insert(Vec3::new(i as f32 * 0.5, 0.0, 0.0));
        }
        // relabel with an empty change on a never-seen scene must still
        // produce correct labels (everything auto-seeded).
        let mut inc = StreamingDbscan::new(Dbscan::new(0.6, 2));
        let a = inc.relabel(&mut index, &FrameChange::default()).unwrap();
        assert_eq!(a.requeried, 8);
        let mut full = StreamingDbscan::new(Dbscan::new(0.6, 2));
        let b = full.recluster(&mut index).unwrap();
        assert_eq!(a.clustering, b.clustering);
        assert_eq!(a.clustering.num_clusters, 1);
    }
}
