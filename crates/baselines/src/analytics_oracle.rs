//! Exhaustive O(n²) oracles for the spatial-analytics workloads
//! (`rtnn-analytics`): DBSCAN clustering and reverse k-NN.
//!
//! Both are written as directly as possible from the definitions — full
//! pairwise distance scans, breadth-first component flooding — sharing no
//! code with the engine-driven implementations they validate, so agreement
//! is evidence rather than tautology.
//!
//! ## Semantics (shared contract with `rtnn-analytics`)
//!
//! * Neighborhoods use the engine's *strict* radius predicate
//!   `d² < eps²` and include the point itself.
//! * A point is **core** iff its neighborhood (self included) holds at
//!   least `min_pts` points.
//! * Clusters are the connected components of core points under
//!   eps-adjacency; a non-core point with at least one core neighbor
//!   (**border**) joins the cluster of its *lowest-id* core neighbor; the
//!   rest is **noise** (`None`).
//! * A cluster's label is the smallest member id over all of its assigned
//!   members (cores and borders) — deterministic regardless of any
//!   traversal or merge order.
//! * `p` is a reverse-k-NN member of query `q` iff `d²(p, q) < r_max²`
//!   and fewer than `k` indexed points other than `p` lie strictly closer
//!   to `p` than `q` does. Member lists are ascending point ids.

use rtnn_math::Vec3;

/// Exhaustive DBSCAN: per-point cluster label (`None` = noise), labels
/// canonicalized to the smallest member id of each cluster.
pub fn dbscan_oracle(points: &[Vec3], eps: f32, min_pts: usize) -> Vec<Option<u32>> {
    let n = points.len();
    let eps2 = eps * eps;
    let adjacency: Vec<Vec<u32>> = points
        .iter()
        .map(|&p| {
            (0..n as u32)
                .filter(|&j| p.distance_squared(points[j as usize]) < eps2)
                .collect()
        })
        .collect();
    let core: Vec<bool> = adjacency.iter().map(|a| a.len() >= min_pts).collect();

    // Flood the core graph: breadth-first from every unvisited core point.
    let mut component: Vec<Option<usize>> = vec![None; n];
    let mut num_components = 0;
    for start in 0..n {
        if !core[start] || component[start].is_some() {
            continue;
        }
        let comp = num_components;
        num_components += 1;
        let mut frontier = vec![start as u32];
        component[start] = Some(comp);
        while let Some(p) = frontier.pop() {
            for &q in &adjacency[p as usize] {
                if core[q as usize] && component[q as usize].is_none() {
                    component[q as usize] = Some(comp);
                    frontier.push(q);
                }
            }
        }
    }
    // Borders join the component of their lowest-id core neighbor.
    for p in 0..n {
        if core[p] || component[p].is_some() {
            continue;
        }
        if let Some(&c) = adjacency[p].iter().find(|&&q| core[q as usize]) {
            component[p] = component[c as usize];
        }
    }
    // Canonical label per component: the smallest assigned member id.
    let mut min_member: Vec<u32> = vec![u32::MAX; num_components];
    for (p, assigned) in component.iter().enumerate() {
        if let Some(comp) = assigned {
            min_member[*comp] = min_member[*comp].min(p as u32);
        }
    }
    component
        .into_iter()
        .map(|comp| comp.map(|c| min_member[c]))
        .collect()
}

/// Exhaustive reverse k-NN: for each query, the ascending ids of every
/// indexed point within `r_max` that has the query among its `k` nearest.
pub fn rknn_oracle(points: &[Vec3], queries: &[Vec3], k: usize, r_max: f32) -> Vec<Vec<u32>> {
    let r2 = r_max * r_max;
    queries
        .iter()
        .map(|&q| {
            (0..points.len() as u32)
                .filter(|&pi| {
                    let p = points[pi as usize];
                    let dq2 = p.distance_squared(q);
                    if dq2 >= r2 {
                        return false;
                    }
                    let closer = points
                        .iter()
                        .enumerate()
                        .filter(|&(j, &pj)| j as u32 != pi && p.distance_squared(pj) < dq2)
                        .count();
                    closer < k
                })
                .collect()
        })
        .collect()
}

#[cfg(test)]
mod tests {
    use super::*;

    fn line_cloud() -> Vec<Vec3> {
        // Two tight groups on the x axis plus one far-away straggler.
        [0.0f32, 0.4, 0.8, 5.0, 5.4, 5.8, 20.0]
            .iter()
            .map(|&x| Vec3::new(x, 0.0, 0.0))
            .collect()
    }

    #[test]
    fn dbscan_finds_the_two_groups_and_the_noise_point() {
        let labels = dbscan_oracle(&line_cloud(), 0.5, 2);
        assert_eq!(
            labels,
            vec![Some(0), Some(0), Some(0), Some(3), Some(3), Some(3), None]
        );
    }

    #[test]
    fn dbscan_border_points_join_their_lowest_id_core_neighbor() {
        // Only 1 is core (its neighborhood {0, 1, 2} reaches min_pts = 3);
        // 0 and 2 are borders joining core 1's cluster, whose smallest
        // member is border 0.
        let points = vec![
            Vec3::new(0.0, 0.0, 0.0),
            Vec3::new(0.5, 0.0, 0.0),
            Vec3::new(1.2, 0.0, 0.0),
        ];
        let labels = dbscan_oracle(&points, 0.9, 3);
        assert_eq!(labels, vec![Some(0), Some(0), Some(0)]);
        // With min_pts high enough nothing is core: everything is noise.
        assert_eq!(dbscan_oracle(&points, 0.9, 4), vec![None; 3]);
    }

    #[test]
    fn dbscan_strict_radius_excludes_the_boundary() {
        let points = vec![Vec3::new(0.0, 0.0, 0.0), Vec3::new(1.0, 0.0, 0.0)];
        // d == eps is *not* a neighbor (strict predicate): singletons only.
        assert_eq!(dbscan_oracle(&points, 1.0, 2), vec![None, None]);
        assert_eq!(dbscan_oracle(&points, 1.001, 2), vec![Some(0), Some(0)]);
    }

    #[test]
    fn rknn_matches_hand_computed_sets() {
        // points: 0 at x=0, 1 at x=1, 2 at x=10; query at x=0.4.
        let points = vec![
            Vec3::new(0.0, 0.0, 0.0),
            Vec3::new(1.0, 0.0, 0.0),
            Vec3::new(10.0, 0.0, 0.0),
        ];
        let q = vec![Vec3::new(0.4, 0.0, 0.0)];
        // k=1: point 0's nearest other point is 1 at d=1.0 > 0.4 → q is
        // closer than its 1-NN → member. Point 1: nearest other is 0 at
        // d=1.0 > 0.6 → member. Point 2 is outside r_max.
        assert_eq!(rknn_oracle(&points, &q, 1, 5.0), vec![vec![0, 1]]);
        // Tiny r_max prunes everything.
        assert_eq!(rknn_oracle(&points, &q, 1, 0.3), vec![Vec::<u32>::new()]);
        // A query exactly on a point: zero distance is always within k.
        let on = vec![Vec3::new(10.0, 0.0, 0.0)];
        assert_eq!(rknn_oracle(&points, &on, 1, 1.0), vec![vec![2]]);
    }
}
