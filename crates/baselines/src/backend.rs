//! [`BruteForceBackend`]: the structure-less `rtnn::Backend` that doubles
//! as the oracle.
//!
//! Where the ray-tracing backends build a BVH and traverse it, this backend
//! keeps nothing and answers every traversal by exhaustive scan over the
//! basic-mapping semantics (`rtnn::exhaustive_traverse`): a point is a
//! candidate exactly when its width-`w` AABB contains the query, and the
//! per-candidate shader semantics (sphere test, cap termination, bounded
//! KNN heap) are identical to the ray-tracing programs. KNN results are
//! therefore bit-equal to the RT backends (candidate *sets* are identical;
//! only the visit order differs, which KNN's distance-sorted output
//! erases), and range results are set-equal — which is what the
//! cross-backend equivalence suite checks the RT backends against.
//!
//! The scan is charged to the same simulated device as every other
//! backend, so its end-to-end numbers double as the "GPU brute force"
//! comparison point of the paper's introduction.

use rtnn::{exhaustive_traverse, Accel, AccelRef, Backend, RefitOutcome, Traversal, TraversalJob};
use rtnn_bvh::BuildParams;
use rtnn_gpusim::device::OutOfDeviceMemory;
use rtnn_gpusim::{Device, StructureTiming};
use rtnn_math::Vec3;

/// The exhaustive-scan backend (see module docs).
#[derive(Debug, Clone, Copy)]
pub struct BruteForceBackend<'d> {
    device: &'d Device,
}

impl<'d> BruteForceBackend<'d> {
    /// A backend on `device`.
    pub fn new(device: &'d Device) -> Self {
        BruteForceBackend { device }
    }
}

impl<'d> Backend for BruteForceBackend<'d> {
    fn name(&self) -> &'static str {
        "bruteforce-oracle"
    }

    fn device(&self) -> &Device {
        self.device
    }

    fn build(
        &self,
        points: &[Vec3],
        aabb_width: f32,
        _build: BuildParams,
    ) -> Result<Accel, OutOfDeviceMemory> {
        // No structure beyond the resident points (12 bytes each).
        self.device.check_allocation(points.len() as u64 * 12)?;
        Ok(Accel::flat(points.len(), aabb_width))
    }

    fn refit(&self, accel: &mut Accel, points: &[Vec3]) -> Option<RefitOutcome> {
        accel.refit_in_place(self.device, points)
    }

    fn traverse(&self, accel: AccelRef<'_>, job: &TraversalJob<'_>) -> Traversal {
        exhaustive_traverse(self.device, accel, job)
    }

    fn timing(&self, _num_prims: usize) -> StructureTiming {
        // Nothing to build, nothing to refit.
        StructureTiming::default()
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use rtnn::verify::{brute_force_knn, check_all};
    use rtnn::{EngineConfig, Index, OptLevel, QueryPlan, SearchParams};

    fn cloud() -> Vec<Vec3> {
        (0..700)
            .map(|i| {
                let f = i as f32;
                Vec3::new((f * 0.437) % 7.0, (f * 0.671) % 7.0, (f * 0.193) % 7.0)
            })
            .collect()
    }

    #[test]
    fn oracle_backend_drives_the_full_index_pipeline() {
        let device = Device::rtx_2080();
        let backend = BruteForceBackend::new(&device);
        let points = cloud();
        let queries: Vec<Vec3> = points.iter().step_by(11).copied().collect();
        for opt in OptLevel::all() {
            let mut index =
                Index::build(&backend, &points[..], EngineConfig::default().with_opt(opt));
            let knn = index.query(&queries, &QueryPlan::knn(1.3, 6)).unwrap();
            check_all(
                &points,
                &queries,
                &SearchParams::knn(1.3, 6),
                &knn.neighbors,
            )
            .unwrap_or_else(|(q, e)| panic!("{opt:?} query {q}: {e}"));
            for (qi, q) in queries.iter().enumerate() {
                assert_eq!(knn.neighbors[qi], brute_force_knn(&points, *q, 1.3, 6));
            }
        }
    }

    #[test]
    fn oracle_backend_charges_the_device() {
        let device = Device::rtx_2080();
        let backend = BruteForceBackend::new(&device);
        let points = cloud();
        let queries: Vec<Vec3> = points.iter().step_by(7).copied().collect();
        let mut index = Index::build(&backend, &points[..], EngineConfig::default());
        let r = index.query(&queries, &QueryPlan::range(1.0, 64)).unwrap();
        assert!(r.breakdown.search_ms > 0.0);
        assert!(r.breakdown.data_ms > 0.0);
        assert_eq!(r.breakdown.bvh_ms, 0.0, "no structure, no build cost");
    }

    #[test]
    fn timing_is_free_and_refit_tracks_counts() {
        let device = Device::rtx_2080();
        let backend = BruteForceBackend::new(&device);
        let t = backend.timing(1_000_000);
        assert_eq!(t.build_ms, 0.0);
        assert_eq!(t.refit_ms, 0.0);
        let points = cloud();
        let mut accel = backend.build(&points, 1.0, BuildParams::default()).unwrap();
        assert!(backend.refit(&mut accel, &points).is_some());
        assert!(backend.refit(&mut accel, &points[..10]).is_none());
    }
}
