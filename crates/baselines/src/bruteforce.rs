//! Exhaustive-scan neighbor search.
//!
//! Ground truth for every other searcher, and a "GPU brute force" baseline
//! in its own right: each query thread streams every point, which is
//! perfectly regular (no divergence) but maximally work-inefficient — the
//! opposite corner of the work-efficiency / hardware-efficiency trade-off
//! the paper's introduction describes.

use crate::common::{transfer_ms, Baseline, BaselineRun, SearchRequest};
use rtnn_gpusim::kernel::{point_address, run_sm_kernel, SmKernelConfig, ThreadWork};
use rtnn_gpusim::Device;
use rtnn_math::Vec3;

/// The brute-force baseline.
#[derive(Debug, Clone, Copy, Default)]
pub struct BruteForce;

/// Cost (in generic SM ops) of one distance test.
const OPS_PER_DISTANCE_TEST: u64 = 4;

impl BruteForce {
    fn run(
        &self,
        device: &Device,
        points: &[Vec3],
        queries: &[Vec3],
        request: SearchRequest,
        knn: bool,
    ) -> BaselineRun {
        let r2 = request.radius * request.radius;
        let (neighbors, metrics) =
            run_sm_kernel(device, queries.len(), SmKernelConfig::default(), |qi| {
                let q = queries[qi];
                let mut found: Vec<(f32, u32)> = Vec::new();
                for (pi, &p) in points.iter().enumerate() {
                    let d2 = q.distance_squared(p);
                    if d2 < r2 {
                        found.push((d2, pi as u32));
                    }
                }
                found.sort_by(|a, b| a.0.partial_cmp(&b.0).unwrap().then(a.1.cmp(&b.1)));
                found.truncate(request.k);
                let ids: Vec<u32> = found.into_iter().map(|(_, id)| id).collect();
                // Every thread reads every point once; sample the address stream
                // (one address per 32 points) to keep the trace bounded while the
                // op count carries the full cost.
                let addresses: Vec<u64> = (0..points.len() as u32)
                    .step_by(32)
                    .map(point_address)
                    .collect();
                let extra_sort_ops = if knn {
                    (ids.len() as u64).max(1) * 4
                } else {
                    0
                };
                (
                    ids,
                    ThreadWork::new(
                        points.len() as u64 * OPS_PER_DISTANCE_TEST + extra_sort_ops,
                        addresses,
                    ),
                )
            });
        BaselineRun {
            neighbors,
            build_ms: 0.0,
            search_ms: metrics.time_ms,
            data_ms: transfer_ms(device, points.len(), queries.len(), request.k),
        }
    }
}

impl Baseline for BruteForce {
    fn name(&self) -> &'static str {
        "BruteForce"
    }

    fn range_search(
        &self,
        device: &Device,
        points: &[Vec3],
        queries: &[Vec3],
        request: SearchRequest,
    ) -> Option<BaselineRun> {
        Some(self.run(device, points, queries, request, false))
    }

    fn knn_search(
        &self,
        device: &Device,
        points: &[Vec3],
        queries: &[Vec3],
        request: SearchRequest,
    ) -> Option<BaselineRun> {
        Some(self.run(device, points, queries, request, true))
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use rtnn::verify::{brute_force_knn, check_all};
    use rtnn::SearchParams;

    fn cloud() -> Vec<Vec3> {
        (0..500)
            .map(|i| {
                let f = i as f32;
                Vec3::new((f * 0.37) % 8.0, (f * 0.61) % 8.0, (f * 0.13) % 8.0)
            })
            .collect()
    }

    #[test]
    fn range_results_satisfy_the_contract() {
        let device = Device::rtx_2080();
        let points = cloud();
        let queries: Vec<Vec3> = points.iter().step_by(17).copied().collect();
        let request = SearchRequest::new(1.0, 64);
        let run = BruteForce
            .range_search(&device, &points, &queries, request)
            .unwrap();
        check_all(
            &points,
            &queries,
            &SearchParams::range(1.0, 64),
            &run.neighbors,
        )
        .unwrap_or_else(|(q, e)| panic!("query {q}: {e}"));
        assert!(run.search_ms > 0.0);
        assert_eq!(run.build_ms, 0.0);
    }

    #[test]
    fn knn_results_are_the_true_nearest() {
        let device = Device::rtx_2080();
        let points = cloud();
        let queries: Vec<Vec3> = points.iter().step_by(31).copied().collect();
        let request = SearchRequest::new(2.0, 5);
        let run = BruteForce
            .knn_search(&device, &points, &queries, request)
            .unwrap();
        for (qi, q) in queries.iter().enumerate() {
            assert_eq!(run.neighbors[qi], brute_force_knn(&points, *q, 2.0, 5));
        }
    }

    #[test]
    fn cost_scales_with_both_points_and_queries() {
        let device = Device::rtx_2080();
        let points = cloud();
        let queries: Vec<Vec3> = points.iter().step_by(3).copied().collect();
        let request = SearchRequest::new(1.0, 8);
        let small = BruteForce
            .range_search(&device, &points[..100], &queries[..20], request)
            .unwrap();
        let large = BruteForce
            .range_search(&device, &points, &queries, request)
            .unwrap();
        assert!(large.search_ms > small.search_ms);
    }
}
