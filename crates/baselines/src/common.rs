//! Shared types for the baseline searchers.

use rtnn_gpusim::Device;
use rtnn_math::Vec3;

/// A search request shared by all baselines: radius-bounded, count-bounded,
/// exactly the interface of Section 2.1.
#[derive(Debug, Clone, Copy)]
pub struct SearchRequest {
    /// Search radius.
    pub radius: f32,
    /// Maximum neighbor count.
    pub k: usize,
}

impl SearchRequest {
    /// Construct a request.
    pub fn new(radius: f32, k: usize) -> Self {
        assert!(radius > 0.0, "radius must be positive");
        assert!(k >= 1, "k must be at least 1");
        SearchRequest { radius, k }
    }
}

/// The outcome of one baseline execution.
#[derive(Debug, Clone)]
pub struct BaselineRun {
    /// Per-query neighbor ids.
    pub neighbors: Vec<Vec<u32>>,
    /// Simulated milliseconds spent building the data structure.
    pub build_ms: f64,
    /// Simulated milliseconds spent searching.
    pub search_ms: f64,
    /// Simulated milliseconds spent on host↔device transfers.
    pub data_ms: f64,
}

impl BaselineRun {
    /// End-to-end simulated time.
    pub fn total_ms(&self) -> f64 {
        self.build_ms + self.search_ms + self.data_ms
    }

    /// Total neighbor links reported.
    pub fn total_neighbors(&self) -> usize {
        self.neighbors.iter().map(Vec::len).sum()
    }
}

/// A uniform interface over the baselines so the bench harness can sweep
/// them generically.
pub trait Baseline {
    /// Short name used in figures ("cuNSearch", "FRNN", ...).
    fn name(&self) -> &'static str;

    /// Fixed-radius search, or `None` if the baseline does not support it
    /// (FRNN and FastRNN are KNN-only, mirroring the original libraries).
    fn range_search(
        &self,
        device: &Device,
        points: &[Vec3],
        queries: &[Vec3],
        request: SearchRequest,
    ) -> Option<BaselineRun>;

    /// KNN search, or `None` if unsupported (cuNSearch is range-only) or the
    /// requested `K` is out of the baseline's supported range (PCLOctree
    /// supports only `K = 1`).
    fn knn_search(
        &self,
        device: &Device,
        points: &[Vec3],
        queries: &[Vec3],
        request: SearchRequest,
    ) -> Option<BaselineRun>;
}

/// Transfer cost shared by every baseline: points + queries in, ids out.
pub fn transfer_ms(device: &Device, num_points: usize, num_queries: usize, k: usize) -> f64 {
    device.transfer_h2d_ms((num_points + num_queries) as u64 * 12)
        + device.transfer_d2h_ms(num_queries as u64 * k as u64 * 4)
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn run_totals() {
        let run = BaselineRun {
            neighbors: vec![vec![0, 1], vec![2]],
            build_ms: 1.0,
            search_ms: 2.0,
            data_ms: 0.5,
        };
        assert_eq!(run.total_ms(), 3.5);
        assert_eq!(run.total_neighbors(), 3);
    }

    #[test]
    #[should_panic]
    fn zero_radius_request_panics() {
        let _ = SearchRequest::new(0.0, 4);
    }

    #[test]
    fn transfer_grows_with_input() {
        let d = Device::rtx_2080();
        assert!(transfer_ms(&d, 1_000_000, 1_000_000, 32) > transfer_ms(&d, 1000, 1000, 32));
    }
}
