//! FastRNN: the RT-core neighbor search *without* RTNN's optimisations.
//!
//! Evangelou et al. (JCGT 2021) also map neighbor search onto the RT cores,
//! but without query scheduling, partitioning or bundling; the paper uses it
//! as the "unoptimised ray-tracing-accelerated" baseline (65× slower than
//! RTNN on KNN). That is exactly the `OptLevel::NoOpt` configuration of the
//! `rtnn` engine, so this baseline is a thin wrapper — the comparison in
//! Figure 11/13 is therefore apples-to-apples by construction.

use crate::common::{Baseline, BaselineRun, SearchRequest};
use rtnn::{EngineConfig, GpusimBackend, Index, OptLevel, QueryPlan};
use rtnn_gpusim::Device;
use rtnn_math::Vec3;

/// The FastRNN baseline (KNN only, like the original).
#[derive(Debug, Clone, Copy, Default)]
pub struct FastRnn;

impl Baseline for FastRnn {
    fn name(&self) -> &'static str {
        "FastRNN"
    }

    fn range_search(
        &self,
        _device: &Device,
        _points: &[Vec3],
        _queries: &[Vec3],
        _request: SearchRequest,
    ) -> Option<BaselineRun> {
        // The original FastRNN targets KNN search only (Section 6.1).
        None
    }

    fn knn_search(
        &self,
        device: &Device,
        points: &[Vec3],
        queries: &[Vec3],
        request: SearchRequest,
    ) -> Option<BaselineRun> {
        let backend = GpusimBackend::new(device);
        let mut index = Index::build(
            &backend,
            points,
            EngineConfig::default().with_opt(OptLevel::NoOpt),
        );
        let results = index
            .query(queries, &QueryPlan::knn(request.radius, request.k))
            .ok()?;
        Some(BaselineRun {
            neighbors: results.neighbors,
            build_ms: results.breakdown.bvh_ms,
            search_ms: results.breakdown.search_ms
                + results.breakdown.fs_ms
                + results.breakdown.opt_ms,
            data_ms: results.breakdown.data_ms,
        })
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use rtnn::verify::check_all;
    use rtnn::SearchParams;

    fn cloud() -> Vec<Vec3> {
        (0..600)
            .map(|i| {
                let f = i as f32;
                Vec3::new((f * 0.737) % 7.0, (f * 0.311) % 7.0, (f * 0.553) % 7.0)
            })
            .collect()
    }

    #[test]
    fn knn_matches_the_oracle() {
        let device = Device::rtx_2080();
        let points = cloud();
        let queries: Vec<Vec3> = points.iter().step_by(19).copied().collect();
        let request = SearchRequest::new(1.2, 5);
        let run = FastRnn
            .knn_search(&device, &points, &queries, request)
            .unwrap();
        check_all(
            &points,
            &queries,
            &SearchParams::knn(1.2, 5),
            &run.neighbors,
        )
        .unwrap_or_else(|(q, e)| panic!("query {q}: {e}"));
        assert!(run.build_ms > 0.0);
        assert!(run.search_ms > 0.0);
    }

    #[test]
    fn range_is_unsupported() {
        let device = Device::rtx_2080();
        assert!(FastRnn
            .range_search(&device, &cloud(), &[Vec3::ZERO], SearchRequest::new(1.0, 4))
            .is_none());
    }

    #[test]
    fn fastrnn_is_slower_than_fully_optimised_rtnn_on_dense_clouds() {
        // The headline contrast of the paper, at small scale: same device,
        // same queries, optimisations off vs on.
        let device = Device::rtx_2080();
        let points: Vec<Vec3> = (0..6000)
            .map(|i| {
                let f = i as f32;
                Vec3::new((f * 0.17) % 5.0, (f * 0.29) % 5.0, (f * 0.41) % 5.0)
            })
            .collect();
        let queries = points.clone();
        let request = SearchRequest::new(2.5, 8);
        let fastrnn = FastRnn
            .knn_search(&device, &points, &queries, request)
            .unwrap();
        let backend = GpusimBackend::new(&device);
        let rtnn_full = Index::build(&backend, &points[..], EngineConfig::default())
            .query(&queries, &QueryPlan::knn(2.0, 8))
            .unwrap();
        assert!(
            rtnn_full.breakdown.total_ms() < fastrnn.total_ms(),
            "RTNN {} ms vs FastRNN {} ms",
            rtnn_full.breakdown.total_ms(),
            fastrnn.total_ms()
        );
    }
}
