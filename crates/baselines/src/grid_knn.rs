//! FRNN-like grid-based KNN search.
//!
//! FRNN ("fixed radius nearest neighbors", the drop-in replacement for
//! PyTorch3D's `knn_points` the paper compares against) also bins points
//! into a uniform grid with cell size `r`, but answers K-nearest-neighbor
//! queries: each query scans its 27-cell neighbourhood once while
//! maintaining a bounded priority queue of the `K` closest candidates.

use crate::common::{transfer_ms, Baseline, BaselineRun, SearchRequest};
use rtnn_gpusim::kernel::{
    cell_offset_address, point_address, run_sm_kernel, SmKernelConfig, ThreadWork,
};
use rtnn_gpusim::Device;
use rtnn_math::{Aabb, GridCoord, PointBins, UniformGrid, Vec3};

/// The FRNN-like baseline.
#[derive(Debug, Clone, Copy, Default)]
pub struct GridKnn;

/// SM ops charged per candidate (distance test + queue bookkeeping).
const OPS_PER_CANDIDATE: u64 = 18;
/// SM ops charged per point during grid construction.
const OPS_PER_BUILD_POINT: u64 = 6;

impl Baseline for GridKnn {
    fn name(&self) -> &'static str {
        "FRNN"
    }

    fn range_search(
        &self,
        _device: &Device,
        _points: &[Vec3],
        _queries: &[Vec3],
        _request: SearchRequest,
    ) -> Option<BaselineRun> {
        // FRNN is a KNN library (Section 6.1).
        None
    }

    fn knn_search(
        &self,
        device: &Device,
        points: &[Vec3],
        queries: &[Vec3],
        request: SearchRequest,
    ) -> Option<BaselineRun> {
        let data_ms = transfer_ms(device, points.len(), queries.len(), request.k);
        if points.is_empty() {
            return Some(BaselineRun {
                neighbors: vec![Vec::new(); queries.len()],
                build_ms: 0.0,
                search_ms: 0.0,
                data_ms,
            });
        }
        let mut bounds = Aabb::from_points(points);
        if bounds.longest_extent() <= 0.0 {
            bounds = bounds.expanded(request.radius.max(1e-3));
        }
        let grid = UniformGrid::new(bounds, request.radius);
        let bins = PointBins::build(grid, points);
        let (_, build_metrics) =
            run_sm_kernel(device, points.len(), SmKernelConfig::default(), |pi| {
                (
                    (),
                    ThreadWork::new(OPS_PER_BUILD_POINT, vec![point_address(pi as u32)]),
                )
            });

        let r2 = request.radius * request.radius;
        let (neighbors, search_metrics) =
            run_sm_kernel(device, queries.len(), SmKernelConfig::default(), |qi| {
                let q = queries[qi];
                let grid = bins.grid();
                let dims = grid.dims();
                let c = grid.cell_of(q);
                let lo = GridCoord::new(
                    c.x.saturating_sub(1),
                    c.y.saturating_sub(1),
                    c.z.saturating_sub(1),
                );
                let hi = GridCoord::new(
                    (c.x + 1).min(dims[0] - 1),
                    (c.y + 1).min(dims[1] - 1),
                    (c.z + 1).min(dims[2] - 1),
                );
                let mut best: Vec<(f32, u32)> = Vec::with_capacity(request.k + 1);
                let mut candidates = 0u64;
                let mut addresses = Vec::new();
                for cell in grid.iter_range(lo, hi) {
                    addresses.push(cell_offset_address(grid.cell_index(cell)));
                    for &pid in bins.cell_points(cell) {
                        candidates += 1;
                        addresses.push(point_address(pid));
                        let d2 = q.distance_squared(points[pid as usize]);
                        if d2 < r2 {
                            // Insert keeping `best` sorted ascending; drop the worst
                            // beyond K — a simple insertion queue like FRNN's.
                            let pos = best.partition_point(|&(d, id)| (d, id) < (d2, pid));
                            best.insert(pos, (d2, pid));
                            if best.len() > request.k {
                                best.pop();
                            }
                        }
                    }
                }
                let ids: Vec<u32> = best.into_iter().map(|(_, id)| id).collect();
                (
                    ids,
                    ThreadWork::new(candidates * OPS_PER_CANDIDATE, addresses),
                )
            });
        Some(BaselineRun {
            neighbors,
            build_ms: build_metrics.time_ms,
            search_ms: search_metrics.time_ms,
            data_ms,
        })
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use rtnn::verify::{brute_force_knn, check_all};
    use rtnn::SearchParams;

    fn cloud() -> Vec<Vec3> {
        (0..900)
            .map(|i| {
                let f = i as f32;
                Vec3::new((f * 0.437) % 9.0, (f * 0.711) % 9.0, (f * 0.253) % 9.0)
            })
            .collect()
    }

    #[test]
    fn knn_matches_the_oracle() {
        let device = Device::rtx_2080();
        let points = cloud();
        let queries: Vec<Vec3> = points.iter().step_by(23).copied().collect();
        let request = SearchRequest::new(0.9, 6);
        let run = GridKnn
            .knn_search(&device, &points, &queries, request)
            .unwrap();
        check_all(
            &points,
            &queries,
            &SearchParams::knn(0.9, 6),
            &run.neighbors,
        )
        .unwrap_or_else(|(q, e)| panic!("query {q}: {e}"));
        // Spot-check exact id agreement (no ties in this cloud).
        for (qi, q) in queries.iter().enumerate().take(5) {
            assert_eq!(
                run.neighbors[qi],
                brute_force_knn(&points, *q, 0.9, 6),
                "query {qi}"
            );
        }
    }

    #[test]
    fn range_is_unsupported_like_the_original() {
        let device = Device::rtx_2080();
        assert!(GridKnn
            .range_search(&device, &cloud(), &[Vec3::ZERO], SearchRequest::new(1.0, 4))
            .is_none());
    }

    #[test]
    fn radius_bound_is_respected() {
        // All neighbors beyond the radius are rejected even if K is not met.
        let device = Device::rtx_2080();
        let points = vec![
            Vec3::ZERO,
            Vec3::new(0.4, 0.0, 0.0),
            Vec3::new(3.0, 0.0, 0.0),
        ];
        let queries = vec![Vec3::ZERO];
        let run = GridKnn
            .knn_search(&device, &points, &queries, SearchRequest::new(1.0, 10))
            .unwrap();
        assert_eq!(run.neighbors[0], vec![0, 1]);
    }

    #[test]
    fn empty_points_and_far_queries() {
        let device = Device::rtx_2080();
        let run = GridKnn
            .knn_search(&device, &[], &[Vec3::ZERO], SearchRequest::new(1.0, 4))
            .unwrap();
        assert!(run.neighbors[0].is_empty());
        let run2 = GridKnn
            .knn_search(
                &device,
                &cloud(),
                &[Vec3::new(999.0, 999.0, 999.0)],
                SearchRequest::new(1.0, 4),
            )
            .unwrap();
        assert!(run2.neighbors[0].is_empty());
    }
}
