//! A k-d tree searcher.
//!
//! Not one of the paper's GPU baselines, but the canonical CPU data
//! structure for low-dimensional neighbor search (FLANN, nanoflann, ...).
//! It serves two roles here: an additional tree-based comparison point whose
//! traversal is charged to the simulated SMs, and a fast exact oracle for
//! the integration and property tests (brute force is O(N·M) and becomes the
//! test-suite bottleneck first).

use crate::common::{transfer_ms, Baseline, BaselineRun, SearchRequest};
use rtnn_gpusim::kernel::{
    point_address, run_sm_kernel, tree_node_address, SmKernelConfig, ThreadWork,
};
use rtnn_gpusim::Device;
use rtnn_math::Vec3;

/// Maximum points per leaf.
const LEAF_SIZE: usize = 16;
/// SM ops charged per node visited.
const OPS_PER_NODE: u64 = 10;
/// SM ops charged per point distance test.
const OPS_PER_POINT_TEST: u64 = 12;
/// SM ops charged per point during construction.
const OPS_PER_BUILD_POINT: u64 = 12;

#[derive(Debug, Clone)]
enum KdNode {
    Internal {
        axis: u8,
        split: f32,
        left: u32,
        right: u32,
    },
    Leaf {
        start: u32,
        count: u32,
    },
}

/// A balanced k-d tree over a point cloud.
#[derive(Debug, Clone)]
pub struct KdTree {
    nodes: Vec<KdNode>,
    point_ids: Vec<u32>,
}

impl KdTree {
    /// Build a tree over `points`; `None` for an empty cloud.
    pub fn build(points: &[Vec3]) -> Option<Self> {
        if points.is_empty() {
            return None;
        }
        let mut tree = KdTree {
            nodes: Vec::new(),
            point_ids: (0..points.len() as u32).collect(),
        };
        let n = points.len();
        tree.build_node(points, 0, n);
        Some(tree)
    }

    fn build_node(&mut self, points: &[Vec3], start: usize, end: usize) -> u32 {
        let count = end - start;
        let node_index = self.nodes.len() as u32;
        if count <= LEAF_SIZE {
            self.nodes.push(KdNode::Leaf {
                start: start as u32,
                count: count as u32,
            });
            return node_index;
        }
        // Split on the axis with the largest spread of the contained points.
        let mut lo = Vec3::splat(f32::INFINITY);
        let mut hi = Vec3::splat(f32::NEG_INFINITY);
        for &pid in &self.point_ids[start..end] {
            lo = lo.min(points[pid as usize]);
            hi = hi.max(points[pid as usize]);
        }
        let extent = hi - lo;
        let axis = if extent.x >= extent.y && extent.x >= extent.z {
            0
        } else if extent.y >= extent.z {
            1
        } else {
            2
        } as usize;
        if extent[axis] <= 0.0 {
            // All points identical along every axis: leave as an oversized leaf.
            self.nodes.push(KdNode::Leaf {
                start: start as u32,
                count: count as u32,
            });
            return node_index;
        }
        let mid = start + count / 2;
        self.point_ids[start..end].select_nth_unstable_by(count / 2, |&a, &b| {
            points[a as usize][axis]
                .partial_cmp(&points[b as usize][axis])
                .unwrap()
        });
        let split = points[self.point_ids[mid] as usize][axis];
        self.nodes.push(KdNode::Leaf { start: 0, count: 0 }); // placeholder
        let left = self.build_node(points, start, mid);
        let right = self.build_node(points, mid, end);
        self.nodes[node_index as usize] = KdNode::Internal {
            axis: axis as u8,
            split,
            left,
            right,
        };
        node_index
    }

    /// Up to `k` ids within `radius` of `q`, plus traversal work.
    pub fn radius_search(
        &self,
        points: &[Vec3],
        q: Vec3,
        radius: f32,
        k: usize,
    ) -> (Vec<u32>, u64, u64, Vec<u64>) {
        let r2 = radius * radius;
        let mut out = Vec::new();
        let (mut nodes_visited, mut point_tests) = (0u64, 0u64);
        let mut addresses = Vec::new();
        let mut stack = vec![(0u32, 0.0f32)]; // (node, squared distance to its region)
        'outer: while let Some((ni, d2_region)) = stack.pop() {
            if d2_region > r2 {
                continue;
            }
            nodes_visited += 1;
            addresses.push(tree_node_address(ni));
            match &self.nodes[ni as usize] {
                KdNode::Internal {
                    axis,
                    split,
                    left,
                    right,
                } => {
                    let delta = q[*axis as usize] - *split;
                    let (near, far) = if delta <= 0.0 {
                        (*left, *right)
                    } else {
                        (*right, *left)
                    };
                    stack.push((far, d2_region.max(delta * delta)));
                    stack.push((near, d2_region));
                }
                KdNode::Leaf { start, count } => {
                    for &pid in &self.point_ids[*start as usize..(*start + *count) as usize] {
                        point_tests += 1;
                        addresses.push(point_address(pid));
                        if q.distance_squared(points[pid as usize]) < r2 {
                            out.push(pid);
                            if out.len() >= k {
                                break 'outer;
                            }
                        }
                    }
                }
            }
        }
        (out, nodes_visited, point_tests, addresses)
    }

    /// The `k` nearest ids within `radius`, sorted by distance, plus work.
    pub fn knn_search(
        &self,
        points: &[Vec3],
        q: Vec3,
        radius: f32,
        k: usize,
    ) -> (Vec<u32>, u64, u64, Vec<u64>) {
        let mut best: Vec<(f32, u32)> = Vec::with_capacity(k + 1);
        let mut worst = radius * radius;
        let (mut nodes_visited, mut point_tests) = (0u64, 0u64);
        let mut addresses = Vec::new();
        let mut stack = vec![(0u32, 0.0f32)];
        while let Some((ni, d2_region)) = stack.pop() {
            if d2_region >= worst && best.len() >= k {
                continue;
            }
            if d2_region >= radius * radius {
                continue;
            }
            nodes_visited += 1;
            addresses.push(tree_node_address(ni));
            match &self.nodes[ni as usize] {
                KdNode::Internal {
                    axis,
                    split,
                    left,
                    right,
                } => {
                    let delta = q[*axis as usize] - *split;
                    let (near, far) = if delta <= 0.0 {
                        (*left, *right)
                    } else {
                        (*right, *left)
                    };
                    stack.push((far, d2_region.max(delta * delta)));
                    stack.push((near, d2_region));
                }
                KdNode::Leaf { start, count } => {
                    for &pid in &self.point_ids[*start as usize..(*start + *count) as usize] {
                        point_tests += 1;
                        addresses.push(point_address(pid));
                        let d2 = q.distance_squared(points[pid as usize]);
                        if d2 < radius * radius && (best.len() < k || d2 < worst) {
                            let pos = best.partition_point(|&(d, id)| (d, id) < (d2, pid));
                            best.insert(pos, (d2, pid));
                            if best.len() > k {
                                best.pop();
                            }
                            if best.len() == k {
                                worst = best.last().unwrap().0;
                            }
                        }
                    }
                }
            }
        }
        let ids = best.into_iter().map(|(_, id)| id).collect();
        (ids, nodes_visited, point_tests, addresses)
    }

    /// Number of tree nodes.
    pub fn num_nodes(&self) -> usize {
        self.nodes.len()
    }
}

/// The k-d-tree baseline.
#[derive(Debug, Clone, Copy, Default)]
pub struct KdTreeSearch;

impl Baseline for KdTreeSearch {
    fn name(&self) -> &'static str {
        "KdTree"
    }

    fn range_search(
        &self,
        device: &Device,
        points: &[Vec3],
        queries: &[Vec3],
        request: SearchRequest,
    ) -> Option<BaselineRun> {
        let data_ms = transfer_ms(device, points.len(), queries.len(), request.k);
        let Some(tree) = KdTree::build(points) else {
            return Some(BaselineRun {
                neighbors: vec![Vec::new(); queries.len()],
                build_ms: 0.0,
                search_ms: 0.0,
                data_ms,
            });
        };
        let (_, build_metrics) =
            run_sm_kernel(device, points.len(), SmKernelConfig::default(), |pi| {
                (
                    (),
                    ThreadWork::new(OPS_PER_BUILD_POINT, vec![point_address(pi as u32)]),
                )
            });
        let (neighbors, search_metrics) =
            run_sm_kernel(device, queries.len(), SmKernelConfig::default(), |qi| {
                let (ids, nodes, tests, addresses) =
                    tree.radius_search(points, queries[qi], request.radius, request.k);
                (
                    ids,
                    ThreadWork::new(nodes * OPS_PER_NODE + tests * OPS_PER_POINT_TEST, addresses),
                )
            });
        Some(BaselineRun {
            neighbors,
            build_ms: build_metrics.time_ms,
            search_ms: search_metrics.time_ms,
            data_ms,
        })
    }

    fn knn_search(
        &self,
        device: &Device,
        points: &[Vec3],
        queries: &[Vec3],
        request: SearchRequest,
    ) -> Option<BaselineRun> {
        let data_ms = transfer_ms(device, points.len(), queries.len(), request.k);
        let Some(tree) = KdTree::build(points) else {
            return Some(BaselineRun {
                neighbors: vec![Vec::new(); queries.len()],
                build_ms: 0.0,
                search_ms: 0.0,
                data_ms,
            });
        };
        let (_, build_metrics) =
            run_sm_kernel(device, points.len(), SmKernelConfig::default(), |pi| {
                (
                    (),
                    ThreadWork::new(OPS_PER_BUILD_POINT, vec![point_address(pi as u32)]),
                )
            });
        let (neighbors, search_metrics) =
            run_sm_kernel(device, queries.len(), SmKernelConfig::default(), |qi| {
                let (ids, nodes, tests, addresses) =
                    tree.knn_search(points, queries[qi], request.radius, request.k);
                (
                    ids,
                    ThreadWork::new(nodes * OPS_PER_NODE + tests * OPS_PER_POINT_TEST, addresses),
                )
            });
        Some(BaselineRun {
            neighbors,
            build_ms: build_metrics.time_ms,
            search_ms: search_metrics.time_ms,
            data_ms,
        })
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use rtnn::verify::{brute_force_knn, check_all};
    use rtnn::SearchParams;

    fn cloud() -> Vec<Vec3> {
        (0..1500)
            .map(|i| {
                let f = i as f32;
                Vec3::new((f * 0.637) % 11.0, (f * 0.911) % 11.0, (f * 0.453) % 11.0)
            })
            .collect()
    }

    #[test]
    fn tree_covers_every_point_once() {
        let points = cloud();
        let tree = KdTree::build(&points).unwrap();
        let mut ids = tree.point_ids.clone();
        ids.sort();
        assert_eq!(ids, (0..points.len() as u32).collect::<Vec<_>>());
        assert!(tree.num_nodes() > 1);
    }

    #[test]
    fn range_results_satisfy_the_contract() {
        let device = Device::rtx_2080();
        let points = cloud();
        let queries: Vec<Vec3> = points.iter().step_by(29).copied().collect();
        let request = SearchRequest::new(0.9, 512);
        let run = KdTreeSearch
            .range_search(&device, &points, &queries, request)
            .unwrap();
        check_all(
            &points,
            &queries,
            &SearchParams::range(0.9, 512),
            &run.neighbors,
        )
        .unwrap_or_else(|(q, e)| panic!("query {q}: {e}"));
    }

    #[test]
    fn knn_matches_the_oracle() {
        let device = Device::rtx_2080();
        let points = cloud();
        let queries: Vec<Vec3> = points
            .iter()
            .step_by(53)
            .map(|&p| p + Vec3::new(0.01, -0.02, 0.03))
            .collect();
        let request = SearchRequest::new(1.5, 7);
        let run = KdTreeSearch
            .knn_search(&device, &points, &queries, request)
            .unwrap();
        for (qi, q) in queries.iter().enumerate() {
            assert_eq!(
                run.neighbors[qi],
                brute_force_knn(&points, *q, 1.5, 7),
                "query {qi}"
            );
        }
    }

    #[test]
    fn duplicate_points_build_a_finite_tree() {
        let points = vec![Vec3::ONE; 300];
        let tree = KdTree::build(&points).unwrap();
        let (ids, _, _, _) = tree.radius_search(&points, Vec3::ONE, 0.1, 1000);
        assert_eq!(ids.len(), 300);
    }

    #[test]
    fn empty_cloud_handled() {
        assert!(KdTree::build(&[]).is_none());
        let device = Device::rtx_2080();
        let run = KdTreeSearch
            .knn_search(&device, &[], &[Vec3::ZERO], SearchRequest::new(1.0, 3))
            .unwrap();
        assert!(run.neighbors[0].is_empty());
    }
}
