//! # rtnn-baselines
//!
//! The comparison systems of the paper's evaluation (Section 6.1), rebuilt
//! from scratch and charged to the *same* simulated GPU as RTNN so that the
//! speedup ratios of Figure 11 / 13 / 14 are internally consistent:
//!
//! * [`uniform_grid`] — cuNSearch-like fixed-radius search: points are
//!   counting-sorted into a uniform grid with cell size `r`; every query
//!   scans its 27 neighbouring cells in the two-pass (count, then fill)
//!   style of the CUDA library. Range search only, like the original.
//! * [`grid_knn`] — FRNN-like grid-based KNN: same grid, one pass, a bounded
//!   priority queue per query.
//! * [`octree`] — PCLOctree-like search: an octree over the points is
//!   traversed on the SMs (no RT cores). Range search with arbitrary `K`;
//!   KNN restricted to `K = 1` exactly like the PCL GPU octree.
//! * [`kdtree`] — a k-d tree searcher, used both as an additional baseline
//!   and as a fast exact oracle for the test suite.
//! * [`bruteforce`] — exhaustive scan; the ground truth everything else is
//!   validated against.
//! * [`fastrnn`] — FastRNN: the RT-core mapping *without* RTNN's
//!   optimisations (query scheduling / partitioning / bundling), i.e. the
//!   `OptLevel::NoOpt` configuration of the `rtnn` crate, KNN only like the
//!   original.
//!
//! Every baseline returns a [`BaselineRun`] with the neighbor lists and the
//! simulated time split into build / search / transfer components, and every
//! baseline's results are validated against the brute-force oracle in its
//! tests.
//!
//! The crate also provides [`backend::BruteForceBackend`], an exhaustive
//! `rtnn::Backend` implementation that plugs the brute-force scan into the
//! engine's backend seam and doubles as the oracle of the cross-backend
//! equivalence suite, plus the O(n²) [`analytics_oracle`]s (exhaustive
//! DBSCAN and reverse k-NN) that `rtnn-analytics` is validated against.

pub mod analytics_oracle;
pub mod backend;
pub mod bruteforce;
pub mod common;
pub mod fastrnn;
pub mod grid_knn;
pub mod kdtree;
pub mod octree;
pub mod uniform_grid;

pub use analytics_oracle::{dbscan_oracle, rknn_oracle};
pub use backend::BruteForceBackend;
pub use common::{Baseline, BaselineRun, SearchRequest};
