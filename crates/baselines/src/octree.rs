//! PCLOctree-like octree search.
//!
//! The Point Cloud Library's GPU octree builds a space-partitioning octree
//! over the points and traverses it on the SMs (there is no hardware help
//! for the traversal — that is exactly the contrast with RTNN's BVH on the
//! RT cores that Section 6.1 calls out). It supports radius search with an
//! arbitrary result cap and an approximate nearest-neighbor query with
//! `K = 1`; the same restrictions apply here.

use crate::common::{transfer_ms, Baseline, BaselineRun, SearchRequest};
use rtnn_gpusim::kernel::{
    point_address, run_sm_kernel, tree_node_address, SmKernelConfig, ThreadWork,
};
use rtnn_gpusim::Device;
use rtnn_math::{Aabb, Vec3};

/// Maximum points per octree leaf.
const LEAF_SIZE: usize = 32;
/// Maximum subdivision depth.
const MAX_DEPTH: u32 = 21;
/// SM ops charged per node visited during traversal.
const OPS_PER_NODE: u64 = 12;
/// SM ops charged per point distance test.
const OPS_PER_POINT_TEST: u64 = 12;
/// SM ops charged per point during construction.
const OPS_PER_BUILD_POINT: u64 = 10;

/// One octree node.
#[derive(Debug, Clone)]
enum OctNode {
    /// Children indices (missing octants collapse to `u32::MAX`).
    Internal { children: [u32; 8], bounds: Aabb },
    /// Leaf owning a slice of the reordered point-id array.
    Leaf {
        start: u32,
        count: u32,
        bounds: Aabb,
    },
}

/// An octree over a point cloud.
#[derive(Debug, Clone)]
pub struct Octree {
    nodes: Vec<OctNode>,
    point_ids: Vec<u32>,
}

impl Octree {
    /// Build an octree over `points`. Returns `None` for an empty cloud.
    pub fn build(points: &[Vec3]) -> Option<Self> {
        if points.is_empty() {
            return None;
        }
        let mut bounds = Aabb::from_points(points);
        if bounds.longest_extent() <= 0.0 {
            bounds = bounds.expanded(1e-3);
        }
        // Cubify so octants stay cubical.
        let half = bounds.longest_extent() * 0.5;
        let bounds = Aabb::cube(bounds.center(), 2.0 * half);
        let mut tree = Octree {
            nodes: Vec::new(),
            point_ids: (0..points.len() as u32).collect(),
        };
        let n = points.len();
        tree.subdivide(points, bounds, 0, n, 0);
        Some(tree)
    }

    fn subdivide(
        &mut self,
        points: &[Vec3],
        bounds: Aabb,
        start: usize,
        end: usize,
        depth: u32,
    ) -> u32 {
        let count = end - start;
        let node_index = self.nodes.len() as u32;
        if count <= LEAF_SIZE || depth >= MAX_DEPTH {
            self.nodes.push(OctNode::Leaf {
                start: start as u32,
                count: count as u32,
                bounds,
            });
            return node_index;
        }
        self.nodes.push(OctNode::Leaf {
            start: 0,
            count: 0,
            bounds,
        }); // placeholder
        let centre = bounds.center();
        // Partition the id range into the 8 octants (stable bucket sort).
        let octant_of = |p: Vec3| -> usize {
            ((p.x > centre.x) as usize)
                | (((p.y > centre.y) as usize) << 1)
                | (((p.z > centre.z) as usize) << 2)
        };
        let slice = self.point_ids[start..end].to_vec();
        let mut buckets: [Vec<u32>; 8] = Default::default();
        for pid in slice {
            buckets[octant_of(points[pid as usize])].push(pid);
        }
        let mut children = [u32::MAX; 8];
        let mut cursor = start;
        for (oct, bucket) in buckets.iter().enumerate() {
            if bucket.is_empty() {
                continue;
            }
            let child_start = cursor;
            self.point_ids[cursor..cursor + bucket.len()].copy_from_slice(bucket);
            cursor += bucket.len();
            let child_bounds = octant_bounds(&bounds, oct);
            children[oct] = self.subdivide(points, child_bounds, child_start, cursor, depth + 1);
        }
        self.nodes[node_index as usize] = OctNode::Internal { children, bounds };
        node_index
    }

    /// Radius search: up to `k` point ids within `radius` of `q`, plus the
    /// traversal work `(nodes_visited, point_tests, addresses)`.
    pub fn radius_search(
        &self,
        points: &[Vec3],
        q: Vec3,
        radius: f32,
        k: usize,
    ) -> (Vec<u32>, u64, u64, Vec<u64>) {
        let r2 = radius * radius;
        let mut out = Vec::new();
        let mut nodes_visited = 0u64;
        let mut point_tests = 0u64;
        let mut addresses = Vec::new();
        let mut stack = vec![0u32];
        'outer: while let Some(ni) = stack.pop() {
            nodes_visited += 1;
            addresses.push(tree_node_address(ni));
            let bounds = match &self.nodes[ni as usize] {
                OctNode::Internal { bounds, .. } => bounds,
                OctNode::Leaf { bounds, .. } => bounds,
            };
            if bounds.distance_squared_to_point(q) > r2 {
                continue;
            }
            match &self.nodes[ni as usize] {
                OctNode::Internal { children, .. } => {
                    for &c in children {
                        if c != u32::MAX {
                            stack.push(c);
                        }
                    }
                }
                OctNode::Leaf { start, count, .. } => {
                    for &pid in &self.point_ids[*start as usize..(*start + *count) as usize] {
                        point_tests += 1;
                        addresses.push(point_address(pid));
                        if q.distance_squared(points[pid as usize]) < r2 {
                            out.push(pid);
                            if out.len() >= k {
                                break 'outer;
                            }
                        }
                    }
                }
            }
        }
        (out, nodes_visited, point_tests, addresses)
    }

    /// Approximate-free exact nearest neighbor (K = 1) within `radius`.
    pub fn nearest(
        &self,
        points: &[Vec3],
        q: Vec3,
        radius: f32,
    ) -> (Option<u32>, u64, u64, Vec<u64>) {
        let mut best: Option<(f32, u32)> = None;
        let mut best_r2 = radius * radius;
        let mut nodes_visited = 0u64;
        let mut point_tests = 0u64;
        let mut addresses = Vec::new();
        // Best-first descent using a small manual stack ordered by node
        // distance (sufficiently close to PCL's behaviour for cost purposes).
        let mut stack = vec![0u32];
        while let Some(ni) = stack.pop() {
            nodes_visited += 1;
            addresses.push(tree_node_address(ni));
            match &self.nodes[ni as usize] {
                OctNode::Internal { children, bounds } => {
                    if bounds.distance_squared_to_point(q) >= best_r2 {
                        continue;
                    }
                    // Push children ordered so the closest is processed first.
                    let mut kids: Vec<u32> = children
                        .iter()
                        .copied()
                        .filter(|&c| c != u32::MAX)
                        .collect();
                    kids.sort_by(|&a, &b| {
                        let da = self.node_bounds(a).distance_squared_to_point(q);
                        let db = self.node_bounds(b).distance_squared_to_point(q);
                        db.partial_cmp(&da).unwrap()
                    });
                    stack.extend(kids);
                }
                OctNode::Leaf {
                    start,
                    count,
                    bounds,
                } => {
                    if bounds.distance_squared_to_point(q) >= best_r2 {
                        continue;
                    }
                    for &pid in &self.point_ids[*start as usize..(*start + *count) as usize] {
                        point_tests += 1;
                        addresses.push(point_address(pid));
                        let d2 = q.distance_squared(points[pid as usize]);
                        if d2 < best_r2 {
                            best_r2 = d2;
                            best = Some((d2, pid));
                        }
                    }
                }
            }
        }
        (
            best.map(|(_, id)| id),
            nodes_visited,
            point_tests,
            addresses,
        )
    }

    fn node_bounds(&self, ni: u32) -> &Aabb {
        match &self.nodes[ni as usize] {
            OctNode::Internal { bounds, .. } => bounds,
            OctNode::Leaf { bounds, .. } => bounds,
        }
    }

    /// Number of nodes in the tree.
    pub fn num_nodes(&self) -> usize {
        self.nodes.len()
    }
}

fn octant_bounds(parent: &Aabb, octant: usize) -> Aabb {
    let c = parent.center();
    let mut min = parent.min;
    let mut max = parent.max;
    if octant & 1 != 0 {
        min.x = c.x;
    } else {
        max.x = c.x;
    }
    if octant & 2 != 0 {
        min.y = c.y;
    } else {
        max.y = c.y;
    }
    if octant & 4 != 0 {
        min.z = c.z;
    } else {
        max.z = c.z;
    }
    Aabb::new(min, max)
}

/// The PCLOctree-like baseline.
#[derive(Debug, Clone, Copy, Default)]
pub struct OctreeSearch;

impl Baseline for OctreeSearch {
    fn name(&self) -> &'static str {
        "PCLOctree"
    }

    fn range_search(
        &self,
        device: &Device,
        points: &[Vec3],
        queries: &[Vec3],
        request: SearchRequest,
    ) -> Option<BaselineRun> {
        let data_ms = transfer_ms(device, points.len(), queries.len(), request.k);
        let Some(tree) = Octree::build(points) else {
            return Some(BaselineRun {
                neighbors: vec![Vec::new(); queries.len()],
                build_ms: 0.0,
                search_ms: 0.0,
                data_ms,
            });
        };
        let (_, build_metrics) =
            run_sm_kernel(device, points.len(), SmKernelConfig::default(), |pi| {
                (
                    (),
                    ThreadWork::new(OPS_PER_BUILD_POINT, vec![point_address(pi as u32)]),
                )
            });
        let (neighbors, search_metrics) =
            run_sm_kernel(device, queries.len(), SmKernelConfig::default(), |qi| {
                let (ids, nodes, tests, addresses) =
                    tree.radius_search(points, queries[qi], request.radius, request.k);
                (
                    ids,
                    ThreadWork::new(nodes * OPS_PER_NODE + tests * OPS_PER_POINT_TEST, addresses),
                )
            });
        Some(BaselineRun {
            neighbors,
            build_ms: build_metrics.time_ms,
            search_ms: search_metrics.time_ms,
            data_ms,
        })
    }

    fn knn_search(
        &self,
        device: &Device,
        points: &[Vec3],
        queries: &[Vec3],
        request: SearchRequest,
    ) -> Option<BaselineRun> {
        // PCLOctree supports only K = 1 for KNN (Section 6.1 / Figure 14).
        if request.k != 1 {
            return None;
        }
        let data_ms = transfer_ms(device, points.len(), queries.len(), request.k);
        let tree = Octree::build(points)?;
        let (_, build_metrics) =
            run_sm_kernel(device, points.len(), SmKernelConfig::default(), |pi| {
                (
                    (),
                    ThreadWork::new(OPS_PER_BUILD_POINT, vec![point_address(pi as u32)]),
                )
            });
        let (neighbors, search_metrics) =
            run_sm_kernel(device, queries.len(), SmKernelConfig::default(), |qi| {
                let (nearest, nodes, tests, addresses) =
                    tree.nearest(points, queries[qi], request.radius);
                (
                    nearest.into_iter().collect::<Vec<u32>>(),
                    ThreadWork::new(nodes * OPS_PER_NODE + tests * OPS_PER_POINT_TEST, addresses),
                )
            });
        Some(BaselineRun {
            neighbors,
            build_ms: build_metrics.time_ms,
            search_ms: search_metrics.time_ms,
            data_ms,
        })
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use rtnn::verify::{brute_force_knn, check_all};
    use rtnn::SearchParams;

    fn cloud() -> Vec<Vec3> {
        (0..1200)
            .map(|i| {
                let f = i as f32;
                Vec3::new((f * 0.537) % 12.0, (f * 0.811) % 12.0, (f * 0.353) % 12.0)
            })
            .collect()
    }

    #[test]
    fn octree_structure_covers_every_point_once() {
        let points = cloud();
        let tree = Octree::build(&points).unwrap();
        assert!(tree.num_nodes() > 1);
        let mut ids = tree.point_ids.clone();
        ids.sort();
        let expected: Vec<u32> = (0..points.len() as u32).collect();
        assert_eq!(ids, expected);
    }

    #[test]
    fn range_results_satisfy_the_contract() {
        let device = Device::rtx_2080();
        let points = cloud();
        let queries: Vec<Vec3> = points.iter().step_by(37).copied().collect();
        let request = SearchRequest::new(1.0, 256);
        let run = OctreeSearch
            .range_search(&device, &points, &queries, request)
            .unwrap();
        check_all(
            &points,
            &queries,
            &SearchParams::range(1.0, 256),
            &run.neighbors,
        )
        .unwrap_or_else(|(q, e)| panic!("query {q}: {e}"));
    }

    #[test]
    fn nearest_neighbor_matches_the_oracle() {
        let device = Device::rtx_2080();
        let points = cloud();
        let queries: Vec<Vec3> = points
            .iter()
            .step_by(41)
            .map(|&p| p + Vec3::splat(0.05))
            .collect();
        let request = SearchRequest::new(2.0, 1);
        let run = OctreeSearch
            .knn_search(&device, &points, &queries, request)
            .unwrap();
        for (qi, q) in queries.iter().enumerate() {
            let expected = brute_force_knn(&points, *q, 2.0, 1);
            assert_eq!(run.neighbors[qi], expected, "query {qi}");
        }
    }

    #[test]
    fn knn_with_k_greater_than_one_is_unsupported() {
        let device = Device::rtx_2080();
        assert!(OctreeSearch
            .knn_search(&device, &cloud(), &[Vec3::ZERO], SearchRequest::new(1.0, 4))
            .is_none());
    }

    #[test]
    fn duplicate_points_do_not_recurse_forever() {
        let points = vec![Vec3::ONE; 500];
        let tree = Octree::build(&points).unwrap();
        assert!(tree.num_nodes() >= 1);
        let (ids, _, _, _) = tree.radius_search(&points, Vec3::ONE, 0.5, 1000);
        assert_eq!(ids.len(), 500);
    }

    #[test]
    fn empty_cloud_builds_nothing() {
        assert!(Octree::build(&[]).is_none());
    }
}
