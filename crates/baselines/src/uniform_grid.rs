//! cuNSearch-like uniform-grid fixed-radius search.
//!
//! cuNSearch (Hoetzlein's "fast fixed-radius nearest neighbors", used by
//! SPlisHSPlasH) bins points into a uniform grid with cell size equal to the
//! search radius and, for each query, scans the 3×3×3 block of cells around
//! the query's cell. The GPU implementation is two-pass — first count the
//! neighbors of every query, then allocate and fill the neighbor lists —
//! and that is how the simulated cost is charged here. Range search only,
//! like the original.

use crate::common::{transfer_ms, Baseline, BaselineRun, SearchRequest};
use rtnn_gpusim::kernel::{
    cell_offset_address, point_address, run_sm_kernel, SmKernelConfig, ThreadWork,
};
use rtnn_gpusim::Device;
use rtnn_math::{Aabb, GridCoord, PointBins, UniformGrid, Vec3};

/// The cuNSearch-like baseline.
#[derive(Debug, Clone, Copy, Default)]
pub struct UniformGridSearch;

/// SM ops charged per candidate distance test.
const OPS_PER_CANDIDATE: u64 = 12;
/// SM ops charged per point during grid construction (hash + scatter).
const OPS_PER_BUILD_POINT: u64 = 6;

/// Build the grid (cell size = radius) and bin the points, charging the
/// construction kernel to the device. Returns `None` for an empty cloud.
fn build_bins(device: &Device, points: &[Vec3], radius: f32) -> Option<(PointBins, f64)> {
    if points.is_empty() {
        return None;
    }
    let mut bounds = Aabb::from_points(points);
    if bounds.longest_extent() <= 0.0 {
        bounds = bounds.expanded(radius.max(1e-3));
    }
    let grid = UniformGrid::new(bounds, radius);
    let bins = PointBins::build(grid, points);
    // Construction kernel: one thread per point (hash, histogram, scatter).
    let (_, metrics) = run_sm_kernel(device, points.len(), SmKernelConfig::default(), |pi| {
        (
            (),
            ThreadWork::new(OPS_PER_BUILD_POINT, vec![point_address(pi as u32)]),
        )
    });
    Some((bins, metrics.time_ms))
}

/// Scan the 27-cell neighbourhood of `q`, returning up to `k` in-radius
/// neighbor ids plus the work performed.
fn scan_neighborhood(
    bins: &PointBins,
    points: &[Vec3],
    q: Vec3,
    radius: f32,
    k: usize,
) -> (Vec<u32>, u64, Vec<u64>) {
    let grid = bins.grid();
    let dims = grid.dims();
    let c = grid.cell_of(q);
    let r2 = radius * radius;
    let mut out = Vec::new();
    let mut candidates = 0u64;
    let mut addresses = Vec::new();
    let lo = GridCoord::new(
        c.x.saturating_sub(1),
        c.y.saturating_sub(1),
        c.z.saturating_sub(1),
    );
    let hi = GridCoord::new(
        (c.x + 1).min(dims[0] - 1),
        (c.y + 1).min(dims[1] - 1),
        (c.z + 1).min(dims[2] - 1),
    );
    for cell in grid.iter_range(lo, hi) {
        addresses.push(cell_offset_address(grid.cell_index(cell)));
        for &pid in bins.cell_points(cell) {
            candidates += 1;
            addresses.push(point_address(pid));
            if out.len() < k && q.distance_squared(points[pid as usize]) < r2 {
                out.push(pid);
            }
        }
    }
    (out, candidates, addresses)
}

impl Baseline for UniformGridSearch {
    fn name(&self) -> &'static str {
        "cuNSearch"
    }

    fn range_search(
        &self,
        device: &Device,
        points: &[Vec3],
        queries: &[Vec3],
        request: SearchRequest,
    ) -> Option<BaselineRun> {
        let data_ms = transfer_ms(device, points.len(), queries.len(), request.k);
        let Some((bins, build_ms)) = build_bins(device, points, request.radius) else {
            return Some(BaselineRun {
                neighbors: vec![Vec::new(); queries.len()],
                build_ms: 0.0,
                search_ms: 0.0,
                data_ms,
            });
        };
        // Two passes over the neighbourhood: count then fill — the scan work
        // is charged twice, the results are produced in the second pass.
        let mut search_ms = 0.0;
        let (_, count_metrics) =
            run_sm_kernel(device, queries.len(), SmKernelConfig::default(), |qi| {
                let (_, candidates, addresses) =
                    scan_neighborhood(&bins, points, queries[qi], request.radius, usize::MAX);
                (
                    (),
                    ThreadWork::new(candidates * OPS_PER_CANDIDATE, addresses),
                )
            });
        search_ms += count_metrics.time_ms;
        let (neighbors, fill_metrics) =
            run_sm_kernel(device, queries.len(), SmKernelConfig::default(), |qi| {
                let (ids, candidates, addresses) =
                    scan_neighborhood(&bins, points, queries[qi], request.radius, request.k);
                (
                    ids,
                    ThreadWork::new(candidates * OPS_PER_CANDIDATE, addresses),
                )
            });
        search_ms += fill_metrics.time_ms;
        Some(BaselineRun {
            neighbors,
            build_ms,
            search_ms,
            data_ms,
        })
    }

    fn knn_search(
        &self,
        _device: &Device,
        _points: &[Vec3],
        _queries: &[Vec3],
        _request: SearchRequest,
    ) -> Option<BaselineRun> {
        // cuNSearch has only a range-search implementation (Section 6.1).
        None
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use rtnn::verify::check_all;
    use rtnn::SearchParams;

    fn cloud() -> Vec<Vec3> {
        (0..800)
            .map(|i| {
                let f = i as f32;
                Vec3::new((f * 0.337) % 10.0, (f * 0.571) % 10.0, (f * 0.173) % 10.0)
            })
            .collect()
    }

    #[test]
    fn range_results_satisfy_the_contract() {
        let device = Device::rtx_2080();
        let points = cloud();
        let queries: Vec<Vec3> = points.iter().step_by(13).copied().collect();
        let request = SearchRequest::new(0.8, 128);
        let run = UniformGridSearch
            .range_search(&device, &points, &queries, request)
            .unwrap();
        check_all(
            &points,
            &queries,
            &SearchParams::range(0.8, 128),
            &run.neighbors,
        )
        .unwrap_or_else(|(q, e)| panic!("query {q}: {e}"));
        assert!(run.build_ms > 0.0);
        assert!(run.search_ms > 0.0);
    }

    #[test]
    fn knn_is_unsupported_like_the_original() {
        let device = Device::rtx_2080();
        assert!(UniformGridSearch
            .knn_search(&device, &cloud(), &[Vec3::ZERO], SearchRequest::new(1.0, 4))
            .is_none());
    }

    #[test]
    fn empty_points_return_empty_neighbor_lists() {
        let device = Device::rtx_2080();
        let queries = vec![Vec3::ZERO, Vec3::ONE];
        let run = UniformGridSearch
            .range_search(&device, &[], &queries, SearchRequest::new(1.0, 8))
            .unwrap();
        assert_eq!(run.neighbors.len(), 2);
        assert!(run.neighbors.iter().all(Vec::is_empty));
    }

    #[test]
    fn queries_outside_the_cloud_find_nothing_but_do_not_panic() {
        let device = Device::rtx_2080();
        let points = cloud();
        let queries = vec![Vec3::new(500.0, 500.0, 500.0)];
        let run = UniformGridSearch
            .range_search(&device, &points, &queries, SearchRequest::new(0.5, 8))
            .unwrap();
        assert!(run.neighbors[0].is_empty());
    }

    #[test]
    fn degenerate_single_point_cloud() {
        let device = Device::rtx_2080();
        let points = vec![Vec3::ONE];
        let queries = vec![Vec3::ONE, Vec3::new(5.0, 5.0, 5.0)];
        let run = UniformGridSearch
            .range_search(&device, &points, &queries, SearchRequest::new(1.0, 8))
            .unwrap();
        assert_eq!(run.neighbors[0], vec![0]);
        assert!(run.neighbors[1].is_empty());
    }
}
