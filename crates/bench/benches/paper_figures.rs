//! Criterion benchmarks of the host-side hot paths.
//!
//! The per-figure experiment binaries report *simulated* GPU time; these
//! benches measure the *wall-clock* cost of the main code paths (BVH
//! construction, the RTNN pipeline at each optimisation level, and every
//! baseline) on a fixed small workload, so regressions in the
//! implementation itself are caught by `cargo bench`.

use criterion::{criterion_group, criterion_main, BenchmarkId, Criterion};
use rtnn::{EngineConfig, GpusimBackend, Index, OptLevel, QueryPlan, SearchMode, SearchParams};
use rtnn_baselines::fastrnn::FastRnn;
use rtnn_baselines::grid_knn::GridKnn;
use rtnn_baselines::kdtree::KdTreeSearch;
use rtnn_baselines::octree::OctreeSearch;
use rtnn_baselines::uniform_grid::UniformGridSearch;
use rtnn_baselines::{Baseline, SearchRequest};
use rtnn_bvh::{build_point_bvh, BuildParams, BvhBuilder};
use rtnn_data::{Dataset, DatasetName};
use rtnn_gpusim::Device;
use rtnn_math::Vec3;
use std::time::Duration;

struct Fixture {
    points: Vec<Vec3>,
    queries: Vec<Vec3>,
    radius: f32,
    k: usize,
}

fn fixture() -> Fixture {
    let cloud = Dataset::scaled(DatasetName::Kitti1M, 100).generate(); // 10k points
    let queries = cloud.queries_subsampled(4); // 2.5k queries
    Fixture {
        points: cloud.points,
        queries,
        radius: DatasetName::Kitti1M.default_radius(),
        k: 16,
    }
}

/// Keep every Criterion group short: the interesting comparisons are the
/// relative costs, not tight confidence intervals.
fn configure(group: &mut criterion::BenchmarkGroup<'_, criterion::measurement::WallTime>) {
    group.sample_size(10);
    group.warm_up_time(Duration::from_millis(300));
    group.measurement_time(Duration::from_secs(2));
}

fn bench_bvh_builders(c: &mut Criterion) {
    let f = fixture();
    let mut group = c.benchmark_group("bvh_build");
    configure(&mut group);
    for builder in [
        BvhBuilder::Lbvh,
        BvhBuilder::MedianSplit,
        BvhBuilder::BinnedSah,
    ] {
        group.bench_with_input(
            BenchmarkId::new("builder", format!("{builder:?}")),
            &builder,
            |b, &builder| {
                b.iter(|| {
                    build_point_bvh(
                        &f.points,
                        f.radius,
                        BuildParams {
                            builder,
                            max_leaf_size: 4,
                        },
                    )
                })
            },
        );
    }
    group.finish();
}

fn bench_rtnn_opt_levels(c: &mut Criterion) {
    let f = fixture();
    let device = Device::rtx_2080();
    let mut group = c.benchmark_group("rtnn_search");
    configure(&mut group);
    for mode in [SearchMode::Range, SearchMode::Knn] {
        for opt in OptLevel::all() {
            let params = SearchParams {
                radius: f.radius,
                k: f.k,
                mode,
            };
            let backend = GpusimBackend::new(&device);
            let cfg = EngineConfig::default().with_opt(opt);
            let plan = QueryPlan::from_params(params);
            let id = BenchmarkId::new(format!("{mode:?}"), opt.label());
            group.bench_function(id, |b| {
                // Fresh index per iteration: the full cold-start pipeline,
                // matching what the legacy one-shot engine measured.
                b.iter(|| {
                    Index::build(&backend, &f.points[..], cfg)
                        .query(&f.queries, &plan)
                        .unwrap()
                });
            });
        }
    }
    group.finish();
}

fn bench_rtnn_warm_index(c: &mut Criterion) {
    // The amortized path the new API opens: one persistent index, plans
    // answered against warm structure caches.
    let f = fixture();
    let device = Device::rtx_2080();
    let backend = GpusimBackend::new(&device);
    let mut group = c.benchmark_group("rtnn_warm_index");
    configure(&mut group);
    for mode in [SearchMode::Range, SearchMode::Knn] {
        let params = SearchParams {
            radius: f.radius,
            k: f.k,
            mode,
        };
        let plan = QueryPlan::from_params(params);
        let mut index = Index::build(&backend, &f.points[..], EngineConfig::default());
        index.query(&f.queries, &plan).unwrap(); // warm the caches
        let id = BenchmarkId::new(format!("{mode:?}"), "warm");
        group.bench_function(id, |b| {
            b.iter(|| index.query(&f.queries, &plan).unwrap());
        });
    }
    group.finish();
}

fn bench_baselines(c: &mut Criterion) {
    let f = fixture();
    let device = Device::rtx_2080();
    let request = SearchRequest::new(f.radius, f.k);
    let mut group = c.benchmark_group("baselines");
    configure(&mut group);
    let range_baselines: Vec<(&str, Box<dyn Baseline>)> = vec![
        ("cuNSearch", Box::new(UniformGridSearch)),
        ("PCLOctree", Box::new(OctreeSearch)),
        ("KdTree", Box::new(KdTreeSearch)),
    ];
    for (name, baseline) in &range_baselines {
        group.bench_function(BenchmarkId::new("range", *name), |b| {
            b.iter(|| {
                baseline
                    .range_search(&device, &f.points, &f.queries, request)
                    .unwrap()
            });
        });
    }
    let knn_baselines: Vec<(&str, Box<dyn Baseline>)> = vec![
        ("FRNN", Box::new(GridKnn)),
        ("FastRNN", Box::new(FastRnn)),
        ("KdTree", Box::new(KdTreeSearch)),
    ];
    for (name, baseline) in &knn_baselines {
        group.bench_function(BenchmarkId::new("knn", *name), |b| {
            b.iter(|| {
                baseline
                    .knn_search(&device, &f.points, &f.queries, request)
                    .unwrap()
            });
        });
    }
    group.finish();
}

fn bench_scheduling_and_partitioning(c: &mut Criterion) {
    let f = fixture();
    let device = Device::rtx_2080();
    let mut group = c.benchmark_group("optimisation_passes");
    configure(&mut group);
    let gas =
        rtnn_optix::Gas::build_from_points(&device, &f.points, f.radius, BuildParams::default())
            .unwrap();
    group.bench_function("query_scheduling", |b| {
        b.iter(|| rtnn::schedule_queries(&device, &gas, &f.points, &f.queries));
    });
    let order: Vec<u32> = (0..f.queries.len() as u32).collect();
    let params = SearchParams::knn(f.radius, f.k);
    group.bench_function("query_partitioning", |b| {
        b.iter(|| {
            rtnn::partition::partition_queries(
                &device,
                &f.points,
                &f.queries,
                &order,
                &params,
                rtnn::KnnAabbRule::Guaranteed,
                1 << 20,
            )
        });
    });
    group.finish();
}

criterion_group!(
    benches,
    bench_bvh_builders,
    bench_rtnn_opt_levels,
    bench_rtnn_warm_index,
    bench_baselines,
    bench_scheduling_and_partitioning
);
criterion_main!(benches);
