//! Reproduces Figure 7 (search time vs AABB width) of the RTNN paper. Scale via RTNN_SCALE / RTNN_QUERY_CAP.
fn main() {
    let scale = rtnn_bench::ExperimentScale::from_env();
    let report = rtnn_bench::experiments::aabb_sweep::run(&scale);
    println!("{}", report.render());
}
