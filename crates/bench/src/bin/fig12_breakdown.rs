//! Reproduces Figure 12 (time breakdown) of the RTNN paper. Scale via RTNN_SCALE / RTNN_QUERY_CAP.
fn main() {
    let scale = rtnn_bench::ExperimentScale::from_env();
    let report = rtnn_bench::experiments::speedups::run(&scale);
    println!("{}", report.render());
}
