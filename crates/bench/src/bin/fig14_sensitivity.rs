//! Reproduces Figure 14 (sensitivity to r and K) of the RTNN paper. Scale via RTNN_SCALE / RTNN_QUERY_CAP.
fn main() {
    let scale = rtnn_bench::ExperimentScale::from_env();
    let report = rtnn_bench::experiments::sensitivity::run(&scale);
    println!("{}", report.render());
}
