//! Reproduces Figure 15 (BVH build time vs #AABBs) of the RTNN paper. Scale via RTNN_SCALE / RTNN_QUERY_CAP.
fn main() {
    let scale = rtnn_bench::ExperimentScale::from_env();
    let report = rtnn_bench::experiments::bvh_build::run(&scale);
    println!("{}", report.render());
}
