//! Reproduces Figure 16 (queries per partition vs AABB size) of the RTNN paper. Scale via RTNN_SCALE / RTNN_QUERY_CAP.
fn main() {
    let scale = rtnn_bench::ExperimentScale::from_env();
    let report = rtnn_bench::experiments::partition_dist::run(&scale);
    println!("{}", report.render());
}
