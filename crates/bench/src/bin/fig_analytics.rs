//! Extension figure: spatial analytics on the pipeline — DBSCAN cluster
//! throughput vs brute force, streaming relabel vs full recluster, and
//! reverse-k-NN candidate pruning.

use rtnn_bench::{experiments, ExperimentScale};

fn main() {
    let report = experiments::analytics::run(&ExperimentScale::from_env());
    println!("{}", report.render());
    if let Err(e) = report.save("results") {
        eprintln!("warning: could not save report: {e}");
    }
}
