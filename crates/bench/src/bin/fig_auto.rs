//! Extension figure: adaptive stage tuning (`EngineConfig::auto()`) vs the
//! static `OptLevel` ladder — regret, recovered regression gap, and the
//! bit-equality proof that tuning never changes answers.

use rtnn_bench::{experiments, ExperimentScale};

fn main() {
    let report = experiments::auto::run(&ExperimentScale::from_env());
    println!("{}", report.render());
    if let Err(e) = report.save("results") {
        eprintln!("warning: could not save report: {e}");
    }
}
