//! Extension figure: host-parallel structure construction — LBVH build vs
//! threads, refit vs cut depth, shard-concurrent cold start.

use rtnn_bench::{experiments, ExperimentScale};
use rtnn_bvh::BuildThreads;

fn main() {
    // `RTNN_BUILD_THREADS` overrides the worker-pool width for the whole
    // run (set-but-invalid values exit with a clear message).
    BuildThreads::from_env().apply_global();
    let report = experiments::build::run(&ExperimentScale::from_env());
    println!("{}", report.render());
    if let Err(e) = report.save("results") {
        eprintln!("warning: could not save report: {e}");
    }
}
