//! Extension figure: amortized per-frame cost of the streaming subsystem —
//! refit-only vs rebuild-every-frame vs the cost-model policy.

use rtnn_bench::{experiments, ExperimentScale};

fn main() {
    let report = experiments::dynamic::run(&ExperimentScale::from_env());
    println!("{}", report.render());
    if let Err(e) = report.save("results") {
        eprintln!("warning: could not save report: {e}");
    }
}
