//! Extension figure: heterogeneous query plans (3 radii × 2 kinds) served
//! by one persistent `Index` in a single batch vs six fused single-plan
//! engines.

use rtnn_bench::{experiments, ExperimentScale};

fn main() {
    let report = experiments::mixed::run(&ExperimentScale::from_env());
    println!("{}", report.render());
    if let Err(e) = report.save("results") {
        eprintln!("warning: could not save report: {e}");
    }
}
