//! Extension figure: the telemetry layer's two contracts — bit-equality of
//! results at every `RTNN_TELEMETRY` level, and the measured overhead of
//! the disabled/basic/full recording paths on the warm query loop.

use rtnn_bench::{experiments, ExperimentScale};
use rtnn_telemetry::TelemetryLevel;

fn main() {
    // Validate the telemetry knob up front the same way the scale knobs are
    // handled: garbage in RTNN_TELEMETRY is a startup error (exit 2), not a
    // silently different experiment. The experiment itself scopes private
    // sinks per level, so the ambient level only affects what the rest of
    // the process records.
    let ambient = TelemetryLevel::from_env();
    eprintln!("ambient telemetry level: {ambient}");
    let report = experiments::obs::run(&ExperimentScale::from_env());
    println!("{}", report.render());
    if let Err(e) = report.save("results") {
        eprintln!("warning: could not save report: {e}");
    }
}
