//! Extension figure: the `rtnn-serve` query service under offered load —
//! request coalescing vs one-request-per-call, and shard-count scaling of
//! a saturated tick.

use rtnn_bench::{experiments, ExperimentScale};
use rtnn_serve::ServeConfig;

fn main() {
    // Validate (and honour) the serving environment knobs the same way the
    // scale knobs are handled: garbage is a startup error, not a silently
    // different experiment.
    ServeConfig::from_env().apply_thread_limit();
    let report = experiments::serve::run(&ExperimentScale::from_env());
    println!("{}", report.render());
    if let Err(e) = report.save("results") {
        eprintln!("warning: could not save report: {e}");
    }
}
