//! Extension figure: per-stage time shares of the staged execution
//! pipeline, plus single-stage toggles through `StageOverrides`.

use rtnn_bench::{experiments, ExperimentScale};

fn main() {
    let report = experiments::stages::run(&ExperimentScale::from_env());
    println!("{}", report.render());
    if let Err(e) = report.save("results") {
        eprintln!("warning: could not save report: {e}");
    }
}
