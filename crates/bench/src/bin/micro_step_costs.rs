//! Reproduces the Section 3.1 step-cost micro-benchmark of the RTNN paper. Scale via RTNN_SCALE / RTNN_QUERY_CAP.
fn main() {
    let scale = rtnn_bench::ExperimentScale::from_env();
    let report = rtnn_bench::experiments::step_costs::run(&scale);
    println!("{}", report.render());
}
