//! `rtnn-trend`: perf-regression tracking over the figure headline metrics.
//!
//! Every experiment binary persists a `FigureReport` under `results/`, and
//! `reproduce_all` folds the headline metrics into `results/summary.json`.
//! This tool diffs the *current* headlines against noise-aware baselines
//! kept under `results/baselines/` — one JSON file per figure, holding the
//! last few recorded runs of every metric (the baseline is the median, so a
//! single noisy run neither poisons the baseline nor trips the check) — and
//! exits nonzero when a metric regressed in its bad direction beyond its
//! tolerance band.
//!
//! Metric direction is classified from the headline name (the naming
//! conventions `report::headline_slug` enforces): `*speedup*` / `*qps*` /
//! `*throughput*` must not fall, `*_ms` / `*overhead*` / `*skew*` must not
//! rise, and equality/structure headlines (`*bit_equal*`, `*checks*`,
//! `*count*`, `*points*`, `*clusters*`) must not shrink at all — those are
//! deterministic at any fixed scale, which is why CI gates on them
//! (`--check --equality-only`) at smoke scale while the perf bands are
//! refreshed from full-scale nightly runs.
//!
//! Baselines are scale-stamped: a check silently skips figures whose
//! baseline was recorded at a different `RTNN_SCALE`, so smoke baselines
//! and full-scale baselines coexist in the same directory.
//!
//! ```text
//! rtnn-trend --record              # fold current results into baselines
//! rtnn-trend --check               # diff, exit 1 on regression
//! rtnn-trend --check --equality-only
//! rtnn-trend --self-test           # exercise the detector end to end
//! ```
//!
//! Every invocation appends one JSON line to
//! `results/baselines/trajectory.jsonl` — the longitudinal record of every
//! headline across PRs.

use rtnn_telemetry::{parse_json, JsonValue};
use std::collections::BTreeMap;
use std::path::{Path, PathBuf};
use std::process::ExitCode;

/// Runs kept per metric; the baseline is their median.
const MAX_RUNS: usize = 8;
/// Relative tolerance band for perf (non-equality) metrics.
const DEFAULT_TOLERANCE_PCT: f64 = 25.0;
/// Perf values below this are noise-floor; never judged.
const ABS_FLOOR: f64 = 1e-9;

/// How a headline metric is judged.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
enum MetricClass {
    /// Deterministic structure/equality headline: must not shrink at all.
    Equality,
    /// Larger is better (speedups, throughput): must not fall past band.
    HigherIsBetter,
    /// Smaller is better (times, overheads, skew): must not rise past band.
    LowerIsBetter,
    /// Tracked in the trajectory but never failed.
    Track,
}

impl MetricClass {
    fn label(self) -> &'static str {
        match self {
            MetricClass::Equality => "equality",
            MetricClass::HigherIsBetter => "higher",
            MetricClass::LowerIsBetter => "lower",
            MetricClass::Track => "track",
        }
    }

    fn from_label(label: &str) -> Option<Self> {
        match label {
            "equality" => Some(MetricClass::Equality),
            "higher" => Some(MetricClass::HigherIsBetter),
            "lower" => Some(MetricClass::LowerIsBetter),
            "track" => Some(MetricClass::Track),
            _ => None,
        }
    }
}

/// Classify a headline by its (slugged) name.
fn classify(name: &str) -> MetricClass {
    let n = name.to_ascii_lowercase();
    let has = |pats: &[&str]| pats.iter().any(|p| n.contains(p));
    if has(&[
        "bit_equal",
        "_equal",
        "checks",
        "count",
        "points",
        "clusters",
        "signatures",
        "exemplars",
    ]) {
        MetricClass::Equality
    } else if has(&["speedup", "qps", "throughput", "hit_rate", "geomean"]) {
        MetricClass::HigherIsBetter
    } else if has(&[
        "_ms", "ms_", "overhead", "gap_pct", "skew", "latency", "time", "cost",
    ]) {
        MetricClass::LowerIsBetter
    } else {
        MetricClass::Track
    }
}

/// Median of a non-empty slice.
fn median(values: &[f64]) -> f64 {
    let mut sorted = values.to_vec();
    sorted.sort_by(|a, b| a.partial_cmp(b).expect("finite metric values"));
    let n = sorted.len();
    if n % 2 == 1 {
        sorted[n / 2]
    } else {
        0.5 * (sorted[n / 2 - 1] + sorted[n / 2])
    }
}

/// One metric's baseline: its recorded runs plus judgement parameters.
#[derive(Debug, Clone)]
struct MetricBaseline {
    class: MetricClass,
    tolerance_pct: f64,
    runs: Vec<f64>,
}

impl MetricBaseline {
    fn baseline(&self) -> f64 {
        median(&self.runs)
    }
}

/// The persisted baseline of one figure.
#[derive(Debug, Clone, Default)]
struct FigureBaseline {
    figure: String,
    scale: String,
    metrics: BTreeMap<String, MetricBaseline>,
}

/// Current headlines of one figure, read from `results/`.
#[derive(Debug, Clone)]
struct FigureHeadlines {
    slug: String,
    figure: String,
    metrics: Vec<(String, f64)>,
}

/// The verdict on one judged metric.
#[derive(Debug, Clone)]
struct Verdict {
    slug: String,
    name: String,
    class: MetricClass,
    baseline: f64,
    current: f64,
    regressed: bool,
    note: &'static str,
}

fn json_escape(s: &str) -> String {
    s.chars()
        .flat_map(|c| match c {
            '"' => "\\\"".chars().collect::<Vec<_>>(),
            '\\' => "\\\\".chars().collect(),
            '\n' => "\\n".chars().collect(),
            c if (c as u32) < 0x20 => format!("\\u{:04x}", c as u32).chars().collect(),
            c => vec![c],
        })
        .collect()
}

fn json_f64(v: f64) -> String {
    if v.is_finite() {
        let s = format!("{v}");
        if s.contains('.') || s.contains('e') || s.contains('E') {
            s
        } else {
            format!("{s}.0")
        }
    } else {
        "0.0".to_string()
    }
}

/// The `RTNN_SCALE` stamp for baselines ("default" when unset).
fn scale_stamp() -> String {
    std::env::var("RTNN_SCALE").unwrap_or_else(|_| "default".to_string())
}

/// Read every figure's current headlines: per-figure `<slug>.json` reports
/// first, then `summary.json` entries for figures without a report file.
/// Entries whose slug mentions `provenance` are metadata, not metrics.
fn read_current(results: &Path) -> Result<Vec<FigureHeadlines>, String> {
    let mut by_slug: BTreeMap<String, FigureHeadlines> = BTreeMap::new();

    let entries = std::fs::read_dir(results)
        .map_err(|e| format!("cannot read results dir {}: {e}", results.display()))?;
    for entry in entries.flatten() {
        let path = entry.path();
        let Some(stem) = path.file_stem().and_then(|s| s.to_str()) else {
            continue;
        };
        if path.extension().and_then(|e| e.to_str()) != Some("json")
            || stem == "summary"
            || stem.contains("provenance")
        {
            continue;
        }
        let text = std::fs::read_to_string(&path)
            .map_err(|e| format!("cannot read {}: {e}", path.display()))?;
        let value = parse_json(&text).map_err(|e| format!("{}: {e}", path.display()))?;
        let figure = value
            .get("figure")
            .and_then(JsonValue::as_str)
            .unwrap_or(stem)
            .to_string();
        let Some(headline) = value.get("headline").and_then(JsonValue::as_array) else {
            continue; // not a FigureReport
        };
        let mut metrics = Vec::new();
        for pair in headline {
            let Some(items) = pair.as_array() else {
                continue;
            };
            if let (Some(name), Some(v)) = (
                items.first().and_then(JsonValue::as_str),
                items.get(1).and_then(JsonValue::as_f64),
            ) {
                metrics.push((name.to_string(), v));
            }
        }
        by_slug.insert(
            stem.to_string(),
            FigureHeadlines {
                slug: stem.to_string(),
                figure,
                metrics,
            },
        );
    }

    // summary.json fills in figures whose per-figure report is absent.
    let summary = results.join("summary.json");
    if let Ok(text) = std::fs::read_to_string(&summary) {
        let value = parse_json(&text).map_err(|e| format!("{}: {e}", summary.display()))?;
        if let JsonValue::Object(figures) = value {
            for (figure, metrics) in figures {
                let slug = rtnn_bench::report::headline_slug(&figure);
                if slug.contains("provenance") || by_slug.contains_key(&slug) {
                    continue;
                }
                let JsonValue::Object(fields) = metrics else {
                    continue;
                };
                let metrics: Vec<(String, f64)> = fields
                    .into_iter()
                    .filter_map(|(name, v)| v.as_f64().map(|v| (name, v)))
                    .collect();
                by_slug.insert(
                    slug.clone(),
                    FigureHeadlines {
                        slug,
                        figure,
                        metrics,
                    },
                );
            }
        }
    }

    Ok(by_slug.into_values().collect())
}

fn baseline_path(baselines: &Path, slug: &str) -> PathBuf {
    baselines.join(format!("{slug}.json"))
}

fn read_baseline(path: &Path) -> Result<Option<FigureBaseline>, String> {
    let text = match std::fs::read_to_string(path) {
        Ok(t) => t,
        Err(e) if e.kind() == std::io::ErrorKind::NotFound => return Ok(None),
        Err(e) => return Err(format!("cannot read {}: {e}", path.display())),
    };
    let value = parse_json(&text).map_err(|e| format!("{}: {e}", path.display()))?;
    let mut baseline = FigureBaseline {
        figure: value
            .get("figure")
            .and_then(JsonValue::as_str)
            .unwrap_or_default()
            .to_string(),
        scale: value
            .get("scale")
            .and_then(JsonValue::as_str)
            .unwrap_or("default")
            .to_string(),
        metrics: BTreeMap::new(),
    };
    let Some(metrics) = value.get("metrics").and_then(JsonValue::as_array) else {
        return Ok(Some(baseline));
    };
    for m in metrics {
        let (Some(name), Some(class)) = (
            m.get("name").and_then(JsonValue::as_str),
            m.get("class")
                .and_then(JsonValue::as_str)
                .and_then(MetricClass::from_label),
        ) else {
            continue;
        };
        let tolerance_pct = m
            .get("tolerance_pct")
            .and_then(JsonValue::as_f64)
            .unwrap_or(DEFAULT_TOLERANCE_PCT);
        let runs: Vec<f64> = m
            .get("runs")
            .and_then(JsonValue::as_array)
            .map(|rs| rs.iter().filter_map(JsonValue::as_f64).collect())
            .unwrap_or_default();
        if runs.is_empty() {
            continue;
        }
        baseline.metrics.insert(
            name.to_string(),
            MetricBaseline {
                class,
                tolerance_pct,
                runs,
            },
        );
    }
    Ok(Some(baseline))
}

fn write_baseline(path: &Path, baseline: &FigureBaseline) -> Result<(), String> {
    use std::fmt::Write as _;
    let mut out = String::from("{\n");
    let _ = writeln!(out, "  \"figure\": \"{}\",", json_escape(&baseline.figure));
    let _ = writeln!(out, "  \"scale\": \"{}\",", json_escape(&baseline.scale));
    let _ = writeln!(out, "  \"metrics\": [");
    let n = baseline.metrics.len();
    for (i, (name, m)) in baseline.metrics.iter().enumerate() {
        let runs = m
            .runs
            .iter()
            .map(|v| json_f64(*v))
            .collect::<Vec<_>>()
            .join(", ");
        let _ = write!(
            out,
            "    {{\"name\": \"{}\", \"class\": \"{}\", \"tolerance_pct\": {}, \"runs\": [{}]}}",
            json_escape(name),
            m.class.label(),
            json_f64(m.tolerance_pct),
            runs,
        );
        out.push_str(if i + 1 < n { ",\n" } else { "\n" });
    }
    out.push_str("  ]\n}\n");
    std::fs::write(path, out).map_err(|e| format!("cannot write {}: {e}", path.display()))
}

/// Fold the current headlines of every figure into its baseline file.
fn record(results: &Path, baselines: &Path) -> Result<usize, String> {
    std::fs::create_dir_all(baselines)
        .map_err(|e| format!("cannot create {}: {e}", baselines.display()))?;
    let scale = scale_stamp();
    let current = read_current(results)?;
    let mut recorded = 0;
    for fig in &current {
        let path = baseline_path(baselines, &fig.slug);
        let mut baseline = match read_baseline(&path)? {
            // A scale change restarts the history: runs at different
            // scales are not comparable samples of the same quantity.
            Some(b) if b.scale == scale => b,
            _ => FigureBaseline::default(),
        };
        baseline.figure = fig.figure.clone();
        baseline.scale = scale.clone();
        for (name, value) in &fig.metrics {
            let entry = baseline
                .metrics
                .entry(name.clone())
                .or_insert_with(|| MetricBaseline {
                    class: classify(name),
                    tolerance_pct: DEFAULT_TOLERANCE_PCT,
                    runs: Vec::new(),
                });
            entry.runs.push(*value);
            if entry.runs.len() > MAX_RUNS {
                let excess = entry.runs.len() - MAX_RUNS;
                entry.runs.drain(..excess);
            }
            recorded += 1;
        }
        write_baseline(&path, &baseline)?;
    }
    Ok(recorded)
}

/// Judge one metric against its baseline.
fn judge(slug: &str, name: &str, current: f64, baseline: &MetricBaseline) -> Verdict {
    let base = baseline.baseline();
    let tol = baseline.tolerance_pct / 100.0;
    let (regressed, note) = match baseline.class {
        MetricClass::Equality => {
            if current + ABS_FLOOR < base {
                (true, "structure/equality headline shrank")
            } else if current > base + ABS_FLOOR {
                (false, "grew (refresh baselines with --record)")
            } else {
                (false, "unchanged")
            }
        }
        MetricClass::HigherIsBetter => {
            if base > ABS_FLOOR && current < base * (1.0 - tol) {
                (true, "fell past the tolerance band")
            } else {
                (false, "within band")
            }
        }
        MetricClass::LowerIsBetter => {
            if base > ABS_FLOOR && current > base * (1.0 + tol) {
                (true, "rose past the tolerance band")
            } else {
                (false, "within band")
            }
        }
        MetricClass::Track => (false, "tracked only"),
    };
    Verdict {
        slug: slug.to_string(),
        name: name.to_string(),
        class: baseline.class,
        baseline: base,
        current,
        regressed,
        note,
    }
}

/// Diff current headlines against the baselines; returns every verdict.
fn check(results: &Path, baselines: &Path, equality_only: bool) -> Result<Vec<Verdict>, String> {
    let scale = scale_stamp();
    let current = read_current(results)?;
    let mut verdicts = Vec::new();
    for fig in &current {
        let Some(baseline) = read_baseline(&baseline_path(baselines, &fig.slug))? else {
            continue; // never recorded: nothing to diff against
        };
        if baseline.scale != scale {
            continue; // recorded at another RTNN_SCALE: not comparable
        }
        for (name, value) in &fig.metrics {
            let Some(metric) = baseline.metrics.get(name) else {
                continue;
            };
            if equality_only && metric.class != MetricClass::Equality {
                continue;
            }
            verdicts.push(judge(&fig.slug, name, *value, metric));
        }
    }
    Ok(verdicts)
}

/// Append one trajectory line: every current headline plus the run verdict.
fn append_trajectory(
    baselines: &Path,
    mode: &str,
    current: &[FigureHeadlines],
    regressions: usize,
) -> Result<(), String> {
    use std::fmt::Write as _;
    std::fs::create_dir_all(baselines)
        .map_err(|e| format!("cannot create {}: {e}", baselines.display()))?;
    let ts = std::time::SystemTime::now()
        .duration_since(std::time::UNIX_EPOCH)
        .map(|d| d.as_secs())
        .unwrap_or(0);
    let mut line = format!(
        "{{\"type\":\"trend\",\"ts_unix\":{ts},\"mode\":\"{mode}\",\"scale\":\"{}\",\"regressions\":{regressions},\"metrics\":{{",
        json_escape(&scale_stamp()),
    );
    let mut first = true;
    for fig in current {
        for (name, value) in &fig.metrics {
            if !first {
                line.push(',');
            }
            first = false;
            let _ = write!(
                line,
                "\"{}::{}\":{}",
                json_escape(&fig.slug),
                json_escape(name),
                json_f64(*value)
            );
        }
    }
    line.push_str("}}\n");
    let path = baselines.join("trajectory.jsonl");
    use std::io::Write as _;
    let mut file = std::fs::OpenOptions::new()
        .create(true)
        .append(true)
        .open(&path)
        .map_err(|e| format!("cannot open {}: {e}", path.display()))?;
    file.write_all(line.as_bytes())
        .map_err(|e| format!("cannot append {}: {e}", path.display()))
}

/// End-to-end detector exercise in a temp dir: duplicate runs must pass,
/// an injected 2x regression must fail. Returns an error string on any
/// deviation.
fn self_test() -> Result<(), String> {
    let dir = std::env::temp_dir().join(format!("rtnn_trend_selftest_{}", std::process::id()));
    let results = dir.join("results");
    let baselines = results.join("baselines");
    std::fs::create_dir_all(&results).map_err(|e| e.to_string())?;
    let write_fig = |latency: f64, checks: f64| -> Result<(), String> {
        let report = format!(
            "{{\"figure\": \"Self test figure\", \"tables\": [], \"notes\": [], \"headline\": [[\"serve_latency_p99_ms\", {latency}], [\"obs_bit_equal_checks\", {checks}], [\"fanout_note\", 3.0]]}}",
        );
        std::fs::write(results.join("self_test_figure.json"), report).map_err(|e| e.to_string())
    };

    // Record three identical runs, then re-check the same numbers.
    for _ in 0..3 {
        write_fig(4.0, 14.0)?;
        record(&results, &baselines)?;
    }
    let verdicts = check(&results, &baselines, false)?;
    if verdicts.iter().any(|v| v.regressed) {
        return Err("duplicate runs flagged as regression".to_string());
    }
    if verdicts.len() != 3 {
        return Err(format!("expected 3 verdicts, got {}", verdicts.len()));
    }

    // Inject a 2x latency regression: must trip the lower-is-better band.
    write_fig(8.0, 14.0)?;
    let verdicts = check(&results, &baselines, false)?;
    let latency = verdicts
        .iter()
        .find(|v| v.name == "serve_latency_p99_ms")
        .ok_or("latency verdict missing")?;
    if !latency.regressed {
        return Err("2x latency regression not detected".to_string());
    }
    // ... but the equality-only gate ignores perf metrics.
    let eq_only = check(&results, &baselines, true)?;
    if eq_only.iter().any(|v| v.regressed) {
        return Err("equality-only check must ignore perf regressions".to_string());
    }

    // A shrunken structure headline fails even the equality-only gate.
    write_fig(4.0, 13.0)?;
    let eq_only = check(&results, &baselines, true)?;
    if !eq_only.iter().any(|v| v.regressed) {
        return Err("shrunken equality headline not detected".to_string());
    }

    std::fs::remove_dir_all(&dir).ok();
    Ok(())
}

fn usage() -> ! {
    eprintln!(
        "usage: rtnn-trend (--check [--equality-only] | --record | --self-test) \
         [--results DIR] [--baselines DIR] [--no-trajectory]"
    );
    std::process::exit(2);
}

fn main() -> ExitCode {
    let args: Vec<String> = std::env::args().skip(1).collect();
    let mut mode: Option<&str> = None;
    let mut equality_only = false;
    let mut no_trajectory = false;
    let mut results = PathBuf::from("results");
    let mut baselines: Option<PathBuf> = None;
    let mut it = args.iter();
    while let Some(arg) = it.next() {
        match arg.as_str() {
            "--check" => mode = Some("check"),
            "--record" => mode = Some("record"),
            "--self-test" => mode = Some("self-test"),
            "--equality-only" => equality_only = true,
            "--no-trajectory" => no_trajectory = true,
            "--results" => results = PathBuf::from(it.next().unwrap_or_else(|| usage())),
            "--baselines" => baselines = Some(PathBuf::from(it.next().unwrap_or_else(|| usage()))),
            _ => usage(),
        }
    }
    let baselines = baselines.unwrap_or_else(|| results.join("baselines"));
    let Some(mode) = mode else { usage() };

    match mode {
        "self-test" => match self_test() {
            Ok(()) => {
                println!("rtnn-trend self-test: ok");
                ExitCode::SUCCESS
            }
            Err(e) => {
                eprintln!("rtnn-trend self-test FAILED: {e}");
                ExitCode::FAILURE
            }
        },
        "record" => {
            let current = match read_current(&results) {
                Ok(c) => c,
                Err(e) => {
                    eprintln!("rtnn-trend: {e}");
                    return ExitCode::FAILURE;
                }
            };
            match record(&results, &baselines) {
                Ok(n) => {
                    if !no_trajectory {
                        if let Err(e) = append_trajectory(&baselines, "record", &current, 0) {
                            eprintln!("rtnn-trend: {e}");
                            return ExitCode::FAILURE;
                        }
                    }
                    println!(
                        "rtnn-trend: recorded {n} headline values across {} figures (scale {})",
                        current.len(),
                        scale_stamp(),
                    );
                    ExitCode::SUCCESS
                }
                Err(e) => {
                    eprintln!("rtnn-trend: {e}");
                    ExitCode::FAILURE
                }
            }
        }
        "check" => {
            let current = match read_current(&results) {
                Ok(c) => c,
                Err(e) => {
                    eprintln!("rtnn-trend: {e}");
                    return ExitCode::FAILURE;
                }
            };
            let verdicts = match check(&results, &baselines, equality_only) {
                Ok(v) => v,
                Err(e) => {
                    eprintln!("rtnn-trend: {e}");
                    return ExitCode::FAILURE;
                }
            };
            let regressions: Vec<&Verdict> = verdicts.iter().filter(|v| v.regressed).collect();
            for v in &verdicts {
                let marker = if v.regressed { "REGRESSION" } else { "ok" };
                println!(
                    "{marker:10} {}::{} [{}] baseline {:.6} -> current {:.6} ({})",
                    v.slug,
                    v.name,
                    v.class.label(),
                    v.baseline,
                    v.current,
                    v.note,
                );
            }
            if !no_trajectory {
                if let Err(e) = append_trajectory(&baselines, "check", &current, regressions.len())
                {
                    eprintln!("rtnn-trend: {e}");
                    return ExitCode::FAILURE;
                }
            }
            println!(
                "rtnn-trend: {} metrics judged, {} regression(s) (scale {}{})",
                verdicts.len(),
                regressions.len(),
                scale_stamp(),
                if equality_only { ", equality-only" } else { "" },
            );
            if regressions.is_empty() {
                ExitCode::SUCCESS
            } else {
                ExitCode::FAILURE
            }
        }
        _ => unreachable!(),
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn temp_dir(tag: &str) -> PathBuf {
        let dir = std::env::temp_dir().join(format!("rtnn_trend_{tag}_{}", std::process::id()));
        std::fs::remove_dir_all(&dir).ok();
        std::fs::create_dir_all(&dir).unwrap();
        dir
    }

    #[test]
    fn classification_follows_the_naming_conventions() {
        assert_eq!(classify("obs_bit_equal_checks"), MetricClass::Equality);
        assert_eq!(classify("radius_sweep_points"), MetricClass::Equality);
        assert_eq!(classify("dbscan_equal"), MetricClass::Equality);
        assert_eq!(classify("obs_profiler_signatures"), MetricClass::Equality);
        assert_eq!(
            classify("obs_flight_pinned_exemplars"),
            MetricClass::Equality
        );
        assert_eq!(
            classify("rtx_2080_geomean_speedup_frnn"),
            MetricClass::HigherIsBetter
        );
        assert_eq!(
            classify("coalesced_qps_at_peak"),
            MetricClass::HigherIsBetter
        );
        assert_eq!(classify("serve_shard_skew"), MetricClass::LowerIsBetter);
        assert_eq!(
            classify("obs_overhead_pct_full"),
            MetricClass::LowerIsBetter
        );
        assert_eq!(classify("build_time_growth"), MetricClass::LowerIsBetter);
        assert_eq!(classify("ordered_vs_random_factor"), MetricClass::Track);
    }

    #[test]
    fn median_is_noise_robust() {
        assert_eq!(median(&[3.0]), 3.0);
        assert_eq!(median(&[1.0, 100.0, 2.0]), 2.0);
        assert_eq!(median(&[1.0, 2.0, 3.0, 100.0]), 2.5);
    }

    #[test]
    fn judge_applies_direction_and_band() {
        let lower = MetricBaseline {
            class: MetricClass::LowerIsBetter,
            tolerance_pct: 25.0,
            runs: vec![4.0, 4.2, 3.9],
        };
        assert!(!judge("f", "m_ms", 4.5, &lower).regressed, "within band");
        assert!(judge("f", "m_ms", 8.0, &lower).regressed, "2x is out");
        assert!(!judge("f", "m_ms", 1.0, &lower).regressed, "faster is fine");

        let higher = MetricBaseline {
            class: MetricClass::HigherIsBetter,
            tolerance_pct: 25.0,
            runs: vec![10.0],
        };
        assert!(judge("f", "speedup", 5.0, &higher).regressed);
        assert!(!judge("f", "speedup", 9.0, &higher).regressed);

        let eq = MetricBaseline {
            class: MetricClass::Equality,
            tolerance_pct: 25.0,
            runs: vec![14.0],
        };
        assert!(judge("f", "checks", 13.0, &eq).regressed, "shrink fails");
        assert!(!judge("f", "checks", 15.0, &eq).regressed, "growth warns");
        assert!(!judge("f", "checks", 14.0, &eq).regressed);
    }

    #[test]
    fn baselines_round_trip_and_cap_their_runs() {
        let dir = temp_dir("roundtrip");
        let path = dir.join("fig.json");
        let mut baseline = FigureBaseline {
            figure: "Fig \"X\"".to_string(),
            scale: "10000".to_string(),
            metrics: BTreeMap::new(),
        };
        baseline.metrics.insert(
            "a_ms".to_string(),
            MetricBaseline {
                class: MetricClass::LowerIsBetter,
                tolerance_pct: 30.0,
                runs: (0..12).map(|i| i as f64).collect(),
            },
        );
        write_baseline(&path, &baseline).unwrap();
        let back = read_baseline(&path).unwrap().unwrap();
        assert_eq!(back.figure, "Fig \"X\"");
        assert_eq!(back.scale, "10000");
        let m = &back.metrics["a_ms"];
        assert_eq!(m.class, MetricClass::LowerIsBetter);
        assert_eq!(m.tolerance_pct, 30.0);
        assert_eq!(m.runs.len(), 12, "write/read preserves; record caps");
        assert!(read_baseline(&dir.join("missing.json")).unwrap().is_none());
        std::fs::remove_dir_all(&dir).ok();
    }

    #[test]
    fn detector_end_to_end() {
        self_test().unwrap();
    }

    #[test]
    fn scale_mismatch_skips_the_figure() {
        let dir = temp_dir("scale");
        let results = dir.join("results");
        let baselines = results.join("baselines");
        std::fs::create_dir_all(&baselines).unwrap();
        std::fs::write(
            results.join("fig.json"),
            "{\"figure\": \"F\", \"headline\": [[\"x_ms\", 100.0]]}",
        )
        .unwrap();
        let mut baseline = FigureBaseline {
            figure: "F".to_string(),
            scale: "some-other-scale".to_string(),
            metrics: BTreeMap::new(),
        };
        baseline.metrics.insert(
            "x_ms".to_string(),
            MetricBaseline {
                class: MetricClass::LowerIsBetter,
                tolerance_pct: 25.0,
                runs: vec![1.0],
            },
        );
        write_baseline(&baselines.join("fig.json"), &baseline).unwrap();
        let verdicts = check(&results, &baselines, false).unwrap();
        assert!(verdicts.is_empty(), "mismatched scale must not be judged");
        std::fs::remove_dir_all(&dir).ok();
    }
}
