//! Figures 7 and 8: the effect of the AABB size.
//!
//! With a fixed query set, the per-point AABB width in the BVH is swept
//! (the paper uses 0.3–30 on KITTI); search time (Figure 7) and the number
//! of IS shader calls (Figure 8) both grow super-linearly with the width,
//! because the number of AABBs a query resides in grows with the AABB
//! volume (∝ width³).

use crate::report::{fmt_ms, FigureReport, Table};
use crate::scale::ExperimentScale;
use crate::workloads::characterization_workload;
use rtnn::shaders::{QueryIndexing, RangeProgram};
use rtnn_bvh::BuildParams;
use rtnn_gpusim::{Device, IsShaderKind};
use rtnn_math::Vec3;
use rtnn_optix::{Gas, Pipeline};

/// Width multipliers applied to the dataset's default radius; the paper's
/// sweep spans two orders of magnitude.
const WIDTH_FACTORS: [f32; 6] = [0.3, 0.6, 1.0, 2.0, 3.0, 5.0];

/// Run the Figure 7 + Figure 8 experiment.
pub fn run(scale: &ExperimentScale) -> FigureReport {
    let mut report = FigureReport::new("Figures 7 and 8: search time and IS calls vs AABB width");
    let device = Device::rtx_2080_ti();
    let workload = characterization_workload(scale);
    // Keep the query count moderate: the large-AABB end of the sweep makes
    // every query intersect many AABBs.
    let queries: Vec<Vec3> = workload
        .queries
        .iter()
        .take(scale.query_cap.min(5_000))
        .copied()
        .collect();

    let mut table = Table::new(
        "Search time and IS calls vs AABB width (fixed query count)",
        &["AABB width", "search time", "IS calls", "IS calls / query"],
    );
    let mut series: Vec<(f32, f64, u64)> = Vec::new();
    for factor in WIDTH_FACTORS {
        let width = workload.radius * factor;
        let gas = Gas::build_from_points(
            &device,
            &workload.points,
            width / 2.0,
            BuildParams::default(),
        )
        .expect("sweep workload fits the device");
        // A pure step-1/step-2 exercise: range search with an effectively
        // unbounded K and a radius matching the AABB (the paper varies only
        // the AABB in the BVH).
        let program = RangeProgram {
            points: &workload.points,
            queries: &queries,
            indexing: QueryIndexing::Identity,
            radius: width / 2.0,
            k: usize::MAX,
            sphere_test: true,
        };
        let launch = Pipeline::new(&device).launch(
            &gas,
            queries.len(),
            &program,
            IsShaderKind::RangeSphereTest,
        );
        table.push_row(vec![
            format!("{width:.3}"),
            fmt_ms(launch.metrics.time_ms()),
            launch.metrics.is_calls.to_string(),
            format!(
                "{:.1}",
                launch.metrics.is_calls as f64 / queries.len() as f64
            ),
        ]);
        series.push((width, launch.metrics.time_ms(), launch.metrics.is_calls));
    }
    report.tables.push(table);

    // Shape checks reported as notes: both series must be increasing, and
    // the growth of IS calls must be super-linear in the width.
    let monotone_time = series.windows(2).all(|w| w[1].1 >= w[0].1);
    let monotone_is = series.windows(2).all(|w| w[1].2 >= w[0].2);
    report.notes.push(format!(
        "search time monotone in AABB width: {monotone_time}; IS calls monotone: {monotone_is} (paper: both grow, IS calls super-linearly)"
    ));
    if let (Some(first), Some(last)) = (series.first(), series.last()) {
        if first.2 > 0 {
            let width_ratio = (last.0 / first.0) as f64;
            let is_ratio = last.2 as f64 / first.2 as f64;
            report.notes.push(format!(
                "width grew {width_ratio:.0}x, IS calls grew {is_ratio:.0}x (super-linear growth expected)"
            ));
            report.headline_metric("is_call_growth_over_width_sweep", is_ratio);
            report.headline_metric("time_growth_over_width_sweep", last.1 / first.1.max(1e-12));
        }
    }
    report
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn smoke_run_has_one_row_per_width() {
        let report = run(&ExperimentScale::smoke_test());
        assert_eq!(report.tables[0].rows.len(), WIDTH_FACTORS.len());
    }

    #[test]
    fn is_calls_grow_with_width() {
        let report = run(&ExperimentScale::smoke_test());
        let is_calls: Vec<u64> = report.tables[0]
            .rows
            .iter()
            .map(|r| r[2].parse().unwrap())
            .collect();
        assert!(is_calls.windows(2).all(|w| w[1] >= w[0]), "{is_calls:?}");
        assert!(*is_calls.last().unwrap() > *is_calls.first().unwrap());
    }
}
