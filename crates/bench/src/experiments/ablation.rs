//! Figure 13: teasing apart the optimisations.
//!
//! On KITTI-12M and NBody-9M (scaled), and for both search modes, the
//! engine is run at every optimisation level — NoOpt, Sched., Sched.+
//! Partition, Sched.+Partition+Bundle — plus an `Oracle` configuration that
//! picks, per input, the best of {no partitioning, partitioning without
//! bundling, partitioning with bundling} after the fact (the paper's Oracle
//! has a-priori knowledge of whether to partition and of the best bundling).

use crate::report::{fmt_ms, headline_slug, FigureReport, Table};
use crate::scale::ExperimentScale;
use crate::workloads::{Workload, DEFAULT_K};
use rtnn::{EngineConfig, GpusimBackend, Index, OptLevel, QueryPlan, SearchMode, SearchParams};
use rtnn_data::DatasetName;
use rtnn_gpusim::Device;

/// Simulated total time of one configuration.
fn time_of(device: &Device, workload: &Workload, mode: SearchMode, opt: OptLevel) -> f64 {
    let params = SearchParams {
        radius: workload.radius,
        k: DEFAULT_K,
        mode,
    };
    let backend = GpusimBackend::new(device);
    Index::build(
        &backend,
        &workload.points[..],
        EngineConfig::default()
            .with_opt(opt)
            .with_knn_rule(rtnn::KnnAabbRule::EquiVolume),
    )
    .query(&workload.queries, &QueryPlan::from_params(params))
    .expect("ablation workload fits the device")
    .total_time_ms()
}

/// Run the Figure 13 experiment.
pub fn run(scale: &ExperimentScale) -> FigureReport {
    let mut report = FigureReport::new("Figure 13: effect of each optimisation (ablation)");
    let device = Device::rtx_2080();

    for dataset in [DatasetName::Kitti12M, DatasetName::NBody9M] {
        let workload = Workload::for_dataset(dataset, scale);
        let mut table = Table::new(
            format!("{} on {}", workload.name, device.config().name),
            &[
                "variant",
                "KNN time",
                "KNN speedup vs NoOpt",
                "range time",
                "range speedup vs NoOpt",
            ],
        );
        for mode_pair in [(SearchMode::Knn, SearchMode::Range)] {
            let (knn_mode, range_mode) = mode_pair;
            let knn_times: Vec<f64> = OptLevel::all()
                .iter()
                .map(|&o| time_of(&device, &workload, knn_mode, o))
                .collect();
            let range_times: Vec<f64> = OptLevel::all()
                .iter()
                .map(|&o| time_of(&device, &workload, range_mode, o))
                .collect();
            for (i, opt) in OptLevel::all().iter().enumerate() {
                table.push_row(vec![
                    opt.label().to_string(),
                    fmt_ms(knn_times[i]),
                    format!("{:.2}x", knn_times[0] / knn_times[i].max(1e-12)),
                    fmt_ms(range_times[i]),
                    format!("{:.2}x", range_times[0] / range_times[i].max(1e-12)),
                ]);
            }
            // Oracle: best over {Sched (no partition), Sched+Partition, Full}.
            let oracle_knn = knn_times[1].min(knn_times[2]).min(knn_times[3]);
            let oracle_range = range_times[1].min(range_times[2]).min(range_times[3]);
            table.push_row(vec![
                "Oracle".to_string(),
                fmt_ms(oracle_knn),
                format!("{:.2}x", knn_times[0] / oracle_knn.max(1e-12)),
                fmt_ms(oracle_range),
                format!("{:.2}x", range_times[0] / oracle_range.max(1e-12)),
            ]);
            let full_gap = (knn_times[3] - oracle_knn) / oracle_knn.max(1e-12) * 100.0;
            report.notes.push(format!(
                "{}: fully-optimised RTNN is within {:.1}% of the Oracle for KNN (paper: within 3% on KITTI-12M; on NBody the Oracle disables partitioning)",
                workload.name, full_gap
            ));
            let slug = headline_slug(&workload.name);
            report.headline_metric(
                format!("{slug}_knn_full_speedup_vs_noopt"),
                knn_times[0] / knn_times[3].max(1e-12),
            );
            report.headline_metric(
                format!("{slug}_range_full_speedup_vs_noopt"),
                range_times[0] / range_times[3].max(1e-12),
            );
            report.headline_metric(format!("{slug}_knn_oracle_gap_pct"), full_gap);
        }
        report.tables.push(table);
    }
    report.notes.push(
        "paper shape: scheduling always helps; partitioning helps KNN strongly on KITTI but hurts on the non-uniform NBody input; bundling mainly helps range search"
            .into(),
    );
    report
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn smoke_run_has_five_variants_per_dataset() {
        let report = run(&ExperimentScale::smoke_test());
        assert_eq!(report.tables.len(), 2);
        for t in &report.tables {
            assert_eq!(t.rows.len(), 5); // 4 opt levels + Oracle
        }
    }

    #[test]
    fn scheduling_overhead_is_bounded_at_tiny_scale() {
        // At the smoke-test scale (roughly a thousand points) the fixed
        // overhead of the first-hit pass and the sort can exceed the gain —
        // the same effect the paper reports for its smallest inputs — but it
        // must stay bounded, and the Oracle row must never lose to NoOpt.
        let report = run(&ExperimentScale::smoke_test());
        for t in &report.tables {
            let speedup_of =
                |row: usize| -> f64 { t.rows[row][2].trim_end_matches('x').parse().unwrap() };
            assert!(
                speedup_of(1) >= 0.5,
                "{}: scheduling overhead out of bounds",
                t.title
            );
            // The Oracle picks the best optimised variant; it must never be
            // dramatically worse than NoOpt even when overheads dominate.
            let oracle_row = t.rows.len() - 1;
            assert!(
                speedup_of(oracle_row) >= 0.5,
                "{}: oracle pathologically slow",
                t.title
            );
        }
    }
}
