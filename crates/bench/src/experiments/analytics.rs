//! `fig_analytics`: spatial analytics on the pipeline — DBSCAN clustering
//! and reverse k-NN (`rtnn-analytics`).
//!
//! Three sweeps:
//!
//! 1. **Cluster throughput vs brute force** — engine-driven DBSCAN
//!    (batched unbounded-range queries + union-find) against the O(n²)
//!    oracle across point scales; labels are checked bit-equal at every
//!    scale before any time is reported.
//! 2. **Streaming relabel vs full recluster** — per-frame cluster
//!    maintenance over an SPH settling drift on `DynamicIndex`: the
//!    incremental relabel re-queries only the affected points, and every
//!    frame's labels are checked bit-equal to reclustering from scratch.
//! 3. **Reverse-k-NN pruning** — candidate-set fraction of the RT-RkNN
//!    formulation (range pass bounds the k-NN launch) across a `k` ×
//!    `r_max` grid, members checked bit-equal to the O(n²) oracle.
//!
//! Wall times are honest host measurements, so CI gates only the equality
//! and report-structure headlines (`dbscan_equal`, `stream_bit_equal`,
//! `rknn_equal`), never measured speedups — the fig_build/fig_obs
//! convention. The parameter grids are exported via [`provenance`] and
//! recorded in `results/summary.json` by `reproduce_all`.

use crate::report::{fmt_ms, fmt_speedup, FigureReport, Table};
use crate::scale::ExperimentScale;
use rtnn::{EngineConfig, GpusimBackend, Index, RtnnConfig, SearchParams};
use rtnn_analytics::{Dbscan, FrameChange, ReverseKnn, StreamingDbscan};
use rtnn_baselines::{dbscan_oracle, rknn_oracle};
use rtnn_data::dynamics::{DriftModel, DriftScene};
use rtnn_data::uniform::{self, UniformParams};
use rtnn_dynamic::DynamicIndex;
use rtnn_gpusim::Device;
use rtnn_math::{Aabb, Vec3};
use std::time::Instant;

/// Target ε-neighborhood population: ε is sized so a uniform cloud holds
/// about this many points per neighborhood.
const EPS_NEIGHBORS: f64 = 8.0;
/// DBSCAN core threshold.
const MIN_PTS: usize = 4;
/// Reverse-k-NN rank grid.
const RKNN_KS: [usize; 3] = [1, 4, 8];
/// `r_max` grid, as multiples of the density-derived ε.
const RKNN_R_FACTORS: [f32; 2] = [1.0, 2.0];
/// Streamed frames in the relabel sweep.
const STREAM_FRAMES: usize = 8;

/// The knobs this figure ran under, recorded in `summary.json`'s
/// `provenance` entry alongside the telemetry/scale provenance.
pub fn provenance() -> Vec<(String, f64)> {
    let mut v = vec![
        ("analytics_eps_neighbors".to_string(), EPS_NEIGHBORS),
        ("analytics_min_pts".to_string(), MIN_PTS as f64),
        ("analytics_stream_frames".to_string(), STREAM_FRAMES as f64),
    ];
    for (i, k) in RKNN_KS.iter().enumerate() {
        v.push((format!("analytics_rknn_k_{i}"), *k as f64));
    }
    for (i, f) in RKNN_R_FACTORS.iter().enumerate() {
        v.push((format!("analytics_rknn_r_factor_{i}"), *f as f64));
    }
    v
}

/// ε sized for ~[`EPS_NEIGHBORS`] points per neighborhood in `points`.
fn density_eps(points: &[Vec3]) -> f32 {
    let side = Aabb::from_points(points).longest_extent().max(1e-3);
    side * ((EPS_NEIGHBORS / points.len() as f64).cbrt() as f32)
}

/// Run the spatial-analytics experiment.
pub fn run(scale: &ExperimentScale) -> FigureReport {
    let mut report = FigureReport::new(
        "Figure A (extension): spatial analytics — DBSCAN throughput, streaming relabel, \
         reverse-k-NN pruning",
    );
    let device = Device::rtx_2080();
    let backend = GpusimBackend::new(&device);
    let base_points = (500_000 / scale.dataset_divisor).max(800);

    // --- Sweep 1: DBSCAN throughput vs the O(n²) oracle across scales.
    let mut dbscan_table = Table::new(
        format!("DBSCAN vs brute force (min_pts {MIN_PTS}, ~{EPS_NEIGHBORS:.0} pts per ε-ball)"),
        &[
            "points",
            "clusters",
            "noise",
            "pipeline",
            "oracle",
            "speedup",
            "labels equal",
        ],
    );
    let mut dbscan_equal = true;
    let mut dbscan_speedup = 0.0f64;
    for div in [4usize, 2, 1] {
        let n = (base_points / div).max(300);
        let points = uniform::generate(&UniformParams {
            num_points: n,
            seed: 0xC1_05_7E_12,
            ..Default::default()
        })
        .points;
        let eps = density_eps(&points);
        let mut index = Index::build(&backend, points.as_slice(), EngineConfig::default());
        let start = Instant::now();
        let got = Dbscan::new(eps, MIN_PTS)
            .run(&points, &mut index)
            .expect("analytics plan fits the device");
        let pipeline_ms = start.elapsed().as_secs_f64() * 1e3;
        let start = Instant::now();
        let want = dbscan_oracle(&points, eps, MIN_PTS);
        let oracle_ms = start.elapsed().as_secs_f64() * 1e3;
        let equal = got.labels == want;
        dbscan_equal &= equal;
        let speedup = oracle_ms / pipeline_ms.max(1e-9);
        dbscan_speedup = dbscan_speedup.max(speedup);
        dbscan_table.push_row(vec![
            n.to_string(),
            got.num_clusters.to_string(),
            got.num_noise.to_string(),
            fmt_ms(pipeline_ms),
            fmt_ms(oracle_ms),
            fmt_speedup(speedup),
            if equal { "yes" } else { "NO" }.to_string(),
        ]);
    }
    report.tables.push(dbscan_table);

    // --- Sweep 2: streaming relabel vs full recluster over an SPH drift.
    let n = base_points;
    let initial = uniform::generate(&UniformParams {
        num_points: n,
        seed: 0x57_4E_A4_01,
        ..Default::default()
    });
    let side = initial.bounds().longest_extent();
    let eps = density_eps(&initial.points);
    let config = RtnnConfig::new(SearchParams::range(eps, 64));
    let mut scene = DriftScene::new(
        &initial,
        DriftModel::SphSettle {
            compression: 0.995,
            jitter: 0.004 * side,
        },
        0xA11C,
    );
    let mut inc_index = DynamicIndex::with_points(&device, config, &initial.points);
    let mut full_index = DynamicIndex::with_points(&device, config, &initial.points);
    let params = Dbscan::new(eps, MIN_PTS);
    let mut inc = StreamingDbscan::new(params);
    let mut full = StreamingDbscan::new(params);
    let mut stream_table = Table::new(
        format!("streaming relabel vs full recluster, SPH settle, {n} points"),
        &[
            "frame",
            "requeried",
            "fraction",
            "relabel",
            "recluster",
            "bit-equal",
        ],
    );
    let mut stream_equal = true;
    let (mut relabel_ms_total, mut recluster_ms_total) = (0.0f64, 0.0f64);
    let mut requery_fraction_sum = 0.0f64;
    for frame in 0..STREAM_FRAMES {
        // SphSettle only moves points (slot ids == insertion handles), so
        // the drift update translates directly into a FrameChange. The
        // settle is committed staggered — each frame applies a rotating
        // quarter of the drift's moves — so the incremental relabel gets
        // to reuse most of its cached adjacency, the realistic streaming
        // regime (a frame that moves *everything* re-queries everything).
        let update = scene.step();
        assert!(update.inserted.is_empty() && update.removed.is_empty());
        let mut change = FrameChange::default();
        for &slot in &update.moved {
            if (slot as usize) % 4 != frame % 4 {
                continue;
            }
            let p = scene.position(slot).expect("moved slot is live");
            inc_index.move_point(slot, p);
            full_index.move_point(slot, p);
            change.moved.push(slot);
        }
        let start = Instant::now();
        let a = inc
            .relabel(&mut inc_index, &change)
            .expect("relabel fits the device");
        let relabel_ms = start.elapsed().as_secs_f64() * 1e3;
        let start = Instant::now();
        let b = full
            .recluster(&mut full_index)
            .expect("recluster fits the device");
        let recluster_ms = start.elapsed().as_secs_f64() * 1e3;
        let equal = a.clustering == b.clustering;
        stream_equal &= equal;
        relabel_ms_total += relabel_ms;
        recluster_ms_total += recluster_ms;
        let fraction = a.requeried as f64 / a.alive.max(1) as f64;
        requery_fraction_sum += fraction;
        stream_table.push_row(vec![
            frame.to_string(),
            format!("{}/{}", a.requeried, a.alive),
            format!("{fraction:.2}"),
            fmt_ms(relabel_ms),
            fmt_ms(recluster_ms),
            if equal { "yes" } else { "NO" }.to_string(),
        ]);
    }
    report.tables.push(stream_table);
    // Frame 0 seeds the whole cache, so the steady-state fraction excludes it.
    let steady_frames = (STREAM_FRAMES - 1).max(1) as f64;
    let requery_fraction = (requery_fraction_sum - 1.0).max(0.0) / steady_frames;

    // --- Sweep 3: reverse-k-NN pruning effectiveness across the k × r grid.
    let points = initial.points.clone();
    let stride = scale.query_stride(points.len()).max(points.len() / 200);
    let queries: Vec<Vec3> = points.iter().step_by(stride.max(1)).copied().collect();
    let mut rknn_table = Table::new(
        format!(
            "reverse k-NN candidate pruning, {} points, {} queries",
            points.len(),
            queries.len()
        ),
        &[
            "k",
            "r_max/ε",
            "candidates",
            "fraction of n",
            "members",
            "equal",
        ],
    );
    let mut rknn_equal = true;
    let mut fraction_sum = 0.0f64;
    let mut grid_cells = 0usize;
    let mut index = Index::build(&backend, points.as_slice(), EngineConfig::default());
    for &k in &RKNN_KS {
        for &factor in &RKNN_R_FACTORS {
            let r_max = eps * factor;
            let got = ReverseKnn::new(k, r_max)
                .run(&points, &queries, &mut index)
                .expect("rknn plan fits the device");
            let want = rknn_oracle(&points, &queries, k, r_max);
            let equal = got.members == want;
            rknn_equal &= equal;
            let fraction = got.unique_candidates as f64 / points.len().max(1) as f64;
            fraction_sum += fraction;
            grid_cells += 1;
            let members: usize = got.members.iter().map(Vec::len).sum();
            rknn_table.push_row(vec![
                k.to_string(),
                format!("{factor:.1}"),
                got.unique_candidates.to_string(),
                format!("{fraction:.3}"),
                members.to_string(),
                if equal { "yes" } else { "NO" }.to_string(),
            ]);
        }
    }
    report.tables.push(rknn_table);

    report.headline_metric("dbscan_equal", if dbscan_equal { 1.0 } else { 0.0 });
    report.headline_metric("dbscan_speedup", dbscan_speedup);
    report.headline_metric("stream_bit_equal", if stream_equal { 1.0 } else { 0.0 });
    report.headline_metric("stream_requery_fraction", requery_fraction);
    report.headline_metric(
        "stream_relabel_speedup",
        recluster_ms_total / relabel_ms_total.max(1e-9),
    );
    report.headline_metric("rknn_equal", if rknn_equal { 1.0 } else { 0.0 });
    report.headline_metric("rknn_candidate_fraction", fraction_sum / grid_cells as f64);

    report.notes.push(format!(
        "DBSCAN labels and RkNN member sets are checked bit-equal to the O(n²) oracles at \
         every scale and grid cell, and every streamed frame's labels are bit-equal to \
         reclustering from scratch; ε targets ~{EPS_NEIGHBORS:.0} points per neighborhood"
    ));
    report.notes.push(
        "wall times are honest host measurements — CI gates only the equality headlines \
         (dbscan_equal / stream_bit_equal / rknn_equal), never measured speedups"
            .into(),
    );
    report.notes.push(format!(
        "steady-state relabel re-queries a {requery_fraction:.2} fraction of the cloud per \
         frame (frame 0 seeds the full cache and is excluded)"
    ));
    report
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn report_structure_and_oracle_equality_hold_at_smoke_scale() {
        let report = run(&ExperimentScale::smoke_test());
        let metric = |name: &str| -> f64 {
            report
                .headline
                .iter()
                .find(|(n, _)| n == name)
                .unwrap_or_else(|| panic!("missing headline metric {name}"))
                .1
        };
        // The hard guarantees: bit-equality against the oracles and
        // across streaming frames. (Speedups and fractions are
        // runner/scale-dependent — reported, never asserted.)
        assert_eq!(metric("dbscan_equal"), 1.0);
        assert_eq!(metric("stream_bit_equal"), 1.0);
        assert_eq!(metric("rknn_equal"), 1.0);
        assert!(metric("stream_requery_fraction") >= 0.0);
        assert!(metric("rknn_candidate_fraction") > 0.0);
        assert_eq!(report.tables.len(), 3);
        assert_eq!(report.tables[0].rows.len(), 3, "dbscan scale rows");
        assert_eq!(report.tables[1].rows.len(), STREAM_FRAMES, "stream rows");
        assert_eq!(
            report.tables[2].rows.len(),
            RKNN_KS.len() * RKNN_R_FACTORS.len(),
            "rknn grid rows"
        );
        assert!(!provenance().is_empty());
    }
}
