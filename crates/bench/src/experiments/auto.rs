//! Extension figure: adaptive stage tuning vs the static `OptLevel` ladder.
//!
//! PR 9's continuous profiler showed the motivating regression: the fully
//! optimised pipeline (`OptLevel::Full`, the default) *loses* to NoOpt on
//! the scaled NBody-9M range workload — the paper's own Figure 13 story,
//! where the Oracle disables partitioning on non-uniform inputs. This
//! experiment measures what the online [`rtnn::AutoTuner`] recovers of
//! that oracle gap without a-priori knowledge:
//!
//! * every (dataset × mode) cell runs the full static ladder to
//!   steady state (second, warm run per rung — the regime an online
//!   policy competes in) through [`rtnn::StageOverrides::for_level`];
//! * the same cell then runs under `EngineConfig::auto()` for a handful
//!   of rounds: cost-model cold start, one bootstrap round per arm, then
//!   measured exploitation;
//! * headlines: `auto_regret_vs_best_pct` (worst-case loss to the best
//!   static rung, hard-gated at ≤ 5% by an assertion in [`run`]),
//!   `auto_gain_vs_worst_pct` on the regression workload (NBody range),
//!   and `auto_bit_equal_checks` — every auto round's neighbor lists are
//!   asserted equal to the static reference (bit-equal KNN, set-equal
//!   range, the same contract the opt-level ladder itself guarantees), so
//!   tuning provably never changes answers.

use crate::report::{fmt_ms, headline_slug, FigureReport, Table};
use crate::scale::ExperimentScale;
use crate::workloads::{Workload, DEFAULT_K};
use rtnn::{
    DecisionSource, EngineConfig, GpusimBackend, Index, OptLevel, QueryPlan, SearchMode,
    SearchParams, StageOverrides, Tuning,
};
use rtnn_data::DatasetName;
use rtnn_gpusim::Device;

/// Regret gate: auto must stay within this percentage of the best static
/// rung on every workload (the ISSUE's acceptance bound).
const MAX_REGRET_PCT: f64 = 5.0;
/// Rounds of auto-tuned querying per cell: enough for the cost-model cold
/// start, one bootstrap round per arm, and several measured exploit rounds.
const MAX_ROUNDS: usize = 16;
/// Measured (exploit) rounds required before the cell's steady state is
/// read off.
const MEASURED_ROUNDS: usize = 3;

struct Cell {
    dataset: String,
    mode: &'static str,
    /// Steady-state simulated ms per static ladder rung.
    ladder_ms: [f64; 4],
    steady_auto_ms: f64,
    chosen: OptLevel,
    bit_equal_checks: u64,
}

impl Cell {
    fn best_ms(&self) -> f64 {
        self.ladder_ms.iter().copied().fold(f64::INFINITY, f64::min)
    }

    fn worst_ms(&self) -> f64 {
        self.ladder_ms.iter().copied().fold(0.0, f64::max)
    }

    fn regret_pct(&self) -> f64 {
        (self.steady_auto_ms - self.best_ms()) / self.best_ms().max(1e-12) * 100.0
    }

    fn gain_vs_worst_pct(&self) -> f64 {
        (self.worst_ms() - self.steady_auto_ms) / self.steady_auto_ms.max(1e-12) * 100.0
    }
}

/// Non-truncating result cap for the range cells: the cross-rung equality
/// invariant below only holds when no rung drops neighbors to a cap.
const RANGE_CAP: usize = 100_000;

/// Canonical neighbor lists for cross-rung comparison: KNN results are
/// bit-equal across the ladder; range results are *set*-equal (traversal
/// order differs per rung), so they are compared sorted.
fn canonical(mode: SearchMode, neighbors: &[Vec<u32>]) -> Vec<Vec<u32>> {
    match mode {
        SearchMode::Knn => neighbors.to_vec(),
        SearchMode::Range => neighbors
            .iter()
            .map(|n| {
                let mut n = n.clone();
                n.sort_unstable();
                n
            })
            .collect(),
    }
}

/// Run one (dataset × mode) cell: static ladder to steady state, then the
/// auto-tuned index, with every round's results checked equal.
fn run_cell(device: &Device, workload: &Workload, mode: SearchMode) -> Cell {
    let plan = match mode {
        SearchMode::Knn => QueryPlan::from_params(SearchParams {
            radius: workload.radius,
            k: DEFAULT_K,
            mode,
        }),
        SearchMode::Range => QueryPlan::range(workload.radius, RANGE_CAP),
    };
    // The default (Guaranteed) KNN AABB rule: the cross-rung equality
    // invariant requires exact KNN, and the paper's EquiVolume heuristic is
    // not guaranteed exact — its candidate set can shift with partitioning.
    let config = EngineConfig::default();
    let backend = GpusimBackend::new(device);

    // Static ladder, steady state: one shared index, each rung driven
    // through its per-call stage overrides. The first pass per rung builds
    // that rung's structures (width caches, grids); the second is the
    // steady-state time an online policy competes against.
    let mut statics = Index::build(&backend, &workload.points[..], config);
    let mut ladder_ms = [0.0; 4];
    let mut reference: Option<Vec<Vec<u32>>> = None;
    let mut bit_equal_checks = 0u64;
    for (i, level) in OptLevel::all().into_iter().enumerate() {
        let overrides = StageOverrides::for_level(level);
        statics
            .query_with(&workload.queries, &plan, overrides)
            .expect("ladder warm-up fits the device");
        let steady = statics
            .query_with(&workload.queries, &plan, overrides)
            .expect("ladder run fits the device");
        ladder_ms[i] = steady.total_time_ms();
        // The ladder invariant the tuner relies on: every rung returns the
        // same neighbors (bit-equal KNN, set-equal range — see canonical).
        let neighbors = canonical(mode, &steady.neighbors);
        match &reference {
            Some(r) => {
                assert_eq!(
                    &neighbors, r,
                    "{} {:?}: ladder rung {level:?} diverged",
                    workload.name, mode
                );
                bit_equal_checks += 1;
            }
            None => reference = Some(neighbors),
        }
    }
    let reference = reference.expect("ladder populated the reference");

    // Auto: a fresh index with the tuner enabled, run until it has
    // exploited its measurements for a few rounds (cap as a safety net —
    // with the deterministic seed the cap is never the exit path).
    let mut auto = Index::build(
        &backend,
        &workload.points[..],
        config.with_tuning(Tuning::auto()),
    );
    let mut steady_auto_ms = f64::NAN;
    let mut chosen = OptLevel::default();
    let mut measured = 0usize;
    for _ in 0..MAX_ROUNDS {
        let results = auto
            .query(&workload.queries, &plan)
            .expect("auto run fits the device");
        assert_eq!(
            canonical(mode, &results.neighbors),
            reference,
            "{} {:?}: an auto-tuned round changed the answer",
            workload.name,
            mode
        );
        bit_equal_checks += 1;
        let decision = auto.last_decision().expect("auto mode always decides");
        if decision.source == DecisionSource::Measured {
            measured += 1;
            steady_auto_ms = results.total_time_ms();
            chosen = decision.level;
            if measured >= MEASURED_ROUNDS {
                break;
            }
        }
    }
    assert!(
        measured >= 1,
        "{} {:?}: the tuner never reached a measured decision",
        workload.name,
        mode
    );

    Cell {
        dataset: workload.name.clone(),
        mode: match mode {
            SearchMode::Knn => "knn",
            SearchMode::Range => "range",
        },
        ladder_ms,
        steady_auto_ms,
        chosen,
        bit_equal_checks,
    }
}

/// Run the adaptive-tuning experiment.
pub fn run(scale: &ExperimentScale) -> FigureReport {
    let mut report =
        FigureReport::new("Figure A2 (extension): adaptive stage tuning vs the static ladder");
    let device = Device::rtx_2080();

    let mut table = Table::new(
        format!("Auto tuning on {}", device.config().name),
        &[
            "workload",
            "best static",
            "worst static",
            "auto (steady)",
            "chosen",
            "regret vs best",
        ],
    );
    let mut cells = Vec::new();
    for dataset in [DatasetName::Kitti12M, DatasetName::NBody9M] {
        let workload = Workload::for_dataset(dataset, scale);
        for mode in [SearchMode::Knn, SearchMode::Range] {
            cells.push(run_cell(&device, &workload, mode));
        }
    }

    let mut worst_regret = 0.0f64;
    let mut total_checks = 0u64;
    for cell in &cells {
        let regret = cell.regret_pct();
        worst_regret = worst_regret.max(regret);
        total_checks += cell.bit_equal_checks;
        table.push_row(vec![
            format!("{} {}", cell.dataset, cell.mode),
            fmt_ms(cell.best_ms()),
            fmt_ms(cell.worst_ms()),
            fmt_ms(cell.steady_auto_ms),
            cell.chosen.label().to_string(),
            format!("{regret:.2}%"),
        ]);
        let slug = headline_slug(&cell.dataset);
        report.headline_metric(
            format!("{slug}_{}_auto_regret_vs_best_pct", cell.mode),
            regret,
        );
        // The acceptance gate: auto may lose at most MAX_REGRET_PCT to the
        // best static rung, on every workload. Simulated time is
        // deterministic, so this is a hard invariant, not a flaky bound.
        assert!(
            regret <= MAX_REGRET_PCT,
            "{} {}: auto regret {regret:.2}% exceeds {MAX_REGRET_PCT}%",
            cell.dataset,
            cell.mode
        );
    }
    report.tables.push(table);

    report.headline_metric("auto_regret_vs_best_pct", worst_regret);
    report.headline_metric("auto_bit_equal_checks", total_checks as f64);
    // The motivating regression: on NBody range the default Full rung can
    // lose to NoOpt (`full_speedup_vs_noopt < 1.0` in Figure 13). Auto
    // must recover the measured gap: its steady state sits at the best
    // rung (the regret gate above), so its gain over the worst rung is
    // the full spread.
    let regression = cells
        .iter()
        .find(|c| c.dataset.contains("NBody") && c.mode == "range")
        .expect("the NBody range cell ran");
    report.headline_metric("auto_gain_vs_worst_pct", regression.gain_vs_worst_pct());
    report.notes.push(format!(
        "NBody range (the Fig. 13 regression case): static spread {} → {}, auto settles on {} at {} ({:+.1}% vs worst rung)",
        fmt_ms(regression.worst_ms()),
        fmt_ms(regression.best_ms()),
        regression.chosen.label(),
        fmt_ms(regression.steady_auto_ms),
        regression.gain_vs_worst_pct(),
    ));
    report.notes.push(format!(
        "worst-case auto regret across the grid: {worst_regret:.2}% (gate: ≤ {MAX_REGRET_PCT}%); every auto round bit-equal to the static reference ({total_checks} checks)"
    ));
    report.notes.push(
        "decision flow: cost model on the first-ever query per signature, one bootstrap round per ladder rung, then seeded ε-greedy exploitation of the measured per-stage timings"
            .into(),
    );
    report
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn smoke_run_gates_regret_and_equality() {
        // Tighter than the shared smoke scale: the auto grid runs ~17
        // pipeline executions per cell (full ladder twice + the tuner's
        // bootstrap/exploit rounds), which is an order of magnitude more
        // than the other figures' smokes — keep the debug-profile CI run
        // affordable. The CI fig_auto *binary* smoke still runs the shared
        // RTNN_SCALE=10000 grid in release.
        let scale = ExperimentScale {
            dataset_divisor: 50_000,
            query_cap: 100,
            ..ExperimentScale::smoke_test()
        };
        let report = run(&scale);
        assert_eq!(report.tables.len(), 1);
        assert_eq!(report.tables[0].rows.len(), 4, "2 datasets x 2 modes");
        let headline = |name: &str| -> f64 {
            report
                .headline
                .iter()
                .find(|(n, _)| n == name)
                .unwrap_or_else(|| panic!("missing headline {name}"))
                .1
        };
        // The run() asserts already gate regret; re-check the exported
        // headline is consistent with the gate.
        assert!(headline("auto_regret_vs_best_pct") <= MAX_REGRET_PCT);
        // 3 ladder cross-checks + at least 5 auto rounds, per cell.
        assert!(headline("auto_bit_equal_checks") >= 4.0 * 8.0);
        assert!(headline("auto_gain_vs_worst_pct") >= 0.0);
        // Per-workload regret headlines exist for the whole grid (the slug
        // embeds the scale, e.g. `kitti_12m__1_200_scale__...`, so match by
        // prefix + suffix rather than exact name).
        for slug in ["kitti_12m", "nbody_9m"] {
            for mode in ["knn", "range"] {
                let suffix = format!("_{mode}_auto_regret_vs_best_pct");
                assert!(
                    report
                        .headline
                        .iter()
                        .any(|(n, _)| n.starts_with(slug) && n.ends_with(&suffix)),
                    "missing per-cell regret headline for {slug} {mode}"
                );
            }
        }
    }
}
