//! `fig_build`: host-parallel structure construction, end to end.
//!
//! This figure has no counterpart in the paper — it evaluates the parallel
//! construction path this repo adds on top of the paper's build-cost model:
//! the staged LBVH pipeline (`rtnn_bvh::builder`), the subtree-parallel
//! refit (`rtnn_bvh::refit`), and the shard-concurrent cold start of the
//! serving layer (`rtnn_serve::ShardedIndex::warm`).
//!
//! Three sweeps:
//!
//! 1. **Build vs threads** — host wall ms per million AABBs of the parallel
//!    LBVH at 1/2/4/8 worker threads, with the aggregate work ms alongside
//!    (the work/span ratio is the machine-independent parallelism the
//!    pipeline exposes). Every tree is checked bit-identical to the serial
//!    oracle before its wall time is reported.
//! 2. **Refit vs cut depth** — wall ms of the subtree-parallel refit as the
//!    frontier cut deepens, against the serial refit oracle.
//! 3. **Cold start** — wall ms to build *and warm* a `ShardedIndex`
//!    (structures for the serving plan pre-built on every shard) at one
//!    thread vs the machine width.
//!
//! Wall times are honest host measurements: on a single-core runner the
//! thread sweep shows flat (or worse) walls while the work/span ratio
//! still reports the exposed parallelism, so CI asserts bit-equality and
//! report structure, never a measured multi-thread speedup. The policy
//! delta shows how the measured profile moves the adaptive rebuild policy's
//! `(q−1)·S > B−R` break-even point (`StructureTiming::parallel_premium_ms`).

use crate::report::{fmt_ms, fmt_speedup, FigureReport, Table};
use crate::scale::ExperimentScale;
use rtnn::{Backend, EngineConfig, GpusimBackend, QueryPlan};
use rtnn_bvh::{
    build_point_bvh_profiled, refit_bvh_serial, refit_bvh_with_cut, BuildParams, Bvh, BvhBuilder,
};
use rtnn_data::uniform::{self, UniformParams};
use rtnn_gpusim::Device;
use rtnn_math::{Aabb, Vec3};
use rtnn_parallel::with_thread_count;
use rtnn_serve::ShardedIndex;
use std::time::Instant;

/// Byte-level tree equality: primitive order, node layout, AABB bits.
fn trees_bit_identical(a: &Bvh, b: &Bvh) -> bool {
    a.prim_indices == b.prim_indices
        && a.nodes.len() == b.nodes.len()
        && a.nodes.iter().zip(&b.nodes).all(|(x, y)| {
            x.kind == y.kind
                && x.aabb.min.to_array().map(f32::to_bits)
                    == y.aabb.min.to_array().map(f32::to_bits)
                && x.aabb.max.to_array().map(f32::to_bits)
                    == y.aabb.max.to_array().map(f32::to_bits)
        })
}

/// Run the parallel-construction experiment.
pub fn run(scale: &ExperimentScale) -> FigureReport {
    let mut report = FigureReport::new(
        "Figure B (extension): parallel structure construction — LBVH build, batched refit, \
         shard-concurrent cold start",
    );
    let machine_threads = rtnn_parallel::current_num_threads();

    let num_points = (1_000_000 / scale.dataset_divisor).max(5_000);
    let cloud = uniform::generate(&UniformParams {
        num_points,
        seed: 0x4255_494C, // "BUIL"
        ..Default::default()
    });
    let points = cloud.points;
    let side = Aabb::from_points(&points).longest_extent();
    let radius = side * (8.0 / num_points as f32).cbrt() * 0.5;

    // --- Sweep 1: build wall/work vs thread count, pinned to the oracle.
    let serial_params = BuildParams {
        builder: BvhBuilder::LbvhSerial,
        ..BuildParams::default()
    };
    let (oracle, serial_profile) = build_point_bvh_profiled(&points, radius, serial_params);
    let mut build_table = Table::new(
        format!(
            "parallel LBVH host build, {} points (serial oracle: {})",
            points.len(),
            fmt_ms(serial_profile.host_wall_ms),
        ),
        &[
            "threads",
            "wall",
            "ms / M AABBs",
            "work",
            "work/span",
            "bit-identical",
        ],
    );
    let mut wall_1t = 0.0f64;
    let mut wall_4t = 0.0f64;
    let mut best_ratio: f64 = 1.0;
    let mut all_identical = true;
    for threads in [1usize, 2, 4, 8] {
        let (tree, profile) = with_thread_count(threads, || {
            build_point_bvh_profiled(&points, radius, BuildParams::default())
        });
        let identical = trees_bit_identical(&tree, &oracle);
        all_identical &= identical;
        if threads == 1 {
            wall_1t = profile.host_wall_ms;
        }
        if threads == 4 {
            wall_4t = profile.host_wall_ms;
        }
        let ratio = profile.work_span_ratio().unwrap_or(1.0);
        best_ratio = best_ratio.max(ratio);
        build_table.push_row(vec![
            threads.to_string(),
            fmt_ms(profile.host_wall_ms),
            format!("{:.2}", profile.host_wall_ms / points.len() as f64 * 1e6),
            fmt_ms(profile.work_ms),
            format!("{ratio:.2}"),
            if identical { "yes" } else { "NO" }.to_string(),
        ]);
    }
    report.tables.push(build_table);

    // --- Sweep 2: refit wall vs frontier cut depth, against the serial
    // oracle. The drift keeps the primitive count fixed (refit contract).
    let drifted: Vec<Vec3> = points
        .iter()
        .enumerate()
        .map(|(i, &p)| {
            let j = ((i * 2654435761) % 1000) as f32 / 1000.0 - 0.5;
            Vec3::new(p.x + j * radius, p.y - j * radius, p.z + 0.5 * j * radius)
        })
        .collect();
    let moved: Vec<Aabb> = drifted
        .iter()
        .map(|&p| Aabb::cube(p, 2.0 * radius))
        .collect();
    let mut serial_tree = oracle.clone();
    let serial_refit_start = Instant::now();
    refit_bvh_serial(&mut serial_tree, &moved).expect("same primitive count");
    let serial_refit_wall = serial_refit_start.elapsed().as_secs_f64() * 1e3;
    let mut refit_table = Table::new(
        format!(
            "subtree-parallel refit at machine width (serial oracle: {})",
            fmt_ms(serial_refit_wall),
        ),
        &[
            "cut depth",
            "wall",
            "work",
            "speedup vs serial",
            "bit-identical",
        ],
    );
    let mut best_refit_speedup: f64 = 0.0;
    for cut in [0u32, 2, 4, 8] {
        let mut tree = oracle.clone();
        let wall_start = Instant::now();
        let (_, profile) = refit_bvh_with_cut(&mut tree, &moved, cut).expect("same count");
        let wall = wall_start.elapsed().as_secs_f64() * 1e3;
        let identical = trees_bit_identical(&tree, &serial_tree);
        all_identical &= identical;
        let speedup = serial_refit_wall / wall.max(1e-9);
        best_refit_speedup = best_refit_speedup.max(speedup);
        refit_table.push_row(vec![
            cut.to_string(),
            fmt_ms(wall),
            fmt_ms(profile.work_ms),
            fmt_speedup(speedup),
            if identical { "yes" } else { "NO" }.to_string(),
        ]);
    }
    report.tables.push(refit_table);

    // --- Sweep 3: serving cold start — build + warm a ShardedIndex at one
    // thread vs the machine width.
    let device = Device::rtx_2080();
    let backend = GpusimBackend::new(&device);
    let plan = QueryPlan::knn(radius, 8);
    let shards = 4;
    let mut cold_table = Table::new(
        format!("ShardedIndex cold start: build + warm, {shards} shards"),
        &["threads", "wall"],
    );
    let mut cold_walls = Vec::new();
    for threads in [1usize, machine_threads.max(2)] {
        let wall_start = Instant::now();
        let built = with_thread_count(threads, || {
            let mut sharded =
                ShardedIndex::build(&backend, &points, EngineConfig::default(), shards);
            sharded.warm(&plan).expect("valid plan")
        });
        let wall = wall_start.elapsed().as_secs_f64() * 1e3;
        assert!(built > 0.0, "cold start must build structures");
        cold_walls.push(wall);
        cold_table.push_row(vec![threads.to_string(), fmt_ms(wall)]);
    }
    report.tables.push(cold_table);
    let cold_speedup = cold_walls[0] / cold_walls[1].max(1e-9);

    // --- Policy: the measured host profile re-derives the adaptive
    // rebuild policy's break-even coefficients.
    let timing = backend.timing(points.len());
    let measured = with_thread_count(machine_threads.max(2), || {
        let (_, build) = build_point_bvh_profiled(&points, radius, BuildParams::default());
        let mut tree = oracle.clone();
        let (_, refit) = refit_bvh_with_cut(&mut tree, &moved, 4).expect("same count");
        build.combine(&refit)
    });
    let parallel_timing = timing.with_host_profile(measured.host_wall_ms, measured.work_ms);
    let premium_delta = timing.rebuild_premium_ms() - parallel_timing.parallel_premium_ms();

    report.headline_metric(
        "build_ms_per_million_1t",
        wall_1t / points.len() as f64 * 1e6,
    );
    report.headline_metric("build_speedup_4t", wall_1t / wall_4t.max(1e-9));
    report.headline_metric("build_work_span_ratio", best_ratio);
    report.headline_metric("refit_best_cut_speedup", best_refit_speedup);
    report.headline_metric("cold_start_ms_1t", cold_walls[0]);
    report.headline_metric("cold_start_speedup", cold_speedup);
    report.headline_metric("policy_break_even_delta_ms", premium_delta);
    report.headline_metric("bit_identical", if all_identical { 1.0 } else { 0.0 });

    report.notes.push(format!(
        "runner exposes {machine_threads} hardware thread(s); wall times are honest host \
         measurements — on a single-core runner the thread sweep stays flat while the \
         work/span ratio ({best_ratio:.2}) reports the parallelism the pipeline exposes"
    ));
    report.notes.push(
        "every parallel tree (build and refit, at every thread count and cut depth) is \
         checked bit-identical to the serial oracle before its time is reported"
            .into(),
    );
    report.notes.push(format!(
        "measured host profile shifts the adaptive policy's rebuild break-even premium by \
         {} (simulated premium {} → effective {})",
        fmt_ms(premium_delta),
        fmt_ms(timing.rebuild_premium_ms()),
        fmt_ms(parallel_timing.parallel_premium_ms()),
    ));
    report
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn report_structure_and_bit_equality_hold_at_smoke_scale() {
        let report = run(&ExperimentScale::smoke_test());
        let metric = |name: &str| -> f64 {
            report
                .headline
                .iter()
                .find(|(n, _)| n == name)
                .unwrap_or_else(|| panic!("missing headline metric {name}"))
                .1
        };
        // The hard guarantee: every parallel tree matched the serial
        // oracle bit for bit. (Measured wall speedups are runner-dependent
        // — a single-core CI box shows none — so they are reported, never
        // asserted.)
        assert_eq!(metric("bit_identical"), 1.0);
        assert!(metric("build_ms_per_million_1t") > 0.0);
        assert!(metric("cold_start_ms_1t") > 0.0);
        assert!(metric("build_work_span_ratio") >= 1.0);
        // Deflating the premium by a measured speedup can only lower it.
        assert!(metric("policy_break_even_delta_ms") >= 0.0);
        assert_eq!(report.tables.len(), 3);
        assert_eq!(report.tables[0].rows.len(), 4, "thread sweep rows");
        assert_eq!(report.tables[1].rows.len(), 4, "cut sweep rows");
        assert_eq!(report.tables[2].rows.len(), 2, "cold-start rows");
    }
}
