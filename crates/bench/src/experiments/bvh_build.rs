//! Figure 15 (Appendix B): BVH construction time is linear in the number of
//! AABBs.
//!
//! The paper regresses a linear fit with R² = 0.996; the bundling cost model
//! (`T_build = k1 · M`) rests on that fact. This experiment sweeps the
//! primitive count, measures the simulated build time of the acceleration
//! structure, and reports the same regression.

use crate::report::{fmt_ms, FigureReport, Table};
use crate::scale::ExperimentScale;
use rtnn_bvh::BuildParams;
use rtnn_data::uniform::{self, UniformParams};
use rtnn_gpusim::Device;
use rtnn_optix::Gas;

/// Linear regression of `y` on `x`; returns `(slope, intercept, r_squared)`.
pub fn linear_fit(x: &[f64], y: &[f64]) -> (f64, f64, f64) {
    assert_eq!(x.len(), y.len());
    let n = x.len() as f64;
    let mean_x = x.iter().sum::<f64>() / n;
    let mean_y = y.iter().sum::<f64>() / n;
    let mut sxx = 0.0;
    let mut sxy = 0.0;
    let mut syy = 0.0;
    for (&xi, &yi) in x.iter().zip(y) {
        sxx += (xi - mean_x) * (xi - mean_x);
        sxy += (xi - mean_x) * (yi - mean_y);
        syy += (yi - mean_y) * (yi - mean_y);
    }
    let slope = sxy / sxx;
    let intercept = mean_y - slope * mean_x;
    let r2 = if syy > 0.0 {
        (sxy * sxy) / (sxx * syy)
    } else {
        1.0
    };
    (slope, intercept, r2)
}

/// Run the Figure 15 experiment.
pub fn run(scale: &ExperimentScale) -> FigureReport {
    let mut report = FigureReport::new("Figure 15: BVH build time vs number of AABBs");
    let device = Device::rtx_2080_ti();
    // Sweep primitive counts; the paper goes to 36 M — scale down accordingly.
    let max_points = (36_000_000 / scale.dataset_divisor).max(6_000);
    let counts: Vec<usize> = (1..=6).map(|i| max_points * i / 6).collect();

    let mut table = Table::new(
        "Simulated acceleration-structure build time",
        &["#AABBs", "build time"],
    );
    let mut xs = Vec::new();
    let mut ys = Vec::new();
    for &n in &counts {
        let cloud = uniform::generate(&UniformParams {
            num_points: n,
            seed: 42,
            ..Default::default()
        });
        let gas = Gas::build_from_points(&device, &cloud.points, 0.5, BuildParams::default())
            .expect("build sweep fits the device");
        table.push_row(vec![n.to_string(), fmt_ms(gas.build_time_ms())]);
        xs.push(n as f64);
        ys.push(gas.build_time_ms());
    }
    report.tables.push(table);

    let (slope, intercept, r2) = linear_fit(&xs, &ys);
    report.notes.push(format!(
        "linear fit: build_ms = {slope:.3e} * AABBs + {intercept:.4}, R² = {r2:.4} (paper: R² = 0.996)"
    ));
    report.headline_metric("build_time_linear_fit_r2", r2);
    report.headline_metric("build_ms_per_million_aabbs", slope * 1e6);
    report
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn fit_recovers_a_perfect_line() {
        let x = [1.0, 2.0, 3.0, 4.0];
        let y = [3.0, 5.0, 7.0, 9.0];
        let (slope, intercept, r2) = linear_fit(&x, &y);
        assert!((slope - 2.0).abs() < 1e-9);
        assert!((intercept - 1.0).abs() < 1e-9);
        assert!((r2 - 1.0).abs() < 1e-9);
    }

    #[test]
    fn build_time_is_essentially_linear() {
        let report = run(&ExperimentScale::smoke_test());
        let note = report.notes.last().unwrap();
        let r2: f64 = note
            .split("R² = ")
            .nth(1)
            .unwrap()
            .split(' ')
            .next()
            .unwrap()
            .parse()
            .unwrap();
        assert!(r2 > 0.99, "R² {r2} too low: {note}");
    }
}
