//! Figures 5 and 6: the effect of ray coherence.
//!
//! The paper assigns queries uniformly to the cells of a 3D grid and
//! compares two query-to-ray mappings: raster-scan order of the grid cells
//! (adjacent rays are spatially close) and random order. Figure 5 plots
//! search time against the number of queries for both mappings; Figure 6
//! reports the L1/L2 hit rates and the SM occupancy that explain the gap.

use crate::report::{fmt_ms, FigureReport, Table};
use crate::scale::ExperimentScale;
use crate::workloads::{characterization_workload, DEFAULT_K};
use rtnn::{raster_order, EngineConfig, GpusimBackend, Index, OptLevel, QueryPlan};
use rtnn_gpusim::Device;
use rtnn_math::Vec3;
use rtnn_optix::LaunchMetrics;

/// Deterministically scramble a permutation (the "random order" mapping).
fn scramble(order: &[u32]) -> Vec<u32> {
    let n = order.len();
    let mut out = order.to_vec();
    if n < 2 {
        return out;
    }
    let mut state = 0x12345678u64;
    for i in (1..n).rev() {
        state = state
            .wrapping_mul(6364136223846793005)
            .wrapping_add(1442695040888963407);
        let j = (state >> 33) as usize % (i + 1);
        out.swap(i, j);
    }
    out
}

/// One run: NoOpt search (so the engine does not re-schedule the queries)
/// over `queries` presented in the given order.
fn run_ordered(
    device: &Device,
    points: &[Vec3],
    queries: &[Vec3],
    radius: f32,
) -> (f64, LaunchMetrics) {
    let backend = GpusimBackend::new(device);
    let results = Index::build(
        &backend,
        points,
        EngineConfig::default().with_opt(OptLevel::NoOpt),
    )
    .query(queries, &QueryPlan::knn(radius, DEFAULT_K))
    .expect("coherence workload fits the device");
    (results.breakdown.search_ms, results.search_metrics)
}

/// Run the Figure 5 + Figure 6 experiment.
pub fn run(scale: &ExperimentScale) -> FigureReport {
    let mut report =
        FigureReport::new("Figures 5 and 6: ray coherence (ordered vs random queries)");
    let device = Device::rtx_2080_ti();
    let workload = characterization_workload(scale);
    let radius = workload.radius;

    let mut fig5 = Table::new(
        "Figure 5: search time vs number of queries",
        &[
            "queries",
            "raster-order time",
            "random-order time",
            "random / raster",
        ],
    );
    let mut fig6 = Table::new(
        "Figure 6: cache hit rate and SM occupancy",
        &["order", "L1 hit %", "L2 hit %", "SM occupancy %"],
    );

    // Sweep the query count the way the x-axis of Figure 5 does.
    let fractions = [0.1, 0.25, 0.5, 1.0];
    let mut last: Option<(LaunchMetrics, LaunchMetrics)> = None;
    for f in fractions {
        let n = ((workload.queries.len() as f64 * f) as usize).max(64);
        let queries: Vec<Vec3> = workload.queries.iter().take(n).copied().collect();
        let raster = raster_order(&queries, 64).expect("non-zero raster grid");
        let random = scramble(&raster);
        let ordered_queries: Vec<Vec3> = raster.iter().map(|&i| queries[i as usize]).collect();
        let random_queries: Vec<Vec3> = random.iter().map(|&i| queries[i as usize]).collect();
        let (t_ord, m_ord) = run_ordered(&device, &workload.points, &ordered_queries, radius);
        let (t_rand, m_rand) = run_ordered(&device, &workload.points, &random_queries, radius);
        fig5.push_row(vec![
            n.to_string(),
            fmt_ms(t_ord),
            fmt_ms(t_rand),
            format!("{:.2}x", t_rand / t_ord.max(1e-12)),
        ]);
        last = Some((m_ord, m_rand));
    }

    if let Some((ord, rand)) = last {
        for (label, m) in [("raster", &ord), ("random", &rand)] {
            fig6.push_row(vec![
                label.to_string(),
                format!("{:.1}", m.kernel.memory.l1_hit_rate() * 100.0),
                format!("{:.1}", m.kernel.memory.l2_hit_rate() * 100.0),
                format!("{:.1}", m.kernel.simt_efficiency * 100.0),
            ]);
        }
        report.notes.push(format!(
            "ordered queries achieve {:.1}% L1 hit rate vs {:.1}% for random order; the paper reports the same direction (Fig. 6)",
            ord.kernel.memory.l1_hit_rate() * 100.0,
            rand.kernel.memory.l1_hit_rate() * 100.0
        ));
        report.headline_metric(
            "ordered_vs_random_time_factor",
            rand.time_ms() / ord.time_ms().max(1e-12),
        );
        report.headline_metric("ordered_l1_hit_rate", ord.kernel.memory.l1_hit_rate());
        report.headline_metric("random_l1_hit_rate", rand.kernel.memory.l1_hit_rate());
    }

    report.tables.push(fig5);
    report.tables.push(fig6);
    report.notes.push(
        "paper: random-order search is consistently ~4-5x slower than raster order (Fig. 5)".into(),
    );
    report
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn smoke_run_produces_both_tables() {
        let report = run(&ExperimentScale::smoke_test());
        assert_eq!(report.tables.len(), 2);
        assert_eq!(report.tables[0].rows.len(), 4);
        assert_eq!(report.tables[1].rows.len(), 2);
    }

    #[test]
    fn random_vs_raster_ratios_stay_in_a_sane_band_at_smoke_scale() {
        // With only a few hundred queries (smoke scale) both orders fit in
        // the caches and warp load-balance noise dominates, so the ratio
        // hovers around 1 and can dip slightly below it. The paper's ≥1
        // claim is exercised at realistic scale by the fig05 binary (see
        // EXPERIMENTS.md); here we only guard against the model producing
        // nonsensical ratios.
        let report = run(&ExperimentScale::smoke_test());
        let ratios: Vec<f64> = report.tables[0]
            .rows
            .iter()
            .map(|row| row[3].trim_end_matches('x').parse().unwrap())
            .collect();
        for (i, ratio) in ratios.iter().enumerate() {
            assert!(
                (0.5..=100.0).contains(ratio),
                "implausible random/raster ratio at row {i}: {ratios:?}"
            );
        }
    }

    #[test]
    fn scramble_is_a_permutation() {
        let order: Vec<u32> = (0..100).collect();
        let mut s = scramble(&order);
        assert_ne!(s, order);
        s.sort();
        assert_eq!(s, order);
    }
}
