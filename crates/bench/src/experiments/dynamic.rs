//! `fig_dynamic`: amortized per-frame cost of the streaming subsystem.
//!
//! This figure has no counterpart in the paper — it evaluates the
//! `rtnn-dynamic` extension. A fluid block settles over many frames
//! (the SPH drift model) and the same frame sequence is served three ways:
//!
//! * **rebuild/frame** — `RebuildPolicy::always_rebuild()`, the batch
//!   engine's behaviour bolted onto a loop (the baseline the paper's cost
//!   model implicitly assumes);
//! * **refit-only** — `RebuildPolicy::never_rebuild()`, structure quality
//!   degrades unchecked;
//! * **policy** — the cost-model-driven default that refits until the
//!   predicted traversal penalty exceeds the rebuild premium.
//!
//! Reported per strategy: amortized simulated milliseconds per frame
//! (structure + total), rebuild/refit counts, final SAH quality ratio, and
//! amortized *host* milliseconds per frame — the wall-clock cost of running
//! the index on this machine, which is what a deployment pays.

use crate::report::{fmt_ms, FigureReport, Table};
use crate::scale::ExperimentScale;
use rtnn::{RtnnConfig, SearchParams};
use rtnn_data::dynamics::{DriftModel, DriftScene};
use rtnn_data::uniform::{self, UniformParams};
use rtnn_dynamic::{DynamicIndex, RebuildPolicy};
use rtnn_gpusim::Device;

/// Outcome of one strategy's run over the frame sequence.
struct StrategyRun {
    label: &'static str,
    sim_total_ms_per_frame: f64,
    sim_structure_ms_per_frame: f64,
    host_ms_per_frame: f64,
    host_structure_ms_per_frame: f64,
    rebuilds: u64,
    refits: u64,
    final_quality: f64,
}

#[allow(clippy::too_many_arguments)]
fn run_strategy(
    label: &'static str,
    device: &Device,
    config: RtnnConfig,
    policy: RebuildPolicy,
    initial: &rtnn_data::PointCloud,
    model: DriftModel,
    frames: usize,
    query_stride: usize,
) -> StrategyRun {
    let mut scene = DriftScene::new(initial, model, 0xF1D0);
    let mut index = DynamicIndex::with_policy(device, config, policy);
    for &p in &initial.points {
        index.insert(p);
    }
    let host_start = std::time::Instant::now();
    let mut final_quality = 1.0;
    let mut host_structure_ms = 0.0;
    for _ in 0..frames {
        let update = scene.step();
        for &slot in &update.removed {
            index.remove(slot);
        }
        for &slot in &update.inserted {
            index.insert(scene.position(slot).expect("inserted slot is live"));
        }
        for &slot in &update.moved {
            index.move_point(slot, scene.position(slot).expect("moved slot is live"));
        }
        let queries: Vec<_> = scene
            .live_points()
            .into_iter()
            .step_by(query_stride)
            .collect();
        let frame = index
            .search(&queries)
            .expect("dynamic frame fits the device");
        final_quality = frame.quality_ratio;
        host_structure_ms += frame.host_structure_ms;
    }
    let host_ms = host_start.elapsed().as_secs_f64() * 1e3;
    let m = index.frame_metrics();
    StrategyRun {
        label,
        sim_total_ms_per_frame: m.amortized_frame_ms(),
        sim_structure_ms_per_frame: m.amortized_structure_ms(),
        host_ms_per_frame: host_ms / frames as f64,
        host_structure_ms_per_frame: host_structure_ms / frames as f64,
        rebuilds: m.rebuilds,
        refits: m.refits,
        final_quality,
    }
}

/// Run the dynamic-scene experiment.
pub fn run(scale: &ExperimentScale) -> FigureReport {
    let mut report = FigureReport::new(
        "Figure D (extension): amortized per-frame cost of refit vs rebuild vs policy",
    );
    let device = Device::rtx_2080();

    // A settling fluid block, sized from the scale knob (the paper-scale
    // anchor is a 2M-particle fluid).
    let num_points = (2_000_000 / scale.dataset_divisor).max(1_500);
    let frames = 16usize;
    let initial = uniform::generate(&UniformParams {
        num_points,
        seed: 0xD1F7,
        ..Default::default()
    });
    let side = initial.bounds().longest_extent();
    let radius = side * (8.0 / num_points as f32).cbrt(); // ~8 neighbors
    let params = SearchParams::range(radius, 64);
    let config = RtnnConfig::new(params);
    let model = DriftModel::SphSettle {
        compression: 0.996,
        jitter: 0.002 * side,
    };

    // Query an eighth of the cloud per round (streaming rounds query the
    // active subset, not the whole map): with the full cloud as queries the
    // per-frame host time is almost entirely traversal, identical across
    // strategies, and wall-clock noise swamps the structure-cost difference
    // this figure exists to measure.
    let stride = scale.query_stride(num_points).max(8);
    let runs = [
        run_strategy(
            "rebuild/frame",
            &device,
            config,
            RebuildPolicy::always_rebuild(),
            &initial,
            model,
            frames,
            stride,
        ),
        run_strategy(
            "refit-only",
            &device,
            config,
            RebuildPolicy::never_rebuild(),
            &initial,
            model,
            frames,
            stride,
        ),
        run_strategy(
            "policy",
            &device,
            config,
            RebuildPolicy::adaptive(),
            &initial,
            model,
            frames,
            stride,
        ),
    ];

    let mut table = Table::new(
        format!(
            "{} drifting particles, {frames} frames (SPH settle), r = {radius:.3}",
            num_points
        ),
        &[
            "strategy",
            "sim ms/frame",
            "structure ms/frame",
            "host ms/frame",
            "host structure ms/frame",
            "rebuilds",
            "refits",
            "final quality",
        ],
    );
    for r in &runs {
        table.push_row(vec![
            r.label.to_string(),
            fmt_ms(r.sim_total_ms_per_frame),
            fmt_ms(r.sim_structure_ms_per_frame),
            fmt_ms(r.host_ms_per_frame),
            fmt_ms(r.host_structure_ms_per_frame),
            r.rebuilds.to_string(),
            r.refits.to_string(),
            format!("{:.3}", r.final_quality),
        ]);
    }
    report.tables.push(table);

    let rebuild = &runs[0];
    let policy = &runs[2];
    report.headline_metric("policy_sim_ms_per_frame", policy.sim_total_ms_per_frame);
    report.headline_metric("rebuild_sim_ms_per_frame", rebuild.sim_total_ms_per_frame);
    report.headline_metric("policy_host_ms_per_frame", policy.host_ms_per_frame);
    report.headline_metric("rebuild_host_ms_per_frame", rebuild.host_ms_per_frame);
    report.headline_metric(
        "policy_host_structure_ms_per_frame",
        policy.host_structure_ms_per_frame,
    );
    report.headline_metric(
        "rebuild_host_structure_ms_per_frame",
        rebuild.host_structure_ms_per_frame,
    );
    report.headline_metric(
        "policy_structure_savings_factor",
        rebuild.sim_structure_ms_per_frame / policy.sim_structure_ms_per_frame.max(1e-12),
    );
    report.headline_metric("policy_rebuilds", policy.rebuilds as f64);
    report.notes.push(format!(
        "policy amortized host cost {:.2} ms/frame vs rebuild-every-frame {:.2} ms/frame \
         (structure-maintenance host cost {:.3} vs {:.3} ms/frame, {:.2}x); \
         simulated structure cost {:.4} vs {:.4} ms/frame; policy rebuilt {} of {frames} frames",
        policy.host_ms_per_frame,
        rebuild.host_ms_per_frame,
        policy.host_structure_ms_per_frame,
        rebuild.host_structure_ms_per_frame,
        rebuild.host_structure_ms_per_frame / policy.host_structure_ms_per_frame.max(1e-12),
        policy.sim_structure_ms_per_frame,
        rebuild.sim_structure_ms_per_frame,
        policy.rebuilds,
    ));
    report.notes.push(
        "refit-only shows the failure mode the policy guards against: zero rebuilds but \
         unbounded quality drift on adversarial motion (mild here — settling is refit-friendly)"
            .into(),
    );
    report
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn policy_beats_rebuild_every_frame_on_amortized_cost() {
        let report = run(&ExperimentScale::smoke_test());
        let metric = |name: &str| -> f64 {
            report
                .headline
                .iter()
                .find(|(n, _)| n == name)
                .unwrap_or_else(|| panic!("missing headline metric {name}"))
                .1
        };
        // Simulated structure cost: the policy must amortize builds away.
        assert!(metric("policy_structure_savings_factor") > 1.0);
        // Host-side structure maintenance must also be cheaper (measured
        // directly, so this is robust to traversal wall-clock noise).
        assert!(
            metric("policy_host_structure_ms_per_frame")
                < metric("rebuild_host_structure_ms_per_frame"),
            "policy host structure {} vs rebuild {}",
            metric("policy_host_structure_ms_per_frame"),
            metric("rebuild_host_structure_ms_per_frame")
        );
        // The policy must rebuild strictly fewer times than there are frames.
        assert!(metric("policy_rebuilds") < 16.0);
        // Simulated end-to-end amortized cost must not regress.
        assert!(
            metric("policy_sim_ms_per_frame") <= metric("rebuild_sim_ms_per_frame") * 1.001,
            "policy {} vs rebuild {}",
            metric("policy_sim_ms_per_frame"),
            metric("rebuild_sim_ms_per_frame")
        );
        assert_eq!(report.tables.len(), 1);
        assert_eq!(report.tables[0].rows.len(), 3);
    }
}
