//! `fig_mixed`: amortized cost of heterogeneous plans on one `Index`.
//!
//! This figure has no counterpart in the paper — it evaluates the
//! Index/QueryPlan API redesign. A mixed query workload (3 radii × 2 query
//! kinds, the shape RT-kNNS-style KNN services and RT-DBSCAN-style epsilon
//! clustering put on the same scene) is served two ways:
//!
//! * **one index, one batch** — a single persistent `Index` answers a
//!   heterogeneous `QueryPlan::Batch` in one call: one shared scheduling
//!   traversal pass, one megacell grid, and one acceleration structure per
//!   *distinct* AABB width, all cached;
//! * **six engines** — the legacy shape: one fused single-plan engine per
//!   `(radius, kind)` configuration, each paying its own global structure
//!   build, its own grid, and its own scheduling pass.
//!
//! Reported: total and per-plan amortized simulated milliseconds, host
//! wall-clock milliseconds, and structure builds — plus the speedup factor
//! `six engines / one index` that `results/summary.json` tracks across PRs.

#![allow(deprecated)] // the legacy engine is exactly the baseline measured

use crate::report::{fmt_ms, fmt_speedup, FigureReport, Table};
use crate::scale::ExperimentScale;
use rtnn::{
    EngineConfig, GpusimBackend, Index, PlanSlice, QueryPlan, Rtnn, RtnnConfig, SearchParams,
};
use rtnn_data::uniform::{self, UniformParams};
use rtnn_gpusim::Device;
use rtnn_math::Vec3;

/// The mixed workload: per slice, a plan plus the query ids it covers.
fn build_slices(radii: [f32; 3], k: usize, cap: usize, num_queries: usize) -> Vec<PlanSlice> {
    let mut slices: Vec<PlanSlice> = (0..6)
        .map(|s| {
            let r = radii[s % 3];
            let plan = if s < 3 {
                QueryPlan::knn(r, k)
            } else {
                QueryPlan::range(r, cap)
            };
            PlanSlice::new(plan, Vec::new())
        })
        .collect();
    for q in 0..num_queries as u32 {
        slices[q as usize % 6].query_ids.push(q);
    }
    slices
}

/// Run the mixed-plan experiment.
pub fn run(scale: &ExperimentScale) -> FigureReport {
    let mut report = FigureReport::new(
        "Figure M (extension): heterogeneous plans on one Index vs per-plan engines",
    );
    let device = Device::rtx_2080();

    let num_points = (2_000_000 / scale.dataset_divisor).max(2_000);
    let cloud = uniform::generate(&UniformParams {
        num_points,
        seed: 0x4D49_5845, // "MIXE"
        ..Default::default()
    });
    let points = cloud.points;
    let stride = scale.query_stride(points.len()).max(4);
    let queries: Vec<Vec3> = points.iter().step_by(stride).copied().collect();

    // Three radii around the ~8-neighbor density anchor, two query kinds.
    let side = rtnn_math::Aabb::from_points(&points).longest_extent();
    let base_r = side * (8.0 / num_points as f32).cbrt();
    let radii = [base_r * 0.75, base_r, base_r * 1.5];
    let (k, cap) = (8usize, 32usize);
    let slices = build_slices(radii, k, cap, queries.len());

    // One index, one heterogeneous batch.
    let backend = GpusimBackend::new(&device);
    let mut index = Index::build(&backend, &points[..], EngineConfig::default());
    let host_start = std::time::Instant::now();
    let batch_results = index
        .query(&queries, &QueryPlan::Batch(slices.clone()))
        .expect("mixed batch fits the device");
    let batch_host_ms = host_start.elapsed().as_secs_f64() * 1e3;
    let batch_sim_ms = batch_results.total_time_ms();
    let batch_structures = index.cached_structures();

    // Six fused single-plan engines (the legacy shape).
    let mut engines_sim_ms = 0.0;
    let mut engines_bvh_ms = 0.0;
    let host_start = std::time::Instant::now();
    for slice in &slices {
        let params: SearchParams = slice.plan.params().expect("non-batch slice");
        let slice_queries: Vec<Vec3> = slice
            .query_ids
            .iter()
            .map(|&q| queries[q as usize])
            .collect();
        let engine = Rtnn::new(&device, RtnnConfig::new(params));
        let results = engine
            .search(&points, &slice_queries)
            .expect("per-plan engine fits the device");
        engines_sim_ms += results.total_time_ms();
        engines_bvh_ms += results.breakdown.bvh_ms;
    }
    let engines_host_ms = host_start.elapsed().as_secs_f64() * 1e3;

    let num_plans = slices.len() as f64;
    let sim_speedup = engines_sim_ms / batch_sim_ms.max(1e-12);
    let host_speedup = engines_host_ms / batch_host_ms.max(1e-12);

    let mut table = Table::new(
        format!(
            "{} points, {} queries across 6 plans (3 radii x 2 kinds, K={k}, cap={cap})",
            points.len(),
            queries.len()
        ),
        &[
            "strategy",
            "sim ms total",
            "sim ms/plan",
            "BVH ms",
            "host ms total",
            "host ms/plan",
        ],
    );
    table.push_row(vec![
        "one Index, one batch".into(),
        fmt_ms(batch_sim_ms),
        fmt_ms(batch_sim_ms / num_plans),
        fmt_ms(batch_results.breakdown.bvh_ms),
        fmt_ms(batch_host_ms),
        fmt_ms(batch_host_ms / num_plans),
    ]);
    table.push_row(vec![
        "six single-plan engines".into(),
        fmt_ms(engines_sim_ms),
        fmt_ms(engines_sim_ms / num_plans),
        fmt_ms(engines_bvh_ms),
        fmt_ms(engines_host_ms),
        fmt_ms(engines_host_ms / num_plans),
    ]);
    report.tables.push(table);

    report.headline_metric("mixed_sim_speedup", sim_speedup);
    report.headline_metric("mixed_host_speedup", host_speedup);
    report.headline_metric("batch_sim_ms_per_plan", batch_sim_ms / num_plans);
    report.headline_metric("engines_sim_ms_per_plan", engines_sim_ms / num_plans);
    report.headline_metric("batch_bvh_ms", batch_results.breakdown.bvh_ms);
    report.headline_metric("engines_bvh_ms", engines_bvh_ms);
    report.headline_metric("batch_cached_structures", batch_structures as f64);
    report.notes.push(format!(
        "one Index answering the heterogeneous batch costs {:.2} ms simulated \
         ({:.2} ms/plan) vs {:.2} ms ({:.2} ms/plan) for six fused engines — \
         {} amortized; structure-build time {:.2} ms vs {:.2} ms \
         ({} cached structures serve all 6 plans, and later batches on the \
         same index pay zero build)",
        batch_sim_ms,
        batch_sim_ms / num_plans,
        engines_sim_ms,
        engines_sim_ms / num_plans,
        fmt_speedup(sim_speedup),
        batch_results.breakdown.bvh_ms,
        engines_bvh_ms,
        batch_structures,
    ));
    report.notes.push(
        "the batch shares one first-hit scheduling pass and one megacell grid; \
         the six engines each pay their own global build, grid and scheduling pass"
            .into(),
    );
    report
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn one_index_beats_six_engines_on_amortized_cost() {
        let report = run(&ExperimentScale::smoke_test());
        let metric = |name: &str| -> f64 {
            report
                .headline
                .iter()
                .find(|(n, _)| n == name)
                .unwrap_or_else(|| panic!("missing headline metric {name}"))
                .1
        };
        // The acceptance criterion of the API redesign: a heterogeneous
        // batch on one Index beats rebuilding per-plan engines on simulated
        // amortized cost.
        assert!(
            metric("mixed_sim_speedup") > 1.0,
            "batch should be cheaper, got speedup {}",
            metric("mixed_sim_speedup")
        );
        // Structure work is where the win comes from.
        assert!(metric("batch_bvh_ms") < metric("engines_bvh_ms"));
        // 3 distinct radii + the shared scheduling width bound the number
        // of cached structures from below.
        assert!(metric("batch_cached_structures") >= 3.0);
        assert_eq!(report.tables.len(), 1);
        assert_eq!(report.tables[0].rows.len(), 2);
    }
}
