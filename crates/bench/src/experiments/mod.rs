//! One module per reproduced figure. Every module exposes
//! `run(scale) -> FigureReport`; the binaries in `src/bin/` are thin
//! wrappers that print (and optionally save) the report.

pub mod aabb_sweep;
pub mod ablation;
pub mod analytics;
pub mod auto;
pub mod build;
pub mod bvh_build;
pub mod coherence;
pub mod dynamic;
pub mod mixed;
pub mod obs;
pub mod partition_dist;
pub mod sensitivity;
pub mod serve;
pub mod speedups;
pub mod stages;
pub mod step_costs;
