//! `fig_obs`: the observability subsystem's two contracts, measured.
//!
//! `rtnn-telemetry` is only admissible as an always-on substrate if (a)
//! recording never changes results and (b) the disabled path costs nothing
//! worth arguing about. This experiment pins both:
//!
//! * **Bit-equality** — the same plans (KNN, range, heterogeneous batch)
//!   run against a fresh `Index` and a fresh `ShardedIndex` under a scoped
//!   telemetry sink at every level (`off`/`basic`/`full`), and every
//!   neighbor list is compared against an unobserved baseline run; the
//!   virtual-time load harness is replayed plain and observed and its
//!   statistics compared.
//! * **Overhead** — the same warm-index query workload is timed (median of
//!   several interleaved rounds of host wall time) with no ambient sink and
//!   with a scoped sink per level; `obs_overhead_pct_off` is the headline
//!   the smoke gate bounds. Only the *disabled* overhead is asserted —
//!   basic/full are reported for trend tracking, never gated (they buy
//!   data).
//!
//! The exporters are exercised on the run's own snapshot: the JSONL dump is
//! parsed back and reconciled, and the Prometheus text is sanity-checked.

use crate::report::{fmt_ms, FigureReport, Table};
use crate::scale::ExperimentScale;
use rtnn::telemetry::{
    verify_jsonl_roundtrip, FlightRecorder, SignatureProfiler, SloConfig, Telemetry, TelemetryLevel,
};
use rtnn::{EngineConfig, GpusimBackend, Index, PlanSlice, QueryPlan};
use rtnn_data::uniform::{self, UniformParams};
use rtnn_gpusim::Device;
use rtnn_math::Vec3;
use rtnn_serve::{
    poisson_arrivals, run_virtual, run_virtual_observed, run_virtual_recorded, Request,
    ServeConfig, ShardedIndex,
};
use std::sync::Arc;
use std::time::Instant;

/// The plan mix every check runs: one of each kind, sharing the index.
fn plan_mix(num_queries: usize, base_r: f32) -> Vec<QueryPlan> {
    let half = num_queries as u32 / 2;
    vec![
        QueryPlan::knn(base_r, 8),
        QueryPlan::range(base_r * 0.8, 32),
        QueryPlan::Batch(vec![
            PlanSlice::new(QueryPlan::knn(base_r * 0.9, 4), (0..half).collect()),
            PlanSlice::new(
                QueryPlan::range(base_r * 0.7, 16),
                (half..num_queries as u32).collect(),
            ),
        ]),
    ]
}

/// Run every plan against a fresh index, returning the neighbor lists per
/// plan.
fn run_plans(
    backend: &GpusimBackend,
    points: &[Vec3],
    queries: &[Vec3],
    plans: &[QueryPlan],
) -> Vec<Vec<Vec<u32>>> {
    let mut index = Index::build(backend, points, EngineConfig::default());
    plans
        .iter()
        .map(|p| index.query(queries, p).expect("plan").neighbors)
        .collect()
}

/// Median of a sample set (for the interleaved timing rounds).
fn median(samples: &mut [f64]) -> f64 {
    samples.sort_by(|a, b| a.partial_cmp(b).expect("finite"));
    samples[samples.len() / 2]
}

/// Run the observability experiment.
pub fn run(scale: &ExperimentScale) -> FigureReport {
    let mut report = FigureReport::new(
        "Figure O (extension): telemetry bit-equality and measured overhead per level",
    );
    let device = Device::rtx_2080();
    let backend = GpusimBackend::new(&device);

    let num_points = (1_000_000 / scale.dataset_divisor).max(5_000);
    let cloud = uniform::generate(&UniformParams {
        num_points,
        seed: 0x4F42_5356, // "OBSV"
        ..Default::default()
    });
    let points = cloud.points;
    let side = rtnn_math::Aabb::from_points(&points).longest_extent();
    let base_r = side * (8.0 / num_points as f32).cbrt();
    let stride = scale.query_stride(points.len());
    let queries: Vec<Vec3> = points.iter().step_by(stride).copied().collect();
    let plans = plan_mix(queries.len(), base_r);

    let levels = [
        ("off", TelemetryLevel::Off),
        ("basic", TelemetryLevel::Basic),
        ("full", TelemetryLevel::Full),
    ];

    // ---- (a) bit-equality across levels -----------------------------------
    let baseline = run_plans(&backend, &points, &queries, &plans);
    let mut sharded_ref = ShardedIndex::build(&backend, &points, EngineConfig::default(), 3);
    let sharded_baseline: Vec<Vec<Vec<u32>>> = plans
        .iter()
        .map(|p| sharded_ref.query(&queries, p).expect("plan").neighbors)
        .collect();

    let mut equivalence = Table::new(
        format!(
            "bit-equality of {} queries x {} plans against the unobserved baseline \
             ({} points; sharded runs use 3 Morton-range shards)",
            queries.len(),
            plans.len(),
            points.len()
        ),
        &["level", "index plans", "sharded plans", "spans recorded"],
    );
    let mut checks = 0usize;
    for (name, level) in levels {
        let sink = Telemetry::new(level);
        let observed = Telemetry::scoped(&sink, || {
            let direct = run_plans(&backend, &points, &queries, &plans);
            let mut sharded = ShardedIndex::build(&backend, &points, EngineConfig::default(), 3);
            let shard_results: Vec<Vec<Vec<u32>>> = plans
                .iter()
                .map(|p| sharded.query(&queries, p).expect("plan").neighbors)
                .collect();
            (direct, shard_results)
        });
        assert_eq!(
            observed.0, baseline,
            "telemetry level {name} changed direct Index results"
        );
        assert_eq!(
            observed.1, sharded_baseline,
            "telemetry level {name} changed sharded results"
        );
        checks += plans.len() * 2;
        let snapshot = sink.snapshot();
        equivalence.push_row(vec![
            name.to_string(),
            format!("{} ✓", plans.len()),
            format!("{} ✓", plans.len()),
            format!("{}", snapshot.spans.len() as u64 + snapshot.dropped_spans),
        ]);
        // The exporters must hold for whatever this level recorded.
        verify_jsonl_roundtrip(&snapshot).expect("JSONL round trip");
        let prom = snapshot.to_prometheus();
        if level.metrics_enabled() {
            assert!(
                prom.contains("rtnn_index_queries"),
                "prometheus export misses index.queries"
            );
        }
    }
    // Profiler attachment must be as invisible to results as the sink
    // levels themselves.
    let sink = Telemetry::new(TelemetryLevel::Full);
    sink.enable_profiler(SignatureProfiler::new(0.2));
    let profiled = Telemetry::scoped(&sink, || run_plans(&backend, &points, &queries, &plans));
    assert_eq!(
        profiled, baseline,
        "the continuous profiler changed results"
    );
    checks += plans.len();
    let profile = sink.profile_snapshot().expect("profiler attached");
    assert!(!profile.is_empty(), "profiler saw no executions");
    let profiler_signatures = profile.len();

    report.tables.push(equivalence);

    // Virtual-time harness: observation must not perturb the replay, and
    // the observed snapshot must be bit-deterministic.
    let requests: Vec<Request> = (0..60)
        .map(|i| {
            let qs: Vec<Vec3> = (0..4 + i % 5)
                .map(|j| points[(i * 131 + j * 17) % points.len()])
                .collect();
            Request::new(qs, QueryPlan::knn(base_r * 0.5, 4))
        })
        .collect();
    let arrivals = poisson_arrivals(requests.len(), 2_000.0, 0x0B5);
    let cfg = ServeConfig::default()
        .with_window_us(500)
        .with_max_batch(16);
    let mut plain_index = Index::build(&backend, &points[..], EngineConfig::default());
    let plain = run_virtual(&mut plain_index, &requests, &arrivals, &cfg);
    let mut obs_index = Index::build(&backend, &points[..], EngineConfig::default());
    let (observed, snap_a) = run_virtual_observed(
        &mut obs_index,
        &requests,
        &arrivals,
        &cfg,
        TelemetryLevel::Full,
    );
    let mut obs_index2 = Index::build(&backend, &points[..], EngineConfig::default());
    let (_, snap_b) = run_virtual_observed(
        &mut obs_index2,
        &requests,
        &arrivals,
        &cfg,
        TelemetryLevel::Full,
    );
    assert_eq!(
        observed.stats, plain.stats,
        "observed virtual replay diverged from the plain one"
    );
    assert_eq!(snap_a, snap_b, "virtual-time snapshot is not deterministic");
    snap_a.check_nesting(1e-9).expect("span nesting");
    verify_jsonl_roundtrip(&snap_a).expect("loadgen JSONL round trip");
    checks += 2;

    // Flight recorder on the same replay: recording must not perturb the
    // statistics, and two identical runs must emit identical SLO events and
    // pin identical exemplars (a 0 ms target breaches deterministically the
    // moment the window is judged).
    let slo = SloConfig {
        quantile: 0.5,
        target_ms: 0.0,
        window: 32,
        min_samples: 8,
    };
    let flight_run = || {
        let mut index = Index::build(&backend, &points[..], EngineConfig::default());
        let mut recorder = FlightRecorder::with_slo(128, slo);
        let (run, _) = run_virtual_recorded(
            &mut index,
            &requests,
            &arrivals,
            &cfg,
            TelemetryLevel::Full,
            &mut recorder,
        );
        (run, recorder)
    };
    let (flight_a, recorder_a) = flight_run();
    let (_, recorder_b) = flight_run();
    assert_eq!(
        flight_a.stats, plain.stats,
        "flight recording perturbed the virtual replay"
    );
    assert!(
        !recorder_a.pinned().is_empty(),
        "the 0 ms SLO must breach and pin an exemplar"
    );
    assert_eq!(
        recorder_a.to_jsonl(),
        recorder_b.to_jsonl(),
        "flight recorder runs are not bit-reproducible"
    );
    checks += 2;

    // ---- (b) overhead per level ------------------------------------------
    // Interleaved rounds: each round times every variant once on its own
    // warm index, so drift hits all variants alike; the median round is
    // reported.
    let rounds = 5;
    let variants: Vec<(&str, Option<Arc<Telemetry>>)> = vec![
        ("baseline", None),
        ("off", Some(Telemetry::new(TelemetryLevel::Off))),
        ("basic", Some(Telemetry::new(TelemetryLevel::Basic))),
        ("full", Some(Telemetry::new(TelemetryLevel::Full))),
        ("full_profile", {
            let sink = Telemetry::new(TelemetryLevel::Full);
            sink.enable_profiler(SignatureProfiler::new(0.2));
            Some(sink)
        }),
    ];
    let mut indexes: Vec<Index> = Vec::new();
    let mut sinks: Vec<Option<Arc<Telemetry>>> = Vec::new();
    for (_, sink) in &variants {
        let mut index = Index::build(&backend, &points[..], EngineConfig::default());
        for p in &plans {
            index.query(&queries, p).expect("warm"); // structures + widths cached
        }
        indexes.push(index);
        sinks.push(sink.clone());
    }
    let mut times: Vec<Vec<f64>> = vec![Vec::new(); variants.len()];
    for _ in 0..rounds {
        for (vi, _) in variants.iter().enumerate() {
            let index = &mut indexes[vi];
            let start = Instant::now();
            match &sinks[vi] {
                None => {
                    for p in &plans {
                        index.query(&queries, p).expect("timed");
                    }
                }
                Some(sink) => Telemetry::scoped(sink, || {
                    for p in &plans {
                        index.query(&queries, p).expect("timed");
                    }
                }),
            }
            times[vi].push(start.elapsed().as_secs_f64() * 1e3);
        }
    }
    let medians: Vec<f64> = times.iter_mut().map(|t| median(t)).collect();
    let base_ms = medians[0].max(1e-9);

    let mut overhead = Table::new(
        format!(
            "host wall time of the warm query path ({} queries x {} plans, median of {} \
             interleaved rounds)",
            queries.len(),
            plans.len(),
            rounds
        ),
        &["variant", "median", "overhead"],
    );
    for (vi, (name, _)) in variants.iter().enumerate() {
        let pct = (medians[vi] / base_ms - 1.0) * 100.0;
        overhead.push_row(vec![
            name.to_string(),
            fmt_ms(medians[vi]),
            if vi == 0 {
                "—".to_string()
            } else {
                format!("{pct:+.1}%")
            },
        ]);
        if vi > 0 {
            report.headline_metric(format!("obs_overhead_pct_{name}"), pct);
        }
    }

    // Flight-recorder overhead: host wall time of the virtual replay with
    // and without a recording ring + SLO monitor, interleaved rounds again.
    // Reported for trend tracking only — the recorder sits on the serving
    // path, not the query path, so it has its own baseline row.
    let mut replay_times: Vec<Vec<f64>> = vec![Vec::new(); 2];
    for _ in 0..rounds {
        let start = Instant::now();
        run_virtual(&mut plain_index, &requests, &arrivals, &cfg);
        replay_times[0].push(start.elapsed().as_secs_f64() * 1e3);
        let mut recorder = FlightRecorder::with_slo(128, slo);
        let start = Instant::now();
        run_virtual_recorded(
            &mut plain_index,
            &requests,
            &arrivals,
            &cfg,
            TelemetryLevel::Off,
            &mut recorder,
        );
        replay_times[1].push(start.elapsed().as_secs_f64() * 1e3);
    }
    let replay_ms = median(&mut replay_times[0]).max(1e-9);
    let flight_ms = median(&mut replay_times[1]);
    let flight_pct = (flight_ms / replay_ms - 1.0) * 100.0;
    overhead.push_row(vec![
        "replay (no recorder)".to_string(),
        fmt_ms(replay_ms),
        "—".to_string(),
    ]);
    overhead.push_row(vec![
        "replay + flight recorder".to_string(),
        fmt_ms(flight_ms),
        format!("{flight_pct:+.1}%"),
    ]);
    report.headline_metric("obs_flight_overhead_pct", flight_pct);
    report.tables.push(overhead);

    report.headline_metric("obs_bit_equal_checks", checks as f64);
    report.headline_metric("obs_loadgen_spans_full", snap_a.spans.len() as f64);
    report.headline_metric("obs_profiler_signatures", profiler_signatures as f64);
    report.headline_metric(
        "obs_flight_pinned_exemplars",
        recorder_a.pinned().len() as f64,
    );
    report.notes.push(format!(
        "results are bit-equal to the unobserved baseline at every telemetry level \
         ({checks} comparisons: direct + sharded plan runs, plus the virtual-time \
         replay statistics and snapshot determinism)"
    ));
    report.notes.push(
        "only the disabled (`off`) overhead is gated in CI; basic/full are reported \
         for trend tracking — they buy metrics and spans respectively"
            .into(),
    );
    report.notes.push(
        "every level's snapshot survived the JSONL parse-back round trip and the \
         Prometheus text sanity checks"
            .into(),
    );
    report.notes.push(
        "the continuous profiler and the SLO flight recorder are bit-invisible too: \
         profiled plan runs match the baseline, recorded replays match the plain \
         replay statistics, and two recorded runs pin identical breach exemplars"
            .into(),
    );
    report
}

#[cfg(test)]
mod tests {
    use super::*;

    /// The smoke gate: bit-equality always, and the *disabled* telemetry
    /// path within its overhead bound. Measured speedups/overheads of the
    /// enabled levels are intentionally not asserted (timing-dependent).
    #[test]
    fn disabled_telemetry_is_bit_equal_and_cheap() {
        let report = run(&ExperimentScale::smoke_test());
        let metric = |name: &str| -> f64 {
            report
                .headline
                .iter()
                .find(|(n, _)| n == name)
                .unwrap_or_else(|| panic!("missing headline metric {name}"))
                .1
        };
        assert!(metric("obs_bit_equal_checks") >= 14.0);
        assert!(
            metric("obs_overhead_pct_off") < 10.0,
            "RTNN_TELEMETRY=off must stay under the 10% smoke bound, got {:.2}%",
            metric("obs_overhead_pct_off")
        );
        assert!(metric("obs_loadgen_spans_full") > 0.0);
        // The new observability layers are covered but not timing-gated:
        // the profiler saw signatures and the deterministic 0 ms SLO pinned
        // exemplars (both counts, not wall times).
        assert!(metric("obs_profiler_signatures") >= 1.0);
        assert!(metric("obs_flight_pinned_exemplars") >= 1.0);
        assert_eq!(report.tables.len(), 2);
    }
}
