//! Figure 16 (Appendix C): the number of queries in a partition is inversely
//! correlated with the partition's AABB size — the empirical fact the
//! optimal-bundling theorem builds on.

use crate::report::{FigureReport, Table};
use crate::scale::ExperimentScale;
use crate::workloads::{Workload, DEFAULT_K};
use rtnn::partition::{partition_queries, KnnAabbRule};
use rtnn::{SearchMode, SearchParams};
use rtnn_data::DatasetName;
use rtnn_gpusim::Device;

/// Spearman-style rank correlation between two series.
pub fn rank_correlation(a: &[f64], b: &[f64]) -> f64 {
    assert_eq!(a.len(), b.len());
    let n = a.len();
    if n < 2 {
        return 0.0;
    }
    let rank = |v: &[f64]| -> Vec<f64> {
        let mut idx: Vec<usize> = (0..v.len()).collect();
        idx.sort_by(|&i, &j| v[i].partial_cmp(&v[j]).unwrap());
        let mut r = vec![0.0; v.len()];
        for (pos, &i) in idx.iter().enumerate() {
            r[i] = pos as f64;
        }
        r
    };
    let ra = rank(a);
    let rb = rank(b);
    let mean = (n as f64 - 1.0) / 2.0;
    let mut num = 0.0;
    let mut da = 0.0;
    let mut db = 0.0;
    for i in 0..n {
        num += (ra[i] - mean) * (rb[i] - mean);
        da += (ra[i] - mean).powi(2);
        db += (rb[i] - mean).powi(2);
    }
    if da == 0.0 || db == 0.0 {
        0.0
    } else {
        num / (da * db).sqrt()
    }
}

/// Run the Figure 16 experiment.
pub fn run(scale: &ExperimentScale) -> FigureReport {
    let mut report = FigureReport::new("Figure 16: queries per partition vs partition AABB size");
    let device = Device::rtx_2080();
    // The non-uniform N-body input produces the richest partition structure.
    let workload = Workload::for_dataset(DatasetName::NBody9M, scale);
    let params = SearchParams {
        radius: workload.radius,
        k: DEFAULT_K,
        mode: SearchMode::Knn,
    };
    let order: Vec<u32> = (0..workload.queries.len() as u32).collect();
    let set = partition_queries(
        &device,
        &workload.points,
        &workload.queries,
        &order,
        &params,
        KnnAabbRule::Guaranteed,
        1 << 21,
    );

    let mut table = Table::new(
        format!("Partitions of {} (KNN, K = {DEFAULT_K})", workload.name),
        &["AABB size", "#queries", "sphere test"],
    );
    let mut widths = Vec::new();
    let mut counts = Vec::new();
    for p in &set.partitions {
        table.push_row(vec![
            format!("{:.3}", p.aabb_width),
            p.len().to_string(),
            if p.sphere_test { "yes" } else { "no" }.to_string(),
        ]);
        widths.push(p.aabb_width as f64);
        counts.push(p.len() as f64);
    }
    report.tables.push(table);

    let corr = rank_correlation(&widths, &counts);
    report.notes.push(format!(
        "rank correlation between AABB size and query count: {corr:.2} (paper: strongly negative — most queries live in the small-AABB partitions)"
    ));
    report
        .notes
        .push(format!("{} partitions in total", set.partitions.len()));
    report.headline_metric("size_vs_count_rank_correlation", corr);
    report.headline_metric("num_partitions", set.partitions.len() as f64);
    report
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn rank_correlation_extremes() {
        assert!((rank_correlation(&[1.0, 2.0, 3.0], &[10.0, 20.0, 30.0]) - 1.0).abs() < 1e-9);
        assert!((rank_correlation(&[1.0, 2.0, 3.0], &[30.0, 20.0, 10.0]) + 1.0).abs() < 1e-9);
        assert_eq!(rank_correlation(&[1.0], &[2.0]), 0.0);
    }

    #[test]
    fn smoke_run_produces_partitions() {
        let report = run(&ExperimentScale::smoke_test());
        assert!(!report.tables[0].rows.is_empty());
    }
}
