//! Figure 14: sensitivity of the speedup to the search radius `r` and the
//! neighbor count `K`, on the Buddha dataset.

use crate::report::{FigureReport, Table};
use crate::scale::ExperimentScale;
use crate::workloads::{Workload, DEFAULT_K};
use rtnn::{EngineConfig, GpusimBackend, Index, QueryPlan, SearchMode, SearchParams};
use rtnn_baselines::fastrnn::FastRnn;
use rtnn_baselines::grid_knn::GridKnn;
use rtnn_baselines::octree::OctreeSearch;
use rtnn_baselines::uniform_grid::UniformGridSearch;
use rtnn_baselines::{Baseline, SearchRequest};
use rtnn_data::DatasetName;
use rtnn_gpusim::Device;

/// The paper sweeps r over 0.00124 … 1.24 (the Buddha fits in a unit cube)
/// and K over 1 … 128.
const RADII: [f32; 4] = [0.00124, 0.0124, 0.124, 0.4];
const KS: [usize; 5] = [1, 4, 16, 64, 128];

fn rtnn_time(device: &Device, w: &Workload, params: SearchParams) -> f64 {
    let backend = GpusimBackend::new(device);
    Index::build(
        &backend,
        &w.points[..],
        EngineConfig::default().with_knn_rule(rtnn::KnnAabbRule::EquiVolume),
    )
    .query(&w.queries, &QueryPlan::from_params(params))
    .map(|r| r.total_time_ms())
    .unwrap_or(f64::INFINITY)
}

fn baseline_cell(
    baseline: &dyn Baseline,
    device: &Device,
    w: &Workload,
    params: SearchParams,
    rtnn_ms: f64,
    scale: &ExperimentScale,
) -> String {
    if w.brute_force_work() > scale.dnf_work_limit {
        return "DNF".into();
    }
    let request = SearchRequest::new(params.radius, params.k);
    let run = match params.mode {
        SearchMode::Range => baseline.range_search(device, &w.points, &w.queries, request),
        SearchMode::Knn => baseline.knn_search(device, &w.points, &w.queries, request),
    };
    match run {
        Some(r) => format!("{:.1}x", r.total_ms() / rtnn_ms.max(1e-12)),
        None => "n/a".into(),
    }
}

/// Run the Figure 14 experiment.
pub fn run(scale: &ExperimentScale) -> FigureReport {
    let mut report = FigureReport::new("Figure 14: sensitivity of the speedup to r and K (Buddha)");
    let device = Device::rtx_2080();
    let w = Workload::for_dataset(DatasetName::Buddha4_6M, scale);
    let octree = OctreeSearch;
    let cunsearch = UniformGridSearch;
    let frnn = GridKnn;
    let fastrnn = FastRnn;

    // (a) sensitivity to r, range search, fixed K.
    // Density compensation: the paper's radii assume the full 4.6M-point
    // Buddha; multiply by the same factor the default workload radius uses.
    let radius_scale = w.radius / DatasetName::Buddha4_6M.default_radius();

    let mut by_r = Table::new(
        "Figure 14a: range-search speedup vs r (K fixed; r shown at paper scale)",
        &["r (paper)", "vs PCLOctree", "vs cuNSearch"],
    );
    for paper_r in RADII {
        let r = paper_r * radius_scale;
        let params = SearchParams::range(r, DEFAULT_K);
        let t = rtnn_time(&device, &w, params);
        by_r.push_row(vec![
            format!("{paper_r}"),
            baseline_cell(&octree, &device, &w, params, t, scale),
            baseline_cell(&cunsearch, &device, &w, params, t, scale),
        ]);
    }
    report.tables.push(by_r);

    // (b) sensitivity to K, KNN search, fixed r.
    let r = w.radius;
    let mut by_k = Table::new(
        "Figure 14b: KNN speedup vs K (r fixed)",
        &["K", "vs FRNN", "vs FastRNN", "vs PCLOctree (K=1 only)"],
    );
    for k in KS {
        let params = SearchParams::knn(r, k);
        let t = rtnn_time(&device, &w, params);
        let pcl = if k == 1 {
            baseline_cell(&octree, &device, &w, params, t, scale)
        } else {
            "n/a".to_string()
        };
        by_k.push_row(vec![
            k.to_string(),
            baseline_cell(&frnn, &device, &w, params, t, scale),
            baseline_cell(&fastrnn, &device, &w, params, t, scale),
            pcl,
        ]);
    }
    report.tables.push(by_k);

    report.notes.push(
        "paper shape: speedup first grows with r then shrinks once the search sphere covers most of the model; speedup grows with K until the bundling heuristic becomes overly aggressive at K=128"
            .into(),
    );
    report.headline_metric("radius_sweep_points", RADII.len() as f64);
    report.headline_metric("k_sweep_points", KS.len() as f64);
    report
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn smoke_run_produces_both_sweeps() {
        let report = run(&ExperimentScale::smoke_test());
        assert_eq!(report.tables.len(), 2);
        assert_eq!(report.tables[0].rows.len(), RADII.len());
        assert_eq!(report.tables[1].rows.len(), KS.len());
    }

    #[test]
    fn pcloctree_only_appears_for_k_equal_one() {
        let report = run(&ExperimentScale::smoke_test());
        for row in &report.tables[1].rows {
            if row[0] != "1" {
                assert_eq!(row[3], "n/a");
            }
        }
    }
}
