//! `fig_serve`: offered-load sweep of the `rtnn-serve` query service.
//!
//! This figure has no counterpart in the paper — it evaluates the serving
//! subsystem. A fixed population of small point-query requests (mixed
//! KNN/range parameters, the shape a neighbor-search service sees from
//! many concurrent clients) is offered to the service at increasing
//! arrival rates through the deterministic virtual-time harness
//! (`rtnn_serve::loadgen`), twice per rate:
//!
//! * **coalescing on** — the dispatcher fuses whatever arrives within the
//!   window into one `QueryPlan::Batch` per tick (identical-parameter
//!   slices merged), paying one data transfer, one shared scheduling pass
//!   and one partitioning per merged parameter set;
//! * **coalescing off** — the one-request-per-call baseline.
//!
//! Reported: achieved throughput and p50/p99 latency per offered load, the
//! coalescing speedup at saturation, and — separately — how the simulated
//! critical path of one saturated tick scales when the same scene is
//! served by a `ShardedIndex` with 1–8 Morton-range shards.
//!
//! All numbers are virtual/simulated and seeded: the sweep is reproducible
//! bit-for-bit on any machine.

use crate::report::{fmt_ms, fmt_speedup, FigureReport, Table};
use crate::scale::ExperimentScale;
use rtnn::{EngineConfig, GpusimBackend, Index, QueryPlan};
use rtnn_data::uniform::{self, UniformParams};
use rtnn_gpusim::Device;
use rtnn_math::Vec3;
use rtnn_serve::{execute_tick, poisson_arrivals, run_virtual, Request, ServeConfig, ShardedIndex};

/// Mixed request population: small query sets with one of four parameter
/// bundles, deterministically laid out. The radii sit at or below the
/// ~8-neighbor density anchor — the point-lookup shape of serving traffic,
/// and tight enough that the shard router can prune (a search sphere wider
/// than a shard fans out everywhere).
fn build_requests(points: &[Vec3], num_requests: usize, base_r: f32) -> Vec<Request> {
    let plans = [
        QueryPlan::knn(base_r * 0.5, 8),
        QueryPlan::range(base_r * 0.5, 32),
        QueryPlan::knn(base_r * 0.6, 4),
        QueryPlan::range(base_r * 0.35, 16),
    ];
    (0..num_requests)
        .map(|i| {
            let len = 4 + (i % 3) * 6; // 4 / 10 / 16 queries
            let queries: Vec<Vec3> = (0..len)
                .map(|j| points[(i * 131 + j * 17) % points.len()])
                .collect();
            Request::new(queries, plans[i % plans.len()].clone())
        })
        .collect()
}

/// Run the serving experiment.
pub fn run(scale: &ExperimentScale) -> FigureReport {
    let mut report = FigureReport::new(
        "Figure S (extension): request coalescing and spatial sharding under offered load",
    );
    let device = Device::rtx_2080();
    let backend = GpusimBackend::new(&device);

    let num_points = (1_500_000 / scale.dataset_divisor).max(8_000);
    let cloud = uniform::generate(&UniformParams {
        num_points,
        seed: 0x5345_5256, // "SERV"
        ..Default::default()
    });
    let points = cloud.points;
    let side = rtnn_math::Aabb::from_points(&points).longest_extent();
    let base_r = side * (8.0 / num_points as f32).cbrt();
    let num_requests = (scale.query_cap / 5).clamp(60, 300);
    let requests = build_requests(&points, num_requests, base_r);

    // Serving configurations under comparison.
    let coalesced_cfg = ServeConfig::default()
        .with_window_us(500)
        .with_max_batch(32);
    let serial_cfg = ServeConfig::default().without_coalescing();

    // Capacity anchor: the one-request-per-call rate on a warm index when
    // requests are always waiting (everything arrives at t=0⁺).
    let mut index = Index::build(&backend, &points[..], EngineConfig::default());
    let burst: Vec<f64> = (0..requests.len()).map(|i| i as f64 * 1e-6).collect();
    let serial_burst = run_virtual(&mut index, &requests, &burst, &serial_cfg);
    let capacity_qps = serial_burst.achieved_qps;

    // Offered-load sweep (fractions of the serial capacity).
    let mut sweep = Table::new(
        format!(
            "{} points, {} requests ({} queries), offered load as a fraction of the \
             one-request-per-call capacity ({:.0} req/s simulated)",
            points.len(),
            requests.len(),
            requests.iter().map(|r| r.queries.len()).sum::<usize>(),
            capacity_qps,
        ),
        &[
            "load",
            "offered req/s",
            "coalesced req/s",
            "batch avg",
            "p50 ms",
            "p99 ms",
            "serial req/s",
            "serial p99 ms",
        ],
    );
    let mut peak_qps: f64 = 0.0;
    let mut p99_at_80 = 0.0;
    let mut speedup_at_saturation = 0.0;
    for (li, load) in [0.25, 0.5, 0.8, 1.5, 3.0].iter().enumerate() {
        let offered = capacity_qps * load;
        let arrivals = poisson_arrivals(requests.len(), offered, 0xA0 + li as u64);
        let mut on_index = Index::build(&backend, &points[..], EngineConfig::default());
        let on = run_virtual(&mut on_index, &requests, &arrivals, &coalesced_cfg);
        let mut off_index = Index::build(&backend, &points[..], EngineConfig::default());
        let off = run_virtual(&mut off_index, &requests, &arrivals, &serial_cfg);
        peak_qps = peak_qps.max(on.achieved_qps);
        if (*load - 0.8).abs() < 1e-9 {
            p99_at_80 = on.latency_ms(0.99);
        }
        if (*load - 3.0).abs() < 1e-9 {
            speedup_at_saturation = on.achieved_qps / off.achieved_qps.max(1e-12);
        }
        sweep.push_row(vec![
            format!("{:.0}%", load * 100.0),
            format!("{offered:.0}"),
            format!("{:.0}", on.achieved_qps),
            format!("{:.1}", on.stats.mean_tick_requests()),
            fmt_ms(on.latency_ms(0.5)),
            fmt_ms(on.latency_ms(0.99)),
            format!("{:.0}", off.achieved_qps),
            fmt_ms(off.latency_ms(0.99)),
        ]);
    }
    report.tables.push(sweep);

    // Shard scaling: one saturated tick (every request fused) served by a
    // ShardedIndex; the simulated critical path is the slowest shard.
    let tick: Vec<&Request> = requests.iter().collect();
    let mut shard_table = Table::new(
        "simulated critical path of one fully fused tick vs shard count \
         (Morton-range shards, per-shard work in parallel)",
        &[
            "shards",
            "critical path",
            "total work",
            "active",
            "speedup",
            "efficiency",
        ],
    );
    let mut crit_1 = 0.0;
    let mut scaling_efficiency = 0.0;
    let mut shard_speedup = 0.0;
    let mut shard_skew_8 = 0.0;
    for shards in [1usize, 2, 4, 8] {
        let mut sharded = ShardedIndex::build(&backend, &points, EngineConfig::default(), shards);
        // Warm the width caches so the tick measures steady-state serving.
        let (_, _) = execute_tick(&mut sharded, &tick);
        let (_, outcome) = execute_tick(&mut sharded, &tick);
        let timing = sharded.last_timing().clone();
        let crit = timing.critical_path_ms();
        if shards == 1 {
            crit_1 = crit;
        }
        let speedup = crit_1 / crit.max(1e-12);
        let efficiency = speedup / shards as f64;
        if shards == 8 {
            scaling_efficiency = efficiency;
            shard_speedup = speedup;
            shard_skew_8 = timing.skew();
        }
        shard_table.push_row(vec![
            shards.to_string(),
            fmt_ms(crit),
            fmt_ms(timing.total_ms()),
            format!("{}/{}", timing.active_shards(), sharded.num_shards()),
            fmt_speedup(speedup),
            format!("{:.0}%", efficiency * 100.0),
        ]);
        let _ = outcome;
    }
    report.tables.push(shard_table);

    report.headline_metric("serve_peak_qps", peak_qps);
    report.headline_metric("serve_p99_ms_at_80pct_load", p99_at_80);
    report.headline_metric("serve_coalescing_speedup", speedup_at_saturation);
    report.headline_metric("serve_shard_speedup_8", shard_speedup);
    report.headline_metric("serve_shard_scaling_efficiency", scaling_efficiency);
    report.headline_metric("serve_shard_skew", shard_skew_8);
    report.notes.push(format!(
        "at saturation (3x offered load) coalescing sustains {} the throughput of \
         one-request-per-call serving — fused ticks pay one data transfer, one \
         shared scheduling pass and one partitioning per merged parameter set",
        fmt_speedup(speedup_at_saturation),
    ));
    report.notes.push(format!(
        "spatial sharding cuts the simulated critical path of a saturated tick \
         {} with 8 Morton-range shards ({:.0}% parallel efficiency); the router \
         only fans each query to shards overlapping its search sphere",
        fmt_speedup(shard_speedup),
        scaling_efficiency * 100.0,
    ));
    report
        .notes
        .push("all numbers are virtual-time/simulated and seeded: reruns are bit-identical".into());
    report
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn coalescing_beats_serial_serving_at_saturation() {
        let report = run(&ExperimentScale::smoke_test());
        let metric = |name: &str| -> f64 {
            report
                .headline
                .iter()
                .find(|(n, _)| n == name)
                .unwrap_or_else(|| panic!("missing headline metric {name}"))
                .1
        };
        // The acceptance criterion of the serving subsystem: coalescing
        // beats one-request-per-call throughput by at least 1.3x when the
        // service is saturated.
        assert!(
            metric("serve_coalescing_speedup") >= 1.3,
            "coalescing speedup {} below the 1.3x bar",
            metric("serve_coalescing_speedup")
        );
        assert!(metric("serve_peak_qps") > 0.0);
        assert!(metric("serve_p99_ms_at_80pct_load") > 0.0);
        // Sharding must help, not hurt, the saturated critical path.
        assert!(
            metric("serve_shard_speedup_8") > 1.0,
            "8 shards should beat 1, got {}",
            metric("serve_shard_speedup_8")
        );
        // Skew is critical-path over ideal parallel time: >= 1 whenever the
        // tick fanned out at all (the `serve.shard.skew` gauge's source).
        assert!(
            metric("serve_shard_skew") >= 1.0,
            "skew {} below 1",
            metric("serve_shard_skew")
        );
        assert_eq!(report.tables.len(), 2);
        assert_eq!(report.tables[0].rows.len(), 5);
        assert_eq!(report.tables[1].rows.len(), 4);
    }
}
