//! Figures 11 and 12: end-to-end speedups over the baselines and the
//! time-breakdown of RTNN itself.
//!
//! For every dataset of Section 6.1 and both GPU presets, RTNN (all
//! optimisations on) is compared against:
//!
//! * range search — PCLOctree and cuNSearch;
//! * KNN search — FRNN and FastRNN.
//!
//! Baselines that would exceed the configured work budget are reported as
//! `DNF`, and inputs whose working set exceeds the device memory as `OOM`,
//! matching the annotations in the paper's Figure 11.

use crate::report::{fmt_ms, fmt_speedup, geomean, FigureReport, Table};
use crate::scale::ExperimentScale;
use crate::workloads::{evaluation_datasets, Workload, DEFAULT_K};
use rtnn::{
    EngineConfig, GpusimBackend, Index, QueryPlan, SearchMode, SearchParams, SearchResults,
};
use rtnn_baselines::fastrnn::FastRnn;
use rtnn_baselines::grid_knn::GridKnn;
use rtnn_baselines::octree::OctreeSearch;
use rtnn_baselines::uniform_grid::UniformGridSearch;
use rtnn_baselines::{Baseline, SearchRequest};
use rtnn_gpusim::Device;

/// Outcome of one baseline on one input.
enum Outcome {
    Time(f64),
    Dnf,
    Unsupported,
}

impl Outcome {
    fn cell(&self, rtnn_ms: f64) -> String {
        match self {
            Outcome::Time(ms) => fmt_speedup(ms / rtnn_ms.max(1e-12)),
            Outcome::Dnf => "DNF".to_string(),
            Outcome::Unsupported => "n/a".to_string(),
        }
    }

    fn speedup(&self, rtnn_ms: f64) -> Option<f64> {
        match self {
            Outcome::Time(ms) => Some(ms / rtnn_ms.max(1e-12)),
            _ => None,
        }
    }
}

fn run_rtnn(device: &Device, workload: &Workload, mode: SearchMode) -> Option<SearchResults> {
    let params = SearchParams {
        radius: workload.radius,
        k: DEFAULT_K,
        mode,
    };
    // The paper's configuration: equi-volume KNN AABB heuristic (Section 5.1).
    let backend = GpusimBackend::new(device);
    Index::build(
        &backend,
        &workload.points[..],
        EngineConfig::default().with_knn_rule(rtnn::KnnAabbRule::EquiVolume),
    )
    .query(&workload.queries, &QueryPlan::from_params(params))
    .ok()
}

fn run_baseline(
    baseline: &dyn Baseline,
    device: &Device,
    workload: &Workload,
    mode: SearchMode,
    scale: &ExperimentScale,
) -> Outcome {
    // DNF gate: grid/octree baselines scale with candidates, but the
    // brute-force-like work estimate is a reasonable guard band for all of
    // them at the default scales.
    if workload.brute_force_work() > scale.dnf_work_limit {
        return Outcome::Dnf;
    }
    let request = SearchRequest::new(workload.radius, DEFAULT_K);
    let run = match mode {
        SearchMode::Range => {
            baseline.range_search(device, &workload.points, &workload.queries, request)
        }
        SearchMode::Knn => {
            baseline.knn_search(device, &workload.points, &workload.queries, request)
        }
    };
    match run {
        Some(r) => Outcome::Time(r.total_ms()),
        None => Outcome::Unsupported,
    }
}

/// Run the Figure 11 + Figure 12 experiment.
pub fn run(scale: &ExperimentScale) -> FigureReport {
    run_on_devices(scale, &[Device::rtx_2080(), Device::rtx_2080_ti()])
}

/// Run on an explicit device list (the smoke tests use a single device).
pub fn run_on_devices(scale: &ExperimentScale, devices: &[Device]) -> FigureReport {
    let mut report =
        FigureReport::new("Figures 11 and 12: speedups over baselines and time breakdown");
    let octree = OctreeSearch;
    let cunsearch = UniformGridSearch;
    let frnn = GridKnn;
    let fastrnn = FastRnn;

    for device in devices {
        let mut fig11 = Table::new(
            format!("Figure 11: RTNN speedup on {}", device.config().name),
            &[
                "dataset",
                "PCLOctree (range)",
                "cuNSearch (range)",
                "FRNN (KNN)",
                "FastRNN (KNN)",
            ],
        );
        let mut fig12 = Table::new(
            format!(
                "Figure 12: RTNN time breakdown on {} (KNN | range, % of total)",
                device.config().name
            ),
            &[
                "dataset",
                "Data",
                "Opt",
                "BVH",
                "FS",
                "Search",
                "total (KNN)",
                "total (range)",
            ],
        );
        let mut octree_speedups = Vec::new();
        let mut cunsearch_speedups = Vec::new();
        let mut frnn_speedups = Vec::new();
        let mut fastrnn_speedups = Vec::new();

        for name in evaluation_datasets() {
            let workload = Workload::for_dataset(name, scale);
            let Some(rtnn_range) = run_rtnn(device, &workload, SearchMode::Range) else {
                fig11.push_row(vec![
                    workload.name.clone(),
                    "OOM".into(),
                    "OOM".into(),
                    "OOM".into(),
                    "OOM".into(),
                ]);
                continue;
            };
            let Some(rtnn_knn) = run_rtnn(device, &workload, SearchMode::Knn) else {
                continue;
            };
            let range_ms = rtnn_range.total_time_ms();
            let knn_ms = rtnn_knn.total_time_ms();

            let oct = run_baseline(&octree, device, &workload, SearchMode::Range, scale);
            let cun = run_baseline(&cunsearch, device, &workload, SearchMode::Range, scale);
            let frn = run_baseline(&frnn, device, &workload, SearchMode::Knn, scale);
            let fas = run_baseline(&fastrnn, device, &workload, SearchMode::Knn, scale);
            if let Some(s) = oct.speedup(range_ms) {
                octree_speedups.push(s);
            }
            if let Some(s) = cun.speedup(range_ms) {
                cunsearch_speedups.push(s);
            }
            if let Some(s) = frn.speedup(knn_ms) {
                frnn_speedups.push(s);
            }
            if let Some(s) = fas.speedup(knn_ms) {
                fastrnn_speedups.push(s);
            }
            fig11.push_row(vec![
                workload.name.clone(),
                oct.cell(range_ms),
                cun.cell(range_ms),
                frn.cell(knn_ms),
                fas.cell(knn_ms),
            ]);

            // Figure 12: breakdown percentages, "KNN | range" in each cell.
            let knn_frac = rtnn_knn.breakdown.fractions();
            let range_frac = rtnn_range.breakdown.fractions();
            let cell = |i: usize| {
                format!(
                    "{:.0}% | {:.0}%",
                    knn_frac[i].1 * 100.0,
                    range_frac[i].1 * 100.0
                )
            };
            fig12.push_row(vec![
                workload.name.clone(),
                cell(0),
                cell(1),
                cell(2),
                cell(3),
                cell(4),
                fmt_ms(knn_ms),
                fmt_ms(range_ms),
            ]);
        }

        report.notes.push(format!(
            "{}: geomean speedups — PCLOctree {:.1}x, cuNSearch {:.1}x (range); FRNN {:.1}x, FastRNN {:.1}x (KNN). Paper (RTX 2080): 2.2x, 44.0x, 3.5x, 65.0x.",
            device.config().name,
            geomean(&octree_speedups),
            geomean(&cunsearch_speedups),
            geomean(&frnn_speedups),
            geomean(&fastrnn_speedups),
        ));
        let dev = device.config().name.replace(' ', "_").to_lowercase();
        report.headline_metric(
            format!("{dev}_geomean_speedup_octree"),
            geomean(&octree_speedups),
        );
        report.headline_metric(
            format!("{dev}_geomean_speedup_cunsearch"),
            geomean(&cunsearch_speedups),
        );
        report.headline_metric(
            format!("{dev}_geomean_speedup_frnn"),
            geomean(&frnn_speedups),
        );
        report.headline_metric(
            format!("{dev}_geomean_speedup_fastrnn"),
            geomean(&fastrnn_speedups),
        );
        report.tables.push(fig11);
        report.tables.push(fig12);
    }
    report.notes.push(
        "paper shape: speedups grow with input size, and KNN speedups exceed range speedups".into(),
    );
    report
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn smoke_run_covers_all_datasets_on_one_device() {
        let report = run_on_devices(&ExperimentScale::smoke_test(), &[Device::rtx_2080()]);
        assert_eq!(report.tables.len(), 2);
        assert_eq!(report.tables[0].rows.len(), 9);
        assert_eq!(report.tables[1].rows.len(), 9);
        assert!(!report.notes.is_empty());
    }

    #[test]
    fn speedup_cells_are_well_formed() {
        // At smoke-test scale (≈1000 points per dataset) the fixed overheads
        // of RTNN dominate, so relative performance is asserted only at
        // realistic scale (the fig11 binary / EXPERIMENTS.md). What must hold
        // at any scale: every cell is a parsable speedup or one of the
        // paper's annotations, and cuNSearch/FRNN columns are never "n/a"
        // while the KNN-only/range-only restrictions are respected.
        let report = run_on_devices(&ExperimentScale::smoke_test(), &[Device::rtx_2080()]);
        for row in &report.tables[0].rows {
            for cell in &row[1..] {
                assert!(
                    cell.ends_with('x') || cell == "DNF" || cell == "n/a" || cell == "OOM",
                    "unexpected cell '{cell}' on {}",
                    row[0]
                );
            }
            assert_ne!(
                row[2], "n/a",
                "cuNSearch supports range search on {}",
                row[0]
            );
            assert_ne!(row[3], "n/a", "FRNN supports KNN on {}", row[0]);
        }
    }
}
