//! Extension figure: per-stage time shares of the staged execution
//! pipeline, and the cost of toggling exactly one stage.
//!
//! The refactored core executes every plan as `Partition` → `Schedule` →
//! `Launch` → `Gather` with a per-stage meter ([`rtnn::PipelineTrace`]).
//! This experiment reports, per dataset and search mode:
//!
//! * the simulated time share of each stage (the staged sibling of the
//!   Figure 12 component breakdown), and
//! * the end-to-end cost of disabling exactly one stage through
//!   [`rtnn::StageOverrides`] — the first-class single-stage ablation the
//!   `OptLevel` ladder could only approximate cumulatively.

use crate::report::{fmt_ms, headline_slug, FigureReport, Table};
use crate::scale::ExperimentScale;
use crate::workloads::{Workload, DEFAULT_K};
use rtnn::{
    EngineConfig, GpusimBackend, Index, QueryPlan, SearchMode, SearchParams, SearchResults,
    StageKind, StageOverrides,
};
use rtnn_data::DatasetName;
use rtnn_gpusim::Device;

/// One cold-index run (structure builds included, matching Figure 12's
/// accounting) with the given per-call stage overrides.
fn run_once(
    device: &Device,
    workload: &Workload,
    mode: SearchMode,
    overrides: StageOverrides<'_>,
) -> SearchResults {
    let params = SearchParams {
        radius: workload.radius,
        k: DEFAULT_K,
        mode,
    };
    let backend = GpusimBackend::new(device);
    let mut index = Index::build(&backend, &workload.points[..], EngineConfig::default());
    index
        .query_with(
            &workload.queries,
            &QueryPlan::from_params(params),
            overrides,
        )
        .expect("stage workload fits the device")
}

/// Run the per-stage experiment.
pub fn run(scale: &ExperimentScale) -> FigureReport {
    let mut report =
        FigureReport::new("Figure P (extension): per-stage time shares of the execution pipeline");
    let device = Device::rtx_2080();

    for dataset in [DatasetName::Kitti12M, DatasetName::NBody9M] {
        let workload = Workload::for_dataset(dataset, scale);
        let slug = headline_slug(&workload.name);

        let mut shares = Table::new(
            format!(
                "Per-stage simulated time, {} on {}",
                workload.name,
                device.config().name
            ),
            &[
                "stage",
                "KNN time",
                "KNN share",
                "range time",
                "range share",
            ],
        );
        let knn = run_once(&device, &workload, SearchMode::Knn, StageOverrides::none());
        let range = run_once(
            &device,
            &workload,
            SearchMode::Range,
            StageOverrides::none(),
        );
        let knn_shares = knn.trace.device_fractions();
        let range_shares = range.trace.device_fractions();
        for (slot, kind) in StageKind::ALL.into_iter().enumerate() {
            let k_share = knn_shares[slot].1;
            let r_share = range_shares[slot].1;
            shares.push_row(vec![
                kind.label().to_string(),
                fmt_ms(knn.trace.stage(kind).device_ms),
                format!("{:.1}%", k_share * 100.0),
                fmt_ms(range.trace.stage(kind).device_ms),
                format!("{:.1}%", r_share * 100.0),
            ]);
            report.headline_metric(
                format!("{slug}_knn_share_{}", kind.label().to_lowercase()),
                k_share,
            );
            report.headline_metric(
                format!("{slug}_range_share_{}", kind.label().to_lowercase()),
                r_share,
            );
        }
        report.tables.push(shares);

        // Toggle exactly one stage per call on an otherwise fully-optimised
        // engine — what StageOverrides adds over the cumulative OptLevels.
        let mut toggles = Table::new(
            format!("Single-stage toggles, {}", workload.name),
            &["configuration", "KNN time", "vs full"],
        );
        let variants: [(&str, StageOverrides<'static>); 3] = [
            ("full pipeline", StageOverrides::none()),
            ("reordering off", StageOverrides::without_reordering()),
            ("partitioning off", StageOverrides::without_partitioning()),
        ];
        let mut times = Vec::new();
        for (label, overrides) in variants {
            let results = run_once(&device, &workload, SearchMode::Knn, overrides);
            times.push((label, results.total_time_ms()));
        }
        let full = times[0].1.max(1e-12);
        for (label, t) in &times {
            toggles.push_row(vec![
                label.to_string(),
                fmt_ms(*t),
                format!("{:.2}x", t / full),
            ]);
        }
        report.headline_metric(format!("{slug}_knn_reorder_off_cost"), times[1].1 / full);
        report.headline_metric(format!("{slug}_knn_partition_off_cost"), times[2].1 / full);
        report.tables.push(toggles);

        // The metering invariant: every simulated millisecond outside the
        // Data slot is accounted to exactly one stage.
        let accounted = knn.trace.device_total_ms();
        let expected = knn.breakdown.total_ms() - knn.breakdown.data_ms;
        report.notes.push(format!(
            "{}: stage meters account {:.4} ms of {:.4} ms non-transfer simulated time (no double billing)",
            workload.name, accounted, expected
        ));

        // Regression watch (tracked by rtnn-trend under a stable name):
        // the full pipeline *loses* to NoOpt on the non-uniform NBody
        // range workload — the gap the adaptive tuner (fig_auto) exists
        // to recover. Keeping the ratio as a named headline here, in the
        // CI smoke figure, means a drift in either direction shows up in
        // every trend diff.
        if dataset == DatasetName::NBody9M {
            let noopt = run_once(
                &device,
                &workload,
                SearchMode::Range,
                StageOverrides::for_level(rtnn::OptLevel::NoOpt),
            );
            let full = run_once(
                &device,
                &workload,
                SearchMode::Range,
                StageOverrides::for_level(rtnn::OptLevel::Full),
            );
            report.headline_metric(
                "regression_watch_nbody_9m_range_full_speedup_vs_noopt",
                noopt.total_time_ms() / full.total_time_ms().max(1e-12),
            );
        }
    }

    report.notes.push(
        "Launch dominates end to end; Schedule's FS pass and the Partition megacell kernel stay small — the same shape as the paper's Figure 12 `Opt`/`FS` slivers"
            .into(),
    );
    report
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn smoke_run_reports_all_stages_and_toggles() {
        let report = run(&ExperimentScale::smoke_test());
        assert_eq!(report.tables.len(), 4, "2 datasets x (shares + toggles)");
        for t in report.tables.iter().step_by(2) {
            assert_eq!(t.rows.len(), 4, "one row per stage in {}", t.title);
        }
        for t in report.tables.iter().skip(1).step_by(2) {
            assert_eq!(t.rows.len(), 3, "three toggle variants in {}", t.title);
        }
        // Headlines cover every stage share for both modes plus the toggle
        // costs, for both datasets — plus the NBody range regression watch.
        assert_eq!(report.headline.len(), 2 * (4 + 4 + 2) + 1);
        assert!(report.headline.iter().any(|(n, v)| n
            == "regression_watch_nbody_9m_range_full_speedup_vs_noopt"
            && *v > 0.0));
    }

    #[test]
    fn stage_shares_sum_to_one() {
        let report = run(&ExperimentScale::smoke_test());
        for mode in ["knn", "range"] {
            let sum: f64 = report
                .headline
                .iter()
                .filter(|(name, _)| name.contains(&format!("_{mode}_share_")))
                .map(|(_, v)| v)
                .sum();
            // Two datasets, each summing to ~1.
            assert!(
                (sum - 2.0).abs() < 1e-6,
                "{mode} stage shares must sum to 1 per dataset, got total {sum}"
            );
        }
    }
}
