//! Section 3.1 micro-measurement: the step-2 (IS shader) work is an order of
//! magnitude more expensive than the step-1 (ray–AABB traversal) work, which
//! is why RTNN casts degenerate short rays instead of long ones.

use crate::report::{FigureReport, Table};
use crate::scale::ExperimentScale;
use crate::workloads::characterization_workload;
use rtnn::shaders::{QueryIndexing, RangeProgram};
use rtnn_bvh::BuildParams;
use rtnn_gpusim::{Device, IsShaderKind};
use rtnn_math::Vec3;
use rtnn_optix::{Gas, Pipeline};

/// Run the micro-benchmark.
pub fn run(scale: &ExperimentScale) -> FigureReport {
    let mut report = FigureReport::new(
        "Section 3.1 micro-benchmark: step 1 (traversal) vs step 2 (IS shader) cost",
    );
    let device = Device::rtx_2080();
    let workload = characterization_workload(scale);
    let queries: Vec<Vec3> = workload
        .queries
        .iter()
        .take(scale.query_cap.min(10_000))
        .copied()
        .collect();
    let gas = Gas::build_from_points(
        &device,
        &workload.points,
        workload.radius,
        BuildParams::default(),
    )
    .expect("micro workload fits the device");
    let program = RangeProgram {
        points: &workload.points,
        queries: &queries,
        indexing: QueryIndexing::Identity,
        radius: workload.radius,
        k: usize::MAX,
        sphere_test: true,
    };
    let launch =
        Pipeline::new(&device).launch(&gas, queries.len(), &program, IsShaderKind::RangeSphereTest);
    let m = &launch.metrics;
    let cost = device.config().cost;

    let mut table = Table::new(
        "Per-invocation cost-model constants and measured launch totals",
        &[
            "quantity",
            "count in launch",
            "cycles per invocation",
            "total cycles charged",
        ],
    );
    table.push_row(vec![
        "step 1: BVH node traversal (RT cores)".into(),
        m.node_visits.to_string(),
        format!("{:.1}", cost.node_test_cycles),
        format!("{:.0}", m.kernel.rt_core_cycles),
    ]);
    table.push_row(vec![
        "step 2: IS shader call, range + sphere test (SMs)".into(),
        m.is_calls.to_string(),
        format!("{:.1}", cost.is_range_cycles),
        format!("{:.0}", m.kernel.sm_cycles),
    ]);
    table.push_row(vec![
        "step 2: IS shader call, KNN priority queue (SMs)".into(),
        "-".into(),
        format!("{:.1}", cost.is_knn_cycles),
        "-".into(),
    ]);
    report.tables.push(table);
    report.notes.push(format!(
        "per-invocation IS : node-test cost ratio = {:.0}:1 (paper: step 2 is an order of magnitude more expensive than step 1)",
        cost.is_range_cycles / cost.node_test_cycles
    ));
    report.notes.push(format!(
        "warp-level execution hides part of that gap: this launch charged {:.0} SM cycles vs {:.0} RT-core cycles",
        m.kernel.sm_cycles, m.kernel.rt_core_cycles
    ));
    report.headline_metric(
        "is_to_node_test_cost_ratio",
        cost.is_range_cycles / cost.node_test_cycles,
    );
    report.headline_metric(
        "sm_to_rt_cycles_ratio",
        m.kernel.sm_cycles / m.kernel.rt_core_cycles.max(1e-12),
    );
    report
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn is_calls_are_at_least_an_order_of_magnitude_costlier() {
        let report = run(&ExperimentScale::smoke_test());
        let note = &report.notes[0];
        let ratio: f64 = note
            .split(" = ")
            .nth(1)
            .unwrap()
            .split(':')
            .next()
            .unwrap()
            .parse()
            .unwrap();
        assert!(ratio >= 10.0, "ratio {ratio} too small: {note}");
        assert_eq!(report.tables[0].rows.len(), 3);
    }
}
