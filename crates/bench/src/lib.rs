//! # rtnn-bench
//!
//! The experiment harness: one module (and one binary) per figure of the
//! paper's evaluation, plus shared infrastructure for workload construction,
//! table formatting and result persistence.
//!
//! Every experiment reports *simulated* GPU milliseconds from the
//! `rtnn-gpusim` device model, so the numbers are deterministic and
//! comparable across machines; the Criterion benches in `benches/` measure
//! host wall-time of the main code paths on top of that.
//!
//! | Binary | Paper figure |
//! |---|---|
//! | `fig05_ray_coherence` | Fig. 5 — ordered vs random query order |
//! | `fig06_cache_occupancy` | Fig. 6 — cache hit rates and SM occupancy |
//! | `fig07_aabb_width_time` | Fig. 7 — search time vs AABB width |
//! | `fig08_is_calls` | Fig. 8 — IS calls vs AABB width |
//! | `fig11_speedups` | Fig. 11 — speedups over the four baselines |
//! | `fig12_breakdown` | Fig. 12 — time breakdown per dataset |
//! | `fig13_ablation` | Fig. 13 — NoOpt / Sched / +Partition / +Bundle / Oracle |
//! | `fig14_sensitivity` | Fig. 14 — sensitivity to `r` and `K` |
//! | `fig15_bvh_build` | Fig. 15 — BVH build time vs #AABBs |
//! | `fig16_partition_dist` | Fig. 16 — queries per partition vs AABB size |
//! | `micro_step_costs` | §3.1 — step 1 vs step 2 cost |
//! | `fig_dynamic` | extension — refit vs rebuild vs policy on streaming scenes |
//! | `fig_mixed` | extension — heterogeneous plans on one `Index` vs per-plan engines |
//! | `fig_serve` | extension — request coalescing + spatial sharding under offered load |
//! | `fig_stages` | extension — per-stage pipeline time shares + single-stage toggles |
//! | `fig_analytics` | extension — DBSCAN throughput, streaming relabel, reverse-k-NN pruning |
//! | `fig_build` | extension — parallel LBVH build, batched refit, shard-concurrent cold start |
//! | `fig_obs` | extension — telemetry bit-equality + profiler/flight-recorder overhead per level |
//! | `fig_auto` | extension — adaptive stage tuning vs the static `OptLevel` ladder (regret ≤ 5%, bit-equal) |
//! | `reproduce_all` | everything above, written to `results/` |
//! | `rtnn-trend` | not a figure — diffs `results/` headlines against the baselines in `results/baselines/` and exits nonzero on perf regressions (see `src/bin/trend.rs`) |
//!
//! Scale is controlled by the `RTNN_SCALE` environment variable: the point
//! counts of the paper's datasets are divided by this factor (default 200,
//! i.e. KITTI-25M becomes 125 000 points). `RTNN_QUERY_CAP` optionally caps
//! the number of queries per experiment.

pub mod experiments;
pub mod report;
pub mod scale;
pub mod workloads;

pub use report::{geomean, FigureReport, Table};
pub use scale::ExperimentScale;
