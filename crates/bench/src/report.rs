//! Table formatting and result persistence for the experiment binaries.

use serde::Serialize;
use std::path::{Path, PathBuf};

/// A simple column-aligned text table.
#[derive(Debug, Clone, Serialize)]
pub struct Table {
    /// Table title.
    pub title: String,
    /// Column headers.
    pub headers: Vec<String>,
    /// Rows (each the same length as `headers`).
    pub rows: Vec<Vec<String>>,
}

impl Table {
    /// Create an empty table.
    pub fn new(title: impl Into<String>, headers: &[&str]) -> Self {
        Table {
            title: title.into(),
            headers: headers.iter().map(|s| s.to_string()).collect(),
            rows: Vec::new(),
        }
    }

    /// Append a row; panics if the arity does not match the headers.
    pub fn push_row(&mut self, row: Vec<String>) {
        assert_eq!(
            row.len(),
            self.headers.len(),
            "row arity mismatch in table '{}'",
            self.title
        );
        self.rows.push(row);
    }

    /// Render as a column-aligned string.
    pub fn render(&self) -> String {
        let mut widths: Vec<usize> = self.headers.iter().map(|h| h.len()).collect();
        for row in &self.rows {
            for (i, cell) in row.iter().enumerate() {
                widths[i] = widths[i].max(cell.len());
            }
        }
        let mut out = String::new();
        out.push_str(&format!("## {}\n", self.title));
        let fmt_row = |cells: &[String]| -> String {
            cells
                .iter()
                .enumerate()
                .map(|(i, c)| format!("{:width$}", c, width = widths[i]))
                .collect::<Vec<_>>()
                .join("  ")
        };
        out.push_str(&fmt_row(&self.headers));
        out.push('\n');
        out.push_str(&"-".repeat(widths.iter().sum::<usize>() + 2 * (widths.len() - 1)));
        out.push('\n');
        for row in &self.rows {
            out.push_str(&fmt_row(row));
            out.push('\n');
        }
        out
    }

    /// Render as Markdown (used by `reproduce_all` to build EXPERIMENTS.md).
    pub fn render_markdown(&self) -> String {
        let mut out = String::new();
        out.push_str(&format!("### {}\n\n", self.title));
        out.push_str(&format!("| {} |\n", self.headers.join(" | ")));
        out.push_str(&format!("|{}\n", "---|".repeat(self.headers.len())));
        for row in &self.rows {
            out.push_str(&format!("| {} |\n", row.join(" | ")));
        }
        out
    }
}

/// The output of one experiment: a set of tables plus free-form notes and
/// machine-readable headline metrics.
#[derive(Debug, Clone, Serialize)]
pub struct FigureReport {
    /// Which figure this reproduces ("Figure 5", ...).
    pub figure: String,
    /// Result tables.
    pub tables: Vec<Table>,
    /// Observations worth recording (who wins, rough factors, caveats).
    pub notes: Vec<String>,
    /// Headline metrics, `(name, value)` pairs: the handful of numbers that
    /// summarise the figure (a geomean speedup, an R², an amortized cost).
    /// `reproduce_all` collects these into `results/summary.json` so the
    /// perf trajectory can be tracked across PRs.
    pub headline: Vec<(String, f64)>,
}

impl FigureReport {
    /// Create an empty report.
    pub fn new(figure: impl Into<String>) -> Self {
        FigureReport {
            figure: figure.into(),
            tables: Vec::new(),
            notes: Vec::new(),
            headline: Vec::new(),
        }
    }

    /// Record one headline metric (non-finite values are dropped so the
    /// summary JSON stays valid).
    pub fn headline_metric(&mut self, name: impl Into<String>, value: f64) {
        if value.is_finite() {
            self.headline.push((name.into(), value));
        }
    }

    /// Render for terminal output.
    pub fn render(&self) -> String {
        let mut out = format!("==== {} ====\n\n", self.figure);
        for t in &self.tables {
            out.push_str(&t.render());
            out.push('\n');
        }
        for n in &self.notes {
            out.push_str(&format!("note: {n}\n"));
        }
        out
    }

    /// Render for EXPERIMENTS.md.
    pub fn render_markdown(&self) -> String {
        let mut out = format!("## {}\n\n", self.figure);
        for t in &self.tables {
            out.push_str(&t.render_markdown());
            out.push('\n');
        }
        if !self.notes.is_empty() {
            out.push_str("Notes:\n");
            for n in &self.notes {
                out.push_str(&format!("- {n}\n"));
            }
            out.push('\n');
        }
        out
    }

    /// Persist the report (markdown + JSON) under `dir`.
    pub fn save(&self, dir: impl AsRef<Path>) -> std::io::Result<PathBuf> {
        let dir = dir.as_ref();
        std::fs::create_dir_all(dir)?;
        let slug = headline_slug(&self.figure);
        let md_path = dir.join(format!("{slug}.md"));
        std::fs::write(&md_path, self.render_markdown())?;
        let json_path = dir.join(format!("{slug}.json"));
        std::fs::write(json_path, serde_json::to_string_pretty(self).unwrap())?;
        Ok(md_path)
    }
}

/// Render the cross-figure summary (`figure name → headline metrics`) as a
/// stable, machine-readable JSON object. Written by `reproduce_all` to
/// `results/summary.json`; hand-rolled (rather than serde-derived) so the
/// output is a proper JSON object keyed by figure and metric names
/// regardless of which serde implementation backs the workspace.
pub fn render_summary_json(entries: &[(&str, &[(String, f64)])]) -> String {
    fn escape(s: &str) -> String {
        s.chars()
            .flat_map(|c| match c {
                '"' => "\\\"".chars().collect::<Vec<_>>(),
                '\\' => "\\\\".chars().collect(),
                '\n' => "\\n".chars().collect(),
                c if (c as u32) < 0x20 => format!("\\u{:04x}", c as u32).chars().collect(),
                c => vec![c],
            })
            .collect()
    }
    let mut out = String::from("{\n");
    for (fi, (figure, metrics)) in entries.iter().enumerate() {
        out.push_str(&format!("  \"{}\": {{\n", escape(figure)));
        for (mi, (name, value)) in metrics.iter().enumerate() {
            let v = if value.is_finite() { *value } else { 0.0 };
            out.push_str(&format!("    \"{}\": {v}", escape(name)));
            out.push_str(if mi + 1 < metrics.len() { ",\n" } else { "\n" });
        }
        out.push_str("  }");
        out.push_str(if fi + 1 < entries.len() { ",\n" } else { "\n" });
    }
    out.push_str("}\n");
    out
}

/// Lowercased `[a-z0-9_]` slug of a figure or dataset name — the one
/// sanitizer behind report file names and `summary.json` headline-metric
/// keys, so the key format cannot drift between figures.
pub fn headline_slug(name: &str) -> String {
    name.chars()
        .map(|c| {
            if c.is_alphanumeric() {
                c.to_ascii_lowercase()
            } else {
                '_'
            }
        })
        .collect()
}

/// Geometric mean of a set of ratios (ignores non-positive entries, returns
/// 0 if none remain) — how the paper aggregates per-input speedups.
pub fn geomean(values: &[f64]) -> f64 {
    let positives: Vec<f64> = values.iter().copied().filter(|v| *v > 0.0).collect();
    if positives.is_empty() {
        return 0.0;
    }
    (positives.iter().map(|v| v.ln()).sum::<f64>() / positives.len() as f64).exp()
}

/// Format a milliseconds value compactly.
pub fn fmt_ms(ms: f64) -> String {
    if ms >= 1000.0 {
        format!("{:.2} s", ms / 1000.0)
    } else if ms >= 1.0 {
        format!("{ms:.2} ms")
    } else {
        format!("{:.1} µs", ms * 1000.0)
    }
}

/// Format a speedup factor.
pub fn fmt_speedup(x: f64) -> String {
    if x == 0.0 {
        "n/a".to_string()
    } else {
        format!("{x:.1}x")
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn table_rendering_contains_all_cells() {
        let mut t = Table::new("demo", &["a", "bb"]);
        t.push_row(vec!["1".into(), "2".into()]);
        t.push_row(vec!["333".into(), "4".into()]);
        let s = t.render();
        assert!(s.contains("demo") && s.contains("333") && s.contains("bb"));
        let md = t.render_markdown();
        assert!(md.contains("| a | bb |"));
        assert!(md.contains("| 333 | 4 |"));
    }

    #[test]
    #[should_panic]
    fn arity_mismatch_panics() {
        let mut t = Table::new("demo", &["a", "b"]);
        t.push_row(vec!["only one".into()]);
    }

    #[test]
    fn geomean_behaviour() {
        assert!((geomean(&[2.0, 8.0]) - 4.0).abs() < 1e-12);
        assert_eq!(geomean(&[]), 0.0);
        assert_eq!(geomean(&[0.0, -1.0]), 0.0);
        assert!((geomean(&[3.0, 0.0]) - 3.0).abs() < 1e-12);
    }

    #[test]
    fn formatting_helpers() {
        assert_eq!(fmt_ms(2500.0), "2.50 s");
        assert_eq!(fmt_ms(2.5), "2.50 ms");
        assert_eq!(fmt_ms(0.5), "500.0 µs");
        assert_eq!(fmt_speedup(2.25), "2.2x");
        assert_eq!(fmt_speedup(0.0), "n/a");
    }

    #[test]
    fn summary_json_is_well_formed_and_escaped() {
        let a = vec![("geomean_speedup".to_string(), 2.5)];
        let b = vec![("r\"2\"".to_string(), 0.996), ("bad".to_string(), f64::NAN)];
        let s = render_summary_json(&[("Figure 11", &a), ("Fig \"15\"", &b)]);
        assert!(s.contains("\"Figure 11\""));
        assert!(s.contains("\"geomean_speedup\": 2.5"));
        assert!(s.contains("\\\"15\\\""));
        assert!(
            s.contains("\"bad\": 0"),
            "non-finite must be sanitised: {s}"
        );
        // Balanced braces and no trailing commas before closers.
        assert_eq!(s.matches('{').count(), s.matches('}').count());
        assert!(!s.contains(",\n}"));
        assert!(!s.contains(",\n  }"));
        assert_eq!(render_summary_json(&[]), "{\n}\n");
    }

    #[test]
    fn headline_metrics_drop_non_finite_values() {
        let mut r = FigureReport::new("t");
        r.headline_metric("ok", 1.5);
        r.headline_metric("nan", f64::NAN);
        r.headline_metric("inf", f64::INFINITY);
        assert_eq!(r.headline, vec![("ok".to_string(), 1.5)]);
    }

    #[test]
    fn report_save_round_trip() {
        let mut report = FigureReport::new("Figure 99 (test)");
        let mut t = Table::new("tiny", &["x"]);
        t.push_row(vec!["1".into()]);
        report.tables.push(t);
        report.notes.push("a note".into());
        let dir = std::env::temp_dir().join("rtnn_bench_report_test");
        let path = report.save(&dir).unwrap();
        let content = std::fs::read_to_string(&path).unwrap();
        assert!(content.contains("Figure 99"));
        assert!(content.contains("a note"));
        std::fs::remove_dir_all(&dir).ok();
    }
}
