//! Experiment scale control.
//!
//! The paper's datasets range from 360 K to 25 M points; a CPU-hosted
//! simulator cannot sweep the full sizes inside a benchmark suite, so every
//! experiment divides the paper's point counts by a scale factor. The factor
//! (and a cap on query counts) can be overridden from the environment so the
//! same binaries serve quick smoke runs and long faithful runs.

/// Scale configuration shared by all experiments.
#[derive(Debug, Clone, Copy)]
pub struct ExperimentScale {
    /// Divisor applied to the paper's point counts (1 = full scale).
    pub dataset_divisor: usize,
    /// Maximum number of queries per experiment (queries are the data points
    /// themselves, subsampled if needed).
    pub query_cap: usize,
    /// Skip a baseline configuration whose estimated work (points × queries)
    /// exceeds this bound and report it as `DNF`, mirroring the paper's
    /// "did not finish" entries.
    pub dnf_work_limit: u64,
}

impl Default for ExperimentScale {
    fn default() -> Self {
        ExperimentScale {
            dataset_divisor: 250,
            query_cap: 100_000,
            dnf_work_limit: 4_000_000_000,
        }
    }
}

impl ExperimentScale {
    /// Read the scale from the environment (`RTNN_SCALE`, `RTNN_QUERY_CAP`,
    /// `RTNN_DNF_LIMIT`), falling back to the defaults for *unset*
    /// variables. A variable that is set but not a positive integer is a
    /// configuration error: the process exits with a clear message instead
    /// of silently benchmarking at the wrong scale.
    pub fn from_env() -> Self {
        match Self::from_vars(|name| std::env::var(name).ok()) {
            Ok(s) => s,
            Err(msg) => {
                eprintln!("error: {msg}");
                std::process::exit(2);
            }
        }
    }

    /// [`Self::from_env`] with an injectable variable source (testable).
    pub fn from_vars(get: impl Fn(&str) -> Option<String>) -> Result<Self, String> {
        let mut s = ExperimentScale::default();
        if let Some(v) = parse_scale_var("RTNN_SCALE", get("RTNN_SCALE"), 1)? {
            s.dataset_divisor = v;
        }
        if let Some(v) = parse_scale_var("RTNN_QUERY_CAP", get("RTNN_QUERY_CAP"), 100)? {
            s.query_cap = v;
        }
        if let Some(v) = parse_scale_var("RTNN_DNF_LIMIT", get("RTNN_DNF_LIMIT"), 1)? {
            s.dnf_work_limit = v as u64;
        }
        Ok(s)
    }

    /// A very small configuration used by unit tests of the experiment
    /// modules themselves (most datasets clamp to their 1000-point minimum).
    pub fn smoke_test() -> Self {
        ExperimentScale {
            dataset_divisor: 10_000,
            query_cap: 500,
            dnf_work_limit: 200_000_000,
        }
    }

    /// Query subsampling stride for a cloud of `num_points` points.
    pub fn query_stride(&self, num_points: usize) -> usize {
        num_points.div_ceil(self.query_cap).max(1)
    }
}

/// Parse one scale variable: `Ok(None)` when unset or empty, `Ok(Some(v))`
/// for a valid integer `>= min`, and a descriptive error for zero, garbage,
/// negative or overflowing values.
fn parse_scale_var(name: &str, value: Option<String>, min: usize) -> Result<Option<usize>, String> {
    let Some(raw) = value else {
        return Ok(None);
    };
    let trimmed = raw.trim();
    if trimmed.is_empty() {
        return Ok(None);
    }
    let parsed: usize = trimmed.parse().map_err(|_| {
        format!("{name}={raw:?} is not a positive integer (unset it to use the default)")
    })?;
    if parsed < min {
        return Err(format!(
            "{name}={parsed} is below the minimum of {min} (unset it to use the default)"
        ));
    }
    Ok(Some(parsed))
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn defaults_are_sane() {
        let s = ExperimentScale::default();
        assert!(s.dataset_divisor >= 1);
        assert!(s.query_cap >= 1000);
        assert!(s.dnf_work_limit > 0);
    }

    #[test]
    fn stride_caps_queries() {
        let s = ExperimentScale {
            query_cap: 100,
            ..Default::default()
        };
        assert_eq!(s.query_stride(1000), 10);
        assert_eq!(s.query_stride(50), 1);
        assert_eq!(s.query_stride(101), 2);
    }

    #[test]
    fn valid_variables_override_the_defaults() {
        let s = ExperimentScale::from_vars(|name| match name {
            "RTNN_SCALE" => Some("50".to_string()),
            "RTNN_QUERY_CAP" => Some("2000".to_string()),
            _ => None,
        })
        .unwrap();
        assert_eq!(s.dataset_divisor, 50);
        assert_eq!(s.query_cap, 2000);
        assert_eq!(s.dnf_work_limit, ExperimentScale::default().dnf_work_limit);
    }

    #[test]
    fn unset_or_empty_variables_fall_back_to_defaults() {
        let s = ExperimentScale::from_vars(|_| None).unwrap();
        assert_eq!(
            s.dataset_divisor,
            ExperimentScale::default().dataset_divisor
        );
        let s =
            ExperimentScale::from_vars(|n| (n == "RTNN_SCALE").then(|| "   ".to_string())).unwrap();
        assert_eq!(
            s.dataset_divisor,
            ExperimentScale::default().dataset_divisor
        );
    }

    #[test]
    fn zero_and_garbage_are_rejected_with_clear_errors() {
        for (name, bad) in [
            ("RTNN_SCALE", "0"),
            ("RTNN_SCALE", "fast"),
            ("RTNN_SCALE", "-3"),
            ("RTNN_SCALE", "1.5"),
            ("RTNN_QUERY_CAP", "0"),
            ("RTNN_QUERY_CAP", "99"),
            ("RTNN_DNF_LIMIT", "lots"),
            ("RTNN_DNF_LIMIT", "0"),
        ] {
            let err =
                ExperimentScale::from_vars(|n| (n == name).then(|| bad.to_string())).unwrap_err();
            assert!(
                err.contains(name),
                "error for {name}={bad} must name the variable: {err}"
            );
            assert!(
                err.contains("default"),
                "error must mention the fallback: {err}"
            );
        }
    }

    #[test]
    fn smoke_configuration_is_smaller_than_default() {
        let smoke = ExperimentScale::smoke_test();
        let default = ExperimentScale::default();
        assert!(smoke.dataset_divisor > default.dataset_divisor);
        assert!(smoke.query_cap < default.query_cap);
    }
}
