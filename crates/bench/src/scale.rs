//! Experiment scale control.
//!
//! The paper's datasets range from 360 K to 25 M points; a CPU-hosted
//! simulator cannot sweep the full sizes inside a benchmark suite, so every
//! experiment divides the paper's point counts by a scale factor. The factor
//! (and a cap on query counts) can be overridden from the environment so the
//! same binaries serve quick smoke runs and long faithful runs.

/// Scale configuration shared by all experiments.
#[derive(Debug, Clone, Copy)]
pub struct ExperimentScale {
    /// Divisor applied to the paper's point counts (1 = full scale).
    pub dataset_divisor: usize,
    /// Maximum number of queries per experiment (queries are the data points
    /// themselves, subsampled if needed).
    pub query_cap: usize,
    /// Skip a baseline configuration whose estimated work (points × queries)
    /// exceeds this bound and report it as `DNF`, mirroring the paper's
    /// "did not finish" entries.
    pub dnf_work_limit: u64,
}

impl Default for ExperimentScale {
    fn default() -> Self {
        ExperimentScale {
            dataset_divisor: 250,
            query_cap: 100_000,
            dnf_work_limit: 4_000_000_000,
        }
    }
}

impl ExperimentScale {
    /// Read the scale from the environment (`RTNN_SCALE`, `RTNN_QUERY_CAP`,
    /// `RTNN_DNF_LIMIT`), falling back to the defaults.
    pub fn from_env() -> Self {
        let mut s = ExperimentScale::default();
        if let Some(v) = read_env_usize("RTNN_SCALE") {
            s.dataset_divisor = v.max(1);
        }
        if let Some(v) = read_env_usize("RTNN_QUERY_CAP") {
            s.query_cap = v.max(100);
        }
        if let Some(v) = read_env_usize("RTNN_DNF_LIMIT") {
            s.dnf_work_limit = v as u64;
        }
        s
    }

    /// A very small configuration used by unit tests of the experiment
    /// modules themselves (most datasets clamp to their 1000-point minimum).
    pub fn smoke_test() -> Self {
        ExperimentScale {
            dataset_divisor: 10_000,
            query_cap: 500,
            dnf_work_limit: 200_000_000,
        }
    }

    /// Query subsampling stride for a cloud of `num_points` points.
    pub fn query_stride(&self, num_points: usize) -> usize {
        num_points.div_ceil(self.query_cap).max(1)
    }
}

fn read_env_usize(name: &str) -> Option<usize> {
    std::env::var(name).ok().and_then(|v| v.parse().ok())
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn defaults_are_sane() {
        let s = ExperimentScale::default();
        assert!(s.dataset_divisor >= 1);
        assert!(s.query_cap >= 1000);
        assert!(s.dnf_work_limit > 0);
    }

    #[test]
    fn stride_caps_queries() {
        let s = ExperimentScale {
            query_cap: 100,
            ..Default::default()
        };
        assert_eq!(s.query_stride(1000), 10);
        assert_eq!(s.query_stride(50), 1);
        assert_eq!(s.query_stride(101), 2);
    }

    #[test]
    fn smoke_configuration_is_smaller_than_default() {
        let smoke = ExperimentScale::smoke_test();
        let default = ExperimentScale::default();
        assert!(smoke.dataset_divisor > default.dataset_divisor);
        assert!(smoke.query_cap < default.query_cap);
    }
}
