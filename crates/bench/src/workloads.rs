//! Workload construction shared by the experiments.

use crate::scale::ExperimentScale;
use rtnn_data::{Dataset, DatasetName, PointCloud};
use rtnn_math::Vec3;

/// A prepared workload: a named point cloud, the query set, and the default
/// search parameters the paper uses for that dataset.
#[derive(Debug, Clone)]
pub struct Workload {
    /// Dataset label (as used in the figures).
    pub name: String,
    /// Search points.
    pub points: Vec<Vec3>,
    /// Queries (the points themselves, subsampled to the query cap).
    pub queries: Vec<Vec3>,
    /// Default search radius for this dataset.
    pub radius: f32,
}

impl Workload {
    /// Build the workload for one of the paper's datasets at the given scale.
    ///
    /// The search radius is *density-compensated*: dividing the point count
    /// by `scale.dataset_divisor` lowers the point density, so the paper's
    /// radius is multiplied by the factor that keeps the expected number of
    /// neighbors per query (and therefore the per-query work profile) at its
    /// full-scale value — `divisor^(1/2)` for the essentially planar KITTI
    /// clouds and `divisor^(1/3)` for the volumetric / surface ones.
    pub fn for_dataset(name: DatasetName, scale: &ExperimentScale) -> Workload {
        let cloud: PointCloud = Dataset::scaled(name, scale.dataset_divisor).generate();
        let stride = scale.query_stride(cloud.len());
        let queries = cloud.queries_subsampled(stride);
        Workload {
            name: cloud.name.clone(),
            radius: compensated_radius(name, scale.dataset_divisor),
            points: cloud.points,
            queries,
        }
    }

    /// Estimated brute-force work (points × queries), used for DNF gating.
    pub fn brute_force_work(&self) -> u64 {
        self.points.len() as u64 * self.queries.len() as u64
    }
}

/// Density-compensated search radius for a dataset scaled down by `divisor`
/// (see [`Workload::for_dataset`]).
pub fn compensated_radius(name: DatasetName, divisor: usize) -> f32 {
    let d = divisor.max(1) as f32;
    let exponent = match name {
        // KITTI points live on a (nearly) 2D ground sheet.
        DatasetName::Kitti1M
        | DatasetName::Kitti6M
        | DatasetName::Kitti12M
        | DatasetName::Kitti25M => 1.0 / 2.0,
        // Everything else fills (or wraps) a 3D volume.
        _ => 1.0 / 3.0,
    };
    name.default_radius() * d.powf(exponent)
}

/// The subset of datasets the characterisation experiments (Figures 5–8) use:
/// a KITTI-like cloud, matching the paper's Section 3.2 setup.
pub fn characterization_workload(scale: &ExperimentScale) -> Workload {
    Workload::for_dataset(DatasetName::Kitti6M, scale)
}

/// The datasets of Figure 11/12, in figure order.
pub fn evaluation_datasets() -> [DatasetName; 9] {
    DatasetName::all()
}

/// Default maximum neighbor count used by the evaluation experiments (the
/// paper bounds every search; Figure 14 sweeps K from 1 to 128 around this).
pub const DEFAULT_K: usize = 32;

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn workload_respects_the_scale() {
        let scale = ExperimentScale::smoke_test();
        let w = Workload::for_dataset(DatasetName::Bunny360K, &scale);
        assert!(!w.points.is_empty());
        assert!(w.queries.len() <= scale.query_cap);
        assert!(w.radius > 0.0);
        assert!(w.brute_force_work() > 0);
        assert!(w.name.contains("Bunny"));
    }

    #[test]
    fn evaluation_set_matches_the_paper() {
        assert_eq!(evaluation_datasets().len(), 9);
    }

    #[test]
    fn radius_compensation_grows_with_the_divisor_and_is_identity_at_full_scale() {
        for name in evaluation_datasets() {
            assert_eq!(compensated_radius(name, 1), name.default_radius());
            assert!(compensated_radius(name, 100) > compensated_radius(name, 10));
        }
        // Planar KITTI compensates more aggressively than the volumetric sets.
        let kitti =
            compensated_radius(DatasetName::Kitti12M, 64) / DatasetName::Kitti12M.default_radius();
        let scan = compensated_radius(DatasetName::Buddha4_6M, 64)
            / DatasetName::Buddha4_6M.default_radius();
        assert!(kitti > scan);
    }
}
