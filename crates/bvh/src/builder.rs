//! BVH builders.
//!
//! The default is the LBVH-style builder: primitive centroids are encoded as
//! 63-bit Morton keys, sorted (in parallel), and the hierarchy is emitted by
//! splitting each sorted range at the highest Morton bit that differs inside
//! the range. Build time is `O(n log n)` dominated by the sort — in practice
//! linear in the primitive count for the sizes the paper sweeps (Figure 15),
//! which is the property the bundling cost model relies on
//! (`T_build = k1 · M`, Equation 3).
//!
//! ## The staged parallel pipeline ([`BvhBuilder::Lbvh`])
//!
//! ```text
//! centroid bounds (serial)            — the Morton grid must match the oracle
//!   → Morton keys      (par_chunks_mut)
//!   → (key, id) sort   (par_sort_by_key; unique compound keys)
//!   → split discovery  (level-wise, parallel within a level)
//!   → subtree sizes + AABBs (bottom-up over levels, parallel within a level)
//!   → preorder index assignment (top-down over levels, parallel)
//!   → node scatter (serial, trivial)
//! ```
//!
//! The pipeline produces a tree **bit-identical** to the serial oracle
//! ([`BvhBuilder::LbvhSerial`]) at every thread count: the sort permutation
//! is fixed by the unique `(morton, id)` compound key, and componentwise
//! `min`/`max` with a consistent tie rule is associative, so an internal
//! node's AABB (`left ∪ right`) equals the oracle's sequential fold over the
//! node's whole primitive range. The proptest suite pins this equality
//! across thread counts and drift generators.

use crate::node::{Bvh, BvhNode, NodeKind};
use rtnn_math::morton::MortonEncoder;
use rtnn_math::{Aabb, Vec3};
use rtnn_parallel::{current_num_threads, par_chunks_mut, par_sort_by_key};
use std::time::Instant;

/// Which construction algorithm to use.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Default)]
pub enum BvhBuilder {
    /// Morton-code linear BVH built by the staged parallel pipeline
    /// (default; models the OptiX fast build path). Bit-identical to
    /// [`BvhBuilder::LbvhSerial`] at every thread count.
    #[default]
    Lbvh,
    /// The fully serial LBVH reference path: the oracle the parallel
    /// pipeline is validated against, and a way to opt out of host
    /// parallelism entirely.
    LbvhSerial,
    /// Object-median split on the longest axis.
    MedianSplit,
    /// Binned surface-area heuristic (8 bins per axis).
    BinnedSah,
}

/// Host-side cost accounting of one build or refit: wall-clock time next to
/// the aggregate busy time across workers, so a parallel build reports its
/// speedup as *parallelism* instead of silently reporting less work.
#[derive(Debug, Clone, Copy, PartialEq, Default)]
pub struct BuildProfile {
    /// Wall-clock milliseconds of the whole operation on the host.
    pub host_wall_ms: f64,
    /// Aggregate busy milliseconds summed across all workers (serial stages
    /// count their wall time). On one thread this matches `host_wall_ms`;
    /// on `t` threads it can approach `t ×` the wall time.
    pub work_ms: f64,
    /// Worker threads configured when the operation ran.
    pub threads: usize,
}

impl BuildProfile {
    /// `work_ms / host_wall_ms` — the work/span ratio, a measured (not
    /// modelled) lower bound on the parallel speedup over a serial run of
    /// the same stages. `None` when either term was not measured.
    pub fn work_span_ratio(&self) -> Option<f64> {
        (self.host_wall_ms > 0.0 && self.work_ms > 0.0)
            .then(|| (self.work_ms / self.host_wall_ms).max(1.0))
    }

    /// Merge two profiles of consecutive operations (e.g. a build and the
    /// refits that followed): walls and work add, the thread count is the
    /// wider of the two.
    pub fn combine(&self, other: &BuildProfile) -> BuildProfile {
        BuildProfile {
            host_wall_ms: self.host_wall_ms + other.host_wall_ms,
            work_ms: self.work_ms + other.work_ms,
            threads: self.threads.max(other.threads),
        }
    }
}

/// Build-time parameters.
#[derive(Debug, Clone, Copy)]
pub struct BuildParams {
    /// Which builder to run.
    pub builder: BvhBuilder,
    /// Maximum number of primitives per leaf.
    pub max_leaf_size: u32,
}

impl Default for BuildParams {
    fn default() -> Self {
        BuildParams {
            builder: BvhBuilder::Lbvh,
            max_leaf_size: 4,
        }
    }
}

/// Build a BVH over `prim_aabbs` with the given parameters.
///
/// An empty primitive list yields [`Bvh::empty`].
pub fn build_bvh(prim_aabbs: &[Aabb], params: BuildParams) -> Bvh {
    build_bvh_profiled(prim_aabbs, params).0
}

/// [`build_bvh`] plus the measured host-side [`BuildProfile`].
pub fn build_bvh_profiled(prim_aabbs: &[Aabb], params: BuildParams) -> (Bvh, BuildProfile) {
    let wall = Instant::now();
    let threads = current_num_threads();
    if prim_aabbs.is_empty() {
        return (
            Bvh::empty(),
            BuildProfile {
                threads,
                ..BuildProfile::default()
            },
        );
    }
    assert!(
        params.max_leaf_size >= 1,
        "max_leaf_size must be at least 1"
    );
    let (bvh, work_ms) = match params.builder {
        BvhBuilder::Lbvh => build_lbvh_parallel(prim_aabbs, params.max_leaf_size),
        BvhBuilder::LbvhSerial => {
            let t = Instant::now();
            let bvh = build_lbvh_serial(prim_aabbs, params.max_leaf_size);
            (bvh, t.elapsed().as_secs_f64() * 1e3)
        }
        BvhBuilder::MedianSplit => {
            let t = Instant::now();
            let bvh = build_recursive(prim_aabbs, params.max_leaf_size, SplitRule::Median);
            (bvh, t.elapsed().as_secs_f64() * 1e3)
        }
        BvhBuilder::BinnedSah => {
            let t = Instant::now();
            let bvh = build_recursive(prim_aabbs, params.max_leaf_size, SplitRule::Sah);
            (bvh, t.elapsed().as_secs_f64() * 1e3)
        }
    };
    let profile = BuildProfile {
        host_wall_ms: wall.elapsed().as_secs_f64() * 1e3,
        work_ms,
        threads,
    };
    if let Some(t) = rtnn_telemetry::Telemetry::current() {
        t.counter_add("bvh.builds", 1);
        t.counter_add("bvh.build_prims", prim_aabbs.len() as u64);
        t.observe_wall("bvh.build.wall_ms", profile.host_wall_ms);
    }
    (bvh, profile)
}

/// Convenience: build a BVH where every primitive is the cube of width
/// `2 * radius` centred at a point — exactly Listing 1's `buildBVH(points,
/// radius)`.
pub fn build_point_bvh(points: &[Vec3], radius: f32, params: BuildParams) -> Bvh {
    build_point_bvh_profiled(points, radius, params).0
}

/// [`build_point_bvh`] plus the measured host-side [`BuildProfile`] (the
/// point-to-AABB expansion is included in the accounting).
pub fn build_point_bvh_profiled(
    points: &[Vec3],
    radius: f32,
    params: BuildParams,
) -> (Bvh, BuildProfile) {
    let wall = Instant::now();
    let mut aabbs = vec![Aabb::EMPTY; points.len()];
    let expand_work = par_chunks_mut(&mut aabbs, 256, |start, chunk| {
        for (off, slot) in chunk.iter_mut().enumerate() {
            *slot = Aabb::cube(points[start + off], 2.0 * radius);
        }
    });
    let (bvh, mut profile) = build_bvh_profiled(&aabbs, params);
    profile.host_wall_ms = wall.elapsed().as_secs_f64() * 1e3;
    profile.work_ms += expand_work;
    (bvh, profile)
}

// ---------------------------------------------------------------------------
// LBVH — serial oracle
// ---------------------------------------------------------------------------

/// The fully serial LBVH reference build: serial Morton map, serial stable
/// sort, recursive preorder emission. The parallel pipeline below must
/// produce a bit-identical tree at every thread count.
fn build_lbvh_serial(prim_aabbs: &[Aabb], max_leaf_size: u32) -> Bvh {
    let n = prim_aabbs.len();
    // Scene bounds over centroids for Morton normalisation.
    let mut centroid_bounds = Aabb::EMPTY;
    for a in prim_aabbs {
        centroid_bounds.grow_point(a.center());
    }
    let encoder = MortonEncoder::new(&centroid_bounds);
    // (morton, prim_id) pairs, sorted by the unique compound key.
    let mut keyed: Vec<(u64, u32)> = prim_aabbs
        .iter()
        .enumerate()
        .map(|(i, a)| (encoder.encode(a.center()), i as u32))
        .collect();
    keyed.sort_by_key(|&(k, id)| (k, id));

    let mut nodes = Vec::with_capacity(2 * n);
    let prim_indices: Vec<u32> = keyed.iter().map(|&(_, id)| id).collect();
    let codes: Vec<u64> = keyed.iter().map(|&(k, _)| k).collect();

    // Recursive split on the highest differing Morton bit.
    struct Ctx<'a> {
        prim_aabbs: &'a [Aabb],
        prim_indices: &'a [u32],
        codes: &'a [u64],
        max_leaf: usize,
    }

    fn emit(ctx: &Ctx, nodes: &mut Vec<BvhNode>, start: usize, end: usize) -> u32 {
        let count = end - start;
        let mut aabb = Aabb::EMPTY;
        for &pid in &ctx.prim_indices[start..end] {
            aabb.grow_aabb(&ctx.prim_aabbs[pid as usize]);
        }
        let node_index = nodes.len() as u32;
        if count <= ctx.max_leaf {
            nodes.push(BvhNode {
                aabb,
                kind: NodeKind::Leaf {
                    start: start as u32,
                    count: count as u32,
                },
            });
            return node_index;
        }
        let split = find_morton_split(&ctx.codes[start..end]) + start;
        nodes.push(BvhNode {
            aabb,
            kind: NodeKind::Internal { left: 0, right: 0 },
        });
        let left = emit(ctx, nodes, start, split);
        let right = emit(ctx, nodes, split, end);
        nodes[node_index as usize].kind = NodeKind::Internal { left, right };
        node_index
    }

    let ctx = Ctx {
        prim_aabbs,
        prim_indices: &prim_indices,
        codes: &codes,
        max_leaf: max_leaf_size as usize,
    };
    emit(&ctx, &mut nodes, 0, n);

    Bvh {
        nodes,
        prim_indices,
        prim_aabbs: prim_aabbs.to_vec(),
        max_leaf_size,
    }
}

// ---------------------------------------------------------------------------
// LBVH — staged parallel pipeline
// ---------------------------------------------------------------------------

/// One range of the Morton-sorted primitive order at one level of the
/// split recursion. The pipeline materialises the recursion tree level by
/// level so every phase is a flat parallel pass over a `Vec<LevelTask>`.
#[derive(Clone, Copy)]
struct LevelTask {
    /// Primitive range `[start, end)` in the sorted order.
    start: u32,
    end: u32,
    /// Absolute split position; `u32::MAX` marks a leaf task.
    split: u32,
    /// Index of the left child task in the next level (right child is
    /// `first_child + 1`); `u32::MAX` for leaves.
    first_child: u32,
    /// Index of the parent task in the previous level; `u32::MAX` at root.
    parent: u32,
    /// Number of BVH nodes in this task's subtree.
    subtree: u32,
    /// `subtree` of the left child — the preorder offset of the right child.
    left_subtree: u32,
    /// Preorder index of this task's node in the final node array.
    node_index: u32,
    aabb: Aabb,
}

impl LevelTask {
    fn over(start: u32, end: u32, parent: u32) -> LevelTask {
        LevelTask {
            start,
            end,
            split: u32::MAX,
            first_child: u32::MAX,
            parent,
            subtree: 0,
            left_subtree: 0,
            node_index: 0,
            aabb: Aabb::EMPTY,
        }
    }
}

/// The staged parallel LBVH build (see the module docs for the pipeline
/// diagram). Returns the tree and the aggregate busy milliseconds across
/// workers. Bit-identical to [`build_lbvh_serial`] at every thread count.
fn build_lbvh_parallel(prim_aabbs: &[Aabb], max_leaf_size: u32) -> (Bvh, f64) {
    let n = prim_aabbs.len();
    let mut work_ms = 0.0;

    // Stage 1 — centroid bounds, kept serial: the fold must visit the
    // primitives in exactly the oracle's order so the Morton grid (and with
    // it every code, split and box) is bit-equal.
    let t = Instant::now();
    let mut centroid_bounds = Aabb::EMPTY;
    for a in prim_aabbs {
        centroid_bounds.grow_point(a.center());
    }
    let encoder = MortonEncoder::new(&centroid_bounds);
    work_ms += t.elapsed().as_secs_f64() * 1e3;

    // Stage 2 — Morton keys, parallel over primitives.
    let mut keyed: Vec<(u64, u32)> = vec![(0, 0); n];
    work_ms += par_chunks_mut(&mut keyed, 256, |start, chunk| {
        for (off, slot) in chunk.iter_mut().enumerate() {
            let i = start + off;
            *slot = (encoder.encode(prim_aabbs[i].center()), i as u32);
        }
    });

    // Stage 3 — parallel sort. The `(morton, id)` compound key is unique,
    // so the permutation does not depend on chunking or thread count.
    work_ms += par_sort_by_key(&mut keyed, |&(k, id)| (k, id));

    let t = Instant::now();
    let prim_indices: Vec<u32> = keyed.iter().map(|&(_, id)| id).collect();
    let codes: Vec<u64> = keyed.iter().map(|&(k, _)| k).collect();
    work_ms += t.elapsed().as_secs_f64() * 1e3;

    // Stage 4 — split discovery, level-synchronous: every task of a level
    // finds its Morton split in parallel, then a serial prefix pass lays
    // out the next level (deterministic child order).
    let mut levels: Vec<Vec<LevelTask>> = Vec::new();
    let mut current = vec![LevelTask::over(0, n as u32, u32::MAX)];
    loop {
        work_ms += par_chunks_mut(&mut current, 16, |_, chunk| {
            for task in chunk.iter_mut() {
                let count = task.end - task.start;
                task.split = if count <= max_leaf_size {
                    u32::MAX
                } else {
                    let range = &codes[task.start as usize..task.end as usize];
                    (find_morton_split(range) + task.start as usize) as u32
                };
            }
        });
        let mut next = Vec::new();
        for (ti, task) in current.iter_mut().enumerate() {
            if task.split != u32::MAX {
                task.first_child = next.len() as u32;
                next.push(LevelTask::over(task.start, task.split, ti as u32));
                next.push(LevelTask::over(task.split, task.end, ti as u32));
            }
        }
        let done = next.is_empty();
        levels.push(current);
        if done {
            break;
        }
        current = next;
    }

    // Stage 5 — bottom-up subtree sizes and AABBs, parallel within each
    // level. Leaves fold their primitive subrange exactly like the oracle;
    // internal boxes are `left ∪ right`, bit-equal to the oracle's full
    // fold because componentwise min/max with a consistent tie rule is
    // associative.
    for li in (0..levels.len()).rev() {
        let (head, tail) = levels.split_at_mut(li + 1);
        let children: &[LevelTask] = tail.first().map(|v| v.as_slice()).unwrap_or(&[]);
        work_ms += par_chunks_mut(&mut head[li], 16, |_, chunk| {
            for task in chunk.iter_mut() {
                if task.split == u32::MAX {
                    task.subtree = 1;
                    let mut aabb = Aabb::EMPTY;
                    for &pid in &prim_indices[task.start as usize..task.end as usize] {
                        aabb.grow_aabb(&prim_aabbs[pid as usize]);
                    }
                    task.aabb = aabb;
                } else {
                    let l = children[task.first_child as usize];
                    let r = children[task.first_child as usize + 1];
                    task.subtree = 1 + l.subtree + r.subtree;
                    task.left_subtree = l.subtree;
                    task.aabb = l.aabb.union(&r.aabb);
                }
            }
        });
    }

    // Stage 6 — preorder index assignment, top-down: each child only reads
    // its parent (previous level) and writes itself, so levels are data
    // parallel. The serial emitter visits `parent, left subtree, right
    // subtree`, so `left = parent + 1` and `right = parent + 1 + |left|`.
    levels[0][0].node_index = 0;
    for li in 0..levels.len().saturating_sub(1) {
        let (head, tail) = levels.split_at_mut(li + 1);
        let parents: &[LevelTask] = head[li].as_slice();
        work_ms += par_chunks_mut(&mut tail[0], 16, |start, chunk| {
            for (off, task) in chunk.iter_mut().enumerate() {
                let j = (start + off) as u32;
                let p = parents[task.parent as usize];
                task.node_index = if j == p.first_child {
                    p.node_index + 1
                } else {
                    p.node_index + 1 + p.left_subtree
                };
            }
        });
    }

    // Stage 7 — scatter the finished tasks into their preorder slots. A
    // trivial linear pass; kept serial and charged as such.
    let t = Instant::now();
    let total = levels[0][0].subtree as usize;
    let mut nodes = vec![
        BvhNode {
            aabb: Aabb::EMPTY,
            kind: NodeKind::Leaf { start: 0, count: 0 },
        };
        total
    ];
    for level in &levels {
        for task in level {
            nodes[task.node_index as usize] = BvhNode {
                aabb: task.aabb,
                kind: if task.split == u32::MAX {
                    NodeKind::Leaf {
                        start: task.start,
                        count: task.end - task.start,
                    }
                } else {
                    NodeKind::Internal {
                        left: task.node_index + 1,
                        right: task.node_index + 1 + task.left_subtree,
                    }
                },
            };
        }
    }
    work_ms += t.elapsed().as_secs_f64() * 1e3;

    let bvh = Bvh {
        nodes,
        prim_indices,
        prim_aabbs: prim_aabbs.to_vec(),
        max_leaf_size,
    };
    (bvh, work_ms)
}

/// Position (relative to the slice start) at which to split a Morton-sorted
/// range: one past the last key sharing the highest differing bit with the
/// first key. Falls back to the midpoint when all keys are equal.
fn find_morton_split(codes: &[u64]) -> usize {
    let n = codes.len();
    debug_assert!(n >= 2);
    let first = codes[0];
    let last = codes[n - 1];
    if first == last {
        return n / 2;
    }
    let common = (first ^ last).leading_zeros();
    // Binary search for the first code whose prefix differs from `first`
    // beyond the common prefix.
    let mut lo = 0usize;
    let mut hi = n - 1;
    while lo + 1 < hi {
        let mid = (lo + hi) / 2;
        if (first ^ codes[mid]).leading_zeros() > common {
            lo = mid;
        } else {
            hi = mid;
        }
    }
    hi.clamp(1, n - 1)
}

// ---------------------------------------------------------------------------
// Recursive median / SAH builders
// ---------------------------------------------------------------------------

enum SplitRule {
    Median,
    Sah,
}

fn build_recursive(prim_aabbs: &[Aabb], max_leaf_size: u32, rule: SplitRule) -> Bvh {
    let n = prim_aabbs.len();
    let mut prim_indices: Vec<u32> = (0..n as u32).collect();
    let centroids: Vec<Vec3> = prim_aabbs.iter().map(|a| a.center()).collect();
    let mut nodes: Vec<BvhNode> = Vec::with_capacity(2 * n);

    fn emit(
        prim_aabbs: &[Aabb],
        centroids: &[Vec3],
        prim_indices: &mut [u32],
        nodes: &mut Vec<BvhNode>,
        offset: usize,
        max_leaf: usize,
        rule: &SplitRule,
    ) -> u32 {
        let count = prim_indices.len();
        let mut aabb = Aabb::EMPTY;
        let mut centroid_bounds = Aabb::EMPTY;
        for &pid in prim_indices.iter() {
            aabb.grow_aabb(&prim_aabbs[pid as usize]);
            centroid_bounds.grow_point(centroids[pid as usize]);
        }
        let node_index = nodes.len() as u32;
        if count <= max_leaf {
            nodes.push(BvhNode {
                aabb,
                kind: NodeKind::Leaf {
                    start: offset as u32,
                    count: count as u32,
                },
            });
            return node_index;
        }
        let axis = centroid_bounds.longest_axis();
        // Degenerate centroid spread (e.g. duplicated points): fall back to an
        // arbitrary midpoint split so leaves still respect max_leaf.
        let degenerate = centroid_bounds.longest_extent() <= 0.0;
        let mid = if degenerate {
            count / 2
        } else {
            match rule {
                SplitRule::Median => {
                    let mid = count / 2;
                    prim_indices.select_nth_unstable_by(mid, |&a, &b| {
                        centroids[a as usize][axis]
                            .partial_cmp(&centroids[b as usize][axis])
                            .unwrap_or(std::cmp::Ordering::Equal)
                    });
                    mid
                }
                SplitRule::Sah => {
                    sah_partition(prim_aabbs, centroids, prim_indices, axis, &centroid_bounds)
                }
            }
        };
        let mid = mid.clamp(1, count - 1);
        nodes.push(BvhNode {
            aabb,
            kind: NodeKind::Internal { left: 0, right: 0 },
        });
        let (left_ids, right_ids) = prim_indices.split_at_mut(mid);
        let left = emit(
            prim_aabbs, centroids, left_ids, nodes, offset, max_leaf, rule,
        );
        let right = emit(
            prim_aabbs,
            centroids,
            right_ids,
            nodes,
            offset + mid,
            max_leaf,
            rule,
        );
        nodes[node_index as usize].kind = NodeKind::Internal { left, right };
        node_index
    }

    emit(
        prim_aabbs,
        &centroids,
        &mut prim_indices,
        &mut nodes,
        0,
        max_leaf_size as usize,
        &rule,
    );

    Bvh {
        nodes,
        prim_indices,
        prim_aabbs: prim_aabbs.to_vec(),
        max_leaf_size,
    }
}

/// Partition `prim_indices` in place around the best of 8 binned SAH split
/// candidates on `axis`; returns the split position. Falls back to the
/// median when binning degenerates.
fn sah_partition(
    prim_aabbs: &[Aabb],
    centroids: &[Vec3],
    prim_indices: &mut [u32],
    axis: usize,
    centroid_bounds: &Aabb,
) -> usize {
    const BINS: usize = 8;
    let count = prim_indices.len();
    let lo = centroid_bounds.min[axis];
    let extent = centroid_bounds.max[axis] - lo;
    if extent <= 0.0 {
        return count / 2;
    }
    let bin_of = |pid: u32| -> usize {
        let t = (centroids[pid as usize][axis] - lo) / extent;
        ((t * BINS as f32) as usize).min(BINS - 1)
    };
    let mut bin_counts = [0usize; BINS];
    let mut bin_bounds = [Aabb::EMPTY; BINS];
    for &pid in prim_indices.iter() {
        let b = bin_of(pid);
        bin_counts[b] += 1;
        bin_bounds[b].grow_aabb(&prim_aabbs[pid as usize]);
    }
    // Evaluate SAH cost for each of the BINS-1 split planes.
    let mut best_cost = f32::INFINITY;
    let mut best_split = BINS / 2;
    for split in 1..BINS {
        let (mut la, mut ra) = (Aabb::EMPTY, Aabb::EMPTY);
        let (mut lc, mut rc) = (0usize, 0usize);
        for b in 0..split {
            if bin_counts[b] > 0 {
                la.grow_aabb(&bin_bounds[b]);
                lc += bin_counts[b];
            }
        }
        for b in split..BINS {
            if bin_counts[b] > 0 {
                ra.grow_aabb(&bin_bounds[b]);
                rc += bin_counts[b];
            }
        }
        if lc == 0 || rc == 0 {
            continue;
        }
        let cost = la.surface_area() * lc as f32 + ra.surface_area() * rc as f32;
        if cost < best_cost {
            best_cost = cost;
            best_split = split;
        }
    }
    if !best_cost.is_finite() {
        return count / 2;
    }
    // Partition in place: everything in bins < best_split goes left.
    let mut left = 0usize;
    for i in 0..count {
        if bin_of(prim_indices[i]) < best_split {
            prim_indices.swap(i, left);
            left += 1;
        }
    }
    left.clamp(1, count - 1)
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::validate::validate_bvh;

    fn grid_points(n_per_axis: usize) -> Vec<Vec3> {
        let mut pts = Vec::new();
        for x in 0..n_per_axis {
            for y in 0..n_per_axis {
                for z in 0..n_per_axis {
                    pts.push(Vec3::new(x as f32, y as f32, z as f32));
                }
            }
        }
        pts
    }

    fn all_builders() -> [BvhBuilder; 4] {
        [
            BvhBuilder::Lbvh,
            BvhBuilder::LbvhSerial,
            BvhBuilder::MedianSplit,
            BvhBuilder::BinnedSah,
        ]
    }

    fn assert_bit_identical(a: &Bvh, b: &Bvh, context: &str) {
        assert_eq!(a.prim_indices, b.prim_indices, "{context}: prim order");
        assert_eq!(a.prim_aabbs, b.prim_aabbs, "{context}: prim AABBs");
        assert_eq!(a.nodes.len(), b.nodes.len(), "{context}: node count");
        for (i, (x, y)) in a.nodes.iter().zip(&b.nodes).enumerate() {
            assert_eq!(x.kind, y.kind, "{context}: node {i} kind");
            assert_eq!(x.aabb, y.aabb, "{context}: node {i} aabb");
        }
    }

    #[test]
    fn empty_input_gives_empty_bvh() {
        for b in all_builders() {
            let bvh = build_bvh(
                &[],
                BuildParams {
                    builder: b,
                    max_leaf_size: 4,
                },
            );
            assert!(bvh.is_empty());
        }
    }

    #[test]
    fn single_primitive() {
        let aabbs = [Aabb::cube(Vec3::new(1.0, 2.0, 3.0), 0.5)];
        for b in all_builders() {
            let bvh = build_bvh(
                &aabbs,
                BuildParams {
                    builder: b,
                    max_leaf_size: 4,
                },
            );
            assert_eq!(bvh.num_nodes(), 1);
            assert_eq!(bvh.num_primitives(), 1);
            assert!(bvh.nodes[0].is_leaf());
            validate_bvh(&bvh).unwrap();
        }
    }

    #[test]
    fn all_builders_produce_valid_trees() {
        let points = grid_points(6); // 216 points
        let aabbs: Vec<Aabb> = points.iter().map(|&p| Aabb::cube(p, 0.8)).collect();
        for b in all_builders() {
            for leaf in [1u32, 2, 4, 8] {
                let bvh = build_bvh(
                    &aabbs,
                    BuildParams {
                        builder: b,
                        max_leaf_size: leaf,
                    },
                );
                validate_bvh(&bvh).unwrap_or_else(|e| panic!("{b:?} leaf={leaf}: {e:?}"));
                assert_eq!(bvh.num_primitives(), aabbs.len());
                assert!(bvh.depth() >= 2);
            }
        }
    }

    #[test]
    fn duplicate_points_do_not_break_builders() {
        // All-equal Morton codes exercise the fallback midpoint split.
        let aabbs = vec![Aabb::cube(Vec3::splat(1.0), 0.2); 33];
        for b in all_builders() {
            let bvh = build_bvh(
                &aabbs,
                BuildParams {
                    builder: b,
                    max_leaf_size: 2,
                },
            );
            validate_bvh(&bvh).unwrap();
            assert_eq!(bvh.num_primitives(), 33);
        }
    }

    #[test]
    fn point_bvh_uses_width_2r() {
        let points = vec![Vec3::ZERO, Vec3::new(5.0, 0.0, 0.0)];
        let bvh = build_point_bvh(&points, 0.75, BuildParams::default());
        // Each leaf primitive AABB must be the cube of width 1.5 around its point.
        for (i, &p) in points.iter().enumerate() {
            assert_eq!(bvh.prim_aabbs[i], Aabb::cube(p, 1.5));
        }
        validate_bvh(&bvh).unwrap();
    }

    #[test]
    fn planar_input_builds() {
        // KITTI-like: all points in a thin z slab.
        let mut pts = grid_points(8);
        for p in &mut pts {
            p.z *= 1e-3;
        }
        let aabbs: Vec<Aabb> = pts.iter().map(|&p| Aabb::cube(p, 0.6)).collect();
        for b in all_builders() {
            let bvh = build_bvh(
                &aabbs,
                BuildParams {
                    builder: b,
                    max_leaf_size: 4,
                },
            );
            validate_bvh(&bvh).unwrap();
        }
    }

    #[test]
    fn morton_split_positions_are_interior() {
        let codes: Vec<u64> = vec![0, 1, 2, 3, 8, 9, 10, 11];
        let s = find_morton_split(&codes);
        assert!(s >= 1 && s < codes.len());
        assert_eq!(s, 4); // split where bit 3 flips
        assert_eq!(find_morton_split(&[7, 7, 7, 7]), 2); // equal codes -> midpoint
    }

    #[test]
    fn lbvh_depth_is_logarithmic_for_uniform_points() {
        let points = grid_points(10); // 1000 points
        let bvh = build_point_bvh(&points, 0.5, BuildParams::default());
        // A pathological chain would be ~250 deep; a healthy tree is O(log n).
        assert!(bvh.depth() <= 24, "depth {} too large", bvh.depth());
    }

    #[test]
    fn parallel_lbvh_is_bit_identical_to_the_serial_oracle() {
        // Mixed shapes: uniform grid, a thin slab, and heavy duplicates (the
        // midpoint-split fallback), across leaf sizes and thread counts.
        let mut slab = grid_points(7);
        for p in &mut slab {
            p.z *= 1e-3;
        }
        let mut dupes = grid_points(3);
        dupes.extend(vec![Vec3::splat(1.0); 40]);
        for (name, pts) in [
            ("grid", grid_points(6)),
            ("slab", slab),
            ("dupes", dupes),
            ("single", vec![Vec3::ZERO]),
        ] {
            for leaf in [1u32, 4] {
                let serial = build_bvh(
                    &pts.iter().map(|&p| Aabb::cube(p, 0.8)).collect::<Vec<_>>(),
                    BuildParams {
                        builder: BvhBuilder::LbvhSerial,
                        max_leaf_size: leaf,
                    },
                );
                for threads in [1usize, 2, 6] {
                    let parallel = rtnn_parallel::with_thread_count(threads, || {
                        build_bvh(
                            &pts.iter().map(|&p| Aabb::cube(p, 0.8)).collect::<Vec<_>>(),
                            BuildParams {
                                builder: BvhBuilder::Lbvh,
                                max_leaf_size: leaf,
                            },
                        )
                    });
                    assert_bit_identical(
                        &serial,
                        &parallel,
                        &format!("{name} leaf={leaf} threads={threads}"),
                    );
                    validate_bvh(&parallel).unwrap();
                }
            }
        }
    }

    #[test]
    fn build_profile_reports_wall_and_work() {
        let points = grid_points(8);
        let (bvh, profile) = build_point_bvh_profiled(&points, 0.5, BuildParams::default());
        assert_eq!(bvh.num_primitives(), points.len());
        assert!(profile.host_wall_ms > 0.0);
        assert!(profile.work_ms > 0.0);
        assert!(profile.threads >= 1);
        assert!(profile.work_span_ratio().unwrap() >= 1.0);
        let doubled = profile.combine(&profile);
        assert!((doubled.work_ms - 2.0 * profile.work_ms).abs() < 1e-12);
        assert_eq!(doubled.threads, profile.threads);
        // Unmeasured profiles report no ratio.
        assert_eq!(BuildProfile::default().work_span_ratio(), None);
    }
}
