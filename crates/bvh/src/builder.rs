//! BVH builders.
//!
//! The default is the LBVH-style builder: primitive centroids are encoded as
//! 63-bit Morton keys, sorted (in parallel), and the hierarchy is emitted by
//! recursively splitting each sorted range at the highest Morton bit that
//! differs inside the range. Build time is `O(n log n)` dominated by the
//! sort — in practice linear in the primitive count for the sizes the paper
//! sweeps (Figure 15), which is the property the bundling cost model relies
//! on (`T_build = k1 · M`, Equation 3).

use crate::node::{Bvh, BvhNode, NodeKind};
use rtnn_math::morton::MortonEncoder;
use rtnn_math::{Aabb, Vec3};
use rtnn_parallel::{par_map, par_sort_by_key};

/// Which construction algorithm to use.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Default)]
pub enum BvhBuilder {
    /// Morton-code linear BVH (default; models the OptiX fast build path).
    #[default]
    Lbvh,
    /// Object-median split on the longest axis.
    MedianSplit,
    /// Binned surface-area heuristic (8 bins per axis).
    BinnedSah,
}

/// Build-time parameters.
#[derive(Debug, Clone, Copy)]
pub struct BuildParams {
    /// Which builder to run.
    pub builder: BvhBuilder,
    /// Maximum number of primitives per leaf.
    pub max_leaf_size: u32,
}

impl Default for BuildParams {
    fn default() -> Self {
        BuildParams {
            builder: BvhBuilder::Lbvh,
            max_leaf_size: 4,
        }
    }
}

/// Build a BVH over `prim_aabbs` with the given parameters.
///
/// An empty primitive list yields [`Bvh::empty`].
pub fn build_bvh(prim_aabbs: &[Aabb], params: BuildParams) -> Bvh {
    if prim_aabbs.is_empty() {
        return Bvh::empty();
    }
    assert!(
        params.max_leaf_size >= 1,
        "max_leaf_size must be at least 1"
    );
    match params.builder {
        BvhBuilder::Lbvh => build_lbvh(prim_aabbs, params.max_leaf_size),
        BvhBuilder::MedianSplit => {
            build_recursive(prim_aabbs, params.max_leaf_size, SplitRule::Median)
        }
        BvhBuilder::BinnedSah => build_recursive(prim_aabbs, params.max_leaf_size, SplitRule::Sah),
    }
}

/// Convenience: build a BVH where every primitive is the cube of width
/// `2 * radius` centred at a point — exactly Listing 1's `buildBVH(points,
/// radius)`.
pub fn build_point_bvh(points: &[Vec3], radius: f32, params: BuildParams) -> Bvh {
    let aabbs = par_map(points.len(), |i| Aabb::cube(points[i], 2.0 * radius));
    build_bvh(&aabbs, params)
}

// ---------------------------------------------------------------------------
// LBVH
// ---------------------------------------------------------------------------

fn build_lbvh(prim_aabbs: &[Aabb], max_leaf_size: u32) -> Bvh {
    let n = prim_aabbs.len();
    // Scene bounds over centroids for Morton normalisation.
    let mut centroid_bounds = Aabb::EMPTY;
    for a in prim_aabbs {
        centroid_bounds.grow_point(a.center());
    }
    let encoder = MortonEncoder::new(&centroid_bounds);
    // (morton, prim_id) pairs, sorted by morton.
    let mut keyed: Vec<(u64, u32)> =
        par_map(n, |i| (encoder.encode(prim_aabbs[i].center()), i as u32));
    par_sort_by_key(&mut keyed, |&(k, id)| (k, id));

    let mut nodes = Vec::with_capacity(2 * n);
    let prim_indices: Vec<u32> = keyed.iter().map(|&(_, id)| id).collect();
    let codes: Vec<u64> = keyed.iter().map(|&(k, _)| k).collect();

    // Recursive split on the highest differing Morton bit.
    struct Ctx<'a> {
        prim_aabbs: &'a [Aabb],
        prim_indices: &'a [u32],
        codes: &'a [u64],
        max_leaf: usize,
    }

    fn emit(ctx: &Ctx, nodes: &mut Vec<BvhNode>, start: usize, end: usize) -> u32 {
        let count = end - start;
        let mut aabb = Aabb::EMPTY;
        for &pid in &ctx.prim_indices[start..end] {
            aabb.grow_aabb(&ctx.prim_aabbs[pid as usize]);
        }
        let node_index = nodes.len() as u32;
        if count <= ctx.max_leaf {
            nodes.push(BvhNode {
                aabb,
                kind: NodeKind::Leaf {
                    start: start as u32,
                    count: count as u32,
                },
            });
            return node_index;
        }
        let split = find_morton_split(&ctx.codes[start..end]) + start;
        nodes.push(BvhNode {
            aabb,
            kind: NodeKind::Internal { left: 0, right: 0 },
        });
        let left = emit(ctx, nodes, start, split);
        let right = emit(ctx, nodes, split, end);
        nodes[node_index as usize].kind = NodeKind::Internal { left, right };
        node_index
    }

    let ctx = Ctx {
        prim_aabbs,
        prim_indices: &prim_indices,
        codes: &codes,
        max_leaf: max_leaf_size as usize,
    };
    emit(&ctx, &mut nodes, 0, n);

    Bvh {
        nodes,
        prim_indices,
        prim_aabbs: prim_aabbs.to_vec(),
        max_leaf_size,
    }
}

/// Position (relative to the slice start) at which to split a Morton-sorted
/// range: one past the last key sharing the highest differing bit with the
/// first key. Falls back to the midpoint when all keys are equal.
fn find_morton_split(codes: &[u64]) -> usize {
    let n = codes.len();
    debug_assert!(n >= 2);
    let first = codes[0];
    let last = codes[n - 1];
    if first == last {
        return n / 2;
    }
    let common = (first ^ last).leading_zeros();
    // Binary search for the first code whose prefix differs from `first`
    // beyond the common prefix.
    let mut lo = 0usize;
    let mut hi = n - 1;
    while lo + 1 < hi {
        let mid = (lo + hi) / 2;
        if (first ^ codes[mid]).leading_zeros() > common {
            lo = mid;
        } else {
            hi = mid;
        }
    }
    hi.clamp(1, n - 1)
}

// ---------------------------------------------------------------------------
// Recursive median / SAH builders
// ---------------------------------------------------------------------------

enum SplitRule {
    Median,
    Sah,
}

fn build_recursive(prim_aabbs: &[Aabb], max_leaf_size: u32, rule: SplitRule) -> Bvh {
    let n = prim_aabbs.len();
    let mut prim_indices: Vec<u32> = (0..n as u32).collect();
    let centroids: Vec<Vec3> = prim_aabbs.iter().map(|a| a.center()).collect();
    let mut nodes: Vec<BvhNode> = Vec::with_capacity(2 * n);

    fn emit(
        prim_aabbs: &[Aabb],
        centroids: &[Vec3],
        prim_indices: &mut [u32],
        nodes: &mut Vec<BvhNode>,
        offset: usize,
        max_leaf: usize,
        rule: &SplitRule,
    ) -> u32 {
        let count = prim_indices.len();
        let mut aabb = Aabb::EMPTY;
        let mut centroid_bounds = Aabb::EMPTY;
        for &pid in prim_indices.iter() {
            aabb.grow_aabb(&prim_aabbs[pid as usize]);
            centroid_bounds.grow_point(centroids[pid as usize]);
        }
        let node_index = nodes.len() as u32;
        if count <= max_leaf {
            nodes.push(BvhNode {
                aabb,
                kind: NodeKind::Leaf {
                    start: offset as u32,
                    count: count as u32,
                },
            });
            return node_index;
        }
        let axis = centroid_bounds.longest_axis();
        // Degenerate centroid spread (e.g. duplicated points): fall back to an
        // arbitrary midpoint split so leaves still respect max_leaf.
        let degenerate = centroid_bounds.longest_extent() <= 0.0;
        let mid = if degenerate {
            count / 2
        } else {
            match rule {
                SplitRule::Median => {
                    let mid = count / 2;
                    prim_indices.select_nth_unstable_by(mid, |&a, &b| {
                        centroids[a as usize][axis]
                            .partial_cmp(&centroids[b as usize][axis])
                            .unwrap_or(std::cmp::Ordering::Equal)
                    });
                    mid
                }
                SplitRule::Sah => {
                    sah_partition(prim_aabbs, centroids, prim_indices, axis, &centroid_bounds)
                }
            }
        };
        let mid = mid.clamp(1, count - 1);
        nodes.push(BvhNode {
            aabb,
            kind: NodeKind::Internal { left: 0, right: 0 },
        });
        let (left_ids, right_ids) = prim_indices.split_at_mut(mid);
        let left = emit(
            prim_aabbs, centroids, left_ids, nodes, offset, max_leaf, rule,
        );
        let right = emit(
            prim_aabbs,
            centroids,
            right_ids,
            nodes,
            offset + mid,
            max_leaf,
            rule,
        );
        nodes[node_index as usize].kind = NodeKind::Internal { left, right };
        node_index
    }

    emit(
        prim_aabbs,
        &centroids,
        &mut prim_indices,
        &mut nodes,
        0,
        max_leaf_size as usize,
        &rule,
    );

    Bvh {
        nodes,
        prim_indices,
        prim_aabbs: prim_aabbs.to_vec(),
        max_leaf_size,
    }
}

/// Partition `prim_indices` in place around the best of 8 binned SAH split
/// candidates on `axis`; returns the split position. Falls back to the
/// median when binning degenerates.
fn sah_partition(
    prim_aabbs: &[Aabb],
    centroids: &[Vec3],
    prim_indices: &mut [u32],
    axis: usize,
    centroid_bounds: &Aabb,
) -> usize {
    const BINS: usize = 8;
    let count = prim_indices.len();
    let lo = centroid_bounds.min[axis];
    let extent = centroid_bounds.max[axis] - lo;
    if extent <= 0.0 {
        return count / 2;
    }
    let bin_of = |pid: u32| -> usize {
        let t = (centroids[pid as usize][axis] - lo) / extent;
        ((t * BINS as f32) as usize).min(BINS - 1)
    };
    let mut bin_counts = [0usize; BINS];
    let mut bin_bounds = [Aabb::EMPTY; BINS];
    for &pid in prim_indices.iter() {
        let b = bin_of(pid);
        bin_counts[b] += 1;
        bin_bounds[b].grow_aabb(&prim_aabbs[pid as usize]);
    }
    // Evaluate SAH cost for each of the BINS-1 split planes.
    let mut best_cost = f32::INFINITY;
    let mut best_split = BINS / 2;
    for split in 1..BINS {
        let (mut la, mut ra) = (Aabb::EMPTY, Aabb::EMPTY);
        let (mut lc, mut rc) = (0usize, 0usize);
        for b in 0..split {
            if bin_counts[b] > 0 {
                la.grow_aabb(&bin_bounds[b]);
                lc += bin_counts[b];
            }
        }
        for b in split..BINS {
            if bin_counts[b] > 0 {
                ra.grow_aabb(&bin_bounds[b]);
                rc += bin_counts[b];
            }
        }
        if lc == 0 || rc == 0 {
            continue;
        }
        let cost = la.surface_area() * lc as f32 + ra.surface_area() * rc as f32;
        if cost < best_cost {
            best_cost = cost;
            best_split = split;
        }
    }
    if !best_cost.is_finite() {
        return count / 2;
    }
    // Partition in place: everything in bins < best_split goes left.
    let mut left = 0usize;
    for i in 0..count {
        if bin_of(prim_indices[i]) < best_split {
            prim_indices.swap(i, left);
            left += 1;
        }
    }
    left.clamp(1, count - 1)
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::validate::validate_bvh;

    fn grid_points(n_per_axis: usize) -> Vec<Vec3> {
        let mut pts = Vec::new();
        for x in 0..n_per_axis {
            for y in 0..n_per_axis {
                for z in 0..n_per_axis {
                    pts.push(Vec3::new(x as f32, y as f32, z as f32));
                }
            }
        }
        pts
    }

    fn all_builders() -> [BvhBuilder; 3] {
        [
            BvhBuilder::Lbvh,
            BvhBuilder::MedianSplit,
            BvhBuilder::BinnedSah,
        ]
    }

    #[test]
    fn empty_input_gives_empty_bvh() {
        for b in all_builders() {
            let bvh = build_bvh(
                &[],
                BuildParams {
                    builder: b,
                    max_leaf_size: 4,
                },
            );
            assert!(bvh.is_empty());
        }
    }

    #[test]
    fn single_primitive() {
        let aabbs = [Aabb::cube(Vec3::new(1.0, 2.0, 3.0), 0.5)];
        for b in all_builders() {
            let bvh = build_bvh(
                &aabbs,
                BuildParams {
                    builder: b,
                    max_leaf_size: 4,
                },
            );
            assert_eq!(bvh.num_nodes(), 1);
            assert_eq!(bvh.num_primitives(), 1);
            assert!(bvh.nodes[0].is_leaf());
            validate_bvh(&bvh).unwrap();
        }
    }

    #[test]
    fn all_builders_produce_valid_trees() {
        let points = grid_points(6); // 216 points
        let aabbs: Vec<Aabb> = points.iter().map(|&p| Aabb::cube(p, 0.8)).collect();
        for b in all_builders() {
            for leaf in [1u32, 2, 4, 8] {
                let bvh = build_bvh(
                    &aabbs,
                    BuildParams {
                        builder: b,
                        max_leaf_size: leaf,
                    },
                );
                validate_bvh(&bvh).unwrap_or_else(|e| panic!("{b:?} leaf={leaf}: {e:?}"));
                assert_eq!(bvh.num_primitives(), aabbs.len());
                assert!(bvh.depth() >= 2);
            }
        }
    }

    #[test]
    fn duplicate_points_do_not_break_builders() {
        // All-equal Morton codes exercise the fallback midpoint split.
        let aabbs = vec![Aabb::cube(Vec3::splat(1.0), 0.2); 33];
        for b in all_builders() {
            let bvh = build_bvh(
                &aabbs,
                BuildParams {
                    builder: b,
                    max_leaf_size: 2,
                },
            );
            validate_bvh(&bvh).unwrap();
            assert_eq!(bvh.num_primitives(), 33);
        }
    }

    #[test]
    fn point_bvh_uses_width_2r() {
        let points = vec![Vec3::ZERO, Vec3::new(5.0, 0.0, 0.0)];
        let bvh = build_point_bvh(&points, 0.75, BuildParams::default());
        // Each leaf primitive AABB must be the cube of width 1.5 around its point.
        for (i, &p) in points.iter().enumerate() {
            assert_eq!(bvh.prim_aabbs[i], Aabb::cube(p, 1.5));
        }
        validate_bvh(&bvh).unwrap();
    }

    #[test]
    fn planar_input_builds() {
        // KITTI-like: all points in a thin z slab.
        let mut pts = grid_points(8);
        for p in &mut pts {
            p.z *= 1e-3;
        }
        let aabbs: Vec<Aabb> = pts.iter().map(|&p| Aabb::cube(p, 0.6)).collect();
        for b in all_builders() {
            let bvh = build_bvh(
                &aabbs,
                BuildParams {
                    builder: b,
                    max_leaf_size: 4,
                },
            );
            validate_bvh(&bvh).unwrap();
        }
    }

    #[test]
    fn morton_split_positions_are_interior() {
        let codes: Vec<u64> = vec![0, 1, 2, 3, 8, 9, 10, 11];
        let s = find_morton_split(&codes);
        assert!(s >= 1 && s < codes.len());
        assert_eq!(s, 4); // split where bit 3 flips
        assert_eq!(find_morton_split(&[7, 7, 7, 7]), 2); // equal codes -> midpoint
    }

    #[test]
    fn lbvh_depth_is_logarithmic_for_uniform_points() {
        let points = grid_points(10); // 1000 points
        let bvh = build_point_bvh(&points, 0.5, BuildParams::default());
        // A pathological chain would be ~250 deep; a healthy tree is O(log n).
        assert!(bvh.depth() <= 24, "depth {} too large", bvh.depth());
    }
}
