//! # rtnn-bvh
//!
//! Bounding Volume Hierarchy construction and traversal — the data structure
//! at the heart of the RTNN formulation (the paper's Section 2.2) and the
//! structure the simulated RT cores traverse.
//!
//! The real system delegates BVH construction to the (non-programmable)
//! OptiX runtime; here we provide four builders:
//!
//! * [`builder::BvhBuilder::Lbvh`] — Morton-sort + top-down split at the
//!   highest differing Morton bit, built by a staged *parallel* pipeline on
//!   the `rtnn-parallel` pool. Linear-ish in the number of primitives,
//!   which is the property Appendix B of the paper measures (Figure 15).
//!   This is the default builder and the one the `rtnn-optix` acceleration
//!   structure uses.
//! * [`builder::BvhBuilder::LbvhSerial`] — the fully serial LBVH reference
//!   path; the parallel pipeline is pinned bit-identical to it at every
//!   thread count.
//! * [`builder::BvhBuilder::MedianSplit`] — classic object-median split on
//!   the longest axis; slower to build, slightly better trees. Used by the
//!   PCLOctree-like baseline comparisons and by ablation benches.
//! * [`builder::BvhBuilder::BinnedSah`] — binned surface-area-heuristic
//!   builder; the highest quality trees, the slowest builds.
//!
//! Traversal implements the OptiX ray–AABB semantics (Conditions 1 and 2 of
//! the paper) and reports the per-ray statistics (nodes visited, primitive
//! AABBs tested) that the GPU simulator converts into cycles, cache traffic
//! and occupancy.

pub mod builder;
pub mod node;
pub mod refit;
pub mod stats;
pub mod threads;
pub mod traverse;
pub mod validate;

pub use builder::{
    build_bvh, build_bvh_profiled, build_point_bvh, build_point_bvh_profiled, BuildParams,
    BuildProfile, BvhBuilder,
};
pub use node::{Bvh, BvhNode, NodeKind};
pub use refit::{
    refit_bvh, refit_bvh_profiled, refit_bvh_serial, refit_bvh_with_cut, refit_point_bvh,
    RefitError, RefitStats, SahMonitor,
};
pub use stats::BvhStats;
pub use threads::BuildThreads;
pub use traverse::{TraversalControl, TraversalStats, TraversalTrace};
pub use validate::{validate_bvh, BvhValidationError};
