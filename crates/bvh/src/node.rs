//! BVH node layout and the [`Bvh`] container.
//!
//! Nodes are stored in a flat `Vec<BvhNode>`; node 0 is the root. Leaves
//! reference a contiguous range of `prim_indices`, which is a permutation of
//! the primitive ids the BVH was built over. The flat layout matters beyond
//! convenience: the GPU simulator derives memory addresses for cache
//! modelling from node indices, so two rays that touch the same node also
//! touch the same simulated cache lines.

use rtnn_math::Aabb;

/// What a node is: an internal node with two children, or a leaf owning a
/// slice of primitives.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum NodeKind {
    /// Internal node; fields are indices into [`Bvh::nodes`].
    Internal { left: u32, right: u32 },
    /// Leaf node; fields index into [`Bvh::prim_indices`].
    Leaf { start: u32, count: u32 },
}

/// A single BVH node.
#[derive(Debug, Clone, Copy, PartialEq)]
pub struct BvhNode {
    /// Bounds of everything beneath this node.
    pub aabb: Aabb,
    /// Internal / leaf discriminant and payload.
    pub kind: NodeKind,
}

impl BvhNode {
    /// True if this node is a leaf.
    #[inline]
    pub fn is_leaf(&self) -> bool {
        matches!(self.kind, NodeKind::Leaf { .. })
    }
}

/// A bounding volume hierarchy over a set of axis-aligned primitive boxes.
///
/// The BVH borrows nothing: it stores a copy of the primitive AABBs so the
/// acceleration structure is self-contained, mirroring how an OptiX GAS owns
/// its device-side buffers after `optixAccelBuild`.
#[derive(Debug, Clone)]
pub struct Bvh {
    /// Flat node array; index 0 is the root (when non-empty).
    pub nodes: Vec<BvhNode>,
    /// Permutation of primitive ids referenced by leaf ranges.
    pub prim_indices: Vec<u32>,
    /// Primitive bounding boxes, indexed by primitive id.
    pub prim_aabbs: Vec<Aabb>,
    /// Maximum leaf size the builder was configured with.
    pub max_leaf_size: u32,
}

impl Bvh {
    /// An empty hierarchy (no primitives, no nodes).
    pub fn empty() -> Self {
        Bvh {
            nodes: Vec::new(),
            prim_indices: Vec::new(),
            prim_aabbs: Vec::new(),
            max_leaf_size: 1,
        }
    }

    /// Number of primitives the BVH was built over.
    #[inline]
    pub fn num_primitives(&self) -> usize {
        self.prim_aabbs.len()
    }

    /// Number of nodes (internal + leaf).
    #[inline]
    pub fn num_nodes(&self) -> usize {
        self.nodes.len()
    }

    /// True if the BVH contains no primitives.
    #[inline]
    pub fn is_empty(&self) -> bool {
        self.prim_aabbs.is_empty()
    }

    /// Root node bounds, or an empty AABB if the BVH is empty.
    #[inline]
    pub fn root_bounds(&self) -> Aabb {
        self.nodes.first().map(|n| n.aabb).unwrap_or(Aabb::EMPTY)
    }

    /// The primitive ids stored in a leaf node.
    #[inline]
    pub fn leaf_primitives(&self, node: &BvhNode) -> &[u32] {
        match node.kind {
            NodeKind::Leaf { start, count } => {
                &self.prim_indices[start as usize..(start + count) as usize]
            }
            NodeKind::Internal { .. } => &[],
        }
    }

    /// Depth of the tree (root = 1). Returns 0 for an empty BVH.
    pub fn depth(&self) -> usize {
        fn rec(bvh: &Bvh, node: usize) -> usize {
            match bvh.nodes[node].kind {
                NodeKind::Leaf { .. } => 1,
                NodeKind::Internal { left, right } => {
                    1 + rec(bvh, left as usize).max(rec(bvh, right as usize))
                }
            }
        }
        if self.nodes.is_empty() {
            0
        } else {
            rec(self, 0)
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use rtnn_math::Vec3;

    #[test]
    fn empty_bvh_properties() {
        let b = Bvh::empty();
        assert!(b.is_empty());
        assert_eq!(b.num_nodes(), 0);
        assert_eq!(b.num_primitives(), 0);
        assert_eq!(b.depth(), 0);
        assert!(b.root_bounds().is_empty());
    }

    #[test]
    fn node_kind_helpers() {
        let leaf = BvhNode {
            aabb: Aabb::cube(Vec3::ZERO, 1.0),
            kind: NodeKind::Leaf { start: 0, count: 2 },
        };
        let internal = BvhNode {
            aabb: Aabb::cube(Vec3::ZERO, 2.0),
            kind: NodeKind::Internal { left: 1, right: 2 },
        };
        assert!(leaf.is_leaf());
        assert!(!internal.is_leaf());
    }

    #[test]
    fn leaf_primitive_slicing() {
        let bvh = Bvh {
            nodes: vec![BvhNode {
                aabb: Aabb::cube(Vec3::ZERO, 1.0),
                kind: NodeKind::Leaf { start: 1, count: 2 },
            }],
            prim_indices: vec![5, 7, 9, 11],
            prim_aabbs: vec![Aabb::cube(Vec3::ZERO, 1.0); 12],
            max_leaf_size: 4,
        };
        assert_eq!(bvh.leaf_primitives(&bvh.nodes[0]), &[7, 9]);
    }
}
