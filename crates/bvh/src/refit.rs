//! In-place BVH refit for dynamic scenes.
//!
//! When primitives move but their count stays fixed, the tree topology
//! (parent/child structure and leaf → primitive assignment) can be kept and
//! only the AABBs recomputed bottom-up: leaves from their primitives,
//! internal nodes from their children. This is exactly what
//! `optixAccelBuild` with `OPTIX_BUILD_OPERATION_UPDATE` does on real
//! hardware — an order of magnitude cheaper than a rebuild, at the price of
//! tree quality: as primitives drift from the positions the topology was
//! chosen for, sibling AABBs start to overlap and traversal visits more
//! nodes. The [`crate::node::Bvh::sah_cost`] monitor quantifies that
//! degradation; the `rtnn-dynamic` crate's rebuild policy acts on it.

use crate::builder::BuildProfile;
use crate::node::{Bvh, NodeKind};
use rtnn_math::Aabb;
use rtnn_parallel::{current_num_threads, par_map_collect};
use std::time::Instant;

/// Ways a refit request can be invalid.
#[derive(Debug, Clone, PartialEq)]
pub enum RefitError {
    /// The new primitive set has a different size than the tree was built
    /// over — refit cannot change topology; rebuild instead.
    PrimitiveCountChanged {
        /// Primitives the tree owns.
        tree: usize,
        /// Primitives supplied to the refit.
        supplied: usize,
    },
}

impl std::fmt::Display for RefitError {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        match self {
            RefitError::PrimitiveCountChanged { tree, supplied } => write!(
                f,
                "refit cannot change the primitive count (tree has {tree}, supplied {supplied}); rebuild instead"
            ),
        }
    }
}

impl std::error::Error for RefitError {}

/// What a refit did, for logging and policy decisions.
#[derive(Debug, Clone, Copy, PartialEq)]
pub struct RefitStats {
    /// Nodes whose AABB was recomputed (all of them).
    pub nodes_updated: usize,
    /// SAH cost of the tree before the refit.
    pub sah_before: f64,
    /// SAH cost of the tree after the refit.
    pub sah_after: f64,
}

/// Recompute every node AABB of `bvh` bottom-up from `new_prim_aabbs`
/// without re-topologizing. The new primitive set must have exactly the same
/// length as the one the tree was built over; primitive ids keep their
/// meaning.
///
/// Works for any structurally valid tree regardless of node layout (explicit
/// traversals are used throughout, so children need not follow their parent
/// in the node array).
///
/// Large trees are refitted in parallel over independent subtrees (see
/// [`refit_bvh_with_cut`]); the result is bit-identical to the serial oracle
/// ([`refit_bvh_serial`]) at every thread count, because every node box is
/// computed from exactly the same operands either way.
///
/// In debug and test builds the refitted tree is re-validated with
/// [`crate::validate::validate_bvh`]; a violation is a bug in this function
/// or in the input tree and panics.
pub fn refit_bvh(bvh: &mut Bvh, new_prim_aabbs: &[Aabb]) -> Result<RefitStats, RefitError> {
    refit_bvh_profiled(bvh, new_prim_aabbs).map(|(stats, _)| stats)
}

/// [`refit_bvh`] plus the measured host-side [`BuildProfile`].
pub fn refit_bvh_profiled(
    bvh: &mut Bvh,
    new_prim_aabbs: &[Aabb],
) -> Result<(RefitStats, BuildProfile), RefitError> {
    let threads = current_num_threads();
    // Cut deep enough to hand every worker several subtrees for load
    // balancing; a serial run or a small tree dispatches to the oracle.
    let result = if threads <= 1 || bvh.nodes.len() < 4096 {
        let wall = Instant::now();
        let stats = refit_bvh_serial(bvh, new_prim_aabbs)?;
        let ms = wall.elapsed().as_secs_f64() * 1e3;
        Ok((
            stats,
            BuildProfile {
                host_wall_ms: ms,
                work_ms: ms,
                threads,
            },
        ))
    } else {
        let cut_depth = (threads * 8).next_power_of_two().trailing_zeros();
        refit_bvh_with_cut(bvh, new_prim_aabbs, cut_depth)
    };
    if let (Ok((_, profile)), Some(t)) = (&result, rtnn_telemetry::Telemetry::current()) {
        t.counter_add("bvh.refits", 1);
        t.observe_wall("bvh.refit.wall_ms", profile.host_wall_ms);
    }
    result
}

/// The serial refit oracle: one explicit post-order traversal of the whole
/// tree. The parallel path must match it bit for bit.
pub fn refit_bvh_serial(bvh: &mut Bvh, new_prim_aabbs: &[Aabb]) -> Result<RefitStats, RefitError> {
    let sah_before = check_and_adopt(bvh, new_prim_aabbs)?;
    let Some(sah_before) = sah_before else {
        return Ok(empty_stats(bvh));
    };

    // Iterative post-order: visit children before recomputing the parent.
    // `(node, expanded)` pairs; on the second visit both children are done.
    let mut stack: Vec<(u32, bool)> = vec![(0, false)];
    while let Some((idx, expanded)) = stack.pop() {
        let node = bvh.nodes[idx as usize];
        match node.kind {
            NodeKind::Leaf { start, count } => {
                bvh.nodes[idx as usize].aabb = leaf_aabb(bvh, start, count);
            }
            NodeKind::Internal { left, right } => {
                if expanded {
                    let aabb = bvh.nodes[left as usize]
                        .aabb
                        .union(&bvh.nodes[right as usize].aabb);
                    bvh.nodes[idx as usize].aabb = aabb;
                } else {
                    stack.push((idx, true));
                    stack.push((left, false));
                    stack.push((right, false));
                }
            }
        }
    }

    finish(bvh, sah_before)
}

/// Parallel refit with an explicit subtree cut: a breadth-first sweep from
/// the root collects the frontier at `cut_depth` (plus any leaves above it),
/// the frontier subtrees are refitted concurrently, and a serial top-up
/// pass recomputes the internal nodes above the cut in reverse BFS order.
/// `cut_depth = 0` degenerates to one job — the whole tree.
///
/// Bit-identical to [`refit_bvh_serial`] for every cut depth and thread
/// count: each node's box is computed from the same operands in the same
/// order; only the schedule differs.
pub fn refit_bvh_with_cut(
    bvh: &mut Bvh,
    new_prim_aabbs: &[Aabb],
    cut_depth: u32,
) -> Result<(RefitStats, BuildProfile), RefitError> {
    let wall = Instant::now();
    let threads = current_num_threads();
    let sah_before = check_and_adopt(bvh, new_prim_aabbs)?;
    let Some(sah_before) = sah_before else {
        return Ok((
            empty_stats(bvh),
            BuildProfile {
                threads,
                ..BuildProfile::default()
            },
        ));
    };
    let mut work_ms = 0.0;

    // BFS from the root: nodes shallower than the cut stay in `upper`
    // (recomputed serially afterwards); the frontier — subtree roots at the
    // cut depth, plus leaves encountered above it — becomes the job list.
    let t = Instant::now();
    let mut upper: Vec<u32> = Vec::new();
    let mut frontier: Vec<u32> = Vec::new();
    let mut queue: Vec<(u32, u32)> = vec![(0, 0)]; // (node, depth)
    let mut head = 0;
    while head < queue.len() {
        let (idx, depth) = queue[head];
        head += 1;
        match bvh.nodes[idx as usize].kind {
            NodeKind::Internal { left, right } if depth < cut_depth => {
                upper.push(idx);
                queue.push((left, depth + 1));
                queue.push((right, depth + 1));
            }
            _ => frontier.push(idx),
        }
    }
    work_ms += t.elapsed().as_secs_f64() * 1e3;

    // Refit the frontier subtrees concurrently. Workers only read the tree
    // and return (node, aabb) pairs; a serial pass applies them, so no two
    // threads ever alias a node.
    let busy_nanos = std::sync::atomic::AtomicU64::new(0);
    let jobs: Vec<Vec<(u32, Aabb)>> = {
        let bvh: &Bvh = bvh;
        par_map_collect(frontier.len(), |i| {
            let t = Instant::now();
            let out = eval_subtree(bvh, frontier[i]);
            busy_nanos.fetch_add(
                t.elapsed().as_nanos() as u64,
                std::sync::atomic::Ordering::Relaxed,
            );
            out
        })
    };
    work_ms += busy_nanos.load(std::sync::atomic::Ordering::Relaxed) as f64 / 1e6;

    let t = Instant::now();
    for job in jobs {
        for (idx, aabb) in job {
            bvh.nodes[idx as usize].aabb = aabb;
        }
    }
    // Serial top-up: reverse BFS order guarantees both children of every
    // upper node — frontier roots or deeper upper nodes — are final.
    for &idx in upper.iter().rev() {
        let NodeKind::Internal { left, right } = bvh.nodes[idx as usize].kind else {
            unreachable!("upper nodes are internal by construction");
        };
        bvh.nodes[idx as usize].aabb = bvh.nodes[left as usize]
            .aabb
            .union(&bvh.nodes[right as usize].aabb);
    }
    work_ms += t.elapsed().as_secs_f64() * 1e3;

    let stats = finish(bvh, sah_before)?;
    Ok((
        stats,
        BuildProfile {
            host_wall_ms: wall.elapsed().as_secs_f64() * 1e3,
            work_ms,
            threads,
        },
    ))
}

/// Post-order evaluation of one subtree's new AABBs against the (already
/// adopted) primitive boxes. Returns `(node, aabb)` pairs in post-order; an
/// explicit two-stack machine, so degenerate SAH chains cannot overflow the
/// call stack.
fn eval_subtree(bvh: &Bvh, root: u32) -> Vec<(u32, Aabb)> {
    enum Visit {
        Enter(u32),
        Exit(u32),
    }
    let mut out: Vec<(u32, Aabb)> = Vec::new();
    let mut values: Vec<Aabb> = Vec::new();
    let mut stack = vec![Visit::Enter(root)];
    while let Some(visit) = stack.pop() {
        match visit {
            Visit::Enter(idx) => match bvh.nodes[idx as usize].kind {
                NodeKind::Leaf { start, count } => {
                    let aabb = leaf_aabb(bvh, start, count);
                    out.push((idx, aabb));
                    values.push(aabb);
                }
                NodeKind::Internal { left, right } => {
                    stack.push(Visit::Exit(idx));
                    // Enter right first so left's value lands below right's,
                    // and the union below reads (left, right) in order.
                    stack.push(Visit::Enter(right));
                    stack.push(Visit::Enter(left));
                }
            },
            Visit::Exit(idx) => {
                let r = values.pop().expect("right child evaluated");
                let l = values.pop().expect("left child evaluated");
                let aabb = l.union(&r);
                out.push((idx, aabb));
                values.push(aabb);
            }
        }
    }
    out
}

/// Count-check `new_prim_aabbs` against the tree and adopt them. Returns
/// `Ok(None)` for the empty tree (nothing to refit), otherwise the SAH cost
/// before the refit.
fn check_and_adopt(bvh: &mut Bvh, new_prim_aabbs: &[Aabb]) -> Result<Option<f64>, RefitError> {
    if new_prim_aabbs.len() != bvh.prim_aabbs.len() {
        return Err(RefitError::PrimitiveCountChanged {
            tree: bvh.prim_aabbs.len(),
            supplied: new_prim_aabbs.len(),
        });
    }
    let sah_before = bvh.sah_cost();
    if bvh.nodes.is_empty() {
        return Ok(None);
    }
    bvh.prim_aabbs.clear();
    bvh.prim_aabbs.extend_from_slice(new_prim_aabbs);
    Ok(Some(sah_before))
}

fn empty_stats(bvh: &Bvh) -> RefitStats {
    let sah = bvh.sah_cost();
    RefitStats {
        nodes_updated: 0,
        sah_before: sah,
        sah_after: sah,
    }
}

fn leaf_aabb(bvh: &Bvh, start: u32, count: u32) -> Aabb {
    let mut aabb = Aabb::EMPTY;
    for &pid in &bvh.prim_indices[start as usize..(start + count) as usize] {
        aabb.grow_aabb(&bvh.prim_aabbs[pid as usize]);
    }
    aabb
}

fn finish(bvh: &mut Bvh, sah_before: f64) -> Result<RefitStats, RefitError> {
    #[cfg(any(debug_assertions, test))]
    crate::validate::validate_bvh(bvh).expect("refit produced an invalid BVH");

    Ok(RefitStats {
        nodes_updated: bvh.nodes.len(),
        sah_before,
        sah_after: bvh.sah_cost(),
    })
}

/// Refit helper mirroring [`crate::builder::build_point_bvh`]: primitives
/// are the width-`2·radius` cubes centred at `points` (Listing 1's mapping).
pub fn refit_point_bvh(
    bvh: &mut Bvh,
    points: &[rtnn_math::Vec3],
    radius: f32,
) -> Result<RefitStats, RefitError> {
    let aabbs = rtnn_parallel::par_map(points.len(), |i| Aabb::cube(points[i], 2.0 * radius));
    refit_bvh(bvh, &aabbs)
}

/// A quality monitor for a tree that is refitted across frames: remembers
/// the SAH cost the tree had when it was last *built* and reports the
/// degradation ratio of the current (refitted) tree against it.
#[derive(Debug, Clone, Copy, PartialEq)]
pub struct SahMonitor {
    built_sah: f64,
}

impl SahMonitor {
    /// Record the freshly built tree's SAH cost as the quality baseline.
    pub fn baseline(bvh: &Bvh) -> Self {
        SahMonitor {
            built_sah: bvh.sah_cost(),
        }
    }

    /// The SAH cost at the last rebuild.
    pub fn built_sah(&self) -> f64 {
        self.built_sah
    }

    /// Quality-degradation ratio of `bvh` against the baseline: 1.0 means
    /// as good as freshly built, 2.0 means traversal is predicted to cost
    /// about twice as much. Never below 1.0 (a refit can coincidentally
    /// tighten boxes; the policy only cares about degradation).
    pub fn quality_ratio(&self, bvh: &Bvh) -> f64 {
        if self.built_sah <= 0.0 {
            return 1.0;
        }
        (bvh.sah_cost() / self.built_sah).max(1.0)
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::builder::{build_bvh, build_point_bvh, BuildParams, BvhBuilder};
    use crate::validate::validate_bvh;
    use rtnn_math::Vec3;

    fn grid_points(n_per_axis: usize) -> Vec<Vec3> {
        let mut pts = Vec::new();
        for x in 0..n_per_axis {
            for y in 0..n_per_axis {
                for z in 0..n_per_axis {
                    pts.push(Vec3::new(x as f32, y as f32, z as f32));
                }
            }
        }
        pts
    }

    #[test]
    fn refit_with_identical_primitives_is_a_fixed_point() {
        let pts = grid_points(5);
        for builder in [
            BvhBuilder::Lbvh,
            BvhBuilder::MedianSplit,
            BvhBuilder::BinnedSah,
        ] {
            let params = BuildParams {
                builder,
                max_leaf_size: 4,
            };
            let mut bvh = build_point_bvh(&pts, 0.5, params);
            let reference = bvh.clone();
            let stats = refit_point_bvh(&mut bvh, &pts, 0.5).unwrap();
            assert_eq!(stats.nodes_updated, bvh.nodes.len());
            assert!((stats.sah_after - stats.sah_before).abs() < 1e-9);
            for (a, b) in bvh.nodes.iter().zip(&reference.nodes) {
                assert_eq!(a.aabb, b.aabb, "{builder:?}");
                assert_eq!(a.kind, b.kind);
            }
        }
    }

    #[test]
    fn refit_tracks_moved_primitives_and_stays_valid() {
        let mut pts = grid_points(6);
        let mut bvh = build_point_bvh(&pts, 0.4, BuildParams::default());
        // Drift every point and squash z (an SPH-settle-like motion).
        for (i, p) in pts.iter_mut().enumerate() {
            p.x += 0.3 * ((i % 7) as f32 - 3.0) / 3.0;
            p.z *= 0.8;
        }
        refit_point_bvh(&mut bvh, &pts, 0.4).unwrap();
        validate_bvh(&bvh).unwrap();
        // Every primitive AABB is the cube at its new position.
        for (i, &p) in pts.iter().enumerate() {
            assert_eq!(bvh.prim_aabbs[i], Aabb::cube(p, 0.8));
        }
        // The root must bound all new positions.
        let root = bvh.root_bounds();
        for &p in &pts {
            assert!(root.contains_point(p));
        }
    }

    #[test]
    fn refit_rejects_changed_primitive_count() {
        let pts = grid_points(3);
        let mut bvh = build_point_bvh(&pts, 0.5, BuildParams::default());
        let fewer: Vec<Aabb> = pts[..10].iter().map(|&p| Aabb::cube(p, 1.0)).collect();
        let err = refit_bvh(&mut bvh, &fewer).unwrap_err();
        assert!(matches!(
            err,
            RefitError::PrimitiveCountChanged {
                tree: 27,
                supplied: 10
            }
        ));
        assert!(err.to_string().contains("rebuild instead"));
    }

    #[test]
    fn refit_of_empty_bvh_is_a_noop() {
        let mut bvh = Bvh::empty();
        let stats = refit_bvh(&mut bvh, &[]).unwrap();
        assert_eq!(stats.nodes_updated, 0);
        assert!(bvh.is_empty());
    }

    #[test]
    fn drift_degrades_sah_and_monitor_reports_it() {
        let mut pts = grid_points(8);
        let mut bvh = build_point_bvh(&pts, 0.4, BuildParams::default());
        let monitor = SahMonitor::baseline(&bvh);
        assert!((monitor.quality_ratio(&bvh) - 1.0).abs() < 1e-9);
        // Heavy scrambling drift: points swap regions, so the frozen topology
        // groups far-apart points under common ancestors.
        let n = pts.len();
        for i in 0..n / 2 {
            pts.swap(i, n - 1 - i);
        }
        for (i, p) in pts.iter_mut().enumerate() {
            p.y += ((i % 13) as f32) * 0.9;
        }
        let stats = refit_point_bvh(&mut bvh, &pts, 0.4).unwrap();
        assert!(
            stats.sah_after > stats.sah_before * 1.2,
            "expected clear SAH degradation, got {} -> {}",
            stats.sah_before,
            stats.sah_after
        );
        assert!(monitor.quality_ratio(&bvh) > 1.2);
        // A rebuild restores the baseline-level quality.
        let rebuilt = build_point_bvh(&pts, 0.4, BuildParams::default());
        assert!(rebuilt.sah_cost() < bvh.sah_cost());
    }

    #[test]
    fn parallel_refit_matches_the_serial_oracle_at_every_cut_and_thread_count() {
        let mut pts = grid_points(9); // 729 points
        let bvh0 = build_point_bvh(&pts, 0.4, BuildParams::default());
        // Drift the points so the refit actually changes every box.
        for (i, p) in pts.iter_mut().enumerate() {
            p.x += 0.4 * ((i % 11) as f32 - 5.0) / 5.0;
            p.y -= 0.2 * ((i % 5) as f32);
            p.z *= 0.9;
        }
        let moved: Vec<Aabb> = pts.iter().map(|&p| Aabb::cube(p, 0.8)).collect();
        let mut serial = bvh0.clone();
        let serial_stats = refit_bvh_serial(&mut serial, &moved).unwrap();
        for cut in [0u32, 1, 3, 6, 30] {
            for threads in [1usize, 2, 5] {
                let mut parallel = bvh0.clone();
                let (stats, profile) = rtnn_parallel::with_thread_count(threads, || {
                    refit_bvh_with_cut(&mut parallel, &moved, cut).unwrap()
                });
                assert_eq!(stats, serial_stats, "cut={cut} threads={threads}");
                assert!(profile.host_wall_ms >= 0.0);
                for (i, (a, b)) in parallel.nodes.iter().zip(&serial.nodes).enumerate() {
                    assert_eq!(a.aabb, b.aabb, "cut={cut} threads={threads} node {i}");
                    assert_eq!(a.kind, b.kind);
                }
                assert_eq!(parallel.prim_aabbs, serial.prim_aabbs);
            }
        }
        // The public dispatcher agrees too.
        let mut dispatched = bvh0.clone();
        let dispatched_stats = refit_bvh(&mut dispatched, &moved).unwrap();
        assert_eq!(dispatched_stats, serial_stats);
    }

    #[test]
    fn parallel_refit_handles_hand_reordered_layouts() {
        // Same hand-reordered layout as the serial test below: children do
        // not follow their parent, so the BFS cut must still be correct.
        let prim_aabbs = vec![
            Aabb::cube(Vec3::ZERO, 1.0),
            Aabb::cube(Vec3::new(4.0, 0.0, 0.0), 1.0),
        ];
        let mut bvh = build_bvh(
            &prim_aabbs,
            BuildParams {
                builder: BvhBuilder::MedianSplit,
                max_leaf_size: 1,
            },
        );
        let NodeKind::Internal { left, right } = bvh.nodes[0].kind else {
            panic!("expected internal root");
        };
        bvh.nodes.swap(left as usize, right as usize);
        bvh.nodes[0].kind = NodeKind::Internal {
            left: right,
            right: left,
        };
        let moved = vec![
            Aabb::cube(Vec3::new(0.0, 3.0, 0.0), 1.0),
            Aabb::cube(Vec3::new(4.0, -3.0, 0.0), 1.0),
        ];
        let mut serial = bvh.clone();
        refit_bvh_serial(&mut serial, &moved).unwrap();
        for cut in [0u32, 1, 2] {
            let mut parallel = bvh.clone();
            refit_bvh_with_cut(&mut parallel, &moved, cut).unwrap();
            validate_bvh(&parallel).unwrap();
            for (a, b) in parallel.nodes.iter().zip(&serial.nodes) {
                assert_eq!(a.aabb, b.aabb, "cut={cut}");
            }
        }
    }

    #[test]
    fn refit_works_on_hand_layouts_with_children_before_parents() {
        // Node 0 is an internal root whose children sit at indices 1 and 2 —
        // but build a layout where the *left* child is the last node, so a
        // naive reverse-index sweep would read a stale child box.
        let prim_aabbs = vec![
            Aabb::cube(Vec3::ZERO, 1.0),
            Aabb::cube(Vec3::new(4.0, 0.0, 0.0), 1.0),
        ];
        let mut bvh = build_bvh(
            &prim_aabbs,
            BuildParams {
                builder: BvhBuilder::MedianSplit,
                max_leaf_size: 1,
            },
        );
        // Swap the two leaves in the node array and fix up the root's child
        // indices, producing a valid but reordered layout.
        let NodeKind::Internal { left, right } = bvh.nodes[0].kind else {
            panic!("expected internal root");
        };
        bvh.nodes.swap(left as usize, right as usize);
        bvh.nodes[0].kind = NodeKind::Internal {
            left: right,
            right: left,
        };
        validate_bvh(&bvh).unwrap();
        let moved = vec![
            Aabb::cube(Vec3::new(0.0, 2.0, 0.0), 1.0),
            Aabb::cube(Vec3::new(4.0, -2.0, 0.0), 1.0),
        ];
        refit_bvh(&mut bvh, &moved).unwrap();
        validate_bvh(&bvh).unwrap();
        assert!(bvh.root_bounds().contains_aabb(&moved[0]));
        assert!(bvh.root_bounds().contains_aabb(&moved[1]));
    }
}
