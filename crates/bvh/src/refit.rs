//! In-place BVH refit for dynamic scenes.
//!
//! When primitives move but their count stays fixed, the tree topology
//! (parent/child structure and leaf → primitive assignment) can be kept and
//! only the AABBs recomputed bottom-up: leaves from their primitives,
//! internal nodes from their children. This is exactly what
//! `optixAccelBuild` with `OPTIX_BUILD_OPERATION_UPDATE` does on real
//! hardware — an order of magnitude cheaper than a rebuild, at the price of
//! tree quality: as primitives drift from the positions the topology was
//! chosen for, sibling AABBs start to overlap and traversal visits more
//! nodes. The [`crate::node::Bvh::sah_cost`] monitor quantifies that
//! degradation; the `rtnn-dynamic` crate's rebuild policy acts on it.

use crate::node::{Bvh, NodeKind};
use rtnn_math::Aabb;

/// Ways a refit request can be invalid.
#[derive(Debug, Clone, PartialEq)]
pub enum RefitError {
    /// The new primitive set has a different size than the tree was built
    /// over — refit cannot change topology; rebuild instead.
    PrimitiveCountChanged {
        /// Primitives the tree owns.
        tree: usize,
        /// Primitives supplied to the refit.
        supplied: usize,
    },
}

impl std::fmt::Display for RefitError {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        match self {
            RefitError::PrimitiveCountChanged { tree, supplied } => write!(
                f,
                "refit cannot change the primitive count (tree has {tree}, supplied {supplied}); rebuild instead"
            ),
        }
    }
}

impl std::error::Error for RefitError {}

/// What a refit did, for logging and policy decisions.
#[derive(Debug, Clone, Copy, PartialEq)]
pub struct RefitStats {
    /// Nodes whose AABB was recomputed (all of them).
    pub nodes_updated: usize,
    /// SAH cost of the tree before the refit.
    pub sah_before: f64,
    /// SAH cost of the tree after the refit.
    pub sah_after: f64,
}

/// Recompute every node AABB of `bvh` bottom-up from `new_prim_aabbs`
/// without re-topologizing. The new primitive set must have exactly the same
/// length as the one the tree was built over; primitive ids keep their
/// meaning.
///
/// Works for any structurally valid tree regardless of node layout (an
/// explicit post-order traversal is used, so children need not follow their
/// parent in the node array).
///
/// In debug and test builds the refitted tree is re-validated with
/// [`crate::validate::validate_bvh`]; a violation is a bug in this function
/// or in the input tree and panics.
pub fn refit_bvh(bvh: &mut Bvh, new_prim_aabbs: &[Aabb]) -> Result<RefitStats, RefitError> {
    if new_prim_aabbs.len() != bvh.prim_aabbs.len() {
        return Err(RefitError::PrimitiveCountChanged {
            tree: bvh.prim_aabbs.len(),
            supplied: new_prim_aabbs.len(),
        });
    }
    let sah_before = bvh.sah_cost();
    if bvh.nodes.is_empty() {
        return Ok(RefitStats {
            nodes_updated: 0,
            sah_before,
            sah_after: sah_before,
        });
    }
    bvh.prim_aabbs.clear();
    bvh.prim_aabbs.extend_from_slice(new_prim_aabbs);

    // Iterative post-order: visit children before recomputing the parent.
    // `(node, expanded)` pairs; on the second visit both children are done.
    let mut stack: Vec<(u32, bool)> = vec![(0, false)];
    while let Some((idx, expanded)) = stack.pop() {
        let node = bvh.nodes[idx as usize];
        match node.kind {
            NodeKind::Leaf { start, count } => {
                let mut aabb = Aabb::EMPTY;
                for &pid in &bvh.prim_indices[start as usize..(start + count) as usize] {
                    aabb.grow_aabb(&bvh.prim_aabbs[pid as usize]);
                }
                bvh.nodes[idx as usize].aabb = aabb;
            }
            NodeKind::Internal { left, right } => {
                if expanded {
                    let aabb = bvh.nodes[left as usize]
                        .aabb
                        .union(&bvh.nodes[right as usize].aabb);
                    bvh.nodes[idx as usize].aabb = aabb;
                } else {
                    stack.push((idx, true));
                    stack.push((left, false));
                    stack.push((right, false));
                }
            }
        }
    }

    #[cfg(any(debug_assertions, test))]
    crate::validate::validate_bvh(bvh).expect("refit produced an invalid BVH");

    Ok(RefitStats {
        nodes_updated: bvh.nodes.len(),
        sah_before,
        sah_after: bvh.sah_cost(),
    })
}

/// Refit helper mirroring [`crate::builder::build_point_bvh`]: primitives
/// are the width-`2·radius` cubes centred at `points` (Listing 1's mapping).
pub fn refit_point_bvh(
    bvh: &mut Bvh,
    points: &[rtnn_math::Vec3],
    radius: f32,
) -> Result<RefitStats, RefitError> {
    let aabbs = rtnn_parallel::par_map(points.len(), |i| Aabb::cube(points[i], 2.0 * radius));
    refit_bvh(bvh, &aabbs)
}

/// A quality monitor for a tree that is refitted across frames: remembers
/// the SAH cost the tree had when it was last *built* and reports the
/// degradation ratio of the current (refitted) tree against it.
#[derive(Debug, Clone, Copy, PartialEq)]
pub struct SahMonitor {
    built_sah: f64,
}

impl SahMonitor {
    /// Record the freshly built tree's SAH cost as the quality baseline.
    pub fn baseline(bvh: &Bvh) -> Self {
        SahMonitor {
            built_sah: bvh.sah_cost(),
        }
    }

    /// The SAH cost at the last rebuild.
    pub fn built_sah(&self) -> f64 {
        self.built_sah
    }

    /// Quality-degradation ratio of `bvh` against the baseline: 1.0 means
    /// as good as freshly built, 2.0 means traversal is predicted to cost
    /// about twice as much. Never below 1.0 (a refit can coincidentally
    /// tighten boxes; the policy only cares about degradation).
    pub fn quality_ratio(&self, bvh: &Bvh) -> f64 {
        if self.built_sah <= 0.0 {
            return 1.0;
        }
        (bvh.sah_cost() / self.built_sah).max(1.0)
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::builder::{build_bvh, build_point_bvh, BuildParams, BvhBuilder};
    use crate::validate::validate_bvh;
    use rtnn_math::Vec3;

    fn grid_points(n_per_axis: usize) -> Vec<Vec3> {
        let mut pts = Vec::new();
        for x in 0..n_per_axis {
            for y in 0..n_per_axis {
                for z in 0..n_per_axis {
                    pts.push(Vec3::new(x as f32, y as f32, z as f32));
                }
            }
        }
        pts
    }

    #[test]
    fn refit_with_identical_primitives_is_a_fixed_point() {
        let pts = grid_points(5);
        for builder in [
            BvhBuilder::Lbvh,
            BvhBuilder::MedianSplit,
            BvhBuilder::BinnedSah,
        ] {
            let params = BuildParams {
                builder,
                max_leaf_size: 4,
            };
            let mut bvh = build_point_bvh(&pts, 0.5, params);
            let reference = bvh.clone();
            let stats = refit_point_bvh(&mut bvh, &pts, 0.5).unwrap();
            assert_eq!(stats.nodes_updated, bvh.nodes.len());
            assert!((stats.sah_after - stats.sah_before).abs() < 1e-9);
            for (a, b) in bvh.nodes.iter().zip(&reference.nodes) {
                assert_eq!(a.aabb, b.aabb, "{builder:?}");
                assert_eq!(a.kind, b.kind);
            }
        }
    }

    #[test]
    fn refit_tracks_moved_primitives_and_stays_valid() {
        let mut pts = grid_points(6);
        let mut bvh = build_point_bvh(&pts, 0.4, BuildParams::default());
        // Drift every point and squash z (an SPH-settle-like motion).
        for (i, p) in pts.iter_mut().enumerate() {
            p.x += 0.3 * ((i % 7) as f32 - 3.0) / 3.0;
            p.z *= 0.8;
        }
        refit_point_bvh(&mut bvh, &pts, 0.4).unwrap();
        validate_bvh(&bvh).unwrap();
        // Every primitive AABB is the cube at its new position.
        for (i, &p) in pts.iter().enumerate() {
            assert_eq!(bvh.prim_aabbs[i], Aabb::cube(p, 0.8));
        }
        // The root must bound all new positions.
        let root = bvh.root_bounds();
        for &p in &pts {
            assert!(root.contains_point(p));
        }
    }

    #[test]
    fn refit_rejects_changed_primitive_count() {
        let pts = grid_points(3);
        let mut bvh = build_point_bvh(&pts, 0.5, BuildParams::default());
        let fewer: Vec<Aabb> = pts[..10].iter().map(|&p| Aabb::cube(p, 1.0)).collect();
        let err = refit_bvh(&mut bvh, &fewer).unwrap_err();
        assert!(matches!(
            err,
            RefitError::PrimitiveCountChanged {
                tree: 27,
                supplied: 10
            }
        ));
        assert!(err.to_string().contains("rebuild instead"));
    }

    #[test]
    fn refit_of_empty_bvh_is_a_noop() {
        let mut bvh = Bvh::empty();
        let stats = refit_bvh(&mut bvh, &[]).unwrap();
        assert_eq!(stats.nodes_updated, 0);
        assert!(bvh.is_empty());
    }

    #[test]
    fn drift_degrades_sah_and_monitor_reports_it() {
        let mut pts = grid_points(8);
        let mut bvh = build_point_bvh(&pts, 0.4, BuildParams::default());
        let monitor = SahMonitor::baseline(&bvh);
        assert!((monitor.quality_ratio(&bvh) - 1.0).abs() < 1e-9);
        // Heavy scrambling drift: points swap regions, so the frozen topology
        // groups far-apart points under common ancestors.
        let n = pts.len();
        for i in 0..n / 2 {
            pts.swap(i, n - 1 - i);
        }
        for (i, p) in pts.iter_mut().enumerate() {
            p.y += ((i % 13) as f32) * 0.9;
        }
        let stats = refit_point_bvh(&mut bvh, &pts, 0.4).unwrap();
        assert!(
            stats.sah_after > stats.sah_before * 1.2,
            "expected clear SAH degradation, got {} -> {}",
            stats.sah_before,
            stats.sah_after
        );
        assert!(monitor.quality_ratio(&bvh) > 1.2);
        // A rebuild restores the baseline-level quality.
        let rebuilt = build_point_bvh(&pts, 0.4, BuildParams::default());
        assert!(rebuilt.sah_cost() < bvh.sah_cost());
    }

    #[test]
    fn refit_works_on_hand_layouts_with_children_before_parents() {
        // Node 0 is an internal root whose children sit at indices 1 and 2 —
        // but build a layout where the *left* child is the last node, so a
        // naive reverse-index sweep would read a stale child box.
        let prim_aabbs = vec![
            Aabb::cube(Vec3::ZERO, 1.0),
            Aabb::cube(Vec3::new(4.0, 0.0, 0.0), 1.0),
        ];
        let mut bvh = build_bvh(
            &prim_aabbs,
            BuildParams {
                builder: BvhBuilder::MedianSplit,
                max_leaf_size: 1,
            },
        );
        // Swap the two leaves in the node array and fix up the root's child
        // indices, producing a valid but reordered layout.
        let NodeKind::Internal { left, right } = bvh.nodes[0].kind else {
            panic!("expected internal root");
        };
        bvh.nodes.swap(left as usize, right as usize);
        bvh.nodes[0].kind = NodeKind::Internal {
            left: right,
            right: left,
        };
        validate_bvh(&bvh).unwrap();
        let moved = vec![
            Aabb::cube(Vec3::new(0.0, 2.0, 0.0), 1.0),
            Aabb::cube(Vec3::new(4.0, -2.0, 0.0), 1.0),
        ];
        refit_bvh(&mut bvh, &moved).unwrap();
        validate_bvh(&bvh).unwrap();
        assert!(bvh.root_bounds().contains_aabb(&moved[0]));
        assert!(bvh.root_bounds().contains_aabb(&moved[1]));
    }
}
