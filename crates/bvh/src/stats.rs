//! Structural statistics of a built BVH.

use crate::node::{Bvh, NodeKind};

/// Summary statistics describing the shape of a BVH.
#[derive(Debug, Clone, Copy, PartialEq)]
pub struct BvhStats {
    /// Total node count.
    pub num_nodes: usize,
    /// Number of leaf nodes.
    pub num_leaves: usize,
    /// Number of internal nodes.
    pub num_internal: usize,
    /// Number of primitives.
    pub num_primitives: usize,
    /// Maximum tree depth (root = 1).
    pub max_depth: usize,
    /// Average number of primitives per leaf.
    pub avg_leaf_size: f64,
    /// Largest leaf.
    pub max_leaf_size: usize,
    /// Sum of leaf AABB volumes (a proxy for how much space step-1 tests
    /// cover; grows with the AABB width exactly as Section 3.2.2 describes).
    pub total_leaf_volume: f64,
}

impl Bvh {
    /// Surface-area-heuristic cost of the tree: the expected traversal work
    /// of a random ray, `Σ SA(node)/SA(root)` weighted by a node-test cost
    /// for internal nodes and by the primitive count for leaves. This is the
    /// quality metric the refit-vs-rebuild policy monitors: a refitted tree
    /// keeps its topology while sibling boxes grow and overlap, which shows
    /// up directly as a rising SAH cost.
    pub fn sah_cost(&self) -> f64 {
        const TRAVERSAL_COST: f64 = 1.0;
        const PRIM_TEST_COST: f64 = 1.0;
        let root_sa = self.root_bounds().surface_area() as f64;
        if root_sa <= 0.0 || self.nodes.is_empty() {
            return 0.0;
        }
        let mut cost = 0.0;
        for node in &self.nodes {
            let sa = node.aabb.surface_area() as f64 / root_sa;
            match node.kind {
                NodeKind::Internal { .. } => cost += TRAVERSAL_COST * sa,
                NodeKind::Leaf { count, .. } => cost += PRIM_TEST_COST * sa * count as f64,
            }
        }
        cost
    }

    /// Compute structural statistics.
    pub fn stats(&self) -> BvhStats {
        let mut num_leaves = 0usize;
        let mut max_leaf = 0usize;
        let mut leaf_prims = 0usize;
        let mut total_leaf_volume = 0.0f64;
        for node in &self.nodes {
            if let NodeKind::Leaf { count, .. } = node.kind {
                num_leaves += 1;
                leaf_prims += count as usize;
                max_leaf = max_leaf.max(count as usize);
                total_leaf_volume += node.aabb.volume() as f64;
            }
        }
        BvhStats {
            num_nodes: self.nodes.len(),
            num_leaves,
            num_internal: self.nodes.len() - num_leaves,
            num_primitives: self.prim_aabbs.len(),
            max_depth: self.depth(),
            avg_leaf_size: if num_leaves == 0 {
                0.0
            } else {
                leaf_prims as f64 / num_leaves as f64
            },
            max_leaf_size: max_leaf,
            total_leaf_volume,
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::builder::{build_point_bvh, BuildParams};
    use rtnn_math::Vec3;

    #[test]
    fn stats_of_empty_bvh() {
        let s = Bvh::empty().stats();
        assert_eq!(s.num_nodes, 0);
        assert_eq!(s.num_leaves, 0);
        assert_eq!(s.avg_leaf_size, 0.0);
    }

    #[test]
    fn stats_are_internally_consistent() {
        let pts: Vec<Vec3> = (0..200)
            .map(|i| Vec3::new((i % 10) as f32, ((i / 10) % 10) as f32, (i / 100) as f32))
            .collect();
        let bvh = build_point_bvh(&pts, 0.4, BuildParams::default());
        let s = bvh.stats();
        assert_eq!(s.num_nodes, s.num_leaves + s.num_internal);
        assert_eq!(s.num_primitives, 200);
        assert!(s.max_leaf_size as u32 <= bvh.max_leaf_size);
        assert!(s.avg_leaf_size > 0.0 && s.avg_leaf_size <= s.max_leaf_size as f64);
        // A binary tree with L leaves has L-1 internal nodes.
        assert_eq!(s.num_internal, s.num_leaves - 1);
        assert!(s.max_depth >= 2);
    }

    #[test]
    fn sah_cost_properties() {
        assert_eq!(Bvh::empty().sah_cost(), 0.0);
        let pts: Vec<Vec3> = (0..200)
            .map(|i| Vec3::new((i % 10) as f32, ((i / 10) % 10) as f32, (i / 100) as f32))
            .collect();
        let bvh = build_point_bvh(&pts, 0.4, BuildParams::default());
        let cost = bvh.sah_cost();
        // The root itself contributes its own weight, so the cost of any
        // non-trivial tree is at least 1.
        assert!(cost >= 1.0, "sah cost {cost}");
        // Wider primitive AABBs overlap more, so the same points at a larger
        // radius must cost more to traverse.
        let wide = build_point_bvh(&pts, 2.0, BuildParams::default());
        assert!(wide.sah_cost() > cost);
    }

    #[test]
    fn leaf_volume_grows_with_aabb_width() {
        // Observation 2: larger per-point AABBs mean more (and bigger) leaf
        // volume, hence more work.
        let pts: Vec<Vec3> = (0..64)
            .map(|i| Vec3::new((i % 4) as f32, ((i / 4) % 4) as f32, (i / 16) as f32))
            .collect();
        let small = build_point_bvh(&pts, 0.2, BuildParams::default()).stats();
        let large = build_point_bvh(&pts, 1.5, BuildParams::default()).stats();
        assert!(large.total_leaf_volume > small.total_leaf_volume);
    }
}
