//! The `RTNN_BUILD_THREADS` knob: how many worker threads structure
//! construction (build + refit) uses.
//!
//! Mirrors the `RTNN_SERVE_*` pattern of `rtnn-serve`: unset variables fall
//! back to the default (machine parallelism), set-but-invalid variables are
//! a configuration error reported with a clear message instead of silently
//! building at the wrong width. The parsing core
//! ([`BuildThreads::from_vars`]) takes an injectable variable source so it
//! is unit-testable without touching the process environment.
//!
//! Thread count never changes *what* is built — the parallel builder is
//! bit-identical to the serial oracle at every width — only how fast.

/// Parsed `RTNN_BUILD_THREADS` setting. `0` means "machine default".
#[derive(Debug, Clone, Copy, PartialEq, Eq, Default)]
pub struct BuildThreads {
    /// Worker threads for structure construction; `0` keeps the machine
    /// default.
    pub threads: usize,
}

impl BuildThreads {
    /// Read `RTNN_BUILD_THREADS` from the environment. A value that is set
    /// but not a positive integer exits the process with a clear message.
    pub fn from_env() -> Self {
        match Self::from_vars(|name| std::env::var(name).ok()) {
            Ok(c) => c,
            Err(msg) => {
                eprintln!("error: {msg}");
                std::process::exit(2);
            }
        }
    }

    /// [`Self::from_env`] with an injectable variable source (testable):
    /// `Ok` with the default for unset/empty, a descriptive error for zero,
    /// garbage, negative or overflowing values.
    pub fn from_vars(get: impl Fn(&str) -> Option<String>) -> Result<Self, String> {
        const NAME: &str = "RTNN_BUILD_THREADS";
        let Some(raw) = get(NAME) else {
            return Ok(Self::default());
        };
        let trimmed = raw.trim();
        if trimmed.is_empty() {
            return Ok(Self::default());
        }
        let threads: usize = trimmed.parse().map_err(|_| {
            format!("{NAME}={raw:?} is not a positive integer (unset it to use the default)")
        })?;
        if threads == 0 {
            return Err(format!(
                "{NAME}=0 is not allowed: the value must be at least 1 (unset it to use the \
                 machine default)"
            ));
        }
        Ok(BuildThreads { threads })
    }

    /// Apply the setting to the process-global worker pool
    /// (`rtnn_parallel::set_num_threads`). Explicitly opt-in because the
    /// pool width is process-global; binaries call this once at startup.
    pub fn apply_global(&self) {
        if self.threads > 0 {
            rtnn_parallel::set_num_threads(self.threads);
        }
    }

    /// Run `f` with this thread count pinned on the calling thread only
    /// (`rtnn_parallel::with_thread_count`) — safe under concurrency,
    /// nothing global is touched. A default (`threads == 0`) setting runs
    /// `f` unscoped.
    pub fn scoped<R>(&self, f: impl FnOnce() -> R) -> R {
        if self.threads > 0 {
            rtnn_parallel::with_thread_count(self.threads, f)
        } else {
            f()
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn unset_or_empty_falls_back_to_the_machine_default() {
        assert_eq!(BuildThreads::from_vars(|_| None).unwrap().threads, 0);
        let c = BuildThreads::from_vars(|_| Some("  ".to_string())).unwrap();
        assert_eq!(c, BuildThreads::default());
    }

    #[test]
    fn valid_values_override() {
        let c = BuildThreads::from_vars(|n| {
            assert_eq!(n, "RTNN_BUILD_THREADS");
            Some("6".to_string())
        })
        .unwrap();
        assert_eq!(c.threads, 6);
        assert_eq!(c.scoped(rtnn_parallel::current_num_threads), 6);
    }

    #[test]
    fn zero_and_garbage_are_rejected_with_clear_errors() {
        for bad in ["0", "many", "-2", "1.5"] {
            let err = BuildThreads::from_vars(|_| Some(bad.to_string())).unwrap_err();
            assert!(
                err.contains("RTNN_BUILD_THREADS"),
                "error for {bad} must name the variable: {err}"
            );
            assert!(
                err.contains("default"),
                "error must mention the fallback: {err}"
            );
        }
    }

    #[test]
    fn default_setting_scopes_nothing() {
        let outside = rtnn_parallel::current_num_threads();
        assert_eq!(
            BuildThreads::default().scoped(rtnn_parallel::current_num_threads),
            outside
        );
    }
}
