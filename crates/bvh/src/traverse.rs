//! Stack-based BVH traversal with OptiX intersection semantics.
//!
//! Traversal visits every node whose AABB intersects the ray (Conditions 1
//! and 2 of the paper); at leaves, each primitive AABB is tested against the
//! ray and, on a hit, the caller-supplied visitor — the IS shader in OptiX
//! terms — is invoked with the primitive id. The visitor can terminate the
//! ray (the AH shader's `optixTerminateRay`, used by RTNN when `K`
//! neighbors have been found).
//!
//! Two entry points:
//!
//! * [`Bvh::traverse`] — counts work (node visits, primitive tests) without
//!   recording which nodes were touched; used by correctness tests and CPU
//!   oracles.
//! * [`Bvh::traverse_traced`] — additionally appends the indices of visited
//!   nodes and scanned primitive slots to a [`TraversalTrace`]; the GPU
//!   simulator replays those as memory accesses for cache and divergence
//!   modelling.

use crate::node::{Bvh, NodeKind};
use rtnn_math::Ray;

/// Visitor verdict after a primitive hit (the IS/AH shader return).
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum TraversalControl {
    /// Keep traversing.
    Continue,
    /// Terminate this ray immediately (AH shader termination).
    Terminate,
}

/// Per-ray work counters produced by a traversal.
#[derive(Debug, Clone, Copy, Default, PartialEq, Eq)]
pub struct TraversalStats {
    /// BVH nodes whose AABB was tested against the ray (internal + leaf).
    pub nodes_visited: u64,
    /// Leaf nodes entered.
    pub leaves_visited: u64,
    /// Primitive AABBs tested against the ray inside leaves.
    pub prim_tests: u64,
    /// Primitive AABB tests that hit, i.e. IS shader invocations.
    pub is_calls: u64,
    /// Whether the visitor terminated the ray early.
    pub terminated: bool,
}

impl TraversalStats {
    /// Accumulate another ray's stats into this one.
    pub fn merge(&mut self, other: &TraversalStats) {
        self.nodes_visited += other.nodes_visited;
        self.leaves_visited += other.leaves_visited;
        self.prim_tests += other.prim_tests;
        self.is_calls += other.is_calls;
        self.terminated |= other.terminated;
    }
}

/// The memory-touch trace of one ray: which node slots and primitive slots
/// it read, in order. Slot indices (not byte addresses) are recorded; the
/// simulator maps them onto its address space.
#[derive(Debug, Clone, Default)]
pub struct TraversalTrace {
    /// Indices into `Bvh::nodes`, in visit order.
    pub node_visits: Vec<u32>,
    /// Indices into `Bvh::prim_indices` (leaf slots), in test order.
    pub prim_visits: Vec<u32>,
}

impl TraversalTrace {
    /// Clear the trace for reuse.
    pub fn clear(&mut self) {
        self.node_visits.clear();
        self.prim_visits.clear();
    }
}

impl Bvh {
    /// Traverse the BVH with `ray`, invoking `on_hit(prim_id)` for every
    /// primitive whose AABB the ray intersects. Returns work counters.
    pub fn traverse<F>(&self, ray: &Ray, mut on_hit: F) -> TraversalStats
    where
        F: FnMut(u32) -> TraversalControl,
    {
        self.traverse_impl(ray, &mut on_hit, None)
    }

    /// As [`Bvh::traverse`], additionally recording the visited node /
    /// primitive slots into `trace` (which is cleared first).
    pub fn traverse_traced<F>(
        &self,
        ray: &Ray,
        trace: &mut TraversalTrace,
        mut on_hit: F,
    ) -> TraversalStats
    where
        F: FnMut(u32) -> TraversalControl,
    {
        trace.clear();
        self.traverse_impl(ray, &mut on_hit, Some(trace))
    }

    fn traverse_impl<F>(
        &self,
        ray: &Ray,
        on_hit: &mut F,
        mut trace: Option<&mut TraversalTrace>,
    ) -> TraversalStats
    where
        F: FnMut(u32) -> TraversalControl,
    {
        let mut stats = TraversalStats::default();
        if self.nodes.is_empty() {
            return stats;
        }
        // Explicit stack; depth is bounded by tree depth which is O(log n)
        // for our builders, but size generously to cope with skewed trees.
        let mut stack: Vec<u32> = Vec::with_capacity(64);
        stack.push(0);
        'rays: while let Some(node_idx) = stack.pop() {
            let node = &self.nodes[node_idx as usize];
            stats.nodes_visited += 1;
            if let Some(t) = trace.as_deref_mut() {
                t.node_visits.push(node_idx);
            }
            if !node.aabb.intersects_ray(ray) {
                continue;
            }
            match node.kind {
                NodeKind::Internal { left, right } => {
                    stack.push(right);
                    stack.push(left);
                }
                NodeKind::Leaf { start, count } => {
                    stats.leaves_visited += 1;
                    for slot in start..start + count {
                        let prim_id = self.prim_indices[slot as usize];
                        stats.prim_tests += 1;
                        if let Some(t) = trace.as_deref_mut() {
                            t.prim_visits.push(slot);
                        }
                        if self.prim_aabbs[prim_id as usize].intersects_ray(ray) {
                            stats.is_calls += 1;
                            if on_hit(prim_id) == TraversalControl::Terminate {
                                stats.terminated = true;
                                break 'rays;
                            }
                        }
                    }
                }
            }
        }
        stats
    }

    /// Collect every primitive id whose AABB contains `query` (i.e. would
    /// trigger the IS shader for a point-probe ray from `query`). Reference
    /// helper used by tests and by the first-hit scheduling pass oracle.
    pub fn primitives_containing(&self, query: rtnn_math::Vec3) -> Vec<u32> {
        let mut out = Vec::new();
        self.traverse(&Ray::point_probe(query), |pid| {
            out.push(pid);
            TraversalControl::Continue
        });
        out
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::builder::{build_point_bvh, BuildParams};
    use rtnn_math::{Aabb, Vec3};

    fn sample_points() -> Vec<Vec3> {
        let mut pts = Vec::new();
        for x in 0..5 {
            for y in 0..5 {
                for z in 0..5 {
                    pts.push(Vec3::new(x as f32, y as f32, z as f32));
                }
            }
        }
        pts
    }

    #[test]
    fn empty_bvh_traversal_is_a_noop() {
        let bvh = Bvh::empty();
        let stats = bvh.traverse(&Ray::point_probe(Vec3::ZERO), |_| {
            TraversalControl::Continue
        });
        assert_eq!(stats, TraversalStats::default());
    }

    #[test]
    fn traversal_finds_exactly_the_enclosing_aabbs() {
        let points = sample_points();
        let radius = 0.9;
        let bvh = build_point_bvh(&points, radius, BuildParams::default());
        let query = Vec3::new(1.2, 2.1, 3.3);
        let mut hits = bvh.primitives_containing(query);
        hits.sort();
        // Brute-force expectation: points whose width-2r cube contains query.
        let mut expected: Vec<u32> = points
            .iter()
            .enumerate()
            .filter(|(_, &p)| Aabb::cube(p, 2.0 * radius).contains_point(query))
            .map(|(i, _)| i as u32)
            .collect();
        expected.sort();
        assert_eq!(hits, expected);
        assert!(!expected.is_empty());
    }

    #[test]
    fn early_termination_stops_the_ray() {
        let points = sample_points();
        let bvh = build_point_bvh(&points, 2.0, BuildParams::default());
        let query = Vec3::new(2.0, 2.0, 2.0);
        let mut count = 0;
        let stats = bvh.traverse(&Ray::point_probe(query), |_| {
            count += 1;
            if count == 3 {
                TraversalControl::Terminate
            } else {
                TraversalControl::Continue
            }
        });
        assert_eq!(count, 3);
        assert!(stats.terminated);
        assert_eq!(stats.is_calls, 3);
        // Without termination there are far more than 3 enclosing AABBs.
        assert!(bvh.primitives_containing(query).len() > 3);
    }

    #[test]
    fn stats_relationships_hold() {
        let points = sample_points();
        let bvh = build_point_bvh(&points, 0.7, BuildParams::default());
        let stats = bvh.traverse(&Ray::point_probe(Vec3::new(2.5, 2.5, 2.5)), |_| {
            TraversalControl::Continue
        });
        assert!(stats.nodes_visited >= stats.leaves_visited);
        assert!(stats.prim_tests >= stats.is_calls);
        assert!(!stats.terminated);
    }

    #[test]
    fn trace_records_every_visited_node() {
        let points = sample_points();
        let bvh = build_point_bvh(&points, 0.7, BuildParams::default());
        let mut trace = TraversalTrace::default();
        let stats = bvh.traverse_traced(
            &Ray::point_probe(Vec3::new(2.5, 2.5, 2.5)),
            &mut trace,
            |_| TraversalControl::Continue,
        );
        assert_eq!(trace.node_visits.len() as u64, stats.nodes_visited);
        assert_eq!(trace.prim_visits.len() as u64, stats.prim_tests);
        assert_eq!(trace.node_visits[0], 0, "traversal starts at the root");
        // Reusing the trace clears previous contents.
        let stats2 = bvh.traverse_traced(
            &Ray::point_probe(Vec3::new(-10.0, 0.0, 0.0)),
            &mut trace,
            |_| TraversalControl::Continue,
        );
        assert_eq!(trace.node_visits.len() as u64, stats2.nodes_visited);
        assert_eq!(stats2.is_calls, 0);
    }

    #[test]
    fn far_away_query_visits_only_the_root() {
        let points = sample_points();
        let bvh = build_point_bvh(&points, 0.5, BuildParams::default());
        let stats = bvh.traverse(&Ray::point_probe(Vec3::new(1000.0, 1000.0, 1000.0)), |_| {
            TraversalControl::Continue
        });
        assert_eq!(stats.nodes_visited, 1);
        assert_eq!(stats.is_calls, 0);
    }

    #[test]
    fn merge_accumulates() {
        let mut a = TraversalStats {
            nodes_visited: 1,
            leaves_visited: 1,
            prim_tests: 2,
            is_calls: 1,
            terminated: false,
        };
        let b = TraversalStats {
            nodes_visited: 3,
            leaves_visited: 1,
            prim_tests: 4,
            is_calls: 2,
            terminated: true,
        };
        a.merge(&b);
        assert_eq!(a.nodes_visited, 4);
        assert_eq!(a.prim_tests, 6);
        assert_eq!(a.is_calls, 3);
        assert!(a.terminated);
    }

    #[test]
    fn coherent_queries_share_traversal_paths() {
        // Two nearby queries touch mostly the same nodes; two distant queries
        // do not. This is the microscopic fact behind Observation 1.
        let points = sample_points();
        let bvh = build_point_bvh(&points, 0.9, BuildParams::default());
        let trace_of = |q: Vec3| {
            let mut t = TraversalTrace::default();
            bvh.traverse_traced(&Ray::point_probe(q), &mut t, |_| TraversalControl::Continue);
            t.node_visits
                .iter()
                .copied()
                .collect::<std::collections::HashSet<_>>()
        };
        let a = trace_of(Vec3::new(1.0, 1.0, 1.0));
        let b = trace_of(Vec3::new(1.1, 1.05, 0.95));
        let c = trace_of(Vec3::new(3.9, 3.9, 3.9));
        let overlap = |x: &std::collections::HashSet<u32>, y: &std::collections::HashSet<u32>| {
            x.intersection(y).count() as f64 / x.union(y).count().max(1) as f64
        };
        assert!(overlap(&a, &b) > overlap(&a, &c));
    }
}
