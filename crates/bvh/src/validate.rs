//! Structural validation of BVHs, used by tests and property tests.

use crate::node::{Bvh, NodeKind};

/// Ways a BVH can be malformed.
#[derive(Debug, Clone, PartialEq)]
pub enum BvhValidationError {
    /// A non-empty primitive set with no nodes (or vice versa).
    EmptyMismatch,
    /// A node's child index points outside the node array.
    ChildOutOfRange { node: usize, child: u32 },
    /// A node is referenced as a child more than once (the tree is a DAG or
    /// contains a cycle).
    NodeVisitedTwice { node: usize },
    /// Some node is unreachable from the root.
    UnreachableNodes { expected: usize, visited: usize },
    /// `prim_indices` is not a permutation-sized table over the primitives
    /// (the two arrays disagree in length).
    IndexTableSizeMismatch { indices: usize, primitives: usize },
    /// A leaf slot references a primitive id outside `prim_aabbs`.
    PrimIdOutOfRange { node: usize, prim: u32 },
    /// A leaf range points outside `prim_indices`.
    LeafRangeOutOfBounds { node: usize },
    /// A leaf exceeds the configured maximum leaf size.
    LeafTooLarge { node: usize, count: u32, max: u32 },
    /// A primitive id appears in zero or multiple leaves.
    PrimitiveCoverage { prim: u32, occurrences: usize },
    /// A parent AABB does not enclose one of its children.
    ParentDoesNotEncloseChild { parent: usize, child: usize },
    /// A leaf AABB does not enclose one of its primitives.
    LeafDoesNotEnclosePrimitive { node: usize, prim: u32 },
}

/// Check every structural invariant of `bvh`. Returns `Ok(())` for valid
/// hierarchies (including the empty one).
pub fn validate_bvh(bvh: &Bvh) -> Result<(), BvhValidationError> {
    if bvh.nodes.is_empty() || bvh.prim_aabbs.is_empty() {
        return if bvh.nodes.is_empty() && bvh.prim_aabbs.is_empty() && bvh.prim_indices.is_empty() {
            Ok(())
        } else {
            Err(BvhValidationError::EmptyMismatch)
        };
    }

    if bvh.prim_indices.len() != bvh.prim_aabbs.len() {
        return Err(BvhValidationError::IndexTableSizeMismatch {
            indices: bvh.prim_indices.len(),
            primitives: bvh.prim_aabbs.len(),
        });
    }

    let n_nodes = bvh.nodes.len();
    let mut visited = vec![false; n_nodes];
    let mut prim_seen = vec![0usize; bvh.prim_aabbs.len()];
    let mut stack = vec![0usize];
    let mut visited_count = 0usize;

    while let Some(idx) = stack.pop() {
        if visited[idx] {
            return Err(BvhValidationError::NodeVisitedTwice { node: idx });
        }
        visited[idx] = true;
        visited_count += 1;
        let node = &bvh.nodes[idx];
        match node.kind {
            NodeKind::Internal { left, right } => {
                for child in [left, right] {
                    if child as usize >= n_nodes {
                        return Err(BvhValidationError::ChildOutOfRange { node: idx, child });
                    }
                    let child_aabb = &bvh.nodes[child as usize].aabb;
                    if !node.aabb.expanded(1e-5).contains_aabb(child_aabb) {
                        return Err(BvhValidationError::ParentDoesNotEncloseChild {
                            parent: idx,
                            child: child as usize,
                        });
                    }
                    stack.push(child as usize);
                }
            }
            NodeKind::Leaf { start, count } => {
                let end = start as usize + count as usize;
                if end > bvh.prim_indices.len() {
                    return Err(BvhValidationError::LeafRangeOutOfBounds { node: idx });
                }
                if count > bvh.max_leaf_size {
                    return Err(BvhValidationError::LeafTooLarge {
                        node: idx,
                        count,
                        max: bvh.max_leaf_size,
                    });
                }
                for &pid in &bvh.prim_indices[start as usize..end] {
                    if pid as usize >= bvh.prim_aabbs.len() {
                        return Err(BvhValidationError::PrimIdOutOfRange {
                            node: idx,
                            prim: pid,
                        });
                    }
                    prim_seen[pid as usize] += 1;
                    if !node
                        .aabb
                        .expanded(1e-5)
                        .contains_aabb(&bvh.prim_aabbs[pid as usize])
                    {
                        return Err(BvhValidationError::LeafDoesNotEnclosePrimitive {
                            node: idx,
                            prim: pid,
                        });
                    }
                }
            }
        }
    }

    if visited_count != n_nodes {
        return Err(BvhValidationError::UnreachableNodes {
            expected: n_nodes,
            visited: visited_count,
        });
    }
    for (prim, &occ) in prim_seen.iter().enumerate() {
        if occ != 1 {
            return Err(BvhValidationError::PrimitiveCoverage {
                prim: prim as u32,
                occurrences: occ,
            });
        }
    }
    Ok(())
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::builder::{build_bvh, BuildParams, BvhBuilder};
    use crate::node::BvhNode;
    use rtnn_math::{Aabb, Vec3};

    fn valid_two_prim_bvh() -> Bvh {
        let prim_aabbs = vec![
            Aabb::cube(Vec3::ZERO, 1.0),
            Aabb::cube(Vec3::new(4.0, 0.0, 0.0), 1.0),
        ];
        build_bvh(
            &prim_aabbs,
            BuildParams {
                builder: BvhBuilder::MedianSplit,
                max_leaf_size: 1,
            },
        )
    }

    #[test]
    fn empty_is_valid() {
        assert_eq!(validate_bvh(&Bvh::empty()), Ok(()));
    }

    #[test]
    fn built_trees_are_valid() {
        assert_eq!(validate_bvh(&valid_two_prim_bvh()), Ok(()));
    }

    #[test]
    fn detects_shrunk_parent() {
        let mut bvh = valid_two_prim_bvh();
        bvh.nodes[0].aabb = Aabb::cube(Vec3::ZERO, 0.1);
        assert!(matches!(
            validate_bvh(&bvh),
            Err(BvhValidationError::ParentDoesNotEncloseChild { .. })
                | Err(BvhValidationError::LeafDoesNotEnclosePrimitive { .. })
        ));
    }

    #[test]
    fn detects_duplicate_primitive() {
        // Two identical primitives so leaf enclosure still holds; then alias
        // both leaf slots to primitive 0 so coverage is the only violation.
        let prim_aabbs = vec![Aabb::cube(Vec3::ZERO, 1.0); 2];
        let mut bvh = build_bvh(
            &prim_aabbs,
            BuildParams {
                builder: BvhBuilder::MedianSplit,
                max_leaf_size: 1,
            },
        );
        for slot in bvh.prim_indices.iter_mut() {
            *slot = 0;
        }
        assert!(matches!(
            validate_bvh(&bvh),
            Err(BvhValidationError::PrimitiveCoverage { .. })
        ));
    }

    #[test]
    fn detects_oversized_leaf() {
        let prim_aabbs = vec![Aabb::cube(Vec3::ZERO, 1.0); 3];
        let mut bvh = build_bvh(
            &prim_aabbs,
            BuildParams {
                builder: BvhBuilder::MedianSplit,
                max_leaf_size: 4,
            },
        );
        bvh.max_leaf_size = 1; // pretend the builder was configured tighter
        assert!(matches!(
            validate_bvh(&bvh),
            Err(BvhValidationError::LeafTooLarge { .. })
        ));
    }

    #[test]
    fn detects_child_cycle() {
        let mut bvh = valid_two_prim_bvh();
        // Make the root's right child the root itself.
        if let NodeKind::Internal { left, .. } = bvh.nodes[0].kind {
            bvh.nodes[0].kind = NodeKind::Internal { left, right: 0 };
        }
        assert!(matches!(
            validate_bvh(&bvh),
            Err(BvhValidationError::NodeVisitedTwice { .. })
                | Err(BvhValidationError::UnreachableNodes { .. })
        ));
    }

    #[test]
    fn detects_unreachable_node() {
        let mut bvh = valid_two_prim_bvh();
        bvh.nodes.push(BvhNode {
            aabb: Aabb::cube(Vec3::ZERO, 1.0),
            kind: NodeKind::Leaf { start: 0, count: 0 },
        });
        assert!(matches!(
            validate_bvh(&bvh),
            Err(BvhValidationError::UnreachableNodes { .. })
        ));
    }

    #[test]
    fn detects_index_table_size_mismatch() {
        let mut bvh = valid_two_prim_bvh();
        bvh.prim_indices.push(0);
        assert!(matches!(
            validate_bvh(&bvh),
            Err(BvhValidationError::IndexTableSizeMismatch {
                indices: 3,
                primitives: 2
            })
        ));
    }

    #[test]
    fn detects_out_of_range_primitive_id() {
        let mut bvh = valid_two_prim_bvh();
        bvh.prim_indices[0] = 99;
        assert!(matches!(
            validate_bvh(&bvh),
            Err(BvhValidationError::PrimIdOutOfRange { prim: 99, .. })
                | Err(BvhValidationError::LeafDoesNotEnclosePrimitive { .. })
        ));
    }

    #[test]
    fn detects_empty_mismatch() {
        let mut bvh = Bvh::empty();
        bvh.prim_aabbs.push(Aabb::cube(Vec3::ZERO, 1.0));
        assert_eq!(validate_bvh(&bvh), Err(BvhValidationError::EmptyMismatch));
    }
}
