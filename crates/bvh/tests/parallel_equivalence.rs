//! Property tests pinning the parallel construction path to the serial
//! oracle: for arbitrary clouds, at every tested thread count, the staged
//! parallel LBVH pipeline must produce a **bit-identical** tree to
//! `BvhBuilder::LbvhSerial`, and the subtree-parallel refit must leave the
//! tree in exactly the state the serial refit produces — across all three
//! drift generators (`rtnn_data::dynamics`), over several motion frames.
//!
//! "Bit-identical" is byte-for-byte: same primitive order, same node
//! layout, same AABB bit patterns. Thread count may change only how fast
//! the structure is built, never a single bit of it.

use proptest::prelude::*;
use rtnn_bvh::{
    build_bvh_profiled, refit_bvh_serial, refit_bvh_with_cut, validate_bvh, BuildParams, Bvh,
    BvhBuilder,
};
use rtnn_data::dynamics::{DriftModel, DriftScene};
use rtnn_data::PointCloud;
use rtnn_math::{Aabb, Vec3};
use rtnn_parallel::with_thread_count;

fn point_in(half: f32) -> impl Strategy<Value = Vec3> {
    (-half..half, -half..half, -half..half).prop_map(|(x, y, z)| Vec3::new(x, y, z))
}

fn cloud_strategy() -> impl Strategy<Value = Vec<Vec3>> {
    prop::collection::vec(point_in(8.0), 1..120)
}

fn drift_model(idx: usize) -> DriftModel {
    match idx % 3 {
        0 => DriftModel::SphSettle {
            compression: 0.9,
            jitter: 0.05,
        },
        1 => DriftModel::NBodyOrbit { angular_step: 0.2 },
        _ => DriftModel::LidarSweep {
            velocity: Vec3::new(0.4, 0.1, 0.0),
            // No churn: refit requires a fixed primitive count.
            churn_fraction: 0.0,
        },
    }
}

fn aabbs_for(points: &[Vec3], width: f32) -> Vec<Aabb> {
    points.iter().map(|&p| Aabb::cube(p, width)).collect()
}

fn assert_trees_bit_identical(got: &Bvh, want: &Bvh, context: &str) -> Result<(), TestCaseError> {
    prop_assert!(
        got.prim_indices == want.prim_indices,
        "{context}: primitive order diverged"
    );
    prop_assert!(
        got.nodes.len() == want.nodes.len(),
        "{context}: node count {} vs {}",
        got.nodes.len(),
        want.nodes.len()
    );
    for (i, (g, w)) in got.nodes.iter().zip(&want.nodes).enumerate() {
        prop_assert!(g.kind == w.kind, "{context}: node {i} kind differs");
        prop_assert!(
            g.aabb.min.to_array().map(f32::to_bits) == w.aabb.min.to_array().map(f32::to_bits)
                && g.aabb.max.to_array().map(f32::to_bits)
                    == w.aabb.max.to_array().map(f32::to_bits),
            "{context}: node {i} bounds differ in bits: {:?} vs {:?}",
            g.aabb,
            w.aabb
        );
    }
    Ok(())
}

proptest! {
    #![proptest_config(ProptestConfig { cases: 12, ..ProptestConfig::default() })]

    #[test]
    fn parallel_build_is_bit_identical_at_every_thread_count(
        points in cloud_strategy(),
        width in 0.1f32..2.0,
        max_leaf in 1u32..5,
    ) {
        let aabbs = aabbs_for(&points, width);
        let serial_params = BuildParams {
            builder: BvhBuilder::LbvhSerial,
            max_leaf_size: max_leaf,
        };
        let parallel_params = BuildParams {
            builder: BvhBuilder::Lbvh,
            max_leaf_size: max_leaf,
        };
        let (oracle, _) = build_bvh_profiled(&aabbs, serial_params);
        validate_bvh(&oracle).unwrap();
        for threads in [1usize, 2, 6] {
            let (tree, profile) =
                with_thread_count(threads, || build_bvh_profiled(&aabbs, parallel_params));
            assert_trees_bit_identical(&tree, &oracle, &format!("{threads} threads"))?;
            prop_assert!(profile.host_wall_ms > 0.0);
            prop_assert!(profile.work_ms > 0.0);
        }
    }

    #[test]
    fn parallel_refit_matches_the_serial_oracle_across_drift_generators(
        points in cloud_strategy(),
        width in 0.2f32..1.5,
        model_idx in 0usize..3,
        seed in any::<u64>(),
        frames in 1usize..4,
    ) {
        let params = BuildParams {
            builder: BvhBuilder::Lbvh,
            max_leaf_size: 4,
        };
        let built = build_bvh_profiled(&aabbs_for(&points, width), params).0;
        let mut scene = DriftScene::new(
            &PointCloud::new("prop", points),
            drift_model(model_idx),
            seed,
        );
        let mut serial_tree = built.clone();
        for frame in 0..frames {
            scene.step();
            let moved = aabbs_for(&scene.live_points(), width);
            refit_bvh_serial(&mut serial_tree, &moved).unwrap();
            for threads in [1usize, 2, 5] {
                for cut in [0u32, 2, 8] {
                    let mut tree = built.clone();
                    // Catch up to the serial tree's frame, then refit the
                    // final frame through the parallel path under test.
                    let (stats, profile) = with_thread_count(threads, || {
                        refit_bvh_with_cut(&mut tree, &moved, cut)
                    })
                    .unwrap();
                    let context =
                        format!("model {model_idx} frame {frame} threads {threads} cut {cut}");
                    assert_trees_bit_identical(&tree, &serial_tree, &context)?;
                    prop_assert!(
                        tree.prim_aabbs == serial_tree.prim_aabbs,
                        "{context}: adopted primitive boxes differ"
                    );
                    prop_assert_eq!(stats.nodes_updated, tree.nodes.len());
                    prop_assert!(profile.host_wall_ms >= 0.0);
                    validate_bvh(&tree).unwrap();
                }
            }
        }
    }
}
