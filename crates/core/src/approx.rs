//! Approximate neighbor search (Section 8 of the paper).
//!
//! Two relaxations, both trading recall or a bounded distance error for
//! speed:
//!
//! * **Shrunken AABBs**: build the BVH with per-point AABBs smaller than the
//!   `2r` correctness requires. Neighbors near the corners of the search
//!   sphere may be missed, but every returned neighbor is still within `r`,
//!   and the search touches fewer AABBs (Observation 2 makes this a direct
//!   performance knob).
//! * **Elided sphere test**: treat any query inside a point's AABB as inside
//!   its sphere. Returned "neighbors" are then guaranteed to lie within
//!   `√3·r` of the query (the AABB half-diagonal), and the expensive step-2
//!   work disappears entirely.

use crate::plan::PlanError;
use serde::{Deserialize, Serialize};

/// The approximation mode of a search.
#[derive(Debug, Clone, Copy, PartialEq, Default, Serialize, Deserialize)]
pub enum ApproxMode {
    /// Exact search (the default).
    #[default]
    Exact,
    /// Build per-point AABBs of width `2r · factor` with `factor ∈ (0, 1]`.
    /// Every reported neighbor is within `r`; neighbors farther than
    /// `r · factor` along some axis may be missed.
    ShrunkenAabb {
        /// Width multiplier in `(0, 1]`.
        factor: f32,
    },
    /// Skip the point-in-sphere test (range search only): reported neighbors
    /// are within `√3 · r`.
    SkipSphereTest,
}

impl ApproxMode {
    /// Multiplier applied to the `2r` AABB width when building acceleration
    /// structures.
    pub fn aabb_width_factor(&self) -> f32 {
        match self {
            ApproxMode::ShrunkenAabb { factor } => *factor,
            _ => 1.0,
        }
    }

    /// True if the range-search IS shader should skip the sphere test.
    pub fn skip_sphere_test(&self) -> bool {
        matches!(self, ApproxMode::SkipSphereTest)
    }

    /// Upper bound on the distance of any reported neighbor from the query,
    /// for a search radius `radius`.
    pub fn distance_bound(&self, radius: f32) -> f32 {
        match self {
            ApproxMode::Exact | ApproxMode::ShrunkenAabb { .. } => radius,
            ApproxMode::SkipSphereTest => radius * 3.0_f32.sqrt(),
        }
    }

    /// True when the mode guarantees that *all* neighbors within `r` are
    /// reported (up to the `K` cap).
    pub fn is_exact(&self) -> bool {
        matches!(self, ApproxMode::Exact)
    }

    /// Validate the mode's parameters; violations are typed
    /// [`PlanError`]s naming the offending field.
    pub fn validate(&self) -> Result<(), PlanError> {
        if let ApproxMode::ShrunkenAabb { factor } = self {
            if !(*factor > 0.0 && *factor <= 1.0) {
                return Err(PlanError::InvalidShrinkFactor { factor: *factor });
            }
        }
        Ok(())
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn exact_is_the_default_and_exact() {
        let m = ApproxMode::default();
        assert!(m.is_exact());
        assert_eq!(m.aabb_width_factor(), 1.0);
        assert!(!m.skip_sphere_test());
        assert_eq!(m.distance_bound(2.0), 2.0);
        assert!(m.validate().is_ok());
    }

    #[test]
    fn shrunken_aabb_parameters() {
        let m = ApproxMode::ShrunkenAabb { factor: 0.5 };
        assert!(!m.is_exact());
        assert_eq!(m.aabb_width_factor(), 0.5);
        assert_eq!(m.distance_bound(1.0), 1.0); // never returns anything beyond r
        assert!(m.validate().is_ok());
        assert!(ApproxMode::ShrunkenAabb { factor: 0.0 }.validate().is_err());
        assert!(ApproxMode::ShrunkenAabb { factor: 1.5 }.validate().is_err());
    }

    #[test]
    fn skip_sphere_test_bound_is_sqrt3_r() {
        let m = ApproxMode::SkipSphereTest;
        assert!(m.skip_sphere_test());
        assert!((m.distance_bound(1.0) - 3.0_f32.sqrt()).abs() < 1e-6);
        assert!(!m.is_exact());
    }
}
