//! Online, per-signature stage selection: the `AutoTuner`.
//!
//! The RTNN ablation (fig13 / fig_stages) shows that the full optimisation
//! pipeline is *not* universally good — `nbody_9m range` runs ~20% slower
//! under `OptLevel::Full` than with everything off, while the same pipeline
//! is a large win on the LiDAR clouds. Which stages pay off depends on the
//! (plan kind, scene density, backend) regime, which is exactly the
//! [`Signature`](rtnn_telemetry::Signature) the continuous
//! [`SignatureProfiler`](rtnn_telemetry::SignatureProfiler) keys its
//! measurements by. This module closes that loop:
//!
//! ```text
//!                       ┌──────────────────────────────────────────────┐
//!                       │                 AutoTuner                    │
//!   query (plan kind,   │  signature seen before?                      │
//!   points, backend) ──▶│   no  ─▶ cost-model first shot (calibrated   │
//!                       │          k1/k2/k3 coefficients)              │
//!                       │   yes ─▶ unmeasured arm left? round-robin it │
//!                       │          else ε-greedy: mostly exploit the   │
//!                       │          cheapest measured arm (EWMA + p50), │
//!                       │          occasionally re-explore (seeded)    │
//!                       └──────────────┬───────────────────────────────┘
//!                                      │ TunerDecision (an OptLevel arm)
//!                                      ▼
//!                     StageOverrides::for_level(level) ─▶ pipeline
//!                                      │
//!                  per-stage device timings (net of structure builds)
//!                                      │
//!                                      ▼
//!                          AutoTuner::observe (EWMA fold)
//! ```
//!
//! The four arms are the [`OptLevel`] ladder expressed as fully pinned
//! [`StageOverrides`] sets, so a decision changes *which stages run*, never
//! the answer: every arm is already pinned bit-equal across the ladder and
//! across backends by the repo's reproducibility tests. Decisions are a
//! deterministic function of `(seed, decision history, observations)` — the
//! ε-greedy draw uses a counted SplitMix64 stream, never wall-clock or OS
//! randomness — so a replayed profile yields an identical decision
//! sequence.
//!
//! Observations are folded *net of structure-build cost*: the width-keyed
//! `Accel` cache amortises builds to zero in steady state, so charging an
//! arm for the one-time builds its first visit happens to trigger would
//! bias the policy against partitioning forever. The cost model already
//! prices builds explicitly for the cold start.

use crate::cost_model::CostCoefficients;
use crate::engine::OptLevel;
use crate::pipeline::StageOverrides;
use rtnn_telemetry::{density_bucket, ProfileSnapshot};
use std::collections::BTreeMap;

/// Default policy seed (any fixed value works; tests pin this one).
pub const DEFAULT_SEED: u64 = 0x52_54_4E_4E; // "RTNN"

/// Default ε: fraction of steady-state decisions spent re-exploring a
/// non-best arm so a drifting scene can escape a stale choice.
pub const DEFAULT_EPSILON: f64 = 0.05;

/// EWMA decay for measured arm timings (matches the profiler's
/// `DEFAULT_DECAY_ALPHA`).
const DECAY_ALPHA: f64 = 0.2;

/// Observations kept per arm for the exact p50 (small and bounded: the
/// tuner is consulted on every query).
const P50_WINDOW: usize = 9;

/// Whether an [`Index`](crate::Index) picks its pipeline stages statically
/// (from [`EngineConfig::opt`](crate::EngineConfig)) or through a seeded
/// [`AutoTuner`]. Carried by value on the `Copy` config; the mutable tuner
/// state itself lives on the index / dynamic index / query service.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Default)]
pub enum Tuning {
    /// `EngineConfig::opt` decides every stage (the historical behaviour).
    #[default]
    Static,
    /// An [`AutoTuner`] seeded with `seed` picks an [`OptLevel`] arm per
    /// query from the cost model and measured per-stage timings.
    Auto {
        /// Policy seed for the deterministic ε-greedy stream.
        seed: u64,
    },
}

impl Tuning {
    /// Auto tuning under the default seed.
    pub fn auto() -> Self {
        Tuning::Auto { seed: DEFAULT_SEED }
    }

    /// True for [`Tuning::Auto`].
    pub fn is_auto(&self) -> bool {
        matches!(self, Tuning::Auto { .. })
    }
}

/// Why a decision picked its arm.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum DecisionSource {
    /// First decision for the signature: the calibrated cost model's
    /// estimate (no measurements exist yet).
    CostModel,
    /// Bootstrap or ε re-exploration: the arm was chosen to gather a
    /// measurement, not because it currently looks best.
    Explore,
    /// Steady state: the cheapest arm by measured EWMA mean + p50.
    Measured,
}

/// One tuner decision: the [`OptLevel`] arm to run and why it was picked.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub struct TunerDecision {
    /// The chosen arm.
    pub level: OptLevel,
    /// How the arm was chosen.
    pub source: DecisionSource,
}

impl TunerDecision {
    /// The fully pinned override set this decision runs — bit-equal to a
    /// static engine configured at [`Self::level`].
    pub fn overrides(&self) -> StageOverrides<'static> {
        StageOverrides::for_level(self.level)
    }

    /// True when the arm was picked to gather data rather than to win.
    pub fn explored(&self) -> bool {
        self.source == DecisionSource::Explore
    }
}

/// Rolling measurements of one arm under one signature.
#[derive(Debug, Clone, Default)]
struct ArmStats {
    /// Observations folded in (0 = never measured).
    count: u64,
    /// Exponentially-decayed mean per stage slot, in
    /// [`PipelineTrace::stage_device_ms`](crate::PipelineTrace) order.
    stage_mean_ms: [f64; 4],
    /// Recent whole-pipeline observations, for the exact p50 (bounded ring).
    recent: Vec<f64>,
}

impl ArmStats {
    /// Fold one execution's per-stage device timings, net of `structure_ms`
    /// of one-time build cost (billed inside the Launch slot by the
    /// pipeline driver).
    fn observe(&mut self, stages: &[(&'static str, f64)], structure_ms: f64) {
        let mut total = 0.0;
        for (slot, (label, ms)) in stages.iter().enumerate().take(4) {
            let ms = if *label == "Launch" {
                (ms - structure_ms).max(0.0)
            } else {
                *ms
            };
            total += ms;
            if self.count == 0 {
                self.stage_mean_ms[slot] = ms;
            } else {
                self.stage_mean_ms[slot] += DECAY_ALPHA * (ms - self.stage_mean_ms[slot]);
            }
        }
        self.count += 1;
        if self.recent.len() == P50_WINDOW {
            self.recent.remove(0);
        }
        self.recent.push(total);
    }

    /// Seed the arm from already-aggregated statistics (profile replay).
    fn seed_from(&mut self, count: u64, stage_mean_ms: [f64; 4], p50_total_ms: f64) {
        self.count = count.max(1);
        self.stage_mean_ms = stage_mean_ms;
        self.recent = vec![p50_total_ms];
    }

    /// Decayed whole-pipeline mean.
    fn mean_ms(&self) -> f64 {
        self.stage_mean_ms.iter().sum()
    }

    /// Exact nearest-rank median of the recent window.
    fn p50_ms(&self) -> f64 {
        if self.recent.is_empty() {
            return 0.0;
        }
        let mut sorted = self.recent.clone();
        sorted.sort_by(|a, b| a.partial_cmp(b).expect("finite timings"));
        sorted[(sorted.len() - 1) / 2]
    }

    /// The score decisions minimise: a blend of the EWMA mean (tracks
    /// drift) and the p50 (robust to a one-off spike).
    fn score_ms(&self) -> f64 {
        0.5 * (self.mean_ms() + self.p50_ms())
    }
}

/// Per-signature decision state: one [`ArmStats`] per [`OptLevel`] arm.
#[derive(Debug, Clone, Default)]
struct SignatureState {
    decisions: u64,
    arms: [ArmStats; 4],
}

impl SignatureState {
    /// The cheapest measured arm (ties go to the lower level — fewer
    /// stages). `None` until something was measured.
    fn best_measured(&self) -> Option<OptLevel> {
        OptLevel::all()
            .into_iter()
            .filter(|l| self.arms[*l as usize].count > 0)
            .min_by(|a, b| {
                self.arms[*a as usize]
                    .score_ms()
                    .partial_cmp(&self.arms[*b as usize].score_ms())
                    .expect("finite scores")
            })
    }
}

/// One signature's current tuner state, for inspection and demo printing.
#[derive(Debug, Clone)]
pub struct TunerReport {
    /// Plan kind of the signature (`"knn"` / `"range"` / `"batch"`).
    pub plan_kind: String,
    /// `floor(log2(points))` density bucket.
    pub density_bucket: u32,
    /// Backend name.
    pub backend: String,
    /// Decisions made for this signature.
    pub decisions: u64,
    /// Arms with at least one measurement.
    pub measured_arms: usize,
    /// The arm a steady-state (non-exploring) decision would pick now.
    pub choice: Option<OptLevel>,
    /// Measured score per arm in [`OptLevel::all`] order (0 = unmeasured).
    pub arm_score_ms: [f64; 4],
}

impl TunerReport {
    /// `"knn/2^13/gpusim"` — the profiler's signature label format.
    pub fn label(&self) -> String {
        format!(
            "{}/2^{}/{}",
            self.plan_kind, self.density_bucket, self.backend
        )
    }
}

/// The online stage-selection policy (see module docs). One instance per
/// tuning domain: an [`Index`](crate::Index) in auto mode owns one, a
/// `DynamicIndex` carries one across frames, a `QueryService` applies one
/// per coalesced tick.
#[derive(Debug, Clone)]
pub struct AutoTuner {
    seed: u64,
    epsilon: f64,
    cost: Option<CostCoefficients>,
    /// ε-draws consumed so far (the deterministic stream position).
    draws: u64,
    signatures: BTreeMap<(String, u32, String), SignatureState>,
}

impl AutoTuner {
    /// A fresh tuner under `seed`. Attach a calibrated cost model with
    /// [`Self::with_cost_model`] for a device-aware first shot; without one
    /// the cold start falls back to the engine default (`OptLevel::Full`).
    pub fn new(seed: u64) -> Self {
        AutoTuner {
            seed,
            epsilon: DEFAULT_EPSILON,
            cost: None,
            draws: 0,
            signatures: BTreeMap::new(),
        }
    }

    /// Set the exploration rate (clamped to `[0, 1]`).
    pub fn with_epsilon(mut self, epsilon: f64) -> Self {
        self.epsilon = epsilon.clamp(0.0, 1.0);
        self
    }

    /// Attach the calibrated cost coefficients used for cold-start
    /// estimates.
    pub fn with_cost_model(mut self, cost: CostCoefficients) -> Self {
        self.cost = Some(cost);
        self
    }

    /// [`Self::with_cost_model`] by mutation (the serving layer attaches
    /// the executor's calibration lazily).
    pub fn set_cost_model(&mut self, cost: CostCoefficients) {
        self.cost = Some(cost);
    }

    /// True once a cost model is attached.
    pub fn has_cost_model(&self) -> bool {
        self.cost.is_some()
    }

    /// The policy seed.
    pub fn seed(&self) -> u64 {
        self.seed
    }

    /// Total decisions made across all signatures.
    pub fn decisions(&self) -> u64 {
        self.signatures.values().map(|s| s.decisions).sum()
    }

    /// Pick the arm for one execution with these signature coordinates.
    ///
    /// The first decision for a signature uses the cost model; while any
    /// arm is still unmeasured the tuner round-robins through them
    /// (bootstrap); afterwards it exploits the cheapest measured arm,
    /// except for a seeded ε fraction of re-exploration.
    pub fn decide(
        &mut self,
        plan_kind: &str,
        points: usize,
        backend: &str,
        queries: usize,
    ) -> TunerDecision {
        let cold = self.cold_start(plan_kind, points, queries);
        let epsilon = self.epsilon;
        let key = (
            plan_kind.to_string(),
            density_bucket(points),
            backend.to_string(),
        );
        let state = self.signatures.entry(key).or_default();
        state.decisions += 1;

        if state.arms.iter().all(|a| a.count == 0) {
            return TunerDecision {
                level: cold,
                source: DecisionSource::CostModel,
            };
        }
        if let Some(level) = OptLevel::all()
            .into_iter()
            .find(|l| state.arms[*l as usize].count == 0)
        {
            return TunerDecision {
                level,
                source: DecisionSource::Explore,
            };
        }
        let best = state.best_measured().expect("all arms measured");
        self.draws += 1;
        let r = splitmix64(self.seed ^ self.draws.wrapping_mul(0x9E37_79B9_7F4A_7C15));
        if unit_f64(r) < epsilon {
            return TunerDecision {
                level: OptLevel::all()[(r >> 32) as usize % 4],
                source: DecisionSource::Explore,
            };
        }
        TunerDecision {
            level: best,
            source: DecisionSource::Measured,
        }
    }

    /// Fold one execution's measured per-stage device timings into the arm
    /// that produced them. `structure_ms` is the one-time structure-build
    /// cost included in the trace's Launch slot (`breakdown.bvh_ms`); it is
    /// subtracted so arms compete on steady-state cost (see module docs).
    pub fn observe(
        &mut self,
        plan_kind: &str,
        points: usize,
        backend: &str,
        level: OptLevel,
        stage_device_ms: &[(&'static str, f64)],
        structure_ms: f64,
    ) {
        let key = (
            plan_kind.to_string(),
            density_bucket(points),
            backend.to_string(),
        );
        self.signatures.entry(key).or_default().arms[level as usize]
            .observe(stage_device_ms, structure_ms);
    }

    /// Replay a recorded [`ProfileSnapshot`] into the tuner: every
    /// signature's per-stage EWMA means and total p50 seed the arm that
    /// `recorded_under` names (the static level the profile was collected
    /// at). Arms that already hold live measurements are left alone —
    /// replay is a warm start, not an override. Deterministic: the same
    /// snapshot always produces the same state.
    pub fn absorb_profile(&mut self, snapshot: &ProfileSnapshot, recorded_under: OptLevel) {
        for profile in &snapshot.signatures {
            let key = (
                profile.signature.plan_kind.clone(),
                profile.signature.density_bucket,
                profile.signature.backend.clone(),
            );
            let arm = &mut self.signatures.entry(key).or_default().arms[recorded_under as usize];
            if arm.count > 0 {
                continue;
            }
            let mut stage_mean_ms = [0.0; 4];
            for (slot, kind) in crate::pipeline::StageKind::ALL.iter().enumerate() {
                if let Some(stage) = profile.stage(kind.label()) {
                    stage_mean_ms[slot] = stage.mean_ms;
                }
            }
            arm.seed_from(profile.executions, stage_mean_ms, profile.total.p50_ms);
        }
    }

    /// Current state of every signature, in key order.
    pub fn report(&self) -> Vec<TunerReport> {
        self.signatures
            .iter()
            .map(|((plan_kind, bucket, backend), state)| TunerReport {
                plan_kind: plan_kind.clone(),
                density_bucket: *bucket,
                backend: backend.clone(),
                decisions: state.decisions,
                measured_arms: state.arms.iter().filter(|a| a.count > 0).count(),
                choice: state.best_measured(),
                arm_score_ms: std::array::from_fn(|i| {
                    if state.arms[i].count > 0 {
                        state.arms[i].score_ms()
                    } else {
                        0.0
                    }
                }),
            })
            .collect()
    }

    /// The cost model's first shot for an unmeasured signature (Section
    /// 5.2's coefficients, the same calibration the bundling break-even
    /// uses): reordering is host-side and near-free, so it is always on;
    /// partitioning pays when the per-query IS work it saves outweighs the
    /// extra per-partition structure builds, which the model prices as one
    /// full build over the scene.
    fn cold_start(&self, plan_kind: &str, points: usize, queries: usize) -> OptLevel {
        let Some(cost) = &self.cost else {
            return OptLevel::default();
        };
        // Expected candidate IS calls per query grow with the scene's
        // linear density (∛N for a near-uniform cloud) — the N·ρ·S³ shape
        // of Equation 3 with the radius folded into the calibration.
        let search_ms = queries as f64 * cost.is_ms_for_kind(plan_kind) * (points as f64).cbrt();
        if search_ms > cost.build_ms(points) {
            OptLevel::Full
        } else {
            OptLevel::Sched
        }
    }
}

/// SplitMix64: the standard 64-bit finalizer — a tiny, seedable,
/// allocation-free stream that keeps decisions bit-reproducible.
fn splitmix64(mut x: u64) -> u64 {
    x = x.wrapping_add(0x9E37_79B9_7F4A_7C15);
    x = (x ^ (x >> 30)).wrapping_mul(0xBF58_476D_1CE4_E5B9);
    x = (x ^ (x >> 27)).wrapping_mul(0x94D0_49BB_1331_11EB);
    x ^ (x >> 31)
}

/// Map a draw to `[0, 1)` using the top 53 bits.
fn unit_f64(r: u64) -> f64 {
    (r >> 11) as f64 / (1u64 << 53) as f64
}

#[cfg(test)]
mod tests {
    use super::*;
    use rtnn_gpusim::Device;

    fn stages(schedule: f64, partition: f64, launch: f64, gather: f64) -> [(&'static str, f64); 4] {
        [
            ("Schedule", schedule),
            ("Partition", partition),
            ("Launch", launch),
            ("Gather", gather),
        ]
    }

    fn calibrated() -> CostCoefficients {
        CostCoefficients::calibrate(&Device::rtx_2080())
    }

    /// Drive one tuner through `rounds` decide/observe rounds where each
    /// arm has a fixed synthetic steady-state cost; returns the decision
    /// sequence.
    fn drive(tuner: &mut AutoTuner, arm_ms: [f64; 4], rounds: usize) -> Vec<TunerDecision> {
        (0..rounds)
            .map(|_| {
                let d = tuner.decide("knn", 9_000, "gpusim", 500);
                tuner.observe(
                    "knn",
                    9_000,
                    "gpusim",
                    d.level,
                    &stages(0.1, 0.1, arm_ms[d.level as usize], 0.05),
                    0.0,
                );
                d
            })
            .collect()
    }

    #[test]
    fn first_decision_comes_from_the_cost_model() {
        let mut t = AutoTuner::new(7).with_cost_model(calibrated());
        let d = t.decide("knn", 100_000, "gpusim", 10_000);
        assert_eq!(d.source, DecisionSource::CostModel);
        // Plenty of IS work per build: the model picks the full pipeline.
        assert_eq!(d.level, OptLevel::Full);
        // A signature the tuner has never seen always cold-starts, even
        // after other signatures were measured.
        t.observe(
            "knn",
            100_000,
            "gpusim",
            d.level,
            &stages(1.0, 1.0, 1.0, 1.0),
            0.0,
        );
        let other = t.decide("range", 100_000, "gpusim", 10_000);
        assert_eq!(other.source, DecisionSource::CostModel);
    }

    #[test]
    fn bootstrap_measures_every_arm_then_exploits_the_best() {
        let mut t = AutoTuner::new(42).with_cost_model(calibrated());
        // Arm costs make Sched the clear winner.
        let arm_ms = [4.0, 1.0, 3.0, 6.0];
        let decisions = drive(&mut t, arm_ms, 16);
        assert_eq!(decisions[0].source, DecisionSource::CostModel);
        // By the end of the bootstrap every arm has been measured once.
        let mut seen = [false; 4];
        for d in &decisions[..5] {
            seen[d.level as usize] = true;
        }
        assert_eq!(seen, [true; 4], "bootstrap visits all arms: {decisions:?}");
        // Steady state exploits the cheapest arm.
        let exploit: Vec<_> = decisions
            .iter()
            .filter(|d| d.source == DecisionSource::Measured)
            .collect();
        assert!(!exploit.is_empty());
        assert!(exploit.iter().all(|d| d.level == OptLevel::Sched));
    }

    #[test]
    fn same_seed_same_history_means_identical_decisions() {
        let arm_ms = [2.0, 5.0, 0.5, 3.0];
        let mut a = AutoTuner::new(9).with_cost_model(calibrated());
        let mut b = AutoTuner::new(9).with_cost_model(calibrated());
        assert_eq!(drive(&mut a, arm_ms, 64), drive(&mut b, arm_ms, 64));
    }

    #[test]
    fn epsilon_explores_and_zero_epsilon_never_does() {
        let arm_ms = [2.0, 5.0, 0.5, 3.0];
        let mut greedy = AutoTuner::new(3)
            .with_cost_model(calibrated())
            .with_epsilon(0.0);
        let decisions = drive(&mut greedy, arm_ms, 64);
        assert!(decisions[5..]
            .iter()
            .all(|d| d.source == DecisionSource::Measured));

        let mut curious = AutoTuner::new(3)
            .with_cost_model(calibrated())
            .with_epsilon(0.5);
        let decisions = drive(&mut curious, arm_ms, 64);
        assert!(
            decisions[5..]
                .iter()
                .any(|d| d.source == DecisionSource::Explore),
            "ε=0.5 over 59 steady-state draws must explore at least once"
        );
    }

    #[test]
    fn exploration_escapes_a_stale_choice_when_the_scene_drifts() {
        let mut t = AutoTuner::new(11)
            .with_cost_model(calibrated())
            .with_epsilon(0.3);
        drive(&mut t, [5.0, 4.0, 0.5, 6.0], 12);
        assert_eq!(
            t.report()[0].choice,
            Some(OptLevel::SchedPartition),
            "initially the partitioned arm wins"
        );
        // The scene drifts: partitioning becomes the worst arm. Repeated
        // ε-exploration plus EWMA decay must flip the choice.
        drive(&mut t, [0.5, 0.6, 9.0, 9.0], 200);
        assert_eq!(t.report()[0].choice, Some(OptLevel::NoOpt));
    }

    #[test]
    fn structure_builds_are_excluded_from_arm_scores() {
        let mut t = AutoTuner::new(5).with_cost_model(calibrated());
        // A huge one-time build on the first visit must not poison the arm.
        t.observe(
            "knn",
            9_000,
            "gpusim",
            OptLevel::Full,
            &stages(0.1, 0.1, 100.0, 0.05),
            99.0,
        );
        let r = &t.report()[0];
        assert!(
            r.arm_score_ms[OptLevel::Full as usize] < 2.0,
            "score {:?} must be net of the 99ms build",
            r.arm_score_ms
        );
    }

    #[test]
    fn absorbed_profiles_seed_decisions_without_live_measurements() {
        use rtnn_telemetry::{ProfileSample, SignatureProfiler};
        let mut profiler = SignatureProfiler::new(0.2);
        profiler.record(&ProfileSample {
            plan_kind: "knn",
            points: 9_000,
            backend: "gpusim",
            queries: 500,
            stages: &stages(0.1, 0.1, 2.0, 0.05),
        });
        let snapshot = profiler.snapshot();

        let mut a = AutoTuner::new(21).with_cost_model(calibrated());
        let mut b = AutoTuner::new(21).with_cost_model(calibrated());
        a.absorb_profile(&snapshot, OptLevel::Full);
        b.absorb_profile(&snapshot, OptLevel::Full);
        // The replayed profile counts as a measurement: the next decision
        // bootstraps the remaining arms instead of cold-starting...
        let da = a.decide("knn", 9_000, "gpusim", 500);
        assert_eq!(da.source, DecisionSource::Explore);
        // ...and two tuners replaying the same profile under the same seed
        // decide identically.
        assert_eq!(da, b.decide("knn", 9_000, "gpusim", 500));
        assert_eq!(a.report()[0].measured_arms, 1);
    }

    #[test]
    fn report_labels_match_the_profiler_signature_format() {
        let mut t = AutoTuner::new(1).with_cost_model(calibrated());
        t.decide("range", 9_000, "optix-shim", 100);
        let r = t.report();
        assert_eq!(r.len(), 1);
        assert_eq!(r[0].label(), "range/2^13/optix-shim");
        assert_eq!(r[0].decisions, 1);
        assert_eq!(r[0].choice, None, "nothing measured yet");
        assert_eq!(t.decisions(), 1);
    }

    #[test]
    fn tuning_knob_defaults_to_static() {
        assert_eq!(Tuning::default(), Tuning::Static);
        assert!(Tuning::auto().is_auto());
        assert!(!Tuning::Static.is_auto());
    }
}
