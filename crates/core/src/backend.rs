//! The execution backend seam: build/refit/traverse + timing behind one
//! object-safe trait, so backend choice is a constructor argument instead
//! of a hardwired `&Device`.
//!
//! The engine pipeline (scheduling, partitioning, bundling) is
//! backend-agnostic: it decides *what* to traverse and hands each launch to
//! a [`Backend`], which owns *how* the traversal executes and what
//! structures back it. Three implementations ship:
//!
//! * [`GpusimBackend`] — the default: traversals run on the simulated
//!   Turing-class device through the OptiX-like pipeline, with full
//!   microarchitectural metrics and SAH quality introspection.
//! * [`OptixBackend`] — the integration shim for a real OptiX 7 device.
//!   Without an RTX card in the loop it executes on the same simulated
//!   pipeline (bit-identical results), but it honours the hardware
//!   contract: the acceleration structure is opaque — no BVH or SAH
//!   introspection — exactly what `optixAccelBuild` would hand back.
//! * `BruteForceBackend` (in `rtnn-baselines`) — keeps no structure and
//!   answers every traversal by exhaustive scan over the mapping semantics
//!   ([`exhaustive_traverse`]); it doubles as the oracle the cross-backend
//!   equivalence suite checks the ray-tracing backends against.

use crate::shaders::{FirstHitProgram, KnnHeap, KnnProgram, QueryIndexing, RangeProgram, NO_HIT};
use rtnn_bvh::BuildParams;
use rtnn_gpusim::device::OutOfDeviceMemory;
use rtnn_gpusim::kernel::{point_address, run_sm_kernel, SmKernelConfig, ThreadWork};
use rtnn_gpusim::{Device, IsShaderKind, StructureTiming};
use rtnn_math::{Aabb, Vec3};
use rtnn_optix::{Gas, LaunchMetrics, Pipeline};
use rtnn_parallel::par_map;

pub use rtnn_optix::{Accel, AccelRef, RefitOutcome};

/// What one traversal pass computes.
#[derive(Debug, Clone, Copy, PartialEq)]
pub enum TraversalKind {
    /// Fixed-radius search: up to `cap` neighbors within `radius`;
    /// `sphere_test` elided when the partition's AABB is inscribed in the
    /// search sphere (Section 5.1) or the approximation mode skips it.
    Range {
        /// Search radius.
        radius: f32,
        /// Terminate the ray once this many neighbors are recorded.
        cap: usize,
        /// Whether the IS shader runs the point-in-sphere test.
        sphere_test: bool,
    },
    /// K-nearest-neighbor search: the `k` nearest within `radius`, returned
    /// sorted by increasing distance.
    Knn {
        /// Search radius bounding the returned neighbors.
        radius: f32,
        /// Number of nearest neighbors to keep.
        k: usize,
    },
    /// The truncated scheduling pass (Section 4): record the first
    /// enclosing primitive and terminate.
    FirstHit,
}

/// One traversal pass: which queries to launch (in which order) against
/// which point set, and what to compute per query.
#[derive(Debug, Clone, Copy)]
pub struct TraversalJob<'a> {
    /// Search points (AABB centres).
    pub points: &'a [Vec3],
    /// Query positions.
    pub queries: &'a [Vec3],
    /// Launch order: `query_ids[i]` is the query launched at index `i`.
    pub query_ids: &'a [u32],
    /// What to compute.
    pub kind: TraversalKind,
}

/// The outcome of one traversal pass.
#[derive(Debug, Clone)]
pub struct Traversal {
    /// Per-*launch-index* results, aligned with
    /// [`TraversalJob::query_ids`]: neighbor ids for `Range` (traversal
    /// order) and `Knn` (sorted by increasing distance), and a zero- or
    /// one-element vector for `FirstHit`.
    pub payloads: Vec<Vec<u32>>,
    /// Simulated execution metrics.
    pub metrics: LaunchMetrics,
}

/// A neighbor-search execution backend (see module docs). Object-safe: the
/// engine and the [`crate::Index`] hold `&dyn Backend` / `Box<dyn Backend>`.
///
/// `Sync` is a supertrait so a `dyn Backend` can be shared across the
/// worker threads of a serving layer (`rtnn-serve` fans one backend out to
/// per-shard indexes executing in parallel); backends are read-only at
/// traversal time, so every shipped implementation already satisfies it.
pub trait Backend: Sync {
    /// Short human-readable backend name (used in reports).
    fn name(&self) -> &'static str;

    /// The simulated device this backend charges work to. Engine-side
    /// kernels (query sort, megacell growth) and transfer costs are billed
    /// here so every backend's end-to-end numbers are comparable.
    fn device(&self) -> &Device;

    /// Build an acceleration structure over width-`aabb_width` cubes
    /// centred at `points`.
    fn build(
        &self,
        points: &[Vec3],
        aabb_width: f32,
        build: BuildParams,
    ) -> Result<Accel, OutOfDeviceMemory>;

    /// Refit `accel` in place for moved `points` (same count, same width).
    /// `None` means the structure cannot absorb the update — rebuild
    /// instead.
    fn refit(&self, accel: &mut Accel, points: &[Vec3]) -> Option<RefitOutcome>;

    /// Execute one traversal pass against `accel`.
    fn traverse(&self, accel: AccelRef<'_>, job: &TraversalJob<'_>) -> Traversal;

    /// Structure build/refit timing at a given size — what refit-vs-rebuild
    /// policies consult.
    fn timing(&self, num_prims: usize) -> StructureTiming;
}

/// Width-`width` cubes centred at the points (the Listing 1 mapping).
fn point_aabbs(points: &[Vec3], width: f32) -> Vec<Aabb> {
    par_map(points.len(), |i| Aabb::cube(points[i], width))
}

/// Run `job` against a BVH-backed structure through the OptiX-like
/// pipeline. Shared by the two ray-tracing backends so their results are
/// bit-identical by construction.
fn pipeline_traverse(device: &Device, gas: &Gas, job: &TraversalJob<'_>) -> Traversal {
    let pipeline = Pipeline::new(device);
    let n = job.query_ids.len();
    let indexing = QueryIndexing::Mapped(job.query_ids);
    match job.kind {
        TraversalKind::Range {
            radius,
            cap,
            sphere_test,
        } => {
            let program = RangeProgram {
                points: job.points,
                queries: job.queries,
                indexing,
                radius,
                k: cap,
                sphere_test,
            };
            let kind = if sphere_test {
                IsShaderKind::RangeSphereTest
            } else {
                IsShaderKind::RangeNoSphereTest
            };
            let launch = pipeline.launch(gas, n, &program, kind);
            Traversal {
                payloads: launch.payloads,
                metrics: launch.metrics,
            }
        }
        TraversalKind::Knn { radius, k } => {
            let program = KnnProgram {
                points: job.points,
                queries: job.queries,
                indexing,
                radius,
                k,
            };
            let launch = pipeline.launch(gas, n, &program, IsShaderKind::Knn);
            Traversal {
                payloads: launch
                    .payloads
                    .into_iter()
                    .map(KnnHeap::into_sorted_ids)
                    .collect(),
                metrics: launch.metrics,
            }
        }
        TraversalKind::FirstHit => {
            let program = FirstHitProgram {
                queries: job.queries,
                indexing,
            };
            let launch = pipeline.launch(gas, n, &program, IsShaderKind::RangeNoSphereTest);
            Traversal {
                payloads: launch
                    .payloads
                    .into_iter()
                    .map(|hit| if hit == NO_HIT { Vec::new() } else { vec![hit] })
                    .collect(),
                metrics: launch.metrics,
            }
        }
    }
}

/// Cost (in generic SM ops) of one exhaustive distance/containment test —
/// matches the brute-force baseline's accounting.
const OPS_PER_SCAN_TEST: u64 = 4;

/// Answer `job` by exhaustive scan over the basic-mapping semantics: a
/// point is a candidate exactly when its width-`aabb_width` AABB contains
/// the query (what BVH traversal of a degenerate point probe reports), and
/// the per-candidate shader semantics (sphere test, cap termination, KNN
/// heap) are identical to the ray-tracing programs. Candidates are visited
/// in point-id order.
///
/// This is the structure-less oracle path: `BruteForceBackend` (in
/// `rtnn-baselines`) delegates here, and so does any backend handed a
/// [`AccelRef::Flat`] handle. The scan is charged to the simulated device
/// as one thread per query streaming every point.
pub fn exhaustive_traverse(
    device: &Device,
    accel: AccelRef<'_>,
    job: &TraversalJob<'_>,
) -> Traversal {
    let width = accel.aabb_width();
    let num_points = accel.num_primitives().min(job.points.len());
    let points = &job.points[..num_points];

    #[derive(Debug, Clone, Default)]
    struct ScanOutcome {
        ids: Vec<u32>,
        scanned: u64,
        is_calls: u64,
        terminated: bool,
        hit: bool,
    }

    let (outcomes, kernel) = run_sm_kernel(
        device,
        job.query_ids.len(),
        SmKernelConfig::default(),
        |launch_idx| {
            let q = job.queries[job.query_ids[launch_idx] as usize];
            let mut out = ScanOutcome::default();
            // Candidate test: exactly what BVH traversal of a degenerate
            // point probe reports — the point's width-w AABB contains q.
            let contains = |p: Vec3| Aabb::cube(p, width).contains_point(q);
            match job.kind {
                TraversalKind::Range {
                    radius,
                    cap,
                    sphere_test,
                } => {
                    let r2 = radius * radius;
                    for (pi, &p) in points.iter().enumerate() {
                        out.scanned += 1;
                        if !contains(p) {
                            continue;
                        }
                        out.is_calls += 1;
                        if sphere_test && q.distance_squared(p) >= r2 {
                            continue;
                        }
                        out.hit = true;
                        out.ids.push(pi as u32);
                        if out.ids.len() >= cap {
                            out.terminated = true;
                            break;
                        }
                    }
                }
                TraversalKind::Knn { radius, k } => {
                    let r2 = radius * radius;
                    let mut heap = KnnHeap::default();
                    for (pi, &p) in points.iter().enumerate() {
                        out.scanned += 1;
                        if !contains(p) {
                            continue;
                        }
                        out.is_calls += 1;
                        let d2 = q.distance_squared(p);
                        if d2 < r2 {
                            out.hit = true;
                            heap.offer(d2, pi as u32, k);
                        }
                    }
                    out.ids = heap.into_sorted_ids();
                }
                TraversalKind::FirstHit => {
                    for (pi, &p) in points.iter().enumerate() {
                        out.scanned += 1;
                        if contains(p) {
                            out.is_calls += 1;
                            out.hit = true;
                            out.terminated = true;
                            out.ids.push(pi as u32);
                            break;
                        }
                    }
                }
            }
            // Sample the address stream (one address per 32 points) to keep
            // the trace bounded; the op count carries the full cost.
            let addresses: Vec<u64> = (0..out.scanned as u32)
                .step_by(32)
                .map(point_address)
                .collect();
            let work = ThreadWork::new(out.scanned * OPS_PER_SCAN_TEST, addresses);
            (out, work)
        },
    );

    let mut metrics = LaunchMetrics {
        kernel,
        ..Default::default()
    };
    let mut payloads = Vec::with_capacity(outcomes.len());
    for out in outcomes {
        metrics.active_rays += 1;
        metrics.prim_tests += out.scanned;
        metrics.is_calls += out.is_calls;
        metrics.terminated_rays += out.terminated as u64;
        metrics.hit_rays += out.hit as u64;
        payloads.push(out.ids);
    }
    Traversal { payloads, metrics }
}

/// The default backend: traversals execute on the simulated Turing-class
/// device through the OptiX-like pipeline, with full metrics and SAH
/// quality introspection.
#[derive(Debug, Clone, Copy)]
pub struct GpusimBackend<'d> {
    device: &'d Device,
}

impl<'d> GpusimBackend<'d> {
    /// A backend on `device`.
    pub fn new(device: &'d Device) -> Self {
        GpusimBackend { device }
    }
}

impl<'d> Backend for GpusimBackend<'d> {
    fn name(&self) -> &'static str {
        "gpusim"
    }

    fn device(&self) -> &Device {
        self.device
    }

    fn build(
        &self,
        points: &[Vec3],
        aabb_width: f32,
        build: BuildParams,
    ) -> Result<Accel, OutOfDeviceMemory> {
        let gas = Gas::build(self.device, &point_aabbs(points, aabb_width), build)?;
        Ok(Accel::from_gas(gas, aabb_width))
    }

    fn refit(&self, accel: &mut Accel, points: &[Vec3]) -> Option<RefitOutcome> {
        accel.refit_in_place(self.device, points)
    }

    fn traverse(&self, accel: AccelRef<'_>, job: &TraversalJob<'_>) -> Traversal {
        match accel {
            AccelRef::Gas { gas, .. } => pipeline_traverse(self.device, gas, job),
            flat @ AccelRef::Flat { .. } => exhaustive_traverse(self.device, flat, job),
        }
    }

    fn timing(&self, num_prims: usize) -> StructureTiming {
        self.device.structure_timing(num_prims)
    }
}

/// The integration shim for a real OptiX 7 device: same launch semantics
/// and bit-identical results as [`GpusimBackend`] (without an RTX card the
/// rays execute on the same simulated pipeline), but the acceleration
/// structure honours the hardware contract — it is opaque, with no BVH or
/// SAH introspection, so quality-driven policies fall back to their
/// introspection-free behaviour.
#[derive(Debug, Clone, Copy)]
pub struct OptixBackend<'d> {
    device: &'d Device,
}

impl<'d> OptixBackend<'d> {
    /// A backend on `device`.
    pub fn new(device: &'d Device) -> Self {
        OptixBackend { device }
    }
}

impl<'d> Backend for OptixBackend<'d> {
    fn name(&self) -> &'static str {
        "optix-shim"
    }

    fn device(&self) -> &Device {
        self.device
    }

    fn build(
        &self,
        points: &[Vec3],
        aabb_width: f32,
        build: BuildParams,
    ) -> Result<Accel, OutOfDeviceMemory> {
        let gas = Gas::build(self.device, &point_aabbs(points, aabb_width), build)?;
        Ok(Accel::from_gas_opaque(gas, aabb_width))
    }

    fn refit(&self, accel: &mut Accel, points: &[Vec3]) -> Option<RefitOutcome> {
        accel.refit_in_place(self.device, points)
    }

    fn traverse(&self, accel: AccelRef<'_>, job: &TraversalJob<'_>) -> Traversal {
        match accel {
            AccelRef::Gas { gas, .. } => pipeline_traverse(self.device, gas, job),
            flat @ AccelRef::Flat { .. } => exhaustive_traverse(self.device, flat, job),
        }
    }

    fn timing(&self, num_prims: usize) -> StructureTiming {
        self.device.structure_timing(num_prims)
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn cloud() -> Vec<Vec3> {
        (0..400)
            .map(|i| {
                let f = i as f32;
                Vec3::new((f * 0.37) % 6.0, (f * 0.61) % 6.0, (f * 0.13) % 6.0)
            })
            .collect()
    }

    fn identity(n: usize) -> Vec<u32> {
        (0..n as u32).collect()
    }

    #[test]
    fn trait_is_object_safe_and_backends_agree_on_knn() {
        let device = Device::rtx_2080();
        let points = cloud();
        let queries: Vec<Vec3> = points.iter().step_by(13).copied().collect();
        let ids = identity(queries.len());
        let backends: Vec<Box<dyn Backend + '_>> = vec![
            Box::new(GpusimBackend::new(&device)),
            Box::new(OptixBackend::new(&device)),
        ];
        let job = TraversalJob {
            points: &points,
            queries: &queries,
            query_ids: &ids,
            kind: TraversalKind::Knn { radius: 1.5, k: 6 },
        };
        let mut results = Vec::new();
        for b in &backends {
            let accel = b.build(&points, 3.0, BuildParams::default()).unwrap();
            results.push(b.traverse(accel.as_ref(), &job).payloads);
        }
        assert_eq!(results[0], results[1], "gpusim and optix shim must agree");
    }

    #[test]
    fn exhaustive_traverse_matches_the_pipeline_on_knn() {
        let device = Device::rtx_2080();
        let points = cloud();
        let queries: Vec<Vec3> = points.iter().step_by(7).copied().collect();
        let ids = identity(queries.len());
        let job = TraversalJob {
            points: &points,
            queries: &queries,
            query_ids: &ids,
            kind: TraversalKind::Knn { radius: 1.2, k: 5 },
        };
        let backend = GpusimBackend::new(&device);
        let accel = backend.build(&points, 2.4, BuildParams::default()).unwrap();
        let rt = backend.traverse(accel.as_ref(), &job);
        let flat = exhaustive_traverse(&device, Accel::flat(points.len(), 2.4).as_ref(), &job);
        assert_eq!(rt.payloads, flat.payloads);
        assert!(flat.metrics.time_ms() > 0.0);
        assert_eq!(flat.metrics.active_rays, queries.len() as u64);
    }

    #[test]
    fn exhaustive_range_respects_cap_and_sphere_test() {
        let device = Device::rtx_2080();
        let points = vec![
            Vec3::new(0.1, 0.0, 0.0),
            Vec3::new(0.9, 0.9, 0.9), // inside width-2 AABB, outside unit sphere
            Vec3::new(0.2, 0.0, 0.0),
            Vec3::new(0.3, 0.0, 0.0),
        ];
        let queries = vec![Vec3::ZERO];
        let ids = identity(1);
        let accel = Accel::flat(points.len(), 2.0);
        let with_test = exhaustive_traverse(
            &device,
            accel.as_ref(),
            &TraversalJob {
                points: &points,
                queries: &queries,
                query_ids: &ids,
                kind: TraversalKind::Range {
                    radius: 1.0,
                    cap: 2,
                    sphere_test: true,
                },
            },
        );
        // Id order, capped at 2, corner point rejected by the sphere test.
        assert_eq!(with_test.payloads[0], vec![0, 2]);
        assert_eq!(with_test.metrics.terminated_rays, 1);
        let without_test = exhaustive_traverse(
            &device,
            accel.as_ref(),
            &TraversalJob {
                points: &points,
                queries: &queries,
                query_ids: &ids,
                kind: TraversalKind::Range {
                    radius: 1.0,
                    cap: 8,
                    sphere_test: false,
                },
            },
        );
        assert_eq!(without_test.payloads[0], vec![0, 1, 2, 3]);
    }

    #[test]
    fn exhaustive_first_hit_returns_the_first_containing_point() {
        let device = Device::rtx_2080();
        let points = vec![Vec3::new(10.0, 0.0, 0.0), Vec3::new(0.2, 0.0, 0.0)];
        let queries = vec![Vec3::ZERO, Vec3::new(100.0, 0.0, 0.0)];
        let ids = identity(2);
        let t = exhaustive_traverse(
            &device,
            Accel::flat(2, 1.0).as_ref(),
            &TraversalJob {
                points: &points,
                queries: &queries,
                query_ids: &ids,
                kind: TraversalKind::FirstHit,
            },
        );
        assert_eq!(t.payloads[0], vec![1]);
        assert!(t.payloads[1].is_empty(), "no enclosing AABB");
        assert_eq!(t.metrics.hit_rays, 1);
    }

    #[test]
    fn timing_reports_refit_cheaper_than_build() {
        let device = Device::rtx_2080();
        let t = GpusimBackend::new(&device).timing(1_000_000);
        assert!(t.refit_ms > 0.0 && t.refit_ms < t.build_ms);
        assert!(t.rebuild_premium_ms() > 0.0);
    }
}
