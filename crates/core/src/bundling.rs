//! Partition bundling (Section 5.2 and Appendices A/C).
//!
//! Every partition needs its own BVH; when a partition is small, the build
//! cost outweighs the traversal savings. The bundling algorithm picks how
//! many partitions to keep separate:
//!
//! 1. Sort partitions by query count (empirically inversely correlated with
//!    AABB size — Figure 16; our partitioner produces them sorted by width,
//!    so this is a re-sort by `N`).
//! 2. For every candidate bundle count `M_o`, keep the `M_o − 1` partitions
//!    with the most queries separate and merge the rest into one bundle
//!    whose AABB width is the maximum of its members (the theorem of
//!    Appendix C shows this shape is optimal for a given `M_o`).
//! 3. Evaluate the total cost (build + search) of each `M_o` with the
//!    calibrated cost model and pick the minimum.

use crate::cost_model::CostCoefficients;
use crate::partition::Partition;
use crate::result::{SearchMode, SearchParams};

/// A bundling decision.
#[derive(Debug, Clone, PartialEq)]
pub struct BundlePlan {
    /// Each element is the set of partition indices merged into one bundle.
    pub groups: Vec<Vec<usize>>,
    /// Estimated total cost (build + search) of this plan in milliseconds.
    pub estimated_cost_ms: f64,
    /// Estimated cost of leaving every partition separate, for comparison.
    pub unbundled_cost_ms: f64,
}

impl BundlePlan {
    /// Number of bundles (i.e. BVH builds) the plan requires.
    pub fn num_bundles(&self) -> usize {
        self.groups.len()
    }
}

/// Search-cost estimate for a set of partitions sharing one BVH whose AABB
/// width is `width`.
fn search_cost_ms(
    members: &[&Partition],
    width: f64,
    params: &SearchParams,
    coeffs: &CostCoefficients,
) -> f64 {
    match params.mode {
        SearchMode::Knn => {
            // k2 · Σ(N_i ρ_i) · S³  (Equation 4 summed over members).
            let weighted_density: f64 = members.iter().map(|p| p.len() as f64 * p.density).sum();
            coeffs.k_is_knn_ms * weighted_density * width.powi(3)
        }
        SearchMode::Range => {
            // k3 · N · K, with k3 depending on whether the bundle's AABB still
            // fits inside the search sphere (Appendix A).
            let n: f64 = members.iter().map(|p| p.len() as f64).sum();
            let inscribed = 2.0 * params.radius as f64 / 3.0_f64.sqrt();
            let k3 = if width <= inscribed {
                coeffs.k_is_range_no_sphere_ms
            } else {
                coeffs.k_is_range_sphere_ms
            };
            k3 * n * params.k as f64
        }
    }
}

/// Total cost of a candidate plan described by `groups`.
fn plan_cost_ms(
    partitions: &[Partition],
    groups: &[Vec<usize>],
    num_points: usize,
    params: &SearchParams,
    coeffs: &CostCoefficients,
) -> f64 {
    groups
        .iter()
        .map(|group| {
            let members: Vec<&Partition> = group.iter().map(|&i| &partitions[i]).collect();
            let width = members
                .iter()
                .map(|p| p.aabb_width as f64)
                .fold(0.0, f64::max);
            coeffs.build_ms(num_points) + search_cost_ms(&members, width, params, coeffs)
        })
        .sum()
}

/// Compute the optimal bundling of `partitions` for a point cloud of
/// `num_points` points.
pub fn plan_bundles(
    partitions: &[Partition],
    num_points: usize,
    params: &SearchParams,
    coeffs: &CostCoefficients,
) -> BundlePlan {
    if partitions.is_empty() {
        return BundlePlan {
            groups: Vec::new(),
            estimated_cost_ms: 0.0,
            unbundled_cost_ms: 0.0,
        };
    }
    // Indices sorted by descending query count: the first M_o - 1 stay
    // separate under the Appendix C theorem.
    let mut by_queries: Vec<usize> = (0..partitions.len()).collect();
    by_queries.sort_by_key(|&i| std::cmp::Reverse(partitions[i].len()));

    let unbundled: Vec<Vec<usize>> = (0..partitions.len()).map(|i| vec![i]).collect();
    let unbundled_cost = plan_cost_ms(partitions, &unbundled, num_points, params, coeffs);

    let mut best_groups = unbundled;
    let mut best_cost = unbundled_cost;
    for m_o in 1..=partitions.len() {
        let separate = &by_queries[..m_o - 1];
        let bundled: Vec<usize> = by_queries[m_o - 1..].to_vec();
        let mut groups: Vec<Vec<usize>> = separate.iter().map(|&i| vec![i]).collect();
        if !bundled.is_empty() {
            groups.push(bundled);
        }
        let cost = plan_cost_ms(partitions, &groups, num_points, params, coeffs);
        if cost < best_cost {
            best_cost = cost;
            best_groups = groups;
        }
    }
    BundlePlan {
        groups: best_groups,
        estimated_cost_ms: best_cost,
        unbundled_cost_ms: unbundled_cost,
    }
}

/// Materialise a plan: merge the partitions of each group into one
/// partition whose AABB width is the maximum of its members.
pub fn apply_bundles(
    partitions: &[Partition],
    plan: &BundlePlan,
    params: &SearchParams,
) -> Vec<Partition> {
    let inscribed = 2.0 * params.radius / 3.0_f32.sqrt();
    plan.groups
        .iter()
        .map(|group| {
            let width = group
                .iter()
                .map(|&i| partitions[i].aabb_width)
                .fold(0.0f32, f32::max);
            let megacell_width = group
                .iter()
                .map(|&i| partitions[i].megacell_width)
                .fold(0.0f32, f32::max);
            let mut query_ids = Vec::new();
            let mut weighted_density = 0.0f64;
            let mut total = 0usize;
            for &i in group {
                query_ids.extend_from_slice(&partitions[i].query_ids);
                weighted_density += partitions[i].density * partitions[i].len() as f64;
                total += partitions[i].len();
            }
            let sphere_test = match params.mode {
                SearchMode::Knn => true,
                SearchMode::Range => width > inscribed,
            };
            Partition {
                aabb_width: width,
                query_ids,
                megacell_width,
                sphere_test,
                density: if total > 0 {
                    weighted_density / total as f64
                } else {
                    0.0
                },
            }
        })
        .collect()
}

#[cfg(test)]
mod tests {
    use super::*;
    use rtnn_gpusim::Device;

    fn coeffs() -> CostCoefficients {
        CostCoefficients::calibrate(&Device::rtx_2080())
    }

    /// Synthetic partitions following the Figure 16 shape: query count and
    /// AABB width inversely correlated.
    fn synthetic_partitions(sizes_and_widths: &[(usize, f32)]) -> Vec<Partition> {
        let mut next_query = 0u32;
        sizes_and_widths
            .iter()
            .map(|&(n, w)| {
                let ids: Vec<u32> = (next_query..next_query + n as u32).collect();
                next_query += n as u32;
                Partition {
                    aabb_width: w,
                    query_ids: ids,
                    megacell_width: w / 1.5,
                    sphere_test: true,
                    density: 32.0 / (w as f64 / 1.5).powi(3),
                }
            })
            .collect()
    }

    #[test]
    fn empty_partitions_give_an_empty_plan() {
        let plan = plan_bundles(&[], 1000, &SearchParams::knn(1.0, 8), &coeffs());
        assert_eq!(plan.num_bundles(), 0);
        assert_eq!(plan.estimated_cost_ms, 0.0);
    }

    #[test]
    fn plan_never_costs_more_than_no_bundling() {
        let parts = synthetic_partitions(&[
            (100_000, 0.4),
            (20_000, 0.8),
            (3_000, 1.4),
            (200, 2.0),
            (40, 2.6),
        ]);
        for params in [SearchParams::knn(1.5, 32), SearchParams::range(1.5, 32)] {
            let plan = plan_bundles(&parts, 500_000, &params, &coeffs());
            assert!(plan.estimated_cost_ms <= plan.unbundled_cost_ms + 1e-12);
            assert!(plan.num_bundles() >= 1 && plan.num_bundles() <= parts.len());
        }
    }

    #[test]
    fn tiny_partitions_get_bundled() {
        // Many tiny partitions: the per-partition build cost dominates, so
        // the planner must merge them.
        let parts = synthetic_partitions(&[
            (50, 0.4),
            (40, 0.6),
            (30, 0.9),
            (20, 1.3),
            (10, 1.9),
            (5, 2.5),
        ]);
        let plan = plan_bundles(&parts, 2_000_000, &SearchParams::knn(1.5, 16), &coeffs());
        assert!(
            plan.num_bundles() < parts.len(),
            "expected bundling, got {:?}",
            plan.groups
        );
    }

    #[test]
    fn huge_partitions_stay_separate_for_knn() {
        // Very large partitions with very different AABB sizes: merging them
        // would blow up the search cost (Equation 5), so the planner keeps
        // them apart even though that means more builds.
        let parts = synthetic_partitions(&[(4_000_000, 0.2), (2_000_000, 1.0), (1_000_000, 3.0)]);
        let plan = plan_bundles(&parts, 100_000, &SearchParams::knn(2.0, 32), &coeffs());
        assert_eq!(plan.num_bundles(), parts.len());
    }

    #[test]
    fn every_partition_appears_exactly_once_in_the_plan() {
        let parts = synthetic_partitions(&[(1000, 0.5), (500, 0.8), (100, 1.2), (10, 2.0)]);
        let plan = plan_bundles(&parts, 50_000, &SearchParams::range(1.5, 16), &coeffs());
        let mut seen = vec![false; parts.len()];
        for g in &plan.groups {
            for &i in g {
                assert!(!seen[i]);
                seen[i] = true;
            }
        }
        assert!(seen.iter().all(|&s| s));
    }

    #[test]
    fn apply_bundles_merges_queries_and_takes_the_max_width() {
        let parts = synthetic_partitions(&[(10, 0.5), (5, 1.0), (2, 2.0)]);
        let plan = BundlePlan {
            groups: vec![vec![0], vec![1, 2]],
            estimated_cost_ms: 0.0,
            unbundled_cost_ms: 0.0,
        };
        let params = SearchParams::range(2.0, 8);
        let merged = apply_bundles(&parts, &plan, &params);
        assert_eq!(merged.len(), 2);
        assert_eq!(merged[0].len(), 10);
        assert_eq!(merged[1].len(), 7);
        assert_eq!(merged[1].aabb_width, 2.0);
        // Total queries preserved.
        let total: usize = merged.iter().map(Partition::len).sum();
        assert_eq!(total, 17);
        // The merged bundle's width (2.0) is not inside the inscribed cube of
        // a radius-2 sphere (2·2/√3 ≈ 2.31), so the sphere test... is skipped
        // only when width <= inscribed; 2.0 <= 2.31, so it may be skipped.
        assert!(!merged[1].sphere_test);
    }

    #[test]
    fn bundled_search_cost_exceeds_separate_search_cost_for_knn() {
        // Equation 5: merging increases the search component (ignoring build
        // savings) because the bundle inherits the largest AABB.
        let parts = synthetic_partitions(&[(1000, 0.4), (800, 1.2)]);
        let params = SearchParams::knn(2.0, 16);
        let c = coeffs();
        let separate: f64 = parts
            .iter()
            .map(|p| search_cost_ms(&[p], p.aabb_width as f64, &params, &c))
            .sum();
        let merged = search_cost_ms(&[&parts[0], &parts[1]], 1.2, &params, &c);
        assert!(merged > separate);
    }
}
