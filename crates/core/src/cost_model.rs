//! The analytical cost model of Section 5.2 (Equations 2–4) and Appendix A.
//!
//! `T = Σ_i (T_build^i + T_search^i)` where
//!
//! * `T_build = k1 · M` — BVH construction is linear in the number of AABBs
//!   (every partition's BVH contains *all* points, so `M` is the point
//!   count);
//! * KNN: `T_search = k2 · N · ρ · S³` — per-query IS work is the number of
//!   leaf AABBs the query resides in, i.e. AABB volume × local density;
//! * range: `T_search = k3 · N · K` — the search stops at `K` IS calls, with
//!   `k3` an order of magnitude cheaper when the partition's AABB is
//!   inscribed in the search sphere (sphere test elided).
//!
//! The paper obtains the `k1 : k2` ratio by offline profiling on the real
//! GPU; here the coefficients are derived from the simulator's own cost
//! model ([`CostCoefficients::calibrate`]), which plays the same role — the
//! bundling decision only needs the ratios to be faithful to the device the
//! search will actually run on.

use rtnn_gpusim::{Device, IsShaderKind};
use serde::{Deserialize, Serialize};

/// Calibrated device-level cost coefficients, all in milliseconds per unit.
#[derive(Debug, Clone, Copy, PartialEq, Serialize, Deserialize)]
pub struct CostCoefficients {
    /// Milliseconds per AABB of acceleration-structure build (`k1`).
    pub k_build_ms_per_aabb: f64,
    /// Fixed overhead per build launch, milliseconds.
    pub k_build_fixed_ms: f64,
    /// Milliseconds per AABB of in-place acceleration-structure *refit*
    /// (the dynamic-scene update path; much smaller than `k1`).
    pub k_refit_ms_per_aabb: f64,
    /// Fixed overhead per refit launch, milliseconds.
    pub k_refit_fixed_ms: f64,
    /// Milliseconds per KNN IS call (`k2`), amortised across the device.
    pub k_is_knn_ms: f64,
    /// Milliseconds per range IS call with the sphere test (`k3`, touching
    /// case of Appendix A).
    pub k_is_range_sphere_ms: f64,
    /// Milliseconds per range IS call without the sphere test (`k3`,
    /// non-touching case).
    pub k_is_range_no_sphere_ms: f64,
}

impl CostCoefficients {
    /// Derive the coefficients from a device configuration — the stand-in
    /// for the paper's offline profiling pass.
    pub fn calibrate(device: &Device) -> Self {
        let cfg = device.config();
        // Device-level amortised cost of one IS call: its SM cycles divided
        // by the clock, spread over the SMs that execute warps concurrently.
        let per_call = |kind: IsShaderKind| {
            cfg.cost.is_call_cycles(kind) / (cfg.clock_ghz * 1e6) / cfg.num_sms as f64
        };
        // Build cost per AABB straight from the build-rate model.
        let build_two = device.accel_build_time_ms(2_000_000);
        let build_one = device.accel_build_time_ms(1_000_000);
        let k_build = (build_two - build_one) / 1_000_000.0;
        let fixed = (2.0 * build_one - build_two).max(0.0);
        let refit_two = device.accel_refit_time_ms(2_000_000);
        let refit_one = device.accel_refit_time_ms(1_000_000);
        let k_refit = (refit_two - refit_one) / 1_000_000.0;
        let refit_fixed = (2.0 * refit_one - refit_two).max(0.0);
        CostCoefficients {
            k_build_ms_per_aabb: k_build,
            k_build_fixed_ms: fixed,
            k_refit_ms_per_aabb: k_refit,
            k_refit_fixed_ms: refit_fixed,
            k_is_knn_ms: per_call(IsShaderKind::Knn),
            k_is_range_sphere_ms: per_call(IsShaderKind::RangeSphereTest),
            k_is_range_no_sphere_ms: per_call(IsShaderKind::RangeNoSphereTest),
        }
    }

    /// Estimated milliseconds to build one BVH over `num_aabbs` primitives.
    pub fn build_ms(&self, num_aabbs: usize) -> f64 {
        if num_aabbs == 0 {
            0.0
        } else {
            self.k_build_fixed_ms + self.k_build_ms_per_aabb * num_aabbs as f64
        }
    }

    /// Estimated milliseconds to refit one existing BVH over `num_aabbs`
    /// primitives in place.
    pub fn refit_ms(&self, num_aabbs: usize) -> f64 {
        if num_aabbs == 0 {
            0.0
        } else {
            self.k_refit_fixed_ms + self.k_refit_ms_per_aabb * num_aabbs as f64
        }
    }

    /// The `k1 : k2` ratio the paper quotes (build-per-AABB to KNN-IS-call).
    pub fn build_to_knn_is_ratio(&self) -> f64 {
        self.k_build_ms_per_aabb / self.k_is_knn_ms
    }

    /// The per-IS-call coefficient the auto-tuner's cold start charges for
    /// a plan kind (a [`Signature`](rtnn_telemetry::Signature) coordinate):
    /// `k2` for KNN, the sphere-test `k3` for range, and KNN pricing for
    /// heterogeneous batches (their dominant slice in the paper's mixes).
    pub fn is_ms_for_kind(&self, plan_kind: &str) -> f64 {
        match plan_kind {
            "range" => self.k_is_range_sphere_ms,
            _ => self.k_is_knn_ms,
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn calibration_produces_positive_coefficients() {
        let c = CostCoefficients::calibrate(&Device::rtx_2080());
        assert!(c.k_build_ms_per_aabb > 0.0);
        assert!(c.k_is_knn_ms > 0.0);
        assert!(c.k_is_range_sphere_ms > 0.0);
        assert!(c.k_is_range_no_sphere_ms > 0.0);
        assert!(c.k_build_fixed_ms >= 0.0);
    }

    #[test]
    fn refit_coefficients_undercut_build_coefficients() {
        let c = CostCoefficients::calibrate(&Device::rtx_2080());
        assert!(c.k_refit_ms_per_aabb > 0.0);
        assert!(c.k_refit_ms_per_aabb < c.k_build_ms_per_aabb);
        assert!(c.k_refit_fixed_ms <= c.k_build_fixed_ms);
        for n in [10_000usize, 1_000_000] {
            assert!(c.refit_ms(n) < c.build_ms(n));
        }
        assert_eq!(c.refit_ms(0), 0.0);
    }

    #[test]
    fn coefficient_ordering_matches_the_paper() {
        let c = CostCoefficients::calibrate(&Device::rtx_2080());
        // KNN IS calls are the most expensive, sphere-test range next, and
        // the elided-sphere-test range IS is the cheapest (Appendix A).
        assert!(c.k_is_knn_ms > c.k_is_range_sphere_ms);
        assert!(c.k_is_range_sphere_ms > c.k_is_range_no_sphere_ms);
    }

    #[test]
    fn build_cost_is_linear() {
        let c = CostCoefficients::calibrate(&Device::rtx_2080());
        let b1 = c.build_ms(1_000_000);
        let b2 = c.build_ms(2_000_000);
        let b3 = c.build_ms(3_000_000);
        assert!(((b3 - b2) - (b2 - b1)).abs() < 1e-9);
        assert_eq!(c.build_ms(0), 0.0);
    }

    #[test]
    fn faster_device_has_cheaper_coefficients() {
        let a = CostCoefficients::calibrate(&Device::rtx_2080());
        let b = CostCoefficients::calibrate(&Device::rtx_2080_ti());
        assert!(b.k_build_ms_per_aabb < a.k_build_ms_per_aabb);
        assert!(b.k_is_knn_ms < a.k_is_knn_ms);
    }

    #[test]
    fn per_kind_is_cost_follows_the_shader_coefficients() {
        let c = CostCoefficients::calibrate(&Device::rtx_2080());
        assert_eq!(c.is_ms_for_kind("knn"), c.k_is_knn_ms);
        assert_eq!(c.is_ms_for_kind("range"), c.k_is_range_sphere_ms);
        assert_eq!(c.is_ms_for_kind("batch"), c.k_is_knn_ms);
    }

    #[test]
    fn ratio_is_finite_and_small() {
        // Build-per-AABB is much cheaper than one (device-amortised) IS call
        // would be expensive — the ratio is simply reported for EXPERIMENTS.md.
        let c = CostCoefficients::calibrate(&Device::rtx_2080());
        let r = c.build_to_knn_is_ratio();
        assert!(r.is_finite() && r > 0.0);
    }
}
