//! The legacy single-plan engine, kept as thin deprecated shims over the
//! two-level [`Index`](crate::Index) / [`QueryPlan`] API.
//!
//! [`Rtnn`] fuses scene and query: one `(radius, K, mode)` is baked into
//! the engine at construction, so every new radius or K means a new engine
//! and a redundant structure rebuild. New code should build an
//! [`Index`](crate::Index) once and pass typed plans per call (see the
//! README migration table); [`Rtnn::search`] / [`Rtnn::search_prepared`]
//! remain so existing callers keep compiling and keep getting bit-identical
//! results — they run the exact same execution core.

use crate::approx::ApproxMode;
use crate::backend::GpusimBackend;
use crate::index::{AccelStore, EngineConfig, SceneRefs};
use crate::megacell::MegacellGrid;
use crate::partition::{KnnAabbRule, MegacellCache};
use crate::pipeline::ExecutionPipeline;
use crate::plan::{PlanError, QueryPlan};
use crate::result::{SearchParams, SearchResults};
use rtnn_bvh::BuildParams;
use rtnn_gpusim::device::OutOfDeviceMemory;
use rtnn_gpusim::Device;
use rtnn_math::{Aabb, Vec3};
use rtnn_optix::Gas;

/// Which of the paper's optimisations are enabled — the five configurations
/// compared in Figure 13 (the `Oracle` variant is an exhaustive search over
/// these configurations and lives in the bench harness).
#[derive(Debug, Clone, Copy, PartialEq, Eq, PartialOrd, Ord, Default)]
pub enum OptLevel {
    /// The basic mapping only (Section 3.1); equivalent to the FastRNN
    /// baseline for KNN.
    NoOpt,
    /// Plus spatially-ordered query scheduling (Section 4).
    Sched,
    /// Plus query partitioning with one BVH per partition (Section 5.1).
    SchedPartition,
    /// Plus partition bundling with the analytical cost model (Section 5.2).
    /// The default.
    #[default]
    Full,
}

impl OptLevel {
    /// All levels in ascending order (used by the ablation bench).
    pub fn all() -> [OptLevel; 4] {
        [
            OptLevel::NoOpt,
            OptLevel::Sched,
            OptLevel::SchedPartition,
            OptLevel::Full,
        ]
    }

    /// Label used in figures and reports.
    pub fn label(&self) -> &'static str {
        match self {
            OptLevel::NoOpt => "NoOpt",
            OptLevel::Sched => "Sched.",
            OptLevel::SchedPartition => "Sched.+Partition",
            OptLevel::Full => "Sched.+Partition+Bundle",
        }
    }

    pub(crate) fn scheduling(&self) -> bool {
        *self >= OptLevel::Sched
    }

    pub(crate) fn partitioning(&self) -> bool {
        *self >= OptLevel::SchedPartition
    }

    pub(crate) fn bundling(&self) -> bool {
        *self >= OptLevel::Full
    }
}

/// The legacy all-in-one configuration: per-query search parameters fused
/// with engine-wide tuning. New code should hold an
/// [`EngineConfig`] and pass per-call
/// [`QueryPlan`]s instead; [`RtnnConfig::engine`] and
/// [`RtnnConfig::plan`] split a legacy config into the two halves.
#[derive(Debug, Clone, Copy)]
pub struct RtnnConfig {
    /// Search radius, K, and variant.
    pub params: SearchParams,
    /// Which optimisations to enable.
    pub opt: OptLevel,
    /// BVH builder configuration.
    pub build: BuildParams,
    /// How KNN partition AABB widths are derived (default: guaranteed-exact).
    pub knn_rule: KnnAabbRule,
    /// Approximation mode (default: exact).
    pub approx: ApproxMode,
    /// Grid-resolution budget for the megacell pass (stands in for the GPU
    /// memory cap the paper mentions).
    pub grid_max_cells: usize,
}

impl RtnnConfig {
    /// A configuration with every optimisation enabled and exact results.
    pub fn new(params: SearchParams) -> Self {
        RtnnConfig {
            params,
            opt: OptLevel::Full,
            build: BuildParams::default(),
            knn_rule: KnnAabbRule::default(),
            approx: ApproxMode::default(),
            grid_max_cells: 1 << 21,
        }
    }

    /// Set the optimisation level.
    pub fn with_opt(mut self, opt: OptLevel) -> Self {
        self.opt = opt;
        self
    }

    /// Set the KNN AABB rule.
    pub fn with_knn_rule(mut self, rule: KnnAabbRule) -> Self {
        self.knn_rule = rule;
        self
    }

    /// Set the approximation mode.
    pub fn with_approx(mut self, approx: ApproxMode) -> Self {
        self.approx = approx;
        self
    }

    /// Set the megacell grid budget.
    ///
    /// # Panics
    ///
    /// Panics on `cells == 0` with a clear message (a zero budget used to
    /// be accepted silently); hand-assembled configs are additionally
    /// rejected with [`PlanError::ZeroGridBudget`] at search time.
    pub fn with_grid_max_cells(mut self, cells: usize) -> Self {
        self.grid_max_cells = crate::index::checked_grid_budget(cells);
        self
    }

    /// The engine-wide half of this configuration (everything except the
    /// per-query search parameters).
    pub fn engine(&self) -> EngineConfig {
        EngineConfig {
            opt: self.opt,
            build: self.build,
            knn_rule: self.knn_rule,
            approx: self.approx,
            grid_max_cells: self.grid_max_cells,
            // The legacy one-config engine always selects stages statically;
            // adaptive selection lives on `DynamicIndex::enable_auto` and
            // `EngineConfig::auto`.
            tuning: crate::autotune::Tuning::Static,
        }
    }

    /// The per-query half of this configuration as a typed plan.
    pub fn plan(&self) -> QueryPlan {
        QueryPlan::from_params(self.params)
    }

    /// The full AABB width the global acceleration structure uses for this
    /// configuration (`2r` scaled by the approximation mode).
    pub fn global_aabb_width(&self) -> f32 {
        2.0 * self.params.radius * self.approx.aabb_width_factor()
    }
}

/// Errors a search can report.
#[derive(Debug, Clone, PartialEq)]
pub enum SearchError {
    /// The query plan, search parameters or engine configuration are
    /// invalid; the typed [`PlanError`] names the offending field.
    InvalidPlan(PlanError),
    /// The working set does not fit in the simulated device memory (the
    /// `OOM` outcomes of Figure 11).
    OutOfDeviceMemory(OutOfDeviceMemory),
}

impl std::fmt::Display for SearchError {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        match self {
            SearchError::InvalidPlan(e) => write!(f, "invalid configuration: {e}"),
            SearchError::OutOfDeviceMemory(e) => write!(f, "{e}"),
        }
    }
}

impl std::error::Error for SearchError {}

impl From<OutOfDeviceMemory> for SearchError {
    fn from(e: OutOfDeviceMemory) -> Self {
        SearchError::OutOfDeviceMemory(e)
    }
}

impl From<PlanError> for SearchError {
    fn from(e: PlanError) -> Self {
        SearchError::InvalidPlan(e)
    }
}

/// A scene whose expensive per-search state is owned and maintained by the
/// caller across query rounds, handed to [`Rtnn::search_prepared`].
///
/// This is the engine-side half of the streaming contract: the caller (the
/// `rtnn-dynamic` crate's `DynamicIndex`) keeps the global acceleration
/// structure alive between frames — refitting it in place when points drift,
/// rebuilding it when quality degrades — and keeps the megacell grid plus a
/// per-query megacell cache that is invalidated incrementally from the
/// grid's dirty region rather than recomputed wholesale.
pub struct PreparedScene<'a> {
    /// The global acceleration structure over the current point positions,
    /// with one width-[`Rtnn::global_aabb_width`] cube per point.
    pub gas: &'a Gas,
    /// Simulated milliseconds the caller spent maintaining `gas` for this
    /// frame (refit or rebuild time); charged to the `BVH` breakdown slot.
    pub structure_ms: f64,
    /// Prebuilt megacell state for the partitioning pass (`None` falls back
    /// to growing a fresh grid inside the search, or is ignored entirely
    /// below [`OptLevel::SchedPartition`]).
    pub megacells: Option<PreparedMegacells<'a>>,
}

/// Megacell state carried across frames (see [`PreparedScene`]).
pub struct PreparedMegacells<'a> {
    /// Grid over the current point positions (built once, then refreshed
    /// incrementally with [`MegacellGrid::refresh`]).
    pub grid: &'a MegacellGrid,
    /// Bounds of every grid cell whose population changed since the cache
    /// entries were written ([`Aabb::EMPTY`] when none did).
    pub dirty_region: Aabb,
    /// Per-query megacell results from earlier frames; updated in place.
    pub cache: &'a mut MegacellCache,
}

/// The legacy RTNN search engine, bound to a simulated device. A thin shim
/// over the [`Index`](crate::Index) execution core — see the module docs
/// and the README migration table.
#[derive(Debug, Clone)]
pub struct Rtnn<'d> {
    device: &'d Device,
    backend: GpusimBackend<'d>,
    config: RtnnConfig,
}

impl<'d> Rtnn<'d> {
    /// Create an engine.
    pub fn new(device: &'d Device, config: RtnnConfig) -> Self {
        Rtnn {
            device,
            backend: GpusimBackend::new(device),
            config,
        }
    }

    /// The engine's configuration.
    pub fn config(&self) -> &RtnnConfig {
        &self.config
    }

    /// The device the engine runs on.
    pub fn device(&self) -> &Device {
        self.device
    }

    /// The full AABB width the global acceleration structure uses for this
    /// configuration (`2r` scaled by the approximation mode). A reusable
    /// index ([`Rtnn::search_prepared`]) must build/refit its GAS at exactly
    /// this width.
    pub fn global_aabb_width(&self) -> f32 {
        self.config.global_aabb_width()
    }

    /// Run the search: for every query, find its neighbors among `points`
    /// according to the configured [`SearchParams`].
    #[deprecated(
        note = "build an `Index` once and pass a per-call `QueryPlan` instead: \
                `Index::build(&backend, points, config.engine()).query(queries, &config.plan())` \
                — see the README migration table"
    )]
    pub fn search(&self, points: &[Vec3], queries: &[Vec3]) -> Result<SearchResults, SearchError> {
        let mut store = AccelStore::new();
        let config = self.config.engine();
        ExecutionPipeline::new(&self.backend, &config).execute(
            self.config.params,
            points,
            queries,
            &mut store,
            SceneRefs::fresh(),
        )
    }

    /// Run the search against a *persistent* scene whose global acceleration
    /// structure (and optionally megacell grid + per-query megacell cache)
    /// is maintained across query rounds by the caller. Instead of building
    /// the global GAS from scratch, the prepared structure is traversed
    /// directly and the caller-supplied maintenance cost (`structure_ms`)
    /// is charged to the `BVH` component of the breakdown.
    ///
    /// The caller guarantees that `prepared.gas` holds one width-
    /// [`Rtnn::global_aabb_width`] cube per point at the points' *current*
    /// positions, and that a supplied megacell grid was built/refreshed over
    /// the current positions.
    #[deprecated(
        note = "use `Index::adopt` (or `DynamicIndex::as_index`) and `Index::query` with a \
                per-call `QueryPlan` — see the README migration table"
    )]
    pub fn search_prepared(
        &self,
        points: &[Vec3],
        queries: &[Vec3],
        prepared: PreparedScene<'_>,
    ) -> Result<SearchResults, SearchError> {
        debug_assert_eq!(prepared.gas.num_primitives(), points.len());
        let mut store = AccelStore::new();
        store.adopt_gas(prepared.gas, self.global_aabb_width());
        let (grid, dirty_region, cache) = match prepared.megacells {
            Some(pm) => (Some(pm.grid), pm.dirty_region, Some(pm.cache)),
            None => (None, Aabb::EMPTY, None),
        };
        let config = self.config.engine();
        ExecutionPipeline::new(&self.backend, &config).execute(
            self.config.params,
            points,
            queries,
            &mut store,
            SceneRefs {
                structure_ms: prepared.structure_ms,
                grid,
                dirty_region,
                cache,
            },
        )
    }
}

#[cfg(test)]
mod tests {
    #![allow(deprecated)] // the shims are exactly what these tests exercise

    use super::*;
    use crate::verify::check_all;
    use rtnn_parallel::par_map;

    fn grid_points(n_per_axis: usize, spacing: f32) -> Vec<Vec3> {
        let mut pts = Vec::new();
        for x in 0..n_per_axis {
            for y in 0..n_per_axis {
                for z in 0..n_per_axis {
                    pts.push(Vec3::new(x as f32, y as f32, z as f32) * spacing);
                }
            }
        }
        pts
    }

    fn point_aabbs(points: &[Vec3], width: f32) -> Vec<Aabb> {
        par_map(points.len(), |i| Aabb::cube(points[i], width))
    }

    fn run(
        params: SearchParams,
        opt: OptLevel,
        points: &[Vec3],
        queries: &[Vec3],
    ) -> SearchResults {
        let device = Device::rtx_2080();
        let engine = Rtnn::new(&device, RtnnConfig::new(params).with_opt(opt));
        engine.search(points, queries).unwrap()
    }

    #[test]
    fn range_search_matches_oracle_at_every_opt_level() {
        let points = grid_points(7, 1.0);
        let queries: Vec<Vec3> = points.iter().step_by(3).copied().collect();
        let params = SearchParams::range(1.6, 64);
        for opt in OptLevel::all() {
            let results = run(params, opt, &points, &queries);
            check_all(&points, &queries, &params, &results.neighbors)
                .unwrap_or_else(|(q, e)| panic!("{opt:?}, query {q}: {e}"));
        }
    }

    #[test]
    fn knn_search_matches_oracle_at_every_opt_level() {
        let points = grid_points(7, 0.5);
        let queries: Vec<Vec3> = points.iter().step_by(5).copied().collect();
        let params = SearchParams::knn(1.2, 10);
        for opt in OptLevel::all() {
            let results = run(params, opt, &points, &queries);
            check_all(&points, &queries, &params, &results.neighbors)
                .unwrap_or_else(|(q, e)| panic!("{opt:?}, query {q}: {e}"));
        }
    }

    #[test]
    fn range_search_respects_the_k_cap() {
        let points = grid_points(6, 0.3);
        let queries = vec![Vec3::new(0.9, 0.9, 0.9)];
        let params = SearchParams::range(1.0, 5);
        let results = run(params, OptLevel::Full, &points, &queries);
        assert_eq!(results.neighbors[0].len(), 5);
        check_all(&points, &queries, &params, &results.neighbors).unwrap();
    }

    #[test]
    fn empty_inputs_are_handled() {
        let device = Device::rtx_2080();
        let engine = Rtnn::new(&device, RtnnConfig::new(SearchParams::range(1.0, 4)));
        let no_queries = engine.search(&[Vec3::ZERO], &[]).unwrap();
        assert!(no_queries.neighbors.is_empty());
        let no_points = engine.search(&[], &[Vec3::ZERO, Vec3::ONE]).unwrap();
        assert_eq!(no_points.neighbors.len(), 2);
        assert!(no_points.neighbors.iter().all(Vec::is_empty));
    }

    #[test]
    fn invalid_configs_are_rejected() {
        let device = Device::rtx_2080();
        let bad_radius = Rtnn::new(&device, RtnnConfig::new(SearchParams::range(-1.0, 4)));
        assert!(matches!(
            bad_radius.search(&[Vec3::ZERO], &[Vec3::ZERO]),
            Err(SearchError::InvalidPlan(PlanError::InvalidRadius { .. }))
        ));
        let bad_approx = Rtnn::new(
            &device,
            RtnnConfig::new(SearchParams::range(1.0, 4))
                .with_approx(ApproxMode::ShrunkenAabb { factor: 2.0 }),
        );
        let err = bad_approx.search(&[Vec3::ZERO], &[Vec3::ZERO]).unwrap_err();
        assert!(err.to_string().contains("invalid configuration"));
    }

    #[test]
    #[should_panic(expected = "grid_max_cells must be a positive cell budget")]
    fn zero_grid_budget_is_rejected_by_the_builder() {
        let _ = RtnnConfig::new(SearchParams::range(1.0, 4)).with_grid_max_cells(0);
    }

    #[test]
    fn breakdown_components_reflect_the_opt_level() {
        let points = grid_points(8, 1.0);
        let queries = points.clone();
        let params = SearchParams::knn(2.0, 8);
        let noopt = run(params, OptLevel::NoOpt, &points, &queries);
        assert_eq!(noopt.breakdown.fs_ms, 0.0);
        assert_eq!(noopt.breakdown.opt_ms, 0.0);
        assert_eq!(noopt.num_partitions, 1);
        let sched = run(params, OptLevel::Sched, &points, &queries);
        assert!(sched.breakdown.fs_ms > 0.0);
        assert!(sched.breakdown.opt_ms > 0.0);
        let full = run(params, OptLevel::Full, &points, &queries);
        assert!(full.num_partitions >= 1);
        assert!(full.num_bundles <= full.num_partitions);
        assert!(full.breakdown.total_ms() > 0.0);
        assert!(full.breakdown.data_ms > 0.0);
    }

    #[test]
    fn partitioning_reduces_is_calls_on_dense_clouds() {
        // Observation 2 turned into the Section 5 optimisation: per-partition
        // AABBs are smaller than 2r, so the search does fewer IS calls.
        let points = grid_points(10, 0.25);
        let queries = points.clone();
        let params = SearchParams::knn(2.0, 8);
        let sched = run(params, OptLevel::Sched, &points, &queries);
        let part = run(params, OptLevel::SchedPartition, &points, &queries);
        assert!(
            part.search_metrics.is_calls < sched.search_metrics.is_calls,
            "partitioned {} vs global {}",
            part.search_metrics.is_calls,
            sched.search_metrics.is_calls
        );
        check_all(&points, &queries, &params, &part.neighbors)
            .unwrap_or_else(|(q, e)| panic!("query {q}: {e}"));
    }

    #[test]
    fn approximate_modes_trade_recall_for_speed_within_bounds() {
        let points = grid_points(8, 0.5);
        let queries: Vec<Vec3> = points.iter().step_by(7).copied().collect();
        let params = SearchParams::range(1.0, 1000);
        let device = Device::rtx_2080();
        let exact = Rtnn::new(&device, RtnnConfig::new(params).with_opt(OptLevel::Sched))
            .search(&points, &queries)
            .unwrap();
        // Shrunken AABBs: subset of the exact result, never outside r.
        let shrunk = Rtnn::new(
            &device,
            RtnnConfig::new(params)
                .with_opt(OptLevel::Sched)
                .with_approx(ApproxMode::ShrunkenAabb { factor: 0.6 }),
        )
        .search(&points, &queries)
        .unwrap();
        for (qi, q) in queries.iter().enumerate() {
            let exact_set: std::collections::HashSet<u32> =
                exact.neighbors[qi].iter().copied().collect();
            for &id in &shrunk.neighbors[qi] {
                assert!(exact_set.contains(&id));
                assert!(q.distance(points[id as usize]) < params.radius);
            }
            assert!(shrunk.neighbors[qi].len() <= exact.neighbors[qi].len());
        }
        // Skipped sphere test: superset within sqrt(3) * r.
        let skipped = Rtnn::new(
            &device,
            RtnnConfig::new(params)
                .with_opt(OptLevel::Sched)
                .with_approx(ApproxMode::SkipSphereTest),
        )
        .search(&points, &queries)
        .unwrap();
        let bound = ApproxMode::SkipSphereTest.distance_bound(params.radius) + 1e-5;
        for (qi, q) in queries.iter().enumerate() {
            assert!(skipped.neighbors[qi].len() >= exact.neighbors[qi].len());
            for &id in &skipped.neighbors[qi] {
                assert!(q.distance(points[id as usize]) <= bound);
            }
        }
        // And it does less shader work than the exact search.
        assert!(skipped.search_metrics.kernel.sm_cycles < exact.search_metrics.kernel.sm_cycles);
    }

    #[test]
    fn knn_heuristic_rules_still_produce_bounded_results() {
        // The paper's equi-volume heuristic is not guaranteed exact, but all
        // returned neighbors must respect the radius bound and count cap.
        let points = grid_points(8, 0.5);
        let queries: Vec<Vec3> = points.iter().step_by(3).copied().collect();
        let params = SearchParams::knn(1.5, 6);
        let device = Device::rtx_2080();
        let results = Rtnn::new(
            &device,
            RtnnConfig::new(params).with_knn_rule(KnnAabbRule::EquiVolume),
        )
        .search(&points, &queries)
        .unwrap();
        for (qi, q) in queries.iter().enumerate() {
            assert!(results.neighbors[qi].len() <= params.k);
            for &id in &results.neighbors[qi] {
                assert!(q.distance(points[id as usize]) < params.radius);
            }
        }
    }

    #[test]
    fn prepared_search_matches_batch_search_and_charges_structure_time() {
        let points = grid_points(7, 0.8);
        let queries: Vec<Vec3> = points.iter().step_by(2).copied().collect();
        let device = Device::rtx_2080();
        for params in [SearchParams::knn(1.5, 6), SearchParams::range(1.5, 64)] {
            for opt in OptLevel::all() {
                let engine = Rtnn::new(&device, RtnnConfig::new(params).with_opt(opt));
                let batch = engine.search(&points, &queries).unwrap();

                let gas = Gas::build(
                    &device,
                    &point_aabbs(&points, engine.global_aabb_width()),
                    engine.config().build,
                )
                .unwrap();
                let grid = MegacellGrid::build(&points, engine.config().grid_max_cells).unwrap();
                let mut cache = MegacellCache::new(queries.len());
                let prepared = engine
                    .search_prepared(
                        &points,
                        &queries,
                        PreparedScene {
                            gas: &gas,
                            structure_ms: 0.01,
                            megacells: Some(PreparedMegacells {
                                grid: &grid,
                                dirty_region: Aabb::EMPTY,
                                cache: &mut cache,
                            }),
                        },
                    )
                    .unwrap();
                assert_eq!(
                    prepared.neighbors, batch.neighbors,
                    "{params:?} {opt:?}: prepared search must be bit-identical"
                );
                // The caller-supplied maintenance cost replaces the build
                // time of the global structure.
                assert!(prepared.breakdown.bvh_ms >= 0.01);
                assert!(prepared.breakdown.bvh_ms < batch.breakdown.bvh_ms);
            }
        }
    }

    #[test]
    fn oom_is_reported_for_clouds_that_do_not_fit() {
        let device = Device::tiny_test_device(); // 256 MB
        let engine = Rtnn::new(&device, RtnnConfig::new(SearchParams::knn(1.0, 1_000_000)));
        // 30M queries * 1M results would need terabytes; the footprint check
        // fires before any allocation happens host-side.
        let points = vec![Vec3::ZERO; 8];
        let queries = vec![Vec3::ZERO; 100_000];
        assert!(matches!(
            engine.search(&points, &queries),
            Err(SearchError::OutOfDeviceMemory(_))
        ));
    }

    #[test]
    fn legacy_shim_and_index_are_bit_identical() {
        // The acceptance contract of the API redesign: the deprecated shim
        // and the new per-plan path run the same execution core.
        use crate::backend::GpusimBackend;
        use crate::index::Index;
        let device = Device::rtx_2080();
        let backend = GpusimBackend::new(&device);
        let points = grid_points(7, 0.7);
        let queries: Vec<Vec3> = points.iter().step_by(3).copied().collect();
        for params in [SearchParams::knn(1.4, 7), SearchParams::range(1.1, 64)] {
            for opt in OptLevel::all() {
                let config = RtnnConfig::new(params).with_opt(opt);
                let legacy = Rtnn::new(&device, config)
                    .search(&points, &queries)
                    .unwrap();
                let mut index = Index::build(&backend, &points[..], config.engine());
                let modern = index.query(&queries, &config.plan()).unwrap();
                assert_eq!(
                    legacy.neighbors, modern.neighbors,
                    "{params:?} {opt:?}: Index::query must be bit-equal to Rtnn::search"
                );
                assert_eq!(legacy.num_partitions, modern.num_partitions);
                assert_eq!(legacy.num_bundles, modern.num_bundles);
            }
        }
    }
}
