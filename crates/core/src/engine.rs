//! The end-to-end RTNN search engine: ties together the basic mapping, query
//! scheduling, partitioning and bundling, and produces the per-phase time
//! breakdown of Figure 12.

use crate::approx::ApproxMode;
use crate::bundling::{apply_bundles, plan_bundles};
use crate::cost_model::CostCoefficients;
use crate::megacell::MegacellGrid;
use crate::partition::{
    partition_queries, partition_queries_cached, KnnAabbRule, MegacellCache, Partition,
    PartitionSet,
};
use crate::result::{SearchMode, SearchParams, SearchResults, TimeBreakdown};
use crate::scheduling::{schedule_queries, QuerySchedule};
use crate::shaders::{KnnProgram, QueryIndexing, RangeProgram};
use rtnn_bvh::BuildParams;
use rtnn_gpusim::device::OutOfDeviceMemory;
use rtnn_gpusim::kernel::point_cloud_bytes;
use rtnn_gpusim::{Device, IsShaderKind};
use rtnn_math::{Aabb, Vec3};
use rtnn_optix::{Gas, LaunchMetrics, Pipeline};

/// Which of the paper's optimisations are enabled — the five configurations
/// compared in Figure 13 (the `Oracle` variant is an exhaustive search over
/// these configurations and lives in the bench harness).
#[derive(Debug, Clone, Copy, PartialEq, Eq, PartialOrd, Ord, Default)]
pub enum OptLevel {
    /// The basic mapping only (Section 3.1); equivalent to the FastRNN
    /// baseline for KNN.
    NoOpt,
    /// Plus spatially-ordered query scheduling (Section 4).
    Sched,
    /// Plus query partitioning with one BVH per partition (Section 5.1).
    SchedPartition,
    /// Plus partition bundling with the analytical cost model (Section 5.2).
    /// The default.
    #[default]
    Full,
}

impl OptLevel {
    /// All levels in ascending order (used by the ablation bench).
    pub fn all() -> [OptLevel; 4] {
        [
            OptLevel::NoOpt,
            OptLevel::Sched,
            OptLevel::SchedPartition,
            OptLevel::Full,
        ]
    }

    /// Label used in figures and reports.
    pub fn label(&self) -> &'static str {
        match self {
            OptLevel::NoOpt => "NoOpt",
            OptLevel::Sched => "Sched.",
            OptLevel::SchedPartition => "Sched.+Partition",
            OptLevel::Full => "Sched.+Partition+Bundle",
        }
    }

    fn scheduling(&self) -> bool {
        *self >= OptLevel::Sched
    }

    fn partitioning(&self) -> bool {
        *self >= OptLevel::SchedPartition
    }

    fn bundling(&self) -> bool {
        *self >= OptLevel::Full
    }
}

/// Full engine configuration.
#[derive(Debug, Clone, Copy)]
pub struct RtnnConfig {
    /// Search radius, K, and variant.
    pub params: SearchParams,
    /// Which optimisations to enable.
    pub opt: OptLevel,
    /// BVH builder configuration.
    pub build: BuildParams,
    /// How KNN partition AABB widths are derived (default: guaranteed-exact).
    pub knn_rule: KnnAabbRule,
    /// Approximation mode (default: exact).
    pub approx: ApproxMode,
    /// Grid-resolution budget for the megacell pass (stands in for the GPU
    /// memory cap the paper mentions).
    pub grid_max_cells: usize,
}

impl RtnnConfig {
    /// A configuration with every optimisation enabled and exact results.
    pub fn new(params: SearchParams) -> Self {
        RtnnConfig {
            params,
            opt: OptLevel::Full,
            build: BuildParams::default(),
            knn_rule: KnnAabbRule::default(),
            approx: ApproxMode::default(),
            grid_max_cells: 1 << 21,
        }
    }

    /// Set the optimisation level.
    pub fn with_opt(mut self, opt: OptLevel) -> Self {
        self.opt = opt;
        self
    }

    /// Set the KNN AABB rule.
    pub fn with_knn_rule(mut self, rule: KnnAabbRule) -> Self {
        self.knn_rule = rule;
        self
    }

    /// Set the approximation mode.
    pub fn with_approx(mut self, approx: ApproxMode) -> Self {
        self.approx = approx;
        self
    }

    /// Set the megacell grid budget.
    pub fn with_grid_max_cells(mut self, cells: usize) -> Self {
        self.grid_max_cells = cells;
        self
    }
}

/// Errors a search can report.
#[derive(Debug, Clone, PartialEq)]
pub enum SearchError {
    /// The search parameters or approximation mode are invalid.
    InvalidConfig(String),
    /// The working set does not fit in the simulated device memory (the
    /// `OOM` outcomes of Figure 11).
    OutOfDeviceMemory(OutOfDeviceMemory),
}

impl std::fmt::Display for SearchError {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        match self {
            SearchError::InvalidConfig(msg) => write!(f, "invalid configuration: {msg}"),
            SearchError::OutOfDeviceMemory(e) => write!(f, "{e}"),
        }
    }
}

impl std::error::Error for SearchError {}

impl From<OutOfDeviceMemory> for SearchError {
    fn from(e: OutOfDeviceMemory) -> Self {
        SearchError::OutOfDeviceMemory(e)
    }
}

/// A scene whose expensive per-search state is owned and maintained by the
/// caller across query rounds, handed to [`Rtnn::search_prepared`].
///
/// This is the engine-side half of the streaming contract: the caller (the
/// `rtnn-dynamic` crate's `DynamicIndex`) keeps the global acceleration
/// structure alive between frames — refitting it in place when points drift,
/// rebuilding it when quality degrades — and keeps the megacell grid plus a
/// per-query megacell cache that is invalidated incrementally from the
/// grid's dirty region rather than recomputed wholesale.
pub struct PreparedScene<'a> {
    /// The global acceleration structure over the current point positions,
    /// with one width-[`Rtnn::global_aabb_width`] cube per point.
    pub gas: &'a Gas,
    /// Simulated milliseconds the caller spent maintaining `gas` for this
    /// frame (refit or rebuild time); charged to the `BVH` breakdown slot.
    pub structure_ms: f64,
    /// Prebuilt megacell state for the partitioning pass (`None` falls back
    /// to growing a fresh grid inside the search, or is ignored entirely
    /// below [`OptLevel::SchedPartition`]).
    pub megacells: Option<PreparedMegacells<'a>>,
}

/// Megacell state carried across frames (see [`PreparedScene`]).
pub struct PreparedMegacells<'a> {
    /// Grid over the current point positions (built once, then refreshed
    /// incrementally with [`MegacellGrid::refresh`]).
    pub grid: &'a MegacellGrid,
    /// Bounds of every grid cell whose population changed since the cache
    /// entries were written ([`Aabb::EMPTY`] when none did).
    pub dirty_region: Aabb,
    /// Per-query megacell results from earlier frames; updated in place.
    pub cache: &'a mut MegacellCache,
}

/// The RTNN search engine, bound to a simulated device.
#[derive(Debug, Clone)]
pub struct Rtnn<'d> {
    device: &'d Device,
    config: RtnnConfig,
}

impl<'d> Rtnn<'d> {
    /// Create an engine.
    pub fn new(device: &'d Device, config: RtnnConfig) -> Self {
        Rtnn { device, config }
    }

    /// The engine's configuration.
    pub fn config(&self) -> &RtnnConfig {
        &self.config
    }

    /// The device the engine runs on.
    pub fn device(&self) -> &Device {
        self.device
    }

    /// The full AABB width the global acceleration structure uses for this
    /// configuration (`2r` scaled by the approximation mode). A reusable
    /// index ([`Rtnn::search_prepared`]) must build/refit its GAS at exactly
    /// this width.
    pub fn global_aabb_width(&self) -> f32 {
        2.0 * self.config.params.radius * self.config.approx.aabb_width_factor()
    }

    /// Run the search: for every query, find its neighbors among `points`
    /// according to the configured [`SearchParams`].
    pub fn search(&self, points: &[Vec3], queries: &[Vec3]) -> Result<SearchResults, SearchError> {
        self.search_inner(points, queries, None)
    }

    /// Run the search against a *persistent* scene whose global acceleration
    /// structure (and optionally megacell grid + per-query megacell cache)
    /// is maintained across query rounds by the caller — the streaming path
    /// the `rtnn-dynamic` crate drives. Instead of building the global GAS
    /// from scratch, the prepared structure is traversed directly and the
    /// caller-supplied maintenance cost (`structure_ms`: this frame's refit
    /// or rebuild time) is charged to the `BVH` component of the breakdown.
    ///
    /// The caller guarantees that `prepared.gas` holds one width-
    /// [`Rtnn::global_aabb_width`] cube per point at the points' *current*
    /// positions, and that a supplied megacell grid was built/refreshed over
    /// the current positions.
    pub fn search_prepared(
        &self,
        points: &[Vec3],
        queries: &[Vec3],
        prepared: PreparedScene<'_>,
    ) -> Result<SearchResults, SearchError> {
        self.search_inner(points, queries, Some(prepared))
    }

    fn search_inner(
        &self,
        points: &[Vec3],
        queries: &[Vec3],
        prepared: Option<PreparedScene<'_>>,
    ) -> Result<SearchResults, SearchError> {
        let cfg = &self.config;
        cfg.params.validate().map_err(SearchError::InvalidConfig)?;
        cfg.approx.validate().map_err(SearchError::InvalidConfig)?;
        let params = cfg.params;

        let mut breakdown = TimeBreakdown::default();
        let mut search_metrics = LaunchMetrics::default();
        let mut fs_metrics = LaunchMetrics::default();

        // Data transfer (the `Data` component): points + queries in, result
        // ids out.
        let footprint = point_cloud_bytes(points.len(), queries.len(), params.k);
        self.device.check_allocation(footprint)?;
        breakdown.data_ms = self
            .device
            .transfer_h2d_ms((points.len() + queries.len()) as u64 * 12)
            + self
                .device
                .transfer_d2h_ms(queries.len() as u64 * params.k as u64 * 4);

        if queries.is_empty() {
            return Ok(SearchResults {
                neighbors: Vec::new(),
                breakdown,
                search_metrics,
                fs_metrics,
                num_partitions: 0,
                num_bundles: 0,
            });
        }
        let mut neighbors: Vec<Vec<u32>> = vec![Vec::new(); queries.len()];
        if points.is_empty() {
            return Ok(SearchResults {
                neighbors,
                breakdown,
                search_metrics,
                fs_metrics,
                num_partitions: 0,
                num_bundles: 0,
            });
        }

        let pipeline = Pipeline::new(self.device);
        let full_width = self.global_aabb_width();

        // Global GAS: used directly by the NoOpt/Sched paths and by the
        // first-hit scheduling pass; reused by any partition that falls back
        // to the full AABB width. A prepared scene supplies it (already
        // refitted/rebuilt for this frame) and charges its maintenance cost;
        // the batch path builds it from scratch.
        let (prepared_gas, mut prepared_megacells) = match prepared {
            Some(p) => (Some((p.gas, p.structure_ms)), p.megacells),
            None => (None, None),
        };
        let built_gas;
        let global_gas: &Gas = match prepared_gas {
            Some((gas, structure_ms)) => {
                debug_assert_eq!(gas.num_primitives(), points.len());
                breakdown.bvh_ms += structure_ms;
                gas
            }
            None => {
                built_gas = Gas::build(self.device, &point_aabbs(points, full_width), cfg.build)?;
                breakdown.bvh_ms += built_gas.build_time_ms();
                &built_gas
            }
        };

        // Query scheduling (Section 4).
        let schedule = if cfg.opt.scheduling() {
            let s = schedule_queries(self.device, global_gas, points, queries);
            breakdown.fs_ms += s.fs_metrics.time_ms();
            breakdown.opt_ms += s.sort_metrics.time_ms;
            s
        } else {
            QuerySchedule::identity(queries.len())
        };
        fs_metrics = schedule.fs_metrics.clone();

        // Query partitioning (Section 5.1) and bundling (Section 5.2).
        let (partitions, num_partitions, num_bundles) = if cfg.opt.partitioning() {
            let set: PartitionSet = if let Some(pm) = prepared_megacells.as_mut() {
                partition_queries_cached(
                    self.device,
                    queries,
                    &schedule.order,
                    &params,
                    cfg.knn_rule,
                    pm.grid,
                    &pm.dirty_region,
                    pm.cache,
                )
            } else {
                partition_queries(
                    self.device,
                    points,
                    queries,
                    &schedule.order,
                    &params,
                    cfg.knn_rule,
                    cfg.grid_max_cells,
                )
            };
            breakdown.opt_ms += set.opt_metrics.time_ms;
            let raw_count = set.partitions.len();
            let parts = if cfg.opt.bundling() {
                let coeffs = CostCoefficients::calibrate(self.device);
                let plan = plan_bundles(&set.partitions, points.len(), &params, &coeffs);
                apply_bundles(&set.partitions, &plan, &params)
            } else {
                set.partitions
            };
            let bundles = parts.len();
            (parts, raw_count, bundles)
        } else {
            let single = Partition {
                aabb_width: full_width,
                query_ids: schedule.order.clone(),
                megacell_width: full_width,
                sphere_test: !cfg.approx.skip_sphere_test(),
                density: 0.0,
            };
            (vec![single], 1, 1)
        };

        // Search every partition with its own acceleration structure.
        for part in &partitions {
            if part.is_empty() {
                continue;
            }
            let reuse_global = (part.aabb_width - full_width).abs() <= f32::EPSILON * full_width;
            let gas_storage;
            let gas = if reuse_global {
                global_gas
            } else {
                gas_storage = Gas::build(
                    self.device,
                    &point_aabbs(
                        points,
                        part.aabb_width * cfg.approx.aabb_width_factor().min(1.0),
                    ),
                    cfg.build,
                )?;
                breakdown.bvh_ms += gas_storage.build_time_ms();
                &gas_storage
            };

            let sphere_test = part.sphere_test && !cfg.approx.skip_sphere_test();
            let launch_metrics = match params.mode {
                SearchMode::Range => {
                    let program = RangeProgram {
                        points,
                        queries,
                        indexing: QueryIndexing::Mapped(&part.query_ids),
                        radius: params.radius,
                        k: params.k,
                        sphere_test,
                    };
                    let kind = if sphere_test {
                        IsShaderKind::RangeSphereTest
                    } else {
                        IsShaderKind::RangeNoSphereTest
                    };
                    let launch = pipeline.launch(gas, part.len(), &program, kind);
                    for (launch_idx, payload) in launch.payloads.into_iter().enumerate() {
                        neighbors[part.query_ids[launch_idx] as usize] = payload;
                    }
                    launch.metrics
                }
                SearchMode::Knn => {
                    let program = KnnProgram {
                        points,
                        queries,
                        indexing: QueryIndexing::Mapped(&part.query_ids),
                        radius: params.radius,
                        k: params.k,
                    };
                    let launch = pipeline.launch(gas, part.len(), &program, IsShaderKind::Knn);
                    for (launch_idx, payload) in launch.payloads.into_iter().enumerate() {
                        neighbors[part.query_ids[launch_idx] as usize] = payload.into_sorted_ids();
                    }
                    launch.metrics
                }
            };
            breakdown.search_ms += launch_metrics.time_ms();
            search_metrics.merge_sequential(&launch_metrics);
        }

        Ok(SearchResults {
            neighbors,
            breakdown,
            search_metrics,
            fs_metrics,
            num_partitions,
            num_bundles,
        })
    }
}

/// The per-point AABBs of Listing 1: width-`w` cubes centred at the points.
fn point_aabbs(points: &[Vec3], width: f32) -> Vec<rtnn_math::Aabb> {
    rtnn_parallel::par_map(points.len(), |i| rtnn_math::Aabb::cube(points[i], width))
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::verify::check_all;

    fn grid_points(n_per_axis: usize, spacing: f32) -> Vec<Vec3> {
        let mut pts = Vec::new();
        for x in 0..n_per_axis {
            for y in 0..n_per_axis {
                for z in 0..n_per_axis {
                    pts.push(Vec3::new(x as f32, y as f32, z as f32) * spacing);
                }
            }
        }
        pts
    }

    fn run(
        params: SearchParams,
        opt: OptLevel,
        points: &[Vec3],
        queries: &[Vec3],
    ) -> SearchResults {
        let device = Device::rtx_2080();
        let engine = Rtnn::new(&device, RtnnConfig::new(params).with_opt(opt));
        engine.search(points, queries).unwrap()
    }

    #[test]
    fn range_search_matches_oracle_at_every_opt_level() {
        let points = grid_points(7, 1.0);
        let queries: Vec<Vec3> = points.iter().step_by(3).copied().collect();
        let params = SearchParams::range(1.6, 64);
        for opt in OptLevel::all() {
            let results = run(params, opt, &points, &queries);
            check_all(&points, &queries, &params, &results.neighbors)
                .unwrap_or_else(|(q, e)| panic!("{opt:?}, query {q}: {e}"));
        }
    }

    #[test]
    fn knn_search_matches_oracle_at_every_opt_level() {
        let points = grid_points(7, 0.5);
        let queries: Vec<Vec3> = points.iter().step_by(5).copied().collect();
        let params = SearchParams::knn(1.2, 10);
        for opt in OptLevel::all() {
            let results = run(params, opt, &points, &queries);
            check_all(&points, &queries, &params, &results.neighbors)
                .unwrap_or_else(|(q, e)| panic!("{opt:?}, query {q}: {e}"));
        }
    }

    #[test]
    fn range_search_respects_the_k_cap() {
        let points = grid_points(6, 0.3);
        let queries = vec![Vec3::new(0.9, 0.9, 0.9)];
        let params = SearchParams::range(1.0, 5);
        let results = run(params, OptLevel::Full, &points, &queries);
        assert_eq!(results.neighbors[0].len(), 5);
        check_all(&points, &queries, &params, &results.neighbors).unwrap();
    }

    #[test]
    fn empty_inputs_are_handled() {
        let device = Device::rtx_2080();
        let engine = Rtnn::new(&device, RtnnConfig::new(SearchParams::range(1.0, 4)));
        let no_queries = engine.search(&[Vec3::ZERO], &[]).unwrap();
        assert!(no_queries.neighbors.is_empty());
        let no_points = engine.search(&[], &[Vec3::ZERO, Vec3::ONE]).unwrap();
        assert_eq!(no_points.neighbors.len(), 2);
        assert!(no_points.neighbors.iter().all(Vec::is_empty));
    }

    #[test]
    fn invalid_configs_are_rejected() {
        let device = Device::rtx_2080();
        let bad_radius = Rtnn::new(&device, RtnnConfig::new(SearchParams::range(-1.0, 4)));
        assert!(matches!(
            bad_radius.search(&[Vec3::ZERO], &[Vec3::ZERO]),
            Err(SearchError::InvalidConfig(_))
        ));
        let bad_approx = Rtnn::new(
            &device,
            RtnnConfig::new(SearchParams::range(1.0, 4))
                .with_approx(ApproxMode::ShrunkenAabb { factor: 2.0 }),
        );
        let err = bad_approx.search(&[Vec3::ZERO], &[Vec3::ZERO]).unwrap_err();
        assert!(err.to_string().contains("invalid configuration"));
    }

    #[test]
    fn breakdown_components_reflect_the_opt_level() {
        let points = grid_points(8, 1.0);
        let queries = points.clone();
        let params = SearchParams::knn(2.0, 8);
        let noopt = run(params, OptLevel::NoOpt, &points, &queries);
        assert_eq!(noopt.breakdown.fs_ms, 0.0);
        assert_eq!(noopt.breakdown.opt_ms, 0.0);
        assert_eq!(noopt.num_partitions, 1);
        let sched = run(params, OptLevel::Sched, &points, &queries);
        assert!(sched.breakdown.fs_ms > 0.0);
        assert!(sched.breakdown.opt_ms > 0.0);
        let full = run(params, OptLevel::Full, &points, &queries);
        assert!(full.num_partitions >= 1);
        assert!(full.num_bundles <= full.num_partitions);
        assert!(full.breakdown.total_ms() > 0.0);
        assert!(full.breakdown.data_ms > 0.0);
    }

    #[test]
    fn partitioning_reduces_is_calls_on_dense_clouds() {
        // Observation 2 turned into the Section 5 optimisation: per-partition
        // AABBs are smaller than 2r, so the search does fewer IS calls.
        let points = grid_points(10, 0.25);
        let queries = points.clone();
        let params = SearchParams::knn(2.0, 8);
        let sched = run(params, OptLevel::Sched, &points, &queries);
        let part = run(params, OptLevel::SchedPartition, &points, &queries);
        assert!(
            part.search_metrics.is_calls < sched.search_metrics.is_calls,
            "partitioned {} vs global {}",
            part.search_metrics.is_calls,
            sched.search_metrics.is_calls
        );
        check_all(&points, &queries, &params, &part.neighbors)
            .unwrap_or_else(|(q, e)| panic!("query {q}: {e}"));
    }

    #[test]
    fn approximate_modes_trade_recall_for_speed_within_bounds() {
        let points = grid_points(8, 0.5);
        let queries: Vec<Vec3> = points.iter().step_by(7).copied().collect();
        let params = SearchParams::range(1.0, 1000);
        let device = Device::rtx_2080();
        let exact = Rtnn::new(&device, RtnnConfig::new(params).with_opt(OptLevel::Sched))
            .search(&points, &queries)
            .unwrap();
        // Shrunken AABBs: subset of the exact result, never outside r.
        let shrunk = Rtnn::new(
            &device,
            RtnnConfig::new(params)
                .with_opt(OptLevel::Sched)
                .with_approx(ApproxMode::ShrunkenAabb { factor: 0.6 }),
        )
        .search(&points, &queries)
        .unwrap();
        for (qi, q) in queries.iter().enumerate() {
            let exact_set: std::collections::HashSet<u32> =
                exact.neighbors[qi].iter().copied().collect();
            for &id in &shrunk.neighbors[qi] {
                assert!(exact_set.contains(&id));
                assert!(q.distance(points[id as usize]) < params.radius);
            }
            assert!(shrunk.neighbors[qi].len() <= exact.neighbors[qi].len());
        }
        // Skipped sphere test: superset within sqrt(3) * r.
        let skipped = Rtnn::new(
            &device,
            RtnnConfig::new(params)
                .with_opt(OptLevel::Sched)
                .with_approx(ApproxMode::SkipSphereTest),
        )
        .search(&points, &queries)
        .unwrap();
        let bound = ApproxMode::SkipSphereTest.distance_bound(params.radius) + 1e-5;
        for (qi, q) in queries.iter().enumerate() {
            assert!(skipped.neighbors[qi].len() >= exact.neighbors[qi].len());
            for &id in &skipped.neighbors[qi] {
                assert!(q.distance(points[id as usize]) <= bound);
            }
        }
        // And it does less shader work than the exact search.
        assert!(skipped.search_metrics.kernel.sm_cycles < exact.search_metrics.kernel.sm_cycles);
    }

    #[test]
    fn knn_heuristic_rules_still_produce_bounded_results() {
        // The paper's equi-volume heuristic is not guaranteed exact, but all
        // returned neighbors must respect the radius bound and count cap.
        let points = grid_points(8, 0.5);
        let queries: Vec<Vec3> = points.iter().step_by(3).copied().collect();
        let params = SearchParams::knn(1.5, 6);
        let device = Device::rtx_2080();
        let results = Rtnn::new(
            &device,
            RtnnConfig::new(params).with_knn_rule(KnnAabbRule::EquiVolume),
        )
        .search(&points, &queries)
        .unwrap();
        for (qi, q) in queries.iter().enumerate() {
            assert!(results.neighbors[qi].len() <= params.k);
            for &id in &results.neighbors[qi] {
                assert!(q.distance(points[id as usize]) < params.radius);
            }
        }
    }

    #[test]
    fn prepared_search_matches_batch_search_and_charges_structure_time() {
        let points = grid_points(7, 0.8);
        let queries: Vec<Vec3> = points.iter().step_by(2).copied().collect();
        let device = Device::rtx_2080();
        for params in [SearchParams::knn(1.5, 6), SearchParams::range(1.5, 64)] {
            for opt in OptLevel::all() {
                let engine = Rtnn::new(&device, RtnnConfig::new(params).with_opt(opt));
                let batch = engine.search(&points, &queries).unwrap();

                let gas = Gas::build(
                    &device,
                    &point_aabbs(&points, engine.global_aabb_width()),
                    engine.config().build,
                )
                .unwrap();
                let grid = MegacellGrid::build(&points, engine.config().grid_max_cells).unwrap();
                let mut cache = MegacellCache::new(queries.len());
                let prepared = engine
                    .search_prepared(
                        &points,
                        &queries,
                        PreparedScene {
                            gas: &gas,
                            structure_ms: 0.01,
                            megacells: Some(PreparedMegacells {
                                grid: &grid,
                                dirty_region: Aabb::EMPTY,
                                cache: &mut cache,
                            }),
                        },
                    )
                    .unwrap();
                assert_eq!(
                    prepared.neighbors, batch.neighbors,
                    "{params:?} {opt:?}: prepared search must be bit-identical"
                );
                // The caller-supplied maintenance cost replaces the build
                // time of the global structure.
                assert!(prepared.breakdown.bvh_ms >= 0.01);
                assert!(prepared.breakdown.bvh_ms < batch.breakdown.bvh_ms);
            }
        }
    }

    #[test]
    fn oom_is_reported_for_clouds_that_do_not_fit() {
        let device = Device::tiny_test_device(); // 256 MB
        let engine = Rtnn::new(&device, RtnnConfig::new(SearchParams::knn(1.0, 1_000_000)));
        // 30M queries * 1M results would need terabytes; the footprint check
        // fires before any allocation happens host-side.
        let points = vec![Vec3::ZERO; 8];
        let queries = vec![Vec3::ZERO; 100_000];
        assert!(matches!(
            engine.search(&points, &queries),
            Err(SearchError::OutOfDeviceMemory(_))
        ));
    }
}
