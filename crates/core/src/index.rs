//! The persistent [`Index`]: build the scene-side state once, answer many
//! typed [`QueryPlan`]s against it.
//!
//! The legacy `Rtnn` engine fused scene and query: one `(radius, K, mode)`
//! was baked into the engine at construction, so every new radius or K
//! meant a new engine and a redundant structure rebuild. The two-level API
//! splits them:
//!
//! * [`Index`] — built once from points (or adopted from a streaming
//!   `DynamicIndex`), owning the acceleration structures (one per AABB
//!   width, built lazily and cached), the megacell grid and the per-query
//!   caches;
//! * [`QueryPlan`] — passed per call to [`Index::query`], validated at
//!   query time with typed [`PlanError`]s.
//!
//! Engine-wide tuning that is *not* per-query (optimisation level, KNN
//! AABB rule, approximation mode, grid budget, BVH build knobs) lives in
//! [`EngineConfig`].
//!
//! ```
//! use rtnn::{EngineConfig, GpusimBackend, Index, QueryPlan};
//! use rtnn_gpusim::Device;
//! use rtnn_math::Vec3;
//!
//! let device = Device::rtx_2080();
//! let backend = GpusimBackend::new(&device);
//! let points: Vec<Vec3> = (0..1000)
//!     .map(|i| Vec3::new((i % 10) as f32, ((i / 10) % 10) as f32, (i / 100) as f32))
//!     .collect();
//!
//! let mut index = Index::build(&backend, &points[..], EngineConfig::default());
//! let knn = index.query(&points, &QueryPlan::knn(1.5, 8)).unwrap();
//! let rng = index.query(&points, &QueryPlan::range(0.9, 32)).unwrap();
//! assert_eq!(knn.neighbors.len(), points.len());
//! assert_eq!(rng.neighbors.len(), points.len());
//! // The second query reused the index's cached grid; only structures for
//! // new AABB widths were built.
//! assert!(index.cached_structures() >= 1);
//! ```

use crate::approx::ApproxMode;
use crate::autotune::{AutoTuner, TunerDecision, Tuning};
use crate::backend::{Accel, AccelRef, Backend};
use crate::cost_model::CostCoefficients;
use crate::engine::{OptLevel, SearchError};
use crate::megacell::MegacellGrid;
use crate::partition::{KnnAabbRule, MegacellCache};
use crate::pipeline::{
    host_ms_since, ExecutionPipeline, GatheredHits, PipelineTrace, ScheduleCx, StageKind,
    StageOverrides,
};
use crate::plan::{PlanError, PlanSlice, QueryPlan};
use crate::result::{SearchParams, SearchResults, TimeBreakdown};
use rtnn_bvh::BuildParams;
use rtnn_gpusim::kernel::point_cloud_bytes;
use rtnn_math::{Aabb, Vec3};
use rtnn_optix::{Gas, LaunchMetrics};
use rtnn_parallel::par_map_collect;
use rtnn_telemetry::{ProfileSample, Telemetry};
use std::borrow::Cow;
use std::time::Instant;

/// Engine-wide tuning, shared by every plan an [`Index`] serves. Per-query
/// parameters (radius, K, variant) live in the [`QueryPlan`] instead.
#[derive(Debug, Clone, Copy)]
pub struct EngineConfig {
    /// Which of the paper's optimisations are enabled.
    pub opt: OptLevel,
    /// BVH builder configuration.
    pub build: BuildParams,
    /// How KNN partition AABB widths are derived (default: guaranteed-exact).
    pub knn_rule: KnnAabbRule,
    /// Approximation mode (default: exact).
    pub approx: ApproxMode,
    /// Grid-resolution budget for the megacell pass (stands in for the GPU
    /// memory cap the paper mentions). Must be at least 1.
    pub grid_max_cells: usize,
    /// Static stage selection from [`Self::opt`] (the default) or adaptive
    /// per-query selection through a seeded [`AutoTuner`]
    /// (see [`EngineConfig::auto`]).
    pub tuning: Tuning,
}

impl Default for EngineConfig {
    fn default() -> Self {
        EngineConfig {
            opt: OptLevel::Full,
            build: BuildParams::default(),
            knn_rule: KnnAabbRule::default(),
            approx: ApproxMode::default(),
            grid_max_cells: 1 << 21,
            tuning: Tuning::Static,
        }
    }
}

impl EngineConfig {
    /// The default configuration with adaptive stage selection: every
    /// query on an index built from this config is routed through an
    /// [`AutoTuner`] (seeded with [`DEFAULT_SEED`](crate::autotune)) that
    /// picks the [`OptLevel`] arm per (plan kind, density bucket, backend)
    /// signature — cost-model first shot, measured per-stage timings after.
    /// Explicit [`StageOverrides`] on [`Index::query_with`] still win.
    pub fn auto() -> Self {
        EngineConfig::default().with_tuning(Tuning::auto())
    }

    /// Set the tuning mode (static level vs seeded auto-tuner).
    pub fn with_tuning(mut self, tuning: Tuning) -> Self {
        self.tuning = tuning;
        self
    }

    /// Set the optimisation level.
    pub fn with_opt(mut self, opt: OptLevel) -> Self {
        self.opt = opt;
        self
    }

    /// Set the BVH build parameters.
    pub fn with_build(mut self, build: BuildParams) -> Self {
        self.build = build;
        self
    }

    /// Set the KNN AABB rule.
    pub fn with_knn_rule(mut self, rule: KnnAabbRule) -> Self {
        self.knn_rule = rule;
        self
    }

    /// Set the approximation mode.
    pub fn with_approx(mut self, approx: ApproxMode) -> Self {
        self.approx = approx;
        self
    }

    /// Set the megacell grid budget.
    ///
    /// # Panics
    ///
    /// Panics on `cells == 0` with a clear message — a zero-cell grid
    /// budget silently disabled partitioning in earlier versions. (Configs
    /// assembled by hand are additionally rejected with
    /// [`PlanError::ZeroGridBudget`] at query time.)
    pub fn with_grid_max_cells(mut self, cells: usize) -> Self {
        self.grid_max_cells = checked_grid_budget(cells);
        self
    }

    /// Validate the engine-wide knobs (approximation parameters, grid
    /// budget); run automatically at query time.
    pub fn validate(&self) -> Result<(), PlanError> {
        self.approx.validate()?;
        if self.grid_max_cells == 0 {
            return Err(PlanError::ZeroGridBudget);
        }
        Ok(())
    }
}

/// Shared builder-side rejection of a zero grid budget (used by both
/// [`EngineConfig::with_grid_max_cells`] and the legacy
/// `RtnnConfig::with_grid_max_cells`).
pub(crate) fn checked_grid_budget(cells: usize) -> usize {
    assert!(
        cells >= 1,
        "error: grid_max_cells must be a positive cell budget, got 0 \
         (the megacell pass needs at least one grid cell)"
    );
    cells
}

// ---------------------------------------------------------------------------
// Structure cache
// ---------------------------------------------------------------------------

enum StoreEntry<'a> {
    Owned(Accel),
    Shared(&'a Accel),
    SharedGas { gas: &'a Gas, aabb_width: f32 },
}

impl<'a> StoreEntry<'a> {
    fn aabb_width_bits(&self) -> u32 {
        match self {
            StoreEntry::Owned(a) => a.aabb_width().to_bits(),
            StoreEntry::Shared(a) => a.aabb_width().to_bits(),
            StoreEntry::SharedGas { aabb_width, .. } => aabb_width.to_bits(),
        }
    }

    fn accel_ref(&self) -> AccelRef<'_> {
        match self {
            StoreEntry::Owned(a) => a.as_ref(),
            StoreEntry::Shared(a) => a.as_ref(),
            StoreEntry::SharedGas { gas, aabb_width } => AccelRef::Gas {
                gas,
                aabb_width: *aabb_width,
            },
        }
    }
}

/// A width-keyed cache of acceleration structures: the index's global
/// structure per plan radius plus the per-partition structures, owned or
/// adopted (borrowed from a streaming index / prepared scene).
pub(crate) struct AccelStore<'a> {
    entries: Vec<StoreEntry<'a>>,
}

impl<'a> AccelStore<'a> {
    pub(crate) fn new() -> Self {
        AccelStore {
            entries: Vec::new(),
        }
    }

    /// Adopt a caller-owned structure (hit by width like any other entry).
    pub(crate) fn adopt(&mut self, accel: &'a Accel) {
        self.entries.push(StoreEntry::Shared(accel));
    }

    /// Adopt a caller-owned raw GAS built at `aabb_width`.
    pub(crate) fn adopt_gas(&mut self, gas: &'a Gas, aabb_width: f32) {
        self.entries.push(StoreEntry::SharedGas { gas, aabb_width });
    }

    pub(crate) fn len(&self) -> usize {
        self.entries.len()
    }

    pub(crate) fn accel_ref(&self, id: usize) -> AccelRef<'_> {
        self.entries[id].accel_ref()
    }

    /// Get the structure for `aabb_width`, building (and charging) it on a
    /// miss. Returns the entry id and the simulated build cost incurred by
    /// *this* call (0 on a hit — that is the amortisation the index
    /// provides).
    pub(crate) fn ensure(
        &mut self,
        backend: &dyn Backend,
        points: &[Vec3],
        aabb_width: f32,
        build: BuildParams,
    ) -> Result<(usize, f64), SearchError> {
        let key = aabb_width.to_bits();
        if let Some(id) = self.entries.iter().position(|e| e.aabb_width_bits() == key) {
            return Ok((id, 0.0));
        }
        let accel = backend
            .build(points, aabb_width, build)
            .map_err(SearchError::OutOfDeviceMemory)?;
        let build_ms = accel.build_time_ms();
        self.entries.push(StoreEntry::Owned(accel));
        Ok((self.entries.len() - 1, build_ms))
    }

    /// Build every missing width in `aabb_widths` *concurrently* on the
    /// worker pool (a `Backend` is `Sync`, so independent widths build in
    /// parallel) and cache the results. Returns the total simulated build
    /// cost incurred — 0 when every width was already cached. Duplicate
    /// widths are deduplicated by bit pattern; entry order matches the
    /// first occurrence of each missing width, so cache ids stay
    /// deterministic regardless of thread count.
    pub(crate) fn ensure_many(
        &mut self,
        backend: &dyn Backend,
        points: &[Vec3],
        aabb_widths: &[f32],
        build: BuildParams,
    ) -> Result<f64, SearchError> {
        let mut missing: Vec<f32> = Vec::new();
        for &w in aabb_widths {
            let key = w.to_bits();
            let cached = self.entries.iter().any(|e| e.aabb_width_bits() == key);
            if !cached && !missing.iter().any(|m| m.to_bits() == key) {
                missing.push(w);
            }
        }
        if missing.is_empty() {
            return Ok(0.0);
        }
        let built = par_map_collect(missing.len(), |i| backend.build(points, missing[i], build));
        let mut total_ms = 0.0;
        for accel in built {
            let accel = accel.map_err(SearchError::OutOfDeviceMemory)?;
            total_ms += accel.build_time_ms();
            self.entries.push(StoreEntry::Owned(accel));
        }
        Ok(total_ms)
    }
}

// ---------------------------------------------------------------------------
// Shared execution core (used by Index::query and the legacy Rtnn shims):
// the staged pipeline in `crate::pipeline`, driven over this scene state.
// ---------------------------------------------------------------------------

/// Caller-maintained scene state handed to one execution.
pub(crate) struct SceneRefs<'s> {
    /// Structure-maintenance cost (refit/rebuild) to charge to the `BVH`
    /// breakdown slot.
    pub structure_ms: f64,
    /// Prebuilt megacell grid over the current points.
    pub grid: Option<&'s MegacellGrid>,
    /// Bounds of grid cells whose population changed since the cache
    /// entries were written.
    pub dirty_region: Aabb,
    /// Per-query megacell cache, updated in place.
    pub cache: Option<&'s mut MegacellCache>,
}

impl SceneRefs<'_> {
    /// No prebuilt state: build everything from scratch (the legacy batch
    /// path).
    pub(crate) fn fresh() -> Self {
        SceneRefs {
            structure_ms: 0.0,
            grid: None,
            dirty_region: Aabb::EMPTY,
            cache: None,
        }
    }
}

fn empty_results(
    num_queries: usize,
    breakdown: TimeBreakdown,
    search_metrics: LaunchMetrics,
    fs_metrics: LaunchMetrics,
    trace: PipelineTrace,
) -> SearchResults {
    SearchResults {
        neighbors: vec![Vec::new(); num_queries],
        breakdown,
        search_metrics,
        fs_metrics,
        num_partitions: 0,
        num_bundles: 0,
        trace,
    }
}

// ---------------------------------------------------------------------------
// Index
// ---------------------------------------------------------------------------

enum GridSlot<'a> {
    Unbuilt,
    Owned(Option<MegacellGrid>),
    Shared(&'a MegacellGrid),
}

fn grid_for<'s, 'a>(
    slot: &'s mut GridSlot<'a>,
    points: &[Vec3],
    budget: usize,
) -> Option<&'s MegacellGrid> {
    if let GridSlot::Unbuilt = slot {
        *slot = GridSlot::Owned(MegacellGrid::build(points, budget));
    }
    match slot {
        GridSlot::Shared(g) => Some(g),
        GridSlot::Owned(opt) => opt.as_ref(),
        GridSlot::Unbuilt => unreachable!("built above"),
    }
}

/// Scene state adopted by [`Index::adopt`] from a caller that maintains it
/// across frames (the streaming `DynamicIndex`).
pub struct AdoptedScene<'a> {
    /// The global structure over the current point positions.
    pub accel: &'a Accel,
    /// Megacell grid over the current positions (`None` falls back to a
    /// lazily built grid).
    pub grid: Option<&'a MegacellGrid>,
    /// Bounds of grid cells whose population changed since `cache` entries
    /// were written ([`Aabb::EMPTY`] when none did).
    pub dirty_region: Aabb,
    /// Per-query megacell cache, updated in place across frames.
    pub cache: Option<&'a mut MegacellCache>,
    /// The search parameters the adopted cache serves (`None`: any). Plans
    /// with different parameters *bypass* the cache instead of wiping the
    /// owner's warm entries — megacell results depend on `(radius, k)`.
    pub cache_params: Option<SearchParams>,
}

/// A persistent neighbor-search index: scene-side state built once, typed
/// [`QueryPlan`]s answered per call (see module docs).
pub struct Index<'a> {
    backend: &'a dyn Backend,
    config: EngineConfig,
    points: Cow<'a, [Vec3]>,
    store: AccelStore<'a>,
    grid: GridSlot<'a>,
    cache: Option<&'a mut MegacellCache>,
    cache_params: Option<SearchParams>,
    dirty_region: Aabb,
    pending_structure_ms: f64,
    /// Lazily created when `config.tuning` is auto (or installed via
    /// [`Index::set_tuner`]); owns the per-signature decision state.
    tuner: Option<AutoTuner>,
    /// The most recent auto-tuning decision, `None` until one was made.
    last_decision: Option<TunerDecision>,
}

impl<'a> Index<'a> {
    /// Build an index over `points` on `backend`. Structures are built
    /// lazily — each AABB width the plans demand is built on first use and
    /// cached — so construction is cheap; validation happens at
    /// [`query`](Self::query) time.
    pub fn build(
        backend: &'a dyn Backend,
        points: impl Into<Cow<'a, [Vec3]>>,
        config: EngineConfig,
    ) -> Self {
        Index {
            backend,
            config,
            points: points.into(),
            store: AccelStore::new(),
            grid: GridSlot::Unbuilt,
            cache: None,
            cache_params: None,
            dirty_region: Aabb::EMPTY,
            pending_structure_ms: 0.0,
            tuner: None,
            last_decision: None,
        }
    }

    /// Adopt scene state maintained by a caller across query rounds (the
    /// streaming contract): the caller guarantees `scene.accel` covers
    /// `points` at their current positions and that a supplied grid was
    /// built/refreshed over them.
    pub fn adopt(
        backend: &'a dyn Backend,
        points: &'a [Vec3],
        config: EngineConfig,
        scene: AdoptedScene<'a>,
    ) -> Self {
        let mut store = AccelStore::new();
        store.adopt(scene.accel);
        Index {
            backend,
            config,
            points: Cow::Borrowed(points),
            store,
            grid: match scene.grid {
                Some(g) => GridSlot::Shared(g),
                None => GridSlot::Unbuilt,
            },
            cache: scene.cache,
            cache_params: scene.cache_params,
            dirty_region: scene.dirty_region,
            pending_structure_ms: 0.0,
            tuner: None,
            last_decision: None,
        }
    }

    /// The points the index was built over.
    pub fn points(&self) -> &[Vec3] {
        &self.points
    }

    /// Number of indexed points.
    pub fn len(&self) -> usize {
        self.points.len()
    }

    /// True if the index holds no points.
    pub fn is_empty(&self) -> bool {
        self.points.is_empty()
    }

    /// The engine-wide configuration.
    pub fn config(&self) -> &EngineConfig {
        &self.config
    }

    /// The execution backend.
    pub fn backend(&self) -> &dyn Backend {
        self.backend
    }

    /// Number of acceleration structures currently cached (owned +
    /// adopted) — grows with the distinct AABB widths the plans demand.
    pub fn cached_structures(&self) -> usize {
        self.store.len()
    }

    /// Charge `ms` of caller-side structure maintenance (refit / rebuild
    /// time) to the next query's `BVH` breakdown slot — the streaming
    /// contract a `DynamicIndex` frame uses.
    pub fn charge_structure_ms(&mut self, ms: f64) {
        self.pending_structure_ms += ms;
    }

    /// The auto-tuner's most recent decision on this index (`None` until
    /// an auto-tuned query ran).
    pub fn last_decision(&self) -> Option<TunerDecision> {
        self.last_decision
    }

    /// The index's tuner state, once auto tuning made a decision (or a
    /// tuner was installed with [`Self::set_tuner`]).
    pub fn tuner(&self) -> Option<&AutoTuner> {
        self.tuner.as_ref()
    }

    /// Install pre-seeded tuner state (e.g. warmed from a persisted
    /// [`ProfileSnapshot`](rtnn_telemetry::ProfileSnapshot) via
    /// [`AutoTuner::absorb_profile`]) and switch the index to auto tuning
    /// under the tuner's seed.
    pub fn set_tuner(&mut self, tuner: AutoTuner) {
        self.config.tuning = Tuning::Auto { seed: tuner.seed() };
        self.tuner = Some(tuner);
    }

    /// Pre-build every structure (and the megacell grid) that `plan` would
    /// demand, without running any queries — the cold-start path a serving
    /// layer runs before the first request lands. Distinct AABB widths
    /// build *concurrently* on the worker pool.
    ///
    /// Returns the simulated build cost incurred by this call (0 when
    /// everything was already cached). The cost is also carried forward
    /// into the next query's `BVH` breakdown slot — warming is part of the
    /// scene's structure cost, not free work.
    pub fn warm(&mut self, plan: &QueryPlan) -> Result<f64, SearchError> {
        self.config.validate()?;
        let backend = self.backend;
        let cfg = self.config;
        let plan = plan.normalized();
        let pipeline = ExecutionPipeline::with_overrides(backend, &cfg, StageOverrides::default());
        let mut widths: Vec<f32> = Vec::new();
        match plan.as_ref() {
            QueryPlan::Batch(slices) => {
                if slices.is_empty() {
                    return Err(SearchError::InvalidPlan(PlanError::EmptyBatch));
                }
                // Validate each slice's parameters; id-coverage checks are
                // deferred to query time (warm has no query array).
                for slice in slices {
                    slice.plan.validate(0)?;
                }
                if pipeline.schedule_stage().needs_structure() {
                    let max_r = slices
                        .iter()
                        .filter_map(|s| s.plan.params())
                        .map(|p| p.radius)
                        .fold(0.0f32, f32::max);
                    widths.push(2.0 * max_r * cfg.approx.aabb_width_factor());
                }
                for slice in slices {
                    if let Some(params) = slice.plan.params() {
                        widths.push(2.0 * params.radius * cfg.approx.aabb_width_factor());
                    }
                }
            }
            single => {
                single.validate(0)?;
                let params = single.params().expect("non-batch plan has params");
                widths.push(2.0 * params.radius * cfg.approx.aabb_width_factor());
            }
        }
        if self.points.is_empty() {
            return Ok(0.0);
        }
        let built_ms = self
            .store
            .ensure_many(backend, &self.points, &widths, cfg.build)?;
        if pipeline.partition_stage().wants_grid() {
            grid_for(&mut self.grid, &self.points, cfg.grid_max_cells);
        }
        self.pending_structure_ms += built_ms;
        Ok(built_ms)
    }

    /// Answer `plan` for `queries` against the indexed points.
    ///
    /// The plan is normalized ([`QueryPlan::normalized`]: nested batches
    /// flattened, same-parameter slices merged) and then validated
    /// ([`PlanError`] names the offending field). Single plans are
    /// bit-identical to what the legacy one-engine-per-config path
    /// returned; [`QueryPlan::Batch`] answers heterogeneous plans in one
    /// call, sharing a single scheduling pass and every cached structure.
    pub fn query(
        &mut self,
        queries: &[Vec3],
        plan: &QueryPlan,
    ) -> Result<SearchResults, SearchError> {
        self.query_with(queries, plan, StageOverrides::default())
    }

    /// [`query`](Self::query) with per-call [`StageOverrides`]: replace or
    /// disable individual pipeline stages for this one call (e.g.
    /// [`StageOverrides::without_reordering`] runs the plan without the
    /// coherence schedule while every other stage keeps its default). See
    /// the [`pipeline`](crate::pipeline) module docs.
    pub fn query_with(
        &mut self,
        queries: &[Vec3],
        plan: &QueryPlan,
        overrides: StageOverrides<'_>,
    ) -> Result<SearchResults, SearchError> {
        // Unbounded-range sentinels resolve to this scene's point count (the
        // largest result a range query can produce) before any result-buffer
        // sizing; plans without the sentinel pass through untouched.
        let plan = plan.resolve_caps(self.points.len());
        let plan = plan.normalized();
        plan.validate(queries.len())?;
        let tel = Telemetry::current();
        let mut query_span = tel.as_ref().map(|t| {
            t.span(match plan.as_ref().kind_label() {
                "knn" => "index.query.knn",
                "range" => "index.query.range",
                _ => "index.query.batch",
            })
        });
        if let Some(t) = &tel {
            t.counter_add("index.queries", 1);
            t.counter_add("index.query_points", queries.len() as u64);
        }
        // Auto tuning: when the config asks for it and the caller pinned no
        // stage explicitly, a seeded `AutoTuner` picks the OptLevel arm for
        // this call. The tuner is created on first use, warm-started from
        // the continuous profiler's snapshot when one is armed (those
        // measurements were collected under the static `config.opt` level).
        let decision = match self.config.tuning {
            Tuning::Auto { seed } if overrides.is_empty() => {
                if self.tuner.is_none() {
                    let mut tuner = AutoTuner::new(seed)
                        .with_cost_model(CostCoefficients::calibrate(self.backend.device()));
                    if let Some(snapshot) = tel.as_ref().and_then(|t| t.profile_snapshot()) {
                        tuner.absorb_profile(&snapshot, self.config.opt);
                    }
                    self.tuner = Some(tuner);
                }
                let tuner = self.tuner.as_mut().expect("tuner installed above");
                Some(tuner.decide(
                    plan.as_ref().kind_label(),
                    self.points.len(),
                    self.backend.name(),
                    queries.len(),
                ))
            }
            _ => None,
        };
        let overrides = match decision {
            Some(d) => d.overrides(),
            None => overrides,
        };
        let result = match plan.as_ref() {
            QueryPlan::Batch(slices) => self.query_batch(queries, slices, overrides),
            single => {
                let params = single.params().expect("non-batch plan has params");
                let backend = self.backend;
                let cfg = self.config;
                let pipeline = ExecutionPipeline::with_overrides(backend, &cfg, overrides);
                // The persistent grid is provisioned exactly when the
                // *resolved* partition stage wants it — a per-call override
                // can both skip the grid (partitioning disabled for this
                // call) and hit the cached one (partitioning enabled on a
                // no-partitioning engine).
                let grid = if pipeline.partition_stage().wants_grid() {
                    grid_for(&mut self.grid, &self.points, cfg.grid_max_cells)
                } else {
                    None
                };
                // The adopted dirty region is applied on *every* query for
                // the lifetime of this view (re-invalidating an entry that
                // was already recomputed is wasted work, never wrong); the
                // adopting owner decides when the invalidation has been
                // durably absorbed and stops resupplying it.
                // An adopted cache serves exactly the params it was
                // grown under; other plans bypass it (reading its entries
                // would be wrong, wiping them would cost the owner its
                // warm state).
                let cache_matches = self.cache_params.is_none_or(|cp| cp == params);
                let scene = SceneRefs {
                    structure_ms: std::mem::take(&mut self.pending_structure_ms),
                    grid,
                    dirty_region: self.dirty_region,
                    cache: if cache_matches {
                        self.cache.as_deref_mut()
                    } else {
                        None
                    },
                };
                pipeline.execute(params, &self.points, queries, &mut self.store, scene)
            }
        };
        if let (Some(span), Ok(results)) = (query_span.as_mut(), result.as_ref()) {
            span.attr("queries", queries.len() as f64)
                .attr("points", self.points.len() as f64)
                .attr("device_ms", results.trace.device_total_ms())
                .attr("partitions", results.num_partitions as f64);
        }
        if let (Some(t), Ok(results)) = (tel.as_ref(), result.as_ref()) {
            if t.profiler_enabled() {
                t.profile(&ProfileSample {
                    plan_kind: plan.as_ref().kind_label(),
                    points: self.points.len(),
                    backend: self.backend.name(),
                    queries: queries.len() as u64,
                    stages: &results.trace.stage_device_ms(),
                });
            }
        }
        // The tuner learns from the same per-stage timings the profiler
        // records; `bvh_ms` (one-time structure builds) is excluded so arms
        // compete on steady-state cost.
        if let (Some(d), Ok(results)) = (decision, result.as_ref()) {
            if let Some(tuner) = self.tuner.as_mut() {
                tuner.observe(
                    plan.as_ref().kind_label(),
                    self.points.len(),
                    self.backend.name(),
                    d.level,
                    &results.trace.stage_device_ms(),
                    results.breakdown.bvh_ms,
                );
            }
            self.last_decision = Some(d);
        }
        result
    }

    /// The heterogeneous-batch path: one shared `Schedule` stage over every
    /// covered query (against the widest structure any slice needs), then
    /// the per-slice `Partition` → `Launch` → `Gather` stages, all hitting
    /// the same structure store and grid.
    ///
    /// The per-query megacell *cache* is deliberately bypassed here: it is
    /// keyed to a single `(radius, k)` pair, and a batch's slices carry
    /// several — every slice grows its megacells fresh against the shared
    /// grid. An adopted dirty region therefore need not be consumed by this
    /// path; the adopting owner keeps resupplying it until a single-plan
    /// query absorbs it into the cache.
    fn query_batch(
        &mut self,
        queries: &[Vec3],
        slices: &[PlanSlice],
        overrides: StageOverrides<'_>,
    ) -> Result<SearchResults, SearchError> {
        self.config.validate()?;
        let backend = self.backend;
        let cfg = self.config;
        let device = backend.device();
        let pipeline = ExecutionPipeline::with_overrides(backend, &cfg, overrides);
        let slice_params: Vec<(SearchParams, &[u32])> = slices
            .iter()
            .map(|s| {
                (
                    s.plan.params().expect("validated non-batch slice"),
                    s.query_ids.as_slice(),
                )
            })
            .collect();

        let max_k = slice_params.iter().map(|(p, _)| p.k).max().unwrap_or(1);
        let footprint = point_cloud_bytes(self.points.len(), queries.len(), max_k);
        device.check_allocation(footprint)?;
        let mut breakdown = TimeBreakdown::default();
        let mut trace = PipelineTrace::default();
        let result_bytes: u64 = slice_params
            .iter()
            .map(|(p, ids)| ids.len() as u64 * p.k as u64 * 4)
            .sum();
        breakdown.data_ms = device.transfer_h2d_ms((self.points.len() + queries.len()) as u64 * 12)
            + device.transfer_d2h_ms(result_bytes);
        let tel = Telemetry::current();
        let pending_structure_ms = std::mem::take(&mut self.pending_structure_ms);
        breakdown.bvh_ms += pending_structure_ms;
        if pending_structure_ms > 0.0 {
            trace.charge(StageKind::Launch, pending_structure_ms, 0.0);
            if let Some(t) = &tel {
                let mut span = t.span("accel.ensure");
                span.attr("device_ms", pending_structure_ms);
            }
        }

        let mut search_metrics = LaunchMetrics::default();
        let covered: Vec<u32> = slice_params
            .iter()
            .flat_map(|(_, ids)| ids.iter().copied())
            .collect();
        if queries.is_empty() || self.points.is_empty() || covered.is_empty() {
            return Ok(empty_results(
                queries.len(),
                breakdown,
                search_metrics,
                LaunchMetrics::default(),
                trace,
            ));
        }

        // Every structure the batch will traverse is known up front: the
        // widest shared scheduling structure (when the resolved stage
        // actually traverses one — an identity schedule bills nothing,
        // exactly like a scheduling-off optimisation level) plus one width
        // per populated slice. Build all missing widths *concurrently* on
        // the worker pool in one shot; the per-stage `ensure` calls below
        // then hit the warm cache and bill nothing.
        let schedule_stage = pipeline.schedule_stage();
        {
            let mut widths: Vec<f32> = Vec::new();
            if schedule_stage.needs_structure() {
                let max_r = slice_params
                    .iter()
                    .map(|(p, _)| p.radius)
                    .fold(0.0f32, f32::max);
                widths.push(2.0 * max_r * cfg.approx.aabb_width_factor());
            }
            for (params, ids) in &slice_params {
                if !ids.is_empty() {
                    widths.push(2.0 * params.radius * cfg.approx.aabb_width_factor());
                }
            }
            let host = Instant::now();
            let mut ensure_span = tel.as_ref().map(|t| t.span("accel.ensure"));
            let built_ms = self
                .store
                .ensure_many(backend, &self.points, &widths, cfg.build)?;
            let host_ms = host_ms_since(host);
            if built_ms > 0.0 {
                breakdown.bvh_ms += built_ms;
                trace.charge(StageKind::Launch, built_ms, host_ms);
            }
            if let Some(span) = ensure_span.as_mut() {
                span.attr("device_ms", if built_ms > 0.0 { built_ms } else { 0.0 })
                    .attr("widths", widths.len() as f64)
                    .attr_wall("host_ms", host_ms);
            }
        }

        // Shared `Schedule` stage (Section 4, once for the whole batch):
        // one order over every covered query, split back into per-slice
        // orders below (each slice's order is the scheduled order filtered
        // to its ids — identical to sorting the slice by the shared keys).
        let accel = if schedule_stage.needs_structure() {
            let max_r = slice_params
                .iter()
                .map(|(p, _)| p.radius)
                .fold(0.0f32, f32::max);
            let shared_width = 2.0 * max_r * cfg.approx.aabb_width_factor();
            let host = Instant::now();
            let mut ensure_span = tel.as_ref().map(|t| t.span("accel.ensure"));
            let (sid, built_ms) =
                self.store
                    .ensure(backend, &self.points, shared_width, cfg.build)?;
            breakdown.bvh_ms += built_ms;
            let host_ms = host_ms_since(host);
            trace.charge(StageKind::Launch, built_ms, host_ms);
            if let Some(span) = ensure_span.as_mut() {
                span.attr("device_ms", built_ms)
                    .attr_wall("host_ms", host_ms);
            }
            Some(sid)
        } else {
            None
        };
        let host = Instant::now();
        let mut stage_span = tel
            .as_ref()
            .map(|t| t.span(StageKind::Schedule.span_name()));
        let schedule = schedule_stage.schedule(&ScheduleCx {
            backend,
            accel: accel.map(|sid| self.store.accel_ref(sid)),
            points: &self.points,
            queries,
            query_ids: &covered,
        });
        breakdown.fs_ms += schedule.fs_metrics.time_ms();
        breakdown.opt_ms += schedule.sort_metrics.time_ms;
        let schedule_device_ms = schedule.fs_metrics.time_ms() + schedule.sort_metrics.time_ms;
        let schedule_host_ms = host_ms_since(host);
        trace.charge(StageKind::Schedule, schedule_device_ms, schedule_host_ms);
        if let Some(t) = &tel {
            t.observe(StageKind::Schedule.device_histogram(), schedule_device_ms);
        }
        if let Some(span) = stage_span.as_mut() {
            span.attr("device_ms", schedule_device_ms)
                .attr("queries", covered.len() as f64)
                .attr("invocations", 1.0)
                .attr_wall("host_ms", schedule_host_ms);
        }
        drop(stage_span);
        if overrides.schedule.is_some() {
            crate::pipeline::assert_schedule_covers(&schedule.order, &covered, queries.len());
        }
        let fs_metrics = schedule.fs_metrics.clone();

        // Split the shared order into per-slice orders.
        let mut slice_of: Vec<usize> = vec![usize::MAX; queries.len()];
        for (si, (_, ids)) in slice_params.iter().enumerate() {
            for &qid in ids.iter() {
                slice_of[qid as usize] = si;
            }
        }
        let mut orders: Vec<Vec<u32>> = slice_params
            .iter()
            .map(|(_, ids)| Vec::with_capacity(ids.len()))
            .collect();
        for &qid in &schedule.order {
            orders[slice_of[qid as usize]].push(qid);
        }

        // Per-slice `Partition` → `Launch` → `Gather` over the shared store
        // and grid.
        let mut gathered = GatheredHits::empty(queries.len());
        let mut num_partitions = 0;
        let mut num_bundles = 0;
        for ((params, _), order) in slice_params.iter().zip(&orders) {
            if order.is_empty() {
                continue;
            }
            let host = Instant::now();
            let mut ensure_span = tel.as_ref().map(|t| t.span("accel.ensure"));
            let full_width = 2.0 * params.radius * cfg.approx.aabb_width_factor();
            let (gid, built_ms) =
                self.store
                    .ensure(backend, &self.points, full_width, cfg.build)?;
            breakdown.bvh_ms += built_ms;
            let host_ms = host_ms_since(host);
            trace.charge(StageKind::Launch, built_ms, host_ms);
            if let Some(span) = ensure_span.as_mut() {
                span.attr("device_ms", built_ms)
                    .attr_wall("host_ms", host_ms);
            }
            drop(ensure_span);
            let grid = if pipeline.partition_stage().wants_grid() {
                grid_for(&mut self.grid, &self.points, cfg.grid_max_cells)
            } else {
                None
            };
            let (p, b) = pipeline.execute_ordered(
                *params,
                &self.points,
                queries,
                order,
                &mut self.store,
                gid,
                grid,
                &Aabb::EMPTY,
                None,
                &mut gathered,
                &mut breakdown,
                &mut search_metrics,
                &mut trace,
            )?;
            num_partitions += p;
            num_bundles += b;
        }

        Ok(SearchResults {
            neighbors: gathered.neighbors,
            breakdown,
            search_metrics,
            fs_metrics,
            num_partitions,
            num_bundles,
            trace,
        })
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::backend::GpusimBackend;
    use crate::verify::check_all;
    use rtnn_gpusim::Device;

    fn jittered(n_per_axis: usize, spacing: f32) -> Vec<Vec3> {
        let mut pts = Vec::new();
        for x in 0..n_per_axis {
            for y in 0..n_per_axis {
                for z in 0..n_per_axis {
                    let j = 0.05 * spacing * ((x * 7 + y * 13 + z * 29) % 10) as f32 / 10.0;
                    pts.push(Vec3::new(
                        x as f32 * spacing + j,
                        y as f32 * spacing - j,
                        z as f32 * spacing + j,
                    ));
                }
            }
        }
        pts
    }

    #[test]
    fn repeated_queries_amortise_structure_builds() {
        let device = Device::rtx_2080();
        let backend = GpusimBackend::new(&device);
        let points = jittered(7, 0.6);
        let queries: Vec<Vec3> = points.iter().step_by(3).copied().collect();
        let mut index = Index::build(&backend, &points[..], EngineConfig::default());
        let plan = QueryPlan::knn(1.2, 6);
        let first = index.query(&queries, &plan).unwrap();
        assert!(first.breakdown.bvh_ms > 0.0, "first call builds structures");
        let second = index.query(&queries, &plan).unwrap();
        assert_eq!(second.neighbors, first.neighbors, "results are stable");
        assert_eq!(
            second.breakdown.bvh_ms, 0.0,
            "second call hits the width cache for every structure"
        );
        assert!(index.cached_structures() >= 1);
        // A different radius builds (and caches) additional widths.
        let other = index.query(&queries, &QueryPlan::range(0.9, 32)).unwrap();
        assert!(other.breakdown.bvh_ms > 0.0);
        check_all(
            &points,
            &queries,
            &SearchParams::range(0.9, 32),
            &other.neighbors,
        )
        .unwrap_or_else(|(q, e)| panic!("query {q}: {e}"));
    }

    #[test]
    fn batch_matches_per_slice_single_plans() {
        let device = Device::rtx_2080();
        let backend = GpusimBackend::new(&device);
        let points = jittered(7, 0.5);
        let queries: Vec<Vec3> = points.iter().step_by(2).copied().collect();
        let n = queries.len() as u32;
        let knn_ids: Vec<u32> = (0..n).filter(|i| i % 2 == 0).collect();
        let rng_ids: Vec<u32> = (0..n).filter(|i| i % 2 == 1).collect();
        let knn_plan = QueryPlan::knn(1.1, 5);
        let rng_plan = QueryPlan::range(0.8, 1000);
        let batch = QueryPlan::Batch(vec![
            PlanSlice::new(knn_plan.clone(), knn_ids.clone()),
            PlanSlice::new(rng_plan.clone(), rng_ids.clone()),
        ]);

        let mut index = Index::build(&backend, &points[..], EngineConfig::default());
        let combined = index.query(&queries, &batch).unwrap();
        let knn_single = index.query(&queries, &knn_plan).unwrap();
        let rng_single = index.query(&queries, &rng_plan).unwrap();

        for &qid in &knn_ids {
            assert_eq!(
                combined.neighbors[qid as usize], knn_single.neighbors[qid as usize],
                "KNN slice query {qid}"
            );
        }
        for &qid in &rng_ids {
            // Range order is traversal-defined; with a non-truncating cap
            // the sets must agree.
            let mut a = combined.neighbors[qid as usize].clone();
            let mut b = rng_single.neighbors[qid as usize].clone();
            a.sort_unstable();
            b.sort_unstable();
            assert_eq!(a, b, "range slice query {qid}");
        }
        // One shared scheduling pass covers all launched queries.
        assert_eq!(combined.fs_metrics.active_rays, n as u64);
    }

    #[test]
    fn warm_prebuilds_every_width_and_charges_the_next_query() {
        let device = Device::rtx_2080();
        let backend = GpusimBackend::new(&device);
        let points = jittered(6, 0.6);
        let queries: Vec<Vec3> = points.iter().step_by(3).copied().collect();
        let n = queries.len() as u32;
        let batch = QueryPlan::Batch(vec![
            PlanSlice::new(QueryPlan::knn(1.2, 6), (0..n / 2).collect()),
            PlanSlice::new(QueryPlan::range(0.8, 64), (n / 2..n).collect()),
        ]);

        let mut index = Index::build(&backend, &points[..], EngineConfig::default());
        let built = index.warm(&batch).unwrap();
        assert!(built > 0.0, "cold warm-up builds structures");
        assert!(
            index.cached_structures() >= 2,
            "both slice widths (and the shared scheduling width) are cached"
        );
        // Warming the same plan again is free.
        assert_eq!(index.warm(&batch).unwrap(), 0.0);

        // The warm-up cost is carried into the next query's BVH slot; the
        // plan-level structures themselves are all cache hits there.
        let first = index.query(&queries, &batch).unwrap();
        assert!(first.breakdown.bvh_ms >= built);
        let second = index.query(&queries, &batch).unwrap();
        assert_eq!(
            second.breakdown.bvh_ms, 0.0,
            "a warmed index amortises every structure build"
        );
        assert_eq!(second.neighbors, first.neighbors);

        // Invalid plans are rejected with the same typed errors as query.
        assert_eq!(
            index.warm(&QueryPlan::knn(-1.0, 4)).unwrap_err(),
            SearchError::InvalidPlan(PlanError::InvalidRadius {
                field: "Knn.r",
                value: -1.0
            })
        );
    }

    #[test]
    fn batch_leaves_uncovered_queries_empty() {
        let device = Device::rtx_2080();
        let backend = GpusimBackend::new(&device);
        let points = jittered(5, 1.0);
        let queries: Vec<Vec3> = points.iter().step_by(4).copied().collect();
        let mut index = Index::build(&backend, &points[..], EngineConfig::default());
        let batch = QueryPlan::Batch(vec![PlanSlice::new(QueryPlan::knn(1.5, 4), vec![0, 2])]);
        let results = index.query(&queries, &batch).unwrap();
        assert!(!results.neighbors[0].is_empty());
        assert!(
            results.neighbors[1].is_empty(),
            "uncovered query stays empty"
        );
    }

    #[test]
    fn typed_errors_surface_at_query_time() {
        let device = Device::rtx_2080();
        let backend = GpusimBackend::new(&device);
        let points = [Vec3::ZERO];
        let mut index = Index::build(&backend, &points[..], EngineConfig::default());
        let err = index
            .query(&[Vec3::ZERO], &QueryPlan::knn(-1.0, 4))
            .unwrap_err();
        assert_eq!(
            err,
            SearchError::InvalidPlan(PlanError::InvalidRadius {
                field: "Knn.r",
                value: -1.0
            })
        );

        // Normalization must not swallow conflicting double claims: an id
        // listed under two different parameter sets still errors.
        let conflicted = QueryPlan::Batch(vec![
            PlanSlice::new(QueryPlan::knn(1.0, 4), vec![0]),
            PlanSlice::new(QueryPlan::range(2.0, 8), vec![0]),
        ]);
        assert_eq!(
            index.query(&[Vec3::ZERO], &conflicted).unwrap_err(),
            SearchError::InvalidPlan(PlanError::DuplicateQueryId {
                slice: 1,
                query_id: 0
            })
        );

        // A hand-assembled config with a zero grid budget is rejected with
        // a typed error too (the builder panics instead, see below).
        let bad_cfg = EngineConfig {
            grid_max_cells: 0,
            ..EngineConfig::default()
        };
        let mut bad = Index::build(&backend, &points[..], bad_cfg);
        assert_eq!(
            bad.query(&[Vec3::ZERO], &QueryPlan::knn(1.0, 4))
                .unwrap_err(),
            SearchError::InvalidPlan(PlanError::ZeroGridBudget)
        );
    }

    #[test]
    #[should_panic(expected = "grid_max_cells must be a positive cell budget")]
    fn zero_grid_budget_builder_panics() {
        let _ = EngineConfig::default().with_grid_max_cells(0);
    }

    #[test]
    fn empty_inputs_are_handled() {
        let device = Device::rtx_2080();
        let backend = GpusimBackend::new(&device);
        let points = [Vec3::ZERO];
        let mut index = Index::build(&backend, &points[..], EngineConfig::default());
        let no_queries = index.query(&[], &QueryPlan::range(1.0, 4)).unwrap();
        assert!(no_queries.neighbors.is_empty());
        let mut empty = Index::build(&backend, Vec::new(), EngineConfig::default());
        assert!(empty.is_empty());
        let no_points = empty
            .query(&[Vec3::ZERO, Vec3::ONE], &QueryPlan::knn(1.0, 4))
            .unwrap();
        assert_eq!(no_points.neighbors.len(), 2);
        assert!(no_points.neighbors.iter().all(Vec::is_empty));
    }
}
