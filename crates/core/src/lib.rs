//! # rtnn
//!
//! RTNN: neighbor search (fixed-radius and K-nearest-neighbor) formulated as
//! hardware-accelerated ray casting, reproducing Zhu, *"RTNN: Accelerating
//! Neighbor Search Using Hardware Ray Tracing"*, PPoPP 2022.
//!
//! The library runs on the simulated Turing-class GPU provided by
//! `rtnn-gpusim` through the OptiX-like pipeline of `rtnn-optix`; on that
//! substrate it implements the paper's three layers:
//!
//! 1. **The basic mapping** (Section 3.1): every search point becomes an
//!    AABB of width `2r` circumscribing its `r`-sphere, a BVH is built over
//!    those AABBs, and every query casts a degenerate short ray from its
//!    position. Traversal prunes points whose AABB does not contain the
//!    query (step 1, RT cores); the IS shader performs the sphere test and
//!    records neighbors (step 2, SMs), terminating the ray once `K`
//!    neighbors are found for range search or maintaining a bounded
//!    priority queue for KNN.
//! 2. **Query scheduling** (Section 4): a truncated first-hit launch
//!    associates each query with one enclosing leaf AABB; sorting queries by
//!    the Morton code of that AABB's centre makes adjacent rays spatially
//!    close, taming warp divergence and cache misses.
//! 3. **Query partitioning and bundling** (Section 5): a uniform grid over
//!    the points lets each query grow a *megacell* until it provably
//!    contains enough neighbors; queries with similar megacell sizes share a
//!    partition whose BVH uses the smallest safe AABB width, and an
//!    analytical cost model bundles partitions so that BVH-construction
//!    overhead never outweighs the traversal savings.
//!
//! ## Quick start
//!
//! ```
//! use rtnn::{Rtnn, RtnnConfig, SearchMode, SearchParams};
//! use rtnn_gpusim::Device;
//! use rtnn_math::Vec3;
//!
//! let device = Device::rtx_2080();
//! let points: Vec<Vec3> = (0..1000)
//!     .map(|i| Vec3::new((i % 10) as f32, ((i / 10) % 10) as f32, (i / 100) as f32))
//!     .collect();
//! let queries = points.clone();
//!
//! let config = RtnnConfig::new(SearchParams {
//!     radius: 1.5,
//!     k: 8,
//!     mode: SearchMode::Knn,
//! });
//! let engine = Rtnn::new(&device, config);
//! let results = engine.search(&points, &queries).unwrap();
//! assert_eq!(results.neighbors.len(), queries.len());
//! assert!(results.breakdown.total_ms() > 0.0);
//! ```

pub mod approx;
pub mod bundling;
pub mod cost_model;
pub mod engine;
pub mod megacell;
pub mod partition;
pub mod result;
pub mod scheduling;
pub mod shaders;
pub mod verify;

pub use approx::ApproxMode;
pub use bundling::{apply_bundles, plan_bundles, BundlePlan};
pub use cost_model::CostCoefficients;
pub use engine::{OptLevel, PreparedMegacells, PreparedScene, Rtnn, RtnnConfig, SearchError};
pub use megacell::{GridRefresh, MegacellGrid, MegacellResult};
pub use partition::{KnnAabbRule, MegacellCache, Partition, PartitionSet};
pub use result::{SearchMode, SearchParams, SearchResults, TimeBreakdown};
pub use scheduling::{raster_order, schedule_queries, QuerySchedule};
