//! # rtnn
//!
//! RTNN: neighbor search (fixed-radius and K-nearest-neighbor) formulated as
//! hardware-accelerated ray casting, reproducing Zhu, *"RTNN: Accelerating
//! Neighbor Search Using Hardware Ray Tracing"*, PPoPP 2022.
//!
//! The library runs on the simulated Turing-class GPU provided by
//! `rtnn-gpusim` through the OptiX-like pipeline of `rtnn-optix`; on that
//! substrate it implements the paper's three layers:
//!
//! 1. **The basic mapping** (Section 3.1): every search point becomes an
//!    AABB of width `2r` circumscribing its `r`-sphere, a BVH is built over
//!    those AABBs, and every query casts a degenerate short ray from its
//!    position. Traversal prunes points whose AABB does not contain the
//!    query (step 1, RT cores); the IS shader performs the sphere test and
//!    records neighbors (step 2, SMs), terminating the ray once `K`
//!    neighbors are found for range search or maintaining a bounded
//!    priority queue for KNN.
//! 2. **Query scheduling** (Section 4): a truncated first-hit launch
//!    associates each query with one enclosing leaf AABB; sorting queries by
//!    the Morton code of that AABB's centre makes adjacent rays spatially
//!    close, taming warp divergence and cache misses.
//! 3. **Query partitioning and bundling** (Section 5): a uniform grid over
//!    the points lets each query grow a *megacell* until it provably
//!    contains enough neighbors; queries with similar megacell sizes share a
//!    partition whose BVH uses the smallest safe AABB width, and an
//!    analytical cost model bundles partitions so that BVH-construction
//!    overhead never outweighs the traversal savings.
//!
//! ## The two-level API
//!
//! Scene-side state and per-query parameters are decoupled: build an
//! [`Index`] once over the points, then answer typed [`QueryPlan`]s
//! against it — different radii, Ks and variants, even a heterogeneous
//! [`QueryPlan::Batch`] in one call — on a pluggable [`Backend`]
//! ([`GpusimBackend`] by default, [`OptixBackend`] as the real-hardware
//! shim, `BruteForceBackend` in `rtnn-baselines` as the oracle).
//!
//! ```
//! use rtnn::{EngineConfig, GpusimBackend, Index, QueryPlan};
//! use rtnn_gpusim::Device;
//! use rtnn_math::Vec3;
//!
//! let device = Device::rtx_2080();
//! let backend = GpusimBackend::new(&device);
//! let points: Vec<Vec3> = (0..1000)
//!     .map(|i| Vec3::new((i % 10) as f32, ((i / 10) % 10) as f32, (i / 100) as f32))
//!     .collect();
//! let queries = points.clone();
//!
//! // One index, many plans: the structures the first plan builds are
//! // cached and reused by every later plan.
//! let mut index = Index::build(&backend, &points[..], EngineConfig::default());
//! let knn = index.query(&queries, &QueryPlan::knn(1.5, 8)).unwrap();
//! let rng = index.query(&queries, &QueryPlan::range(0.8, 32)).unwrap();
//! assert_eq!(knn.neighbors.len(), queries.len());
//! assert!(knn.breakdown.total_ms() > 0.0);
//! assert_eq!(rng.neighbors.len(), queries.len());
//! ```
//!
//! The legacy single-plan engine ([`Rtnn`]) remains as a deprecated shim
//! over the same execution core; see the README migration table.

pub mod approx;
pub mod autotune;
pub mod backend;
pub mod bundling;
pub mod cost_model;
pub mod engine;
pub mod index;
pub mod megacell;
pub mod partition;
pub mod pipeline;
pub mod plan;
pub mod result;
pub mod scheduling;
pub mod shaders;
pub mod verify;

pub use approx::ApproxMode;
pub use autotune::{AutoTuner, DecisionSource, TunerDecision, TunerReport, Tuning};
pub use backend::{
    exhaustive_traverse, Accel, AccelRef, Backend, GpusimBackend, OptixBackend, RefitOutcome,
    Traversal, TraversalJob, TraversalKind,
};
pub use bundling::{apply_bundles, plan_bundles, BundlePlan};
pub use cost_model::CostCoefficients;
pub use engine::{OptLevel, PreparedMegacells, PreparedScene, Rtnn, RtnnConfig, SearchError};
pub use index::{AdoptedScene, EngineConfig, Index};
pub use megacell::{GridRefresh, MegacellGrid, MegacellResult};
pub use partition::{KnnAabbRule, MegacellCache, Partition, PartitionSet};
pub use pipeline::{ExecutionPipeline, PipelineTrace, StageKind, StageOverrides, StageTiming};
pub use plan::{PlanError, PlanSlice, QueryPlan};
pub use result::{SearchMode, SearchParams, SearchResults, ShardMerge, TimeBreakdown};
pub use rtnn_gpusim::StructureTiming;
pub use rtnn_optix::LaunchMetrics;
pub use rtnn_telemetry as telemetry;
pub use scheduling::{raster_order, schedule_queries, schedule_queries_on, QuerySchedule};
