//! Megacell computation (Section 5.1, Figure 10a).
//!
//! A uniform grid is laid over the search points. For each query, the
//! megacell is the smallest axis-aligned block of grid cells, grown
//! outwards from the cell containing the query, that holds at least `K`
//! points — growth stops early when the block would leave the cube
//! inscribed in the query's `r`-sphere (growing further could not help: a
//! bigger block would only add points outside the search radius along the
//! axes).
//!
//! The megacell width determines the per-partition AABB width (see
//! [`crate::partition`]); the number of points it holds estimates the local
//! density used by the bundling cost model (Equation 4).

use rtnn_math::{Aabb, GridCoord, PointBins, UniformGrid, Vec3};

/// The grid + binned points the megacell pass operates on.
///
/// For streaming scenes the grid supports *incremental* maintenance: it
/// remembers which cell every point was binned into, so when a frame moves a
/// subset of the points only those points' cells are recomputed and the bins
/// re-sorted ([`MegacellGrid::refresh`]) — the grid geometry (bounds, cell
/// size, dimensions) survives, and the refresh reports the world-space
/// region whose cell populations changed so downstream per-query megacell
/// caches can be invalidated selectively instead of wholesale.
#[derive(Debug, Clone)]
pub struct MegacellGrid {
    bins: PointBins,
    cell_size: f32,
    /// Cell index each point is currently binned into (indexed by point id).
    point_cells: Vec<u32>,
}

/// Outcome of [`MegacellGrid::refresh`].
#[derive(Debug, Clone, PartialEq)]
pub enum GridRefresh {
    /// The grid absorbed the motion in place. `dirty_region` bounds every
    /// cell whose population changed (empty when points only moved within
    /// their cells — megacell results are then unchanged everywhere);
    /// `cells_changed` counts those cells.
    Incremental {
        /// World-space bounds of all population-changed cells.
        dirty_region: Aabb,
        /// Number of cells whose population changed.
        cells_changed: usize,
    },
    /// The motion cannot be absorbed (a point left the grid bounds, or the
    /// point count changed): the caller must rebuild the grid from scratch
    /// with [`MegacellGrid::build`]. `self` is left unchanged.
    NeedsRebuild,
}

/// Result of growing one query's megacell.
#[derive(Debug, Clone, Copy, PartialEq)]
pub struct MegacellResult {
    /// Growth steps beyond the central cell (0 = just the query's cell).
    pub steps: u32,
    /// Megacell width `(2·steps + 1) · cell_size`.
    pub width: f32,
    /// Number of points inside the megacell.
    pub found: u32,
    /// True if growth stopped at the inscribed-cube cap with fewer than `K`
    /// points found (a sparse region); such queries fall back to the full
    /// `2r` AABB.
    pub capped: bool,
    /// Grid cells examined — the work estimate charged to the device for the
    /// `Opt` component of Figure 12.
    pub cells_scanned: u32,
}

impl MegacellGrid {
    /// Build the grid over `points`, using at most `max_cells` cells (the
    /// paper uses "the smallest cell size allowed by the GPU memory
    /// capacity"; `max_cells` stands in for that memory cap). Returns `None`
    /// for an empty point set.
    pub fn build(points: &[Vec3], max_cells: usize) -> Option<Self> {
        if points.is_empty() {
            return None;
        }
        let bounds = Aabb::from_points(points);
        // Guard against a degenerate (single-point) cloud: give the grid a
        // tiny but positive extent.
        let bounds = if bounds.longest_extent() <= 0.0 {
            bounds.expanded(1e-3)
        } else {
            bounds
        };
        let grid = UniformGrid::with_max_cells(bounds, max_cells.max(8));
        let cell_size = grid.cell_size();
        let point_cells: Vec<u32> = points
            .iter()
            .map(|&p| grid.cell_index(grid.cell_of(p)) as u32)
            .collect();
        Some(MegacellGrid {
            bins: PointBins::from_cell_indices(grid, &point_cells),
            cell_size,
            point_cells,
        })
    }

    /// Absorb a frame of motion: `points` are the current positions (same
    /// ids as at build time) and `moved` lists the ids whose position
    /// changed since the last build/refresh. Only the moved points' cells
    /// are recomputed; the bins are re-sorted when any point changed cell.
    ///
    /// Returns [`GridRefresh::NeedsRebuild`] — leaving `self` untouched —
    /// when the motion cannot be absorbed: the point count changed, or a
    /// moved point escaped the grid bounds (binning clamps out-of-bounds
    /// points into boundary cells, which would let the megacell counts claim
    /// points that are geometrically far outside the counted box and break
    /// the AABB-width soundness argument).
    pub fn refresh(&mut self, points: &[Vec3], moved: &[u32]) -> GridRefresh {
        if points.len() != self.point_cells.len() {
            return GridRefresh::NeedsRebuild;
        }
        let grid = self.bins.grid();
        let mut changes: Vec<(u32, u32)> = Vec::new(); // (id, new cell)
        for &id in moved {
            let p = points[id as usize];
            if !grid.bounds().contains_point(p) {
                return GridRefresh::NeedsRebuild;
            }
            let cell = grid.cell_index(grid.cell_of(p)) as u32;
            if cell != self.point_cells[id as usize] {
                changes.push((id, cell));
            }
        }
        if changes.is_empty() {
            return GridRefresh::Incremental {
                dirty_region: Aabb::EMPTY,
                cells_changed: 0,
            };
        }
        let mut dirty_region = Aabb::EMPTY;
        let mut dirty_cells = std::collections::HashSet::new();
        for &(id, new_cell) in &changes {
            let old_cell = self.point_cells[id as usize];
            for cell in [old_cell, new_cell] {
                if dirty_cells.insert(cell) {
                    dirty_region.grow_aabb(&grid.cell_bounds(grid.coord_of_index(cell as usize)));
                }
            }
            self.point_cells[id as usize] = new_cell;
        }
        let cells_changed = dirty_cells.len();
        self.bins = PointBins::from_cell_indices(self.bins.grid().clone(), &self.point_cells);
        GridRefresh::Incremental {
            dirty_region,
            cells_changed,
        }
    }

    /// World-space bounds of every cell the megacell growth for a query at
    /// `q` could possibly scan (the maximum-steps box around its central
    /// cell). A cached megacell result stays valid as long as this region
    /// contains no population-changed cell and the query's central cell is
    /// unchanged.
    pub fn reach_bounds(&self, q: Vec3, radius: f32) -> Aabb {
        let grid = self.bins.grid();
        let centre = grid.cell_of(q);
        let dims = grid.dims();
        let steps = self.max_steps(radius);
        let lo = GridCoord::new(
            centre.x.saturating_sub(steps),
            centre.y.saturating_sub(steps),
            centre.z.saturating_sub(steps),
        );
        let hi = GridCoord::new(
            (centre.x + steps).min(dims[0] - 1),
            (centre.y + steps).min(dims[1] - 1),
            (centre.z + steps).min(dims[2] - 1),
        );
        grid.cell_bounds(lo).union(&grid.cell_bounds(hi))
    }

    /// Linear index of the cell containing `q` (clamped to the grid).
    pub fn cell_index_of(&self, q: Vec3) -> usize {
        let grid = self.bins.grid();
        grid.cell_index(grid.cell_of(q))
    }

    /// Edge length of one grid cell.
    pub fn cell_size(&self) -> f32 {
        self.cell_size
    }

    /// The underlying grid.
    pub fn grid(&self) -> &UniformGrid {
        self.bins.grid()
    }

    /// Maximum number of growth steps for search radius `radius`: the
    /// megacell must stay within the cube inscribed in the `r`-sphere
    /// (width `2r/√3`).
    pub fn max_steps(&self, radius: f32) -> u32 {
        let inscribed = 2.0 * radius / 3.0_f32.sqrt();
        if inscribed <= self.cell_size {
            return 0;
        }
        (((inscribed / self.cell_size) - 1.0) / 2.0)
            .floor()
            .max(0.0) as u32
    }

    /// Grow the megacell for one query (Figure 10a).
    pub fn megacell_for(&self, query: Vec3, radius: f32, k: usize) -> MegacellResult {
        let grid = self.bins.grid();
        let centre = grid.cell_of(query);
        let dims = grid.dims();
        let max_steps = self.max_steps(radius);

        // Every width rule downstream (partition.rs) bounds the K-th-neighbor
        // distance by the query's position *inside* its central cell. A query
        // outside the grid is clamped into a boundary cell by `cell_of`, so
        // that bound does not hold for it — report it capped so it falls back
        // to the full-width `2r` AABB (like a sparse-region query). The stored
        // grid bounds are checked directly (not the reconstructed cell box,
        // whose `min + c·cell` arithmetic accumulates f32 rounding at high
        // cell indices and could misroute in-grid boundary queries).
        if !grid.bounds().contains_point(query) {
            return MegacellResult {
                steps: 0,
                width: self.cell_size,
                found: 0,
                capped: true,
                cells_scanned: 1,
            };
        }

        let mut steps = 0u32;
        let mut cells_scanned = 0u32;
        let mut found;
        loop {
            let lo = GridCoord::new(
                centre.x.saturating_sub(steps),
                centre.y.saturating_sub(steps),
                centre.z.saturating_sub(steps),
            );
            let hi = GridCoord::new(
                (centre.x + steps).min(dims[0] - 1),
                (centre.y + steps).min(dims[1] - 1),
                (centre.z + steps).min(dims[2] - 1),
            );
            found = self.bins.count_in_cell_box(lo, hi);
            let volume = (hi.x - lo.x + 1) * (hi.y - lo.y + 1) * (hi.z - lo.z + 1);
            cells_scanned += volume;
            if found as usize >= k || steps >= max_steps {
                break;
            }
            // Once the clamped box spans the whole grid, further growth
            // cannot change `found` — jump to the cap, charging the same
            // per-step volume the step-by-step loop would have (this is the
            // sparse-region regime: a large `k` or search radius over a
            // small cloud would otherwise re-count every cell per step).
            if lo.x == 0
                && lo.y == 0
                && lo.z == 0
                && hi.x == dims[0] - 1
                && hi.y == dims[1] - 1
                && hi.z == dims[2] - 1
            {
                cells_scanned += (max_steps - steps) * volume;
                steps = max_steps;
                break;
            }
            steps += 1;
        }
        MegacellResult {
            steps,
            width: (2 * steps + 1) as f32 * self.cell_size,
            found,
            capped: (found as usize) < k,
            cells_scanned,
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn dense_grid_points(n_per_axis: usize, spacing: f32) -> Vec<Vec3> {
        let mut pts = Vec::new();
        for x in 0..n_per_axis {
            for y in 0..n_per_axis {
                for z in 0..n_per_axis {
                    pts.push(Vec3::new(x as f32, y as f32, z as f32) * spacing);
                }
            }
        }
        pts
    }

    #[test]
    fn empty_points_give_no_grid() {
        assert!(MegacellGrid::build(&[], 1000).is_none());
    }

    #[test]
    fn single_point_cloud_builds() {
        let mg = MegacellGrid::build(&[Vec3::ONE], 1000).unwrap();
        let r = mg.megacell_for(Vec3::ONE, 1.0, 1);
        assert_eq!(r.found, 1);
        assert!(!r.capped);
    }

    #[test]
    fn growth_stops_when_k_is_reached() {
        let points = dense_grid_points(10, 1.0);
        let mg = MegacellGrid::build(&points, 32 * 32 * 32).unwrap();
        let q = Vec3::new(5.0, 5.0, 5.0);
        let small_k = mg.megacell_for(q, 4.0, 2);
        let big_k = mg.megacell_for(q, 4.0, 200);
        assert!(small_k.found >= 2);
        assert!(big_k.steps >= small_k.steps);
        assert!(big_k.width >= small_k.width);
        assert!(big_k.cells_scanned >= small_k.cells_scanned);
    }

    #[test]
    fn growth_is_capped_by_the_inscribed_cube() {
        // A sparse cloud: the megacell cannot reach K points before hitting
        // the cap, so the query is flagged `capped`.
        let points = vec![Vec3::ZERO, Vec3::new(50.0, 0.0, 0.0)];
        let mg = MegacellGrid::build(&points, 64 * 64 * 64).unwrap();
        let r = mg.megacell_for(Vec3::new(25.0, 0.0, 0.0), 2.0, 5);
        assert!(r.capped);
        assert_eq!(r.found, 0);
        // The megacell width never exceeds the inscribed-cube width (one cell
        // of slack allowed when the cell itself is larger than the cube).
        let inscribed = 2.0 * 2.0 / 3.0_f32.sqrt();
        assert!(r.width <= inscribed + mg.cell_size());
    }

    #[test]
    fn max_steps_shrinks_with_radius() {
        let points = dense_grid_points(8, 1.0);
        let mg = MegacellGrid::build(&points, 64 * 64 * 64).unwrap();
        assert!(mg.max_steps(10.0) > mg.max_steps(1.0));
        assert_eq!(mg.max_steps(1e-6), 0);
    }

    #[test]
    fn denser_regions_need_smaller_megacells() {
        // Half the cloud is dense, half is sparse: the dense-region query
        // stops earlier.
        let mut points = Vec::new();
        for i in 0..1000 {
            // Dense blob around the origin.
            let f = i as f32;
            points.push(Vec3::new(
                (f * 0.618) % 2.0,
                (f * 0.414) % 2.0,
                (f * 0.273) % 2.0,
            ));
        }
        for i in 0..50 {
            // Sparse far region.
            points.push(Vec3::new(20.0 + (i as f32) * 0.9, 20.0, 20.0));
        }
        let mg = MegacellGrid::build(&points, 64 * 64 * 64).unwrap();
        let dense = mg.megacell_for(Vec3::new(1.0, 1.0, 1.0), 8.0, 16);
        let sparse = mg.megacell_for(Vec3::new(25.0, 20.0, 20.0), 8.0, 16);
        assert!(dense.width <= sparse.width);
        assert!(dense.found >= 16);
    }

    #[test]
    fn refresh_absorbs_in_bounds_motion_and_matches_a_fresh_build() {
        let mut points = dense_grid_points(6, 1.0);
        let mut mg = MegacellGrid::build(&points, 4096).unwrap();
        // Move a handful of points to other cells (staying inside bounds).
        let moved: Vec<u32> = vec![3, 40, 100, 150];
        for &id in &moved {
            let p = &mut points[id as usize];
            p.x = (p.x + 2.0) % 5.0;
            p.y = (p.y + 1.0) % 5.0;
        }
        let refresh = mg.refresh(&points, &moved);
        let GridRefresh::Incremental {
            dirty_region,
            cells_changed,
        } = refresh
        else {
            panic!("expected incremental refresh, got {refresh:?}");
        };
        assert!(cells_changed > 0);
        assert!(!dirty_region.is_empty());
        // Every megacell result equals a freshly built grid's (geometry was
        // preserved, so cell size and dims agree).
        let fresh = MegacellGrid::build(&points, 4096).unwrap();
        assert_eq!(mg.cell_size(), fresh.cell_size());
        for q in [
            Vec3::new(0.5, 0.5, 0.5),
            Vec3::new(2.5, 2.5, 2.5),
            Vec3::new(4.9, 0.1, 3.3),
        ] {
            assert_eq!(mg.megacell_for(q, 2.0, 8), fresh.megacell_for(q, 2.0, 8));
        }
    }

    #[test]
    fn refresh_with_intra_cell_motion_reports_nothing_dirty() {
        let mut points = dense_grid_points(5, 1.0);
        let mut mg = MegacellGrid::build(&points, 4096).unwrap();
        let cell = mg.cell_size();
        // Nudge every interior point by much less than a cell (points on the
        // max face are left alone so nothing escapes the grid bounds).
        let mut moved: Vec<u32> = Vec::new();
        for (i, p) in points.iter_mut().enumerate() {
            if p.x < 3.5 {
                p.x += 0.01 * cell;
                moved.push(i as u32);
            }
        }
        match mg.refresh(&points, &moved) {
            GridRefresh::Incremental {
                dirty_region,
                cells_changed,
            } => {
                // Most nudges stay within the cell; tolerate a few boundary
                // crossings but the dirty region must be far from covering
                // the whole grid when motion is this small.
                assert!(cells_changed < points.len() / 4);
                let _ = dirty_region;
            }
            GridRefresh::NeedsRebuild => panic!("tiny motion should not force a rebuild"),
        }
    }

    #[test]
    fn refresh_demands_rebuild_when_points_escape_or_counts_change() {
        let mut points = dense_grid_points(4, 1.0);
        let mut mg = MegacellGrid::build(&points, 4096).unwrap();
        // A point leaves the grid bounds entirely.
        points[7] = Vec3::new(100.0, 0.0, 0.0);
        assert_eq!(mg.refresh(&points, &[7]), GridRefresh::NeedsRebuild);
        // Point-count changes always force a rebuild.
        points.pop();
        assert_eq!(mg.refresh(&points, &[]), GridRefresh::NeedsRebuild);
    }

    #[test]
    fn reach_bounds_cover_the_growth_region() {
        let points = dense_grid_points(8, 1.0);
        let mg = MegacellGrid::build(&points, 32 * 32 * 32).unwrap();
        let q = Vec3::new(3.5, 3.5, 3.5);
        let radius = 3.0;
        let reach = mg.reach_bounds(q, radius);
        // The megacell the growth actually produced fits inside the reach.
        let mc = mg.megacell_for(q, radius, 64);
        assert!(reach.longest_extent() >= mc.width - 1e-5);
        assert!(reach.contains_point(q));
        // A larger radius can only widen the reach.
        let wider = mg.reach_bounds(q, 2.0 * radius);
        assert!(wider.contains_aabb(&reach));
    }

    #[test]
    fn queries_outside_the_grid_fall_back_to_the_capped_path() {
        // The downstream width rules assume the query lies inside its central
        // cell; a query outside the grid must be reported capped so the
        // partitioner gives it the full-width `2r` AABB (anything narrower is
        // unsound — the K nearest points can be farther than the megacell
        // bound accounts for).
        let points = dense_grid_points(4, 1.0);
        let mg = MegacellGrid::build(&points, 4096).unwrap();
        for q in [
            Vec3::new(-100.0, -100.0, -100.0),
            Vec3::new(1.5, 1.5, 3.5), // just beyond the max face on one axis
            Vec3::new(-0.1, 1.5, 1.5),
        ] {
            let r = mg.megacell_for(q, 2.0, 4);
            assert!(r.capped, "out-of-grid query {q:?} must be capped");
            assert_eq!(r.found, 0);
            assert!(r.cells_scanned > 0);
        }
        // Queries inside the grid (including on the boundary faces) keep the
        // normal growth path.
        for q in [
            Vec3::new(1.5, 1.5, 1.5),
            Vec3::new(0.0, 0.0, 0.0),
            Vec3::new(3.0, 3.0, 3.0),
        ] {
            let r = mg.megacell_for(q, 2.0, 4);
            assert!(!r.capped, "in-grid query {q:?} must not be capped");
            assert!(r.found >= 4);
        }
    }
}
