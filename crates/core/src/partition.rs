//! Query partitioning (Section 5.1, Listing 3).
//!
//! Queries whose megacells have the same size share a partition; each
//! partition gets its own BVH whose per-point AABB width is the smallest
//! width that still guarantees correct results for that partition. Dense
//! regions get small AABBs (few traversals / IS calls), sparse regions fall
//! back to the full `2r` width.
//!
//! ### AABB width rules
//!
//! *Range search*: the paper sets the AABB width to the megacell width and
//! drops the sphere test. We use the slightly more conservative
//! `2·(steps+1)·cell` (the query sits somewhere inside its central cell, so
//! this width guarantees every megacell point is recovered), and the sphere
//! test is dropped only when that width fits inside the search sphere
//! (width ≤ 2r/√3) — the same condition Appendix A uses to pick between its
//! two IS-shader costs.
//!
//! *KNN search*: the width must cover the distance to the K-th nearest
//! neighbor. Three rules are provided (see [`KnnAabbRule`]): the paper's
//! equi-volume heuristic, the paper's conservative circumsphere bound
//! (`√3·a`), and a guaranteed-exact bound (`2√3·(steps+1)·cell`, the L2
//! diameter argument). The engine defaults to the guaranteed rule so the
//! library's results always match the brute-force oracle; the benches also
//! exercise the paper's heuristic.

use crate::megacell::{MegacellGrid, MegacellResult};
use crate::result::{SearchMode, SearchParams};
use rtnn_gpusim::kernel::{cell_offset_address, run_sm_kernel, SmKernelConfig, ThreadWork};
use rtnn_gpusim::{Device, KernelMetrics};
use rtnn_math::{Aabb, Vec3};

/// How the KNN AABB width is derived from the megacell width (Figure 10c).
#[derive(Debug, Clone, Copy, PartialEq, Eq, Default)]
pub enum KnnAabbRule {
    /// The paper's equi-volume heuristic: `w = 2·(3/(4π))^(1/3)·a`. Fastest,
    /// not guaranteed exact (Section 5.1 notes it was "sufficient from the
    /// datasets we evaluate").
    EquiVolume,
    /// The paper's conservative bound: the AABB circumscribes the sphere
    /// that circumscribes the megacell, `w = √3·a`.
    CircumSphere,
    /// Exact bound: every point within the distance of the K-th megacell
    /// point is guaranteed to be inside the AABB (`w = 2√3·(steps+1)·cell`).
    /// The library default.
    #[default]
    Guaranteed,
}

/// One query partition.
#[derive(Debug, Clone)]
pub struct Partition {
    /// Per-point AABB width used to build this partition's BVH.
    pub aabb_width: f32,
    /// The queries (ids into the original query array) in this partition, in
    /// scheduled order.
    pub query_ids: Vec<u32>,
    /// Representative megacell width (used by the bundling cost model).
    pub megacell_width: f32,
    /// Whether the IS shader must run the sphere test for this partition.
    pub sphere_test: bool,
    /// Estimated local point density `K / megacell_width³` (Equation 4).
    pub density: f64,
}

impl Partition {
    /// Number of queries in the partition.
    pub fn len(&self) -> usize {
        self.query_ids.len()
    }

    /// True if the partition holds no queries.
    pub fn is_empty(&self) -> bool {
        self.query_ids.is_empty()
    }
}

/// The full partitioning of a query set.
#[derive(Debug, Clone)]
pub struct PartitionSet {
    /// Partitions sorted by ascending AABB width.
    pub partitions: Vec<Partition>,
    /// Simulated cost of the megacell kernel (part of `Opt` in Figure 12).
    pub opt_metrics: KernelMetrics,
    /// Grid cell size used for the megacells.
    pub cell_size: f32,
}

impl PartitionSet {
    /// Total number of queries across all partitions.
    pub fn total_queries(&self) -> usize {
        self.partitions.iter().map(Partition::len).sum()
    }

    /// A single partition covering every query with the full `2r` AABB — the
    /// no-partitioning fallback.
    pub fn single(query_order: &[u32], params: &SearchParams) -> Self {
        PartitionSet {
            partitions: vec![Partition {
                aabb_width: 2.0 * params.radius,
                query_ids: query_order.to_vec(),
                megacell_width: 2.0 * params.radius,
                sphere_test: true,
                density: 0.0,
            }],
            opt_metrics: KernelMetrics::default(),
            cell_size: 2.0 * params.radius,
        }
    }
}

/// Compute the AABB width and sphere-test flag for one megacell result.
fn aabb_width_for(
    mc: &MegacellResult,
    cell: f32,
    params: &SearchParams,
    rule: KnnAabbRule,
) -> (f32, bool) {
    let full = 2.0 * params.radius;
    if mc.capped {
        // Sparse region: fall back to the full AABB; the sphere test is
        // required because the AABB circumscribes (not inscribes) the sphere.
        return (full, true);
    }
    let inscribed = 2.0 * params.radius / 3.0_f32.sqrt();
    match params.mode {
        SearchMode::Range => {
            let w = (2.0 * (mc.steps + 1) as f32 * cell).min(full);
            // Drop the sphere test only when the AABB is inside the sphere.
            (w, w > inscribed)
        }
        SearchMode::Knn => {
            let a = mc.width;
            let w = match rule {
                KnnAabbRule::EquiVolume => {
                    2.0 * (3.0 / (4.0 * std::f32::consts::PI)).powf(1.0 / 3.0) * a
                }
                KnnAabbRule::CircumSphere => 3.0_f32.sqrt() * a,
                KnnAabbRule::Guaranteed => 2.0 * 3.0_f32.sqrt() * (mc.steps + 1) as f32 * cell,
            };
            // KNN always needs distances, so the sphere test is never elided.
            (w.min(full), true)
        }
    }
}

/// Partition `queries` (processed in `query_order`) according to their
/// megacell sizes. `grid_max_cells` bounds the uniform grid resolution.
///
/// The megacell growth for every query is charged to the simulated device as
/// an SM kernel (the paper implements it in CUDA); its metrics are returned
/// in [`PartitionSet::opt_metrics`].
pub fn partition_queries(
    device: &Device,
    points: &[Vec3],
    queries: &[Vec3],
    query_order: &[u32],
    params: &SearchParams,
    rule: KnnAabbRule,
    grid_max_cells: usize,
) -> PartitionSet {
    let Some(grid) = MegacellGrid::build(points, grid_max_cells) else {
        return PartitionSet::single(query_order, params);
    };
    partition_queries_on_grid(device, &grid, queries, query_order, params, rule)
}

/// [`partition_queries`] over a *prebuilt* grid — the persistent-index path:
/// an [`crate::Index`] builds its megacell grid once and partitions every
/// plan's queries against it, instead of re-growing a grid per search.
pub fn partition_queries_on_grid(
    device: &Device,
    grid: &MegacellGrid,
    queries: &[Vec3],
    query_order: &[u32],
    params: &SearchParams,
    rule: KnnAabbRule,
) -> PartitionSet {
    // Megacell kernel: one thread per query. The host-side growth result is
    // returned as the thread's result; its work is charged to the device.
    let (megacells, opt_metrics) = run_sm_kernel(
        device,
        query_order.len(),
        SmKernelConfig::default(),
        |launch_idx| {
            let q = queries[query_order[launch_idx] as usize];
            let (mc, work) = grow_megacell(grid, q, params);
            (Wrapped(mc), work)
        },
    );

    group_into_partitions(&megacells, query_order, grid, params, rule, opt_metrics)
}

/// Grow one query's megacell and account its device-side work: the
/// cell-count records the growth examined (the address list is capped to
/// keep it bounded; the op count carries the full cost).
fn grow_megacell(
    grid: &MegacellGrid,
    q: Vec3,
    params: &SearchParams,
) -> (MegacellResult, ThreadWork) {
    let mc = grid.megacell_for(q, params.radius, params.k);
    let centre_cell = grid.grid().cell_index(grid.grid().cell_of(q));
    let touched = (mc.cells_scanned as usize).min(32);
    let addresses = (0..touched)
        .map(|i| cell_offset_address(centre_cell + i))
        .collect();
    let work = ThreadWork::new(mc.cells_scanned as u64, addresses);
    (mc, work)
}

/// Group per-query megacell results (aligned with `query_order`) into
/// partitions by `(steps, capped)` — identical keys produce identical AABB
/// widths — and derive each partition's width, sphere-test flag and density.
fn group_into_partitions(
    megacells: &[Wrapped],
    query_order: &[u32],
    grid: &MegacellGrid,
    params: &SearchParams,
    rule: KnnAabbRule,
    opt_metrics: KernelMetrics,
) -> PartitionSet {
    let cell = grid.cell_size();
    use std::collections::BTreeMap;
    let mut groups: BTreeMap<(u32, bool), Vec<u32>> = BTreeMap::new();
    for (launch_idx, wrapped) in megacells.iter().enumerate() {
        let mc = wrapped.0;
        groups
            .entry((mc.steps, mc.capped))
            .or_default()
            .push(query_order[launch_idx]);
    }

    let mut partitions: Vec<Partition> = groups
        .into_iter()
        .map(|((steps, capped), query_ids)| {
            let mc = MegacellResult {
                steps,
                width: (2 * steps + 1) as f32 * cell,
                found: params.k as u32,
                capped,
                cells_scanned: 0,
            };
            let (aabb_width, sphere_test) = aabb_width_for(&mc, cell, params, rule);
            let megacell_width = if capped {
                2.0 * params.radius
            } else {
                mc.width
            };
            Partition {
                aabb_width,
                query_ids,
                megacell_width,
                sphere_test,
                density: params.k as f64 / (megacell_width as f64).powi(3).max(f64::MIN_POSITIVE),
            }
        })
        .collect();
    partitions.sort_by(|a, b| a.aabb_width.partial_cmp(&b.aabb_width).unwrap());

    PartitionSet {
        partitions,
        opt_metrics,
        cell_size: cell,
    }
}

/// Per-query megacell results cached across frames of a streaming scene,
/// indexed by query id.
///
/// A megacell result depends only on the query's central grid cell, the
/// per-cell point counts inside its reachable box, and the search
/// parameters — so a cached entry stays valid as long as (a) the query is
/// still inside the grid and in the same cell and (b) no cell inside its
/// reachable region changed population. [`partition_queries_cached`]
/// enforces exactly that, recomputing only the invalidated queries instead
/// of re-growing every megacell wholesale. The query *positions* may change
/// freely between frames (the central-cell check catches them), and a
/// lookup under different search parameters drops the entries wholesale
/// (megacell growth depends on `(radius, k)`); the *grid identity* must
/// stay fixed for the cache's lifetime — invalidate on a grid rebuild.
#[derive(Debug, Clone, Default)]
pub struct MegacellCache {
    /// Per query id: the central cell the entry was computed for + result.
    entries: Vec<Option<(u32, MegacellResult)>>,
    /// The search parameters the entries were computed for (megacell growth
    /// depends on `(radius, k)`): a lookup under different parameters must
    /// not trust them.
    params_key: Option<(u32, usize, SearchMode)>,
}

impl MegacellCache {
    /// An empty (all-invalid) cache for `num_queries` queries.
    pub fn new(num_queries: usize) -> Self {
        MegacellCache {
            entries: vec![None; num_queries],
            params_key: None,
        }
    }

    /// Drop every entry, resizing to `num_queries` (used after a grid
    /// rebuild or when the query set changes).
    pub fn invalidate_all(&mut self, num_queries: usize) {
        self.entries.clear();
        self.entries.resize(num_queries, None);
        self.params_key = None;
    }

    /// Make the cache safe for a lookup under `params` over `num_queries`
    /// queries: entries computed for different search parameters (or a
    /// different query count) are dropped wholesale. Called by
    /// [`partition_queries_cached`], so a persistent cache may be handed
    /// plans with changing radii/K and stays conservative-correct.
    fn ensure_params(&mut self, params: &SearchParams, num_queries: usize) {
        let key = (params.radius.to_bits(), params.k, params.mode);
        if self.entries.len() != num_queries || self.params_key != Some(key) {
            self.invalidate_all(num_queries);
            self.params_key = Some(key);
        }
    }

    /// Number of currently valid entries.
    pub fn valid_entries(&self) -> usize {
        self.entries.iter().filter(|e| e.is_some()).count()
    }
}

/// Result of one cached-megacell kernel thread.
#[derive(Debug, Clone, Copy, Default)]
struct CachedOutcome {
    mc: Wrapped,
    /// True when the megacell was grown this frame (cache miss).
    recomputed: bool,
    /// True when the query was inside the grid (its entry may be stored).
    in_grid: bool,
}

/// [`partition_queries`] over a *prebuilt* grid with a per-query megacell
/// cache: queries whose cached result provably still holds pay only a probe
/// (one op), everything else is re-grown. `dirty_region` must bound every
/// grid cell whose population changed since the cache entries were written
/// (see [`crate::megacell::GridRefresh`]); pass [`Aabb::EMPTY`] when nothing
/// moved between cells. The cache is updated in place so it is ready for the
/// next frame.
#[allow(clippy::too_many_arguments)]
pub fn partition_queries_cached(
    device: &Device,
    queries: &[Vec3],
    query_order: &[u32],
    params: &SearchParams,
    rule: KnnAabbRule,
    grid: &MegacellGrid,
    dirty_region: &Aabb,
    cache: &mut MegacellCache,
) -> PartitionSet {
    cache.ensure_params(params, queries.len());
    let entries = &cache.entries;
    let (outcomes, opt_metrics) = run_sm_kernel(
        device,
        query_order.len(),
        SmKernelConfig::default(),
        |launch_idx| {
            let qid = query_order[launch_idx] as usize;
            let q = queries[qid];
            let in_grid = grid.grid().bounds().contains_point(q);
            if in_grid {
                if let Some((cell, cached)) = entries[qid] {
                    let same_cell = cell as usize == grid.cell_index_of(q);
                    if same_cell && !grid.reach_bounds(q, params.radius).overlaps(dirty_region) {
                        // Cache hit: one probe of the per-query state.
                        let work = ThreadWork::new(1, vec![cell_offset_address(cell as usize)]);
                        return (
                            CachedOutcome {
                                mc: Wrapped(cached),
                                recomputed: false,
                                in_grid,
                            },
                            work,
                        );
                    }
                }
            }
            let (mc, work) = grow_megacell(grid, q, params);
            (
                CachedOutcome {
                    mc: Wrapped(mc),
                    recomputed: true,
                    in_grid,
                },
                work,
            )
        },
    );

    // Fold the frame's outcomes back into the cache: recomputed in-grid
    // queries overwrite their entry; out-of-grid queries lose theirs (their
    // old in-grid entry stops being refreshed, so it must not survive).
    for (launch_idx, outcome) in outcomes.iter().enumerate() {
        let qid = query_order[launch_idx] as usize;
        if !outcome.in_grid {
            cache.entries[qid] = None;
        } else if outcome.recomputed {
            let cell = grid.cell_index_of(queries[qid]) as u32;
            cache.entries[qid] = Some((cell, outcome.mc.0));
        }
    }

    let megacells: Vec<Wrapped> = outcomes.iter().map(|o| o.mc).collect();
    group_into_partitions(&megacells, query_order, grid, params, rule, opt_metrics)
}

/// Newtype so the megacell result can flow through `run_sm_kernel`'s
/// `Default + Clone` result channel.
#[derive(Debug, Clone, Copy)]
struct Wrapped(MegacellResult);

impl Default for Wrapped {
    fn default() -> Self {
        Wrapped(MegacellResult {
            steps: 0,
            width: 0.0,
            found: 0,
            capped: true,
            cells_scanned: 0,
        })
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn grid_points(n_per_axis: usize) -> Vec<Vec3> {
        let mut pts = Vec::new();
        for x in 0..n_per_axis {
            for y in 0..n_per_axis {
                for z in 0..n_per_axis {
                    pts.push(Vec3::new(x as f32, y as f32, z as f32));
                }
            }
        }
        pts
    }

    fn identity_order(n: usize) -> Vec<u32> {
        (0..n as u32).collect()
    }

    #[test]
    fn every_query_lands_in_exactly_one_partition() {
        let device = Device::rtx_2080();
        let points = grid_points(10);
        let queries = points.clone();
        let params = SearchParams::knn(3.0, 8);
        let set = partition_queries(
            &device,
            &points,
            &queries,
            &identity_order(queries.len()),
            &params,
            KnnAabbRule::Guaranteed,
            1 << 18,
        );
        assert_eq!(set.total_queries(), queries.len());
        let mut seen = vec![false; queries.len()];
        for p in &set.partitions {
            for &q in &p.query_ids {
                assert!(!seen[q as usize], "query {q} appears twice");
                seen[q as usize] = true;
            }
            assert!(!p.is_empty());
            assert!(p.aabb_width > 0.0);
            assert!(p.aabb_width <= 2.0 * params.radius + 1e-5);
        }
        assert!(seen.iter().all(|&s| s));
        assert!(set.opt_metrics.time_ms > 0.0);
    }

    #[test]
    fn partitions_are_sorted_by_aabb_width() {
        let device = Device::rtx_2080();
        // Mixed density: dense blob + sparse outskirts produce several
        // different megacell sizes.
        let mut points = grid_points(8);
        for i in 0..60 {
            points.push(Vec3::new(
                30.0 + (i % 4) as f32 * 3.0,
                (i / 4) as f32 * 3.0,
                0.0,
            ));
        }
        let queries = points.clone();
        let params = SearchParams::knn(6.0, 16);
        let set = partition_queries(
            &device,
            &points,
            &queries,
            &identity_order(queries.len()),
            &params,
            KnnAabbRule::Guaranteed,
            1 << 18,
        );
        assert!(set.partitions.len() >= 2, "expected multiple partitions");
        for w in set.partitions.windows(2) {
            assert!(w[0].aabb_width <= w[1].aabb_width);
        }
    }

    #[test]
    fn range_partitions_skip_the_sphere_test_only_when_safe() {
        let device = Device::rtx_2080();
        let points = grid_points(10);
        let queries = points.clone();
        let params = SearchParams::range(4.0, 4);
        let set = partition_queries(
            &device,
            &points,
            &queries,
            &identity_order(queries.len()),
            &params,
            KnnAabbRule::Guaranteed,
            1 << 18,
        );
        let inscribed = 2.0 * params.radius / 3.0_f32.sqrt();
        for p in &set.partitions {
            if !p.sphere_test {
                assert!(p.aabb_width <= inscribed + 1e-5);
            }
        }
        // With a dense uniform cloud and small K, at least one partition
        // should manage to skip the sphere test.
        assert!(set.partitions.iter().any(|p| !p.sphere_test));
    }

    #[test]
    fn knn_rules_order_by_conservativeness() {
        let mc = MegacellResult {
            steps: 2,
            width: 5.0,
            found: 16,
            capped: false,
            cells_scanned: 0,
        };
        let cell = 1.0;
        let params = SearchParams::knn(100.0, 16);
        let (equi, _) = aabb_width_for(&mc, cell, &params, KnnAabbRule::EquiVolume);
        let (circ, _) = aabb_width_for(&mc, cell, &params, KnnAabbRule::CircumSphere);
        let (guar, _) = aabb_width_for(&mc, cell, &params, KnnAabbRule::Guaranteed);
        assert!(
            equi < circ,
            "equi-volume {equi} should be below circumsphere {circ}"
        );
        assert!(
            circ < guar,
            "circumsphere {circ} should be below guaranteed {guar}"
        );
        // Equi-volume matches the paper's formula 2·(3/4π)^(1/3)·a ≈ 1.24·a.
        assert!((equi / mc.width - 1.24).abs() < 0.01);
        // Circumsphere is √3·a.
        assert!((circ / mc.width - 1.732).abs() < 0.01);
    }

    #[test]
    fn capped_queries_fall_back_to_the_full_width() {
        let mc = MegacellResult {
            steps: 3,
            width: 7.0,
            found: 1,
            capped: true,
            cells_scanned: 0,
        };
        let params = SearchParams::range(2.0, 64);
        let (w, sphere) = aabb_width_for(&mc, 1.0, &params, KnnAabbRule::Guaranteed);
        assert_eq!(w, 4.0);
        assert!(sphere);
    }

    #[test]
    fn empty_points_yield_the_single_fallback_partition() {
        let device = Device::rtx_2080();
        let queries = vec![Vec3::ZERO, Vec3::ONE];
        let params = SearchParams::range(1.0, 4);
        let set = partition_queries(
            &device,
            &[],
            &queries,
            &identity_order(2),
            &params,
            KnnAabbRule::Guaranteed,
            4096,
        );
        assert_eq!(set.partitions.len(), 1);
        assert_eq!(set.partitions[0].aabb_width, 2.0);
        assert_eq!(set.total_queries(), 2);
    }

    #[test]
    fn cached_partitioning_matches_uncached_and_gets_cheaper() {
        let device = Device::rtx_2080();
        let points = grid_points(9);
        let queries = points.clone();
        let order = identity_order(queries.len());
        let params = SearchParams::knn(3.0, 8);
        let uncached = partition_queries(
            &device,
            &points,
            &queries,
            &order,
            &params,
            KnnAabbRule::Guaranteed,
            1 << 18,
        );
        let grid = MegacellGrid::build(&points, 1 << 18).unwrap();
        let mut cache = MegacellCache::new(queries.len());
        // Frame 1: cold cache — identical partitions, comparable cost.
        let frame1 = partition_queries_cached(
            &device,
            &queries,
            &order,
            &params,
            KnnAabbRule::Guaranteed,
            &grid,
            &Aabb::EMPTY,
            &mut cache,
        );
        assert_eq!(frame1.partitions.len(), uncached.partitions.len());
        for (a, b) in frame1.partitions.iter().zip(&uncached.partitions) {
            assert_eq!(a.aabb_width, b.aabb_width);
            assert_eq!(a.query_ids, b.query_ids);
            assert_eq!(a.sphere_test, b.sphere_test);
        }
        assert_eq!(cache.valid_entries(), queries.len());
        // Frame 2: nothing moved — all hits, same partitions, cheaper kernel.
        let frame2 = partition_queries_cached(
            &device,
            &queries,
            &order,
            &params,
            KnnAabbRule::Guaranteed,
            &grid,
            &Aabb::EMPTY,
            &mut cache,
        );
        assert_eq!(frame2.partitions.len(), frame1.partitions.len());
        for (a, b) in frame2.partitions.iter().zip(&frame1.partitions) {
            assert_eq!(a.aabb_width, b.aabb_width);
            assert_eq!(a.query_ids, b.query_ids);
        }
        assert!(
            frame2.opt_metrics.total_cycles < frame1.opt_metrics.total_cycles,
            "warm frame {} should be cheaper than cold frame {}",
            frame2.opt_metrics.total_cycles,
            frame1.opt_metrics.total_cycles
        );
    }

    #[test]
    fn cached_partitioning_invalidates_only_the_dirty_region() {
        let device = Device::rtx_2080();
        let points = grid_points(9);
        let queries = points.clone();
        let order = identity_order(queries.len());
        let params = SearchParams::knn(1.5, 4);
        let grid = MegacellGrid::build(&points, 1 << 18).unwrap();
        let mut cache = MegacellCache::new(queries.len());
        partition_queries_cached(
            &device,
            &queries,
            &order,
            &params,
            KnnAabbRule::Guaranteed,
            &grid,
            &Aabb::EMPTY,
            &mut cache,
        );
        // A dirty corner: only queries whose reach touches it recompute; the
        // result must equal a fully uncached recomputation regardless.
        let dirty = Aabb::new(Vec3::ZERO, Vec3::splat(2.0));
        let warm = partition_queries_cached(
            &device,
            &queries,
            &order,
            &params,
            KnnAabbRule::Guaranteed,
            &grid,
            &dirty,
            &mut cache,
        );
        let mut cold_cache = MegacellCache::new(queries.len());
        let cold = partition_queries_cached(
            &device,
            &queries,
            &order,
            &params,
            KnnAabbRule::Guaranteed,
            &grid,
            &Aabb::EMPTY,
            &mut cold_cache,
        );
        assert_eq!(warm.partitions.len(), cold.partitions.len());
        for (a, b) in warm.partitions.iter().zip(&cold.partitions) {
            assert_eq!(a.query_ids, b.query_ids);
            assert_eq!(a.aabb_width, b.aabb_width);
        }
        assert!(warm.opt_metrics.total_cycles < cold.opt_metrics.total_cycles);
    }

    #[test]
    fn cache_entries_are_dropped_when_the_params_change() {
        // Megacell growth depends on (radius, k): entries grown for a small
        // k must never be trusted by a lookup with a larger one (the box
        // would be too small and miss neighbors). The cache invalidates
        // itself wholesale on a params change.
        let device = Device::rtx_2080();
        let points = grid_points(9);
        let queries = points.clone();
        let order = identity_order(queries.len());
        let grid = MegacellGrid::build(&points, 1 << 18).unwrap();
        let mut cache = MegacellCache::new(queries.len());
        let small = SearchParams::knn(3.0, 2);
        partition_queries_cached(
            &device,
            &queries,
            &order,
            &small,
            KnnAabbRule::Guaranteed,
            &grid,
            &Aabb::EMPTY,
            &mut cache,
        );
        assert_eq!(cache.valid_entries(), queries.len());
        // Same cache, much larger K: must match a cold computation exactly.
        let large = SearchParams::knn(3.0, 40);
        let warm = partition_queries_cached(
            &device,
            &queries,
            &order,
            &large,
            KnnAabbRule::Guaranteed,
            &grid,
            &Aabb::EMPTY,
            &mut cache,
        );
        let mut cold_cache = MegacellCache::new(queries.len());
        let cold = partition_queries_cached(
            &device,
            &queries,
            &order,
            &large,
            KnnAabbRule::Guaranteed,
            &grid,
            &Aabb::EMPTY,
            &mut cold_cache,
        );
        assert_eq!(warm.partitions.len(), cold.partitions.len());
        for (a, b) in warm.partitions.iter().zip(&cold.partitions) {
            assert_eq!(a.aabb_width, b.aabb_width);
            assert_eq!(a.query_ids, b.query_ids);
        }
        // And a repeat under the same params is a pure cache hit again.
        let repeat = partition_queries_cached(
            &device,
            &queries,
            &order,
            &large,
            KnnAabbRule::Guaranteed,
            &grid,
            &Aabb::EMPTY,
            &mut cache,
        );
        assert!(repeat.opt_metrics.total_cycles < warm.opt_metrics.total_cycles);
    }

    #[test]
    fn out_of_grid_queries_are_never_cached() {
        let device = Device::rtx_2080();
        let points = grid_points(4);
        let queries = vec![Vec3::new(-50.0, 0.0, 0.0), Vec3::new(1.5, 1.5, 1.5)];
        let order = identity_order(queries.len());
        let params = SearchParams::range(2.0, 8);
        let grid = MegacellGrid::build(&points, 4096).unwrap();
        let mut cache = MegacellCache::new(queries.len());
        partition_queries_cached(
            &device,
            &queries,
            &order,
            &params,
            KnnAabbRule::Guaranteed,
            &grid,
            &Aabb::EMPTY,
            &mut cache,
        );
        // Only the in-grid query earned an entry.
        assert_eq!(cache.valid_entries(), 1);
    }

    #[test]
    fn denser_clouds_produce_smaller_minimum_aabbs() {
        let device = Device::rtx_2080();
        let sparse = grid_points(6); // spacing 1.0
        let dense: Vec<Vec3> = grid_points(6).iter().map(|&p| p * 0.25).collect();
        let params = SearchParams::knn(2.0, 4);
        let run = |pts: &Vec<Vec3>| {
            partition_queries(
                &device,
                pts,
                pts,
                &identity_order(pts.len()),
                &params,
                KnnAabbRule::Guaranteed,
                1 << 18,
            )
        };
        let sparse_set = run(&sparse);
        let dense_set = run(&dense);
        let min_w = |s: &PartitionSet| {
            s.partitions
                .iter()
                .map(|p| p.aabb_width)
                .fold(f32::INFINITY, f32::min)
        };
        assert!(min_w(&dense_set) <= min_w(&sparse_set));
    }
}
