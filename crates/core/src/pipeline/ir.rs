//! The small intermediate representations the pipeline stages hand to each
//! other: `Partition` produces a [`PartitionedQueries`], `Schedule` a
//! [`QuerySchedule`] (re-exported from [`crate::scheduling`]), `Launch` a
//! [`LaunchSet`], and `Gather` fills a [`GatheredHits`].

use crate::partition::Partition;
use rtnn_gpusim::KernelMetrics;
use rtnn_optix::LaunchMetrics;

pub use crate::scheduling::QuerySchedule;

/// The outcome of the `Partition` stage: the query set split into
/// partitions (already bundled when bundling is enabled), plus the
/// pre-bundling partition count and the simulated cost of the megacell
/// kernel that derived them.
#[derive(Debug, Clone)]
pub struct PartitionedQueries {
    /// The partitions the `Launch` stage traverses, in ascending AABB-width
    /// order (one full-width partition when partitioning is disabled).
    pub partitions: Vec<Partition>,
    /// Partition count *before* bundling (what `SearchResults::num_partitions`
    /// reports).
    pub num_partitions: usize,
    /// Partition count after bundling (`partitions.len()`).
    pub num_bundles: usize,
    /// Simulated cost of the megacell kernel (part of the `Opt` breakdown
    /// component; zero when partitioning is disabled).
    pub opt_metrics: KernelMetrics,
}

/// The payloads of one partition's search launch, aligned with the
/// partition's `query_ids`.
#[derive(Debug, Clone)]
pub struct LaunchRecord {
    /// Index of the partition (into [`PartitionedQueries::partitions`])
    /// this launch served.
    pub partition: usize,
    /// Per-launch-index neighbor lists (`payloads[i]` answers
    /// `partitions[partition].query_ids[i]`).
    pub payloads: Vec<Vec<u32>>,
    /// Simulated metrics of this launch.
    pub metrics: LaunchMetrics,
}

/// The outcome of the `Launch` stage: one record per non-empty partition.
#[derive(Debug, Clone, Default)]
pub struct LaunchSet {
    /// The launches, in partition order.
    pub launches: Vec<LaunchRecord>,
}

/// The final IR: per-query neighbor lists in original query order, filled
/// by the `Gather` stage (queries no launch covered keep their empty list).
#[derive(Debug, Clone, Default)]
pub struct GatheredHits {
    /// `neighbors[qid]` is query `qid`'s neighbor list.
    pub neighbors: Vec<Vec<u32>>,
}

impl GatheredHits {
    /// Empty lists for `num_queries` queries.
    pub fn empty(num_queries: usize) -> Self {
        GatheredHits {
            neighbors: vec![Vec::new(); num_queries],
        }
    }
}
