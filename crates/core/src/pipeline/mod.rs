//! The staged execution pipeline: `Partition` → `Schedule` → `Launch` →
//! `Gather` as explicit, individually swappable and metered stages.
//!
//! Historically the three techniques the paper composes — coherence-driven
//! query reordering (Section 4), megacell partitioning (Section 5.1) and
//! cost-model bundling (Section 5.2) — were interleaved inline inside
//! `Index::query`. This module lifts them into one reusable core:
//!
//! ```text
//!            ┌───────────┐   ┌───────────┐   ┌──────────┐   ┌──────────┐
//!  queries ─▶│ Schedule  │──▶│ Partition │──▶│  Launch  │──▶│  Gather  │─▶ results
//!            │ (FS pass +│   │ (megacell │   │ (per-    │   │ (scatter │
//!            │  Morton   │   │  kernel + │   │ partition│   │  payloads│
//!            │  sort)    │   │  bundling)│   │  BVH +   │   │  by query│
//!            └───────────┘   └───────────┘   │ traverse)│   │  id)     │
//!                IR: QuerySchedule   │       └──────────┘   └──────────┘
//!                          IR: PartitionedQueries   IR: LaunchSet   IR: GatheredHits
//! ```
//!
//! Note the *driver order*: the coherence schedule runs before the
//! partition kernel, exactly as in the paper's implementation — the
//! megacell kernel is launched over the *scheduled* query order, so its
//! warp-level simulated cost (and the within-partition launch order) are
//! identical to the historical monolith. The stage list is still the
//! paper's component order `Partition → Schedule → Launch → Gather` when
//! read as "what exists": partitions are a property of the query set, the
//! schedule a property of the launch.
//!
//! Every caller executes through this one entry point:
//!
//! * [`Index::query`](crate::Index::query) (and the heterogeneous batch
//!   path, which runs one shared `Schedule` pass and then the per-slice
//!   stages);
//! * the deprecated legacy [`Rtnn`](crate::Rtnn) shims;
//! * `rtnn-dynamic`'s `DynamicIndex` frames (through `Index::adopt`);
//! * `rtnn-serve`'s `ShardedIndex` (the pipeline per shard, then the shared
//!   [`ShardMerge`](crate::ShardMerge) gather).
//!
//! ## Swapping stages
//!
//! Each stage sits behind a small trait ([`ScheduleStage`],
//! [`PartitionStage`], [`LaunchStage`], [`GatherStage`]); a
//! [`StageOverrides`] passed to
//! [`Index::query_with`](crate::Index::query_with) replaces any of them for
//! one call. This subsumes the [`OptLevel`] plumbing — the
//! levels are just preset stage selections:
//!
//! | `OptLevel` | Schedule | Partition |
//! |---|---|---|
//! | `NoOpt` | [`IdentitySchedule`] | [`SinglePartition`] |
//! | `Sched` | [`CoherenceSchedule`] | [`SinglePartition`] |
//! | `SchedPartition` | [`CoherenceSchedule`] | [`MegacellPartition`]`{bundle: false}` |
//! | `Full` | [`CoherenceSchedule`] | [`MegacellPartition`]`{bundle: true}` |
//!
//! so an ablation can toggle exactly one stage
//! ([`StageOverrides::without_reordering`],
//! [`StageOverrides::without_partitioning`]) without touching the others.
//!
//! ## Metering
//!
//! The driver wraps every stage call in a [`StageTiming`] meter; the
//! roll-up ([`PipelineTrace`], carried on every [`SearchResults`] as its
//! `trace` field) accounts every simulated millisecond outside host↔device
//! transfers to exactly one stage — see [`timing`] for the invariant the
//! tests pin.

pub mod ir;
pub mod stages;
pub mod timing;

pub use ir::{GatheredHits, LaunchRecord, LaunchSet, PartitionedQueries, QuerySchedule};
pub use stages::{
    CoherenceSchedule, GatherStage, IdentitySchedule, LaunchCx, LaunchStage, MegacellPartition,
    PartitionCx, PartitionStage, ScatterGather, ScheduleCx, ScheduleStage, SearchLaunch,
    SinglePartition,
};
pub use timing::{PipelineTrace, StageKind, StageTiming};

use crate::backend::Backend;
use crate::engine::{OptLevel, SearchError};
use crate::index::{AccelStore, EngineConfig, SceneRefs};
use crate::megacell::MegacellGrid;
use crate::partition::MegacellCache;
use crate::result::{SearchParams, SearchResults, TimeBreakdown};
use rtnn_gpusim::kernel::point_cloud_bytes;
use rtnn_math::{Aabb, Vec3};
use rtnn_optix::LaunchMetrics;
use rtnn_telemetry::Telemetry;
use std::time::Instant;

static COHERENCE_SCHEDULE: CoherenceSchedule = CoherenceSchedule;
static IDENTITY_SCHEDULE: IdentitySchedule = IdentitySchedule;
static MEGACELL_BUNDLED: MegacellPartition = MegacellPartition { bundle: true };
static MEGACELL_UNBUNDLED: MegacellPartition = MegacellPartition { bundle: false };
static SINGLE_PARTITION: SinglePartition = SinglePartition;
static SEARCH_LAUNCH: SearchLaunch = SearchLaunch;
static SCATTER_GATHER: ScatterGather = ScatterGather;

/// Per-call stage replacements for one pipeline execution (see the module
/// docs). `None` slots fall back to the defaults the engine's
/// [`OptLevel`] selects.
#[derive(Debug, Clone, Copy, Default)]
pub struct StageOverrides<'o> {
    /// Replace the `Schedule` stage.
    pub schedule: Option<&'o dyn ScheduleStage>,
    /// Replace the `Partition` stage.
    pub partition: Option<&'o dyn PartitionStage>,
    /// Replace the `Launch` stage.
    pub launch: Option<&'o dyn LaunchStage>,
    /// Replace the `Gather` stage.
    pub gather: Option<&'o dyn GatherStage>,
}

impl std::fmt::Debug for dyn ScheduleStage + '_ {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        f.write_str("ScheduleStage")
    }
}
impl std::fmt::Debug for dyn PartitionStage + '_ {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        f.write_str("PartitionStage")
    }
}
impl std::fmt::Debug for dyn LaunchStage + '_ {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        f.write_str("LaunchStage")
    }
}
impl std::fmt::Debug for dyn GatherStage + '_ {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        f.write_str("GatherStage")
    }
}

impl StageOverrides<'static> {
    /// No overrides: the engine's optimisation level picks every stage.
    pub fn none() -> Self {
        StageOverrides::default()
    }

    /// Disable coherence reordering for this call (an [`IdentitySchedule`]
    /// regardless of the optimisation level), leaving every other stage at
    /// its default.
    pub fn without_reordering() -> Self {
        StageOverrides {
            schedule: Some(&IDENTITY_SCHEDULE),
            ..StageOverrides::default()
        }
    }

    /// Disable megacell partitioning (and with it bundling) for this call
    /// (a [`SinglePartition`] regardless of the optimisation level),
    /// leaving every other stage at its default.
    pub fn without_partitioning() -> Self {
        StageOverrides {
            partition: Some(&SINGLE_PARTITION),
            ..StageOverrides::default()
        }
    }

    /// The fully pinned override set equivalent to a static [`OptLevel`]:
    /// all four slots filled with exactly the stages that level resolves
    /// to, so the call's behaviour no longer depends on the engine's
    /// configured level. This is the [`AutoTuner`](crate::AutoTuner)'s arm
    /// ladder — results are bit-equal to running an engine configured at
    /// `level`, because the same stage objects execute.
    pub fn for_level(level: OptLevel) -> Self {
        StageOverrides {
            schedule: Some(if level.scheduling() {
                &COHERENCE_SCHEDULE
            } else {
                &IDENTITY_SCHEDULE
            }),
            partition: Some(if level.partitioning() {
                if level.bundling() {
                    &MEGACELL_BUNDLED
                } else {
                    &MEGACELL_UNBUNDLED
                }
            } else {
                &SINGLE_PARTITION
            }),
            launch: Some(&SEARCH_LAUNCH),
            gather: Some(&SCATTER_GATHER),
        }
    }
}

impl StageOverrides<'_> {
    /// True when no slot is overridden (every stage falls back to the
    /// engine's optimisation level) — the condition under which an
    /// auto-tuning index is free to substitute its own decision.
    pub fn is_empty(&self) -> bool {
        self.schedule.is_none()
            && self.partition.is_none()
            && self.launch.is_none()
            && self.gather.is_none()
    }
}

/// The reusable execution core: a backend, an engine configuration and a
/// set of stage selections. Constructed per call (it is two references and
/// four optional references); a plan's parameters are executed through it.
///
/// All public entry points — `Index::query`, the legacy `Rtnn` shims, the
/// dynamic frames, the sharded server — bottom out here.
pub struct ExecutionPipeline<'r> {
    backend: &'r dyn Backend,
    config: &'r EngineConfig,
    overrides: StageOverrides<'r>,
}

impl<'r> ExecutionPipeline<'r> {
    /// A pipeline with the default stages the configuration's optimisation
    /// level selects.
    pub(crate) fn new(backend: &'r dyn Backend, config: &'r EngineConfig) -> Self {
        Self::with_overrides(backend, config, StageOverrides::default())
    }

    /// A pipeline with per-call stage replacements.
    pub(crate) fn with_overrides(
        backend: &'r dyn Backend,
        config: &'r EngineConfig,
        overrides: StageOverrides<'r>,
    ) -> Self {
        ExecutionPipeline {
            backend,
            config,
            overrides,
        }
    }

    /// The `Schedule` stage this execution uses: the override, else the
    /// level's default.
    pub(crate) fn schedule_stage(&self) -> &'r dyn ScheduleStage {
        self.overrides
            .schedule
            .unwrap_or(if self.config.opt.scheduling() {
                &COHERENCE_SCHEDULE
            } else {
                &IDENTITY_SCHEDULE
            })
    }

    /// The `Partition` stage this execution uses: the override, else the
    /// level's default. Exposed so the driver paths can provision the
    /// megacell grid exactly when the resolved stage wants it.
    pub(crate) fn partition_stage(&self) -> &'r dyn PartitionStage {
        self.overrides
            .partition
            .unwrap_or(if self.config.opt.partitioning() {
                if self.config.opt.bundling() {
                    &MEGACELL_BUNDLED
                } else {
                    &MEGACELL_UNBUNDLED
                }
            } else {
                &SINGLE_PARTITION
            })
    }

    fn launch_stage(&self) -> &'r dyn LaunchStage {
        self.overrides.launch.unwrap_or(&SEARCH_LAUNCH)
    }

    fn gather_stage(&self) -> &'r dyn GatherStage {
        self.overrides.gather.unwrap_or(&SCATTER_GATHER)
    }

    /// Execute one single-plan search end to end: driver setup (transfer
    /// accounting, global structure), then `Schedule` →
    /// [`execute_ordered`](Self::execute_ordered). Bit-equal to the
    /// historical monolithic `Index::query` for every optimisation level.
    pub(crate) fn execute(
        &self,
        params: SearchParams,
        points: &[Vec3],
        queries: &[Vec3],
        store: &mut AccelStore<'_>,
        scene: SceneRefs<'_>,
    ) -> Result<SearchResults, SearchError> {
        params.validate()?;
        self.config.validate()?;
        let device = self.backend.device();

        let mut breakdown = TimeBreakdown::default();
        let mut search_metrics = LaunchMetrics::default();
        let mut trace = PipelineTrace::default();

        // Driver setup (not a stage): data transfer — points + queries in,
        // result ids out.
        let footprint = point_cloud_bytes(points.len(), queries.len(), params.k);
        device.check_allocation(footprint)?;
        breakdown.data_ms = device.transfer_h2d_ms((points.len() + queries.len()) as u64 * 12)
            + device.transfer_d2h_ms(queries.len() as u64 * params.k as u64 * 4);

        if queries.is_empty() {
            return Ok(SearchResults {
                neighbors: Vec::new(),
                breakdown,
                search_metrics,
                fs_metrics: LaunchMetrics::default(),
                num_partitions: 0,
                num_bundles: 0,
                trace,
            });
        }
        let mut gathered = GatheredHits::empty(queries.len());
        if points.is_empty() {
            return Ok(SearchResults {
                neighbors: gathered.neighbors,
                breakdown,
                search_metrics,
                fs_metrics: LaunchMetrics::default(),
                num_partitions: 0,
                num_bundles: 0,
                trace,
            });
        }

        let tel = Telemetry::current();

        // Global structure: traversed by the coherence pass and by every
        // full-width partition. Structure availability (builds plus any
        // caller-side maintenance) is billed to the Launch stage.
        let host = Instant::now();
        let mut ensure_span = tel.as_ref().map(|t| t.span("accel.ensure"));
        let full_width = 2.0 * params.radius * self.config.approx.aabb_width_factor();
        let (gid, built_ms) = store.ensure(self.backend, points, full_width, self.config.build)?;
        debug_assert_eq!(store.accel_ref(gid).num_primitives(), points.len());
        breakdown.bvh_ms += built_ms + scene.structure_ms;
        let structure_device_ms = built_ms + scene.structure_ms;
        let structure_host_ms = host_ms_since(host);
        trace.charge(StageKind::Launch, structure_device_ms, structure_host_ms);
        if let Some(span) = ensure_span.as_mut() {
            span.attr("device_ms", structure_device_ms)
                .attr("primitives", points.len() as f64)
                .attr_wall("host_ms", structure_host_ms);
        }
        drop(ensure_span);

        // Schedule stage.
        let host = Instant::now();
        let mut stage_span = tel
            .as_ref()
            .map(|t| t.span(StageKind::Schedule.span_name()));
        let ids: Vec<u32> = (0..queries.len() as u32).collect();
        let schedule = self.schedule_stage().schedule(&ScheduleCx {
            backend: self.backend,
            accel: Some(store.accel_ref(gid)),
            points,
            queries,
            query_ids: &ids,
        });
        if self.overrides.schedule.is_some() {
            assert_schedule_covers(&schedule.order, &ids, queries.len());
        }
        breakdown.fs_ms += schedule.fs_metrics.time_ms();
        breakdown.opt_ms += schedule.sort_metrics.time_ms;
        let schedule_device_ms = schedule.fs_metrics.time_ms() + schedule.sort_metrics.time_ms;
        let schedule_host_ms = host_ms_since(host);
        trace.charge(StageKind::Schedule, schedule_device_ms, schedule_host_ms);
        if let Some(t) = &tel {
            t.observe(StageKind::Schedule.device_histogram(), schedule_device_ms);
        }
        if let Some(span) = stage_span.as_mut() {
            span.attr("device_ms", schedule_device_ms)
                .attr("queries", queries.len() as f64)
                .attr("invocations", 1.0)
                .attr_wall("host_ms", schedule_host_ms);
        }
        drop(stage_span);
        let fs_metrics = schedule.fs_metrics.clone();

        let (num_partitions, num_bundles) = self.execute_ordered(
            params,
            points,
            queries,
            &schedule.order,
            store,
            gid,
            scene.grid,
            &scene.dirty_region,
            scene.cache,
            &mut gathered,
            &mut breakdown,
            &mut search_metrics,
            &mut trace,
        )?;

        Ok(SearchResults {
            neighbors: gathered.neighbors,
            breakdown,
            search_metrics,
            fs_metrics,
            num_partitions,
            num_bundles,
            trace,
        })
    }

    /// Run the `Partition` → `Launch` → `Gather` stages for one already
    /// scheduled query order (one plan, or one slice of a batch that shared
    /// its `Schedule` pass). Returns `(num_partitions, num_bundles)`.
    #[allow(clippy::too_many_arguments)]
    pub(crate) fn execute_ordered(
        &self,
        params: SearchParams,
        points: &[Vec3],
        queries: &[Vec3],
        order: &[u32],
        store: &mut AccelStore<'_>,
        global: usize,
        grid: Option<&MegacellGrid>,
        dirty_region: &Aabb,
        cache: Option<&mut MegacellCache>,
        out: &mut GatheredHits,
        breakdown: &mut TimeBreakdown,
        search_metrics: &mut LaunchMetrics,
        trace: &mut PipelineTrace,
    ) -> Result<(usize, usize), SearchError> {
        let tel = Telemetry::current();

        // Partition stage.
        let host = Instant::now();
        let mut stage_span = tel
            .as_ref()
            .map(|t| t.span(StageKind::Partition.span_name()));
        let parts = self.partition_stage().partition(PartitionCx {
            backend: self.backend,
            config: self.config,
            params,
            points,
            queries,
            order,
            grid,
            dirty_region,
            cache,
        });
        breakdown.opt_ms += parts.opt_metrics.time_ms;
        let partition_device_ms = parts.opt_metrics.time_ms;
        let partition_host_ms = host_ms_since(host);
        trace.charge(StageKind::Partition, partition_device_ms, partition_host_ms);
        if let Some(t) = &tel {
            t.observe(StageKind::Partition.device_histogram(), partition_device_ms);
        }
        if let Some(span) = stage_span.as_mut() {
            span.attr("device_ms", partition_device_ms)
                .attr("partitions", parts.num_partitions as f64)
                .attr("bundles", parts.num_bundles as f64)
                .attr("invocations", 1.0)
                .attr_wall("host_ms", partition_host_ms);
        }
        drop(stage_span);

        // Launch stage.
        let host = Instant::now();
        let mut stage_span = tel.as_ref().map(|t| t.span(StageKind::Launch.span_name()));
        let bvh_before = breakdown.bvh_ms;
        let search_before = breakdown.search_ms;
        let launches = {
            let mut cx = LaunchCx {
                backend: self.backend,
                config: self.config,
                params,
                points,
                queries,
                store,
                global,
                breakdown,
                search_metrics,
            };
            self.launch_stage().launch(&mut cx, &parts)?
        };
        let launch_device_ms =
            (breakdown.bvh_ms - bvh_before) + (breakdown.search_ms - search_before);
        let launch_host_ms = host_ms_since(host);
        trace.charge(StageKind::Launch, launch_device_ms, launch_host_ms);
        if let Some(t) = &tel {
            t.observe(StageKind::Launch.device_histogram(), launch_device_ms);
        }
        if let Some(span) = stage_span.as_mut() {
            span.attr("device_ms", launch_device_ms)
                .attr("invocations", 1.0)
                .attr_wall("host_ms", launch_host_ms);
        }
        drop(stage_span);

        // Gather stage.
        let host = Instant::now();
        let mut stage_span = tel.as_ref().map(|t| t.span(StageKind::Gather.span_name()));
        self.gather_stage().gather(&parts, launches, out);
        let gather_host_ms = host_ms_since(host);
        trace.charge(StageKind::Gather, 0.0, gather_host_ms);
        if let Some(t) = &tel {
            t.observe(StageKind::Gather.device_histogram(), 0.0);
        }
        if let Some(span) = stage_span.as_mut() {
            span.attr("device_ms", 0.0)
                .attr("invocations", 1.0)
                .attr_wall("host_ms", gather_host_ms);
        }
        drop(stage_span);

        Ok((parts.num_partitions, parts.num_bundles))
    }
}

/// Host wall-clock milliseconds since `start` (stage-meter helper).
pub(crate) fn host_ms_since(start: Instant) -> f64 {
    start.elapsed().as_secs_f64() * 1e3
}

/// Enforce the [`ScheduleStage`] output contract for *overriding* stages:
/// the returned order must be a permutation of the launched ids. The
/// provided stages satisfy this by construction; a custom stage that drops,
/// duplicates or invents ids gets a contract-naming panic here instead of
/// an opaque index error (or silently empty results) downstream.
pub(crate) fn assert_schedule_covers(order: &[u32], launched: &[u32], num_queries: usize) {
    assert_eq!(
        order.len(),
        launched.len(),
        "ScheduleStage contract violation: the schedule must order exactly the launched \
         queries (returned {}, launched {})",
        order.len(),
        launched.len()
    );
    let mut expected = vec![false; num_queries];
    for &q in launched {
        expected[q as usize] = true;
    }
    let mut seen = vec![false; num_queries];
    for &q in order {
        assert!(
            (q as usize) < num_queries && expected[q as usize],
            "ScheduleStage contract violation: the schedule order contains query id {q}, \
             which is not in the launched set"
        );
        assert!(
            !seen[q as usize],
            "ScheduleStage contract violation: query id {q} appears twice in the schedule order"
        );
        seen[q as usize] = true;
    }
}

#[cfg(test)]
mod tests {
    use super::assert_schedule_covers;

    #[test]
    fn permutations_of_the_launched_set_pass() {
        assert_schedule_covers(&[2, 0, 1], &[0, 1, 2], 3);
        assert_schedule_covers(&[5, 1], &[1, 5], 8);
        assert_schedule_covers(&[], &[], 0);
    }

    #[test]
    #[should_panic(expected = "ScheduleStage contract violation")]
    fn dropped_ids_are_rejected() {
        assert_schedule_covers(&[0, 1], &[0, 1, 2], 3);
    }

    #[test]
    #[should_panic(expected = "not in the launched set")]
    fn invented_ids_are_rejected() {
        assert_schedule_covers(&[0, 7, 2], &[0, 1, 2], 3);
    }

    #[test]
    #[should_panic(expected = "appears twice")]
    fn duplicated_ids_are_rejected() {
        assert_schedule_covers(&[0, 1, 1], &[0, 1, 2], 3);
    }
}
