//! The swappable pipeline stages: a small trait per stage, the default
//! implementations the optimisation levels map onto, and the contexts the
//! driver hands them.
//!
//! Every default implementation reproduces the corresponding block of the
//! pre-pipeline monolithic `Index::query` *exactly* — same kernels charged
//! in the same order over the same query orderings — which is what keeps
//! the staged execution bit-equal to the historical results.

use crate::backend::{Backend, Traversal, TraversalJob, TraversalKind};
use crate::bundling::{apply_bundles, plan_bundles};
use crate::cost_model::CostCoefficients;
use crate::engine::SearchError;
use crate::index::{AccelStore, EngineConfig};
use crate::megacell::MegacellGrid;
use crate::partition::{
    partition_queries, partition_queries_cached, partition_queries_on_grid, MegacellCache,
    Partition,
};
use crate::pipeline::ir::{GatheredHits, LaunchRecord, LaunchSet, PartitionedQueries};
use crate::result::{SearchMode, SearchParams, TimeBreakdown};
use crate::scheduling::{anchor_keys, charge_sort_kernel, QuerySchedule};
use rtnn_gpusim::KernelMetrics;
use rtnn_math::{Aabb, Vec3};
use rtnn_optix::{AccelRef, LaunchMetrics};
use rtnn_parallel::par_sort_by_key;

// ---------------------------------------------------------------------------
// Schedule
// ---------------------------------------------------------------------------

/// What the `Schedule` stage sees: the launched query ids (in pre-schedule
/// order) and the structure a coherence pass may traverse.
pub struct ScheduleCx<'r> {
    /// The execution backend.
    pub backend: &'r dyn Backend,
    /// The global acceleration structure (the widest structure the call
    /// uses — what the first-hit pass traverses). The driver guarantees
    /// `Some` whenever the stage's
    /// [`needs_structure`](ScheduleStage::needs_structure) is true; a
    /// stage that declared no need may be handed `None` (the batch path
    /// skips building a structure no one will traverse).
    pub accel: Option<AccelRef<'r>>,
    /// Search points.
    pub points: &'r [Vec3],
    /// All query positions (indexed by query id).
    pub queries: &'r [Vec3],
    /// The query ids this execution launches, in pre-schedule order (all of
    /// `0..queries.len()` for a single plan; the covered ids of a batch).
    pub query_ids: &'r [u32],
}

/// The `Schedule` stage: decide the launch order of the queries.
///
/// Implementations must return a [`QuerySchedule`] whose `order` is a
/// permutation of `cx.query_ids` — every launched query exactly once.
pub trait ScheduleStage: Sync {
    /// Produce the launch order (plus the metrics of whatever passes were
    /// run to derive it).
    fn schedule(&self, cx: &ScheduleCx<'_>) -> QuerySchedule;

    /// Whether this stage traverses an acceleration structure
    /// ([`ScheduleCx::accel`]). Stages that only permute ids return
    /// `false` so the batch driver does not build (and bill) a shared
    /// coherence structure no one will traverse.
    fn needs_structure(&self) -> bool {
        true
    }
}

/// The paper's coherence schedule (Section 4): a truncated first-hit launch
/// anchors every query to an enclosing leaf AABB, and the queries are
/// sorted by the Morton code of that anchor. The default when the
/// optimisation level enables scheduling.
#[derive(Debug, Clone, Copy, Default)]
pub struct CoherenceSchedule;

impl ScheduleStage for CoherenceSchedule {
    fn schedule(&self, cx: &ScheduleCx<'_>) -> QuerySchedule {
        if cx.query_ids.is_empty() {
            return QuerySchedule::identity(0);
        }
        let accel = cx
            .accel
            .expect("driver supplies a structure when needs_structure() is true");
        // 1. First-hit launch: K = 1, terminate at the first IS call.
        let fs = cx.backend.traverse(
            accel,
            &TraversalJob {
                points: cx.points,
                queries: cx.queries,
                query_ids: cx.query_ids,
                kind: TraversalKind::FirstHit,
            },
        );

        // 2. Morton keys of the first-hit anchors, spread back over query
        //    ids (queries with no hit use their own position).
        let keys = anchor_keys(cx.points, cx.queries, cx.query_ids, &fs.payloads);
        let mut key_of: Vec<u64> = vec![0; cx.queries.len()];
        for (i, &qid) in cx.query_ids.iter().enumerate() {
            key_of[qid as usize] = keys[i];
        }

        // 3. Sort the launched ids by key, charged to the device as one
        //    sort kernel over the launched count.
        let sort_metrics = charge_sort_kernel(cx.backend.device(), cx.query_ids.len());
        let mut order = cx.query_ids.to_vec();
        par_sort_by_key(&mut order, |&q| (key_of[q as usize], q));

        QuerySchedule {
            order,
            fs_metrics: fs.metrics,
            sort_metrics,
        }
    }
}

/// The identity schedule: launch queries in input order, free of charge.
/// The default when scheduling is disabled, and the
/// [`StageOverrides::without_reordering`](crate::pipeline::StageOverrides::without_reordering)
/// override.
#[derive(Debug, Clone, Copy, Default)]
pub struct IdentitySchedule;

impl ScheduleStage for IdentitySchedule {
    fn schedule(&self, cx: &ScheduleCx<'_>) -> QuerySchedule {
        QuerySchedule {
            order: cx.query_ids.to_vec(),
            fs_metrics: LaunchMetrics::default(),
            sort_metrics: KernelMetrics::default(),
        }
    }

    fn needs_structure(&self) -> bool {
        false
    }
}

// ---------------------------------------------------------------------------
// Partition
// ---------------------------------------------------------------------------

/// What the `Partition` stage sees: the scheduled order plus the megacell
/// state the persistent index maintains.
pub struct PartitionCx<'r> {
    /// The execution backend (partition kernels are charged to its device).
    pub backend: &'r dyn Backend,
    /// Engine-wide tuning (KNN rule, approximation mode, grid budget).
    pub config: &'r EngineConfig,
    /// The search parameters of the plan (slice) being partitioned.
    pub params: SearchParams,
    /// Search points.
    pub points: &'r [Vec3],
    /// All query positions (indexed by query id).
    pub queries: &'r [Vec3],
    /// The launched query ids in scheduled order.
    pub order: &'r [u32],
    /// Prebuilt megacell grid over the points, if the caller maintains one.
    pub grid: Option<&'r MegacellGrid>,
    /// Bounds of grid cells whose population changed since the cache
    /// entries were written.
    pub dirty_region: &'r Aabb,
    /// Per-query megacell cache, updated in place across frames.
    pub cache: Option<&'r mut MegacellCache>,
}

/// The `Partition` stage: split the scheduled queries into partitions, each
/// with the smallest safe AABB width (Section 5).
pub trait PartitionStage: Sync {
    /// Produce the partitions the `Launch` stage will traverse.
    fn partition(&self, cx: PartitionCx<'_>) -> PartitionedQueries;

    /// Whether this stage reads the persistent megacell grid
    /// ([`PartitionCx::grid`]). The driver provisions (and lazily builds)
    /// the index's cached grid exactly when the *resolved* stage wants it,
    /// so disabling partitioning per call skips the grid build and
    /// enabling it per call on a no-partitioning engine still hits the
    /// persistent cache.
    fn wants_grid(&self) -> bool {
        true
    }
}

/// The paper's megacell partitioning (Section 5.1), optionally followed by
/// cost-model bundling (Section 5.2). The default when the optimisation
/// level enables partitioning.
#[derive(Debug, Clone, Copy)]
pub struct MegacellPartition {
    /// Whether to bundle partitions with the analytical cost model.
    pub bundle: bool,
}

impl PartitionStage for MegacellPartition {
    fn partition(&self, cx: PartitionCx<'_>) -> PartitionedQueries {
        let device = cx.backend.device();
        let set = match (cx.grid, cx.cache) {
            (Some(g), Some(c)) => partition_queries_cached(
                device,
                cx.queries,
                cx.order,
                &cx.params,
                cx.config.knn_rule,
                g,
                cx.dirty_region,
                c,
            ),
            (Some(g), None) => partition_queries_on_grid(
                device,
                g,
                cx.queries,
                cx.order,
                &cx.params,
                cx.config.knn_rule,
            ),
            (None, _) => partition_queries(
                device,
                cx.points,
                cx.queries,
                cx.order,
                &cx.params,
                cx.config.knn_rule,
                cx.config.grid_max_cells,
            ),
        };
        let num_partitions = set.partitions.len();
        let partitions = if self.bundle {
            let coeffs = CostCoefficients::calibrate(device);
            let plan = plan_bundles(&set.partitions, cx.points.len(), &cx.params, &coeffs);
            apply_bundles(&set.partitions, &plan, &cx.params)
        } else {
            set.partitions
        };
        PartitionedQueries {
            num_partitions,
            num_bundles: partitions.len(),
            partitions,
            opt_metrics: set.opt_metrics,
        }
    }
}

/// No partitioning: every query in one partition at the full `2r` AABB
/// width. The default when partitioning is disabled, and the
/// [`StageOverrides::without_partitioning`](crate::pipeline::StageOverrides::without_partitioning)
/// override.
#[derive(Debug, Clone, Copy, Default)]
pub struct SinglePartition;

impl PartitionStage for SinglePartition {
    fn partition(&self, cx: PartitionCx<'_>) -> PartitionedQueries {
        let full_width = 2.0 * cx.params.radius * cx.config.approx.aabb_width_factor();
        PartitionedQueries {
            partitions: vec![Partition {
                aabb_width: full_width,
                query_ids: cx.order.to_vec(),
                megacell_width: full_width,
                sphere_test: !cx.config.approx.skip_sphere_test(),
                density: 0.0,
            }],
            num_partitions: 1,
            num_bundles: 1,
            opt_metrics: KernelMetrics::default(),
        }
    }

    fn wants_grid(&self) -> bool {
        false
    }
}

// ---------------------------------------------------------------------------
// Launch
// ---------------------------------------------------------------------------

/// What the `Launch` stage sees. The width-keyed structure store and the
/// metric accumulators stay encapsulated: a stage traverses partitions
/// through [`LaunchCx::traverse_partition`], which picks (and builds, on a
/// miss) the right structure and charges the breakdown.
pub struct LaunchCx<'r, 's> {
    pub(crate) backend: &'r dyn Backend,
    pub(crate) config: &'r EngineConfig,
    pub(crate) params: SearchParams,
    pub(crate) points: &'r [Vec3],
    pub(crate) queries: &'r [Vec3],
    pub(crate) store: &'r mut AccelStore<'s>,
    /// Store id of the global (full-width) structure.
    pub(crate) global: usize,
    pub(crate) breakdown: &'r mut TimeBreakdown,
    pub(crate) search_metrics: &'r mut LaunchMetrics,
}

impl LaunchCx<'_, '_> {
    /// The execution backend.
    pub fn backend(&self) -> &dyn Backend {
        self.backend
    }

    /// Engine-wide tuning.
    pub fn config(&self) -> &EngineConfig {
        self.config
    }

    /// The search parameters of the plan (slice) being launched.
    pub fn params(&self) -> SearchParams {
        self.params
    }

    /// Traverse one partition with its own acceleration structure (cached
    /// by width in the store, falling back to the global structure for
    /// full-width partitions), charging the structure build and search time
    /// to the breakdown and merging the launch metrics.
    pub fn traverse_partition(&mut self, part: &Partition) -> Result<Traversal, SearchError> {
        let full_width = 2.0 * self.params.radius * self.config.approx.aabb_width_factor();
        let reuse_global = (part.aabb_width - full_width).abs() <= f32::EPSILON * full_width;
        let aid = if reuse_global {
            self.global
        } else {
            let eff_width = part.aabb_width * self.config.approx.aabb_width_factor().min(1.0);
            let (aid, built_ms) =
                self.store
                    .ensure(self.backend, self.points, eff_width, self.config.build)?;
            self.breakdown.bvh_ms += built_ms;
            aid
        };

        let sphere_test = part.sphere_test && !self.config.approx.skip_sphere_test();
        let kind = match self.params.mode {
            SearchMode::Range => TraversalKind::Range {
                radius: self.params.radius,
                cap: self.params.k,
                sphere_test,
            },
            SearchMode::Knn => TraversalKind::Knn {
                radius: self.params.radius,
                k: self.params.k,
            },
        };
        let traversal = self.backend.traverse(
            self.store.accel_ref(aid),
            &TraversalJob {
                points: self.points,
                queries: self.queries,
                query_ids: &part.query_ids,
                kind,
            },
        );
        self.breakdown.search_ms += traversal.metrics.time_ms();
        self.search_metrics.merge_sequential(&traversal.metrics);
        Ok(traversal)
    }
}

/// The `Launch` stage: run the search traversals over the partitions.
pub trait LaunchStage: Sync {
    /// Traverse every (non-empty) partition, producing one launch record
    /// per traversal.
    fn launch(
        &self,
        cx: &mut LaunchCx<'_, '_>,
        parts: &PartitionedQueries,
    ) -> Result<LaunchSet, SearchError>;
}

/// The default launch: one traversal per non-empty partition, in partition
/// order.
#[derive(Debug, Clone, Copy, Default)]
pub struct SearchLaunch;

impl LaunchStage for SearchLaunch {
    fn launch(
        &self,
        cx: &mut LaunchCx<'_, '_>,
        parts: &PartitionedQueries,
    ) -> Result<LaunchSet, SearchError> {
        let mut launches = Vec::new();
        for (pi, part) in parts.partitions.iter().enumerate() {
            if part.is_empty() {
                continue;
            }
            let traversal = cx.traverse_partition(part)?;
            launches.push(LaunchRecord {
                partition: pi,
                payloads: traversal.payloads,
                metrics: traversal.metrics,
            });
        }
        Ok(LaunchSet { launches })
    }
}

// ---------------------------------------------------------------------------
// Gather
// ---------------------------------------------------------------------------

/// The `Gather` stage: scatter per-launch payloads back into per-query
/// neighbor lists (in original query-id order).
pub trait GatherStage: Sync {
    /// Fill `out.neighbors` from the launch payloads. Queries no launch
    /// covered keep their current (empty) list.
    fn gather(&self, parts: &PartitionedQueries, launches: LaunchSet, out: &mut GatheredHits);
}

/// The default gather: `payloads[i]` of a launch answers the partition's
/// `query_ids[i]`.
#[derive(Debug, Clone, Copy, Default)]
pub struct ScatterGather;

impl GatherStage for ScatterGather {
    fn gather(&self, parts: &PartitionedQueries, launches: LaunchSet, out: &mut GatheredHits) {
        for launch in launches.launches {
            let ids = &parts.partitions[launch.partition].query_ids;
            for (launch_idx, payload) in launch.payloads.into_iter().enumerate() {
                out.neighbors[ids[launch_idx] as usize] = payload;
            }
        }
    }
}
