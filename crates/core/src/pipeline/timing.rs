//! Per-stage metering: every pipeline execution reports how much simulated
//! device time (and host wall-clock) each stage consumed, rolled up next to
//! the existing [`TimeBreakdown`](crate::TimeBreakdown) /
//! [`LaunchMetrics`](crate::LaunchMetrics) views.
//!
//! The invariant the metering keeps (and the test suite pins): every
//! simulated millisecond the pipeline charges to the device lands in
//! exactly one stage slot, so
//!
//! ```text
//! trace.device_total_ms() == breakdown.total_ms() - breakdown.data_ms
//! ```
//!
//! (host↔device transfers are driver setup, not a stage). In particular the
//! query-sort kernel is billed once, to [`StageKind::Schedule`] — never
//! double-billed into the partition slot it used to sit next to in the
//! monolithic `Index::query`.

/// The four stages of the execution pipeline, in the order the paper
/// presents them (the driver runs the coherence schedule before the
/// partition kernel — see the [`pipeline`](crate::pipeline) module docs).
#[derive(Debug, Clone, Copy, PartialEq, Eq, PartialOrd, Ord)]
pub enum StageKind {
    /// Megacell growth, partition grouping and bundling (Section 5).
    Partition,
    /// The first-hit coherence pass and the Morton query sort (Section 4).
    Schedule,
    /// Structure availability (builds, refit maintenance) plus the actual
    /// search traversals.
    Launch,
    /// Scattering per-launch payloads back into per-query results (and, in
    /// a sharded execution, the deterministic shard merge).
    Gather,
}

impl StageKind {
    /// All stages, in pipeline order.
    pub const ALL: [StageKind; 4] = [
        StageKind::Partition,
        StageKind::Schedule,
        StageKind::Launch,
        StageKind::Gather,
    ];

    /// Label used in figures and reports.
    pub fn label(&self) -> &'static str {
        match self {
            StageKind::Partition => "Partition",
            StageKind::Schedule => "Schedule",
            StageKind::Launch => "Launch",
            StageKind::Gather => "Gather",
        }
    }

    /// Telemetry span name for one execution of this stage (the workspace
    /// dotted schema — see the README's Observability section).
    pub fn span_name(&self) -> &'static str {
        match self {
            StageKind::Partition => "stage.partition",
            StageKind::Schedule => "stage.schedule",
            StageKind::Launch => "stage.launch",
            StageKind::Gather => "stage.gather",
        }
    }

    /// Telemetry histogram name for this stage's simulated device
    /// milliseconds per invocation (recorded at level `basic` and up).
    pub fn device_histogram(&self) -> &'static str {
        match self {
            StageKind::Partition => "stage.partition.device_ms",
            StageKind::Schedule => "stage.schedule.device_ms",
            StageKind::Launch => "stage.launch.device_ms",
            StageKind::Gather => "stage.gather.device_ms",
        }
    }

    fn slot(self) -> usize {
        match self {
            StageKind::Partition => 0,
            StageKind::Schedule => 1,
            StageKind::Launch => 2,
            StageKind::Gather => 3,
        }
    }
}

/// Metering of one pipeline stage across an execution.
#[derive(Debug, Clone, Copy, PartialEq)]
pub struct StageTiming {
    /// Which stage this meters.
    pub kind: StageKind,
    /// Simulated device milliseconds the stage charged (kernels, launches,
    /// structure builds). Zero for host-only stages (`Gather`).
    pub device_ms: f64,
    /// Host wall-clock milliseconds spent inside the stage.
    pub host_ms: f64,
    /// How many times the stage ran (a batch plan runs the per-slice stages
    /// once per slice; a sharded execution once per overlapped shard).
    pub invocations: u64,
}

impl StageTiming {
    fn zero(kind: StageKind) -> Self {
        StageTiming {
            kind,
            device_ms: 0.0,
            host_ms: 0.0,
            invocations: 0,
        }
    }
}

/// The per-stage roll-up of one pipeline execution, carried on every
/// [`SearchResults`](crate::SearchResults).
#[derive(Debug, Clone, PartialEq)]
pub struct PipelineTrace {
    stages: [StageTiming; 4],
}

impl Default for PipelineTrace {
    fn default() -> Self {
        PipelineTrace {
            stages: [
                StageTiming::zero(StageKind::Partition),
                StageTiming::zero(StageKind::Schedule),
                StageTiming::zero(StageKind::Launch),
                StageTiming::zero(StageKind::Gather),
            ],
        }
    }
}

impl PipelineTrace {
    /// The four stage meters, in pipeline order.
    pub fn stages(&self) -> &[StageTiming; 4] {
        &self.stages
    }

    /// The meter of one stage.
    pub fn stage(&self, kind: StageKind) -> &StageTiming {
        &self.stages[kind.slot()]
    }

    /// Charge `device_ms` of simulated time and `host_ms` of wall-clock to
    /// a stage, counting one invocation.
    pub(crate) fn charge(&mut self, kind: StageKind, device_ms: f64, host_ms: f64) {
        let slot = &mut self.stages[kind.slot()];
        slot.device_ms += device_ms;
        slot.host_ms += host_ms;
        slot.invocations += 1;
    }

    /// Charge host-only work to a stage from outside the core driver — how
    /// a sharded execution bills its shared `ShardMerge` loop to the
    /// `Gather` slot (the merge runs on the host; it charges no simulated
    /// device time, so the device-accounting invariant is untouched).
    pub fn charge_host_only(&mut self, kind: StageKind, host_ms: f64) {
        self.charge(kind, 0.0, host_ms);
    }

    /// Total simulated device time across all stages. Equals the result's
    /// `breakdown.total_ms() - breakdown.data_ms` (transfers are driver
    /// setup, not a stage).
    pub fn device_total_ms(&self) -> f64 {
        self.stages.iter().map(|s| s.device_ms).sum()
    }

    /// Total host wall-clock across all stages.
    pub fn host_total_ms(&self) -> f64 {
        self.stages.iter().map(|s| s.host_ms).sum()
    }

    /// Per-stage `(label, device_ms)` pairs in pipeline order — the shape
    /// the telemetry layer's continuous profiler and flight recorder
    /// ingest.
    pub fn stage_device_ms(&self) -> [(&'static str, f64); 4] {
        let mut out = [("", 0.0); 4];
        for (slot, stage) in self.stages.iter().enumerate() {
            out[slot] = (stage.kind.label(), stage.device_ms);
        }
        out
    }

    /// Each stage's simulated time as a fraction of the stage total (zeros
    /// when nothing was charged).
    pub fn device_fractions(&self) -> [(&'static str, f64); 4] {
        let total = self.device_total_ms();
        let mut out = [("", 0.0); 4];
        for (slot, stage) in self.stages.iter().enumerate() {
            out[slot] = (
                stage.kind.label(),
                if total > 0.0 {
                    stage.device_ms / total
                } else {
                    0.0
                },
            );
        }
        out
    }

    /// Fold another execution's trace into this one (slot-wise sums) — how
    /// a sharded index aggregates its per-shard pipeline runs.
    pub fn merge(&mut self, other: &PipelineTrace) {
        for (mine, theirs) in self.stages.iter_mut().zip(other.stages.iter()) {
            mine.device_ms += theirs.device_ms;
            mine.host_ms += theirs.host_ms;
            mine.invocations += theirs.invocations;
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn charges_accumulate_per_slot() {
        let mut trace = PipelineTrace::default();
        trace.charge(StageKind::Schedule, 2.0, 0.1);
        trace.charge(StageKind::Schedule, 3.0, 0.2);
        trace.charge(StageKind::Launch, 5.0, 0.5);
        let sched = trace.stage(StageKind::Schedule);
        assert_eq!(sched.device_ms, 5.0);
        assert_eq!(sched.invocations, 2);
        assert_eq!(trace.device_total_ms(), 10.0);
        assert!((trace.host_total_ms() - 0.8).abs() < 1e-12);
        assert_eq!(trace.stage(StageKind::Gather).invocations, 0);
    }

    #[test]
    fn merge_is_slotwise() {
        let mut a = PipelineTrace::default();
        a.charge(StageKind::Partition, 1.0, 0.0);
        let mut b = PipelineTrace::default();
        b.charge(StageKind::Partition, 2.0, 0.0);
        b.charge(StageKind::Gather, 0.0, 0.25);
        a.merge(&b);
        assert_eq!(a.stage(StageKind::Partition).device_ms, 3.0);
        assert_eq!(a.stage(StageKind::Partition).invocations, 2);
        assert_eq!(a.stage(StageKind::Gather).host_ms, 0.25);
    }

    #[test]
    fn fractions_sum_to_one_when_charged() {
        let mut trace = PipelineTrace::default();
        trace.charge(StageKind::Schedule, 1.0, 0.0);
        trace.charge(StageKind::Launch, 3.0, 0.0);
        let fracs = trace.device_fractions();
        let sum: f64 = fracs.iter().map(|(_, v)| v).sum();
        assert!((sum - 1.0).abs() < 1e-12);
        assert_eq!(PipelineTrace::default().device_fractions()[0].1, 0.0);
        // Labels follow pipeline order.
        assert_eq!(fracs[0].0, "Partition");
        assert_eq!(fracs[3].0, "Gather");
    }
}
