//! Typed, per-call query plans — the query half of the two-level
//! [`Index`](crate::Index) API.
//!
//! The paper's pipeline builds one acceleration structure over the points
//! and then answers *many* searches against it, with different radii, `K`s
//! and variants (unrestricted KNN à la RT-kNNS Unbound, clustering-style
//! epsilon queries à la RT-DBSCAN). A [`QueryPlan`] captures one such
//! search — or a heterogeneous [`QueryPlan::Batch`] of them — and is passed
//! *per call* to [`Index::query`](crate::Index::query), so the same index
//! serves every plan without rebuilding.
//!
//! Plans are validated at query time; every violation is reported as a
//! typed [`PlanError`] naming the offending field.

use crate::result::{SearchMode, SearchParams};
use std::borrow::Cow;

/// A typed description of one neighbor search (or a batch of them),
/// decoupled from the scene it runs against.
///
/// ```
/// use rtnn::QueryPlan;
///
/// let knn = QueryPlan::knn(1.5, 8); // 8 nearest neighbors within r = 1.5
/// let rng = QueryPlan::range(0.8, 64); // up to 64 neighbors within r = 0.8
/// assert!(knn.validate(100).is_ok());
/// assert!(rng.validate(100).is_ok());
/// ```
#[derive(Debug, Clone, PartialEq)]
pub enum QueryPlan {
    /// K-nearest-neighbor search: the `k` nearest neighbors within `r`.
    /// (An unrestricted KNN is expressed with a very large `r`.)
    Knn {
        /// Number of nearest neighbors to return (must be at least 1).
        k: usize,
        /// Search radius bounding the returned neighbors (positive, finite).
        r: f32,
    },
    /// Fixed-radius (range) search: up to `cap` neighbors within `r`.
    /// (An unbounded range search is expressed with
    /// [`QueryPlan::range_unbounded`], whose [`UNBOUNDED_CAP`] sentinel the
    /// index resolves to the scene's point count at query time.)
    ///
    /// [`UNBOUNDED_CAP`]: QueryPlan::UNBOUNDED_CAP
    Range {
        /// Search radius (positive, finite).
        r: f32,
        /// Maximum neighbor count (must be at least 1).
        cap: usize,
    },
    /// A heterogeneous batch: several plans with per-plan radii/K answered
    /// against the same index in one call, sharing a single scheduling
    /// traversal pass and the index's cached structures. Each slice names
    /// the query ids (indices into the query array) it applies to; ids must
    /// be disjoint across slices, and queries covered by no slice get an
    /// empty result.
    Batch(Vec<PlanSlice>),
}

/// One sub-plan of a [`QueryPlan::Batch`]: a (non-batch) plan plus the
/// query ids it applies to.
#[derive(Debug, Clone, PartialEq)]
pub struct PlanSlice {
    /// The plan for these queries ([`QueryPlan::Knn`] or
    /// [`QueryPlan::Range`]; nesting batches is rejected).
    pub plan: QueryPlan,
    /// Indices into the query array this plan applies to.
    pub query_ids: Vec<u32>,
}

impl PlanSlice {
    /// A slice applying `plan` to `query_ids`.
    pub fn new(plan: QueryPlan, query_ids: Vec<u32>) -> Self {
        PlanSlice { plan, query_ids }
    }
}

impl QueryPlan {
    /// KNN plan: the `k` nearest neighbors within `r`.
    pub fn knn(r: f32, k: usize) -> Self {
        QueryPlan::Knn { k, r }
    }

    /// Range plan: up to `cap` neighbors within `r`.
    pub fn range(r: f32, cap: usize) -> Self {
        QueryPlan::Range { r, cap }
    }

    /// The sentinel cap carried by [`range_unbounded`](Self::range_unbounded)
    /// plans. Execution entry points resolve it to the scene's point count
    /// (the largest result a range query can produce) before sizing result
    /// buffers, so the sentinel never reaches footprint arithmetic.
    pub const UNBOUNDED_CAP: usize = usize::MAX;

    /// Unbounded range plan: *every* neighbor within `r`.
    ///
    /// Semantically identical to [`range`](Self::range) with a cap of the
    /// scene's point count, without the caller having to know that count —
    /// the DBSCAN driver in `rtnn-analytics` needs exact ε-neighborhoods,
    /// and a hand-picked "very large" cap either truncates silently or
    /// over-allocates result buffers. The plan carries the
    /// [`UNBOUNDED_CAP`](Self::UNBOUNDED_CAP) sentinel, which the index
    /// resolves per scene at query time; validation is exactly that of
    /// `range` (the sentinel is non-zero, so only the radius can fail).
    ///
    /// ```
    /// use rtnn::{PlanError, QueryPlan};
    ///
    /// assert!(QueryPlan::range_unbounded(0.8).validate(100).is_ok());
    /// assert_eq!(
    ///     QueryPlan::range_unbounded(f32::INFINITY).validate(100).unwrap_err(),
    ///     PlanError::InvalidRadius { field: "Range.r", value: f32::INFINITY }
    /// );
    /// ```
    pub fn range_unbounded(r: f32) -> Self {
        QueryPlan::Range {
            r,
            cap: Self::UNBOUNDED_CAP,
        }
    }

    /// This plan with any [`UNBOUNDED_CAP`](Self::UNBOUNDED_CAP) sentinel
    /// resolved to `num_points.max(1)` — the tightest true bound on a range
    /// result (`max(1)` keeps the resolved plan valid for empty scenes).
    /// Plans without the sentinel are returned borrowed; execution entry
    /// points call this before any result-buffer sizing.
    pub fn resolve_caps(&self, num_points: usize) -> Cow<'_, QueryPlan> {
        let bound = num_points.max(1);
        match self {
            QueryPlan::Range {
                r,
                cap: Self::UNBOUNDED_CAP,
            } => Cow::Owned(QueryPlan::range(*r, bound)),
            QueryPlan::Batch(slices)
                if slices.iter().any(|s| {
                    matches!(
                        s.plan,
                        QueryPlan::Range {
                            cap: Self::UNBOUNDED_CAP,
                            ..
                        }
                    )
                }) =>
            {
                Cow::Owned(QueryPlan::Batch(
                    slices
                        .iter()
                        .map(|s| {
                            PlanSlice::new(
                                s.plan.resolve_caps(num_points).into_owned(),
                                s.query_ids.clone(),
                            )
                        })
                        .collect(),
                ))
            }
            _ => Cow::Borrowed(self),
        }
    }

    /// The plan equivalent to legacy [`SearchParams`] (used by the
    /// deprecated `Rtnn::search` shims; see the README migration table).
    pub fn from_params(params: SearchParams) -> Self {
        match params.mode {
            SearchMode::Knn => QueryPlan::Knn {
                k: params.k,
                r: params.radius,
            },
            SearchMode::Range => QueryPlan::Range {
                r: params.radius,
                cap: params.k,
            },
        }
    }

    /// The plan kind as a static label (`"knn"` / `"range"` / `"batch"`) —
    /// the suffix the telemetry naming schema uses for per-plan-kind span
    /// names and latency histograms.
    pub fn kind_label(&self) -> &'static str {
        match self {
            QueryPlan::Knn { .. } => "knn",
            QueryPlan::Range { .. } => "range",
            QueryPlan::Batch(_) => "batch",
        }
    }

    /// The legacy parameter bundle for a non-batch plan (`None` for
    /// [`QueryPlan::Batch`]).
    pub fn params(&self) -> Option<SearchParams> {
        match *self {
            QueryPlan::Knn { k, r } => Some(SearchParams::knn(r, k)),
            QueryPlan::Range { r, cap } => Some(SearchParams::range(r, cap)),
            QueryPlan::Batch(_) => None,
        }
    }

    /// The largest radius any part of this plan searches (0 for an empty
    /// batch). The batch path sizes its shared scheduling pass from this.
    pub fn max_radius(&self) -> f32 {
        match self {
            QueryPlan::Knn { r, .. } | QueryPlan::Range { r, .. } => *r,
            QueryPlan::Batch(slices) => slices
                .iter()
                .map(|s| s.plan.max_radius())
                .fold(0.0, f32::max),
        }
    }

    /// The canonical form of this plan: nested [`QueryPlan::Batch`]es are
    /// flattened and slices with identical parameters are merged into one
    /// slice (query ids concatenated in encounter order), with merged
    /// slices ordered by the first appearance of their parameters.
    ///
    /// Deduplication is scoped to one merged slice: an id claimed twice by
    /// slices with the *same* parameters is kept once (the merge makes the
    /// two claims indistinguishable), while an id claimed by slices with
    /// *different* parameters survives in both — that conflict is a plan
    /// bug, and [`validate`](Self::validate) keeps reporting it as
    /// [`PlanError::DuplicateQueryId`] after normalization.
    ///
    /// A slice wrapping a nested batch contributes the nested slices
    /// verbatim — query ids are always absolute indices into the query
    /// array, so the wrapper slice's own `query_ids` carry no additional
    /// information and are ignored.
    ///
    /// Single plans and already-normal batches are returned borrowed, so
    /// calling this on the hot path is free for them. [`Index::query`]
    /// normalizes every plan before validating it (a flattened batch is
    /// valid even when the original nested one would have been rejected),
    /// and the `rtnn-serve` coalescer uses the same routine to fuse the
    /// per-request slices of one serving tick into a minimal batch.
    ///
    /// ```
    /// use rtnn::{PlanSlice, QueryPlan};
    ///
    /// let batch = QueryPlan::Batch(vec![
    ///     PlanSlice::new(QueryPlan::knn(1.0, 4), vec![0]),
    ///     PlanSlice::new(QueryPlan::range(2.0, 8), vec![1]),
    ///     PlanSlice::new(QueryPlan::knn(1.0, 4), vec![2]),
    /// ]);
    /// let normal = batch.normalized();
    /// if let QueryPlan::Batch(slices) = normal.as_ref() {
    ///     assert_eq!(slices.len(), 2);
    ///     assert_eq!(slices[0].query_ids, vec![0, 2]);
    /// } else {
    ///     unreachable!();
    /// }
    /// ```
    ///
    /// [`Index::query`]: crate::Index::query
    pub fn normalized(&self) -> Cow<'_, QueryPlan> {
        let QueryPlan::Batch(slices) = self else {
            return Cow::Borrowed(self);
        };
        // Fast path: no nesting, no duplicate ids, and no two slices with
        // the same parameters — the plan is already normal.
        let mut seen_params: Vec<SearchParams> = Vec::with_capacity(slices.len());
        let already_normal = slices.iter().all(|s| match s.plan.params() {
            Some(p) if !seen_params.contains(&p) => {
                seen_params.push(p);
                true
            }
            _ => false,
        }) && !has_duplicate_ids(slices);
        if already_normal {
            return Cow::Borrowed(self);
        }

        // (params, query ids) in first-appearance order.
        let mut merged: Vec<(SearchParams, Vec<u32>)> = Vec::new();
        collect_slices(slices, &mut merged);
        Cow::Owned(QueryPlan::Batch(
            merged
                .into_iter()
                .map(|(params, mut ids)| {
                    // Dedup within the merged slice only (see doc comment):
                    // same-params double claims collapse, cross-params ones
                    // are left for validate() to reject.
                    let mut seen = std::collections::HashSet::with_capacity(ids.len());
                    ids.retain(|&q| seen.insert(q));
                    PlanSlice::new(QueryPlan::from_params(params), ids)
                })
                .collect(),
        ))
    }

    /// Validate the plan against a query set of `num_queries` queries.
    ///
    /// Every violation is a typed [`PlanError`] naming the offending field:
    ///
    /// ```
    /// use rtnn::{PlanError, QueryPlan};
    ///
    /// let err = QueryPlan::knn(-1.0, 8).validate(10).unwrap_err();
    /// assert_eq!(
    ///     err,
    ///     PlanError::InvalidRadius { field: "Knn.r", value: -1.0 }
    /// );
    /// assert_eq!(
    ///     QueryPlan::range(1.0, 0).validate(10).unwrap_err(),
    ///     PlanError::ZeroNeighborCount { field: "Range.cap" }
    /// );
    /// ```
    pub fn validate(&self, num_queries: usize) -> Result<(), PlanError> {
        match self {
            QueryPlan::Knn { k, r } => {
                check_radius("Knn.r", *r)?;
                check_count("Knn.k", *k)
            }
            QueryPlan::Range { r, cap } => {
                check_radius("Range.r", *r)?;
                check_count("Range.cap", *cap)
            }
            QueryPlan::Batch(slices) => {
                if slices.is_empty() {
                    return Err(PlanError::EmptyBatch);
                }
                let mut claimed = vec![false; num_queries];
                for (si, slice) in slices.iter().enumerate() {
                    if matches!(slice.plan, QueryPlan::Batch(_)) {
                        return Err(PlanError::NestedBatch { slice: si });
                    }
                    slice.plan.validate(num_queries)?;
                    for &qid in &slice.query_ids {
                        if qid as usize >= num_queries {
                            return Err(PlanError::QueryIdOutOfRange {
                                slice: si,
                                query_id: qid,
                                num_queries,
                            });
                        }
                        if claimed[qid as usize] {
                            return Err(PlanError::DuplicateQueryId {
                                slice: si,
                                query_id: qid,
                            });
                        }
                        claimed[qid as usize] = true;
                    }
                }
                Ok(())
            }
        }
    }
}

/// Append every (transitively nested) slice of `slices` to `merged`,
/// grouping by exact parameters (per-group deduplication happens in the
/// caller once the groups are complete).
fn collect_slices(slices: &[PlanSlice], merged: &mut Vec<(SearchParams, Vec<u32>)>) {
    for slice in slices {
        match &slice.plan {
            QueryPlan::Batch(nested) => collect_slices(nested, merged),
            single => {
                let params = single.params().expect("non-batch plan has params");
                match merged.iter_mut().find(|(p, _)| *p == params) {
                    Some((_, existing)) => existing.extend_from_slice(&slice.query_ids),
                    None => merged.push((params, slice.query_ids.clone())),
                }
            }
        }
    }
}

fn has_duplicate_ids(slices: &[PlanSlice]) -> bool {
    let mut seen = std::collections::HashSet::new();
    slices
        .iter()
        .flat_map(|s| s.query_ids.iter())
        .any(|&q| !seen.insert(q))
}

fn check_radius(field: &'static str, r: f32) -> Result<(), PlanError> {
    if !r.is_finite() || r <= 0.0 {
        Err(PlanError::InvalidRadius { field, value: r })
    } else {
        Ok(())
    }
}

fn check_count(field: &'static str, k: usize) -> Result<(), PlanError> {
    if k == 0 {
        Err(PlanError::ZeroNeighborCount { field })
    } else {
        Ok(())
    }
}

/// A typed plan/configuration validation error, naming the offending field.
///
/// Replaces the stringly-typed `Result<(), String>` the legacy
/// `SearchParams::validate` used to return.
#[derive(Debug, Clone, PartialEq)]
pub enum PlanError {
    /// A radius field is non-positive or non-finite.
    InvalidRadius {
        /// Which field (`"Knn.r"`, `"Range.r"`, `"SearchParams.radius"`...).
        field: &'static str,
        /// The rejected value.
        value: f32,
    },
    /// A neighbor-count field is zero.
    ZeroNeighborCount {
        /// Which field (`"Knn.k"`, `"Range.cap"`, `"SearchParams.k"`...).
        field: &'static str,
    },
    /// `grid_max_cells` is zero — the megacell pass needs at least one cell.
    ZeroGridBudget,
    /// A cells-per-axis grid resolution is zero (the raster-scan ordering
    /// of the coherence experiments needs at least one cell per axis).
    ZeroCellsPerAxis {
        /// Which field (`"raster_order.cells_per_axis"`...).
        field: &'static str,
    },
    /// The `ShrunkenAabb` approximation factor is outside `(0, 1]`.
    InvalidShrinkFactor {
        /// The rejected factor.
        factor: f32,
    },
    /// A [`QueryPlan::Batch`] holds no slices.
    EmptyBatch,
    /// A batch slice nests another batch.
    NestedBatch {
        /// Index of the offending slice.
        slice: usize,
    },
    /// A batch slice names a query id outside the query array.
    QueryIdOutOfRange {
        /// Index of the offending slice.
        slice: usize,
        /// The out-of-range id.
        query_id: u32,
        /// The number of queries in the call.
        num_queries: usize,
    },
    /// Two batch slices claim the same query id.
    DuplicateQueryId {
        /// Index of the second slice claiming the id.
        slice: usize,
        /// The doubly-claimed id.
        query_id: u32,
    },
}

impl std::fmt::Display for PlanError {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        match self {
            PlanError::InvalidRadius { field, value } => {
                write!(f, "{field}: search radius must be positive and finite, got {value}")
            }
            PlanError::ZeroNeighborCount { field } => {
                write!(f, "{field}: neighbor count must be at least 1, got 0")
            }
            PlanError::ZeroGridBudget => write!(
                f,
                "grid_max_cells: the megacell grid budget must be at least 1 cell, got 0"
            ),
            PlanError::ZeroCellsPerAxis { field } => write!(
                f,
                "{field}: the grid resolution must be at least 1 cell per axis, got 0"
            ),
            PlanError::InvalidShrinkFactor { factor } => {
                write!(f, "ShrunkenAabb.factor: must be in (0, 1], got {factor}")
            }
            PlanError::EmptyBatch => write!(f, "Batch: must hold at least one plan slice"),
            PlanError::NestedBatch { slice } => {
                write!(f, "Batch slice {slice}: nested Batch plans are not allowed")
            }
            PlanError::QueryIdOutOfRange {
                slice,
                query_id,
                num_queries,
            } => write!(
                f,
                "Batch slice {slice}: query id {query_id} is out of range (call has {num_queries} queries)"
            ),
            PlanError::DuplicateQueryId { slice, query_id } => write!(
                f,
                "Batch slice {slice}: query id {query_id} is already claimed by an earlier slice"
            ),
        }
    }
}

impl std::error::Error for PlanError {}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn plan_params_round_trip() {
        let knn = QueryPlan::knn(1.5, 8);
        assert_eq!(knn.params(), Some(SearchParams::knn(1.5, 8)));
        let range = QueryPlan::range(0.8, 64);
        assert_eq!(range.params(), Some(SearchParams::range(0.8, 64)));
        assert_eq!(QueryPlan::from_params(SearchParams::knn(1.5, 8)), knn);
        assert_eq!(QueryPlan::from_params(SearchParams::range(0.8, 64)), range);
        assert_eq!(QueryPlan::Batch(Vec::new()).params(), None);
    }

    #[test]
    fn single_plan_validation_names_the_field() {
        assert!(QueryPlan::knn(1.0, 4).validate(0).is_ok());
        assert!(matches!(
            QueryPlan::knn(f32::NAN, 4).validate(0).unwrap_err(),
            PlanError::InvalidRadius {
                field: "Knn.r",
                value,
            } if value.is_nan()
        ));
        assert_eq!(
            QueryPlan::knn(1.0, 0).validate(0).unwrap_err(),
            PlanError::ZeroNeighborCount { field: "Knn.k" }
        );
        assert_eq!(
            QueryPlan::range(0.0, 4).validate(0).unwrap_err(),
            PlanError::InvalidRadius {
                field: "Range.r",
                value: 0.0
            }
        );
        let msg = QueryPlan::range(-2.0, 4)
            .validate(0)
            .unwrap_err()
            .to_string();
        assert!(msg.contains("Range.r") && msg.contains("-2"), "{msg}");
    }

    #[test]
    fn batch_validation_rejects_structural_errors() {
        assert_eq!(
            QueryPlan::Batch(Vec::new()).validate(4).unwrap_err(),
            PlanError::EmptyBatch
        );
        let nested = QueryPlan::Batch(vec![PlanSlice::new(
            QueryPlan::Batch(vec![PlanSlice::new(QueryPlan::knn(1.0, 2), vec![0])]),
            vec![0],
        )]);
        assert_eq!(
            nested.validate(4).unwrap_err(),
            PlanError::NestedBatch { slice: 0 }
        );
        let oob = QueryPlan::Batch(vec![PlanSlice::new(QueryPlan::knn(1.0, 2), vec![4])]);
        assert_eq!(
            oob.validate(4).unwrap_err(),
            PlanError::QueryIdOutOfRange {
                slice: 0,
                query_id: 4,
                num_queries: 4
            }
        );
        let dup = QueryPlan::Batch(vec![
            PlanSlice::new(QueryPlan::knn(1.0, 2), vec![0, 1]),
            PlanSlice::new(QueryPlan::range(2.0, 8), vec![1]),
        ]);
        assert_eq!(
            dup.validate(4).unwrap_err(),
            PlanError::DuplicateQueryId {
                slice: 1,
                query_id: 1
            }
        );
        let ok = QueryPlan::Batch(vec![
            PlanSlice::new(QueryPlan::knn(1.0, 2), vec![0, 1]),
            PlanSlice::new(QueryPlan::range(2.0, 8), vec![2, 3]),
        ]);
        assert!(ok.validate(4).is_ok());
        assert_eq!(ok.max_radius(), 2.0);
    }

    #[test]
    fn normalized_passes_single_plans_and_normal_batches_through() {
        let knn = QueryPlan::knn(1.5, 8);
        assert!(matches!(knn.normalized(), Cow::Borrowed(_)));
        let normal = QueryPlan::Batch(vec![
            PlanSlice::new(QueryPlan::knn(1.0, 2), vec![0, 1]),
            PlanSlice::new(QueryPlan::range(2.0, 8), vec![2]),
        ]);
        let out = normal.normalized();
        assert!(
            matches!(out, Cow::Borrowed(_)),
            "already-normal batch is borrowed"
        );
        assert_eq!(out.as_ref(), &normal);
    }

    #[test]
    fn normalized_merges_identical_params_preserving_query_order() {
        let batch = QueryPlan::Batch(vec![
            PlanSlice::new(QueryPlan::knn(1.0, 4), vec![3, 0]),
            PlanSlice::new(QueryPlan::range(2.0, 8), vec![1]),
            PlanSlice::new(QueryPlan::knn(1.0, 4), vec![5, 2]),
            PlanSlice::new(QueryPlan::range(2.0, 8), vec![4]),
        ]);
        let QueryPlan::Batch(slices) = batch.normalized().into_owned() else {
            panic!("normalized batch stays a batch");
        };
        assert_eq!(slices.len(), 2);
        assert_eq!(slices[0].plan, QueryPlan::knn(1.0, 4));
        assert_eq!(slices[0].query_ids, vec![3, 0, 5, 2]);
        assert_eq!(slices[1].plan, QueryPlan::range(2.0, 8));
        assert_eq!(slices[1].query_ids, vec![1, 4]);
    }

    #[test]
    fn normalized_flattens_nested_batches_and_dedups_ids() {
        let nested = QueryPlan::Batch(vec![
            PlanSlice::new(
                QueryPlan::Batch(vec![
                    PlanSlice::new(QueryPlan::knn(1.0, 4), vec![0, 1]),
                    PlanSlice::new(QueryPlan::range(3.0, 16), vec![2]),
                ]),
                Vec::new(),
            ),
            PlanSlice::new(QueryPlan::knn(1.0, 4), vec![1, 3]),
        ]);
        assert!(nested.validate(4).is_err(), "raw nested batch is rejected");
        let flat = nested.normalized().into_owned();
        assert!(flat.validate(4).is_ok(), "normalized form is valid");
        let QueryPlan::Batch(slices) = flat else {
            panic!("stays a batch")
        };
        assert_eq!(slices.len(), 2);
        // Query 1 is claimed by the first knn slice; the duplicate is dropped.
        assert_eq!(slices[0].query_ids, vec![0, 1, 3]);
        assert_eq!(slices[1].query_ids, vec![2]);
    }

    #[test]
    fn normalized_keeps_cross_params_duplicates_for_validation() {
        // An id claimed under two *different* parameter sets is a plan bug,
        // not a merge artefact: normalization must not silently drop either
        // claim, so validate() still reports it.
        let conflicted = QueryPlan::Batch(vec![
            PlanSlice::new(QueryPlan::knn(1.0, 4), vec![0]),
            PlanSlice::new(QueryPlan::range(2.0, 8), vec![0]),
        ]);
        let normal = conflicted.normalized();
        assert_eq!(
            normal.validate(2).unwrap_err(),
            PlanError::DuplicateQueryId {
                slice: 1,
                query_id: 0
            }
        );
        // Same-params double claims are indistinguishable after merging and
        // collapse to one.
        let doubled = QueryPlan::Batch(vec![
            PlanSlice::new(QueryPlan::knn(1.0, 4), vec![0, 1]),
            PlanSlice::new(QueryPlan::knn(1.0, 4), vec![1, 2]),
        ]);
        let QueryPlan::Batch(slices) = doubled.normalized().into_owned() else {
            panic!("stays a batch")
        };
        assert_eq!(slices[0].query_ids, vec![0, 1, 2]);
    }

    #[test]
    fn normalized_distinguishes_kinds_with_equal_numbers() {
        // Knn{k, r} and Range{r, cap} with the same numbers are different
        // params and must not merge.
        let batch = QueryPlan::Batch(vec![
            PlanSlice::new(QueryPlan::knn(1.0, 8), vec![0]),
            PlanSlice::new(QueryPlan::range(1.0, 8), vec![1]),
        ]);
        let out = batch.normalized();
        let QueryPlan::Batch(slices) = out.as_ref() else {
            panic!("stays a batch")
        };
        assert_eq!(slices.len(), 2);
    }

    #[test]
    fn range_unbounded_validates_like_range() {
        let plan = QueryPlan::range_unbounded(0.8);
        assert_eq!(
            plan,
            QueryPlan::Range {
                r: 0.8,
                cap: QueryPlan::UNBOUNDED_CAP
            }
        );
        assert!(plan.validate(100).is_ok());
        assert_eq!(plan.max_radius(), 0.8);
        assert_eq!(plan.kind_label(), "range");
        // The radius checks are exactly those of `range`.
        assert_eq!(
            QueryPlan::range_unbounded(0.0).validate(10).unwrap_err(),
            PlanError::InvalidRadius {
                field: "Range.r",
                value: 0.0
            }
        );
        assert!(matches!(
            QueryPlan::range_unbounded(f32::NAN).validate(10).unwrap_err(),
            PlanError::InvalidRadius { field: "Range.r", value } if value.is_nan()
        ));
        assert_eq!(
            QueryPlan::range_unbounded(-3.5).validate(10).unwrap_err(),
            PlanError::InvalidRadius {
                field: "Range.r",
                value: -3.5
            }
        );
    }

    #[test]
    fn resolve_caps_replaces_only_the_sentinel() {
        // The sentinel resolves to the point count…
        assert_eq!(
            QueryPlan::range_unbounded(0.8).resolve_caps(37).as_ref(),
            &QueryPlan::range(0.8, 37)
        );
        // …empty scenes keep the resolved plan valid…
        assert_eq!(
            QueryPlan::range_unbounded(0.8).resolve_caps(0).as_ref(),
            &QueryPlan::range(0.8, 1)
        );
        // …and everything else is passed through borrowed, bit-for-bit.
        for plan in [
            QueryPlan::knn(1.0, 8),
            QueryPlan::range(1.0, 8),
            QueryPlan::range(1.0, usize::MAX - 1),
        ] {
            assert!(matches!(plan.resolve_caps(37), Cow::Borrowed(_)));
        }
        // Batches resolve per slice, preserving non-sentinel slices.
        let batch = QueryPlan::Batch(vec![
            PlanSlice::new(QueryPlan::range_unbounded(0.5), vec![0]),
            PlanSlice::new(QueryPlan::knn(1.0, 4), vec![1]),
        ]);
        let QueryPlan::Batch(slices) = batch.resolve_caps(9).into_owned() else {
            panic!("stays a batch");
        };
        assert_eq!(slices[0].plan, QueryPlan::range(0.5, 9));
        assert_eq!(slices[1].plan, QueryPlan::knn(1.0, 4));
        let sentinel_free = QueryPlan::Batch(vec![PlanSlice::new(QueryPlan::knn(1.0, 4), vec![0])]);
        assert!(matches!(sentinel_free.resolve_caps(9), Cow::Borrowed(_)));
    }

    #[test]
    fn invalid_slice_plans_are_reported() {
        let bad = QueryPlan::Batch(vec![PlanSlice::new(QueryPlan::range(1.0, 0), vec![0])]);
        assert_eq!(
            bad.validate(2).unwrap_err(),
            PlanError::ZeroNeighborCount { field: "Range.cap" }
        );
    }
}
