//! Search parameters, results, the per-phase time breakdown, and the
//! deterministic merge of per-shard results ([`ShardMerge`]).

use crate::pipeline::PipelineTrace;
use crate::plan::PlanError;
use rtnn_math::morton::MortonEncoder;
use rtnn_math::{Aabb, Vec3};
use rtnn_optix::LaunchMetrics;
use serde::{Deserialize, Serialize};

/// The two neighbor-search variants the paper targets (Section 2.1).
#[derive(Debug, Clone, Copy, PartialEq, Eq, Serialize, Deserialize)]
pub enum SearchMode {
    /// Fixed-radius (range) search: return up to `K` neighbors within `r`.
    Range,
    /// K-nearest-neighbor search: return the `K` nearest neighbors within `r`.
    Knn,
}

/// The search interface of Section 2.1: every search carries a radius `r`
/// and a maximum neighbor count `K`, for both variants. An unbounded KNN is
/// emulated with a very large `r`, an unbounded range search with a very
/// large `K`.
#[derive(Debug, Clone, Copy, PartialEq, Serialize, Deserialize)]
pub struct SearchParams {
    /// Search radius `r` (must be positive).
    pub radius: f32,
    /// Maximum neighbor count `K` (must be at least 1).
    pub k: usize,
    /// Which variant to run.
    pub mode: SearchMode,
}

impl SearchParams {
    /// Range-search parameters.
    pub fn range(radius: f32, k: usize) -> Self {
        SearchParams {
            radius,
            k,
            mode: SearchMode::Range,
        }
    }

    /// KNN parameters.
    pub fn knn(radius: f32, k: usize) -> Self {
        SearchParams {
            radius,
            k,
            mode: SearchMode::Knn,
        }
    }

    /// Validate the parameters; every violation is a typed
    /// [`PlanError`] naming the offending field.
    pub fn validate(&self) -> Result<(), PlanError> {
        if !self.radius.is_finite() || self.radius <= 0.0 {
            return Err(PlanError::InvalidRadius {
                field: "SearchParams.radius",
                value: self.radius,
            });
        }
        if self.k == 0 {
            return Err(PlanError::ZeroNeighborCount {
                field: "SearchParams.k",
            });
        }
        Ok(())
    }
}

/// The five components of Figure 12: data transfer, optimisation overhead
/// (query reordering + partitioning), BVH builds, the first (scheduling)
/// search, and the actual search. All in simulated milliseconds.
#[derive(Debug, Clone, Copy, Default, PartialEq, Serialize, Deserialize)]
pub struct TimeBreakdown {
    /// Host↔device transfers (`Data`).
    pub data_ms: f64,
    /// Query reordering and partitioning kernels (`Opt`).
    pub opt_ms: f64,
    /// Acceleration-structure builds (`BVH`).
    pub bvh_ms: f64,
    /// The first-hit scheduling launch (`FS`).
    pub fs_ms: f64,
    /// The actual neighbor-search launches (`Search`).
    pub search_ms: f64,
}

impl TimeBreakdown {
    /// End-to-end simulated time.
    pub fn total_ms(&self) -> f64 {
        self.data_ms + self.opt_ms + self.bvh_ms + self.fs_ms + self.search_ms
    }

    /// The five components as `(label, milliseconds)` pairs in the order the
    /// paper's Figure 12 stacks them.
    pub fn components(&self) -> [(&'static str, f64); 5] {
        [
            ("Data", self.data_ms),
            ("Opt", self.opt_ms),
            ("BVH", self.bvh_ms),
            ("FS", self.fs_ms),
            ("Search", self.search_ms),
        ]
    }

    /// Each component as a fraction of the total (zero total gives zeros).
    pub fn fractions(&self) -> [(&'static str, f64); 5] {
        let total = self.total_ms();
        let mut out = self.components();
        for (_, v) in out.iter_mut() {
            *v = if total > 0.0 { *v / total } else { 0.0 };
        }
        out
    }
}

/// The output of one RTNN search.
#[derive(Debug, Clone)]
pub struct SearchResults {
    /// Per-query neighbor ids (indices into the `points` array given to
    /// [`crate::Rtnn::search`]), in the original query order. KNN results
    /// are sorted by increasing distance.
    pub neighbors: Vec<Vec<u32>>,
    /// Per-phase simulated time.
    pub breakdown: TimeBreakdown,
    /// Aggregated metrics of the actual search launches.
    pub search_metrics: LaunchMetrics,
    /// Aggregated metrics of the first-hit scheduling launch (zero when
    /// scheduling is disabled).
    pub fs_metrics: LaunchMetrics,
    /// Number of query partitions searched (1 when partitioning is off).
    pub num_partitions: usize,
    /// Number of partitions after bundling (equals `num_partitions` when
    /// bundling is off or made no difference).
    pub num_bundles: usize,
    /// Per-stage metering of the pipeline execution that produced these
    /// results (see [`crate::pipeline`]): every simulated millisecond
    /// outside the `Data` transfer slot is accounted to exactly one stage.
    pub trace: PipelineTrace,
}

impl SearchResults {
    /// Total number of neighbor links reported.
    pub fn total_neighbors(&self) -> usize {
        self.neighbors.iter().map(Vec::len).sum()
    }

    /// Simulated end-to-end time in milliseconds.
    pub fn total_time_ms(&self) -> f64 {
        self.breakdown.total_ms()
    }
}

// ---------------------------------------------------------------------------
// Shard merging
// ---------------------------------------------------------------------------

/// Deterministic merging of per-shard neighbor lists back into the result a
/// single unsharded index would have produced.
///
/// The engine's traversal visits primitives in a *canonical, structure-
/// independent* order: the LBVH sorts primitives by `(Morton code of the
/// point over the cloud's point bounds, point id)` and traversal walks the
/// leaves left to right, so the hits of a range query arrive in exactly
/// that order — for *every* AABB width the partitioner picks, because the
/// Morton normalisation uses the primitive **centroids** (the points
/// themselves), not the width-dilated boxes. A `ShardMerge` precomputes
/// that rank over the full point set, which lets a sharded execution
/// (`rtnn-serve`'s `ShardedIndex`) reassemble per-shard hit lists into the
/// single-index hit order by sorting on the rank:
///
/// * [`merge_range`](Self::merge_range) — union the per-shard in-radius
///   hits, order by traversal rank, truncate to the cap. Bit-equal to the
///   unsharded result whenever the cap does not truncate (a truncating
///   range search returns *some* `cap` in-range neighbors by contract, and
///   which ones depends on the structure that served it).
/// * [`merge_knn`](Self::merge_knn) — union the per-shard top-`k` lists,
///   keep the `k` smallest by `(distance², id)` — the same total order the
///   KNN heap's distance-sorted output uses. Bit-equal to the unsharded
///   result whenever no two candidates tie exactly at the `k`-th distance
///   (ties inside the heap are resolved by offer order, which sharding
///   cannot observe; seeded float clouds do not produce them).
///
/// The rank also defines the canonical Morton-range sharding:
/// [`traversal_order`](Self::traversal_order) lists the point ids in rank
/// order, and cutting that sequence into contiguous chunks yields spatially
/// compact shards.
#[derive(Debug, Clone)]
pub struct ShardMerge {
    /// `rank[point_id]` = position of the point in the canonical traversal
    /// order.
    rank: Vec<u32>,
}

impl ShardMerge {
    /// Precompute the canonical traversal rank of every point — the same
    /// `(Morton key over the point bounds, id)` sort the LBVH builder uses.
    pub fn new(points: &[Vec3]) -> Self {
        let bounds = Aabb::from_points(points);
        let encoder = MortonEncoder::new(&bounds);
        let mut keyed: Vec<(u64, u32)> = points
            .iter()
            .enumerate()
            .map(|(i, &p)| (encoder.encode(p), i as u32))
            .collect();
        keyed.sort_unstable_by_key(|&(k, id)| (k, id));
        let mut rank = vec![0u32; points.len()];
        for (r, &(_, id)) in keyed.iter().enumerate() {
            rank[id as usize] = r as u32;
        }
        ShardMerge { rank }
    }

    /// Number of points the merge was built over.
    pub fn len(&self) -> usize {
        self.rank.len()
    }

    /// True when built over an empty cloud.
    pub fn is_empty(&self) -> bool {
        self.rank.is_empty()
    }

    /// The canonical traversal rank of a point id.
    #[inline]
    pub fn rank(&self, point_id: u32) -> u32 {
        self.rank[point_id as usize]
    }

    /// Point ids in canonical traversal order — cut this into contiguous
    /// chunks to shard the cloud along the Morton curve.
    pub fn traversal_order(&self) -> Vec<u32> {
        let mut ids: Vec<u32> = (0..self.rank.len() as u32).collect();
        ids.sort_unstable_by_key(|&id| self.rank[id as usize]);
        ids
    }

    /// Merge one query's per-shard range hits (lists of *global* point
    /// ids, disjoint across shards) into single-index hit order: sort by
    /// traversal rank, truncate to `cap`.
    pub fn merge_range(&self, shard_hits: &[Vec<u32>], cap: usize) -> Vec<u32> {
        let mut all: Vec<u32> = shard_hits.iter().flatten().copied().collect();
        all.sort_unstable_by_key(|&id| self.rank[id as usize]);
        all.truncate(cap);
        all
    }

    /// The shared shard-`Gather`: reassemble one query's per-shard hit
    /// lists into the result a single unsharded index would have produced,
    /// dispatching on the plan's search mode. This is the one merge every
    /// sharded execution (`rtnn-serve`'s `ShardedIndex`) runs after its
    /// per-shard pipeline launches.
    pub fn gather_query(
        &self,
        params: &SearchParams,
        query: Vec3,
        points: &[Vec3],
        shard_hits: &[Vec<u32>],
    ) -> Vec<u32> {
        match params.mode {
            SearchMode::Knn => Self::merge_knn(query, points, shard_hits, params.k),
            SearchMode::Range => self.merge_range(shard_hits, params.k),
        }
    }

    /// Merge one query's per-shard KNN lists (lists of *global* point ids,
    /// disjoint across shards) into the `k` nearest, sorted by increasing
    /// `(distance², id)` — the KNN shader's output order. Distances are
    /// recomputed with the exact expression the IS shader evaluates, so
    /// the keys are bit-identical to the on-device ones.
    pub fn merge_knn(query: Vec3, points: &[Vec3], shard_hits: &[Vec<u32>], k: usize) -> Vec<u32> {
        let mut all: Vec<(u32, u32)> = shard_hits
            .iter()
            .flatten()
            .map(|&id| (query.distance_squared(points[id as usize]).to_bits(), id))
            .collect();
        all.sort_unstable();
        all.truncate(k);
        all.into_iter().map(|(_, id)| id).collect()
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn params_validation() {
        assert!(SearchParams::range(1.0, 10).validate().is_ok());
        assert!(SearchParams::knn(0.5, 1).validate().is_ok());
        assert_eq!(
            SearchParams::range(0.0, 10).validate().unwrap_err(),
            PlanError::InvalidRadius {
                field: "SearchParams.radius",
                value: 0.0
            }
        );
        assert!(SearchParams::range(-1.0, 10).validate().is_err());
        assert!(SearchParams::range(f32::NAN, 10).validate().is_err());
        assert_eq!(
            SearchParams::range(1.0, 0).validate().unwrap_err(),
            PlanError::ZeroNeighborCount {
                field: "SearchParams.k"
            }
        );
    }

    #[test]
    fn breakdown_totals_and_fractions() {
        let b = TimeBreakdown {
            data_ms: 1.0,
            opt_ms: 2.0,
            bvh_ms: 3.0,
            fs_ms: 4.0,
            search_ms: 10.0,
        };
        assert_eq!(b.total_ms(), 20.0);
        let f = b.fractions();
        assert_eq!(f[0].0, "Data");
        assert!((f[4].1 - 0.5).abs() < 1e-12);
        let sum: f64 = f.iter().map(|(_, v)| v).sum();
        assert!((sum - 1.0).abs() < 1e-12);
        assert_eq!(TimeBreakdown::default().fractions()[0].1, 0.0);
    }

    #[test]
    fn results_counters() {
        let r = SearchResults {
            neighbors: vec![vec![1, 2], vec![], vec![3]],
            breakdown: TimeBreakdown {
                search_ms: 5.0,
                ..Default::default()
            },
            search_metrics: LaunchMetrics::default(),
            fs_metrics: LaunchMetrics::default(),
            num_partitions: 1,
            num_bundles: 1,
            trace: PipelineTrace::default(),
        };
        assert_eq!(r.total_neighbors(), 3);
        assert_eq!(r.total_time_ms(), 5.0);
    }

    fn scattered(n: usize) -> Vec<Vec3> {
        (0..n)
            .map(|i| {
                let f = i as f32;
                Vec3::new((f * 0.731) % 7.0, (f * 0.413) % 7.0, (f * 0.297) % 7.0)
            })
            .collect()
    }

    #[test]
    fn rank_is_a_permutation_and_orders_the_shards() {
        let points = scattered(200);
        let merge = ShardMerge::new(&points);
        assert_eq!(merge.len(), points.len());
        let order = merge.traversal_order();
        let mut seen = vec![false; points.len()];
        for (r, &id) in order.iter().enumerate() {
            assert_eq!(merge.rank(id) as usize, r);
            assert!(!seen[id as usize]);
            seen[id as usize] = true;
        }
        assert!(seen.iter().all(|&s| s));
    }

    #[test]
    fn merge_range_reproduces_the_unsharded_traversal_order() {
        use crate::backend::{Backend, GpusimBackend, TraversalJob, TraversalKind};
        use rtnn_bvh::BuildParams;
        use rtnn_gpusim::Device;

        let device = Device::rtx_2080();
        let backend = GpusimBackend::new(&device);
        let points = scattered(300);
        let queries = vec![Vec3::new(3.0, 3.0, 3.0), Vec3::new(1.0, 5.5, 2.0)];
        let ids: Vec<u32> = (0..queries.len() as u32).collect();
        let kind = TraversalKind::Range {
            radius: 1.6,
            cap: 10_000,
            sphere_test: true,
        };

        // Unsharded reference: one structure over every point.
        let accel = backend.build(&points, 3.2, BuildParams::default()).unwrap();
        let reference = backend.traverse(
            accel.as_ref(),
            &TraversalJob {
                points: &points,
                queries: &queries,
                query_ids: &ids,
                kind,
            },
        );

        // Three Morton-range shards, each with its own structure (and its
        // own, different, shard-local traversal order).
        let merge = ShardMerge::new(&points);
        let order = merge.traversal_order();
        for (qi, _) in queries.iter().enumerate() {
            let mut shard_hits = Vec::new();
            for chunk in order.chunks(order.len().div_ceil(3)) {
                let shard_points: Vec<Vec3> = chunk.iter().map(|&id| points[id as usize]).collect();
                let shard_accel = backend
                    .build(&shard_points, 3.2, BuildParams::default())
                    .unwrap();
                let local = backend.traverse(
                    shard_accel.as_ref(),
                    &TraversalJob {
                        points: &shard_points,
                        queries: &queries,
                        query_ids: &ids[qi..qi + 1],
                        kind,
                    },
                );
                shard_hits.push(
                    local.payloads[0]
                        .iter()
                        .map(|&l| chunk[l as usize])
                        .collect(),
                );
            }
            assert_eq!(
                merge.merge_range(&shard_hits, 10_000),
                reference.payloads[qi],
                "query {qi}: rank merge must reproduce the single-structure hit order"
            );
        }
    }

    #[test]
    fn merge_knn_keeps_the_global_top_k_in_distance_order() {
        let points = scattered(120);
        let q = Vec3::new(3.5, 3.5, 3.5);
        // Per-shard top-4 lists over an id split.
        let shard_a: Vec<u32> = (0..60).collect();
        let shard_b: Vec<u32> = (60..120).collect();
        let top = |ids: &[u32]| -> Vec<u32> {
            let mut v: Vec<u32> = ids.to_vec();
            v.sort_by_key(|&id| (q.distance_squared(points[id as usize]).to_bits(), id));
            v.truncate(4);
            v
        };
        let merged = ShardMerge::merge_knn(q, &points, &[top(&shard_a), top(&shard_b)], 4);
        // Reference: global top-4 by (d2, id).
        let expected = top(&(0..120).collect::<Vec<u32>>());
        assert_eq!(merged, expected);
        // The merged list is sorted by increasing distance.
        for w in merged.windows(2) {
            assert!(
                q.distance_squared(points[w[0] as usize])
                    <= q.distance_squared(points[w[1] as usize])
            );
        }
    }
}
