//! Search parameters, results and the per-phase time breakdown.

use crate::plan::PlanError;
use rtnn_optix::LaunchMetrics;
use serde::{Deserialize, Serialize};

/// The two neighbor-search variants the paper targets (Section 2.1).
#[derive(Debug, Clone, Copy, PartialEq, Eq, Serialize, Deserialize)]
pub enum SearchMode {
    /// Fixed-radius (range) search: return up to `K` neighbors within `r`.
    Range,
    /// K-nearest-neighbor search: return the `K` nearest neighbors within `r`.
    Knn,
}

/// The search interface of Section 2.1: every search carries a radius `r`
/// and a maximum neighbor count `K`, for both variants. An unbounded KNN is
/// emulated with a very large `r`, an unbounded range search with a very
/// large `K`.
#[derive(Debug, Clone, Copy, PartialEq, Serialize, Deserialize)]
pub struct SearchParams {
    /// Search radius `r` (must be positive).
    pub radius: f32,
    /// Maximum neighbor count `K` (must be at least 1).
    pub k: usize,
    /// Which variant to run.
    pub mode: SearchMode,
}

impl SearchParams {
    /// Range-search parameters.
    pub fn range(radius: f32, k: usize) -> Self {
        SearchParams {
            radius,
            k,
            mode: SearchMode::Range,
        }
    }

    /// KNN parameters.
    pub fn knn(radius: f32, k: usize) -> Self {
        SearchParams {
            radius,
            k,
            mode: SearchMode::Knn,
        }
    }

    /// Validate the parameters; every violation is a typed
    /// [`PlanError`] naming the offending field.
    pub fn validate(&self) -> Result<(), PlanError> {
        if !self.radius.is_finite() || self.radius <= 0.0 {
            return Err(PlanError::InvalidRadius {
                field: "SearchParams.radius",
                value: self.radius,
            });
        }
        if self.k == 0 {
            return Err(PlanError::ZeroNeighborCount {
                field: "SearchParams.k",
            });
        }
        Ok(())
    }
}

/// The five components of Figure 12: data transfer, optimisation overhead
/// (query reordering + partitioning), BVH builds, the first (scheduling)
/// search, and the actual search. All in simulated milliseconds.
#[derive(Debug, Clone, Copy, Default, PartialEq, Serialize, Deserialize)]
pub struct TimeBreakdown {
    /// Host↔device transfers (`Data`).
    pub data_ms: f64,
    /// Query reordering and partitioning kernels (`Opt`).
    pub opt_ms: f64,
    /// Acceleration-structure builds (`BVH`).
    pub bvh_ms: f64,
    /// The first-hit scheduling launch (`FS`).
    pub fs_ms: f64,
    /// The actual neighbor-search launches (`Search`).
    pub search_ms: f64,
}

impl TimeBreakdown {
    /// End-to-end simulated time.
    pub fn total_ms(&self) -> f64 {
        self.data_ms + self.opt_ms + self.bvh_ms + self.fs_ms + self.search_ms
    }

    /// The five components as `(label, milliseconds)` pairs in the order the
    /// paper's Figure 12 stacks them.
    pub fn components(&self) -> [(&'static str, f64); 5] {
        [
            ("Data", self.data_ms),
            ("Opt", self.opt_ms),
            ("BVH", self.bvh_ms),
            ("FS", self.fs_ms),
            ("Search", self.search_ms),
        ]
    }

    /// Each component as a fraction of the total (zero total gives zeros).
    pub fn fractions(&self) -> [(&'static str, f64); 5] {
        let total = self.total_ms();
        let mut out = self.components();
        for (_, v) in out.iter_mut() {
            *v = if total > 0.0 { *v / total } else { 0.0 };
        }
        out
    }
}

/// The output of one RTNN search.
#[derive(Debug, Clone)]
pub struct SearchResults {
    /// Per-query neighbor ids (indices into the `points` array given to
    /// [`crate::Rtnn::search`]), in the original query order. KNN results
    /// are sorted by increasing distance.
    pub neighbors: Vec<Vec<u32>>,
    /// Per-phase simulated time.
    pub breakdown: TimeBreakdown,
    /// Aggregated metrics of the actual search launches.
    pub search_metrics: LaunchMetrics,
    /// Aggregated metrics of the first-hit scheduling launch (zero when
    /// scheduling is disabled).
    pub fs_metrics: LaunchMetrics,
    /// Number of query partitions searched (1 when partitioning is off).
    pub num_partitions: usize,
    /// Number of partitions after bundling (equals `num_partitions` when
    /// bundling is off or made no difference).
    pub num_bundles: usize,
}

impl SearchResults {
    /// Total number of neighbor links reported.
    pub fn total_neighbors(&self) -> usize {
        self.neighbors.iter().map(Vec::len).sum()
    }

    /// Simulated end-to-end time in milliseconds.
    pub fn total_time_ms(&self) -> f64 {
        self.breakdown.total_ms()
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn params_validation() {
        assert!(SearchParams::range(1.0, 10).validate().is_ok());
        assert!(SearchParams::knn(0.5, 1).validate().is_ok());
        assert_eq!(
            SearchParams::range(0.0, 10).validate().unwrap_err(),
            PlanError::InvalidRadius {
                field: "SearchParams.radius",
                value: 0.0
            }
        );
        assert!(SearchParams::range(-1.0, 10).validate().is_err());
        assert!(SearchParams::range(f32::NAN, 10).validate().is_err());
        assert_eq!(
            SearchParams::range(1.0, 0).validate().unwrap_err(),
            PlanError::ZeroNeighborCount {
                field: "SearchParams.k"
            }
        );
    }

    #[test]
    fn breakdown_totals_and_fractions() {
        let b = TimeBreakdown {
            data_ms: 1.0,
            opt_ms: 2.0,
            bvh_ms: 3.0,
            fs_ms: 4.0,
            search_ms: 10.0,
        };
        assert_eq!(b.total_ms(), 20.0);
        let f = b.fractions();
        assert_eq!(f[0].0, "Data");
        assert!((f[4].1 - 0.5).abs() < 1e-12);
        let sum: f64 = f.iter().map(|(_, v)| v).sum();
        assert!((sum - 1.0).abs() < 1e-12);
        assert_eq!(TimeBreakdown::default().fractions()[0].1, 0.0);
    }

    #[test]
    fn results_counters() {
        let r = SearchResults {
            neighbors: vec![vec![1, 2], vec![], vec![3]],
            breakdown: TimeBreakdown {
                search_ms: 5.0,
                ..Default::default()
            },
            search_metrics: LaunchMetrics::default(),
            fs_metrics: LaunchMetrics::default(),
            num_partitions: 1,
            num_bundles: 1,
        };
        assert_eq!(r.total_neighbors(), 3);
        assert_eq!(r.total_time_ms(), 5.0);
    }
}
