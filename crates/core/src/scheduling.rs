//! Spatially-ordered query scheduling (Section 4 of the paper).
//!
//! A direct query-to-ray mapping launches queries in input order, which can
//! be arbitrary; spatially distant queries end up in the same warp and
//! diverge. The scheduler:
//!
//! 1. runs a truncated launch (`K = 1`) that returns, for every query, the
//!    first leaf AABB that encloses it — itself a ray-tracing pass that
//!    terminates at the first IS call, so it is cheap (the `FS` component of
//!    Figure 12 is barely visible);
//! 2. sorts queries by the Morton (Z-order) code of that AABB's centre
//!    (which is the corresponding search point), falling back to the
//!    query's own position for queries no AABB encloses;
//! 3. produces a permutation that the subsequent search launches use as
//!    their launch-index → query mapping, so every warp of 32 consecutive
//!    rays holds spatially close queries.
//!
//! The Morton sort runs as a device kernel in the paper (a CUDA sort over
//! first-hit data already resident in device memory); here it is charged to
//! the simulated device as an SM kernel with `O(log n)` work per thread.

use crate::backend::Backend;
use crate::pipeline::{CoherenceSchedule, ScheduleCx, ScheduleStage};
use crate::plan::PlanError;
use crate::shaders::{FirstHitProgram, QueryIndexing, NO_HIT};
use rtnn_gpusim::kernel::{point_address, run_sm_kernel, SmKernelConfig, ThreadWork};
use rtnn_gpusim::{Device, IsShaderKind, KernelMetrics};
use rtnn_math::morton::MortonEncoder;
use rtnn_math::{Aabb, Vec3};
use rtnn_optix::{AccelRef, Gas, LaunchMetrics, Pipeline};
use rtnn_parallel::par_sort_by_key;

/// The outcome of the scheduling pass.
#[derive(Debug, Clone)]
pub struct QuerySchedule {
    /// `order[i]` is the query id launched at index `i`. A permutation of
    /// `0..num_queries`.
    pub order: Vec<u32>,
    /// Metrics of the first-hit launch (the `FS` component).
    pub fs_metrics: LaunchMetrics,
    /// Metrics of the sort kernel (part of the `Opt` component).
    pub sort_metrics: KernelMetrics,
}

impl QuerySchedule {
    /// The identity schedule (used when scheduling is disabled).
    pub fn identity(num_queries: usize) -> Self {
        QuerySchedule {
            order: (0..num_queries as u32).collect(),
            fs_metrics: LaunchMetrics::default(),
            sort_metrics: KernelMetrics::default(),
        }
    }

    /// Number of scheduled queries.
    pub fn len(&self) -> usize {
        self.order.len()
    }

    /// True if the schedule is empty.
    pub fn is_empty(&self) -> bool {
        self.order.is_empty()
    }
}

/// Compute the spatially-ordered schedule for `queries` against the global
/// GAS built over `points` (Listing 2 of the paper), on the default
/// simulated-pipeline backend. Prefer [`schedule_queries_on`] when a
/// [`Backend`] and a full structure handle are already in hand — this
/// convenience wrapper only has the raw GAS, so it drives the pipeline
/// directly rather than fabricating an [`AccelRef`] with a made-up AABB
/// width.
pub fn schedule_queries(
    device: &Device,
    gas: &Gas,
    points: &[Vec3],
    queries: &[Vec3],
) -> QuerySchedule {
    if queries.is_empty() {
        return QuerySchedule::identity(0);
    }
    let pipeline = Pipeline::new(device);
    let program = FirstHitProgram {
        queries,
        indexing: QueryIndexing::Identity,
    };
    let launch = pipeline.launch(
        gas,
        queries.len(),
        &program,
        IsShaderKind::RangeNoSphereTest,
    );
    let ids: Vec<u32> = (0..queries.len() as u32).collect();
    let hits: Vec<Vec<u32>> = launch
        .payloads
        .iter()
        .map(|&hit| if hit == NO_HIT { Vec::new() } else { vec![hit] })
        .collect();
    let keys = anchor_keys(points, queries, &ids, &hits);
    let sort_metrics = charge_sort_kernel(device, queries.len());
    let mut order = ids;
    par_sort_by_key(&mut order, |&q| (keys[q as usize], q));
    QuerySchedule {
        order,
        fs_metrics: launch.metrics,
        sort_metrics,
    }
}

/// [`schedule_queries`] against an arbitrary backend and structure handle —
/// a thin wrapper over the pipeline's [`CoherenceSchedule`] stage, which
/// is what the engine, [`crate::Index`] and the batch path all drive.
pub fn schedule_queries_on(
    backend: &dyn Backend,
    accel: AccelRef<'_>,
    points: &[Vec3],
    queries: &[Vec3],
) -> QuerySchedule {
    let ids: Vec<u32> = (0..queries.len() as u32).collect();
    CoherenceSchedule.schedule(&ScheduleCx {
        backend,
        accel: Some(accel),
        points,
        queries,
        query_ids: &ids,
    })
}

/// Morton key of every covered query's first-hit anchor: the first-hit
/// point when one exists, the query's own position otherwise. `hits[i]` is
/// the first-hit payload of query `ids[i]`.
pub(crate) fn anchor_keys(
    points: &[Vec3],
    queries: &[Vec3],
    ids: &[u32],
    hits: &[Vec<u32>],
) -> Vec<u64> {
    let scene_bounds = scene_bounds_for(points, queries);
    let encoder = MortonEncoder::new(&scene_bounds);
    ids.iter()
        .zip(hits)
        .map(|(&qid, hit)| {
            let anchor = match hit.first() {
                Some(&h) => points[h as usize],
                None => queries[qid as usize],
            };
            encoder.encode(anchor)
        })
        .collect()
}

/// Charge the query sort over `n` keys to the device as an SM kernel
/// (`O(log n)` comparisons + one key read per thread).
pub(crate) fn charge_sort_kernel(device: &Device, n: usize) -> KernelMetrics {
    let log_n = (n as f64).log2().ceil().max(1.0) as u64;
    let (_, sort_metrics) = run_sm_kernel(device, n, SmKernelConfig::default(), |i| {
        ((), ThreadWork::new(log_n, vec![point_address(i as u32)]))
    });
    sort_metrics
}

/// Scene bounds covering both points and queries (queries may lie outside
/// the point cloud).
fn scene_bounds_for(points: &[Vec3], queries: &[Vec3]) -> Aabb {
    let mut b = Aabb::from_points(points);
    for &q in queries {
        b.grow_point(q);
    }
    b
}

/// Generate a raster-scan ordering of queries over a uniform grid — the
/// "ordered" configuration of the Figure 5 / Figure 6 experiment. Returns a
/// permutation of query ids such that consecutive ids fall in consecutive
/// grid cells.
///
/// `cells_per_axis == 0` is rejected with a typed
/// [`PlanError::ZeroCellsPerAxis`] (it used to degenerate silently: an
/// infinite cell size that collapsed the raster to input order), matching
/// the [`PlanError::ZeroGridBudget`]-style validation of the grid budget.
pub fn raster_order(queries: &[Vec3], cells_per_axis: u32) -> Result<Vec<u32>, PlanError> {
    if cells_per_axis == 0 {
        return Err(PlanError::ZeroCellsPerAxis {
            field: "raster_order.cells_per_axis",
        });
    }
    if queries.is_empty() {
        return Ok(Vec::new());
    }
    let bounds = Aabb::from_points(queries);
    if bounds.is_empty() || bounds.longest_extent() <= 0.0 {
        return Ok((0..queries.len() as u32).collect());
    }
    let grid = rtnn_math::UniformGrid::new(bounds, bounds.longest_extent() / cells_per_axis as f32);
    let mut order: Vec<u32> = (0..queries.len() as u32).collect();
    par_sort_by_key(&mut order, |&q| {
        (grid.cell_index(grid.cell_of(queries[q as usize])), q)
    });
    Ok(order)
}

#[cfg(test)]
mod tests {
    use super::*;
    use rtnn_bvh::BuildParams;

    fn grid_points(n_per_axis: usize) -> Vec<Vec3> {
        let mut pts = Vec::new();
        for x in 0..n_per_axis {
            for y in 0..n_per_axis {
                for z in 0..n_per_axis {
                    pts.push(Vec3::new(x as f32, y as f32, z as f32));
                }
            }
        }
        pts
    }

    fn is_permutation(order: &[u32], n: usize) -> bool {
        let mut seen = vec![false; n];
        for &i in order {
            if (i as usize) >= n || seen[i as usize] {
                return false;
            }
            seen[i as usize] = true;
        }
        order.len() == n
    }

    #[test]
    fn identity_schedule() {
        let s = QuerySchedule::identity(5);
        assert_eq!(s.order, vec![0, 1, 2, 3, 4]);
        assert_eq!(s.len(), 5);
        assert!(!s.is_empty());
        assert!(QuerySchedule::identity(0).is_empty());
    }

    #[test]
    fn schedule_is_a_permutation_and_groups_neighbors() {
        let device = Device::rtx_2080();
        let points = grid_points(8);
        let radius = 0.9;
        let gas = Gas::build_from_points(&device, &points, radius, BuildParams::default()).unwrap();

        // Queries deliberately scrambled: interleave far-apart corners.
        let mut queries = Vec::new();
        for i in 0..256 {
            let corner = if i % 2 == 0 { 0.5 } else { 6.5 };
            queries.push(Vec3::new(corner + (i % 3) as f32 * 0.1, corner, corner));
        }
        let schedule = schedule_queries(&device, &gas, &points, &queries);
        assert!(is_permutation(&schedule.order, queries.len()));
        assert!(schedule.fs_metrics.active_rays == queries.len() as u64);
        // Every ray in the FS pass terminates after one IS call.
        assert_eq!(schedule.fs_metrics.is_calls, queries.len() as u64);
        assert!(schedule.sort_metrics.time_ms > 0.0);

        // After scheduling, consecutive queries are spatially close: measure
        // the average distance between neighbors in launch order.
        let avg_step = |order: &[u32]| {
            order
                .windows(2)
                .map(|w| queries[w[0] as usize].distance(queries[w[1] as usize]) as f64)
                .sum::<f64>()
                / (order.len() - 1) as f64
        };
        let direct: Vec<u32> = (0..queries.len() as u32).collect();
        assert!(avg_step(&schedule.order) < avg_step(&direct) * 0.5);
    }

    #[test]
    fn queries_outside_the_cloud_are_still_scheduled() {
        let device = Device::rtx_2080();
        let points = grid_points(4);
        let gas = Gas::build_from_points(&device, &points, 0.4, BuildParams::default()).unwrap();
        let queries = vec![
            Vec3::new(100.0, 100.0, 100.0), // no enclosing AABB
            Vec3::new(1.0, 1.0, 1.0),
            Vec3::new(101.0, 100.0, 100.0),
        ];
        let schedule = schedule_queries(&device, &gas, &points, &queries);
        assert!(is_permutation(&schedule.order, 3));
        // The two far-away queries should be adjacent in the schedule.
        let pos = |q: u32| schedule.order.iter().position(|&x| x == q).unwrap();
        assert_eq!((pos(0) as i64 - pos(2) as i64).abs(), 1);
    }

    #[test]
    fn empty_query_set() {
        let device = Device::rtx_2080();
        let points = grid_points(3);
        let gas = Gas::build_from_points(&device, &points, 0.4, BuildParams::default()).unwrap();
        let schedule = schedule_queries(&device, &gas, &points, &[]);
        assert!(schedule.is_empty());
    }

    #[test]
    fn raster_order_is_a_permutation_sorted_by_cell() {
        let queries: Vec<Vec3> = (0..500)
            .map(|i| {
                Vec3::new(
                    (i * 7 % 50) as f32,
                    (i * 13 % 50) as f32,
                    (i * 29 % 50) as f32,
                )
            })
            .collect();
        let order = raster_order(&queries, 10).unwrap();
        assert!(is_permutation(&order, queries.len()));
        // Degenerate cases.
        assert!(raster_order(&[], 8).unwrap().is_empty());
        assert_eq!(raster_order(&[Vec3::ZERO; 4], 8).unwrap().len(), 4);
    }

    #[test]
    fn raster_order_rejects_a_zero_cell_grid_with_a_typed_error() {
        let queries = vec![Vec3::ZERO, Vec3::ONE];
        let err = raster_order(&queries, 0).unwrap_err();
        assert_eq!(
            err,
            PlanError::ZeroCellsPerAxis {
                field: "raster_order.cells_per_axis"
            }
        );
        let msg = err.to_string();
        assert!(
            msg.contains("raster_order.cells_per_axis") && msg.contains("0"),
            "error must name the field and the value: {msg}"
        );
        // An empty query set is still a configuration error at zero cells:
        // validation precedes the fast path.
        assert!(raster_order(&[], 0).is_err());
    }
}
