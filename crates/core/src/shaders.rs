//! The RTNN shader programs (the paper's Listing 1), expressed against the
//! `rtnn-optix` shader interface.
//!
//! Three programs:
//!
//! * [`RangeProgram`] — fixed-radius search: the IS shader performs the
//!   sphere test (optionally elided when the partition's AABB is inscribed
//!   in the search sphere, Section 5.1), appends the neighbor, and
//!   terminates the ray once `K` neighbors are recorded (the AH shader of
//!   Listing 1).
//! * [`KnnProgram`] — K-nearest-neighbor search: the IS shader maintains a
//!   bounded max-heap of the `K` closest points seen so far and never
//!   terminates early (every candidate inside the AABB must be examined).
//! * [`FirstHitProgram`] — the truncated launch used by query scheduling
//!   (Section 4, Listing 2): terminate on the very first intersected leaf
//!   AABB and record which primitive it was.

use rtnn_math::{Ray, Vec3};
use rtnn_optix::{IsVerdict, RayProgram};

/// Sentinel for "no first hit found".
pub const NO_HIT: u32 = u32::MAX;

/// Maps launch indices to query ids: either the identity (launch `i` is
/// query `i`) or an explicit permutation / subset (scheduled order,
/// per-partition query lists).
#[derive(Debug, Clone, Copy)]
pub enum QueryIndexing<'a> {
    /// Launch index == query index.
    Identity,
    /// `ids[launch_index]` is the query index.
    Mapped(&'a [u32]),
}

impl<'a> QueryIndexing<'a> {
    /// Resolve a launch index to a query id.
    #[inline]
    pub fn query_id(&self, launch_index: u32) -> u32 {
        match self {
            QueryIndexing::Identity => launch_index,
            QueryIndexing::Mapped(ids) => ids[launch_index as usize],
        }
    }

    /// Number of launches needed to cover this indexing given `n_queries`.
    pub fn launch_count(&self, n_queries: usize) -> usize {
        match self {
            QueryIndexing::Identity => n_queries,
            QueryIndexing::Mapped(ids) => ids.len(),
        }
    }
}

// ---------------------------------------------------------------------------
// Range search
// ---------------------------------------------------------------------------

/// Payload of the range-search program: the neighbor ids found so far.
pub type RangePayload = Vec<u32>;

/// Fixed-radius search shader set.
#[derive(Debug, Clone)]
pub struct RangeProgram<'a> {
    /// Search points (AABB centres / sphere centres).
    pub points: &'a [Vec3],
    /// Query positions.
    pub queries: &'a [Vec3],
    /// Launch-index → query-id mapping.
    pub indexing: QueryIndexing<'a>,
    /// Search radius.
    pub radius: f32,
    /// Maximum neighbor count; the ray terminates when reached.
    pub k: usize,
    /// Whether the IS shader performs the sphere test. Partitions whose AABB
    /// is inscribed in the search sphere skip it (Section 5.1); the
    /// approximate mode of Section 8 skips it too (accepting a √3·r bound).
    pub sphere_test: bool,
}

impl<'a> RayProgram for RangeProgram<'a> {
    type Payload = RangePayload;

    fn ray_gen(&self, launch_index: u32) -> Option<(Ray, RangePayload)> {
        let q = self.queries[self.indexing.query_id(launch_index) as usize];
        Some((Ray::point_probe(q), Vec::new()))
    }

    fn intersection(
        &self,
        launch_index: u32,
        prim_id: u32,
        payload: &mut RangePayload,
    ) -> IsVerdict {
        if self.sphere_test {
            let q = self.queries[self.indexing.query_id(launch_index) as usize];
            let p = self.points[prim_id as usize];
            if q.distance_squared(p) >= self.radius * self.radius {
                return IsVerdict::Ignore;
            }
        }
        payload.push(prim_id);
        if payload.len() >= self.k {
            IsVerdict::AcceptAndTerminate
        } else {
            IsVerdict::Accept
        }
    }
}

// ---------------------------------------------------------------------------
// KNN search
// ---------------------------------------------------------------------------

/// A bounded max-heap of `(distance², point id)` pairs — the per-ray
/// priority queue of the KNN IS shader. Distances are stored as order-
/// preserving `u32` bit patterns (all distances are non-negative floats).
#[derive(Debug, Clone, Default)]
pub struct KnnHeap {
    entries: Vec<(u32, u32)>,
}

impl KnnHeap {
    /// Number of neighbors currently held.
    pub fn len(&self) -> usize {
        self.entries.len()
    }

    /// True if no neighbors are held.
    pub fn is_empty(&self) -> bool {
        self.entries.is_empty()
    }

    /// The largest distance² currently held (as an f32), if any.
    pub fn worst_distance_squared(&self) -> Option<f32> {
        self.entries.first().map(|&(bits, _)| f32::from_bits(bits))
    }

    /// Offer a candidate; keeps only the `k` closest.
    pub fn offer(&mut self, dist_sq: f32, id: u32, k: usize) {
        debug_assert!(dist_sq >= 0.0);
        let key = dist_sq.to_bits();
        if self.entries.len() < k {
            self.entries.push((key, id));
            self.sift_up(self.entries.len() - 1);
        } else if let Some(&(worst, _)) = self.entries.first() {
            if key < worst {
                self.entries[0] = (key, id);
                self.sift_down(0);
            }
        }
    }

    fn sift_up(&mut self, mut i: usize) {
        while i > 0 {
            let parent = (i - 1) / 2;
            if self.entries[i].0 > self.entries[parent].0 {
                self.entries.swap(i, parent);
                i = parent;
            } else {
                break;
            }
        }
    }

    fn sift_down(&mut self, mut i: usize) {
        let n = self.entries.len();
        loop {
            let (l, r) = (2 * i + 1, 2 * i + 2);
            let mut largest = i;
            if l < n && self.entries[l].0 > self.entries[largest].0 {
                largest = l;
            }
            if r < n && self.entries[r].0 > self.entries[largest].0 {
                largest = r;
            }
            if largest == i {
                break;
            }
            self.entries.swap(i, largest);
            i = largest;
        }
    }

    /// Drain into point ids sorted by increasing distance.
    pub fn into_sorted_ids(mut self) -> Vec<u32> {
        self.entries.sort_by_key(|&(d, id)| (d, id));
        self.entries.into_iter().map(|(_, id)| id).collect()
    }
}

/// KNN search shader set.
#[derive(Debug, Clone)]
pub struct KnnProgram<'a> {
    /// Search points.
    pub points: &'a [Vec3],
    /// Query positions.
    pub queries: &'a [Vec3],
    /// Launch-index → query-id mapping.
    pub indexing: QueryIndexing<'a>,
    /// Search radius bounding the returned neighbors.
    pub radius: f32,
    /// Number of nearest neighbors to keep.
    pub k: usize,
}

impl<'a> RayProgram for KnnProgram<'a> {
    type Payload = KnnHeap;

    fn ray_gen(&self, launch_index: u32) -> Option<(Ray, KnnHeap)> {
        let q = self.queries[self.indexing.query_id(launch_index) as usize];
        Some((Ray::point_probe(q), KnnHeap::default()))
    }

    fn intersection(&self, launch_index: u32, prim_id: u32, payload: &mut KnnHeap) -> IsVerdict {
        let q = self.queries[self.indexing.query_id(launch_index) as usize];
        let p = self.points[prim_id as usize];
        let d2 = q.distance_squared(p);
        if d2 >= self.radius * self.radius {
            return IsVerdict::Ignore;
        }
        payload.offer(d2, prim_id, self.k);
        IsVerdict::Accept
    }
}

// ---------------------------------------------------------------------------
// First-hit (scheduling) pass
// ---------------------------------------------------------------------------

/// Payload of the first-hit pass: the id of the first intersected primitive
/// AABB, or [`NO_HIT`].
pub type FirstHitPayload = u32;

/// The truncated launch of Listing 2: `traceRays(queries, 1, radius, bvh)`.
#[derive(Debug, Clone)]
pub struct FirstHitProgram<'a> {
    /// Query positions.
    pub queries: &'a [Vec3],
    /// Launch-index → query-id mapping (identity for a full-query-set pass;
    /// a batch's shared scheduling pass maps onto the covered subset).
    pub indexing: QueryIndexing<'a>,
}

impl<'a> RayProgram for FirstHitProgram<'a> {
    type Payload = FirstHitPayload;

    fn ray_gen(&self, launch_index: u32) -> Option<(Ray, FirstHitPayload)> {
        let q = self.queries[self.indexing.query_id(launch_index) as usize];
        Some((Ray::point_probe(q), NO_HIT))
    }

    fn intersection(
        &self,
        _launch_index: u32,
        prim_id: u32,
        payload: &mut FirstHitPayload,
    ) -> IsVerdict {
        // Any enclosing AABB is an equally good spatial hint (Section 4), so
        // no sphere test: accept the very first one and stop.
        *payload = prim_id;
        IsVerdict::AcceptAndTerminate
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn query_indexing_modes() {
        let ids = [5u32, 9, 2];
        let mapped = QueryIndexing::Mapped(&ids);
        assert_eq!(mapped.query_id(1), 9);
        assert_eq!(mapped.launch_count(100), 3);
        let identity = QueryIndexing::Identity;
        assert_eq!(identity.query_id(7), 7);
        assert_eq!(identity.launch_count(100), 100);
    }

    #[test]
    fn knn_heap_keeps_the_k_closest() {
        let mut heap = KnnHeap::default();
        let k = 3;
        for (i, d) in [9.0f32, 1.0, 4.0, 16.0, 0.25, 2.25].iter().enumerate() {
            heap.offer(*d, i as u32, k);
        }
        assert_eq!(heap.len(), 3);
        // Closest three distances are 0.25 (id 4), 1.0 (id 1), 2.25 (id 5).
        assert_eq!(heap.into_sorted_ids(), vec![4, 1, 5]);
    }

    #[test]
    fn knn_heap_handles_fewer_candidates_than_k() {
        let mut heap = KnnHeap::default();
        heap.offer(1.0, 7, 10);
        heap.offer(0.5, 3, 10);
        assert_eq!(heap.len(), 2);
        assert!(!heap.is_empty());
        assert_eq!(heap.worst_distance_squared(), Some(1.0));
        assert_eq!(heap.into_sorted_ids(), vec![3, 7]);
    }

    #[test]
    fn knn_heap_ties_are_deterministic() {
        let mut heap = KnnHeap::default();
        heap.offer(1.0, 9, 2);
        heap.offer(1.0, 3, 2);
        heap.offer(1.0, 7, 2);
        let ids = heap.into_sorted_ids();
        assert_eq!(ids.len(), 2);
        // Equal keys sort by id, and the replacement policy only replaces on
        // strictly smaller distances, so the first two offered survive.
        assert_eq!(ids, vec![3, 9]);
    }

    #[test]
    fn range_program_sphere_test_filters_corners() {
        let points = vec![Vec3::ZERO];
        let queries = vec![Vec3::new(0.9, 0.9, 0.9)]; // inside AABB(width 2), outside unit sphere
        let with_test = RangeProgram {
            points: &points,
            queries: &queries,
            indexing: QueryIndexing::Identity,
            radius: 1.0,
            k: 8,
            sphere_test: true,
        };
        let without_test = RangeProgram {
            sphere_test: false,
            ..with_test.clone()
        };
        let mut payload = Vec::new();
        assert_eq!(
            with_test.intersection(0, 0, &mut payload),
            IsVerdict::Ignore
        );
        assert!(payload.is_empty());
        assert_ne!(
            without_test.intersection(0, 0, &mut payload),
            IsVerdict::Ignore
        );
        assert_eq!(payload, vec![0]);
    }

    #[test]
    fn range_program_terminates_at_k() {
        let points = vec![
            Vec3::ZERO,
            Vec3::new(0.1, 0.0, 0.0),
            Vec3::new(0.2, 0.0, 0.0),
        ];
        let queries = vec![Vec3::ZERO];
        let prog = RangeProgram {
            points: &points,
            queries: &queries,
            indexing: QueryIndexing::Identity,
            radius: 1.0,
            k: 2,
            sphere_test: true,
        };
        let mut payload = Vec::new();
        assert_eq!(prog.intersection(0, 0, &mut payload), IsVerdict::Accept);
        assert_eq!(
            prog.intersection(0, 1, &mut payload),
            IsVerdict::AcceptAndTerminate
        );
        assert_eq!(payload.len(), 2);
    }

    #[test]
    fn knn_program_rejects_points_outside_radius() {
        let points = vec![Vec3::new(5.0, 0.0, 0.0), Vec3::new(0.1, 0.0, 0.0)];
        let queries = vec![Vec3::ZERO];
        let prog = KnnProgram {
            points: &points,
            queries: &queries,
            indexing: QueryIndexing::Identity,
            radius: 1.0,
            k: 4,
        };
        let mut heap = KnnHeap::default();
        assert_eq!(prog.intersection(0, 0, &mut heap), IsVerdict::Ignore);
        assert_eq!(prog.intersection(0, 1, &mut heap), IsVerdict::Accept);
        assert_eq!(heap.into_sorted_ids(), vec![1]);
    }

    #[test]
    fn first_hit_program_terminates_immediately() {
        let queries = vec![Vec3::ZERO];
        let prog = FirstHitProgram {
            queries: &queries,
            indexing: QueryIndexing::Identity,
        };
        let (_, initial) = prog.ray_gen(0).unwrap();
        assert_eq!(initial, NO_HIT);
        let mut payload = initial;
        assert_eq!(
            prog.intersection(0, 42, &mut payload),
            IsVerdict::AcceptAndTerminate
        );
        assert_eq!(payload, 42);
    }
}
