//! Brute-force oracles and result-contract checkers.
//!
//! Used by the unit/integration/property tests of this crate, by the
//! `rtnn-baselines` tests and by the examples to demonstrate that the
//! accelerated search returns the same neighbors as an exhaustive scan.

use crate::result::{SearchMode, SearchParams};
use rtnn_math::Vec3;

/// All point ids strictly within `radius` of `query` (unordered).
pub fn brute_force_range(points: &[Vec3], query: Vec3, radius: f32) -> Vec<u32> {
    let r2 = radius * radius;
    points
        .iter()
        .enumerate()
        .filter(|(_, &p)| query.distance_squared(p) < r2)
        .map(|(i, _)| i as u32)
        .collect()
}

/// The `k` nearest point ids within `radius` of `query`, sorted by
/// increasing distance (ties broken by id).
pub fn brute_force_knn(points: &[Vec3], query: Vec3, radius: f32, k: usize) -> Vec<u32> {
    let r2 = radius * radius;
    let mut candidates: Vec<(f32, u32)> = points
        .iter()
        .enumerate()
        .filter_map(|(i, &p)| {
            let d2 = query.distance_squared(p);
            (d2 < r2).then_some((d2, i as u32))
        })
        .collect();
    candidates.sort_by(|a, b| a.0.partial_cmp(&b.0).unwrap().then(a.1.cmp(&b.1)));
    candidates.truncate(k);
    candidates.into_iter().map(|(_, i)| i).collect()
}

/// Check one query's result against the library contract.
///
/// * Range: every reported id is within `r`, ids are unique, and the count is
///   `min(K, |neighbors within r|)` (which K of them is unspecified).
/// * KNN: the reported distances are exactly the `min(K, |within r|)` smallest
///   distances (identities may differ only among equidistant points).
pub fn check_result(
    points: &[Vec3],
    query: Vec3,
    params: &SearchParams,
    result: &[u32],
) -> Result<(), String> {
    let r2 = params.radius * params.radius;
    // Uniqueness and radius bound.
    let mut seen = std::collections::HashSet::new();
    for &id in result {
        if id as usize >= points.len() {
            return Err(format!("neighbor id {id} out of range"));
        }
        if !seen.insert(id) {
            return Err(format!("neighbor id {id} reported twice"));
        }
        let d2 = query.distance_squared(points[id as usize]);
        if d2 >= r2 {
            return Err(format!(
                "neighbor {id} at distance² {d2} is outside radius² {r2}"
            ));
        }
    }
    let exhaustive = brute_force_range(points, query, params.radius);
    let expected_count = exhaustive.len().min(params.k);
    if result.len() != expected_count {
        return Err(format!(
            "expected {expected_count} neighbors (of {} within r, K={}), got {}",
            exhaustive.len(),
            params.k,
            result.len()
        ));
    }
    if params.mode == SearchMode::Knn {
        let expected = brute_force_knn(points, query, params.radius, params.k);
        let dist = |id: u32| query.distance_squared(points[id as usize]);
        let mut got: Vec<f32> = result.iter().map(|&i| dist(i)).collect();
        let mut want: Vec<f32> = expected.iter().map(|&i| dist(i)).collect();
        got.sort_by(|a, b| a.partial_cmp(b).unwrap());
        want.sort_by(|a, b| a.partial_cmp(b).unwrap());
        for (g, w) in got.iter().zip(want.iter()) {
            if (g - w).abs() > 1e-5 * (1.0 + w.abs()) {
                return Err(format!("KNN distance mismatch: got {g}, expected {w}"));
            }
        }
    }
    Ok(())
}

/// Check every query of a batch; returns the index of the first failing
/// query and its error.
pub fn check_all(
    points: &[Vec3],
    queries: &[Vec3],
    params: &SearchParams,
    results: &[Vec<u32>],
) -> Result<(), (usize, String)> {
    assert_eq!(
        queries.len(),
        results.len(),
        "one result list per query expected"
    );
    for (qi, (q, res)) in queries.iter().zip(results.iter()).enumerate() {
        check_result(points, *q, params, res).map_err(|e| (qi, e))?;
    }
    Ok(())
}

#[cfg(test)]
mod tests {
    use super::*;

    fn sample() -> Vec<Vec3> {
        vec![
            Vec3::new(0.0, 0.0, 0.0),
            Vec3::new(0.5, 0.0, 0.0),
            Vec3::new(0.0, 0.9, 0.0),
            Vec3::new(2.0, 0.0, 0.0),
            Vec3::new(0.1, 0.1, 0.1),
        ]
    }

    #[test]
    fn brute_force_range_matches_manual_count() {
        let ids = brute_force_range(&sample(), Vec3::ZERO, 1.0);
        let mut sorted = ids.clone();
        sorted.sort();
        assert_eq!(sorted, vec![0, 1, 2, 4]);
        assert!(brute_force_range(&sample(), Vec3::new(10.0, 0.0, 0.0), 1.0).is_empty());
    }

    #[test]
    fn brute_force_knn_orders_by_distance() {
        let ids = brute_force_knn(&sample(), Vec3::ZERO, 10.0, 3);
        assert_eq!(ids, vec![0, 4, 1]);
        // Radius bound applies before the K cut.
        assert_eq!(brute_force_knn(&sample(), Vec3::ZERO, 0.4, 3), vec![0, 4]);
        // k larger than the candidate set.
        assert_eq!(brute_force_knn(&sample(), Vec3::ZERO, 0.05, 10), vec![0]);
    }

    #[test]
    fn check_result_accepts_correct_answers() {
        let points = sample();
        let params = SearchParams::range(1.0, 10);
        let ok = brute_force_range(&points, Vec3::ZERO, 1.0);
        assert!(check_result(&points, Vec3::ZERO, &params, &ok).is_ok());
        // Range with K cap: any 2 of the 4 in-radius points are acceptable.
        let params_capped = SearchParams::range(1.0, 2);
        assert!(check_result(&points, Vec3::ZERO, &params_capped, &[1, 2]).is_ok());
        // KNN must report the closest distances.
        let params_knn = SearchParams::knn(1.0, 2);
        assert!(check_result(&points, Vec3::ZERO, &params_knn, &[0, 4]).is_ok());
    }

    #[test]
    fn check_result_rejects_contract_violations() {
        let points = sample();
        let params = SearchParams::range(1.0, 10);
        // Too few neighbors.
        assert!(check_result(&points, Vec3::ZERO, &params, &[0, 1]).is_err());
        // Out-of-radius neighbor.
        assert!(check_result(&points, Vec3::ZERO, &params, &[0, 1, 2, 3]).is_err());
        // Duplicate.
        assert!(check_result(&points, Vec3::ZERO, &params, &[0, 0, 1, 2]).is_err());
        // Out-of-range id.
        assert!(check_result(&points, Vec3::ZERO, &params, &[0, 1, 2, 99]).is_err());
        // KNN reporting a suboptimal neighbor set.
        let params_knn = SearchParams::knn(1.0, 2);
        assert!(check_result(&points, Vec3::ZERO, &params_knn, &[1, 2]).is_err());
    }

    #[test]
    fn check_all_reports_the_failing_query() {
        let points = sample();
        let params = SearchParams::range(1.0, 10);
        let queries = vec![Vec3::ZERO, Vec3::new(10.0, 0.0, 0.0)];
        let good = brute_force_range(&points, Vec3::ZERO, 1.0);
        let results = vec![good, vec![0]]; // second query should be empty
        match check_all(&points, &queries, &params, &results) {
            Err((1, _)) => {}
            other => panic!("expected failure at query 1, got {other:?}"),
        }
    }
}
