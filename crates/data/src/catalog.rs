//! The named datasets of the paper's evaluation, at configurable scale.
//!
//! Section 6.1 evaluates nine inputs: KITTI-1M/6M/12M/25M, NBody-9M/10M,
//! Bunny-360K, Dragon-3.6M and Buddha-4.6M. The catalog maps each name to
//! the corresponding synthetic generator with the paper's point count scaled
//! by a `scale` divisor — the CPU-hosted simulator cannot sweep 25M-point
//! clouds in a benchmark suite, so the default experiments run at reduced
//! scale and EXPERIMENTS.md records the divisor used.

use crate::lidar::LidarParams;
use crate::nbody::NBodyParams;
use crate::scan::{ScanModel, ScanParams};
use crate::{lidar, nbody, scan, PointCloud};

/// The nine evaluation inputs of Figure 11.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash)]
pub enum DatasetName {
    Kitti1M,
    Kitti6M,
    Kitti12M,
    Kitti25M,
    NBody9M,
    NBody10M,
    Bunny360K,
    Dragon3_6M,
    Buddha4_6M,
}

impl DatasetName {
    /// All nine inputs in the order Figure 11 lists them.
    pub fn all() -> [DatasetName; 9] {
        [
            DatasetName::Kitti1M,
            DatasetName::Kitti6M,
            DatasetName::Kitti12M,
            DatasetName::Kitti25M,
            DatasetName::NBody9M,
            DatasetName::NBody10M,
            DatasetName::Bunny360K,
            DatasetName::Dragon3_6M,
            DatasetName::Buddha4_6M,
        ]
    }

    /// The paper's point count for this input.
    pub fn paper_points(&self) -> usize {
        match self {
            DatasetName::Kitti1M => 1_000_000,
            DatasetName::Kitti6M => 6_000_000,
            DatasetName::Kitti12M => 12_000_000,
            DatasetName::Kitti25M => 25_000_000,
            DatasetName::NBody9M => 9_000_000,
            DatasetName::NBody10M => 10_000_000,
            DatasetName::Bunny360K => 360_000,
            DatasetName::Dragon3_6M => 3_600_000,
            DatasetName::Buddha4_6M => 4_600_000,
        }
    }

    /// The label used in the paper's figures.
    pub fn label(&self) -> &'static str {
        match self {
            DatasetName::Kitti1M => "KITTI-1M",
            DatasetName::Kitti6M => "KITTI-6M",
            DatasetName::Kitti12M => "KITTI-12M",
            DatasetName::Kitti25M => "KITTI-25M",
            DatasetName::NBody9M => "NBody-9M",
            DatasetName::NBody10M => "NBody-10M",
            DatasetName::Bunny360K => "Bunny-360K",
            DatasetName::Dragon3_6M => "Dragon-3.6M",
            DatasetName::Buddha4_6M => "Buddha-4.6M",
        }
    }

    /// A search radius appropriate for the dataset's units, mirroring the
    /// paper's setup (metres for KITTI, unit-cube fractions for the scans,
    /// Mpc/h for the N-body trace).
    pub fn default_radius(&self) -> f32 {
        match self {
            DatasetName::Kitti1M
            | DatasetName::Kitti6M
            | DatasetName::Kitti12M
            | DatasetName::Kitti25M => 1.0,
            DatasetName::NBody9M | DatasetName::NBody10M => 5.0,
            DatasetName::Bunny360K | DatasetName::Dragon3_6M | DatasetName::Buddha4_6M => 0.0124,
        }
    }
}

/// A dataset request: a paper input plus a scale divisor.
#[derive(Debug, Clone, Copy)]
pub struct Dataset {
    /// Which paper input.
    pub name: DatasetName,
    /// Scale divisor: the generated cloud has `paper_points / scale_divisor`
    /// points (at least 1000).
    pub scale_divisor: usize,
    /// PRNG seed.
    pub seed: u64,
}

impl Dataset {
    /// A dataset at the paper's full scale.
    pub fn full_scale(name: DatasetName) -> Self {
        Dataset {
            name,
            scale_divisor: 1,
            seed: default_seed(name),
        }
    }

    /// A dataset scaled down by `divisor` (the default experiment
    /// configuration uses 20–100 depending on machine budget).
    pub fn scaled(name: DatasetName, divisor: usize) -> Self {
        assert!(divisor >= 1);
        Dataset {
            name,
            scale_divisor: divisor,
            seed: default_seed(name),
        }
    }

    /// Number of points this request will generate.
    pub fn num_points(&self) -> usize {
        (self.name.paper_points() / self.scale_divisor).max(1000)
    }

    /// Generate the cloud.
    pub fn generate(&self) -> PointCloud {
        let n = self.num_points();
        let mut cloud = match self.name {
            DatasetName::Kitti1M
            | DatasetName::Kitti6M
            | DatasetName::Kitti12M
            | DatasetName::Kitti25M => lidar::generate(&LidarParams {
                num_points: n,
                // Larger frames cover more street: grow the xy extent with the
                // point count so density stays roughly constant, as merging
                // KITTI frames does.
                half_extent_xy: 40.0 * (self.name.paper_points() as f32 / 1e6).sqrt(),
                seed: self.seed,
                ..Default::default()
            }),
            DatasetName::NBody9M | DatasetName::NBody10M => nbody::generate(&NBodyParams {
                num_points: n,
                seed: self.seed,
                ..Default::default()
            }),
            DatasetName::Bunny360K => scan::generate(&ScanParams {
                model: ScanModel::Blob,
                num_points: n,
                seed: self.seed,
                ..Default::default()
            }),
            DatasetName::Dragon3_6M => scan::generate(&ScanParams {
                model: ScanModel::TorusKnot,
                num_points: n,
                seed: self.seed,
                ..Default::default()
            }),
            DatasetName::Buddha4_6M => scan::generate(&ScanParams {
                model: ScanModel::StackedBlobs,
                num_points: n,
                seed: self.seed,
                ..Default::default()
            }),
        };
        cloud.name = if self.scale_divisor == 1 {
            self.name.label().to_string()
        } else {
            format!(
                "{} (1/{} scale: {} pts)",
                self.name.label(),
                self.scale_divisor,
                n
            )
        };
        cloud
    }
}

fn default_seed(name: DatasetName) -> u64 {
    // Stable per-dataset seeds so every experiment sees the same cloud.
    match name {
        DatasetName::Kitti1M => 101,
        DatasetName::Kitti6M => 106,
        DatasetName::Kitti12M => 112,
        DatasetName::Kitti25M => 125,
        DatasetName::NBody9M => 209,
        DatasetName::NBody10M => 210,
        DatasetName::Bunny360K => 303,
        DatasetName::Dragon3_6M => 336,
        DatasetName::Buddha4_6M => 346,
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn catalog_lists_all_nine_paper_inputs() {
        let all = DatasetName::all();
        assert_eq!(all.len(), 9);
        let total: usize = all.iter().map(|d| d.paper_points()).sum();
        assert_eq!(
            total,
            1_000_000
                + 6_000_000
                + 12_000_000
                + 25_000_000
                + 9_000_000
                + 10_000_000
                + 360_000
                + 3_600_000
                + 4_600_000
        );
    }

    #[test]
    fn scaled_generation_matches_requested_size() {
        let ds = Dataset::scaled(DatasetName::Kitti1M, 100);
        assert_eq!(ds.num_points(), 10_000);
        let cloud = ds.generate();
        assert_eq!(cloud.len(), 10_000);
        assert!(cloud.name.contains("KITTI-1M"));
        assert!(cloud.name.contains("1/100"));
    }

    #[test]
    fn tiny_scale_is_clamped_to_a_useful_minimum() {
        let ds = Dataset::scaled(DatasetName::Bunny360K, 1_000_000);
        assert_eq!(ds.num_points(), 1000);
    }

    #[test]
    fn generation_is_deterministic() {
        let a = Dataset::scaled(DatasetName::NBody9M, 500).generate();
        let b = Dataset::scaled(DatasetName::NBody9M, 500).generate();
        assert_eq!(a.points, b.points);
    }

    #[test]
    fn each_family_has_its_distribution_signature() {
        // KITTI-like: flat in z. Scan-like: inside the unit cube. NBody-like:
        // spans hundreds of units.
        let kitti = Dataset::scaled(DatasetName::Kitti6M, 300).generate();
        let scanb = Dataset::scaled(DatasetName::Buddha4_6M, 300).generate();
        let nbody = Dataset::scaled(DatasetName::NBody10M, 300).generate();
        assert!(kitti.bounds().extent().z < 5.0);
        assert!(scanb.bounds().extent().max_component() <= 1.001);
        assert!(nbody.bounds().extent().max_component() > 100.0);
    }

    #[test]
    fn default_radii_are_positive_and_dataset_appropriate() {
        for name in DatasetName::all() {
            assert!(name.default_radius() > 0.0);
        }
        assert!(DatasetName::Buddha4_6M.default_radius() < 0.1);
        assert!(DatasetName::Kitti12M.default_radius() >= 0.5);
    }
}
