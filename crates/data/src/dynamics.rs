//! Frame-stepped scene dynamics for streaming workloads.
//!
//! The paper's evaluation is batch-oriented: one cloud, one query round.
//! Real deployments of the workloads it draws from are time-stepped — SPH
//! re-searches neighborhoods every simulation step, N-body codes every
//! force evaluation, LiDAR pipelines every sweep. [`DriftScene`] turns the
//! static generators of this crate into deterministic multi-frame
//! sequences: each [`DriftScene::step`] advances the scene one frame and
//! reports exactly which points moved, appeared or disappeared, in the
//! slot-stable vocabulary the `rtnn-dynamic` index consumes (slot `i` of
//! the scene corresponds to the `i`-th inserted index handle).
//!
//! Three models mirror the three workload families:
//!
//! * [`DriftModel::SphSettle`] — a fluid block settling under gravity:
//!   every particle compresses toward the ground plane with a little
//!   deterministic lateral jitter. Pure motion, mostly intra-cell — the
//!   friendliest case for refit + incremental grid maintenance.
//! * [`DriftModel::NBodyOrbit`] — differential rotation about the box
//!   centre (inner points orbit faster), the shear that slowly degrades a
//!   frozen BVH topology. Pure motion, increasingly non-local.
//! * [`DriftModel::LidarSweep`] — ego-motion: the whole cloud translates
//!   past the sensor and a fraction of the points churns every frame
//!   (trailing returns dropped, fresh returns appearing ahead). Motion
//!   *plus* structural insert/remove — the case that forces rebuilds.

use crate::PointCloud;
use rand::{Rng, SeedableRng};
use rand_chacha::ChaCha8Rng;
use rtnn_math::{Aabb, Vec3};

/// How the scene evolves between frames.
#[derive(Debug, Clone, Copy)]
pub enum DriftModel {
    /// Settle toward the ground plane (smallest initial `z`): per frame,
    /// `z ← ground + (z − ground)·compression`, plus lateral jitter of the
    /// given amplitude.
    SphSettle {
        /// Per-frame height multiplier in `(0, 1]`.
        compression: f32,
        /// Lateral jitter amplitude (world units).
        jitter: f32,
    },
    /// Differential rotation around the vertical axis through the cloud
    /// centre: a point at fractional radius `f` of the cloud turns by
    /// `angular_step / (0.2 + f)` radians per frame.
    NBodyOrbit {
        /// Base angular step in radians per frame.
        angular_step: f32,
    },
    /// Ego-motion sweep: every point translates by `-velocity` per frame;
    /// `churn_fraction` of the live points is removed each frame and the
    /// same number respawns at the leading edge of the cloud.
    LidarSweep {
        /// Sensor velocity per frame (points move by its negation).
        velocity: Vec3,
        /// Fraction of live points replaced per frame, in `[0, 1]`.
        churn_fraction: f32,
    },
}

/// What one frame changed, in slot-stable ids.
#[derive(Debug, Clone, Default)]
pub struct FrameUpdate {
    /// Slots whose position changed this frame.
    pub moved: Vec<u32>,
    /// Slots removed this frame (they stay dead forever).
    pub removed: Vec<u32>,
    /// Freshly appended slots (positions via [`DriftScene::position`]).
    pub inserted: Vec<u32>,
}

impl FrameUpdate {
    /// True when the frame changed the point membership (not just motion).
    pub fn is_structural(&self) -> bool {
        !self.removed.is_empty() || !self.inserted.is_empty()
    }
}

/// A deterministic frame-stepped scene (see the module docs).
#[derive(Debug, Clone)]
pub struct DriftScene {
    model: DriftModel,
    positions: Vec<Vec3>,
    live: Vec<bool>,
    ground_z: f32,
    centre: Vec3,
    half_extent: f32,
    frame: u32,
    rng: ChaCha8Rng,
}

impl DriftScene {
    /// Wrap an initial cloud. Slots `0..points.len()` start live; `seed`
    /// drives all pseudo-random churn and jitter.
    pub fn new(cloud: &PointCloud, model: DriftModel, seed: u64) -> Self {
        let bounds = if cloud.is_empty() {
            Aabb::cube(Vec3::ZERO, 1.0)
        } else {
            cloud.bounds()
        };
        DriftScene {
            model,
            positions: cloud.points.clone(),
            live: vec![true; cloud.points.len()],
            ground_z: bounds.min.z,
            centre: bounds.center(),
            half_extent: (bounds.longest_extent() * 0.5).max(1e-3),
            frame: 0,
            rng: ChaCha8Rng::seed_from_u64(seed),
        }
    }

    /// Number of frames stepped so far.
    pub fn frame(&self) -> u32 {
        self.frame
    }

    /// Total slots ever allocated (live + dead).
    pub fn num_slots(&self) -> usize {
        self.positions.len()
    }

    /// Position of a live slot.
    pub fn position(&self, slot: u32) -> Option<Vec3> {
        match self.live.get(slot as usize) {
            Some(true) => Some(self.positions[slot as usize]),
            _ => None,
        }
    }

    /// The current live points, compacted in slot order — the view a
    /// from-scratch batch engine would search over.
    pub fn live_points(&self) -> Vec<Vec3> {
        self.positions
            .iter()
            .zip(&self.live)
            .filter_map(|(&p, &alive)| alive.then_some(p))
            .collect()
    }

    /// Number of live points.
    pub fn num_live(&self) -> usize {
        self.live.iter().filter(|&&l| l).count()
    }

    /// Advance one frame and report what changed.
    pub fn step(&mut self) -> FrameUpdate {
        self.frame += 1;
        let mut update = FrameUpdate::default();
        match self.model {
            DriftModel::SphSettle {
                compression,
                jitter,
            } => {
                for slot in 0..self.positions.len() {
                    if !self.live[slot] {
                        continue;
                    }
                    let p = &mut self.positions[slot];
                    p.z = self.ground_z + (p.z - self.ground_z) * compression;
                    if jitter > 0.0 {
                        p.x += jitter * (self.rng.gen::<f32>() - 0.5);
                        p.y += jitter * (self.rng.gen::<f32>() - 0.5);
                    }
                    update.moved.push(slot as u32);
                }
            }
            DriftModel::NBodyOrbit { angular_step } => {
                for slot in 0..self.positions.len() {
                    if !self.live[slot] {
                        continue;
                    }
                    let p = &mut self.positions[slot];
                    let rel = Vec3::new(p.x - self.centre.x, p.y - self.centre.y, 0.0);
                    let r = (rel.x * rel.x + rel.y * rel.y).sqrt();
                    let f = (r / self.half_extent).min(1.0);
                    let theta = angular_step / (0.2 + f);
                    let (sin, cos) = theta.sin_cos();
                    let x = rel.x * cos - rel.y * sin;
                    let y = rel.x * sin + rel.y * cos;
                    p.x = self.centre.x + x;
                    p.y = self.centre.y + y;
                    update.moved.push(slot as u32);
                }
            }
            DriftModel::LidarSweep {
                velocity,
                churn_fraction,
            } => {
                let live_slots: Vec<u32> = (0..self.positions.len() as u32)
                    .filter(|&s| self.live[s as usize])
                    .collect();
                for &slot in &live_slots {
                    let p = &mut self.positions[slot as usize];
                    *p -= velocity;
                    update.moved.push(slot);
                }
                // Churn: drop the points that drifted furthest behind the
                // sweep direction, respawn the same count at the front.
                let churn =
                    ((live_slots.len() as f32 * churn_fraction) as usize).min(live_slots.len());
                if churn > 0 {
                    let dir = velocity.normalized();
                    let mut scored: Vec<(f32, u32)> = live_slots
                        .iter()
                        .map(|&s| (self.positions[s as usize].dot(dir), s))
                        .collect();
                    scored.sort_by(|a, b| {
                        a.0.partial_cmp(&b.0)
                            .unwrap_or(std::cmp::Ordering::Equal)
                            .then(a.1.cmp(&b.1))
                    });
                    // Most-negative projection = furthest behind.
                    let mut front = Aabb::EMPTY;
                    for &(_, s) in &scored[churn..] {
                        front.grow_point(self.positions[s as usize]);
                    }
                    if front.is_empty() {
                        front = Aabb::cube(self.centre, 2.0 * self.half_extent);
                    }
                    let removed: std::collections::HashSet<u32> =
                        scored[..churn].iter().map(|&(_, s)| s).collect();
                    update.moved.retain(|m| !removed.contains(m));
                    for &(_, slot) in &scored[..churn] {
                        self.live[slot as usize] = false;
                        update.removed.push(slot);
                        // Respawn at the leading face, lateral position random.
                        let lead = front.max.dot(dir);
                        let lateral = Vec3::new(
                            front.min.x + self.rng.gen::<f32>() * (front.max.x - front.min.x),
                            front.min.y + self.rng.gen::<f32>() * (front.max.y - front.min.y),
                            front.min.z + self.rng.gen::<f32>() * (front.max.z - front.min.z),
                        );
                        let spawned = lateral + dir * (lead - lateral.dot(dir));
                        let new_slot = self.positions.len() as u32;
                        self.positions.push(spawned);
                        self.live.push(true);
                        update.inserted.push(new_slot);
                    }
                }
            }
        }
        update
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::uniform::{self, UniformParams};

    fn cloud(n: usize) -> PointCloud {
        uniform::generate(&UniformParams {
            num_points: n,
            seed: 7,
            ..Default::default()
        })
    }

    #[test]
    fn sph_settle_compresses_toward_the_ground() {
        let c = cloud(2000);
        let ground = c.bounds().min.z;
        let top_before = c.bounds().max.z;
        let mut scene = DriftScene::new(
            &c,
            DriftModel::SphSettle {
                compression: 0.9,
                jitter: 0.0,
            },
            1,
        );
        for _ in 0..10 {
            let update = scene.step();
            assert_eq!(update.moved.len(), 2000);
            assert!(!update.is_structural());
        }
        let top_after = scene
            .live_points()
            .iter()
            .map(|p| p.z)
            .fold(f32::MIN, f32::max);
        assert!(top_after < ground + (top_before - ground) * 0.5);
        assert_eq!(scene.num_live(), 2000);
        assert_eq!(scene.frame(), 10);
    }

    #[test]
    fn nbody_orbit_preserves_radii_and_moves_inner_points_faster() {
        let c = cloud(1000);
        let centre = c.bounds().center();
        let radius_of = |p: &Vec3| ((p.x - centre.x).powi(2) + (p.y - centre.y).powi(2)).sqrt();
        let before = c.points.clone();
        let mut scene = DriftScene::new(&c, DriftModel::NBodyOrbit { angular_step: 0.1 }, 1);
        scene.step();
        let mut inner_move = 0.0f32;
        let mut outer_move = 0.0f32;
        let (mut inner_n, mut outer_n) = (0u32, 0u32);
        for (slot, old) in before.iter().enumerate() {
            let new = scene.position(slot as u32).unwrap();
            let (r_old, r_new) = (radius_of(old), radius_of(&new));
            assert!(
                (r_old - r_new).abs() < 1e-3 * (1.0 + r_old),
                "radius drifted"
            );
            assert_eq!(old.z, new.z, "orbit must stay in the z plane");
            // Angular displacement ≈ chord / radius.
            if r_old > 1e-3 {
                let chord = old.distance(new);
                let ang = chord / r_old;
                if radius_of(old) < 0.3 * scene.half_extent {
                    inner_move += ang;
                    inner_n += 1;
                } else if radius_of(old) > 0.7 * scene.half_extent {
                    outer_move += ang;
                    outer_n += 1;
                }
            }
        }
        assert!(inner_n > 0 && outer_n > 0);
        assert!(inner_move / inner_n as f32 > outer_move / outer_n as f32);
    }

    #[test]
    fn lidar_sweep_translates_and_churns() {
        let c = cloud(1500);
        let mut scene = DriftScene::new(
            &c,
            DriftModel::LidarSweep {
                velocity: Vec3::new(0.5, 0.0, 0.0),
                churn_fraction: 0.05,
            },
            1,
        );
        let live_before = scene.num_live();
        let update = scene.step();
        assert!(update.is_structural());
        assert_eq!(update.removed.len(), update.inserted.len());
        assert_eq!(update.removed.len(), (1500.0f32 * 0.05) as usize);
        // Population is conserved, slots only grow.
        assert_eq!(scene.num_live(), live_before);
        assert_eq!(scene.num_slots(), 1500 + update.inserted.len());
        // Removed slots are dead, inserted ones live.
        for &s in &update.removed {
            assert!(scene.position(s).is_none());
            assert!(!update.moved.contains(&s), "removed slot also in moved");
        }
        for &s in &update.inserted {
            assert!(scene.position(s).is_some());
        }
        // Survivors moved by -velocity.
        let survivor = update.moved[0];
        let p = scene.position(survivor).unwrap();
        assert!((p.x - (c.points[survivor as usize].x - 0.5)).abs() < 1e-5);
    }

    #[test]
    fn stepping_is_deterministic_per_seed() {
        let c = cloud(800);
        let model = DriftModel::LidarSweep {
            velocity: Vec3::new(0.3, 0.1, 0.0),
            churn_fraction: 0.1,
        };
        let run = |seed| {
            let mut s = DriftScene::new(&c, model, seed);
            for _ in 0..5 {
                s.step();
            }
            s.live_points()
        };
        assert_eq!(run(42), run(42));
        assert_ne!(run(42), run(43));
    }
}
