//! Plain-text `.xyz` point-cloud I/O.
//!
//! One point per line, `x y z` separated by whitespace; `#` starts a
//! comment. This is the least-common-denominator format the original RTNN
//! repository and most point-cloud tools accept, so users can feed their own
//! data (real KITTI frames, real Stanford scans) into the examples and the
//! bench harness.

use crate::PointCloud;
use rtnn_math::Vec3;
use std::io::{BufRead, BufReader, Read, Write};
use std::path::Path;

/// Errors raised by the `.xyz` reader.
#[derive(Debug)]
pub enum XyzError {
    /// Underlying I/O failure.
    Io(std::io::Error),
    /// A data line did not contain three finite floats.
    Parse { line: usize, content: String },
}

impl std::fmt::Display for XyzError {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        match self {
            XyzError::Io(e) => write!(f, "I/O error: {e}"),
            XyzError::Parse { line, content } => write!(f, "line {line}: cannot parse '{content}'"),
        }
    }
}

impl std::error::Error for XyzError {}

impl From<std::io::Error> for XyzError {
    fn from(e: std::io::Error) -> Self {
        XyzError::Io(e)
    }
}

/// Parse `.xyz` content from any reader.
pub fn read_xyz<R: Read>(reader: R, name: &str) -> Result<PointCloud, XyzError> {
    let mut points = Vec::new();
    for (idx, line) in BufReader::new(reader).lines().enumerate() {
        let line = line?;
        let trimmed = line.trim();
        if trimmed.is_empty() || trimmed.starts_with('#') {
            continue;
        }
        let mut it = trimmed.split_whitespace();
        let parse = |s: Option<&str>| {
            s.and_then(|t| t.parse::<f32>().ok())
                .filter(|v| v.is_finite())
        };
        match (parse(it.next()), parse(it.next()), parse(it.next())) {
            (Some(x), Some(y), Some(z)) => points.push(Vec3::new(x, y, z)),
            _ => {
                return Err(XyzError::Parse {
                    line: idx + 1,
                    content: trimmed.to_string(),
                })
            }
        }
    }
    Ok(PointCloud::new(name, points))
}

/// Read a `.xyz` file from disk.
pub fn read_xyz_file(path: impl AsRef<Path>) -> Result<PointCloud, XyzError> {
    let path = path.as_ref();
    let file = std::fs::File::open(path)?;
    let name = path
        .file_stem()
        .and_then(|s| s.to_str())
        .unwrap_or("xyz")
        .to_string();
    read_xyz(file, &name)
}

/// Write a cloud to any writer in `.xyz` format.
pub fn write_xyz<W: Write>(mut writer: W, cloud: &PointCloud) -> std::io::Result<()> {
    writeln!(writer, "# {} ({} points)", cloud.name, cloud.len())?;
    for p in &cloud.points {
        writeln!(writer, "{} {} {}", p.x, p.y, p.z)?;
    }
    Ok(())
}

/// Write a cloud to a `.xyz` file on disk.
pub fn write_xyz_file(path: impl AsRef<Path>, cloud: &PointCloud) -> std::io::Result<()> {
    let file = std::fs::File::create(path)?;
    write_xyz(std::io::BufWriter::new(file), cloud)
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn round_trip_through_memory() {
        let cloud = PointCloud::new(
            "roundtrip",
            vec![Vec3::new(1.0, 2.0, 3.0), Vec3::new(-0.5, 0.25, 1e6)],
        );
        let mut buf = Vec::new();
        write_xyz(&mut buf, &cloud).unwrap();
        let back = read_xyz(&buf[..], "roundtrip").unwrap();
        assert_eq!(back.points, cloud.points);
    }

    #[test]
    fn comments_and_blank_lines_are_skipped() {
        let text = "# header\n\n1 2 3\n  # another comment\n4 5 6\n";
        let pc = read_xyz(text.as_bytes(), "t").unwrap();
        assert_eq!(pc.len(), 2);
        assert_eq!(pc.points[1], Vec3::new(4.0, 5.0, 6.0));
    }

    #[test]
    fn malformed_lines_are_reported_with_line_numbers() {
        let text = "1 2 3\nnot a point\n";
        match read_xyz(text.as_bytes(), "t") {
            Err(XyzError::Parse { line, .. }) => assert_eq!(line, 2),
            other => panic!("expected parse error, got {other:?}"),
        }
        // NaN is rejected too.
        assert!(read_xyz("1 2 NaN\n".as_bytes(), "t").is_err());
        // Missing component.
        assert!(read_xyz("1 2\n".as_bytes(), "t").is_err());
    }

    #[test]
    fn file_round_trip() {
        let dir = std::env::temp_dir().join("rtnn_data_io_test");
        std::fs::create_dir_all(&dir).unwrap();
        let path = dir.join("cloud.xyz");
        let cloud = PointCloud::new("disk", vec![Vec3::ZERO, Vec3::ONE]);
        write_xyz_file(&path, &cloud).unwrap();
        let back = read_xyz_file(&path).unwrap();
        assert_eq!(back.points, cloud.points);
        assert_eq!(back.name, "cloud");
        std::fs::remove_file(&path).ok();
    }

    #[test]
    fn missing_file_is_an_io_error() {
        match read_xyz_file("/definitely/not/here.xyz") {
            Err(XyzError::Io(_)) => {}
            other => panic!("expected io error, got {other:?}"),
        }
    }
}
