//! # rtnn-data
//!
//! Synthetic dataset generators standing in for the three dataset families
//! of the paper's evaluation (Section 6.1), plus `.xyz` I/O and a catalog
//! that names the paper's inputs at a configurable scale.
//!
//! | Paper dataset | Generator | Distribution property preserved |
//! |---|---|---|
//! | KITTI LiDAR frames (1M–25M pts) | [`lidar`] | points concentrated near the ground plane, confined to a narrow z range, with vertical structures |
//! | Stanford scans: Bunny / Dragon / Buddha | [`scan`] | points sampled on closed 2D surfaces embedded in 3D, roughly uniform surface density |
//! | Millennium N-body traces (9M/10M galaxies) | [`nbody`] | hierarchically clustered ("fractal") distribution with strongly varying local density |
//!
//! All generators are deterministic given a seed (ChaCha8 PRNG) so every
//! experiment in `rtnn-bench` is reproducible bit-for-bit.

pub mod catalog;
pub mod dynamics;
pub mod io;
pub mod lidar;
pub mod nbody;
pub mod scan;
pub mod uniform;

pub use catalog::{Dataset, DatasetName};
pub use dynamics::{DriftModel, DriftScene, FrameUpdate};
pub use lidar::LidarParams;
pub use nbody::NBodyParams;
pub use scan::{ScanModel, ScanParams};
pub use uniform::UniformParams;

use rtnn_math::{Aabb, Vec3};

/// A generated point cloud plus its provenance.
#[derive(Debug, Clone)]
pub struct PointCloud {
    /// The points.
    pub points: Vec<Vec3>,
    /// Human-readable name (e.g. `KITTI-1M (scaled 1/10)`).
    pub name: String,
}

impl PointCloud {
    /// Construct from raw points.
    pub fn new(name: impl Into<String>, points: Vec<Vec3>) -> Self {
        PointCloud {
            name: name.into(),
            points,
        }
    }

    /// Number of points.
    pub fn len(&self) -> usize {
        self.points.len()
    }

    /// True if the cloud has no points.
    pub fn is_empty(&self) -> bool {
        self.points.is_empty()
    }

    /// Bounding box of the cloud.
    pub fn bounds(&self) -> Aabb {
        Aabb::from_points(&self.points)
    }

    /// Use every `stride`-th point as a query (the paper's experiments use
    /// the data points themselves as queries).
    pub fn queries_subsampled(&self, stride: usize) -> Vec<Vec3> {
        assert!(stride >= 1);
        self.points.iter().copied().step_by(stride).collect()
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn point_cloud_helpers() {
        let pc = PointCloud::new(
            "test",
            vec![Vec3::ZERO, Vec3::ONE, Vec3::new(2.0, 0.0, 0.0)],
        );
        assert_eq!(pc.len(), 3);
        assert!(!pc.is_empty());
        assert_eq!(pc.bounds().max, Vec3::new(2.0, 1.0, 1.0));
        assert_eq!(pc.queries_subsampled(2).len(), 2);
        assert_eq!(pc.queries_subsampled(1).len(), 3);
    }
}
