//! LiDAR-like point clouds (the KITTI stand-in).
//!
//! The paper notes the property that matters for RTNN: "Points in the KITTI
//! self-driving car dataset are mostly distributed in the xy-plane (the
//! ground) while being confined in a very narrow z-range (height)"
//! (Section 6.1). The generator reproduces that structure:
//!
//! * a dense ground sheet with small height noise, sampled with a radial
//!   density falloff (LiDAR returns thin out with distance from the sensor);
//! * a set of box-shaped obstacles (vehicles, walls, poles) whose vertical
//!   faces contribute the off-plane points;
//! * everything confined to a `z` slab a couple of metres tall while the
//!   `x`/`y` extent spans tens of metres.

use crate::PointCloud;
use rand::{Rng, SeedableRng};
use rand_chacha::ChaCha8Rng;
use rtnn_math::Vec3;

/// Parameters of the LiDAR-like generator.
#[derive(Debug, Clone, Copy)]
pub struct LidarParams {
    /// Total number of points.
    pub num_points: usize,
    /// Half-extent of the scene in x and y (metres).
    pub half_extent_xy: f32,
    /// Height of the z slab (metres).
    pub height: f32,
    /// Fraction of points on the ground sheet (the rest sample obstacles).
    pub ground_fraction: f32,
    /// Number of box obstacles.
    pub num_obstacles: usize,
    /// PRNG seed.
    pub seed: u64,
}

impl Default for LidarParams {
    fn default() -> Self {
        LidarParams {
            num_points: 100_000,
            half_extent_xy: 60.0,
            height: 3.0,
            ground_fraction: 0.7,
            num_obstacles: 60,
            seed: 0x51DA,
        }
    }
}

/// Generate a LiDAR-like cloud.
pub fn generate(params: &LidarParams) -> PointCloud {
    let mut rng = ChaCha8Rng::seed_from_u64(params.seed);
    let mut points = Vec::with_capacity(params.num_points);

    // Obstacle boxes: centre (x, y), half sizes, height.
    struct Obstacle {
        cx: f32,
        cy: f32,
        hx: f32,
        hy: f32,
        h: f32,
    }
    let obstacles: Vec<Obstacle> = (0..params.num_obstacles)
        .map(|_| Obstacle {
            cx: rng.gen_range(-params.half_extent_xy..params.half_extent_xy),
            cy: rng.gen_range(-params.half_extent_xy..params.half_extent_xy),
            hx: rng.gen_range(0.3..2.5),
            hy: rng.gen_range(0.3..2.5),
            h: rng.gen_range(0.5..params.height),
        })
        .collect();

    let ground_points = (params.num_points as f32 * params.ground_fraction) as usize;
    for _ in 0..ground_points {
        // Radial density falloff: sample radius with sqrt bias toward the
        // sensor at the origin, like rotating-scanner returns.
        let u: f32 = rng.gen();
        let r = params.half_extent_xy * u.powf(0.75);
        let theta = rng.gen_range(0.0..std::f32::consts::TAU);
        let x = r * theta.cos();
        let y = r * theta.sin();
        let z = rng.gen_range(0.0..0.08); // ground roughness
        points.push(Vec3::new(x, y, z));
    }
    // Obstacle points: sample the vertical faces of the boxes.
    while points.len() < params.num_points {
        let ob = &obstacles[rng.gen_range(0..obstacles.len().max(1))];
        let z = rng.gen_range(0.0..ob.h);
        // Pick one of the four vertical faces.
        let (x, y) = match rng.gen_range(0..4u32) {
            0 => (ob.cx - ob.hx, ob.cy + rng.gen_range(-ob.hy..ob.hy)),
            1 => (ob.cx + ob.hx, ob.cy + rng.gen_range(-ob.hy..ob.hy)),
            2 => (ob.cx + rng.gen_range(-ob.hx..ob.hx), ob.cy - ob.hy),
            _ => (ob.cx + rng.gen_range(-ob.hx..ob.hx), ob.cy + ob.hy),
        };
        points.push(Vec3::new(x, y, z));
    }

    PointCloud::new(format!("LiDAR-{}", params.num_points), points)
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn respects_point_count() {
        let pc = generate(&LidarParams {
            num_points: 20_000,
            ..Default::default()
        });
        assert_eq!(pc.len(), 20_000);
    }

    #[test]
    fn z_extent_is_much_narrower_than_xy_extent() {
        // The defining KITTI property from Section 6.1.
        let pc = generate(&LidarParams {
            num_points: 30_000,
            ..Default::default()
        });
        let b = pc.bounds();
        let ext = b.extent();
        assert!(ext.z <= 3.5);
        assert!(ext.x > 10.0 * ext.z);
        assert!(ext.y > 10.0 * ext.z);
    }

    #[test]
    fn majority_of_points_are_near_the_ground() {
        let params = LidarParams {
            num_points: 30_000,
            ..Default::default()
        };
        let pc = generate(&params);
        let near_ground = pc.points.iter().filter(|p| p.z < 0.1).count();
        assert!(near_ground as f32 >= 0.6 * params.num_points as f32);
    }

    #[test]
    fn deterministic_per_seed() {
        let a = generate(&LidarParams {
            num_points: 1000,
            seed: 1,
            ..Default::default()
        });
        let b = generate(&LidarParams {
            num_points: 1000,
            seed: 1,
            ..Default::default()
        });
        assert_eq!(a.points, b.points);
    }
}
