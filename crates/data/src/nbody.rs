//! Cosmological N-body-like point clouds (the Millennium-simulation
//! stand-in).
//!
//! The paper (Section 6.1, footnote 3) describes the property that matters:
//! on small scales the galaxy distribution is hierarchically clustered
//! (approximately fractal), on large scales it slowly approaches
//! uniformity, so the local point density varies by orders of magnitude.
//! That non-uniformity is what makes query partitioning expensive for the
//! N-body inputs (Figure 12 / Figure 13b).
//!
//! The generator builds an explicit hierarchy: top-level cluster centres are
//! uniform in the box; each level spawns sub-clusters around its parent with
//! a geometrically shrinking radius; leaf clusters emit Gaussian point
//! blobs. A small fraction of points is sprinkled uniformly as the "field
//! galaxy" background.

use crate::PointCloud;
use rand::{Rng, SeedableRng};
use rand_chacha::ChaCha8Rng;
use rtnn_math::Vec3;

/// Parameters of the clustered generator.
#[derive(Debug, Clone, Copy)]
pub struct NBodyParams {
    /// Total number of points.
    pub num_points: usize,
    /// Box side length (the Millennium run is 500 Mpc/h on a side).
    pub box_size: f32,
    /// Number of top-level clusters.
    pub top_level_clusters: usize,
    /// Hierarchy depth (levels of sub-clustering).
    pub levels: u32,
    /// Sub-clusters spawned per cluster per level.
    pub branching: usize,
    /// Fraction of points in the uniform background.
    pub background_fraction: f32,
    /// PRNG seed.
    pub seed: u64,
}

impl Default for NBodyParams {
    fn default() -> Self {
        NBodyParams {
            num_points: 100_000,
            box_size: 500.0,
            top_level_clusters: 24,
            levels: 3,
            branching: 4,
            background_fraction: 0.08,
            seed: 0x9B0D,
        }
    }
}

/// Generate a hierarchically clustered cloud.
pub fn generate(params: &NBodyParams) -> PointCloud {
    let mut rng = ChaCha8Rng::seed_from_u64(params.seed);
    let mut centres: Vec<(Vec3, f32)> = (0..params.top_level_clusters)
        .map(|_| {
            (
                Vec3::new(
                    rng.gen::<f32>() * params.box_size,
                    rng.gen::<f32>() * params.box_size,
                    rng.gen::<f32>() * params.box_size,
                ),
                params.box_size * 0.08,
            )
        })
        .collect();

    // Refine the hierarchy.
    for _ in 0..params.levels {
        let mut next = Vec::with_capacity(centres.len() * params.branching);
        for &(c, radius) in &centres {
            for _ in 0..params.branching {
                let offset = gaussian_vec(&mut rng) * radius;
                next.push((c + offset, radius * 0.35));
            }
        }
        centres = next;
    }

    let background = (params.num_points as f32 * params.background_fraction) as usize;
    let clustered = params.num_points - background;
    let mut points = Vec::with_capacity(params.num_points);
    for i in 0..clustered {
        let (c, radius) = centres[i % centres.len()];
        let p = c + gaussian_vec(&mut rng) * radius;
        points.push(clamp_to_box(p, params.box_size));
    }
    for _ in 0..background {
        points.push(Vec3::new(
            rng.gen::<f32>() * params.box_size,
            rng.gen::<f32>() * params.box_size,
            rng.gen::<f32>() * params.box_size,
        ));
    }
    PointCloud::new(format!("NBody-{}", params.num_points), points)
}

/// Approximate standard 3D Gaussian via the sum of uniforms (Irwin–Hall);
/// accurate enough for cluster shapes and avoids a Box-Muller dependency.
fn gaussian_vec(rng: &mut ChaCha8Rng) -> Vec3 {
    let mut g = || {
        let s: f32 = (0..12).map(|_| rng.gen::<f32>()).sum();
        s - 6.0
    };
    Vec3::new(g(), g(), g()) * 0.5
}

fn clamp_to_box(p: Vec3, size: f32) -> Vec3 {
    Vec3::new(
        p.x.clamp(0.0, size),
        p.y.clamp(0.0, size),
        p.z.clamp(0.0, size),
    )
}

#[cfg(test)]
mod tests {
    use super::*;
    use rtnn_math::{GridCoord, PointBins, UniformGrid};

    #[test]
    fn respects_count_and_box() {
        let params = NBodyParams {
            num_points: 20_000,
            ..Default::default()
        };
        let pc = generate(&params);
        assert_eq!(pc.len(), 20_000);
        let b = pc.bounds();
        assert!(b.min.min_component() >= 0.0);
        assert!(b.max.max_component() <= params.box_size);
    }

    #[test]
    fn density_is_strongly_non_uniform() {
        // Bin the points into a coarse grid: the most populated cell must be
        // far denser than the average cell — the defining contrast with the
        // uniform and scan datasets.
        let params = NBodyParams {
            num_points: 40_000,
            ..Default::default()
        };
        let pc = generate(&params);
        let grid = UniformGrid::new(pc.bounds(), params.box_size / 16.0);
        let bins = PointBins::build(grid, &pc.points);
        let n_cells = bins.grid().num_cells();
        let mut counts: Vec<u32> = (0..n_cells)
            .map(|i| bins.cell_count(bins.grid().coord_of_index(i)))
            .collect();
        let max_count = *counts.iter().max().unwrap();
        let mean = pc.len() as f64 / n_cells as f64;
        assert!(
            max_count as f64 > 20.0 * mean,
            "max {max_count} vs mean {mean:.1}"
        );
        // The densest 5% of cells hold the majority of the points (they would
        // hold ~5% under a uniform distribution).
        counts.sort_unstable_by(|a, b| b.cmp(a));
        let top = counts.len().div_ceil(20);
        let in_top: u64 = counts[..top].iter().map(|&c| c as u64).sum();
        assert!(
            in_top as f64 > 0.5 * pc.len() as f64,
            "top-5% cells hold only {in_top} of {} points",
            pc.len()
        );
        // Keep the coordinate type alive in the signature.
        let _ = GridCoord::new(0, 0, 0);
    }

    #[test]
    fn deterministic_per_seed() {
        let p = NBodyParams {
            num_points: 3000,
            seed: 11,
            ..Default::default()
        };
        assert_eq!(generate(&p).points, generate(&p).points);
    }

    #[test]
    fn background_fraction_of_zero_still_works() {
        let p = NBodyParams {
            num_points: 1000,
            background_fraction: 0.0,
            ..Default::default()
        };
        assert_eq!(generate(&p).len(), 1000);
    }
}
