//! 3D-scan-like point clouds (the Stanford Bunny / Dragon / Buddha
//! stand-ins).
//!
//! Scanned models are closed surfaces sampled roughly uniformly: the points
//! occupy all three dimensions (unlike LiDAR), but they lie on a 2D manifold
//! (unlike a volumetric distribution), which gives the characteristic
//! moderate, locally uniform density the paper contrasts with the N-body
//! trace. The three models are simple parametric surfaces of increasing
//! geometric complexity:
//!
//! * [`ScanModel::Blob`] ("Bunny") — a unit sphere perturbed by smooth bumps;
//! * [`ScanModel::TorusKnot`] ("Dragon") — a tube swept along a (2,3) torus
//!   knot — long, thin and curled like the Asian Dragon scan;
//! * [`ScanModel::StackedBlobs`] ("Buddha") — several blobs stacked along z,
//!   mimicking a tall statue with multiple lobes.
//!
//! Every model is normalised into the unit cube `[0,1]³`, matching the
//! paper's note that "the points in Buddha are bounded in a 1³ cube"
//! (Section 6.4).

use crate::PointCloud;
use rand::{Rng, SeedableRng};
use rand_chacha::ChaCha8Rng;
use rtnn_math::{Aabb, Vec3};

/// Which surface to sample.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum ScanModel {
    /// Bumpy sphere ("Bunny").
    Blob,
    /// Tube along a (2,3) torus knot ("Dragon").
    TorusKnot,
    /// Stacked bumpy spheres ("Buddha").
    StackedBlobs,
}

/// Parameters of the scan generator.
#[derive(Debug, Clone, Copy)]
pub struct ScanParams {
    /// Which model to sample.
    pub model: ScanModel,
    /// Number of surface samples.
    pub num_points: usize,
    /// Surface noise amplitude (scanner noise).
    pub noise: f32,
    /// PRNG seed.
    pub seed: u64,
}

impl Default for ScanParams {
    fn default() -> Self {
        ScanParams {
            model: ScanModel::Blob,
            num_points: 50_000,
            noise: 0.002,
            seed: 0x5CA9,
        }
    }
}

/// Generate a surface-sampled cloud, normalised into `[0,1]³`.
pub fn generate(params: &ScanParams) -> PointCloud {
    let mut rng = ChaCha8Rng::seed_from_u64(params.seed);
    let mut points = Vec::with_capacity(params.num_points);
    for _ in 0..params.num_points {
        let p = match params.model {
            ScanModel::Blob => sample_blob(&mut rng, 0.0),
            ScanModel::TorusKnot => sample_torus_knot(&mut rng),
            ScanModel::StackedBlobs => {
                let lobe = rng.gen_range(0..3u32);
                let mut p = sample_blob(&mut rng, lobe as f32 * 1.3);
                p.z += lobe as f32 * 1.6;
                p = p * (1.0 - 0.15 * lobe as f32); // upper lobes shrink
                p
            }
        };
        let noise = Vec3::new(
            rng.gen_range(-params.noise..=params.noise),
            rng.gen_range(-params.noise..=params.noise),
            rng.gen_range(-params.noise..=params.noise),
        );
        points.push(p + noise);
    }
    normalize_unit_cube(&mut points);
    let name = match params.model {
        ScanModel::Blob => "Scan-Bunny",
        ScanModel::TorusKnot => "Scan-Dragon",
        ScanModel::StackedBlobs => "Scan-Buddha",
    };
    PointCloud::new(format!("{name}-{}", params.num_points), points)
}

/// Uniform point on a bumpy unit sphere; `phase` decorrelates the bumps
/// between lobes of the stacked model.
fn sample_blob(rng: &mut ChaCha8Rng, phase: f32) -> Vec3 {
    // Uniform direction via normalised Gaussian-ish rejection-free sampling.
    let u: f32 = rng.gen_range(-1.0..1.0);
    let theta = rng.gen_range(0.0..std::f32::consts::TAU);
    let s = (1.0 - u * u).sqrt();
    let dir = Vec3::new(s * theta.cos(), s * theta.sin(), u);
    // Smooth bump field modulates the radius.
    let bump =
        0.15 * ((5.0 * dir.x + phase).sin() * (4.0 * dir.y - phase).cos() + (3.0 * dir.z).sin());
    dir * (1.0 + bump)
}

/// Point on a tube of radius 0.18 swept along a (2,3) torus knot.
fn sample_torus_knot(rng: &mut ChaCha8Rng) -> Vec3 {
    let t = rng.gen_range(0.0..std::f32::consts::TAU);
    let (p, q) = (2.0, 3.0);
    let r = (q * t).cos() + 2.0;
    let centre = Vec3::new(r * (p * t).cos(), r * (p * t).sin(), -(q * t).sin());
    // Tube cross-section: random angle around the curve, approximate frame.
    let phi = rng.gen_range(0.0..std::f32::consts::TAU);
    let tube = 0.18;
    let normal = Vec3::new((p * t).cos(), (p * t).sin(), 0.0);
    let binormal = Vec3::new(0.0, 0.0, 1.0);
    centre + (normal * phi.cos() + binormal * phi.sin()) * tube
}

/// Scale and translate points so the bounding box fits exactly in `[0,1]³`
/// (preserving the aspect ratio).
fn normalize_unit_cube(points: &mut [Vec3]) {
    let bounds = Aabb::from_points(points);
    if bounds.is_empty() {
        return;
    }
    let scale = 1.0 / bounds.longest_extent().max(f32::MIN_POSITIVE);
    for p in points.iter_mut() {
        *p = (*p - bounds.min) * scale;
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn all_models_generate_requested_counts_inside_unit_cube() {
        for model in [
            ScanModel::Blob,
            ScanModel::TorusKnot,
            ScanModel::StackedBlobs,
        ] {
            let pc = generate(&ScanParams {
                model,
                num_points: 10_000,
                ..Default::default()
            });
            assert_eq!(pc.len(), 10_000);
            let b = pc.bounds();
            let unit = Aabb::new(Vec3::splat(-1e-4), Vec3::splat(1.0 + 1e-4));
            assert!(unit.contains_aabb(&b), "{model:?} bounds {b:?}");
        }
    }

    #[test]
    fn points_lie_on_a_thin_surface_not_a_volume() {
        // For a surface sampling, shrinking towards the centroid by a few
        // percent moves essentially every point off the sample set; more
        // robustly, the fraction of points in the central 20%-size core of
        // the bounding box should be tiny (a volumetric distribution would
        // put ~0.8% there, a blob surface none).
        let pc = generate(&ScanParams {
            model: ScanModel::Blob,
            num_points: 20_000,
            ..Default::default()
        });
        let centre = Vec3::splat(0.5);
        let core = Aabb::cube(centre, 0.2);
        let inside = pc
            .points
            .iter()
            .filter(|p| core.contains_point(**p))
            .count();
        assert!(
            inside < pc.len() / 100,
            "{inside} points in the hollow core"
        );
    }

    #[test]
    fn models_are_distinct() {
        let a = generate(&ScanParams {
            model: ScanModel::Blob,
            num_points: 500,
            ..Default::default()
        });
        let b = generate(&ScanParams {
            model: ScanModel::TorusKnot,
            num_points: 500,
            ..Default::default()
        });
        assert_ne!(a.points, b.points);
    }

    #[test]
    fn deterministic_per_seed() {
        let p = ScanParams {
            model: ScanModel::TorusKnot,
            num_points: 777,
            noise: 0.001,
            seed: 3,
        };
        assert_eq!(generate(&p).points, generate(&p).points);
    }
}
