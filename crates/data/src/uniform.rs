//! Uniformly distributed point clouds — the "neutral" workload used by the
//! characterisation experiments of Section 3.2 (queries assigned uniformly
//! to grid cells).

use crate::PointCloud;
use rand::{Rng, SeedableRng};
use rand_chacha::ChaCha8Rng;
use rtnn_math::{Aabb, Vec3};

/// Parameters for the uniform generator.
#[derive(Debug, Clone, Copy)]
pub struct UniformParams {
    /// Number of points to generate.
    pub num_points: usize,
    /// Bounding box to fill.
    pub bounds: Aabb,
    /// PRNG seed.
    pub seed: u64,
}

impl Default for UniformParams {
    fn default() -> Self {
        UniformParams {
            num_points: 10_000,
            bounds: Aabb::new(Vec3::ZERO, Vec3::splat(100.0)),
            seed: 0xC0FFEE,
        }
    }
}

/// Generate a uniformly distributed cloud.
pub fn generate(params: &UniformParams) -> PointCloud {
    let mut rng = ChaCha8Rng::seed_from_u64(params.seed);
    let lo = params.bounds.min;
    let ext = params.bounds.extent();
    let points = (0..params.num_points)
        .map(|_| {
            Vec3::new(
                lo.x + rng.gen::<f32>() * ext.x,
                lo.y + rng.gen::<f32>() * ext.y,
                lo.z + rng.gen::<f32>() * ext.z,
            )
        })
        .collect();
    PointCloud::new(format!("Uniform-{}", params.num_points), points)
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn respects_count_and_bounds() {
        let params = UniformParams {
            num_points: 5000,
            ..Default::default()
        };
        let pc = generate(&params);
        assert_eq!(pc.len(), 5000);
        let b = pc.bounds();
        assert!(params.bounds.contains_aabb(&b));
    }

    #[test]
    fn deterministic_per_seed() {
        let a = generate(&UniformParams {
            seed: 7,
            num_points: 100,
            ..Default::default()
        });
        let b = generate(&UniformParams {
            seed: 7,
            num_points: 100,
            ..Default::default()
        });
        let c = generate(&UniformParams {
            seed: 8,
            num_points: 100,
            ..Default::default()
        });
        assert_eq!(a.points, b.points);
        assert_ne!(a.points, c.points);
    }

    #[test]
    fn fills_the_volume_roughly_evenly() {
        let pc = generate(&UniformParams {
            num_points: 8000,
            ..Default::default()
        });
        // Split the box into octants; each should hold roughly 1/8 of points.
        let c = Vec3::splat(50.0);
        let mut counts = [0usize; 8];
        for p in &pc.points {
            let idx =
                (p.x > c.x) as usize | ((p.y > c.y) as usize) << 1 | ((p.z > c.z) as usize) << 2;
            counts[idx] += 1;
        }
        for &n in &counts {
            assert!((600..1400).contains(&n), "octant count {n} far from 1000");
        }
    }
}
