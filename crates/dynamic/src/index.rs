//! The persistent [`DynamicIndex`]: a point cloud that survives across
//! query rounds, with stable point handles, in-place structure refits, and
//! policy-driven rebuilds — executing on any `rtnn::Backend`.

use crate::policy::RebuildPolicy;
use rtnn::{
    Accel, AdoptedScene, AutoTuner, Backend, CostCoefficients, GpusimBackend, Index, MegacellCache,
    MegacellGrid, QueryPlan, RtnnConfig, SearchError, SearchResults, StageOverrides, TunerDecision,
};
use rtnn_bvh::SahMonitor;
use rtnn_gpusim::{Device, FrameAccumulator};
use rtnn_math::{Aabb, Vec3};
use std::collections::BTreeSet;

/// What a frame did to the acceleration structure.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum StructureAction {
    /// Nothing moved since the last frame: every structure was reused as-is.
    Reused,
    /// Points moved; the structure was refitted in place and the megacell
    /// grid absorbed the motion incrementally.
    Refit,
    /// The structure was rebuilt from scratch (first frame, a structural
    /// insert/remove, a policy decision, or motion that escaped the grid).
    Rebuilt,
}

/// The outcome of one [`DynamicIndex::search`] round.
#[derive(Debug, Clone)]
pub struct FrameResult {
    /// The search results. Neighbor ids are *stable point handles* (the
    /// values returned by [`DynamicIndex::insert`]), not positions in some
    /// internal array, so they remain meaningful across frames.
    pub results: SearchResults,
    /// What happened to the acceleration structure this frame.
    pub action: StructureAction,
    /// SAH quality ratio of the (refitted) tree against its last rebuild
    /// (1.0 right after a rebuild; grows as the topology goes stale; stays
    /// 1.0 on backends that expose no tree quality).
    pub quality_ratio: f64,
    /// Simulated milliseconds spent on structure maintenance this frame
    /// (refit and/or rebuild time; also included in the results' breakdown).
    pub structure_ms: f64,
    /// *Host* wall-clock milliseconds this frame spent maintaining the
    /// persistent structures (AABB regeneration, refit or rebuild, grid
    /// refresh) — the part of the frame the streaming subsystem actually
    /// changes, measured directly so per-frame comparisons are not drowned
    /// by traversal wall-clock noise.
    pub host_structure_ms: f64,
}

/// A per-frame [`Index`] view over a [`DynamicIndex`]'s live points —
/// returned by [`DynamicIndex::as_index`] so heterogeneous
/// [`QueryPlan`]s (different radii, Ks, batches) can be answered against
/// the maintained structures without rebuilding anything.
pub struct FrameIndex<'a> {
    /// The adopted index. Querying it directly returns *compact* ids
    /// (positions into [`Index::points`]); use [`FrameIndex::query`] to get
    /// stable handles.
    pub index: Index<'a>,
    /// Compact id → stable handle translation for this frame.
    pub handles: &'a [u32],
}

impl FrameIndex<'_> {
    /// Answer `plan` against the frame's live points, translating neighbor
    /// ids into stable point handles.
    pub fn query(
        &mut self,
        queries: &[Vec3],
        plan: &QueryPlan,
    ) -> Result<SearchResults, SearchError> {
        self.query_with(queries, plan, StageOverrides::default())
    }

    /// [`query`](Self::query) with per-call
    /// [`StageOverrides`]: the frame executes through
    /// the same staged pipeline as every other entry point, so individual
    /// stages (reordering, partitioning) can be replaced or disabled per
    /// call even on a streaming scene.
    pub fn query_with(
        &mut self,
        queries: &[Vec3],
        plan: &QueryPlan,
        overrides: StageOverrides<'_>,
    ) -> Result<SearchResults, SearchError> {
        let mut results = self.index.query_with(queries, plan, overrides)?;
        for neighbors in results.neighbors.iter_mut() {
            for id in neighbors.iter_mut() {
                *id = self.handles[*id as usize];
            }
        }
        Ok(results)
    }
}

/// The execution backend a [`DynamicIndex`] runs on: the default
/// device-owned gpusim backend, or any caller-supplied `dyn Backend`.
enum BackendHolder<'d> {
    Owned(GpusimBackend<'d>),
    Borrowed(&'d dyn Backend),
}

impl<'d> BackendHolder<'d> {
    fn as_dyn(&self) -> &dyn Backend {
        match self {
            BackendHolder::Owned(b) => b,
            BackendHolder::Borrowed(b) => *b,
        }
    }
}

/// Outcome of one frame's structure maintenance. The maintenance *cost*
/// is not carried here — it accumulates in the pending accounting fields
/// and is drained by the next reporting search.
struct SyncInfo {
    action: StructureAction,
    quality_ratio: f64,
    dirty_region: Aabb,
}

/// A persistent neighbor-search index over a mutable point cloud.
///
/// Mutations ([`insert`](Self::insert), [`remove`](Self::remove),
/// [`move_point`](Self::move_point)) are cheap bookkeeping; the expensive
/// state — global acceleration structure, megacell grid, per-query megacell
/// cache — is maintained lazily at the next [`search`](Self::search):
///
/// * pure motion refits the structure in place (through the backend) and
///   refreshes the grid incrementally, then lets the [`RebuildPolicy`]
///   decide from the backend's structure timing whether the accumulated
///   quality loss justifies a rebuild;
/// * structural changes always rebuild (a refit cannot re-topologize);
/// * an untouched cloud reuses everything and pays zero structure cost.
///
/// Results are exact: every frame returns the same neighbor sets a freshly
/// constructed batch engine would (the refit path only ever changes *how
/// fast* the correct answer is found, never which answer).
pub struct DynamicIndex<'d> {
    backend: BackendHolder<'d>,
    config: RtnnConfig,
    policy: RebuildPolicy,
    /// Slot-stable storage: `positions[h]` is point handle `h`.
    positions: Vec<Vec3>,
    live: Vec<bool>,
    num_live: usize,
    /// Compacted live positions, the engine-facing view.
    compact: Vec<Vec3>,
    compact_to_slot: Vec<u32>,
    slot_to_compact: Vec<u32>,
    membership_dirty: bool,
    moved_slots: BTreeSet<u32>,
    /// Structure state (None until the first search).
    accel: Option<Accel>,
    monitor: Option<SahMonitor>,
    grid: Option<MegacellGrid>,
    cache: MegacellCache,
    /// Union of every grid dirty region not yet durably absorbed into the
    /// megacell cache: refits accumulate it, and it is only cleared when a
    /// search actually ran the cached partitioning pass (or a rebuild
    /// dropped the cache wholesale). A [`FrameIndex`] that is dropped
    /// unused, or queried only with batches, therefore never loses an
    /// invalidation.
    pending_dirty: Aabb,
    /// Structure-maintenance cost (simulated / host wall-clock) incurred
    /// but not yet reported through a [`FrameResult`]: maintenance done for
    /// a dropped-or-unqueried view accumulates here and the next search
    /// drains it, so no work ever vanishes from the accounting.
    pending_structure_ms: f64,
    pending_host_structure_ms: f64,
    last_traversal_ms: Option<f64>,
    metrics: FrameAccumulator,
    /// Online stage tuner, carried *across* frames (the per-frame adopted
    /// [`Index`] views are transient, so the learning state lives here):
    /// installed by [`enable_auto`](Self::enable_auto), it picks the
    /// optimization level each [`search`](Self::search) frame runs at and
    /// folds the frame's measured stage timings back in afterwards.
    tuner: Option<AutoTuner>,
    last_decision: Option<TunerDecision>,
}

impl<'d> DynamicIndex<'d> {
    /// An empty index on the default (gpusim) backend with the default
    /// (adaptive) rebuild policy.
    pub fn new(device: &'d Device, config: RtnnConfig) -> Self {
        Self::with_policy(device, config, RebuildPolicy::default())
    }

    /// An empty index on the default backend with an explicit policy.
    pub fn with_policy(device: &'d Device, config: RtnnConfig, policy: RebuildPolicy) -> Self {
        Self::from_holder(
            BackendHolder::Owned(GpusimBackend::new(device)),
            config,
            policy,
        )
    }

    /// An empty index on an explicit execution backend.
    pub fn with_backend(
        backend: &'d dyn Backend,
        config: RtnnConfig,
        policy: RebuildPolicy,
    ) -> Self {
        Self::from_holder(BackendHolder::Borrowed(backend), config, policy)
    }

    fn from_holder(backend: BackendHolder<'d>, config: RtnnConfig, policy: RebuildPolicy) -> Self {
        DynamicIndex {
            backend,
            config,
            policy,
            positions: Vec::new(),
            live: Vec::new(),
            num_live: 0,
            compact: Vec::new(),
            compact_to_slot: Vec::new(),
            slot_to_compact: Vec::new(),
            membership_dirty: false,
            moved_slots: BTreeSet::new(),
            accel: None,
            monitor: None,
            grid: None,
            cache: MegacellCache::default(),
            last_traversal_ms: None,
            metrics: FrameAccumulator::default(),
            pending_dirty: Aabb::EMPTY,
            pending_structure_ms: 0.0,
            pending_host_structure_ms: 0.0,
            tuner: None,
            last_decision: None,
        }
    }

    /// An index seeded with `points` (handles `0..points.len()`).
    pub fn with_points(device: &'d Device, config: RtnnConfig, points: &[Vec3]) -> Self {
        let mut index = Self::new(device, config);
        for &p in points {
            index.insert(p);
        }
        index
    }

    /// Insert a point; returns its stable handle.
    pub fn insert(&mut self, p: Vec3) -> u32 {
        let handle = self.positions.len() as u32;
        self.positions.push(p);
        self.live.push(true);
        self.num_live += 1;
        self.membership_dirty = true;
        handle
    }

    /// Remove a point by handle. Returns false if the handle is unknown or
    /// already removed. The handle is never reused.
    pub fn remove(&mut self, handle: u32) -> bool {
        match self.live.get_mut(handle as usize) {
            Some(alive) if *alive => {
                *alive = false;
                self.num_live -= 1;
                self.membership_dirty = true;
                self.moved_slots.remove(&handle);
                true
            }
            _ => false,
        }
    }

    /// Move a live point to a new position. Returns false for unknown or
    /// removed handles.
    pub fn move_point(&mut self, handle: u32, p: Vec3) -> bool {
        match self.live.get(handle as usize) {
            Some(true) => {
                self.positions[handle as usize] = p;
                self.moved_slots.insert(handle);
                true
            }
            _ => false,
        }
    }

    /// Current position of a live point.
    pub fn position(&self, handle: u32) -> Option<Vec3> {
        match self.live.get(handle as usize) {
            Some(true) => Some(self.positions[handle as usize]),
            _ => None,
        }
    }

    /// Number of live points.
    pub fn len(&self) -> usize {
        self.num_live
    }

    /// True if the index holds no live points.
    pub fn is_empty(&self) -> bool {
        self.num_live == 0
    }

    /// The engine configuration the index searches with.
    pub fn config(&self) -> &RtnnConfig {
        &self.config
    }

    /// The rebuild policy.
    pub fn policy(&self) -> &RebuildPolicy {
        &self.policy
    }

    /// The execution backend.
    pub fn backend(&self) -> &dyn Backend {
        self.backend.as_dyn()
    }

    /// Accumulated per-frame metrics (frames, rebuild/refit counts,
    /// amortized simulated cost).
    pub fn frame_metrics(&self) -> &FrameAccumulator {
        &self.metrics
    }

    /// Switch [`search`](Self::search) frames to adaptive stage tuning:
    /// every frame, an [`AutoTuner`] (seeded with `seed`, cost model
    /// calibrated for the backend's device) picks the optimization level
    /// the frame executes at and absorbs the frame's measured stage
    /// timings afterwards. The tuner state persists across frames — and
    /// across refits and rebuilds — so a long-running scene converges on
    /// its measured best ladder rung instead of re-deriving it.
    ///
    /// Tuning changes *which* stages run, never the answer: every frame
    /// still returns exactly the neighbor sets a fresh engine would.
    pub fn enable_auto(&mut self, seed: u64) {
        self.tuner = Some(
            AutoTuner::new(seed)
                .with_cost_model(CostCoefficients::calibrate(self.backend.as_dyn().device())),
        );
    }

    /// The tuner's most recent per-frame decision (`None` until an
    /// auto-tuned [`search`](Self::search) frame ran).
    pub fn last_decision(&self) -> Option<TunerDecision> {
        self.last_decision
    }

    /// The carried tuner state, when [`enable_auto`](Self::enable_auto)
    /// installed one.
    pub fn tuner(&self) -> Option<&AutoTuner> {
        self.tuner.as_ref()
    }

    /// Run one query round against the current point positions.
    ///
    /// Maintains the persistent structures first (refit / incremental grid
    /// refresh / rebuild, as the state and policy demand), then searches
    /// through a per-frame [`Index`] view adopting them. Neighbor ids in
    /// the returned results are stable point handles.
    ///
    /// Because the frame searches through an adopted [`Index`] view, every
    /// frame query also feeds the ambient sink's continuous profiler (when
    /// one is attached): the signature keys on the frame's *live* density
    /// and the dynamic index's backend, so drifting scenes profile under
    /// the buckets they currently occupy.
    pub fn search(&mut self, queries: &[Vec3]) -> Result<FrameResult, SearchError> {
        let tel = rtnn_telemetry::Telemetry::current();
        let mut frame_span = tel.as_ref().map(|t| t.span("dynamic.frame"));
        if let Some(t) = &tel {
            t.counter_add("dynamic.frames", 1);
        }
        let sync = self.sync_structures()?;
        // Drain *all* maintenance cost not yet reported — this frame's plus
        // anything charged by views that were dropped without a query — so
        // no simulated work ever vanishes from the accounting.
        let structure_ms = std::mem::take(&mut self.pending_structure_ms);
        let host_structure_ms = std::mem::take(&mut self.pending_host_structure_ms);

        let plan = self.config.plan();
        // Adaptive tuning: decide the frame's ladder rung *before* the view
        // borrows the structures. The decision keys on the frame's live
        // density, so a drifting scene migrates between signatures exactly
        // as the continuous profiler files it.
        let decision = match self.tuner.as_mut() {
            Some(tuner) => {
                let n = self.compact.len();
                let backend = self.backend.as_dyn().name();
                Some(tuner.decide(plan.kind_label(), n, backend, queries.len()))
            }
            None => None,
        };
        let mut view = self.frame_view(sync.dirty_region, structure_ms);
        let results = match decision {
            Some(d) => view.query_with(queries, &plan, d.overrides())?,
            None => view.query(queries, &plan)?,
        };
        drop(view);

        // The cached partitioning pass ran exactly when partitioning is on,
        // a grid exists and the search was non-trivial — the pending dirty
        // region has then been absorbed into the cache and can be retired.
        // Under auto tuning "partitioning is on" is the *decision's* level,
        // not the config's: a frame the tuner ran at a lower rung never
        // touched the cache, so its invalidations must stay pending.
        let effective_opt = decision.map_or(self.config.opt, |d| d.level);
        if effective_opt >= rtnn::OptLevel::SchedPartition
            && self.grid.is_some()
            && !queries.is_empty()
            && !self.compact.is_empty()
        {
            self.pending_dirty = Aabb::EMPTY;
        }
        if let Some(d) = decision {
            if let Some(tuner) = self.tuner.as_mut() {
                tuner.observe(
                    plan.kind_label(),
                    self.compact.len(),
                    self.backend.as_dyn().name(),
                    d.level,
                    &results.trace.stage_device_ms(),
                    // `bvh_ms` carries the frame's structure maintenance
                    // (billed to the Launch slot): exclude it so arms
                    // compete on steady-state traversal cost.
                    results.breakdown.bvh_ms,
                );
            }
            self.last_decision = Some(d);
        }

        self.last_traversal_ms = Some(results.breakdown.fs_ms + results.breakdown.search_ms);
        self.metrics.record_frame(
            &results.search_metrics.kernel,
            structure_ms,
            results.total_time_ms(),
        );
        match sync.action {
            StructureAction::Rebuilt => self.metrics.rebuilds += 1,
            StructureAction::Refit => self.metrics.refits += 1,
            StructureAction::Reused => {}
        }
        if let Some(t) = &tel {
            let action = match sync.action {
                StructureAction::Rebuilt => "dynamic.rebuilds",
                StructureAction::Refit => "dynamic.refits",
                StructureAction::Reused => "dynamic.reuses",
            };
            t.counter_add(action, 1);
            t.observe("dynamic.structure_ms", structure_ms);
        }
        if let Some(span) = frame_span.as_mut() {
            span.attr("queries", queries.len() as f64)
                .attr("structure_ms", structure_ms)
                .attr("device_ms", results.trace.device_total_ms())
                .attr_wall("host_structure_ms", host_structure_ms);
        }
        drop(frame_span);

        Ok(FrameResult {
            results,
            action: sync.action,
            quality_ratio: sync.quality_ratio,
            structure_ms,
            host_structure_ms,
        })
    }

    /// Maintain the structures for the current positions and return a
    /// per-frame [`Index`] view adopting them — the escape hatch for
    /// heterogeneous plans: any [`QueryPlan`] (other radii, Ks, a
    /// [`QueryPlan::Batch`]) can be answered against the live scene
    /// without rebuilding anything.
    ///
    /// Structure-maintenance cost triggered by this call is *not* charged
    /// to the view's queries: it stays pending and is reported (simulated
    /// and host) by the next [`search`](Self::search) frame, so a view that
    /// is dropped without a query loses no accounting. View queries are not
    /// recorded in [`frame_metrics`](Self::frame_metrics).
    pub fn as_index(&mut self) -> Result<FrameIndex<'_>, SearchError> {
        let sync = self.sync_structures()?;
        Ok(self.frame_view(sync.dirty_region, 0.0))
    }

    /// Build the per-frame adopted view both query paths share. The
    /// adopted megacell cache is tagged with the config's params, so view
    /// plans with other radii/K bypass it instead of wiping it.
    fn frame_view(&mut self, dirty_region: Aabb, structure_ms: f64) -> FrameIndex<'_> {
        let accel = self
            .accel
            .as_ref()
            .expect("structure exists after maintenance");
        let mut index = Index::adopt(
            self.backend.as_dyn(),
            &self.compact,
            self.config.engine(),
            AdoptedScene {
                accel,
                grid: self.grid.as_ref(),
                dirty_region,
                cache: Some(&mut self.cache),
                cache_params: Some(self.config.params),
            },
        );
        index.charge_structure_ms(structure_ms);
        FrameIndex {
            index,
            handles: &self.compact_to_slot,
        }
    }

    /// Fold pending mutations into the compacted view and bring the
    /// structures up to date (refit / rebuild / reuse, per state and
    /// policy).
    fn sync_structures(&mut self) -> Result<SyncInfo, SearchError> {
        // Validate early so invalid configs fail before touching state.
        self.config.params.validate().map_err(SearchError::from)?;
        let width = self.config.global_aabb_width();

        let membership_was_dirty = self.membership_dirty;
        if membership_was_dirty {
            self.refresh_compact();
            self.membership_dirty = false;
        } else {
            for &slot in &self.moved_slots {
                let c = self.slot_to_compact[slot as usize];
                if c != u32::MAX {
                    self.compact[c as usize] = self.positions[slot as usize];
                }
            }
        }
        let n = self.compact.len();

        let host_structure_start = std::time::Instant::now();
        let mut structure_ms = 0.0;
        let mut quality_ratio = 1.0;
        let mut dirty_region = Aabb::EMPTY;
        let structural = membership_was_dirty
            || self.accel.is_none()
            || self.accel.as_ref().map(Accel::num_primitives) != Some(n);
        let action = if structural
            || (!self.moved_slots.is_empty() && self.policy.always_rebuilds())
        {
            // Structural changes cannot be refitted; a rebuild-every-frame
            // policy goes straight to the build so the baseline pays exactly
            // one build per motion frame (no exploratory refit).
            structure_ms += self.rebuild_structures(width)?;
            StructureAction::Rebuilt
        } else if !self.moved_slots.is_empty() {
            // Refit first (cheap), measure the quality, then let the policy
            // decide from the backend's timing whether a rebuild pays for
            // itself.
            let outcome = {
                let backend = self.backend.as_dyn();
                let accel = self.accel.as_mut().expect("checked above");
                backend.refit(accel, &self.compact)
            };
            match outcome {
                Some(refit) => {
                    structure_ms += refit.refit_ms;
                    quality_ratio = match (refit.sah_after, self.monitor.as_ref()) {
                        (Some(sah), Some(m)) if m.built_sah() > 0.0 => {
                            (sah / m.built_sah()).max(1.0)
                        }
                        _ => 1.0,
                    };
                    // Attach the measured host-side construction profile so
                    // the policy's `(q − 1)·S > B − R` coefficients reflect
                    // *parallel* build/refit costs: the build profile of the
                    // structure we would be replacing, combined with the
                    // refit we just ran.
                    let host = {
                        let accel = self.accel.as_ref().expect("checked above");
                        match accel.host_build_profile() {
                            Some(build) => build.combine(&refit.host),
                            None => refit.host,
                        }
                    };
                    let timing = self
                        .backend
                        .as_dyn()
                        .timing(n)
                        .with_host_profile(host.host_wall_ms, host.work_ms);
                    if self
                        .policy
                        .should_rebuild(quality_ratio, &timing, self.last_traversal_ms)
                    {
                        structure_ms += self.rebuild_structures(width)?;
                        StructureAction::Rebuilt
                    } else {
                        dirty_region = self.refresh_grid();
                        StructureAction::Refit
                    }
                }
                None => {
                    // The backend cannot refit this structure — rebuild.
                    structure_ms += self.rebuild_structures(width)?;
                    StructureAction::Rebuilt
                }
            }
        } else {
            StructureAction::Reused
        };
        let host_structure_ms = host_structure_start.elapsed().as_secs_f64() * 1e3;
        self.pending_structure_ms += structure_ms;
        self.pending_host_structure_ms += host_structure_ms;
        self.moved_slots.clear();

        // Fold this frame's invalidation into the not-yet-absorbed union;
        // a rebuild dropped the cache wholesale, so nothing is pending.
        self.pending_dirty = match action {
            StructureAction::Rebuilt => Aabb::EMPTY,
            _ => self.pending_dirty.union(&dirty_region),
        };

        Ok(SyncInfo {
            action,
            quality_ratio,
            dirty_region: self.pending_dirty,
        })
    }

    /// Rebuild the compacted live-point view after membership changes.
    fn refresh_compact(&mut self) {
        self.compact.clear();
        self.compact_to_slot.clear();
        self.slot_to_compact.clear();
        self.slot_to_compact.resize(self.positions.len(), u32::MAX);
        for (slot, &p) in self.positions.iter().enumerate() {
            if self.live[slot] {
                self.slot_to_compact[slot] = self.compact.len() as u32;
                self.compact_to_slot.push(slot as u32);
                self.compact.push(p);
            }
        }
    }

    /// Grid-resolution budget for this cloud: the configured cap, bounded to
    /// a small multiple of the point count. The paper's "smallest cell size
    /// the memory allows" guidance targets clouds with many more points than
    /// cells; a streaming index that re-bins every refresh must not pay for
    /// millions of cells around a few thousand points.
    fn grid_budget(&self) -> usize {
        self.config
            .grid_max_cells
            .min((16 * self.compact.len().max(1)).next_power_of_two())
    }

    /// Rebuild the global structure, SAH baseline, megacell grid and cache
    /// from the current compact positions through the backend; returns the
    /// simulated build time.
    fn rebuild_structures(&mut self, width: f32) -> Result<f64, SearchError> {
        let budget = self.grid_budget();
        let accel = {
            let backend = self.backend.as_dyn();
            backend
                .build(&self.compact, width, self.config.build)
                .map_err(SearchError::OutOfDeviceMemory)?
        };
        let build_ms = accel.build_time_ms();
        // Backends that expose tree quality seed the SAH baseline; opaque
        // backends leave the monitor empty (quality stays 1.0).
        self.monitor = accel.gas().map(|g| SahMonitor::baseline(g.bvh()));
        self.accel = Some(accel);
        self.grid = MegacellGrid::build(&self.compact, budget);
        self.cache.invalidate_all(0);
        Ok(build_ms)
    }

    /// Absorb this frame's motion into the megacell grid; returns the dirty
    /// region for the per-query cache (empty when nothing changed cells).
    /// Falls back to a wholesale grid rebuild when the motion escaped the
    /// grid bounds.
    fn refresh_grid(&mut self) -> Aabb {
        let budget = self.grid_budget();
        let Some(grid) = self.grid.as_mut() else {
            self.grid = MegacellGrid::build(&self.compact, budget);
            self.cache.invalidate_all(0);
            return Aabb::EMPTY;
        };
        let moved_compact: Vec<u32> = self
            .moved_slots
            .iter()
            .map(|&slot| self.slot_to_compact[slot as usize])
            .filter(|&c| c != u32::MAX)
            .collect();
        match grid.refresh(&self.compact, &moved_compact) {
            rtnn::GridRefresh::Incremental { dirty_region, .. } => dirty_region,
            rtnn::GridRefresh::NeedsRebuild => {
                self.grid = MegacellGrid::build(&self.compact, budget);
                self.cache.invalidate_all(0);
                Aabb::EMPTY
            }
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use rtnn::{OptLevel, OptixBackend, PlanSlice, SearchParams};

    fn jittered_block(n_per_axis: usize, spacing: f32) -> Vec<Vec3> {
        let mut pts = Vec::new();
        for x in 0..n_per_axis {
            for y in 0..n_per_axis {
                for z in 0..n_per_axis {
                    let j = 0.05 * spacing * ((x * 7 + y * 13 + z * 29) % 10) as f32 / 10.0;
                    pts.push(Vec3::new(
                        x as f32 * spacing + j,
                        y as f32 * spacing - j,
                        z as f32 * spacing + j,
                    ));
                }
            }
        }
        pts
    }

    fn sorted(mut v: Vec<u32>) -> Vec<u32> {
        v.sort_unstable();
        v
    }

    #[test]
    fn first_frame_rebuilds_then_pure_motion_refits() {
        let device = Device::rtx_2080();
        let points = jittered_block(6, 0.5);
        let config = RtnnConfig::new(SearchParams::knn(1.2, 8));
        let mut index = DynamicIndex::with_points(&device, config, &points);
        let queries: Vec<Vec3> = points.iter().step_by(3).copied().collect();
        let f0 = index.search(&queries).unwrap();
        assert_eq!(f0.action, StructureAction::Rebuilt);
        // Small drift: the policy keeps the refitted tree.
        for h in 0..points.len() as u32 {
            let p = index.position(h).unwrap();
            index.move_point(h, p + Vec3::new(0.002, -0.001, 0.001));
        }
        let f1 = index.search(&queries).unwrap();
        assert_eq!(f1.action, StructureAction::Refit);
        assert!(f1.quality_ratio >= 1.0);
        assert!(f1.structure_ms < f0.structure_ms);
        // No motion at all: everything is reused, zero structure cost.
        let f2 = index.search(&queries).unwrap();
        assert_eq!(f2.action, StructureAction::Reused);
        assert_eq!(f2.structure_ms, 0.0);
        assert_eq!(index.frame_metrics().frames, 3);
        assert_eq!(index.frame_metrics().rebuilds, 1);
        assert_eq!(index.frame_metrics().refits, 1);
    }

    #[test]
    fn results_match_a_fresh_engine_every_frame() {
        let device = Device::rtx_2080();
        let mut points = jittered_block(6, 0.5);
        let params = SearchParams::range(1.1, 1000);
        let config = RtnnConfig::new(params);
        let mut index = DynamicIndex::with_points(&device, config, &points);
        for frame in 0..5 {
            for (h, p) in points.iter_mut().enumerate() {
                p.z *= 0.97;
                p.x += 0.01 * ((h % 5) as f32 - 2.0);
                index.move_point(h as u32, *p);
            }
            let queries: Vec<Vec3> = points.iter().step_by(4).copied().collect();
            let dynamic = index.search(&queries).unwrap();
            #[allow(deprecated)] // the legacy shim is the reference here
            let fresh = rtnn::Rtnn::new(&device, config)
                .search(&points, &queries)
                .unwrap();
            for (qi, (d, f)) in dynamic
                .results
                .neighbors
                .iter()
                .zip(&fresh.neighbors)
                .enumerate()
            {
                assert_eq!(
                    sorted(d.clone()),
                    sorted(f.clone()),
                    "frame {frame} query {qi}: dynamic vs fresh mismatch"
                );
            }
        }
    }

    #[test]
    fn insert_and_remove_force_a_rebuild_and_keep_handles_stable() {
        let device = Device::rtx_2080();
        let points = jittered_block(4, 1.0);
        let config = RtnnConfig::new(SearchParams::range(1.5, 64)).with_opt(OptLevel::Sched);
        let mut index = DynamicIndex::with_points(&device, config, &points);
        index.search(&[Vec3::ZERO]).unwrap();

        // Remove a point and add one far away; handles shift for nobody.
        assert!(index.remove(3));
        assert!(!index.remove(3), "double remove must fail");
        let far = index.insert(Vec3::new(50.0, 50.0, 50.0));
        assert_eq!(index.len(), points.len());
        let frame = index.search(&[Vec3::new(50.0, 50.0, 50.0)]).unwrap();
        assert_eq!(frame.action, StructureAction::Rebuilt);
        // The query at the inserted point must see it, by its handle.
        assert!(frame.results.neighbors[0].contains(&far));
        // And the removed point never appears again.
        let all = index.search(&points).unwrap();
        for neighbors in &all.results.neighbors {
            assert!(!neighbors.contains(&3), "removed handle reported");
        }
        assert!(index.position(3).is_none());
        assert!(!index.move_point(3, Vec3::ZERO));
    }

    #[test]
    fn empty_and_growing_index_work() {
        let device = Device::rtx_2080();
        let config = RtnnConfig::new(SearchParams::knn(1.0, 4));
        let mut index = DynamicIndex::new(&device, config);
        assert!(index.is_empty());
        let empty = index.search(&[Vec3::ZERO]).unwrap();
        assert!(empty.results.neighbors[0].is_empty());
        let h = index.insert(Vec3::new(0.1, 0.0, 0.0));
        let one = index.search(&[Vec3::ZERO]).unwrap();
        assert_eq!(one.results.neighbors[0], vec![h]);
    }

    #[test]
    fn heavy_scrambling_eventually_triggers_a_policy_rebuild() {
        let device = Device::rtx_2080();
        let points = jittered_block(8, 0.5);
        let config = RtnnConfig::new(SearchParams::knn(1.2, 8));
        let mut index = DynamicIndex::with_points(&device, config, &points);
        let queries: Vec<Vec3> = points.iter().step_by(2).copied().collect();
        index.search(&queries).unwrap();
        // Scramble: teleport every point to a hash-derived position so the
        // frozen topology degrades fast. The adaptive policy must fire a
        // rebuild within a few frames (the safety cap guarantees it at the
        // latest).
        let mut saw_rebuild = false;
        for frame in 0..6u32 {
            for h in 0..points.len() as u32 {
                let mix = |salt: u32| {
                    let x = h
                        .wrapping_mul(2654435761)
                        .wrapping_add(frame.wrapping_mul(40503))
                        .wrapping_add(salt.wrapping_mul(97));
                    (x % 4000) as f32 / 1000.0
                };
                index.move_point(h, Vec3::new(mix(1), mix(2), mix(3)));
            }
            let f = index.search(&queries).unwrap();
            if f.action == StructureAction::Rebuilt {
                saw_rebuild = true;
                assert!(index.frame_metrics().rebuilds >= 2);
                break;
            }
        }
        assert!(saw_rebuild, "policy never rebuilt under heavy scrambling");
    }

    #[test]
    fn frame_index_view_answers_heterogeneous_plans_with_stable_handles() {
        let device = Device::rtx_2080();
        let points = jittered_block(6, 0.6);
        let config = RtnnConfig::new(SearchParams::knn(1.2, 8));
        let mut index = DynamicIndex::with_points(&device, config, &points);
        let queries: Vec<Vec3> = points.iter().step_by(5).copied().collect();
        index.search(&queries).unwrap();

        // A frame view answers plans the fused config never mentioned.
        let mut view = index.as_index().unwrap();
        let knn = view.query(&queries, &QueryPlan::knn(1.8, 4)).unwrap();
        let batch = view
            .query(
                &queries,
                &QueryPlan::Batch(vec![
                    PlanSlice::new(QueryPlan::knn(0.9, 3), vec![0, 1]),
                    PlanSlice::new(QueryPlan::range(1.5, 32), vec![2]),
                ]),
            )
            .unwrap();
        drop(view);
        // Handles are stable ids: every reported neighbor is a live handle
        // at the position the searcher saw.
        for (qi, q) in queries.iter().enumerate() {
            for &h in &knn.neighbors[qi] {
                let p = index.position(h).expect("live handle");
                assert!(q.distance(p) < 1.8);
            }
        }
        for &h in &batch.neighbors[2] {
            let p = index.position(h).expect("live handle");
            assert!(queries[2].distance(p) < 1.5);
        }
        // The view shares the maintained structures; frame metrics are not
        // advanced by view queries.
        assert_eq!(index.frame_metrics().frames, 1);
    }

    #[test]
    fn dropped_or_batch_only_views_never_lose_cache_invalidations() {
        // A FrameIndex that is dropped unused (or queried only with batch
        // plans, which bypass the megacell cache) must not swallow the
        // frame's grid dirty region: the next search still has to treat the
        // cache entries whose reach the earlier motion touched as stale.
        //
        // The scene is built to make a lost invalidation observable: a
        // dense clump right at the query (its cached megacell is tiny), a
        // mid-distance shell that becomes the true nearest set once the
        // clump scatters, and a lone far sentinel whose later motion
        // produces a dirty region that does NOT overlap the query's reach.
        let device = Device::rtx_2080();
        let mut points: Vec<Vec3> = Vec::new();
        let centre = Vec3::new(10.0, 10.0, 10.0);
        let clump = 30usize;
        for i in 0..clump {
            // Dense clump within ~0.1 of the query position: its cached
            // megacell is a single fine grid cell.
            let f = i as f32;
            points.push(
                centre
                    + Vec3::new(
                        (f * 0.731).sin() * 0.1,
                        (f * 1.137).cos() * 0.1,
                        (f * 0.389).sin() * 0.1,
                    ),
            );
        }
        for i in 0..600 {
            // Mid-distance shell inside the radius, every point at a
            // *distinct* distance (2.5 + i/1000) so there are no ties.
            let a = i as f32 * 0.41;
            let b = i as f32 * 0.17;
            let rho = 2.5 + i as f32 * 0.001;
            points.push(centre + Vec3::new(a.sin() * b.cos(), a.cos() * b.cos(), b.sin()) * rho);
        }
        // Filler far outside the query's reach: raises the point count so
        // the megacell grid gets a fine cell size (the staleness window
        // only exists when the cached box is much smaller than the radius).
        let filler_base = points.len();
        for i in 0..3400 {
            let f = i as f32;
            points.push(Vec3::new(
                30.0 + (f * 0.617) % 10.0,
                30.0 + (f * 0.389) % 10.0,
                30.0 + (f * 0.829) % 10.0,
            ));
        }
        let sentinel = filler_base as u32;

        let k = 8;
        let params = SearchParams::knn(6.0, k);
        let config = RtnnConfig::new(params);
        let mut index = DynamicIndex::with_points(&device, config, &points);
        let queries = vec![centre];
        index.search(&queries).unwrap(); // cache: tiny megacell (clump)

        // Frame 2: the clump scatters out of the search radius entirely;
        // structures are synced through a view that is immediately dropped.
        for h in 0..clump as u32 {
            let p = points[h as usize] + Vec3::new(0.0, 0.0, 8.0);
            points[h as usize] = p;
            index.move_point(h, p);
        }
        drop(index.as_index().unwrap());

        // Frame 3: only the far sentinel twitches — its dirty region does
        // not overlap the query's reach, so a per-frame dirty region would
        // let the stale tiny megacell pass the overlap check and miss the
        // shell entirely.
        let moved = points[sentinel as usize] + Vec3::new(0.5, 0.0, 0.0);
        points[sentinel as usize] = moved;
        index.move_point(sentinel, moved);

        let frame = index.search(&queries).unwrap();
        assert_eq!(
            frame.action,
            StructureAction::Refit,
            "scenario precondition"
        );
        let expected = rtnn::verify::brute_force_knn(&points, centre, 6.0, k);
        assert_eq!(
            sorted(frame.results.neighbors[0].clone()),
            sorted(expected),
            "stale megacell cache leaked through a dropped view"
        );
    }

    #[test]
    fn dropped_views_never_lose_structure_cost_accounting() {
        // Maintenance triggered by as_index() is not charged to the view;
        // it stays pending and the next search frame reports it, so a
        // dropped view loses no simulated cost from the accounting.
        let device = Device::rtx_2080();
        let points = jittered_block(6, 0.5);
        let config = RtnnConfig::new(SearchParams::knn(1.2, 8));
        let mut index = DynamicIndex::with_points(&device, config, &points);
        let queries: Vec<Vec3> = points.iter().step_by(4).copied().collect();
        index.search(&queries).unwrap();

        // Motion, then a view that is dropped without being queried: the
        // refit ran during as_index() and must not vanish.
        for h in 0..points.len() as u32 {
            let p = index.position(h).unwrap();
            index.move_point(h, p + Vec3::new(0.003, 0.0, -0.002));
        }
        drop(index.as_index().unwrap());
        let structure_before = index.frame_metrics().structure_ms;

        // No further motion: the frame reuses everything, but reports the
        // carried refit cost.
        let frame = index.search(&queries).unwrap();
        assert_eq!(frame.action, StructureAction::Reused);
        assert!(
            frame.structure_ms > 0.0,
            "the dropped view's refit cost must be carried to this frame"
        );
        assert!(index.frame_metrics().structure_ms > structure_before);
    }

    #[test]
    fn view_plans_with_other_params_stay_exact() {
        // The persistent megacell cache is populated under the config's
        // params; a view plan with a *larger* K (or radius) must not trust
        // those undersized megacells.
        let device = Device::rtx_2080();
        let points = jittered_block(7, 0.5);
        let config = RtnnConfig::new(SearchParams::knn(1.0, 2));
        let mut index = DynamicIndex::with_points(&device, config, &points);
        let queries: Vec<Vec3> = points.iter().step_by(3).copied().collect();
        index.search(&queries).unwrap(); // cache grown for k = 2

        let mut view = index.as_index().unwrap();
        let wide = view.query(&queries, &QueryPlan::knn(1.6, 24)).unwrap();
        drop(view);
        // Compare distance sequences (the jittered block has equidistant
        // ties at the k-boundary, where ids are traversal-order-defined; a
        // stale undersized megacell would *miss* a closer point and shift
        // the distances).
        for (qi, q) in queries.iter().enumerate() {
            let dists = |ids: &[u32]| -> Vec<f32> {
                ids.iter()
                    .map(|&id| q.distance(points[id as usize]))
                    .collect()
            };
            assert_eq!(
                dists(&wide.neighbors[qi]),
                dists(&rtnn::verify::brute_force_knn(&points, *q, 1.6, 24)),
                "query {qi}: k=2 megacells must not serve a k=24 plan"
            );
        }
    }

    #[test]
    fn frame_searches_feed_the_continuous_profiler() {
        use rtnn_telemetry::{SignatureProfiler, Telemetry, TelemetryLevel};
        let device = Device::rtx_2080();
        let points = jittered_block(5, 0.6);
        let config = RtnnConfig::new(SearchParams::knn(1.2, 6));
        let mut index = DynamicIndex::with_points(&device, config, &points);
        let queries: Vec<Vec3> = points.iter().step_by(4).copied().collect();
        let plain = index.search(&queries).unwrap();
        let tel = Telemetry::new(TelemetryLevel::Basic);
        tel.enable_profiler(SignatureProfiler::default());
        let observed = Telemetry::scoped(&tel, || index.search(&queries)).unwrap();
        assert_eq!(
            plain.results.neighbors, observed.results.neighbors,
            "profiling a frame never changes its results"
        );
        let snap = tel.profile_snapshot().unwrap();
        let profile = snap
            .lookup("knn", index.len(), index.backend().name())
            .expect("the frame query profiled under its live density");
        assert_eq!(profile.executions, 1);
        assert_eq!(profile.stage("Launch").unwrap().count, 1);
        assert!(
            profile.total.mean_ms > 0.0,
            "a non-trivial frame charges device time"
        );
    }

    #[test]
    fn auto_tuned_frames_stay_exact_and_carry_state_across_frames() {
        let device = Device::rtx_2080();
        let points = jittered_block(6, 0.5);
        let config = RtnnConfig::new(SearchParams::knn(1.2, 8));
        let queries: Vec<Vec3> = points.iter().step_by(3).copied().collect();

        let drive = |seed: Option<u64>| -> (Vec<Vec<Vec<u32>>>, Vec<Option<rtnn::OptLevel>>) {
            let mut index = DynamicIndex::with_points(&device, config, &points);
            if let Some(seed) = seed {
                index.enable_auto(seed);
            }
            let mut neighbors = Vec::new();
            let mut levels = Vec::new();
            for frame in 0..8u32 {
                for h in 0..points.len() as u32 {
                    let p = index.position(h).unwrap();
                    index.move_point(h, p + Vec3::new(0.001 * frame as f32, -0.001, 0.0005));
                }
                let f = index.search(&queries).unwrap();
                neighbors.push(f.results.neighbors.clone());
                levels.push(index.last_decision().map(|d| d.level));
            }
            (neighbors, levels)
        };

        let (static_neighbors, static_levels) = drive(None);
        let (auto_neighbors, auto_levels) = drive(Some(7));
        let (auto_again, auto_levels_again) = drive(Some(7));

        assert!(static_levels.iter().all(Option::is_none));
        assert!(
            auto_levels.iter().all(Option::is_some),
            "every frame decides"
        );
        assert_eq!(
            auto_levels, auto_levels_again,
            "same seed, same motion: identical decision sequence"
        );
        assert_eq!(auto_neighbors, auto_again, "bit-equal replay");
        // Tuning changes *which* stages run, never the answer: ids must
        // match the untuned frames bit-for-bit on every frame, including
        // the early frames the tuner spends exploring low ladder rungs.
        assert_eq!(auto_neighbors, static_neighbors);
        // The state survived across frames: by frame 8 all four arms have
        // been bootstrapped, so later frames exploit measurements.
        let mut index = DynamicIndex::with_points(&device, config, &points);
        index.enable_auto(7);
        for _ in 0..8 {
            index.search(&queries).unwrap();
        }
        let report = index.tuner().unwrap().report();
        assert_eq!(report.len(), 1, "one signature: knn at this density");
        assert_eq!(report[0].measured_arms, 4, "all arms bootstrapped");
        assert_eq!(report[0].decisions, 8);
    }

    #[test]
    fn explicit_backends_drive_the_dynamic_index() {
        // The opaque OptiX shim exposes no SAH, so quality stays 1.0 and
        // the adaptive policy relies on its cap — results stay exact.
        let device = Device::rtx_2080();
        let backend = OptixBackend::new(&device);
        let points = jittered_block(5, 0.7);
        let config = RtnnConfig::new(SearchParams::knn(1.4, 6));
        let mut index = DynamicIndex::with_backend(&backend, config, RebuildPolicy::adaptive());
        for &p in &points {
            index.insert(p);
        }
        let queries: Vec<Vec3> = points.iter().step_by(3).copied().collect();
        let f0 = index.search(&queries).unwrap();
        assert_eq!(f0.action, StructureAction::Rebuilt);
        for h in 0..points.len() as u32 {
            let p = index.position(h).unwrap();
            index.move_point(h, p + Vec3::new(0.01, 0.0, -0.01));
        }
        let f1 = index.search(&queries).unwrap();
        assert_eq!(f1.action, StructureAction::Refit);
        assert_eq!(f1.quality_ratio, 1.0, "opaque backend exposes no SAH");
        // Exactness against the default backend's fresh engine.
        let moved: Vec<Vec3> = (0..points.len() as u32)
            .filter_map(|h| index.position(h))
            .collect();
        let gpusim = GpusimBackend::new(&device);
        let mut fresh = Index::build(&gpusim, &moved[..], config.engine());
        let reference = fresh.query(&queries, &config.plan()).unwrap();
        assert_eq!(f1.results.neighbors, reference.neighbors);
    }
}
