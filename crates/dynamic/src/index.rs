//! The persistent [`DynamicIndex`]: a point cloud that survives across
//! query rounds, with stable point handles, in-place structure refits, and
//! cost-model-driven rebuilds.

use crate::policy::RebuildPolicy;
use rtnn::{
    CostCoefficients, MegacellCache, MegacellGrid, PreparedMegacells, PreparedScene, Rtnn,
    RtnnConfig, SearchError, SearchResults,
};
use rtnn_bvh::SahMonitor;
use rtnn_gpusim::{Device, FrameAccumulator};
use rtnn_math::{Aabb, Vec3};
use rtnn_optix::Gas;
use rtnn_parallel::par_map;
use std::collections::BTreeSet;

/// What a frame did to the acceleration structure.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum StructureAction {
    /// Nothing moved since the last frame: every structure was reused as-is.
    Reused,
    /// Points moved; the BVH was refitted in place and the megacell grid
    /// absorbed the motion incrementally.
    Refit,
    /// The structure was rebuilt from scratch (first frame, a structural
    /// insert/remove, a policy decision, or motion that escaped the grid).
    Rebuilt,
}

/// The outcome of one [`DynamicIndex::search`] round.
#[derive(Debug, Clone)]
pub struct FrameResult {
    /// The search results. Neighbor ids are *stable point handles* (the
    /// values returned by [`DynamicIndex::insert`]), not positions in some
    /// internal array, so they remain meaningful across frames.
    pub results: SearchResults,
    /// What happened to the acceleration structure this frame.
    pub action: StructureAction,
    /// SAH quality ratio of the (refitted) tree against its last rebuild
    /// (1.0 right after a rebuild; grows as the topology goes stale).
    pub quality_ratio: f64,
    /// Simulated milliseconds spent on structure maintenance this frame
    /// (refit and/or rebuild time; also included in the results' breakdown).
    pub structure_ms: f64,
    /// *Host* wall-clock milliseconds this frame spent maintaining the
    /// persistent structures (AABB regeneration, refit or rebuild, grid
    /// refresh) — the part of the frame the streaming subsystem actually
    /// changes, measured directly so per-frame comparisons are not drowned
    /// by traversal wall-clock noise.
    pub host_structure_ms: f64,
}

/// A persistent neighbor-search index over a mutable point cloud.
///
/// Mutations ([`insert`](Self::insert), [`remove`](Self::remove),
/// [`move_point`](Self::move_point)) are cheap bookkeeping; the expensive
/// state — global BVH, megacell grid, per-query megacell cache — is
/// maintained lazily at the next [`search`](Self::search):
///
/// * pure motion refits the BVH in place and refreshes the grid
///   incrementally, then lets the [`RebuildPolicy`] decide from the
///   calibrated cost model whether the accumulated quality loss justifies a
///   rebuild;
/// * structural changes always rebuild (a refit cannot re-topologize);
/// * an untouched cloud reuses everything and pays zero structure cost.
///
/// Results are exact: every frame returns the same neighbor sets a freshly
/// constructed batch engine would (the refit path only ever changes *how
/// fast* the correct answer is found, never which answer).
pub struct DynamicIndex<'d> {
    device: &'d Device,
    config: RtnnConfig,
    policy: RebuildPolicy,
    coeffs: CostCoefficients,
    /// Slot-stable storage: `positions[h]` is point handle `h`.
    positions: Vec<Vec3>,
    live: Vec<bool>,
    num_live: usize,
    /// Compacted live positions, the engine-facing view.
    compact: Vec<Vec3>,
    compact_to_slot: Vec<u32>,
    slot_to_compact: Vec<u32>,
    membership_dirty: bool,
    moved_slots: BTreeSet<u32>,
    /// Structure state (None until the first search).
    gas: Option<Gas>,
    monitor: Option<SahMonitor>,
    grid: Option<MegacellGrid>,
    cache: MegacellCache,
    last_traversal_ms: Option<f64>,
    metrics: FrameAccumulator,
}

impl<'d> DynamicIndex<'d> {
    /// An empty index with the default (adaptive) rebuild policy.
    pub fn new(device: &'d Device, config: RtnnConfig) -> Self {
        Self::with_policy(device, config, RebuildPolicy::default())
    }

    /// An empty index with an explicit policy.
    pub fn with_policy(device: &'d Device, config: RtnnConfig, policy: RebuildPolicy) -> Self {
        DynamicIndex {
            device,
            config,
            policy,
            coeffs: CostCoefficients::calibrate(device),
            positions: Vec::new(),
            live: Vec::new(),
            num_live: 0,
            compact: Vec::new(),
            compact_to_slot: Vec::new(),
            slot_to_compact: Vec::new(),
            membership_dirty: false,
            moved_slots: BTreeSet::new(),
            gas: None,
            monitor: None,
            grid: None,
            cache: MegacellCache::default(),
            last_traversal_ms: None,
            metrics: FrameAccumulator::default(),
        }
    }

    /// An index seeded with `points` (handles `0..points.len()`).
    pub fn with_points(device: &'d Device, config: RtnnConfig, points: &[Vec3]) -> Self {
        let mut index = Self::new(device, config);
        for &p in points {
            index.insert(p);
        }
        index
    }

    /// Insert a point; returns its stable handle.
    pub fn insert(&mut self, p: Vec3) -> u32 {
        let handle = self.positions.len() as u32;
        self.positions.push(p);
        self.live.push(true);
        self.num_live += 1;
        self.membership_dirty = true;
        handle
    }

    /// Remove a point by handle. Returns false if the handle is unknown or
    /// already removed. The handle is never reused.
    pub fn remove(&mut self, handle: u32) -> bool {
        match self.live.get_mut(handle as usize) {
            Some(alive) if *alive => {
                *alive = false;
                self.num_live -= 1;
                self.membership_dirty = true;
                self.moved_slots.remove(&handle);
                true
            }
            _ => false,
        }
    }

    /// Move a live point to a new position. Returns false for unknown or
    /// removed handles.
    pub fn move_point(&mut self, handle: u32, p: Vec3) -> bool {
        match self.live.get(handle as usize) {
            Some(true) => {
                self.positions[handle as usize] = p;
                self.moved_slots.insert(handle);
                true
            }
            _ => false,
        }
    }

    /// Current position of a live point.
    pub fn position(&self, handle: u32) -> Option<Vec3> {
        match self.live.get(handle as usize) {
            Some(true) => Some(self.positions[handle as usize]),
            _ => None,
        }
    }

    /// Number of live points.
    pub fn len(&self) -> usize {
        self.num_live
    }

    /// True if the index holds no live points.
    pub fn is_empty(&self) -> bool {
        self.num_live == 0
    }

    /// The engine configuration the index searches with.
    pub fn config(&self) -> &RtnnConfig {
        &self.config
    }

    /// The rebuild policy.
    pub fn policy(&self) -> &RebuildPolicy {
        &self.policy
    }

    /// Accumulated per-frame metrics (frames, rebuild/refit counts,
    /// amortized simulated cost).
    pub fn frame_metrics(&self) -> &FrameAccumulator {
        &self.metrics
    }

    /// Run one query round against the current point positions.
    ///
    /// Maintains the persistent structures first (refit / incremental grid
    /// refresh / rebuild, as the state and policy demand), then searches
    /// through the batch engine's prepared-scene path. Neighbor ids in the
    /// returned results are stable point handles.
    pub fn search(&mut self, queries: &[Vec3]) -> Result<FrameResult, SearchError> {
        let engine = Rtnn::new(self.device, self.config);
        let width = engine.global_aabb_width();
        // Validate early so invalid configs fail before touching state.
        self.config
            .params
            .validate()
            .map_err(SearchError::InvalidConfig)?;

        // Fold pending mutations into the compacted view.
        let membership_was_dirty = self.membership_dirty;
        if membership_was_dirty {
            self.refresh_compact();
            self.membership_dirty = false;
        } else {
            for &slot in &self.moved_slots {
                let c = self.slot_to_compact[slot as usize];
                if c != u32::MAX {
                    self.compact[c as usize] = self.positions[slot as usize];
                }
            }
        }
        let n = self.compact.len();

        // Structure maintenance.
        let host_structure_start = std::time::Instant::now();
        let mut structure_ms = 0.0;
        let mut quality_ratio = 1.0;
        let mut dirty_region = Aabb::EMPTY;
        let structural = membership_was_dirty
            || self.gas.is_none()
            || self.gas.as_ref().map(Gas::num_primitives) != Some(n);
        let action = if structural
            || (!self.moved_slots.is_empty() && self.policy.always_rebuilds())
        {
            // Structural changes cannot be refitted; a rebuild-every-frame
            // policy goes straight to the build so the baseline pays exactly
            // one build per motion frame (no exploratory refit).
            structure_ms += self.rebuild_structures(width)?;
            StructureAction::Rebuilt
        } else if !self.moved_slots.is_empty() {
            // Refit first (cheap), measure the quality, then let the policy
            // decide from the cost model whether a rebuild pays for itself.
            let aabbs = point_aabbs(&self.compact, width);
            let gas = self.gas.as_mut().expect("checked above");
            let refit = gas
                .refit(self.device, &aabbs)
                .expect("primitive count is unchanged on the refit path");
            structure_ms += refit.refit_time_ms;
            quality_ratio = match self.monitor.as_ref() {
                Some(m) if m.built_sah() > 0.0 => (refit.stats.sah_after / m.built_sah()).max(1.0),
                _ => 1.0,
            };
            if self
                .policy
                .should_rebuild(quality_ratio, n, &self.coeffs, self.last_traversal_ms)
            {
                structure_ms += self.rebuild_structures(width)?;
                StructureAction::Rebuilt
            } else {
                dirty_region = self.refresh_grid();
                StructureAction::Refit
            }
        } else {
            StructureAction::Reused
        };
        let host_structure_ms = host_structure_start.elapsed().as_secs_f64() * 1e3;

        // The search itself, through the engine's prepared-scene path.
        let gas = self
            .gas
            .as_ref()
            .expect("structure exists after maintenance");
        let megacells = self.grid.as_ref().map(|grid| PreparedMegacells {
            grid,
            dirty_region,
            cache: &mut self.cache,
        });
        let mut results = engine.search_prepared(
            &self.compact,
            queries,
            PreparedScene {
                gas,
                structure_ms,
                megacells,
            },
        )?;

        // Translate compact ids back into stable handles.
        for neighbors in results.neighbors.iter_mut() {
            for id in neighbors.iter_mut() {
                *id = self.compact_to_slot[*id as usize];
            }
        }

        self.last_traversal_ms = Some(results.breakdown.fs_ms + results.breakdown.search_ms);
        self.metrics.record_frame(
            &results.search_metrics.kernel,
            structure_ms,
            results.total_time_ms(),
        );
        match action {
            StructureAction::Rebuilt => self.metrics.rebuilds += 1,
            StructureAction::Refit => self.metrics.refits += 1,
            StructureAction::Reused => {}
        }
        self.moved_slots.clear();

        Ok(FrameResult {
            results,
            action,
            quality_ratio,
            structure_ms,
            host_structure_ms,
        })
    }

    /// Rebuild the compacted live-point view after membership changes.
    fn refresh_compact(&mut self) {
        self.compact.clear();
        self.compact_to_slot.clear();
        self.slot_to_compact.clear();
        self.slot_to_compact.resize(self.positions.len(), u32::MAX);
        for (slot, &p) in self.positions.iter().enumerate() {
            if self.live[slot] {
                self.slot_to_compact[slot] = self.compact.len() as u32;
                self.compact_to_slot.push(slot as u32);
                self.compact.push(p);
            }
        }
    }

    /// Grid-resolution budget for this cloud: the configured cap, bounded to
    /// a small multiple of the point count. The paper's "smallest cell size
    /// the memory allows" guidance targets clouds with many more points than
    /// cells; a streaming index that re-bins every refresh must not pay for
    /// millions of cells around a few thousand points.
    fn grid_budget(&self) -> usize {
        self.config
            .grid_max_cells
            .min((16 * self.compact.len().max(1)).next_power_of_two())
    }

    /// Rebuild the global GAS, SAH baseline, megacell grid and cache from
    /// the current compact positions; returns the simulated build time.
    fn rebuild_structures(&mut self, width: f32) -> Result<f64, SearchError> {
        let aabbs = point_aabbs(&self.compact, width);
        let gas = Gas::build(self.device, &aabbs, self.config.build)
            .map_err(SearchError::OutOfDeviceMemory)?;
        let build_ms = gas.build_time_ms();
        self.monitor = Some(SahMonitor::baseline(gas.bvh()));
        self.gas = Some(gas);
        self.grid = MegacellGrid::build(&self.compact, self.grid_budget());
        self.cache.invalidate_all(0);
        Ok(build_ms)
    }

    /// Absorb this frame's motion into the megacell grid; returns the dirty
    /// region for the per-query cache (empty when nothing changed cells).
    /// Falls back to a wholesale grid rebuild when the motion escaped the
    /// grid bounds.
    fn refresh_grid(&mut self) -> Aabb {
        let budget = self.grid_budget();
        let Some(grid) = self.grid.as_mut() else {
            self.grid = MegacellGrid::build(&self.compact, budget);
            self.cache.invalidate_all(0);
            return Aabb::EMPTY;
        };
        let moved_compact: Vec<u32> = self
            .moved_slots
            .iter()
            .map(|&slot| self.slot_to_compact[slot as usize])
            .filter(|&c| c != u32::MAX)
            .collect();
        match grid.refresh(&self.compact, &moved_compact) {
            rtnn::GridRefresh::Incremental { dirty_region, .. } => dirty_region,
            rtnn::GridRefresh::NeedsRebuild => {
                self.grid = MegacellGrid::build(&self.compact, budget);
                self.cache.invalidate_all(0);
                Aabb::EMPTY
            }
        }
    }
}

/// Width-`width` cubes centred at `points` (the engine's global mapping).
fn point_aabbs(points: &[Vec3], width: f32) -> Vec<Aabb> {
    par_map(points.len(), |i| Aabb::cube(points[i], width))
}

#[cfg(test)]
mod tests {
    use super::*;
    use rtnn::{OptLevel, SearchParams};

    fn jittered_block(n_per_axis: usize, spacing: f32) -> Vec<Vec3> {
        let mut pts = Vec::new();
        for x in 0..n_per_axis {
            for y in 0..n_per_axis {
                for z in 0..n_per_axis {
                    let j = 0.05 * spacing * ((x * 7 + y * 13 + z * 29) % 10) as f32 / 10.0;
                    pts.push(Vec3::new(
                        x as f32 * spacing + j,
                        y as f32 * spacing - j,
                        z as f32 * spacing + j,
                    ));
                }
            }
        }
        pts
    }

    fn sorted(mut v: Vec<u32>) -> Vec<u32> {
        v.sort_unstable();
        v
    }

    #[test]
    fn first_frame_rebuilds_then_pure_motion_refits() {
        let device = Device::rtx_2080();
        let points = jittered_block(6, 0.5);
        let config = RtnnConfig::new(SearchParams::knn(1.2, 8));
        let mut index = DynamicIndex::with_points(&device, config, &points);
        let queries: Vec<Vec3> = points.iter().step_by(3).copied().collect();
        let f0 = index.search(&queries).unwrap();
        assert_eq!(f0.action, StructureAction::Rebuilt);
        // Small drift: the policy keeps the refitted tree.
        for h in 0..points.len() as u32 {
            let p = index.position(h).unwrap();
            index.move_point(h, p + Vec3::new(0.002, -0.001, 0.001));
        }
        let f1 = index.search(&queries).unwrap();
        assert_eq!(f1.action, StructureAction::Refit);
        assert!(f1.quality_ratio >= 1.0);
        assert!(f1.structure_ms < f0.structure_ms);
        // No motion at all: everything is reused, zero structure cost.
        let f2 = index.search(&queries).unwrap();
        assert_eq!(f2.action, StructureAction::Reused);
        assert_eq!(f2.structure_ms, 0.0);
        assert_eq!(index.frame_metrics().frames, 3);
        assert_eq!(index.frame_metrics().rebuilds, 1);
        assert_eq!(index.frame_metrics().refits, 1);
    }

    #[test]
    fn results_match_a_fresh_engine_every_frame() {
        let device = Device::rtx_2080();
        let mut points = jittered_block(6, 0.5);
        let params = SearchParams::range(1.1, 1000);
        let config = RtnnConfig::new(params);
        let mut index = DynamicIndex::with_points(&device, config, &points);
        for frame in 0..5 {
            for (h, p) in points.iter_mut().enumerate() {
                p.z *= 0.97;
                p.x += 0.01 * ((h % 5) as f32 - 2.0);
                index.move_point(h as u32, *p);
            }
            let queries: Vec<Vec3> = points.iter().step_by(4).copied().collect();
            let dynamic = index.search(&queries).unwrap();
            let fresh = Rtnn::new(&device, config)
                .search(&points, &queries)
                .unwrap();
            for (qi, (d, f)) in dynamic
                .results
                .neighbors
                .iter()
                .zip(&fresh.neighbors)
                .enumerate()
            {
                assert_eq!(
                    sorted(d.clone()),
                    sorted(f.clone()),
                    "frame {frame} query {qi}: dynamic vs fresh mismatch"
                );
            }
        }
    }

    #[test]
    fn insert_and_remove_force_a_rebuild_and_keep_handles_stable() {
        let device = Device::rtx_2080();
        let points = jittered_block(4, 1.0);
        let config = RtnnConfig::new(SearchParams::range(1.5, 64)).with_opt(OptLevel::Sched);
        let mut index = DynamicIndex::with_points(&device, config, &points);
        index.search(&[Vec3::ZERO]).unwrap();

        // Remove a point and add one far away; handles shift for nobody.
        assert!(index.remove(3));
        assert!(!index.remove(3), "double remove must fail");
        let far = index.insert(Vec3::new(50.0, 50.0, 50.0));
        assert_eq!(index.len(), points.len());
        let frame = index.search(&[Vec3::new(50.0, 50.0, 50.0)]).unwrap();
        assert_eq!(frame.action, StructureAction::Rebuilt);
        // The query at the inserted point must see it, by its handle.
        assert!(frame.results.neighbors[0].contains(&far));
        // And the removed point never appears again.
        let all = index.search(&points).unwrap();
        for neighbors in &all.results.neighbors {
            assert!(!neighbors.contains(&3), "removed handle reported");
        }
        assert!(index.position(3).is_none());
        assert!(!index.move_point(3, Vec3::ZERO));
    }

    #[test]
    fn empty_and_growing_index_work() {
        let device = Device::rtx_2080();
        let config = RtnnConfig::new(SearchParams::knn(1.0, 4));
        let mut index = DynamicIndex::new(&device, config);
        assert!(index.is_empty());
        let empty = index.search(&[Vec3::ZERO]).unwrap();
        assert!(empty.results.neighbors[0].is_empty());
        let h = index.insert(Vec3::new(0.1, 0.0, 0.0));
        let one = index.search(&[Vec3::ZERO]).unwrap();
        assert_eq!(one.results.neighbors[0], vec![h]);
    }

    #[test]
    fn heavy_scrambling_eventually_triggers_a_policy_rebuild() {
        let device = Device::rtx_2080();
        let points = jittered_block(8, 0.5);
        let config = RtnnConfig::new(SearchParams::knn(1.2, 8));
        let mut index = DynamicIndex::with_points(&device, config, &points);
        let queries: Vec<Vec3> = points.iter().step_by(2).copied().collect();
        index.search(&queries).unwrap();
        // Scramble: teleport every point to a hash-derived position so the
        // frozen topology degrades fast. The adaptive policy must fire a
        // rebuild within a few frames (the safety cap guarantees it at the
        // latest).
        let mut saw_rebuild = false;
        for frame in 0..6u32 {
            for h in 0..points.len() as u32 {
                let mix = |salt: u32| {
                    let x = h
                        .wrapping_mul(2654435761)
                        .wrapping_add(frame.wrapping_mul(40503))
                        .wrapping_add(salt.wrapping_mul(97));
                    (x % 4000) as f32 / 1000.0
                };
                index.move_point(h, Vec3::new(mix(1), mix(2), mix(3)));
            }
            let f = index.search(&queries).unwrap();
            if f.action == StructureAction::Rebuilt {
                saw_rebuild = true;
                assert!(index.frame_metrics().rebuilds >= 2);
                break;
            }
        }
        assert!(saw_rebuild, "policy never rebuilt under heavy scrambling");
    }
}
