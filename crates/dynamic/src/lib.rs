//! # rtnn-dynamic
//!
//! The streaming-scene subsystem: neighbor search over point clouds that
//! *change between query rounds* — SPH particles settling, N-body galaxies
//! orbiting, LiDAR sweeps advancing — without paying the full batch-engine
//! setup cost (BVH build, megacell grid, partitioning) every frame.
//!
//! The paper builds its acceleration structures once per query batch and
//! leaves dynamic scenes as future work; follow-ups (*RT-kNNS Unbound*,
//! *Advancing RT Core-Accelerated Fixed-Radius Nearest Neighbor Search*)
//! show that amortizing structure construction across query rounds is where
//! real deployments win. This crate provides:
//!
//! * [`DynamicIndex`] — a persistent index over a point cloud with stable
//!   point handles: points can be inserted, removed and moved between
//!   query rounds, and every round returns results **bit-equal** (as
//!   neighbor sets) to rebuilding everything from scratch.
//! * An in-place **refit** path: when points merely move, the global BVH's
//!   AABBs are recomputed bottom-up (`rtnn_bvh::refit`) instead of
//!   re-topologized — roughly `accel_refit_speedup`× cheaper on the
//!   simulated device — and the megacell grid absorbs the motion
//!   incrementally, invalidating only the per-query megacell cache entries
//!   whose reachable cells changed population.
//! * A **refit-vs-rebuild policy** ([`RebuildPolicy`]) driven by the
//!   execution backend's structure timing (`rtnn::Backend::timing`):
//!   refitting degrades tree quality (the SAH monitor measures by how
//!   much), so each frame the policy compares the predicted traversal
//!   penalty of keeping the refitted tree against the backend-reported
//!   rebuild premium and picks whichever is faster. Structural changes
//!   (insert/remove) always rebuild — a refit cannot re-topologize.
//! * A per-frame **[`Index`](rtnn::Index) view** ([`DynamicIndex::as_index`]):
//!   heterogeneous `rtnn::QueryPlan`s (other radii, Ks, batches) run
//!   against the maintained structures without rebuilding anything, with
//!   neighbor ids translated back to stable handles.
//!
//! ## Quick start
//!
//! ```
//! use rtnn::{RtnnConfig, SearchParams};
//! use rtnn_dynamic::DynamicIndex;
//! use rtnn_gpusim::Device;
//! use rtnn_math::Vec3;
//!
//! let device = Device::rtx_2080();
//! let points: Vec<Vec3> = (0..500)
//!     .map(|i| Vec3::new((i % 10) as f32, ((i / 10) % 10) as f32, (i / 100) as f32))
//!     .collect();
//! let config = RtnnConfig::new(SearchParams::knn(1.5, 8));
//! let mut index = DynamicIndex::with_points(&device, config, &points);
//!
//! for _frame in 0..3 {
//!     // Drift every point a little, then query the moved cloud.
//!     for handle in 0..points.len() as u32 {
//!         let p = index.position(handle).unwrap();
//!         index.move_point(handle, p + Vec3::new(0.01, 0.0, 0.0));
//!     }
//!     let queries: Vec<Vec3> = (0..points.len() as u32)
//!         .filter_map(|h| index.position(h))
//!         .collect();
//!     let frame = index.search(&queries).unwrap();
//!     assert_eq!(frame.results.neighbors.len(), queries.len());
//! }
//! // Pure motion never needs more rebuilds than frames — the whole point.
//! assert!(index.frame_metrics().rebuilds < index.frame_metrics().frames);
//! ```

pub mod index;
pub mod policy;

pub use index::{DynamicIndex, FrameIndex, FrameResult, StructureAction};
pub use policy::{PolicyMode, RebuildPolicy};
