//! The refit-vs-rebuild decision, driven by the execution backend's
//! structure timing (`rtnn::Backend::timing`).
//!
//! Refitting a BVH in place is several times cheaper than a rebuild but
//! freezes the topology: as points drift from the positions the tree was
//! built for, sibling AABBs overlap and traversal slows down. The SAH
//! monitor (`rtnn_bvh::SahMonitor`) expresses that degradation as a
//! quality ratio `q ≥ 1` (refitted SAH cost over freshly-built SAH cost),
//! which is a first-order predictor of traversal time: a query round that
//! took `S` ms on a fresh tree is predicted to take `q·S` on the refitted
//! one.
//!
//! Per frame the steady-state costs are therefore
//!
//! * keep refitting: `T_refit = R + q·S`
//! * rebuild now:    `T_build = B + S`
//!
//! with `R`/`B` the refit/build cost the *backend* reports for the current
//! structure size ([`StructureTiming`]) and `S` the last measured
//! traversal time. The adaptive policy rebuilds exactly when
//! `(q − 1)·S > B − R` — when the predicted traversal penalty of the stale
//! topology exceeds what the rebuild would cost over a refit — plus a hard
//! quality cap as a safety net for workloads whose `S` is noisy or unknown.
//!
//! Backends that expose no tree quality (the opaque OptiX shim, the
//! brute-force oracle) report `q = 1`, so the adaptive policy degrades
//! gracefully to refit-only behaviour there.

use rtnn::StructureTiming;

/// How the policy decides (the bench compares all three).
#[derive(Debug, Clone, Copy, PartialEq, Eq, Default)]
pub enum PolicyMode {
    /// Timing-driven refit-vs-rebuild (the default).
    #[default]
    Adaptive,
    /// Rebuild the structure every frame (the batch-engine baseline).
    AlwaysRebuild,
    /// Never rebuild on motion, only on structural changes. (Insertions and
    /// removals still force a rebuild in every mode; refit cannot
    /// re-topologize.)
    NeverRebuild,
}

/// The refit-vs-rebuild policy and its knobs.
#[derive(Debug, Clone, Copy, PartialEq)]
pub struct RebuildPolicy {
    /// Decision mode.
    pub mode: PolicyMode,
    /// Hard cap on the quality ratio: at or above it the adaptive policy
    /// rebuilds regardless of the cost comparison. Guards against unbounded
    /// degradation while the search-time estimate is missing or stale.
    pub max_quality_ratio: f64,
}

impl Default for RebuildPolicy {
    fn default() -> Self {
        RebuildPolicy {
            mode: PolicyMode::Adaptive,
            max_quality_ratio: 3.0,
        }
    }
}

impl RebuildPolicy {
    /// The timing-driven policy with default knobs.
    pub fn adaptive() -> Self {
        RebuildPolicy::default()
    }

    /// Rebuild every frame (baseline for the `fig_dynamic` comparison).
    pub fn always_rebuild() -> Self {
        RebuildPolicy {
            mode: PolicyMode::AlwaysRebuild,
            ..RebuildPolicy::default()
        }
    }

    /// Refit-only on motion (the other end of the spectrum).
    pub fn never_rebuild() -> Self {
        RebuildPolicy {
            mode: PolicyMode::NeverRebuild,
            ..RebuildPolicy::default()
        }
    }

    /// True when this policy rebuilds on every motion frame regardless of
    /// quality — callers skip the exploratory refit entirely, so the
    /// rebuild-every-frame baseline pays exactly one build per frame.
    pub fn always_rebuilds(&self) -> bool {
        self.mode == PolicyMode::AlwaysRebuild
    }

    /// Decide whether this frame should rebuild, given the measured quality
    /// ratio `q` of the already-refitted tree, the backend's structure
    /// timing at the current size, and the last frame's traversal time
    /// (`None` until a frame has run).
    pub fn should_rebuild(
        &self,
        quality_ratio: f64,
        timing: &StructureTiming,
        last_traversal_ms: Option<f64>,
    ) -> bool {
        match self.mode {
            PolicyMode::AlwaysRebuild => true,
            PolicyMode::NeverRebuild => false,
            PolicyMode::Adaptive => {
                if quality_ratio >= self.max_quality_ratio {
                    return true;
                }
                let Some(s) = last_traversal_ms else {
                    return false;
                };
                // `(q − 1)·S > B − R`, with the premium deflated by the
                // measured host-side parallelism of the construction path:
                // when the backend carries a host profile showing the build
                // ran at a work/wall ratio of p, the effective rebuild cost
                // drops by that factor and the break-even point moves with
                // it ([`StructureTiming::parallel_premium_ms`]).
                (quality_ratio - 1.0) * s > timing.parallel_premium_ms()
            }
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use rtnn::{Backend, GpusimBackend};
    use rtnn_gpusim::Device;

    fn timing(n: usize) -> StructureTiming {
        GpusimBackend::new(&Device::rtx_2080()).timing(n)
    }

    #[test]
    fn forced_modes_ignore_the_timing() {
        let t = timing(1000);
        assert!(RebuildPolicy::always_rebuild().should_rebuild(1.0, &t, Some(1.0)));
        assert!(!RebuildPolicy::never_rebuild().should_rebuild(100.0, &t, Some(1.0)));
    }

    #[test]
    fn adaptive_keeps_a_fresh_tree_and_drops_a_degraded_one() {
        let p = RebuildPolicy::adaptive();
        let t = timing(1_000_000);
        // Pristine tree: never rebuild.
        assert!(!p.should_rebuild(1.0, &t, Some(10.0)));
        // Far beyond the quality cap: rebuild even with no time estimate.
        assert!(p.should_rebuild(10.0, &t, None));
        // Mild degradation on a cheap search: the rebuild premium dominates.
        let premium = t.rebuild_premium_ms();
        assert!(!p.should_rebuild(1.05, &t, Some(premium / 10.0)));
        // Same degradation but an expensive search: traversal penalty wins.
        assert!(p.should_rebuild(1.05, &t, Some(premium * 40.0)));
    }

    #[test]
    fn break_even_scales_with_the_rebuild_premium() {
        let p = RebuildPolicy::adaptive();
        // A bigger cloud has a bigger rebuild premium, so the same (q, S)
        // that justifies a rebuild on a small cloud may not on a large one.
        let q = 1.2;
        let small = timing(100_000);
        let large = timing(10_000_000);
        let s = small.rebuild_premium_ms() / (q - 1.0) * 1.5;
        assert!(p.should_rebuild(q, &small, Some(s)));
        assert!(!p.should_rebuild(q, &large, Some(s)));
    }

    #[test]
    fn no_history_means_no_speculative_rebuild_below_the_cap() {
        let p = RebuildPolicy::adaptive();
        assert!(!p.should_rebuild(1.5, &timing(1_000_000), None));
    }

    #[test]
    fn measured_parallelism_lowers_the_break_even_point() {
        // A host profile showing the build ran 4 workers wide (work = 4×
        // wall) quarters the effective rebuild premium, so a (q, S) pair
        // the serial coefficients reject now justifies the rebuild.
        let p = RebuildPolicy::adaptive();
        let serial = timing(1_000_000);
        let parallel = serial.with_host_profile(2.0, 8.0);
        assert_eq!(parallel.rebuild_premium_ms(), serial.rebuild_premium_ms());
        assert_eq!(parallel.host_speedup(), Some(4.0));

        let q = 1.1;
        // Sit between the two break-even points: above premium/4, below
        // premium.
        let s = serial.rebuild_premium_ms() / (q - 1.0) / 2.0;
        assert!(!p.should_rebuild(q, &serial, Some(s)));
        assert!(p.should_rebuild(q, &parallel, Some(s)));
    }

    #[test]
    fn free_structures_always_prefer_a_rebuild_once_stale() {
        // A backend with zero structure cost (the brute-force oracle) has a
        // zero rebuild premium: any quality loss with a known traversal
        // time justifies rebuilding.
        let p = RebuildPolicy::adaptive();
        let free = StructureTiming::default();
        assert!(p.should_rebuild(1.01, &free, Some(1.0)));
        assert!(!p.should_rebuild(1.0, &free, Some(1.0)));
    }
}
