//! Streaming-scene acceptance tests: a `DynamicIndex` driven through the
//! frame-stepped generators of `rtnn-data` must return neighbor sets
//! bit-equal to a batch engine rebuilt from scratch every frame, while
//! doing strictly less structure work.

#![allow(deprecated)] // the legacy shim is the from-scratch reference here

use rtnn::{OptLevel, Rtnn, RtnnConfig, SearchParams};
use rtnn_data::dynamics::{DriftModel, DriftScene, FrameUpdate};
use rtnn_data::PointCloud;
use rtnn_dynamic::{DynamicIndex, RebuildPolicy, StructureAction};
use rtnn_gpusim::Device;
use rtnn_math::Vec3;

/// A jittered lattice block, SPH-like density. The jitter is a fine-grained
/// per-axis hash so no two pairwise distances collide exactly — KNN
/// boundary ties would otherwise make the chosen k-subset depend on
/// traversal order, which is exactly the freedom these bit-equality tests
/// must not grant.
fn fluid_block(n_per_axis: usize, spacing: f32) -> PointCloud {
    let mut pts = Vec::new();
    let jitter = |x: usize, y: usize, z: usize, salt: u32| {
        let h = (x as u32)
            .wrapping_mul(73856093)
            .wrapping_add((y as u32).wrapping_mul(19349663))
            .wrapping_add((z as u32).wrapping_mul(83492791))
            .wrapping_add(salt.wrapping_mul(2654435761));
        0.07 * spacing * ((h % 100_000) as f32 / 100_000.0 - 0.5)
    };
    for x in 0..n_per_axis {
        for y in 0..n_per_axis {
            for z in 0..n_per_axis {
                pts.push(Vec3::new(
                    x as f32 * spacing + jitter(x, y, z, 1),
                    y as f32 * spacing + jitter(x, y, z, 2),
                    z as f32 * spacing + jitter(x, y, z, 3),
                ));
            }
        }
    }
    PointCloud::new("fluid-block", pts)
}

/// Apply a scene frame to an index (slot ids equal handle ids by
/// construction: the index was seeded from the scene's initial slots in
/// order, and both allocate new slots sequentially).
fn apply_update(index: &mut DynamicIndex<'_>, scene: &DriftScene, update: &FrameUpdate) {
    for &slot in &update.removed {
        assert!(index.remove(slot));
    }
    for &slot in &update.inserted {
        let h = index.insert(scene.position(slot).unwrap());
        assert_eq!(h, slot, "scene slots and index handles must stay aligned");
    }
    for &slot in &update.moved {
        assert!(index.move_point(slot, scene.position(slot).unwrap()));
    }
}

fn sorted(mut v: Vec<u32>) -> Vec<u32> {
    v.sort_unstable();
    v
}

/// The headline acceptance run: 50 frames of SPH settling.
#[test]
fn fifty_frame_sph_is_bit_identical_to_rebuilding_every_frame() {
    let device = Device::rtx_2080();
    let cloud = fluid_block(6, 0.22); // 216 particles, 50 frames
    let h = 2.2 * 0.22;
    // K above any realistic neighbor count so range results are full sets.
    let params = SearchParams::range(h, 4096);
    // A small grid budget keeps the debug-build test fast; production uses
    // the default multi-million-cell budget.
    let config = RtnnConfig::new(params).with_grid_max_cells(1 << 12);
    let model = DriftModel::SphSettle {
        compression: 0.995,
        jitter: 0.002,
    };

    let mut scene = DriftScene::new(&cloud, model, 0xD1CE);
    let mut policy_index = DynamicIndex::with_points(&device, config, &cloud.points);
    let mut rebuild_index =
        DynamicIndex::with_policy(&device, config, RebuildPolicy::always_rebuild());
    for &p in &cloud.points {
        rebuild_index.insert(p);
    }

    let frames = 50;
    for frame in 0..frames {
        let update = scene.step();
        apply_update(&mut policy_index, &scene, &update);
        apply_update(&mut rebuild_index, &scene, &update);
        let points = scene.live_points();
        let queries = points.clone();

        let dynamic = policy_index.search(&queries).unwrap();
        let baseline = rebuild_index.search(&queries).unwrap();
        assert_eq!(baseline.action, StructureAction::Rebuilt);

        // Bit-identical neighbor sets: the policy-driven index against the
        // rebuild-every-frame index, every frame.
        for qi in 0..queries.len() {
            assert_eq!(
                sorted(dynamic.results.neighbors[qi].clone()),
                sorted(baseline.results.neighbors[qi].clone()),
                "frame {frame} query {qi}: policy vs rebuild-every-frame"
            );
        }
        // And against a stateless batch engine on a sample of frames (the
        // rebuild index is already a from-scratch baseline; this guards the
        // prepared-scene plumbing itself).
        if frame % 10 == 0 {
            let fresh = Rtnn::new(&device, config)
                .search(&points, &queries)
                .unwrap();
            for qi in 0..queries.len() {
                assert_eq!(
                    sorted(dynamic.results.neighbors[qi].clone()),
                    sorted(fresh.neighbors[qi].clone()),
                    "frame {frame} query {qi}: policy vs fresh batch engine"
                );
            }
        }
    }

    let m = policy_index.frame_metrics();
    assert_eq!(m.frames, frames);
    // The policy must have refitted at least once and rebuilt strictly
    // fewer times than there were frames.
    assert!(m.refits > 0, "policy never took the refit path");
    assert!(
        m.rebuilds < frames,
        "policy rebuilt every frame ({} rebuilds)",
        m.rebuilds
    );
    // Amortized structure cost (simulated) must undercut rebuild-every-frame.
    let baseline_m = rebuild_index.frame_metrics();
    assert_eq!(baseline_m.rebuilds, frames);
    assert!(
        m.amortized_structure_ms() < baseline_m.amortized_structure_ms(),
        "policy structure {:.4} ms/frame vs rebuild {:.4} ms/frame",
        m.amortized_structure_ms(),
        baseline_m.amortized_structure_ms()
    );
    assert!(
        m.amortized_frame_ms() < baseline_m.amortized_frame_ms(),
        "policy total {:.4} ms/frame vs rebuild {:.4} ms/frame",
        m.amortized_frame_ms(),
        baseline_m.amortized_frame_ms()
    );
}

#[test]
fn lidar_churn_frames_stay_exact_through_forced_rebuilds() {
    let device = Device::rtx_2080();
    let cloud = fluid_block(6, 1.0);
    let params = SearchParams::knn(2.5, 8);
    let config = RtnnConfig::new(params).with_grid_max_cells(1 << 12);
    let mut scene = DriftScene::new(
        &cloud,
        DriftModel::LidarSweep {
            velocity: Vec3::new(0.4, 0.05, 0.0),
            churn_fraction: 0.04,
        },
        0xBEEF,
    );
    let mut index = DynamicIndex::with_points(&device, config, &cloud.points);
    for frame in 0..8 {
        let update = scene.step();
        assert!(update.is_structural());
        apply_update(&mut index, &scene, &update);
        let points = scene.live_points();
        let queries: Vec<Vec3> = points.iter().step_by(3).copied().collect();
        let dynamic = index.search(&queries).unwrap();
        // Structural churn always rebuilds — and stays exact.
        assert_eq!(dynamic.action, StructureAction::Rebuilt);
        let fresh = Rtnn::new(&device, config)
            .search(&points, &queries)
            .unwrap();
        // Handles and compact ids diverge once slots die: translate the
        // fresh engine's compact ids through the live slot order.
        let live_slots: Vec<u32> = (0..scene.num_slots() as u32)
            .filter(|&s| scene.position(s).is_some())
            .collect();
        for qi in 0..queries.len() {
            let fresh_as_handles: Vec<u32> = fresh.neighbors[qi]
                .iter()
                .map(|&c| live_slots[c as usize])
                .collect();
            assert_eq!(
                sorted(dynamic.results.neighbors[qi].clone()),
                sorted(fresh_as_handles),
                "frame {frame} query {qi}"
            );
        }
    }
}

#[test]
fn nbody_orbit_mixes_refits_and_policy_rebuilds_and_stays_exact() {
    let device = Device::rtx_2080();
    let cloud = fluid_block(6, 0.6);
    let params = SearchParams::range(1.3, 4096);
    let config = RtnnConfig::new(params)
        .with_opt(OptLevel::Full)
        .with_grid_max_cells(1 << 12);
    let mut scene = DriftScene::new(&cloud, DriftModel::NBodyOrbit { angular_step: 0.06 }, 3);
    let mut index = DynamicIndex::with_points(&device, config, &cloud.points);
    for frame in 0..12 {
        let update = scene.step();
        apply_update(&mut index, &scene, &update);
        let points = scene.live_points();
        let queries: Vec<Vec3> = points.iter().step_by(2).copied().collect();
        let dynamic = index.search(&queries).unwrap();
        let fresh = Rtnn::new(&device, config)
            .search(&points, &queries)
            .unwrap();
        for qi in 0..queries.len() {
            assert_eq!(
                sorted(dynamic.results.neighbors[qi].clone()),
                sorted(fresh.neighbors[qi].clone()),
                "frame {frame} query {qi}"
            );
        }
    }
    let m = index.frame_metrics();
    assert!(m.refits > 0, "orbital drift should be refittable sometimes");
    assert!(m.rebuilds < m.frames);
}

/// Nightly stress sweep: every drift model × both modes × all four
/// optimisation levels, with exactness checked every frame. Run with
/// `cargo test --release -p rtnn-dynamic --test dynamic_scenes -- --ignored`.
#[test]
#[ignore = "long-running dynamic-scene sweep; exercised by the nightly CI job"]
fn dynamic_scene_stress_sweep() {
    let device = Device::rtx_2080();
    let cloud = fluid_block(9, 0.5);
    let models = [
        DriftModel::SphSettle {
            compression: 0.99,
            jitter: 0.01,
        },
        DriftModel::NBodyOrbit { angular_step: 0.08 },
        DriftModel::LidarSweep {
            velocity: Vec3::new(0.2, 0.0, 0.0),
            churn_fraction: 0.05,
        },
    ];
    let param_sets = [SearchParams::range(1.1, 4096), SearchParams::knn(1.4, 10)];
    for (mi, model) in models.iter().enumerate() {
        for params in param_sets {
            for opt in OptLevel::all() {
                let config = RtnnConfig::new(params)
                    .with_opt(opt)
                    .with_grid_max_cells(1 << 14);
                let mut scene = DriftScene::new(&cloud, *model, 0xAB + mi as u64);
                let mut index = DynamicIndex::with_points(&device, config, &cloud.points);
                for frame in 0..20 {
                    let update = scene.step();
                    apply_update(&mut index, &scene, &update);
                    let points = scene.live_points();
                    let queries: Vec<Vec3> = points.iter().step_by(4).copied().collect();
                    let dynamic = index.search(&queries).unwrap();
                    let fresh = Rtnn::new(&device, config)
                        .search(&points, &queries)
                        .unwrap();
                    let live_slots: Vec<u32> = (0..scene.num_slots() as u32)
                        .filter(|&s| scene.position(s).is_some())
                        .collect();
                    for qi in 0..queries.len() {
                        let fresh_as_handles: Vec<u32> = fresh.neighbors[qi]
                            .iter()
                            .map(|&c| live_slots[c as usize])
                            .collect();
                        assert_eq!(
                            sorted(dynamic.results.neighbors[qi].clone()),
                            sorted(fresh_as_handles),
                            "model {mi} {params:?} {opt:?} frame {frame} query {qi}"
                        );
                    }
                }
            }
        }
    }
}
