//! Property test for refit correctness: after arbitrary point
//! perturbations, a `DynamicIndex` that is *forced* onto the refit path
//! (never-rebuild policy) must return bit-identical neighbor sets to a
//! batch engine rebuilt from scratch at the new positions — across both
//! search modes and all four optimisation levels. The refitted tree may be
//! arbitrarily worse to traverse, but never allowed to change an answer.

#![allow(deprecated)] // the legacy shim is the from-scratch reference here

use proptest::prelude::*;
use rtnn::{OptLevel, Rtnn, RtnnConfig, SearchMode, SearchParams};
use rtnn_dynamic::{DynamicIndex, RebuildPolicy, StructureAction};
use rtnn_gpusim::Device;
use rtnn_math::Vec3;

fn point_in(half: f32) -> impl Strategy<Value = Vec3> {
    (-half..half, -half..half, -half..half).prop_map(|(x, y, z)| Vec3::new(x, y, z))
}

fn cloud_strategy() -> impl Strategy<Value = Vec<Vec3>> {
    prop::collection::vec(point_in(8.0), 20..100)
}

/// Deterministic per-point displacement: fine-grained pseudo-random values
/// in `[-2.5, 2.5]` per axis, mixing intra-cell nudges with cross-cloud
/// jumps (and never producing exact distance ties).
fn displacement(h: usize, frame: usize, seed: u64) -> Vec3 {
    let mix = |salt: u64| {
        let mut x = (h as u64).wrapping_mul(0x9E37_79B9_7F4A_7C15)
            ^ (frame as u64).wrapping_mul(0xBF58_476D_1CE4_E5B9)
            ^ seed.wrapping_add(salt);
        x ^= x >> 33;
        x = x.wrapping_mul(0xFF51_AFD7_ED55_8CCD);
        x ^= x >> 29;
        ((x % 100_000) as f32 / 100_000.0 - 0.5) * 5.0
    };
    Vec3::new(mix(1), mix(2), mix(3))
}

fn sorted(mut v: Vec<u32>) -> Vec<u32> {
    v.sort_unstable();
    v
}

proptest! {
    #![proptest_config(ProptestConfig { cases: 16, ..ProptestConfig::default() })]

    #[test]
    fn refit_returns_bit_identical_neighbor_sets_to_a_rebuild(
        points in cloud_strategy(),
        seed_frames in 1usize..3,
        motion_seed in any::<u64>(),
        radius in 0.8f32..4.0,
        k in 1usize..16,
        mode_is_knn in any::<bool>(),
        opt_idx in 0usize..4,
    ) {
        let device = Device::rtx_2080();
        let mode = if mode_is_knn { SearchMode::Knn } else { SearchMode::Range };
        // Range mode caps the result at K neighbors, and *which* K is
        // topology-dependent — so give range searches a cap that never
        // binds; KNN's k-subset is distance-determined and stays comparable.
        let k = if mode_is_knn { k } else { 10_000 };
        let params = SearchParams { radius, k, mode };
        let opt = OptLevel::all()[opt_idx];
        let config = RtnnConfig::new(params)
            .with_opt(opt)
            .with_grid_max_cells(1 << 12);

        // Force the refit path for every motion frame.
        let mut index =
            DynamicIndex::with_policy(&device, config, RebuildPolicy::never_rebuild());
        let mut current = points.clone();
        for &p in &current {
            index.insert(p);
        }
        let queries: Vec<Vec3> = current.iter().step_by(3).copied().collect();
        let first = index.search(&queries).unwrap();
        prop_assert_eq!(first.action, StructureAction::Rebuilt);

        // Drift the cloud a few frames, refitting every time.
        for frame in 0..seed_frames {
            for (h, p) in current.iter_mut().enumerate() {
                *p += displacement(h, frame, motion_seed);
                index.move_point(h as u32, *p);
            }
            let queries: Vec<Vec3> = current.iter().step_by(3).copied().collect();
            let refit = index.search(&queries).unwrap();
            prop_assert_eq!(refit.action, StructureAction::Refit);

            let fresh = Rtnn::new(&device, config).search(&current, &queries).unwrap();
            for qi in 0..queries.len() {
                let d = sorted(refit.results.neighbors[qi].clone());
                let f = sorted(fresh.neighbors[qi].clone());
                prop_assert!(
                    d == f,
                    "{mode:?} {opt:?} frame {frame} query {qi}: refit {d:?} vs rebuild {f:?}"
                );
            }
        }
    }
}
