//! A set-associative LRU cache model.
//!
//! Both cache levels of the simulated device use this structure. Only tags
//! are stored — the simulator never needs the cached data, just hit/miss
//! outcomes — so a multi-megabyte L2 costs a few hundred kilobytes of host
//! memory.

use serde::{Deserialize, Serialize};

/// Geometry of one cache level.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Serialize, Deserialize)]
pub struct CacheConfig {
    /// Total capacity in bytes.
    pub capacity_bytes: usize,
    /// Cache line size in bytes.
    pub line_bytes: usize,
    /// Associativity (ways per set).
    pub ways: usize,
}

impl CacheConfig {
    /// Number of sets implied by the geometry (at least 1).
    pub fn num_sets(&self) -> usize {
        (self.capacity_bytes / (self.line_bytes * self.ways)).max(1)
    }
}

/// Hit/miss counters for one cache level.
#[derive(Debug, Clone, Copy, Default, PartialEq, Eq, Serialize, Deserialize)]
pub struct CacheStats {
    /// Number of lookups.
    pub accesses: u64,
    /// Number of lookups that hit.
    pub hits: u64,
}

impl CacheStats {
    /// Hit rate in `[0, 1]`; 0 when there were no accesses.
    pub fn hit_rate(&self) -> f64 {
        if self.accesses == 0 {
            0.0
        } else {
            self.hits as f64 / self.accesses as f64
        }
    }

    /// Accumulate another level's counters (used when merging SM shards).
    pub fn merge(&mut self, other: &CacheStats) {
        self.accesses += other.accesses;
        self.hits += other.hits;
    }
}

/// A tag-only set-associative cache with LRU replacement.
#[derive(Debug, Clone)]
pub struct SetAssociativeCache {
    config: CacheConfig,
    num_sets: usize,
    /// `tags[set * ways + way]`; `u64::MAX` marks an invalid way.
    tags: Vec<u64>,
    /// Monotonic per-way timestamps for LRU.
    stamps: Vec<u64>,
    clock: u64,
    stats: CacheStats,
}

impl SetAssociativeCache {
    /// Create an empty (all-invalid) cache.
    pub fn new(config: CacheConfig) -> Self {
        let num_sets = config.num_sets();
        SetAssociativeCache {
            config,
            num_sets,
            tags: vec![u64::MAX; num_sets * config.ways],
            stamps: vec![0; num_sets * config.ways],
            clock: 0,
            stats: CacheStats::default(),
        }
    }

    /// The configuration this cache was built with.
    pub fn config(&self) -> CacheConfig {
        self.config
    }

    /// Access the cache line containing `addr`. Returns `true` on a hit; on a
    /// miss the line is installed (allocate-on-miss), evicting the LRU way.
    pub fn access(&mut self, addr: u64) -> bool {
        self.clock += 1;
        self.stats.accesses += 1;
        let line = addr / self.config.line_bytes as u64;
        let set = (line % self.num_sets as u64) as usize;
        let base = set * self.config.ways;
        let ways = &mut self.tags[base..base + self.config.ways];
        // Hit?
        if let Some(way) = ways.iter().position(|&t| t == line) {
            self.stamps[base + way] = self.clock;
            self.stats.hits += 1;
            return true;
        }
        // Miss: install in the LRU way.
        let lru_way = (0..self.config.ways)
            .min_by_key(|&w| self.stamps[base + w])
            .expect("cache has at least one way");
        self.tags[base + lru_way] = line;
        self.stamps[base + lru_way] = self.clock;
        false
    }

    /// The cache line index `addr` maps to (used for coalescing: addresses on
    /// the same line cost one access per warp).
    pub fn line_of(&self, addr: u64) -> u64 {
        addr / self.config.line_bytes as u64
    }

    /// Counters accumulated so far.
    pub fn stats(&self) -> CacheStats {
        self.stats
    }

    /// Invalidate all lines and reset counters.
    pub fn reset(&mut self) {
        self.tags.fill(u64::MAX);
        self.stamps.fill(0);
        self.clock = 0;
        self.stats = CacheStats::default();
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn small_cache() -> SetAssociativeCache {
        // 4 sets x 2 ways x 64B lines = 512 B.
        SetAssociativeCache::new(CacheConfig {
            capacity_bytes: 512,
            line_bytes: 64,
            ways: 2,
        })
    }

    #[test]
    fn geometry() {
        let c = small_cache();
        assert_eq!(c.config().num_sets(), 4);
        assert_eq!(c.line_of(0), 0);
        assert_eq!(c.line_of(63), 0);
        assert_eq!(c.line_of(64), 1);
    }

    #[test]
    fn repeated_access_hits() {
        let mut c = small_cache();
        assert!(!c.access(0x100)); // cold miss
        assert!(c.access(0x100)); // hit
        assert!(c.access(0x13f)); // same line
        let s = c.stats();
        assert_eq!(s.accesses, 3);
        assert_eq!(s.hits, 2);
        assert!((s.hit_rate() - 2.0 / 3.0).abs() < 1e-9);
    }

    #[test]
    fn lru_eviction_within_a_set() {
        let mut c = small_cache();
        // Three lines mapping to the same set (stride = num_sets * line = 256).
        let a = 0u64;
        let b = 256u64;
        let d = 512u64;
        assert!(!c.access(a));
        assert!(!c.access(b));
        assert!(c.access(a)); // refresh a; b is now LRU
        assert!(!c.access(d)); // evicts b
        assert!(c.access(a)); // a still resident
        assert!(!c.access(b)); // b was evicted
    }

    #[test]
    fn working_set_larger_than_capacity_thrashes() {
        let mut c = small_cache();
        // 64 distinct lines streamed twice: second pass still misses because
        // the working set (4 KiB) exceeds the 512 B capacity.
        for pass in 0..2 {
            for i in 0..64u64 {
                let hit = c.access(i * 64);
                if pass == 0 {
                    assert!(!hit);
                }
            }
        }
        assert!(c.stats().hit_rate() < 0.1);
    }

    #[test]
    fn small_working_set_hits_after_warmup() {
        let mut c = small_cache();
        for _ in 0..10 {
            for i in 0..4u64 {
                c.access(i * 64);
            }
        }
        assert!(c.stats().hit_rate() > 0.8);
    }

    #[test]
    fn reset_clears_contents_and_stats() {
        let mut c = small_cache();
        c.access(0);
        c.access(0);
        c.reset();
        assert_eq!(c.stats(), CacheStats::default());
        assert!(!c.access(0));
    }

    #[test]
    fn hit_rate_monotone_in_capacity() {
        // Simulator sanity property from DESIGN.md: a bigger cache never has
        // a (meaningfully) lower hit rate on the same trace.
        let trace: Vec<u64> = (0..2000u64).map(|i| (i * 7919) % 4096 * 32).collect();
        let mut small = SetAssociativeCache::new(CacheConfig {
            capacity_bytes: 1024,
            line_bytes: 64,
            ways: 4,
        });
        let mut large = SetAssociativeCache::new(CacheConfig {
            capacity_bytes: 64 * 1024,
            line_bytes: 64,
            ways: 4,
        });
        for &a in &trace {
            small.access(a);
            large.access(a);
        }
        assert!(large.stats().hit_rate() >= small.stats().hit_rate());
    }

    #[test]
    fn merge_stats() {
        let mut a = CacheStats {
            accesses: 10,
            hits: 5,
        };
        a.merge(&CacheStats {
            accesses: 20,
            hits: 15,
        });
        assert_eq!(a.accesses, 30);
        assert_eq!(a.hits, 20);
        assert_eq!(CacheStats::default().hit_rate(), 0.0);
    }
}
