//! Device configurations and the cycle cost model.
//!
//! Two presets mirror the paper's evaluation hardware (Section 6.1):
//!
//! * [`DeviceConfig::rtx_2080`] — 46 SMs / 46 RT cores / 2944 CUDA cores /
//!   8 GB GDDR6 / 4 MB L2;
//! * [`DeviceConfig::rtx_2080_ti`] — 68 SMs / 68 RT cores / 4352 CUDA cores /
//!   11 GB GDDR6 / 5.5 MB L2.
//!
//! The [`CostModel`] constants are not measured from real silicon (NVIDIA
//! publishes none); they are chosen so the *ratios* the paper reports hold:
//! the IS shader is an order of magnitude more expensive than a node test
//! (Section 3.1), the KNN IS shader is 3–6× the range IS shader
//! (Section 6.3), and skipping the sphere test makes the range IS shader
//! roughly 10× cheaper (Appendix A's 20:1 vs 2:1 ratios).

use serde::{Deserialize, Serialize};

use crate::cache::CacheConfig;

/// Which flavour of intersection shader a launch runs; selects the per-call
/// SM cost from the [`CostModel`].
#[derive(Debug, Clone, Copy, PartialEq, Eq, Serialize, Deserialize)]
pub enum IsShaderKind {
    /// Range search with the point-in-sphere test (Listing 1).
    RangeSphereTest,
    /// Range search where the sphere test is elided because the partition's
    /// AABB is inscribed in the search sphere (Section 5.1).
    RangeNoSphereTest,
    /// KNN search: sphere test plus bounded priority-queue maintenance.
    Knn,
}

/// Cycle costs for the work items the simulator charges.
#[derive(Debug, Clone, Copy, PartialEq, Serialize, Deserialize)]
pub struct CostModel {
    /// RT-core cycles per BVH node test (traversal step).
    pub node_test_cycles: f64,
    /// RT-core cycles per primitive-AABB test inside a leaf.
    pub prim_test_cycles: f64,
    /// SM cycles per range-search IS call (with sphere test).
    pub is_range_cycles: f64,
    /// SM cycles per range-search IS call when the sphere test is elided.
    pub is_range_no_sphere_cycles: f64,
    /// SM cycles per KNN IS call (sphere test + priority queue).
    pub is_knn_cycles: f64,
    /// SM cycles per generic arithmetic "operation" reported by plain
    /// compute kernels (baselines).
    pub sm_op_cycles: f64,
    /// Average number of lanes whose IS invocations execute concurrently.
    /// IS shaders interrupt hardware traversal at lane-specific points, so
    /// they are neither fully serialised (1) nor fully SIMT-parallel (32);
    /// Turing-class hardware repacks them into partially filled warps.
    pub is_simt_width: f64,
    /// Extra latency cycles charged per L1 hit (pipelined, cheap).
    pub l1_hit_cycles: f64,
    /// Extra latency cycles charged per L1 miss that hits in L2.
    pub l2_hit_cycles: f64,
    /// Extra latency cycles charged per access that misses both caches.
    pub dram_cycles: f64,
    /// Fraction of memory latency hidden by warp-level parallelism
    /// (0 = nothing hidden, 1 = everything hidden).
    pub latency_hiding: f64,
    /// Acceleration-structure build throughput, primitives per millisecond,
    /// for the *reference* 68-SM device; scaled by SM count.
    pub accel_build_prims_per_ms_ref: f64,
    /// Fixed overhead per acceleration-structure build (launch + allocation),
    /// in milliseconds.
    pub accel_build_fixed_ms: f64,
    /// How much faster an in-place acceleration-structure *refit* (AABB
    /// update without re-topologizing, OptiX's `BUILD_OPERATION_UPDATE`) is
    /// than a full build, as a throughput multiplier on
    /// [`Self::accel_build_prims_per_ms_ref`]. A refit skips the Morton sort
    /// and hierarchy emission and only streams the AABBs bottom-up; NVIDIA
    /// quotes roughly an order of magnitude, we default to a conservative 6x.
    pub accel_refit_speedup: f64,
    /// Fixed overhead per refit launch in milliseconds (no allocation, so
    /// cheaper than a build's fixed cost).
    pub accel_refit_fixed_ms: f64,
    /// Host→device PCIe bandwidth in GB/s (device→host copies are almost
    /// completely hidden per the paper's footnote 4, so they are charged at
    /// a fraction of this).
    pub pcie_gbps: f64,
    /// Fraction of a device→host copy that is *not* hidden by overlap.
    pub d2h_visible_fraction: f64,
}

impl Default for CostModel {
    fn default() -> Self {
        CostModel {
            node_test_cycles: 2.0,
            prim_test_cycles: 2.0,
            is_range_cycles: 40.0,
            is_range_no_sphere_cycles: 4.0,
            is_knn_cycles: 160.0,
            sm_op_cycles: 2.0,
            is_simt_width: 8.0,
            l1_hit_cycles: 2.0,
            l2_hit_cycles: 40.0,
            dram_cycles: 220.0,
            latency_hiding: 0.6,
            accel_build_prims_per_ms_ref: 240_000.0,
            accel_build_fixed_ms: 0.15,
            accel_refit_speedup: 6.0,
            accel_refit_fixed_ms: 0.05,
            pcie_gbps: 12.0,
            d2h_visible_fraction: 0.05,
        }
    }
}

impl CostModel {
    /// The SM cycles of one IS call of the given kind.
    #[inline]
    pub fn is_call_cycles(&self, kind: IsShaderKind) -> f64 {
        match kind {
            IsShaderKind::RangeSphereTest => self.is_range_cycles,
            IsShaderKind::RangeNoSphereTest => self.is_range_no_sphere_cycles,
            IsShaderKind::Knn => self.is_knn_cycles,
        }
    }
}

/// Static description of a simulated device.
#[derive(Debug, Clone, PartialEq, Serialize, Deserialize)]
pub struct DeviceConfig {
    /// Human-readable name used in experiment reports.
    pub name: String,
    /// Number of streaming multiprocessors. The presets give each SM one RT
    /// core, matching Turing.
    pub num_sms: usize,
    /// CUDA cores per SM (informational; the cost model works per-warp).
    pub cuda_cores_per_sm: usize,
    /// Warp width.
    pub warp_size: usize,
    /// Core clock in GHz; converts cycles to milliseconds.
    pub clock_ghz: f64,
    /// Per-SM L1 data cache configuration.
    pub l1: CacheConfig,
    /// Device-wide L2 configuration (capacity is split evenly across SM
    /// shards for deterministic parallel simulation).
    pub l2: CacheConfig,
    /// Device memory capacity in bytes; inputs that exceed it make the
    /// simulated allocation fail the same way the paper's OOM baselines do.
    pub memory_bytes: u64,
    /// Cycle cost model.
    pub cost: CostModel,
}

impl DeviceConfig {
    /// The RTX 2080 preset (46 SMs, 8 GB).
    pub fn rtx_2080() -> Self {
        DeviceConfig {
            name: "RTX 2080".to_string(),
            num_sms: 46,
            cuda_cores_per_sm: 64,
            warp_size: 32,
            clock_ghz: 1.71,
            l1: CacheConfig {
                capacity_bytes: 64 * 1024,
                line_bytes: 128,
                ways: 4,
            },
            l2: CacheConfig {
                capacity_bytes: 4 * 1024 * 1024,
                line_bytes: 128,
                ways: 16,
            },
            memory_bytes: 8 * 1024 * 1024 * 1024,
            cost: CostModel::default(),
        }
    }

    /// The RTX 2080 Ti preset (68 SMs, 11 GB).
    pub fn rtx_2080_ti() -> Self {
        DeviceConfig {
            name: "RTX 2080 Ti".to_string(),
            num_sms: 68,
            cuda_cores_per_sm: 64,
            warp_size: 32,
            clock_ghz: 1.635,
            l1: CacheConfig {
                capacity_bytes: 64 * 1024,
                line_bytes: 128,
                ways: 4,
            },
            l2: CacheConfig {
                capacity_bytes: 5632 * 1024,
                line_bytes: 128,
                ways: 16,
            },
            memory_bytes: 11 * 1024 * 1024 * 1024,
            cost: CostModel::default(),
        }
    }

    /// A tiny configuration for fast unit tests (2 SMs, small caches). Not a
    /// real GPU; exists so cache-pressure behaviour can be exercised with a
    /// few kilobytes of traffic.
    pub fn tiny_test_device() -> Self {
        DeviceConfig {
            name: "tiny-test".to_string(),
            num_sms: 2,
            cuda_cores_per_sm: 8,
            warp_size: 32,
            clock_ghz: 1.0,
            l1: CacheConfig {
                capacity_bytes: 2 * 1024,
                line_bytes: 64,
                ways: 2,
            },
            l2: CacheConfig {
                capacity_bytes: 16 * 1024,
                line_bytes: 64,
                ways: 4,
            },
            memory_bytes: 256 * 1024 * 1024,
            cost: CostModel::default(),
        }
    }

    /// Cycles → milliseconds at this device's clock.
    #[inline]
    pub fn cycles_to_ms(&self, cycles: f64) -> f64 {
        cycles / (self.clock_ghz * 1e6)
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn presets_match_the_paper_hardware() {
        let a = DeviceConfig::rtx_2080();
        let b = DeviceConfig::rtx_2080_ti();
        assert_eq!(a.num_sms, 46);
        assert_eq!(b.num_sms, 68);
        assert!(b.l2.capacity_bytes > a.l2.capacity_bytes);
        assert!(b.memory_bytes > a.memory_bytes);
        assert_eq!(a.warp_size, 32);
    }

    #[test]
    fn cost_ratios_follow_the_paper() {
        let c = CostModel::default();
        // IS (step 2) is an order of magnitude more expensive than a node
        // test (step 1) — Section 3.1.
        assert!(c.is_range_cycles >= 10.0 * c.node_test_cycles);
        // KNN IS is 3-6x the range IS — Section 6.3.
        let ratio = c.is_knn_cycles / c.is_range_cycles;
        assert!((3.0..=6.0).contains(&ratio), "knn/range IS ratio {ratio}");
        // Eliding the sphere test makes the range IS ~10x cheaper — Appendix A.
        assert!(c.is_range_cycles / c.is_range_no_sphere_cycles >= 5.0);
    }

    #[test]
    fn is_call_cycles_dispatch() {
        let c = CostModel::default();
        assert_eq!(c.is_call_cycles(IsShaderKind::Knn), c.is_knn_cycles);
        assert_eq!(
            c.is_call_cycles(IsShaderKind::RangeSphereTest),
            c.is_range_cycles
        );
        assert_eq!(
            c.is_call_cycles(IsShaderKind::RangeNoSphereTest),
            c.is_range_no_sphere_cycles
        );
    }

    #[test]
    fn cycles_to_ms_uses_the_clock() {
        let d = DeviceConfig::tiny_test_device(); // 1 GHz
        assert!((d.cycles_to_ms(1e6) - 1.0).abs() < 1e-9);
        let faster = DeviceConfig::rtx_2080();
        assert!(faster.cycles_to_ms(1e6) < 1.0);
    }
}
