//! The simulated device: warp scheduling across SM shards, acceleration-
//! structure build timing, and PCIe transfer timing.

use crate::config::DeviceConfig;
use crate::metrics::KernelMetrics;
use crate::shard::SmShard;
use parking_lot::Mutex;
use rtnn_parallel::par_for_chunks;

/// Error returned when a simulated allocation exceeds device memory —
/// the analogue of the `OOM` entries in Figure 11.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct OutOfDeviceMemory {
    /// Bytes the allocation requested.
    pub requested_bytes: u64,
    /// Bytes the device has in total.
    pub capacity_bytes: u64,
}

impl std::fmt::Display for OutOfDeviceMemory {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        write!(
            f,
            "allocation of {} bytes exceeds device memory of {} bytes",
            self.requested_bytes, self.capacity_bytes
        )
    }
}

impl std::error::Error for OutOfDeviceMemory {}

/// Structure-maintenance timing pair reported by [`Device::structure_timing`]
/// (and forwarded by search backends): what a from-scratch build and an
/// in-place refit of an acceleration structure cost at a given size. The
/// refit-vs-rebuild policies consume this instead of talking to a device
/// directly.
#[derive(Debug, Clone, Copy, PartialEq, Default)]
pub struct StructureTiming {
    /// Simulated milliseconds of a from-scratch structure build.
    pub build_ms: f64,
    /// Simulated milliseconds of an in-place refit.
    pub refit_ms: f64,
    /// Measured host wall-clock milliseconds of the most recent structure
    /// maintenance (build and/or refit) on the host-parallel construction
    /// path; `0.0` means "not measured" (model-only timing).
    ///
    /// Reported separately from `work_ms` so a parallel build shows up as
    /// *parallelism* (same work, less wall time) instead of silently
    /// reporting less work.
    pub host_wall_ms: f64,
    /// Aggregate busy milliseconds across all construction workers for the
    /// same operations; `0.0` means "not measured".
    pub work_ms: f64,
}

impl StructureTiming {
    /// What a rebuild costs *over* a refit — the premium the adaptive
    /// refit-vs-rebuild policy weighs against the traversal penalty of a
    /// stale tree.
    pub fn rebuild_premium_ms(&self) -> f64 {
        self.build_ms - self.refit_ms
    }

    /// Measured host-parallel speedup of structure maintenance
    /// (`work_ms / host_wall_ms`, clamped to ≥ 1); `None` until both terms
    /// have been measured.
    pub fn host_speedup(&self) -> Option<f64> {
        (self.host_wall_ms > 0.0 && self.work_ms > 0.0)
            .then(|| (self.work_ms / self.host_wall_ms).max(1.0))
    }

    /// The rebuild premium with the `(q−1)·S > B−R` coefficients re-derived
    /// for parallel construction: both the build and refit terms shrink by
    /// the *measured* host speedup, so a structure that builds `s×` faster
    /// on the pool breaks even at an `s×` smaller traversal penalty. Equal
    /// to [`Self::rebuild_premium_ms`] while unmeasured.
    pub fn parallel_premium_ms(&self) -> f64 {
        self.rebuild_premium_ms() / self.host_speedup().unwrap_or(1.0)
    }

    /// Attach a measured host profile (wall/work pair) to a model timing.
    pub fn with_host_profile(mut self, host_wall_ms: f64, work_ms: f64) -> Self {
        self.host_wall_ms = host_wall_ms;
        self.work_ms = work_ms;
        self
    }
}

/// A simulated GPU. Cheap to clone conceptually but exposed by reference;
/// launches do not mutate it (each launch builds fresh shard state), so one
/// device can be shared across experiments.
#[derive(Debug, Clone)]
pub struct Device {
    config: DeviceConfig,
}

impl Device {
    /// Wrap a configuration.
    pub fn new(config: DeviceConfig) -> Self {
        Device { config }
    }

    /// The RTX 2080 preset.
    pub fn rtx_2080() -> Self {
        Device::new(DeviceConfig::rtx_2080())
    }

    /// The RTX 2080 Ti preset.
    pub fn rtx_2080_ti() -> Self {
        Device::new(DeviceConfig::rtx_2080_ti())
    }

    /// A tiny device for unit tests.
    pub fn tiny_test_device() -> Self {
        Device::new(DeviceConfig::tiny_test_device())
    }

    /// The device configuration.
    #[inline]
    pub fn config(&self) -> &DeviceConfig {
        &self.config
    }

    /// Simulated milliseconds to build an acceleration structure over
    /// `num_prims` primitive AABBs: a fixed launch overhead plus a linear
    /// per-primitive term (Figure 15 / Equation 3), scaled by SM count
    /// relative to the 68-SM reference device.
    pub fn accel_build_time_ms(&self, num_prims: usize) -> f64 {
        if num_prims == 0 {
            return 0.0;
        }
        let c = &self.config.cost;
        let rate = c.accel_build_prims_per_ms_ref * (self.config.num_sms as f64 / 68.0);
        c.accel_build_fixed_ms + num_prims as f64 / rate
    }

    /// Simulated milliseconds to *refit* an existing acceleration structure
    /// over `num_prims` primitives in place: the AABBs are re-streamed
    /// bottom-up with no sort and no hierarchy emission, so the throughput is
    /// `accel_refit_speedup` times the build rate and the fixed overhead is
    /// smaller (no allocation).
    pub fn accel_refit_time_ms(&self, num_prims: usize) -> f64 {
        if num_prims == 0 {
            return 0.0;
        }
        let c = &self.config.cost;
        let rate = c.accel_build_prims_per_ms_ref
            * c.accel_refit_speedup
            * (self.config.num_sms as f64 / 68.0);
        c.accel_refit_fixed_ms + num_prims as f64 / rate
    }

    /// The build/refit cost pair for a structure over `num_prims`
    /// primitives — the timing a search backend reports so structure
    /// policies (refit-vs-rebuild) can be decided without knowing which
    /// device model is underneath.
    pub fn structure_timing(&self, num_prims: usize) -> StructureTiming {
        StructureTiming {
            build_ms: self.accel_build_time_ms(num_prims),
            refit_ms: self.accel_refit_time_ms(num_prims),
            // Host-side measurements are attached by the layer that actually
            // ran a build/refit; the device model alone has none.
            host_wall_ms: 0.0,
            work_ms: 0.0,
        }
    }

    /// Simulated milliseconds to copy `bytes` from host to device over PCIe.
    pub fn transfer_h2d_ms(&self, bytes: u64) -> f64 {
        if let Some(t) = rtnn_telemetry::Telemetry::current() {
            t.counter_add("device.h2d_bytes", bytes);
        }
        self.h2d_cost_ms(bytes)
    }

    /// Simulated milliseconds of *visible* device-to-host copy time (most of
    /// it overlaps with compute, per the paper's footnote 4).
    pub fn transfer_d2h_ms(&self, bytes: u64) -> f64 {
        if let Some(t) = rtnn_telemetry::Telemetry::current() {
            t.counter_add("device.d2h_bytes", bytes);
        }
        self.h2d_cost_ms(bytes) * self.config.cost.d2h_visible_fraction
    }

    fn h2d_cost_ms(&self, bytes: u64) -> f64 {
        bytes as f64 / (self.config.cost.pcie_gbps * 1e9) * 1e3
    }

    /// Check whether an allocation of `bytes` fits in device memory.
    pub fn check_allocation(&self, bytes: u64) -> Result<(), OutOfDeviceMemory> {
        if bytes > self.config.memory_bytes {
            Err(OutOfDeviceMemory {
                requested_bytes: bytes,
                capacity_bytes: self.config.memory_bytes,
            })
        } else {
            Ok(())
        }
    }

    /// Execute a kernel of `num_threads` threads grouped into warps of
    /// `config.warp_size`.
    ///
    /// `warp_fn(first_thread..last_thread, shard)` simulates one warp: it
    /// performs whatever algorithmic work the kernel does for those threads,
    /// charges the work to `shard`, and returns the per-thread results (one
    /// `R` per thread in the range, in order).
    ///
    /// Warps are assigned to SM shards round-robin (warp `w` runs on SM
    /// `w % num_sms`), shards are simulated in parallel on the host, and the
    /// kernel's simulated time is the cycle count of the busiest shard.
    pub fn run_warps<R, F>(&self, num_threads: usize, warp_fn: F) -> (Vec<R>, KernelMetrics)
    where
        R: Send + Default + Clone,
        F: Fn(std::ops::Range<usize>, &mut SmShard) -> Vec<R> + Sync,
    {
        let warp_size = self.config.warp_size;
        let num_warps = num_threads.div_ceil(warp_size);
        let num_sms = self.config.num_sms;

        let mut results: Vec<R> = vec![R::default(); num_threads];
        let shards: Mutex<Vec<SmShard>> = Mutex::new(Vec::with_capacity(num_sms));

        {
            let results_ptr = ResultsPtr(results.as_mut_ptr());
            // One chunk per SM; chunks run in parallel on the host.
            par_for_chunks(num_sms, 1, |sm_range| {
                let ptr = results_ptr;
                for sm in sm_range {
                    let mut shard = SmShard::new(&self.config);
                    // Warps assigned to this SM: sm, sm + num_sms, ...
                    let mut w = sm;
                    while w < num_warps {
                        let start = w * warp_size;
                        let end = (start + warp_size).min(num_threads);
                        shard.begin_warp();
                        let warp_results = warp_fn(start..end, &mut shard);
                        debug_assert_eq!(warp_results.len(), end - start);
                        for (offset, r) in warp_results.into_iter().enumerate() {
                            // SAFETY: thread indices are partitioned across
                            // warps, and warps across SMs, so each element is
                            // written exactly once.
                            unsafe { ptr.0.add(start + offset).write(r) };
                        }
                        w += num_sms;
                    }
                    shards.lock().push(shard);
                }
            });
        }

        let shards = shards.into_inner();
        let mut metrics = KernelMetrics {
            warps: num_warps as u64,
            threads: num_threads as u64,
            ..Default::default()
        };
        let mut useful = 0.0;
        let mut issued = 0.0;
        for shard in &shards {
            let cycles = shard.cycles();
            metrics.total_cycles += cycles;
            metrics.critical_path_cycles = metrics.critical_path_cycles.max(cycles);
            let (rt, sm, mem) = shard.cycle_breakdown();
            metrics.rt_core_cycles += rt;
            metrics.sm_cycles += sm;
            metrics.mem_stall_cycles += mem;
            metrics.memory.merge(&shard.memory_stats());
            let (u, i) = shard.simt_work();
            useful += u;
            issued += i;
        }
        metrics.simt_efficiency = if issued > 0.0 {
            (useful / issued).clamp(0.0, 1.0)
        } else {
            1.0
        };
        metrics.time_ms = self.config.cycles_to_ms(metrics.critical_path_cycles);
        (results, metrics)
    }
}

/// Disjoint-write pointer wrapper (same pattern as `rtnn-parallel`).
struct ResultsPtr<T>(*mut T);
impl<T> Clone for ResultsPtr<T> {
    fn clone(&self) -> Self {
        *self
    }
}
impl<T> Copy for ResultsPtr<T> {}
unsafe impl<T> Send for ResultsPtr<T> {}
unsafe impl<T> Sync for ResultsPtr<T> {}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::config::IsShaderKind;

    #[test]
    fn build_time_is_linear_in_primitives() {
        let d = Device::rtx_2080();
        let t0 = d.accel_build_time_ms(0);
        let t1 = d.accel_build_time_ms(1_000_000);
        let t2 = d.accel_build_time_ms(2_000_000);
        let t4 = d.accel_build_time_ms(4_000_000);
        assert_eq!(t0, 0.0);
        // Linear beyond the fixed overhead: equal increments.
        let d1 = t2 - t1;
        let d2 = t4 - t2;
        assert!((d2 - 2.0 * d1).abs() < 1e-9);
        assert!(t1 > 0.0);
    }

    #[test]
    fn refit_is_much_cheaper_than_build_but_not_free() {
        let d = Device::rtx_2080();
        for n in [100_000usize, 1_000_000, 10_000_000] {
            let build = d.accel_build_time_ms(n);
            let refit = d.accel_refit_time_ms(n);
            assert!(refit > 0.0);
            assert!(
                refit < build / 2.0,
                "refit {refit} not clearly cheaper than build {build} at n={n}"
            );
        }
        assert_eq!(d.accel_refit_time_ms(0), 0.0);
        // Linear in the primitive count beyond the fixed overhead.
        let d1 = d.accel_refit_time_ms(2_000_000) - d.accel_refit_time_ms(1_000_000);
        let d2 = d.accel_refit_time_ms(4_000_000) - d.accel_refit_time_ms(2_000_000);
        assert!((d2 - 2.0 * d1).abs() < 1e-9);
    }

    #[test]
    fn ti_builds_faster_than_2080() {
        let n = 10_000_000;
        assert!(
            Device::rtx_2080_ti().accel_build_time_ms(n)
                < Device::rtx_2080().accel_build_time_ms(n)
        );
    }

    #[test]
    fn transfer_times_scale_with_bytes() {
        let d = Device::rtx_2080();
        let one_gb = d.transfer_h2d_ms(1_000_000_000);
        assert!((one_gb - 1000.0 / 12.0).abs() < 1.0);
        assert!(d.transfer_d2h_ms(1_000_000_000) < one_gb);
        assert_eq!(d.transfer_h2d_ms(0), 0.0);
    }

    #[test]
    fn allocation_check() {
        let d = Device::tiny_test_device();
        assert!(d.check_allocation(1024).is_ok());
        let err = d.check_allocation(u64::MAX).unwrap_err();
        assert!(err.requested_bytes > err.capacity_bytes);
        assert!(err.to_string().contains("exceeds device memory"));
    }

    #[test]
    fn run_warps_returns_per_thread_results_in_order() {
        let d = Device::tiny_test_device();
        let n = 1000;
        let (results, metrics) = d.run_warps(n, |range, shard| {
            shard.charge_sm_ops(range.len() as f64);
            range.map(|i| i as u64 * 3).collect()
        });
        assert_eq!(results.len(), n);
        for (i, &r) in results.iter().enumerate() {
            assert_eq!(r, i as u64 * 3);
        }
        assert_eq!(metrics.threads, n as u64);
        assert_eq!(metrics.warps, n.div_ceil(32) as u64);
        assert!(metrics.time_ms > 0.0);
        assert!(metrics.total_cycles >= metrics.critical_path_cycles);
    }

    #[test]
    fn zero_threads_is_a_noop() {
        let d = Device::tiny_test_device();
        let (results, metrics) = d.run_warps::<u32, _>(0, |_, _| Vec::new());
        assert!(results.is_empty());
        assert_eq!(metrics.warps, 0);
        assert_eq!(metrics.time_ms, 0.0);
    }

    #[test]
    fn balanced_work_beats_imbalanced_work() {
        // Same total work; one distribution concentrates it in a single warp.
        let d = Device::tiny_test_device();
        let n = 32 * 64;
        let total_ops = 32_000.0;
        let (_, balanced) = d.run_warps(n, |range, shard| {
            shard.charge_sm_ops(total_ops / (n as f64 / range.len() as f64));
            vec![(); range.len()]
        });
        let (_, imbalanced) = d.run_warps(n, |range, shard| {
            if range.start == 0 {
                shard.charge_sm_ops(total_ops);
            }
            vec![(); range.len()]
        });
        assert!(imbalanced.time_ms > balanced.time_ms);
    }

    #[test]
    fn more_sms_means_faster_kernels() {
        let work = |range: std::ops::Range<usize>, shard: &mut SmShard| {
            shard.charge_is_calls(range.len() as f64, IsShaderKind::RangeSphereTest);
            vec![(); range.len()]
        };
        let n = 100_000;
        let (_, small) = Device::rtx_2080().run_warps(n, work);
        let (_, big) = Device::rtx_2080_ti().run_warps(n, work);
        assert!(big.time_ms < small.time_ms);
    }

    #[test]
    fn deterministic_across_runs() {
        let d = Device::rtx_2080();
        let run = || {
            d.run_warps(10_000, |range, shard| {
                let addrs: Vec<u64> = range.clone().map(|i| (i as u64 % 997) * 64).collect();
                shard.access_warp_memory(&addrs);
                shard.charge_sm_ops(range.len() as f64);
                vec![(); range.len()]
            })
            .1
        };
        let a = run();
        let b = run();
        assert_eq!(a, b);
    }
}
